package uniqopt_test

import (
	"fmt"
	"log"

	"uniqopt"
)

func setup() *uniqopt.DB {
	db := uniqopt.Open()
	ddl := []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR,
			PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR,
			COLOR VARCHAR, PRIMARY KEY (SNO, PNO),
			FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
	}
	for _, d := range ddl {
		if err := db.Exec(d); err != nil {
			log.Fatal(err)
		}
	}
	rows := [][]any{
		{1, "Smith", "Toronto"},
		{2, "Jones", "Chicago"},
	}
	for _, r := range rows {
		if err := db.Insert("SUPPLIER", r...); err != nil {
			log.Fatal(err)
		}
	}
	parts := [][]any{
		{1, 1, "bolt", "RED"},
		{1, 2, "nut", "BLUE"},
		{2, 1, "bolt", "RED"},
	}
	for _, r := range parts {
		if err := db.Insert("PARTS", r...); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// Analyzing the paper's Example 1: the DISTINCT is provably redundant
// because the key of PARTS is carried through the join.
func ExampleDB_Analyze() {
	db := setup()
	a, err := db.Analyze(`SELECT DISTINCT S.SNO, P.PNO, P.PNAME
		FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distinct redundant:", a.DistinctRedundant)
	fmt.Println("derived keys:", a.DerivedKeys)
	// Output:
	// distinct redundant: true
	// derived keys: [[P.PNO S.SNO]]
}

// Executing with the optimizer: the rewrite trace is reported and the
// result sort disappears.
func ExampleDB_Query() {
	db := setup()
	rows, err := db.Query(`SELECT DISTINCT S.SNO, P.PNO, P.PNAME
		FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rule:", rows.Rewrites[0].Rule)
	fmt.Println("rows:", len(rows.Data))
	fmt.Println("sorts:", rows.Stats.SortRuns)
	// Output:
	// rule: eliminate-distinct
	// rows: 2
	// sorts: 0
}

// Suggesting rewrites without executing: Theorem 2 merges the
// correlated EXISTS into a join.
func ExampleDB_Suggest() {
	db := setup()
	infos, err := db.Suggest(`SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P
		              WHERE P.SNO = S.SNO AND P.PNO = 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(infos[0].Rule)
	fmt.Println(infos[0].After)
	// Output:
	// subquery-to-join
	// SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S, PARTS P WHERE P.SNO = S.SNO AND P.PNO = 1
}

// The exact (exponential) Theorem-1 check, usable as ground truth on
// small schemas.
func ExampleDB_CheckExact() {
	db := setup()
	unique, _, err := db.CheckExact(`SELECT S.SNO FROM SUPPLIER S`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("key projection unique:", unique)
	dup, witness, err := db.CheckExact(`SELECT S.SCITY FROM SUPPLIER S`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("city projection unique:", dup, "witness found:", witness != "")
	// Output:
	// key projection unique: true
	// city projection unique: false witness found: true
}
