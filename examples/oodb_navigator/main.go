// OODB navigator: the paper's Section 6.2 end to end. The supplier
// database is loaded into an object store with child→parent OID
// pointers (Figure 3), Example 11's join is rewritten to a nested
// query (Theorem 2), and both navigation strategies run across a
// selectivity sweep to show where the rewrite pays off.
package main

import (
	"fmt"
	"log"

	"uniqopt/internal/core"
	"uniqopt/internal/oodb"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 1000
	cfg.PartsPerSupplier = 5
	rel, err := workload.NewDB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store, err := oodb.FromRelational(rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object store: %d SUPPLIER, %d PARTS, %d AGENT objects; "+
		"pointers run child → parent\n\n",
		len(store.Extent("SUPPLIER")), len(store.Extent("PARTS")), len(store.Extent("AGENT")))

	// The SQL shape of Example 11 and its Theorem 2 rewrite.
	src := workload.PaperQueries["example11"]
	s, err := parser.ParseSelect(src)
	if err != nil {
		log.Fatal(err)
	}
	an := core.NewAnalyzer(rel.Catalog())
	ap, err := an.JoinToSubquery(s)
	if err != nil {
		log.Fatal(err)
	}
	if ap == nil {
		log.Fatal("join → subquery rewrite did not apply")
	}
	fmt.Println("query:", ap.Before)
	fmt.Println("rewritten:", ap.After)
	fmt.Println()

	// Navigate both ways across parent-range selectivities.
	fmt.Printf("%-12s %8s %16s %18s %10s\n",
		"range", "rows", "child fetches", "parent fetches", "ratio")
	partNo := value.Int(2)
	for _, width := range []int64{1, 10, 100, 500, 1000} {
		lo, hi := value.Int(1), value.Int(width)
		cd, err := store.ChildDrivenJoin(partNo, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		pd, err := store.ParentDrivenExists(partNo, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		if len(cd.Output) != len(pd.Output) {
			log.Fatal("strategies disagree")
		}
		fmt.Printf("1..%-9d %8d %16d %18d %9.1fx\n",
			width, len(cd.Output), cd.Stats.Fetches, pd.Stats.Fetches,
			float64(cd.Stats.Fetches)/float64(pd.Stats.Fetches))
	}
	fmt.Println("\nthe child-driven plan fetches every part with the target PNO plus")
	fmt.Println("its supplier; the rewritten plan fetches only in-range suppliers and")
	fmt.Println("answers EXISTS from the (PNO, parent-OID) index — §6.2's point.")
}
