// Quickstart: define the paper's schema, load a few rows, and watch
// the optimizer prove a DISTINCT redundant (Example 1 of Paulley &
// Larson, ICDE 1994) and execute the query without the sort.
package main

import (
	"fmt"
	"log"

	"uniqopt"
)

func main() {
	db := uniqopt.Open()

	// Figure 1's tables: primary keys give the optimizer its key
	// dependencies.
	ddl := []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR(30),
			SCITY VARCHAR(20), BUDGET INTEGER, STATUS VARCHAR(10),
			PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR(30),
			OEM-PNO INTEGER, COLOR VARCHAR(10),
			PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO))`,
	}
	for _, stmt := range ddl {
		if err := db.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}

	suppliers := [][]any{
		{1, "Smith", "Toronto", 100, "Active"},
		{2, "Jones", "Chicago", 200, "Active"},
		{3, "Smith", "New York", 300, "Active"},
	}
	for _, row := range suppliers {
		if err := db.Insert("SUPPLIER", row...); err != nil {
			log.Fatal(err)
		}
	}
	parts := [][]any{
		{1, 1, "bolt", 101, "RED"},
		{1, 2, "nut", 102, "BLUE"},
		{2, 1, "bolt", 103, "RED"},
		{3, 9, "cam", 104, "RED"},
	}
	for _, row := range parts {
		if err := db.Insert("PARTS", row...); err != nil {
			log.Fatal(err)
		}
	}

	// Example 1: the DISTINCT is redundant because (SNO, PNO) — the
	// key of PARTS — is carried through the join into the projection.
	query := `SELECT DISTINCT S.SNO, P.PNO, P.PNAME
	          FROM SUPPLIER S, PARTS P
	          WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`

	analysis, err := db.Analyze(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- analysis")
	fmt.Println("unique:            ", analysis.Unique)
	fmt.Println("distinct redundant:", analysis.DistinctRedundant)
	fmt.Println("bound columns (V): ", analysis.BoundColumns)
	fmt.Println("derived keys:      ", analysis.DerivedKeys)

	fmt.Println("\n-- execution (optimized vs baseline)")
	opt, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	base, err := db.QueryBaseline(query)
	if err != nil {
		log.Fatal(err)
	}
	for _, rw := range opt.Rewrites {
		fmt.Printf("rewrite [%s]: %s\n", rw.Rule, rw.After)
	}
	fmt.Printf("rows: %d (both strategies)\n", len(opt.Data))
	fmt.Printf("baseline  sorts=%d comparisons=%d\n", base.Stats.SortRuns, base.Stats.Comparisons)
	fmt.Printf("optimized sorts=%d comparisons=%d\n", opt.Stats.SortRuns, opt.Stats.Comparisons)

	// Contrast with Example 2, where DISTINCT must stay: SNAME is not
	// a key, so two Smiths supplying the same part would duplicate.
	needsDistinct := `SELECT DISTINCT S.SNAME, P.PNO, P.PNAME
	                  FROM SUPPLIER S, PARTS P
	                  WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`
	a2, err := db.Analyze(needsDistinct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- Example 2 (DISTINCT must stay)")
	fmt.Println("distinct redundant:", a2.DistinctRedundant, "— blocking table:", a2.MissingTable)
}
