// Unnesting: Kim's nested-query forms end to end. The paper builds on
// Kim's subquery-to-join work; this example walks the full chain the
// optimizer applies — IN → EXISTS (positive occurrence only), EXISTS →
// join (Theorem 2) or DISTINCT join (Corollary 1) — and shows the 3VL
// trap that makes NOT IN unconvertible.
package main

import (
	"fmt"
	"log"

	"uniqopt"
	"uniqopt/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 200
	cfg.PartsPerSupplier = 6
	cfg.RedFraction = 0.3
	gen, err := workload.NewDB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := gen.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Kim's type-N nesting: an uncorrelated IN.
	nested := `SELECT S.SNO, S.SNAME FROM SUPPLIER S
	           WHERE S.SNO IN (SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')`
	fmt.Println("nested query:")
	fmt.Println(" ", nested)

	base, err := db.QueryBaseline(nested)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := db.Query(nested)
	if err != nil {
		log.Fatal(err)
	}
	if len(base.Data) != len(opt.Data) {
		log.Fatalf("strategies disagree: %d vs %d", len(base.Data), len(opt.Data))
	}
	fmt.Println("\nrewrite chain applied by the optimizer:")
	for i, rw := range opt.Rewrites {
		fmt.Printf("  %d. [%s]\n     %s\n", i+1, rw.Rule, rw.After)
	}
	fmt.Printf("\nrows: %d (identical under both strategies)\n", len(opt.Data))
	fmt.Printf("baseline : %s\n", base.Stats.String())
	fmt.Printf("optimized: %s\n", opt.Stats.String())

	// The trap: NOT IN is 3VL-sensitive and must stay nested.
	notIn := `SELECT S.SNO FROM SUPPLIER S
	          WHERE S.SNO NOT IN (SELECT P.OEM-PNO FROM PARTS P)`
	fmt.Println("\nNOT IN (3VL-sensitive, never converted):")
	fmt.Println(" ", notIn)
	res, err := db.Query(notIn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rewrites applied: %d (none — a NULL OEM-PNO would change the answer)\n",
		len(res.Rewrites))
	fmt.Printf("  rows: %d\n", len(res.Data))
}
