// IMS gateway: the paper's Section 6.1 end to end. A relational
// supplier database is mirrored into a HIDAM hierarchy, the SQL join
// of Example 10 is analyzed, the join → subquery rewrite (Theorem 2)
// is shown, and both translated DL/I programs run with call counters —
// reproducing the claim that the rewritten program halves the DL/I
// calls against PARTS.
package main

import (
	"fmt"
	"log"

	"uniqopt/internal/core"
	"uniqopt/internal/ims"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 200
	cfg.PartsPerSupplier = 6
	rel, err := workload.NewDB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hdb, err := ims.FromRelational(rel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HIDAM database: %d root segments (SUPPLIER), parts fan-out %d\n\n",
		len(hdb.Roots()), cfg.PartsPerSupplier)

	// The SQL the gateway receives (Example 10) and the Theorem 2
	// rewrite the optimizer applies before translation to DL/I.
	src := workload.PaperQueries["example10"]
	s, err := parser.ParseSelect(src)
	if err != nil {
		log.Fatal(err)
	}
	an := core.NewAnalyzer(rel.Catalog())
	ap, err := an.JoinToSubquery(s)
	if err != nil {
		log.Fatal(err)
	}
	if ap == nil {
		log.Fatal("join → subquery rewrite did not apply")
	}
	fmt.Println("SQL received by the gateway:")
	fmt.Println(" ", ap.Before)
	fmt.Println("rewritten (Theorem 2, reversed for navigational execution):")
	fmt.Println(" ", ap.After)
	fmt.Println("reason:", ap.Description)

	// Translate both forms to DL/I programs and execute.
	partNo := value.Int(3) // every supplier supplies part 3
	join := hdb.JoinStrategy("PNO", partNo)
	nested := hdb.NestedStrategy("PNO", partNo)
	if len(join.Output) != len(nested.Output) {
		log.Fatal("strategies disagree")
	}
	fmt.Printf("\nDL/I execution for PNO = %s (%d suppliers qualify):\n",
		partNo, len(join.Output))
	fmt.Printf("  join program:   %s\n", join.Stats.String())
	fmt.Printf("  nested program: %s\n", nested.Stats.String())
	jp := join.Stats.CallsBySegment["PARTS"]
	np := nested.Stats.CallsBySegment["PARTS"]
	fmt.Printf("  PARTS calls: %d -> %d (%.2fx — the paper's halving)\n\n", jp, np, float64(jp)/float64(np))

	// The non-key variant: qualifying on OEM-PNO, where the join
	// program cannot stop early on the key-sequenced twin chain.
	target := value.Int(1000*100 + 3) // supplier 100's 3rd part OEM number... see workload
	_ = target
	// Pick the OEM of an existing part directly from the hierarchy.
	root := hdb.Roots()[99]
	pcb := hdb.NewPCB()
	pcb.GU("SUPPLIER", ims.Qual{Field: "SNO", Op: ims.EQ, Value: root.Key()})
	seg, st := pcb.GNP("PARTS")
	if st != ims.StatusOK {
		log.Fatal("no parts under supplier")
	}
	oem := seg.Get("OEM-PNO")
	joinOEM := hdb.JoinStrategy("OEM-PNO", oem)
	nestedOEM := hdb.NestedStrategy("OEM-PNO", oem)
	fmt.Printf("non-key qualification (OEM-PNO = %s):\n", oem)
	fmt.Printf("  join program visits %d segments; nested visits %d\n",
		joinOEM.Stats.SegmentsVisited, nestedOEM.Stats.SegmentsVisited)
	fmt.Println("  (the nested program halts each twin-chain scan at the first match)")
}
