// Casegen: the paper's §5.1 motivation — CASE tools and defensive
// practitioners sprinkle DISTINCT over generated query templates "as a
// conservative approach". This example plays the role of such a tool:
// it generates a batch of templated DISTINCT queries, runs the
// analyzer over the batch, and reports how many DISTINCTs were
// provably redundant and what executing the batch saved.
package main

import (
	"fmt"
	"log"

	"uniqopt"
	"uniqopt/internal/workload"
)

// Templates mimic a report generator: every query gets DISTINCT.
var templates = []string{
	// Key-complete projections: DISTINCT is provably redundant.
	`SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S`,
	`SELECT DISTINCT S.SNO, S.SNAME, S.SCITY FROM SUPPLIER S WHERE S.BUDGET > 500`,
	`SELECT DISTINCT P.SNO, P.PNO, P.COLOR FROM PARTS P`,
	`SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`,
	`SELECT DISTINCT A.SNO, A.ANO, A.ANAME FROM AGENTS A WHERE A.ACITY = 'Ottawa'`,
	`SELECT DISTINCT P.OEM-PNO, P.PNAME FROM PARTS P WHERE P.OEM-PNO = 1042`,
	// Projections that genuinely need duplicate elimination.
	`SELECT DISTINCT S.SNAME FROM SUPPLIER S`,
	`SELECT DISTINCT S.SCITY FROM SUPPLIER S WHERE S.STATUS = 'Active'`,
	`SELECT DISTINCT P.COLOR FROM PARTS P`,
	`SELECT DISTINCT S.SNAME, P.COLOR FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`,
}

func main() {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 400
	cfg.PartsPerSupplier = 6
	gen, err := workload.NewDB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := gen.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				log.Fatal(err)
			}
		}
	}

	var redundant, kept int
	var baseSorts, optSorts, baseWork, optWork int64
	for _, sql := range templates {
		a, err := db.Analyze(sql)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "keep DISTINCT"
		if a.DistinctRedundant {
			verdict = "drop DISTINCT"
			redundant++
		} else {
			kept++
		}
		base, err := db.QueryBaseline(sql)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		if len(base.Data) != len(opt.Data) {
			log.Fatalf("batch query changed its result: %s", sql)
		}
		baseSorts += base.Stats.SortRuns
		optSorts += opt.Stats.SortRuns
		baseWork += base.Stats.Comparisons
		optWork += opt.Stats.Comparisons
		fmt.Printf("%-14s %s\n", verdict+":", firstLine(sql))
	}
	fmt.Printf("\nbatch of %d generated queries: %d redundant DISTINCTs found, %d genuine\n",
		len(templates), redundant, kept)
	fmt.Printf("result sorts: %d -> %d; comparisons: %d -> %d\n",
		baseSorts, optSorts, baseWork, optWork)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
