// Suppliers: the full tour of the paper's rewrites on a generated
// supplier database — DISTINCT elimination (Theorem 1), subquery →
// join (Theorem 2 / Corollary 1), INTERSECT → EXISTS (Theorem 3), and
// EXCEPT → NOT EXISTS, each executed baseline-vs-optimized with work
// counters printed.
package main

import (
	"fmt"
	"log"

	"uniqopt"
	"uniqopt/internal/workload"
)

func main() {
	// Generate a mid-sized instance with deliberate name duplicates
	// (Example 2's premise) and a red-part fraction.
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 300
	cfg.PartsPerSupplier = 8
	cfg.AgentsPerSupplier = 2
	cfg.RedFraction = 0.25
	gen, err := workload.NewDB(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := gen.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("loaded %d suppliers, %d parts, %d agents\n\n",
		db.Store().MustTable("SUPPLIER").Len(),
		db.Store().MustTable("PARTS").Len(),
		db.Store().MustTable("AGENTS").Len())

	scenarios := []struct {
		title string
		sql   string
		hosts map[string]any
	}{
		{
			"Theorem 1 — redundant DISTINCT (Example 1)",
			workload.PaperQueries["example1"],
			nil,
		},
		{
			"Theorem 2 — correlated EXISTS to join (Example 7)",
			workload.PaperQueries["example7"],
			map[string]any{"SUPPLIER-NAME": "Smith", "PART-NO": 3},
		},
		{
			"Corollary 1 — EXISTS to DISTINCT join (Example 8)",
			workload.PaperQueries["example8"],
			nil,
		},
		{
			"Theorem 3 — INTERSECT to EXISTS (Example 9)",
			workload.PaperQueries["example9"],
			nil,
		},
		{
			"EXCEPT to NOT EXISTS (§5.3 extension)",
			`SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'
			 EXCEPT SELECT ALL A.SNO FROM AGENTS A`,
			nil,
		},
	}

	for _, sc := range scenarios {
		fmt.Println("==", sc.title)
		base, err := db.QueryWith(sc.sql, sc.hosts, false)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := db.QueryWith(sc.sql, sc.hosts, true)
		if err != nil {
			log.Fatal(err)
		}
		if len(base.Data) != len(opt.Data) {
			log.Fatalf("strategies disagree: %d vs %d rows", len(base.Data), len(opt.Data))
		}
		for _, rw := range opt.Rewrites {
			fmt.Printf("  rewrite [%s]\n    %s\n", rw.Rule, rw.After)
		}
		fmt.Printf("  rows=%d\n", len(opt.Data))
		fmt.Printf("  baseline : %s\n", base.Stats.String())
		fmt.Printf("  optimized: %s\n\n", opt.Stats.String())
	}
}
