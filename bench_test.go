// Benchmarks: one testing.B benchmark per experiment in
// EXPERIMENTS.md (E1–E9), each with baseline and optimized
// sub-benchmarks so `go test -bench` output shows the rewrite's
// effect directly, plus micro-benchmarks for the analyzer and parser.
package uniqopt

import (
	"context"
	"fmt"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/ims"
	"uniqopt/internal/oodb"
	"uniqopt/internal/plan"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func benchDB(b *testing.B, suppliers, fanout int, red float64) *storage.DB {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = suppliers
	cfg.PartsPerSupplier = fanout
	cfg.RedFraction = red
	db, err := workload.NewDB(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// runBench executes src under both planner configurations as
// sub-benchmarks.
func runBench(b *testing.B, db *storage.DB, src string, hosts map[string]value.Value) {
	b.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts plan.Options
	}{
		{"baseline", plan.Options{}},
		{"optimized", plan.Options{ApplyRewrites: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := plan.NewPlanner(db, mode.opts)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(q, hosts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E1 — Table: redundant DISTINCT elimination (Example 1).
func BenchmarkE1DistinctElimination(b *testing.B) {
	db := benchDB(b, 2000, 10, 0.3)
	runBench(b, db, workload.PaperQueries["example1"], nil)
}

// E2 — Table: correlated EXISTS → join (Example 7).
func BenchmarkE2SubqueryToJoin(b *testing.B) {
	db := benchDB(b, 800, 10, 0.3)
	hosts := map[string]value.Value{
		"SUPPLIER-NAME": value.String_("Smith"),
		"PART-NO":       value.Int(3),
	}
	runBench(b, db, workload.PaperQueries["example7"], hosts)
}

// E3 — Table: EXISTS with many matches → DISTINCT join (Example 8).
func BenchmarkE3SubqueryToDistinctJoin(b *testing.B) {
	db := benchDB(b, 800, 8, 0.4)
	runBench(b, db, workload.PaperQueries["example8"], nil)
}

// E4 — Table: INTERSECT → EXISTS (Example 9).
func BenchmarkE4IntersectToExists(b *testing.B) {
	db := benchDB(b, 2000, 4, 0.3)
	runBench(b, db, workload.PaperQueries["example9"], nil)
}

// E5 — Table: IMS DL/I call halving (Example 10).
func BenchmarkE5IMSJoinVsSubquery(b *testing.B) {
	rel := benchDB(b, 1000, 8, 0.3)
	hdb, err := ims.FromRelational(rel)
	if err != nil {
		b.Fatal(err)
	}
	target := value.Int(3)
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := hdb.JoinStrategy("PNO", target)
			if len(res.Output) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := hdb.NestedStrategy("PNO", target)
			if len(res.Output) == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

// E6 — Table: OODB object fetches (Example 11), selective range.
func BenchmarkE6OODBJoinVsSubquery(b *testing.B) {
	rel := benchDB(b, 2000, 5, 0.3)
	store, err := oodb.FromRelational(rel)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := value.Int(100), value.Int(200)
	b.Run("childDriven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.ChildDrivenJoin(value.Int(2), lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parentDriven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.ParentDrivenExists(value.Int(2), lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7 — Table: Algorithm 1 cost vs the exact Theorem-1 check.
func BenchmarkE7AlgorithmCost(b *testing.B) {
	cat := workload.PaperCatalog()
	an := core.NewAnalyzer(cat)
	s, err := parser.ParseSelect(workload.PaperQueries["example1"])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algorithm1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := an.AnalyzeSelect(s, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The exact check on a deliberately small single-table query (the
	// two-table paper query exceeds any reasonable enumeration cap).
	exactSrc := "SELECT S.SNO, S.SNAME FROM SUPPLIER S"
	es, err := parser.ParseSelect(exactSrc)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.DefaultDomains(cat, es)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := an.ExactUniqueness(es, d, 50_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 — Table: soundness corpus (Algorithm 1 + exact cross-check) as a
// throughput measure for the verification harness.
func BenchmarkE8SoundnessCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// One corpus pass of 20 random queries.
		benchSoundnessPass(b)
	}
}

func benchSoundnessPass(b *testing.B) {
	b.Helper()
	cat := workload.PaperCatalog()
	an := core.NewAnalyzer(cat)
	for i := 0; i < 20; i++ {
		src := fmt.Sprintf("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = %d", i)
		s, err := parser.ParseSelect(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.AnalyzeSelect(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks.

func BenchmarkParser(b *testing.B) {
	src := workload.PaperQueries["example7"]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinct(b *testing.B) {
	db := benchDB(b, 2000, 10, 0.3)
	ctx := context.Background()
	var st engine.Stats
	rel, err := engine.Scan(ctx, &st, db.MustTable("PARTS"), "P")
	if err != nil {
		b.Fatal(err)
	}
	proj, err := engine.Project(ctx, &st, rel, []string{"P.SNO"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s engine.Stats
			if _, err := engine.DistinctSort(ctx, &s, proj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var s engine.Stats
			if _, err := engine.DistinctHash(ctx, &s, proj); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E9 — Table: join elimination via inclusion dependencies.
func BenchmarkE9JoinElimination(b *testing.B) {
	db := benchDB(b, 2000, 10, 0.3)
	runBench(b, db, `SELECT P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, nil)
}
