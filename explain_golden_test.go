package uniqopt_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"uniqopt"
	"uniqopt/internal/engine"
	"uniqopt/internal/plan"
	"uniqopt/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// goldenHosts binds every host variable any paper query mentions.
var goldenHosts = map[string]any{
	"SUPPLIER-NO":   1,
	"SUPPLIER-NAME": "Smith",
	"PART-NO":       1,
	"PARTNO":        1,
}

// goldenDB builds a fresh paper workload DB with a fixed config, so
// every run sees identical data (and therefore identical ANALYZE row
// counts).
func goldenDB(t *testing.T) *uniqopt.DB {
	return goldenDBWith(t, uniqopt.Options{})
}

// goldenDBWith is goldenDB under explicit optimizer options (used for
// the streaming execution legs).
func goldenDBWith(t *testing.T, opts uniqopt.Options) *uniqopt.DB {
	t.Helper()
	fresh, err := workload.NewDB(workload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := uniqopt.OpenWith(opts)
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func paperQueryNames() []string {
	names := make([]string, 0, len(workload.PaperQueries))
	for name := range workload.PaperQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// explainUnder runs EXPLAIN ANALYZE for one paper query on a fresh DB
// under the given pool configuration and returns the explanation.
func explainUnder(t *testing.T, name string, workers, threshold int) *uniqopt.Explanation {
	return explainOpts(t, name, workers, threshold, uniqopt.Options{})
}

// explainStreamUnder is explainUnder with streaming execution.
func explainStreamUnder(t *testing.T, name string, workers, threshold int) *uniqopt.Explanation {
	return explainOpts(t, name, workers, threshold, uniqopt.Options{Streaming: true})
}

func explainOpts(t *testing.T, name string, workers, threshold int, opts uniqopt.Options) *uniqopt.Explanation {
	t.Helper()
	prevW := engine.SetWorkers(workers)
	prevT := engine.SetParallelThreshold(threshold)
	defer func() {
		engine.SetWorkers(prevW)
		engine.SetParallelThreshold(prevT)
	}()
	db := goldenDBWith(t, opts)
	e, err := db.ExplainWith(context.Background(), workload.PaperQueries[name], goldenHosts, true, true)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return e
}

// TestExplainGolden compares the scrubbed EXPLAIN ANALYZE rendering of
// every paper example against its golden file, and requires the
// serial, parallel, and streaming (serial and parallel) renderings to
// be byte-identical after scrubbing (wall times canonicalized,
// parallel-width markers and batch counts dropped).
func TestExplainGolden(t *testing.T) {
	for _, name := range paperQueryNames() {
		t.Run(name, func(t *testing.T) {
			serial := plan.ScrubVolatile(explainUnder(t, name, 1, 1<<30).String())
			parallel := plan.ScrubVolatile(explainUnder(t, name, 4, 1).String())
			if serial != parallel {
				t.Errorf("serial and parallel EXPLAIN ANALYZE diverge after scrubbing:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
			}
			streamSerial := plan.ScrubVolatile(explainStreamUnder(t, name, 1, 1<<30).String())
			if serial != streamSerial {
				t.Errorf("materializing and streaming EXPLAIN ANALYZE diverge after scrubbing:\n--- materializing\n%s\n--- streaming\n%s", serial, streamSerial)
			}
			streamParallel := plan.ScrubVolatile(explainStreamUnder(t, name, 4, 1).String())
			if serial != streamParallel {
				t.Errorf("materializing and streaming-parallel EXPLAIN ANALYZE diverge after scrubbing:\n--- materializing\n%s\n--- streaming-parallel\n%s", serial, streamParallel)
			}
			path := filepath.Join("testdata", "explain", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestExplainGolden -update ./`): %v", err)
			}
			if string(want) != serial {
				t.Errorf("golden mismatch for %s:\n--- want\n%s\n--- got\n%s", name, want, serial)
			}
		})
	}
}

// TestExplainAnalyzeCountsMatchStats cross-checks the tree's metrics
// against the engine counters of the same execution: the root's output
// cardinality must equal Stats.RowsOutput, and for plans without
// subqueries or index access the Scan nodes must account for exactly
// Stats.RowsScanned.
func TestExplainAnalyzeCountsMatchStats(t *testing.T) {
	for _, name := range paperQueryNames() {
		t.Run(name, func(t *testing.T) {
			e := explainUnder(t, name, 1, 1<<30)
			if e.Root == nil {
				t.Fatal("no plan tree")
			}
			if e.Root.RowsOut != e.Stats.RowsOutput {
				t.Errorf("root rows_out=%d but Stats.RowsOutput=%d", e.Root.RowsOut, e.Stats.RowsOutput)
			}
			var scanned int64
			indexed := false
			for _, n := range e.Root.AllNodes() {
				if !n.Analyzed {
					t.Errorf("node %s(%s) not analyzed", n.Op, n.Detail)
				}
				switch n.Op {
				case "Scan":
					scanned += n.RowsOut
				case "IndexScan":
					indexed = true
				}
			}
			if !indexed && e.Stats.SubqueryRuns == 0 && scanned != e.Stats.RowsScanned {
				t.Errorf("Scan nodes account for %d rows but Stats.RowsScanned=%d", scanned, e.Stats.RowsScanned)
			}
			if e.Stats.SubqueryRuns > 0 && scanned > e.Stats.RowsScanned {
				t.Errorf("Scan nodes (%d rows) exceed Stats.RowsScanned=%d", scanned, e.Stats.RowsScanned)
			}
		})
	}
}

// TestExplainAnalyzeStreamBatches cross-checks the streaming tree's
// per-operator batch counters against the engine's Stats.Batches for
// the same execution: every node that emitted rows must have emitted
// at least one batch, the per-node counts must not exceed the engine
// total (internal iterators — buffered replays — may add to the
// engine total but never to a node), and the root must agree with
// Stats.RowsOutput. Materializing runs must report no batches at all.
func TestExplainAnalyzeStreamBatches(t *testing.T) {
	for _, name := range paperQueryNames() {
		t.Run(name, func(t *testing.T) {
			e := explainStreamUnder(t, name, 1, 1<<30)
			if e.Root == nil {
				t.Fatal("no plan tree")
			}
			if e.Root.RowsOut != e.Stats.RowsOutput {
				t.Errorf("root rows_out=%d but Stats.RowsOutput=%d", e.Root.RowsOut, e.Stats.RowsOutput)
			}
			if e.Stats.Batches == 0 {
				t.Error("streaming execution recorded no batches in Stats")
			}
			var total int64
			for _, n := range e.Root.AllNodes() {
				if !n.Analyzed {
					t.Errorf("node %s(%s) not analyzed", n.Op, n.Detail)
				}
				if n.RowsOut > 0 && n.Batches == 0 {
					t.Errorf("node %s(%s) emitted %d rows in zero batches", n.Op, n.Detail, n.RowsOut)
				}
				total += n.Batches
			}
			if total > e.Stats.Batches {
				t.Errorf("plan nodes account for %d batches but Stats.Batches=%d", total, e.Stats.Batches)
			}
			// Materializing execution of the same query must stay
			// batch-free: the counters belong to streaming alone.
			m := explainUnder(t, name, 1, 1<<30)
			if m.Stats.Batches != 0 {
				t.Errorf("materializing execution recorded Stats.Batches=%d", m.Stats.Batches)
			}
			for _, n := range m.Root.AllNodes() {
				if n.Batches != 0 {
					t.Errorf("materializing node %s(%s) recorded %d batches", n.Op, n.Detail, n.Batches)
				}
			}
		})
	}
}

// TestExplainPlanOnlyShape checks that plan-only EXPLAIN produces the
// same tree shape as a real execution without reading any data, and
// that its trace still names the per-table provenance.
func TestExplainPlanOnlyShape(t *testing.T) {
	shape := func(e *uniqopt.Explanation) string {
		var sb strings.Builder
		for _, n := range e.Root.AllNodes() {
			sb.WriteString(n.Op + "(" + n.Detail + ")\n")
		}
		return sb.String()
	}
	for _, name := range paperQueryNames() {
		t.Run(name, func(t *testing.T) {
			db := goldenDB(t)
			sql := workload.PaperQueries[name]
			planOnly, err := db.ExplainWith(context.Background(), sql, goldenHosts, true, false)
			if err != nil {
				t.Fatal(err)
			}
			if planOnly.Analyzed {
				t.Error("plan-only explanation marked Analyzed")
			}
			if planOnly.Stats.RowsScanned != 0 {
				t.Errorf("plan-only EXPLAIN read %d base rows", planOnly.Stats.RowsScanned)
			}
			analyzed, err := db.ExplainWith(context.Background(), sql, goldenHosts, true, true)
			if err != nil {
				t.Fatal(err)
			}
			if shape(planOnly) != shape(analyzed) {
				t.Errorf("plan-only and analyzed tree shapes diverge:\n--- plan-only\n%s\n--- analyzed\n%s",
					shape(planOnly), shape(analyzed))
			}
			if len(planOnly.Trace) == 0 {
				t.Error("plan-only explanation carries no provenance trace")
			}
		})
	}
}
