package uniqopt

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"uniqopt/internal/workload"
)

// loadPaperInstance defines the paper's schema on db and copies the
// deterministic workload instance into it through the WAL-routed
// insert path.
func loadPaperInstance(t *testing.T, db *DB) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 40
	cfg.PaperLimits = true
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range workload.PaperDDL {
		if err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// paperBindings supplies host-variable values present in the
// workload instance, so bound queries return rows.
var paperBindings = map[string]any{
	"SUPPLIER-NO":   3,
	"SUPPLIER-NAME": "Smith",
	"PART-NO":       2,
	"PARTNO":        2,
}

// goldenTranscript runs every paper example on db — result rows and
// EXPLAIN with the analyzer's provenance trace — and renders one
// deterministic text transcript.
func goldenTranscript(t *testing.T, db *DB) string {
	t.Helper()
	names := make([]string, 0, len(workload.PaperQueries))
	for name := range workload.PaperQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		sql := workload.PaperQueries[name]
		hosts := map[string]any{}
		for _, hv := range workload.PaperHostVars[name] {
			hosts[hv] = paperBindings[hv]
		}
		fmt.Fprintf(&sb, "== %s\n", name)
		rows, err := db.QueryWith(sql, hosts, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&sb, "cols %v\n", rows.Columns)
		for _, r := range rows.Data {
			fmt.Fprintf(&sb, "row %v\n", r)
		}
		for _, rw := range rows.Rewrites {
			fmt.Fprintf(&sb, "rewrite %s: %s\n", rw.Rule, rw.Description)
		}
		ex, err := db.Explain(sql)
		if err != nil {
			t.Fatalf("%s explain: %v", name, err)
		}
		sb.WriteString(ex.String())
	}
	return sb.String()
}

// TestGoldenExamplesBothBackends is the durability acceptance test:
// the paper's worked examples must produce byte-identical results,
// rewrites, and EXPLAIN provenance on the in-memory backend, on the
// WAL backend, and on the WAL backend after a close/reopen recovery
// cycle. If recovery replays into a state the optimizer treats even
// slightly differently — a lost constraint, a changed key, a stale
// verdict cache — the transcripts diverge.
func TestGoldenExamplesBothBackends(t *testing.T) {
	mem := Open()
	loadPaperInstance(t, mem)
	want := goldenTranscript(t, mem)

	dir := t.TempDir()
	wal, err := OpenPersistent(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loadPaperInstance(t, wal)
	if got := goldenTranscript(t, wal); got != want {
		t.Fatalf("WAL backend transcript diverges from memory backend:\n%s", firstDiff(want, got))
	}
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPersistent(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Recovering() {
		t.Fatal("OpenPersistent returned a still-recovering database")
	}
	if got := goldenTranscript(t, re); got != want {
		t.Fatalf("post-recovery transcript diverges:\n%s", firstDiff(want, got))
	}
}

// TestCatalogVersionSurvivesReopen pins the verdict-cache soundness
// invariant: the catalog version after recovery is at least the
// version the schema reached before the crash, so cache keys minted
// pre-crash can never collide with a post-restart schema state.
func TestCatalogVersionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPersistent(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range workload.PaperDDL {
		if err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Backend().Catalog().Version()
	if before == 0 {
		t.Fatal("DDL did not advance the catalog version")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPersistent(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if after := re.Backend().Catalog().Version(); after < before {
		t.Fatalf("catalog version regressed across reopen: %d -> %d", before, after)
	}
	// The recovered schema must answer the paper's flagship verdict.
	a, err := re.Analyze(`SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		t.Fatal(err)
	}
	if !a.DistinctRedundant {
		t.Fatal("recovered schema lost the Example 1 uniqueness verdict")
	}
}

// TestExecInsertBothBackends covers the SQL INSERT path end to end on
// both backends, including host variables and multi-tuple statements.
func TestExecInsertBothBackends(t *testing.T) {
	open := map[string]func(t *testing.T) *DB{
		"memory": func(t *testing.T) *DB { return Open() },
		"wal": func(t *testing.T) *DB {
			db, err := OpenPersistent(t.TempDir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		},
	}
	for name, openFn := range open {
		t.Run(name, func(t *testing.T) {
			db := openFn(t)
			if err := db.Exec(`CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A))`); err != nil {
				t.Fatal(err)
			}
			n, err := db.ExecWith(`INSERT INTO T VALUES (1, 'x'), (2, 'y')`, nil)
			if err != nil || n != 2 {
				t.Fatalf("multi-tuple insert: n=%d err=%v", n, err)
			}
			n, err = db.ExecWith(`INSERT INTO T VALUES (:A, :B)`, map[string]any{"A": 3, "B": "z"})
			if err != nil || n != 1 {
				t.Fatalf("host-var insert: n=%d err=%v", n, err)
			}
			if _, err := db.ExecWith(`INSERT INTO T VALUES (1, 'dup')`, nil); err == nil {
				t.Fatal("duplicate key accepted")
			}
			rows, err := db.Query(`SELECT ALL A, B FROM T WHERE A = 3`)
			if err != nil || len(rows.Data) != 1 || rows.Data[0][1] != "z" {
				t.Fatalf("query after insert: %v %v", rows, err)
			}
		})
	}
}

// firstDiff renders the first diverging line of two transcripts.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  memory: %s\n  wal:    %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("transcript lengths differ: %d vs %d lines", len(w), len(g))
}
