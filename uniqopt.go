// Package uniqopt is a query-optimization library that reproduces
// Paulley & Larson, "Exploiting Uniqueness in Query Optimization"
// (ICDE 1994): detection of redundant DISTINCT clauses via derived
// key/functional dependencies (Theorem 1 / Algorithm 1), the
// subquery ↔ join transformations (Theorem 2, Corollary 1), and the
// set-operation ↔ EXISTS transformations (Theorem 3, Corollary 2,
// plus the EXCEPT variants), together with an executable SQL subset,
// a constraint-enforcing storage engine, and planners that measure
// what the rewrites buy.
//
// Quick start:
//
//	db := uniqopt.Open()
//	db.Exec(`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR,
//	         PRIMARY KEY (SNO))`)
//	db.Insert("SUPPLIER", 1, "Smith")
//	a, _ := db.Analyze(`SELECT DISTINCT SNO, SNAME FROM SUPPLIER`)
//	fmt.Println(a.DistinctRedundant) // true — SNO is the key
//
// The deeper substrates — the IMS hierarchical simulator and the OODB
// navigational simulator of the paper's Section 6 — live in
// internal/ims and internal/oodb and are exercised by the examples and
// the benchmark harness.
package uniqopt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"uniqopt/internal/catalog"
	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/metrics"
	"uniqopt/internal/plan"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/storage/wal"
	"uniqopt/internal/value"
)

// DB is a database with the uniqueness-aware optimizer attached. The
// default backend is in-memory; OpenPersistent swaps in the
// write-ahead-logged disk backend without changing any other API.
// Analysis verdicts and physical plans are memoized in per-DB caches
// keyed on query shape and schema version, so repeated statements skip
// Algorithm 1 and planning entirely; DDL invalidates both caches
// automatically.
type DB struct {
	store storage.Store
	opts  Options
	cache *core.VerdictCache
	plans *plan.PlanCache
	// stats accumulates engine work counters across every query this
	// DB has executed (merged atomically; see EngineCounters). It is a
	// pointer so View handles share one accumulator with their parent.
	stats *engine.Stats
	// metrics accumulates per-shape latency histograms, cache hit
	// rates, governor rejections, and pool utilization (see Metrics).
	metrics *metrics.Registry
}

// Options tune the optimizer.
type Options struct {
	// UseKeyFDs lets the analyzer close over key dependencies (sound
	// extension; answers YES more often than the paper's Algorithm 1).
	UseKeyFDs bool
	// BindIsNull treats IS NULL conjuncts as binding (sound extension).
	BindIsNull bool
	// UseCheckConstraints imports column=constant CHECKs on NOT NULL
	// columns as bindings (sound extension, §2.1's observation).
	UseCheckConstraints bool
	// HashDistinct uses hash-based instead of sort-based duplicate
	// elimination during execution.
	HashDistinct bool
	// CostBased estimates original-vs-rewritten cost and executes the
	// cheaper form (§5's cost-model framing). Without it the rewritten
	// form always runs.
	CostBased bool
	// MaxRows caps the rows any single query may materialize across
	// all of its operators (0 = unlimited). Exceeding it aborts the
	// query with an error matching ErrBudgetExceeded.
	MaxRows int64
	// MemBudget caps the estimated bytes a single query may hold in
	// hash tables, sort buffers, and outputs (0 = unlimited).
	MemBudget int64
	// Streaming executes queries as pull-based batched iterator
	// pipelines instead of materializing every operator's output.
	// Results and row order are identical to materializing execution,
	// but only blocking state (hash tables, sort buffers) stays
	// resident, so MemBudget bounds the pipeline's live footprint.
	Streaming bool
}

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by every
// budget failure, regardless of which resource ran out.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// BudgetError is the concrete error returned when a query exceeds its
// MaxRows or MemBudget; it names the resource and reports the limit
// and observed usage.
type BudgetError = engine.BudgetError

// InternalError wraps a panic contained at an executor, planner, or
// worker boundary, carrying the operator name and the goroutine stack
// at the point of panic.
type InternalError = engine.InternalError

// Open creates an empty database.
func Open() *DB { return OpenWith(Options{}) }

// OpenWith creates an empty database with the given optimizer options.
func OpenWith(opts Options) *DB {
	return newDB(storage.NewDB(catalog.New()), opts)
}

// OpenPersistent opens (or creates) a crash-safe database in the data
// directory dir: every DDL statement and inserted row goes through a
// write-ahead log, compacted periodically into a snapshot, and a
// restart replays the durable prefix through the same
// constraint-enforcing paths the live system uses. Recovery runs
// before OpenPersistent returns; see OpenPersistentDeferred for the
// server's listen-first variant. Call Sync to make recent inserts
// durable and Close before process exit.
func OpenPersistent(dir string, opts Options) (*DB, error) {
	db, err := OpenPersistentDeferred(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := db.Recover(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// OpenPersistentDeferred opens the data directory without replaying
// it: the database is immediately usable for Recovering checks but
// refuses reads of meaningful state and all writes (with an error
// matching storage.ErrRecovering) until Recover completes. Servers
// use this to bind their listener first and replay in the background.
func OpenPersistentDeferred(dir string, opts Options) (*DB, error) {
	st, err := wal.Open(dir, wal.DefaultOptions)
	if err != nil {
		return nil, err
	}
	return newDB(st, opts), nil
}

func newDB(st storage.Store, opts Options) *DB {
	return &DB{
		store:   st,
		opts:    opts,
		cache:   core.NewVerdictCache(0),
		plans:   plan.NewPlanCache(0),
		stats:   &engine.Stats{},
		metrics: metrics.New(),
	}
}

// Recover replays persisted state (no-op completion for the in-memory
// backend, which opens recovered). See OpenPersistentDeferred.
func (d *DB) Recover() error { return d.store.Recover() }

// Recovering reports whether the backend is still replaying persisted
// state; writes are refused until it returns false.
func (d *DB) Recovering() bool { return d.store.Recovering() }

// Sync makes every acknowledged-pending write durable — the fsync
// barrier. A no-op on the in-memory backend.
func (d *DB) Sync() error { return d.store.Sync() }

// Checkpoint compacts the write-ahead log into a snapshot, bounding
// restart time. A no-op on the in-memory backend.
func (d *DB) Checkpoint() error { return d.store.Checkpoint() }

// Close flushes and fsyncs the backend and releases its files. The
// in-memory backend closes trivially.
func (d *DB) Close() error { return d.store.Close() }

// View returns a handle onto the same database with different
// Options: it shares this DB's storage, verdict cache, metrics
// registry, and cumulative counters, but queries issued through the
// view run under the view's options. This is the per-session budget
// mechanism of the network server — each session gets a view whose
// MaxRows/MemBudget cap its queries without constraining anyone
// else's, while every verdict-cache hit and latency observation still
// lands in the shared registries.
func (d *DB) View(opts Options) *DB {
	return &DB{
		store:   d.store,
		opts:    opts,
		cache:   d.cache,
		plans:   d.plans,
		stats:   d.stats,
		metrics: d.metrics,
	}
}

// Opts reports the options this handle executes under.
func (d *DB) Opts() Options { return d.opts }

// Exec runs a write statement: CREATE TABLE or INSERT INTO … VALUES.
func (d *DB) Exec(sql string) error {
	_, err := d.ExecWith(sql, nil)
	return err
}

// ExecWith runs a write statement with host-variable bindings and
// reports the rows affected (0 for DDL, the tuple count for INSERT —
// all-or-nothing: the first constraint violation rejects the
// statement's remaining tuples too). On the persistent backend DDL is
// immediately durable; inserted rows become durable at the next Sync.
func (d *DB) ExecWith(sql string, hosts map[string]any) (int64, error) {
	st, err := parser.ParseStatement(sql)
	if err != nil {
		return 0, err
	}
	switch st := st.(type) {
	case *ast.CreateTable:
		_, err := d.store.ApplyDDL(sql, st)
		return 0, err
	case *ast.Insert:
		return d.execInsert(st, hosts)
	default:
		return 0, fmt.Errorf("uniqopt: Exec accepts CREATE TABLE and INSERT; use Query for queries")
	}
}

// execInsert evaluates each VALUES tuple and routes it through the
// backend's constraint-enforcing insert path.
func (d *DB) execInsert(ins *ast.Insert, hosts map[string]any) (int64, error) {
	hv := map[string]value.Value{}
	for k, v := range hosts {
		cv, err := Convert(v)
		if err != nil {
			return 0, fmt.Errorf("uniqopt: host :%s: %w", k, err)
		}
		hv[k] = cv
	}
	var n int64
	for _, tuple := range ins.Rows {
		row := make(value.Row, len(tuple))
		for i, e := range tuple {
			v, err := insertValue(e, hv)
			if err != nil {
				return n, err
			}
			row[i] = v
		}
		if err := d.store.Insert(ins.Table, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// insertValue evaluates one INSERT value: a literal or a host
// variable, never a general expression.
func insertValue(e ast.Expr, hosts map[string]value.Value) (value.Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return value.Int(e.V), nil
	case *ast.StringLit:
		return value.String_(e.V), nil
	case *ast.BoolLit:
		return value.Bool(e.V), nil
	case *ast.NullLit:
		return value.Null, nil
	case *ast.HostVar:
		v, ok := hosts[e.Name]
		if !ok {
			return value.Null, fmt.Errorf("uniqopt: unbound host variable :%s", e.Name)
		}
		return v, nil
	default:
		return value.Null, fmt.Errorf("uniqopt: INSERT value is %T, not a literal or host variable", e)
	}
}

// Insert adds a row; Go values are converted (int/int64 → INTEGER,
// string → VARCHAR, bool → BOOLEAN, nil → NULL).
func (d *DB) Insert(table string, values ...any) error {
	row := make(value.Row, len(values))
	for i, v := range values {
		cv, err := Convert(v)
		if err != nil {
			return fmt.Errorf("uniqopt: value %d: %w", i, err)
		}
		row[i] = cv
	}
	return d.store.Insert(table, row)
}

// InsertRow adds an already-typed row through the backend's
// constraint-enforcing (and, when persistent, WAL-logged) insert
// path. Loaders that copy rows between databases use this instead of
// writing to Store() directly, so bulk loads survive a restart.
func (d *DB) InsertRow(table string, row value.Row) error {
	return d.store.Insert(table, row)
}

// Convert maps a Go value to a SQL value.
func Convert(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.Int(int64(x)), nil
	case int64:
		return value.Int(x), nil
	case string:
		return value.String_(x), nil
	case bool:
		return value.Bool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Null, fmt.Errorf("unsupported Go type %T", v)
	}
}

// Rows is a materialized query result.
type Rows struct {
	Columns []string
	Data    [][]any
	// Stats are the engine work counters for the execution.
	Stats engine.Stats
	// Rewrites lists the transformations the optimizer applied
	// (empty when executed with Optimize=false).
	Rewrites []RewriteInfo
	// Plan is the physical plan, one operator per line.
	Plan []string
}

// RewriteInfo describes one applied transformation.
type RewriteInfo struct {
	Rule        string
	Description string
	Before      string
	After       string
}

// Query parses, optimizes, and executes a SQL query with no host
// variables.
func (d *DB) Query(sql string) (*Rows, error) {
	return d.QueryWithContext(context.Background(), sql, nil, true)
}

// QueryContext is Query under a context: cancellation and deadlines
// are observed cooperatively inside every engine operator (including
// the parallel paths), the configured MaxRows/MemBudget are enforced,
// and a panic anywhere in planning or execution is contained into an
// *InternalError rather than crashing the caller. On error the
// returned Rows is nil — partial results never escape.
func (d *DB) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	return d.QueryWithContext(ctx, sql, nil, true)
}

// QueryBaseline executes the query exactly as written (no rewrites) —
// the comparison point for the optimizer's effect.
func (d *DB) QueryBaseline(sql string) (*Rows, error) {
	return d.QueryWithContext(context.Background(), sql, nil, false)
}

// QueryWith executes a query with host-variable bindings (Go values),
// optionally applying the uniqueness rewrites first.
func (d *DB) QueryWith(sql string, hosts map[string]any, optimize bool) (*Rows, error) {
	return d.QueryWithContext(context.Background(), sql, hosts, optimize)
}

// QueryWithContext is QueryWith under a context; see QueryContext for
// the lifecycle guarantees.
func (d *DB) QueryWithContext(ctx context.Context, sql string, hosts map[string]any, optimize bool) (*Rows, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	hv := map[string]value.Value{}
	for k, v := range hosts {
		cv, err := Convert(v)
		if err != nil {
			return nil, fmt.Errorf("uniqopt: host :%s: %w", k, err)
		}
		hv[k] = cv
	}
	p := d.planner(optimize, false)
	t0 := time.Now()
	res, err := p.RunContext(ctx, q, hv)
	d.observeQuery(sql, time.Since(t0), res, err)
	if err != nil {
		return nil, err
	}
	d.stats.Add(res.Stats)
	out := &Rows{Columns: res.Rel.Cols, Stats: res.Stats, Plan: res.Plan}
	for _, ap := range res.Rewrites {
		out.Rewrites = append(out.Rewrites, RewriteInfo{
			Rule:        string(ap.Rule),
			Description: ap.Description,
			Before:      ap.Before,
			After:       ap.After,
		})
	}
	out.Data = make([][]any, len(res.Rel.Rows))
	for i, row := range res.Rel.Rows {
		out.Data[i] = make([]any, len(row))
		for j, v := range row {
			out.Data[i][j] = toGo(v)
		}
	}
	return out, nil
}

// planner builds a planner over this DB's store with its configured
// options; explainOnly plans without reading base-table data.
func (d *DB) planner(optimize, explainOnly bool) *plan.Planner {
	return plan.NewPlanner(d.store.Heap(), plan.Options{
		ApplyRewrites: optimize,
		CostBased:     d.opts.CostBased,
		HashDistinct:  d.opts.HashDistinct,
		Core: core.Options{
			UseKeyFDs:           d.opts.UseKeyFDs,
			BindIsNull:          d.opts.BindIsNull,
			UseCheckConstraints: d.opts.UseCheckConstraints,
		},
		Cache:       d.cache,
		Plans:       d.plans,
		MaxRows:     d.opts.MaxRows,
		MemBudget:   d.opts.MemBudget,
		ExplainOnly: explainOnly,
		Streaming:   d.opts.Streaming,
	})
}

// observeQuery records one execution into the metrics registry: shape
// latency, analyzer-cache deltas, pool fan-out, and (on a budget
// error) a governor rejection.
func (d *DB) observeQuery(shape string, elapsed time.Duration, res *plan.Result, err error) {
	d.metrics.ObserveQuery(shape, elapsed.Nanoseconds())
	if err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			d.metrics.ObserveRejection()
		}
		return
	}
	st := res.Stats.Snapshot()
	d.metrics.ObserveCacheDelta(st.CacheHits, st.CacheMisses)
	d.metrics.ObservePool(st.WorkersUsed, int64(engine.Workers()))
}

func toGo(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt()
	case value.KindString:
		return v.AsString()
	case value.KindBool:
		return v.AsBool()
	default:
		return nil
	}
}

// Explanation is the result of EXPLAIN / EXPLAIN ANALYZE: the typed
// physical plan tree, the optimizer's rewrite decisions, and the
// uniqueness analyzer's provenance trace (how Algorithm 1 reached its
// verdict — which equalities bound which columns, and per FROM table
// the candidate key that satisfied the coverage test or the table
// that blocked it).
type Explanation struct {
	// Root is the typed plan tree; for ANALYZE its nodes carry rows
	// in/out, per-operator wall time, and parallel-path usage.
	Root *plan.Node
	// Analyzed reports whether the plan was really executed (EXPLAIN
	// ANALYZE) or only planned against empty inputs (EXPLAIN).
	Analyzed bool
	// Rewrites lists the transformations the optimizer applied.
	Rewrites []RewriteInfo
	// Trace is the analyzer's provenance, one fact per line,
	// deterministically ordered.
	Trace []string
	// KeysUsed renders the verdict's per-table deciding keys, sorted.
	KeysUsed []string
	// Stats are the engine work counters (zero unless Analyzed).
	Stats engine.Stats
	// Plan is the legacy one-line-per-operator rendering.
	Plan []string
}

// Explain plans the query — applying the uniqueness rewrites — without
// reading any table data, and reports the plan tree plus the
// analyzer's provenance trace.
func (d *DB) Explain(sql string) (*Explanation, error) {
	return d.ExplainWith(context.Background(), sql, nil, true, false)
}

// ExplainAnalyze executes the query for real and reports the plan
// tree annotated with per-operator row counts, wall times, and
// parallel-path usage, plus the analyzer's provenance trace.
func (d *DB) ExplainAnalyze(sql string) (*Explanation, error) {
	return d.ExplainWith(context.Background(), sql, nil, true, true)
}

// ExplainWith is the general form: host-variable bindings, optional
// rewriting, and a choice between plan-only (analyze=false) and real
// execution (analyze=true). Explain runs are not recorded in the
// metrics registry, so profiling a workload is not skewed by
// inspecting it.
func (d *DB) ExplainWith(ctx context.Context, sql string, hosts map[string]any, optimize, analyze bool) (*Explanation, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	hv := map[string]value.Value{}
	for k, v := range hosts {
		cv, err := Convert(v)
		if err != nil {
			return nil, fmt.Errorf("uniqopt: host :%s: %w", k, err)
		}
		hv[k] = cv
	}
	res, err := d.planner(optimize, !analyze).RunContext(ctx, q, hv)
	if err != nil {
		return nil, err
	}
	out := &Explanation{
		Root:     res.Root,
		Analyzed: analyze,
		Plan:     res.Plan,
	}
	if analyze {
		out.Stats = res.Stats.Snapshot()
	}
	for _, ap := range res.Rewrites {
		out.Rewrites = append(out.Rewrites, RewriteInfo{
			Rule:        string(ap.Rule),
			Description: ap.Description,
			Before:      ap.Before,
			After:       ap.After,
		})
	}
	// The provenance trace explains the verdict on the query as
	// written — the decision that licensed (or blocked) the rewrites.
	if v, aerr := d.analyzer().AnalyzeQuery(q); aerr == nil && v != nil {
		out.Trace = v.Trace.Lines()
		out.KeysUsed = v.KeysUsedLines()
	}
	return out, nil
}

// String renders the explanation as text: the plan tree (with metrics
// when Analyzed), then the rewrites and the analyzer trace.
func (e *Explanation) String() string {
	var sb strings.Builder
	sb.WriteString(e.Root.Format(e.Analyzed))
	if len(e.Rewrites) > 0 {
		sb.WriteString("rewrites:\n")
		for _, r := range e.Rewrites {
			fmt.Fprintf(&sb, "  %s: %s\n", r.Rule, r.Description)
		}
	}
	if len(e.Trace) > 0 {
		sb.WriteString("uniqueness analysis:\n")
		for _, l := range e.Trace {
			sb.WriteString("  " + l + "\n")
		}
	}
	if len(e.KeysUsed) > 0 {
		sb.WriteString("keys used:\n")
		for _, l := range e.KeysUsed {
			sb.WriteString("  " + l + "\n")
		}
	}
	return sb.String()
}

// JSON renders the explanation as indented JSON (plan tree, rewrites,
// trace).
func (e *Explanation) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Root     *plan.Node    `json:"plan"`
		Analyzed bool          `json:"analyzed"`
		Rewrites []RewriteInfo `json:"rewrites,omitempty"`
		Trace    []string      `json:"trace,omitempty"`
		KeysUsed []string      `json:"keys_used,omitempty"`
	}{e.Root, e.Analyzed, e.Rewrites, e.Trace, e.KeysUsed}, "", "  ")
}

// Analysis is the user-facing uniqueness report for a query.
type Analysis struct {
	// Unique reports the analyzer proved the result duplicate-free.
	Unique bool
	// DistinctRedundant is Unique for a query that spells DISTINCT.
	DistinctRedundant bool
	// BoundColumns is Algorithm 1's final V set.
	BoundColumns []string
	// KeysUsed names the candidate key found bound for each table.
	KeysUsed map[string][]string
	// DerivedKeys are the candidate keys of the derived table.
	DerivedKeys [][]string
	// MissingTable names the table blocking a YES verdict, if any.
	MissingTable string
}

// Analyze runs Algorithm 1 (with the configured extensions) on a
// query and reports the verdict.
func (d *DB) Analyze(sql string) (*Analysis, error) {
	return d.AnalyzeContext(context.Background(), sql)
}

// AnalyzeContext is Analyze under a context. Algorithm 1 itself is
// fast and in-memory, so the context is checked once up front and the
// analyzer is wrapped in panic containment — a cancelled ctx returns
// its error, and an analyzer panic surfaces as *InternalError rather
// than crashing the caller.
func (d *DB) AnalyzeContext(ctx context.Context, sql string) (res *Analysis, err error) {
	defer func() {
		if err != nil {
			res = nil
		}
	}()
	defer engine.Contain("uniqopt.Analyze", &err)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	an := d.analyzer()
	v, err := an.AnalyzeQuery(q)
	if err != nil {
		return nil, err
	}
	out := &Analysis{
		Unique:       v.Unique,
		BoundColumns: v.Bound,
		KeysUsed:     v.KeysUsed,
		DerivedKeys:  v.DerivedKeys,
		MissingTable: v.MissingTable,
	}
	if s, ok := q.(*ast.Select); ok && s.Quant.IsDistinct() {
		out.DistinctRedundant = v.Unique
	}
	return out, nil
}

// Suggest returns every rewrite the optimizer would consider for the
// query, without executing anything.
func (d *DB) Suggest(sql string) ([]RewriteInfo, error) {
	q, err := parser.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	aps, err := d.analyzer().Suggest(q)
	if err != nil {
		return nil, err
	}
	out := make([]RewriteInfo, len(aps))
	for i, ap := range aps {
		out[i] = RewriteInfo{
			Rule:        string(ap.Rule),
			Description: ap.Description,
			Before:      ap.Before,
			After:       ap.After,
		}
	}
	return out, nil
}

func (d *DB) analyzer() *core.Analyzer {
	return &core.Analyzer{Cat: d.store.Catalog(), Opts: core.Options{
		UseKeyFDs:           d.opts.UseKeyFDs,
		BindIsNull:          d.opts.BindIsNull,
		UseCheckConstraints: d.opts.UseCheckConstraints,
	}, Cache: d.cache}
}

// CacheCounters reports the cumulative analyzer-cache hits and misses
// for this DB.
func (d *DB) CacheCounters() (hits, misses int64) { return d.cache.Counters() }

// PlanCacheCounters reports the cumulative plan-cache hits and misses
// for this DB.
func (d *DB) PlanCacheCounters() (hits, misses int64) { return d.plans.Counters() }

// EngineCounters reports the cumulative engine work counters across
// every query executed on this DB (a consistent atomic snapshot).
func (d *DB) EngineCounters() engine.Stats { return d.stats.Snapshot() }

// GovernorCounters reports the cumulative resource-governor charges
// across every query executed on this DB: rows and estimated bytes
// charged at materialization points (hash-table inserts, sort
// buffers, operator outputs). They advance whether or not a budget is
// configured, so they double as a cheap footprint profile.
func (d *DB) GovernorCounters() (rows, bytes int64) {
	st := d.stats.Snapshot()
	return st.RowsMaterialized, st.BytesReserved
}

// Metrics reports a deterministic snapshot of this DB's observability
// registry: per-query-shape latency histograms, analyzer-cache hit
// rate, governor rejections, and worker-pool utilization.
func (d *DB) Metrics() metrics.Snapshot { return d.metrics.Snapshot() }

// MetricsJSON renders the metrics snapshot as indented JSON.
func (d *DB) MetricsJSON() ([]byte, error) { return d.metrics.JSON() }

// PublishMetrics registers this DB's metrics registry on the
// process-wide expvar endpoint under name (panics, like
// expvar.Publish, if the name is already taken).
func (d *DB) PublishMetrics(name string) { d.metrics.Publish(name) }

// Store exposes the underlying heap storage for advanced integrations
// (the IMS/OODB loaders, the benchmark harness). Writes through this
// handle bypass the write-ahead log — on a persistent database they
// will not survive a restart; use Exec/Insert for durable writes.
func (d *DB) Store() *storage.DB { return d.store.Heap() }

// Backend exposes the storage.Store the database writes through.
func (d *DB) Backend() storage.Store { return d.store }

// CreateIndex builds an ordered secondary index on the named table,
// enabling the planner's point/range access paths.
func (d *DB) CreateIndex(table, name string, columns ...string) error {
	t, ok := d.store.Heap().Table(table)
	if !ok {
		return fmt.Errorf("uniqopt: unknown table %s", table)
	}
	_, err := t.CreateOrderedIndex(name, columns...)
	return err
}

// CheckExact runs the exact (exponential) Theorem-1 test for a query
// specification over small default domains: two values per column plus
// NULL where allowed. It returns whether the query is duplicate-free
// over those domains and, when it is not, a human-readable witness —
// two qualifying tuples that agree on the projection. maxCombos caps
// the enumeration (0 = 5,000,000); exceeding it returns an error, which
// is the practical face of the NP-completeness the paper notes.
func (d *DB) CheckExact(sql string, maxCombos int) (unique bool, witness string, err error) {
	s, err := parser.ParseSelect(sql)
	if err != nil {
		return false, "", err
	}
	if maxCombos <= 0 {
		maxCombos = 5_000_000
	}
	an := d.analyzer()
	domains, err := core.DefaultDomains(d.store.Catalog(), s)
	if err != nil {
		return false, "", err
	}
	u, w, err := an.ExactUniqueness(s, domains, maxCombos)
	if err != nil {
		return false, "", err
	}
	if w != nil {
		witness = w.String()
	}
	return u, witness, nil
}
