package uniqopt

import (
	"strings"
	"testing"
)

// paperDB opens a database with Figure 1's schema and a small instance.
func paperDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	ddl := []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR,
			BUDGET INTEGER, STATUS VARCHAR, PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR,
			OEM-PNO INTEGER, COLOR VARCHAR, PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO))`,
		`CREATE TABLE AGENTS (SNO INTEGER, ANO INTEGER, ANAME VARCHAR,
			ACITY VARCHAR, PRIMARY KEY (SNO, ANO))`,
	}
	for _, d := range ddl {
		if err := db.Exec(d); err != nil {
			t.Fatal(err)
		}
	}
	sup := [][]any{
		{1, "Smith", "Toronto", 100, "Active"},
		{2, "Jones", "Chicago", 200, "Active"},
		{3, "Smith", "New York", 300, "Active"},
	}
	for _, r := range sup {
		if err := db.Insert("SUPPLIER", r...); err != nil {
			t.Fatal(err)
		}
	}
	parts := [][]any{
		{1, 1, "bolt", 101, "RED"},
		{1, 2, "nut", nil, "BLUE"},
		{2, 1, "bolt", 103, "RED"},
		{3, 9, "cam", 104, "RED"},
	}
	for _, r := range parts {
		if err := db.Insert("PARTS", r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("AGENTS", 1, 1, "Ann", "Ottawa"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecValidation(t *testing.T) {
	db := Open()
	if err := db.Exec("SELECT 1 FROM T"); err == nil {
		t.Error("Exec should reject queries")
	}
	if err := db.Exec("CREATE TABLE"); err == nil {
		t.Error("Exec should propagate parse errors")
	}
}

func TestInsertConversion(t *testing.T) {
	db := paperDB(t)
	if err := db.Insert("SUPPLIER", int64(4), "Kim", "Toronto", 1, "Active"); err != nil {
		t.Errorf("int64 insert failed: %v", err)
	}
	if err := db.Insert("SUPPLIER", 5, "Kim", nil, 1, "Active"); err != nil {
		t.Errorf("nil insert failed: %v", err)
	}
	if err := db.Insert("SUPPLIER", 3.14, "x", "y", 1, "z"); err == nil {
		t.Error("unsupported type should fail")
	}
	if err := db.Insert("SUPPLIER", 1, "dup", "Toronto", 1, "Active"); err == nil {
		t.Error("duplicate primary key should fail")
	}
}

func TestAnalyzePaperExamples(t *testing.T) {
	db := paperDB(t)
	a, err := db.Analyze(`SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		t.Fatal(err)
	}
	if !a.DistinctRedundant || !a.Unique {
		t.Errorf("Example 1 should be redundant: %+v", a)
	}
	if len(a.KeysUsed["P"]) != 2 {
		t.Errorf("keys used = %v", a.KeysUsed)
	}

	a, err = db.Analyze(`SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		t.Fatal(err)
	}
	if a.DistinctRedundant {
		t.Error("Example 2 must keep its DISTINCT")
	}
	if a.MissingTable != "S" {
		t.Errorf("missing table = %q", a.MissingTable)
	}
}

func TestQueryAndBaselineAgree(t *testing.T) {
	db := paperDB(t)
	src := `SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`
	opt, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	base, err := db.QueryBaseline(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Data) != 3 || len(base.Data) != 3 {
		t.Fatalf("rows: opt=%d base=%d", len(opt.Data), len(base.Data))
	}
	if len(opt.Rewrites) == 0 {
		t.Error("optimizer should report the DISTINCT elimination")
	}
	if len(base.Rewrites) != 0 {
		t.Error("baseline must not rewrite")
	}
	if opt.Stats.SortRuns != 0 {
		t.Error("optimized run should not sort")
	}
	if base.Stats.SortRuns == 0 {
		t.Error("baseline run should sort")
	}
}

func TestQueryWithHosts(t *testing.T) {
	db := paperDB(t)
	rows, err := db.QueryWith(`SELECT ALL S.SNO, SNAME, P.PNO, PNAME
		FROM SUPPLIER S, PARTS P
		WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO`,
		map[string]any{"SUPPLIER-NO": 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("rows = %d", len(rows.Data))
	}
	if rows.Data[0][1] != "Smith" {
		t.Errorf("data = %v", rows.Data)
	}
	if _, err := db.QueryWith("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :H",
		map[string]any{"H": 3.14}, true); err == nil {
		t.Error("bad host type should fail")
	}
}

func TestNullRoundTrip(t *testing.T) {
	db := paperDB(t)
	rows, err := db.Query(`SELECT P.OEM-PNO FROM PARTS P WHERE P.OEM-PNO IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != nil {
		t.Errorf("NULL round trip = %v", rows.Data)
	}
}

func TestSuggest(t *testing.T) {
	db := paperDB(t)
	infos, err := db.Suggest(`SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("expected a suggestion")
	}
	if infos[0].Rule != "subquery-to-distinct-join" {
		t.Errorf("rule = %s", infos[0].Rule)
	}
	if !strings.Contains(infos[0].After, "SELECT DISTINCT") {
		t.Errorf("after = %s", infos[0].After)
	}
}

func TestOptionsFlowThrough(t *testing.T) {
	// UseKeyFDs changes a verdict (pinned case from core tests).
	ddl := []string{
		`CREATE TABLE R (K INTEGER, X INTEGER, Y INTEGER, PRIMARY KEY (K))`,
		`CREATE TABLE S (K INTEGER, Z INTEGER, PRIMARY KEY (K))`,
	}
	plain := Open()
	ext := OpenWith(Options{UseKeyFDs: true})
	for _, d := range ddl {
		if err := plain.Exec(d); err != nil {
			t.Fatal(err)
		}
		if err := ext.Exec(d); err != nil {
			t.Fatal(err)
		}
	}
	src := "SELECT R.K FROM R R, S S WHERE R.X = S.K"
	pa, err := plain.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := ext.Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Unique || !ea.Unique {
		t.Errorf("options did not flow through: plain=%v ext=%v", pa.Unique, ea.Unique)
	}
}

func TestSetOpThroughFacade(t *testing.T) {
	db := paperDB(t)
	rows, err := db.Query(`SELECT ALL S.SNO FROM SUPPLIER S
		INTERSECT SELECT ALL A.SNO FROM AGENTS A`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != int64(1) {
		t.Errorf("intersect = %v", rows.Data)
	}
	if len(rows.Rewrites) == 0 {
		t.Error("intersect rewrite should fire through the façade")
	}
}

func TestHashDistinctOption(t *testing.T) {
	db := OpenWith(Options{HashDistinct: true})
	if err := db.Exec(`CREATE TABLE T (A INTEGER, B INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Insert("T", i%3, i%2); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query(`SELECT DISTINCT A FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Errorf("rows = %d", len(rows.Data))
	}
	if rows.Stats.SortRuns != 0 {
		t.Error("hash distinct should not sort")
	}
}

func TestStoreAccessor(t *testing.T) {
	db := paperDB(t)
	if db.Store() == nil || db.Store().MustTable("SUPPLIER").Len() != 3 {
		t.Error("Store accessor broken")
	}
}

func TestCreateIndexAndAccessPath(t *testing.T) {
	db := paperDB(t)
	if err := db.CreateIndex("SUPPLIER", "SNO_IX", "SNO"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("NOPE", "X", "Y"); err == nil {
		t.Error("unknown table should fail")
	}
	if err := db.CreateIndex("SUPPLIER", "BAD", "NOPE"); err == nil {
		t.Error("unknown column should fail")
	}
	rows, err := db.Query("SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != "Jones" {
		t.Errorf("data = %v", rows.Data)
	}
	if rows.Stats.IndexSeeks != 1 || rows.Stats.RowsScanned != 1 {
		t.Errorf("index path not used: %s", rows.Stats.String())
	}
}

func TestCheckExact(t *testing.T) {
	db := paperDB(t)
	u, _, err := db.CheckExact("SELECT S.SNO, S.SNAME FROM SUPPLIER S", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !u {
		t.Error("key-projecting query must be exactly unique")
	}
	u, w, err := db.CheckExact("SELECT S.SNAME FROM SUPPLIER S", 0)
	if err != nil {
		t.Fatal(err)
	}
	if u || w == "" {
		t.Errorf("non-key projection must yield a witness: unique=%v w=%q", u, w)
	}
	if _, _, err := db.CheckExact("SELECT S.SNAME FROM SUPPLIER S", 5); err == nil {
		t.Error("tiny cap should fail with too-many-combinations")
	}
	if _, _, err := db.CheckExact("not sql", 0); err == nil {
		t.Error("parse errors should propagate")
	}
}
