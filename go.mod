module uniqopt

go 1.22
