package uniqopt

import (
	"context"
	"strings"
	"testing"
)

// TestHostVarMissingBinding: executing a statement without a value
// for one of its host variables fails with a named, typed error —
// the statement is not silently run with NULL.
func TestHostVarMissingBinding(t *testing.T) {
	db := paperDB(t)
	_, err := db.QueryWithContext(context.Background(),
		`SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :SNO AND S.SCITY = :CITY`,
		map[string]any{"SNO": 1}, true)
	if err == nil {
		t.Fatal("missing binding should fail")
	}
	if !strings.Contains(err.Error(), "unbound host variable :CITY") {
		t.Errorf("error should name the unbound variable, got: %v", err)
	}
	// No bindings at all fails the same way.
	_, err = db.QueryWithContext(context.Background(),
		`SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :SNO`, nil, true)
	if err == nil || !strings.Contains(err.Error(), "unbound host variable :SNO") {
		t.Errorf("nil bindings: %v", err)
	}
}

// TestHostVarExtraBinding: bindings the statement never references
// are ignored — a client may keep one parameter map for several
// prepared statements.
func TestHostVarExtraBinding(t *testing.T) {
	db := paperDB(t)
	rows, err := db.QueryWithContext(context.Background(),
		`SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :SNO`,
		map[string]any{"SNO": 2, "UNUSED": "x", "ALSO-UNUSED": int64(7)}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != int64(2) {
		t.Errorf("rows = %v", rows.Data)
	}
}

// TestHostVarNullBinding: a host variable explicitly bound to NULL
// participates in three-valued logic — :X = NULL makes the predicate
// UNKNOWN everywhere, so the result is empty rather than an error.
func TestHostVarNullBinding(t *testing.T) {
	db := paperDB(t)
	rows, err := db.QueryWithContext(context.Background(),
		`SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :SNO`,
		map[string]any{"SNO": nil}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 0 {
		t.Errorf("NULL-valued comparison should match nothing, got %v", rows.Data)
	}
	// The same under the baseline path, so the rewrite layer cannot
	// be what discarded the rows.
	rows, err = db.QueryWithContext(context.Background(),
		`SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :SNO`,
		map[string]any{"SNO": nil}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 0 {
		t.Errorf("baseline NULL comparison should match nothing, got %v", rows.Data)
	}
}

// TestHostVarReexecution: the prepared-statement pattern — one shape,
// many bindings. Results track the bindings, and after the first
// execution the analyzer's verdict comes from the cache (the verdict
// depends on the shape, not the host values).
func TestHostVarReexecution(t *testing.T) {
	db := paperDB(t)
	const src = `SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :SNO`
	want := map[int64]string{1: "Smith", 2: "Jones", 3: "Smith"}

	if _, err := db.QueryWithContext(context.Background(), src,
		map[string]any{"SNO": 1}, true); err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := db.CacheCounters()
	hitsBefore, _ := db.CacheCounters()

	for sno, name := range want {
		rows, err := db.QueryWithContext(context.Background(), src,
			map[string]any{"SNO": sno}, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != 1 || rows.Data[0][0] != sno || rows.Data[0][1] != name {
			t.Errorf("SNO=%d: rows = %v", sno, rows.Data)
		}
		if len(rows.Rewrites) == 0 {
			t.Errorf("SNO=%d: DISTINCT over the key should be rewritten", sno)
		}
	}

	hits, misses := db.CacheCounters()
	if misses != missesAfterFirst {
		t.Errorf("re-execution re-analyzed the shape: misses %d -> %d", missesAfterFirst, misses)
	}
	if hits < hitsBefore+3 {
		t.Errorf("re-executions should hit the verdict cache: hits %d -> %d", hitsBefore, hits)
	}
}
