GO ?= go

.PHONY: all vet build test race bench-smoke bench-tables ci clean

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchrunner pass over the parallel/cache experiment; emits the
# machine-readable artifact BENCH_parallel.json alongside the table.
bench-smoke:
	$(GO) run ./cmd/benchrunner -exp ep -scale 0.1 -json BENCH_parallel.json

# Full experiment sweep, regenerating bench_output_tables.txt.
bench-tables:
	$(GO) run ./cmd/benchrunner -exp all -scale 0.25 > bench_output_tables.txt

ci: vet build test race bench-smoke

clean:
	rm -f BENCH_parallel.json
