GO ?= go

.PHONY: all vet lint build test test-fault race bench-smoke explain-smoke stream-smoke server-smoke planner-smoke crash-matrix storage-smoke bench-tables ci clean

all: ci

vet:
	$(GO) vet ./...

# uniqlint enforces the repo's semantic invariants (3VL comparisons,
# Stats atomics, row aliasing, catalog version bumps, deterministic
# map iteration, context threading in engine/plan). Exits nonzero on
# any unsuppressed finding.
lint:
	$(GO) run ./cmd/uniqlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Lifecycle fault matrix: the fault tag arms the deterministic
# injection registry (internal/fault) and exercises every engine
# point in every failure mode.
test-fault:
	$(GO) test -tags fault ./...

race:
	$(GO) test -race ./...

# Quick benchrunner pass over the parallel/cache experiment; emits the
# machine-readable artifact BENCH_parallel.json alongside the table.
bench-smoke:
	$(GO) run ./cmd/benchrunner -exp ep -scale 0.1 -json BENCH_parallel.json

# Observability smoke: golden EXPLAIN tests plus the explain
# experiment, emitting the machine-readable artifact
# BENCH_explain.json alongside the table.
explain-smoke:
	$(GO) test -run 'TestExplain' .
	$(GO) run ./cmd/benchrunner -exp explain -scale 0.3 -json BENCH_explain.json

# Streaming smoke: every golden paper example under streaming vs
# materializing execution at batch sizes 1, 3, and the default
# (serial and parallel pools), plus the streaming budget and DISTINCT
# short-circuit regressions.
stream-smoke:
	$(GO) test -run 'TestStreaming' .

# Server smoke: the wire-protocol suite under the race detector —
# sessions, prepared statements, admission control, DDL vs query
# snapshots, shutdown drain, and the goroutine-leak checks for client
# disconnect and daemon shutdown — then the load generator against an
# in-process uniqoptd at 1 and 8 sessions, emitting the
# machine-readable artifact BENCH_server.json alongside the table.
server-smoke:
	$(GO) test -race ./internal/server/... ./cmd/uniqoptd ./cmd/sqlsh
	$(GO) run ./cmd/benchrunner -exp server -scale 0.3 -sessions 1,8 -json BENCH_server.json

# Planner smoke: the join-ordering, plan-cache, and access-path suite
# under the race detector (including the concurrent DDL×EXEC stale-plan
# regression in the server suite), then the planner experiment —
# written-order vs uniqueness-bounded ordering on ≥3-way joins plus
# cold/warm plan-cache timing — emitting the machine-readable artifact
# BENCH_planner.json alongside the table.
planner-smoke:
	$(GO) test -race -run 'TestJoinOrder|TestDerived|TestWrittenJoinOrder|TestExplainNamesBounds|TestPlanCache|TestIndex|TestCost' ./internal/plan/
	$(GO) test -race -run 'TestServerPlanCacheDDLRace' ./internal/server/
	$(GO) run ./cmd/benchrunner -exp planner -scale 0.3 -json BENCH_planner.json

# Crash matrix: the storage suite under the race detector with the
# fault registry armed — WAL append/sync/checkpoint fault points, torn
# and corrupt tails, the kill -9 subprocess recovery test, and the
# daemon's -data lifecycle (recovering refusals, fsync-before-ack,
# demo-load suppression after recovery).
crash-matrix:
	$(GO) test -race -tags fault ./internal/storage/... ./cmd/uniqoptd

# Storage smoke: golden paper examples byte-identical on the memory
# and WAL backends, then the storage experiment — insert throughput
# under both ack disciplines plus cold-start recovery — emitting the
# machine-readable artifact BENCH_storage.json alongside the table.
storage-smoke:
	$(GO) test -run 'BothBackends' .
	$(GO) run ./cmd/benchrunner -exp storage -scale 0.05 -json BENCH_storage.json

# Full experiment sweep, regenerating bench_output_tables.txt.
bench-tables:
	$(GO) run ./cmd/benchrunner -exp all -scale 0.25 > bench_output_tables.txt

ci: vet lint build test test-fault race stream-smoke bench-smoke explain-smoke server-smoke planner-smoke crash-matrix storage-smoke

clean:
	rm -f BENCH_parallel.json BENCH_explain.json BENCH_server.json BENCH_storage.json BENCH_planner.json
