// Command uniqlint runs the repository's static-analysis suite
// (internal/lint) over package patterns, reporting findings as
//
//	file:line: [analyzer] message
//
// and exiting nonzero when any unsuppressed finding remains. It is
// built purely on the standard library's go/ast, go/parser, go/types
// and go/importer; there is no dependency on golang.org/x/tools.
//
// Usage:
//
//	uniqlint [-analyzers tvlbool,rowalias,...] [-json|-gha] [packages]
//
// Patterns follow the go tool: "./..." (default), "./internal/engine",
// "./internal/...". Directories under testdata are skipped by "..."
// expansion but may be named explicitly, which is how the golden
// fixture packages are linted on purpose.
//
// -json emits a machine-readable report (findings, suppressed ones
// marked, plus the summary); -gha emits GitHub Actions ::error
// workflow commands so a CI lint step annotates the offending lines in
// the pull-request diff. Both still exit nonzero on unsuppressed
// findings.
//
// Findings are suppressed line-by-line with
//
//	//lint:allow analyzer[,analyzer...] -- reason
//
// placed on (or immediately above) the offending line; the summary
// counts suppressions so reviews can see how many exceptions exist.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniqopt/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		quiet     = flag.Bool("q", false, "suppress the summary line")
		jsonOut   = flag.Bool("json", false, "emit findings and summary as JSON")
		ghaOut    = flag.Bool("gha", false, "emit findings as GitHub Actions ::error annotations")
	)
	flag.Parse()
	if *jsonOut && *ghaOut {
		fmt.Fprintln(os.Stderr, "uniqlint: -json and -gha are mutually exclusive")
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var selected []*lint.Analyzer
	if *analyzers != "" {
		found, unknown := lint.ByName(*analyzers)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "uniqlint: unknown analyzer(s): %v\n", unknown)
			os.Exit(2)
		}
		selected = found
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	runner, err := lint.NewRunner(cwd, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	findings, sum, err := runner.Run(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	lint.RelativizeTo(cwd, findings)
	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, findings, sum); err != nil {
			fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
			os.Exit(2)
		}
	case *ghaOut:
		if err := lint.WriteGHA(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			fmt.Println(f.String())
		}
	}
	if !*quiet && !*jsonOut {
		fmt.Fprintf(os.Stderr, "uniqlint: %d package unit(s), %d finding(s), %d suppressed\n",
			sum.Packages, sum.Findings, sum.Suppressed)
	}
	if sum.Findings > 0 {
		os.Exit(1)
	}
}
