// Command uniqlint runs the repository's static-analysis suite
// (internal/lint) over package patterns, reporting findings as
//
//	file:line: [analyzer] message
//
// and exiting nonzero when any unsuppressed finding remains. It is
// built purely on the standard library's go/ast, go/parser, go/types
// and go/importer; there is no dependency on golang.org/x/tools.
//
// Usage:
//
//	uniqlint [-analyzers tvlbool,rowalias,...] [packages]
//
// Patterns follow the go tool: "./..." (default), "./internal/engine",
// "./internal/...". Directories under testdata are skipped by "..."
// expansion but may be named explicitly, which is how the golden
// fixture packages are linted on purpose.
//
// Findings are suppressed line-by-line with
//
//	//lint:allow analyzer[,analyzer...] -- reason
//
// placed on (or immediately above) the offending line; the summary
// counts suppressions so reviews can see how many exceptions exist.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniqopt/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		quiet     = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var selected []*lint.Analyzer
	if *analyzers != "" {
		found, unknown := lint.ByName(*analyzers)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "uniqlint: unknown analyzer(s): %v\n", unknown)
			os.Exit(2)
		}
		selected = found
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	runner, err := lint.NewRunner(cwd, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	findings, sum, err := runner.Run(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniqlint: %v\n", err)
		os.Exit(2)
	}
	lint.RelativizeTo(cwd, findings)
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		fmt.Println(f.String())
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "uniqlint: %d package unit(s), %d finding(s), %d suppressed\n",
			sum.Packages, sum.Findings, sum.Suppressed)
	}
	if sum.Findings > 0 {
		os.Exit(1)
	}
}
