// Command sqlsh is an interactive shell over the uniqopt engine:
// CREATE TABLE, INSERT-free data loading via \load, queries with the
// uniqueness optimizer, and side-by-side baseline comparison.
//
// Statements end with ';'. EXPLAIN and EXPLAIN ANALYZE prefixes on a
// query print the typed plan tree (with per-operator metrics for
// ANALYZE) and the uniqueness analyzer's provenance trace. Shell
// commands:
//
//	\d              list tables
//	\baseline       toggle baseline (no-rewrite) execution
//	\stats          toggle per-query statistics output
//	\load demo      load the paper's demo supplier database
//	\analyze SQL;   analyze without executing
//	\help           describe statements and commands
//	\q              quit
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"uniqopt"
	"uniqopt/internal/workload"
)

// helpText documents the shell's statements and commands (\help).
const helpText = `statements (end with ';'):
  CREATE TABLE ...           define a table (keys, CHECKs, FKs)
  SELECT ... / INTERSECT / EXCEPT
                             run a query through the uniqueness optimizer
  EXPLAIN <query>;           show the plan tree and the analyzer's
                             uniqueness provenance without reading data
  EXPLAIN ANALYZE <query>;   execute and show the plan tree annotated
                             with per-operator rows, wall time, and
                             parallel-path usage
commands:
  \d              list tables
  \baseline       toggle baseline (no-rewrite) execution
  \stats          toggle per-query statistics output
  \load demo      load the paper's demo supplier database
  \analyze SQL;   run Algorithm 1 on a query without executing it
  \help           this message
  \q              quit
`

func main() {
	if err := repl(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
}

type shell struct {
	db       *uniqopt.DB
	baseline bool
	stats    bool
	out      io.Writer
}

func repl(in io.Reader, out io.Writer) error {
	sh := &shell{db: uniqopt.Open(), out: out}
	fmt.Fprintln(out, "uniqopt sqlsh — statements end with ';', \\q quits, \\load demo loads the paper schema")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "sql> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.TrimSpace(buf.String()) == "" {
			buf.Reset()
		}
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := sh.command(trimmed); quit {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSpace(buf.String())
			stmt = strings.TrimSuffix(stmt, ";")
			buf.Reset()
			sh.execute(stmt)
		}
		prompt()
	}
	return sc.Err()
}

func (sh *shell) command(cmd string) (quit bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\d":
		for _, name := range sh.db.Store().Catalog.TableNames() {
			t, _ := sh.db.Store().Catalog.Table(name)
			st, _ := sh.db.Store().Table(name)
			fmt.Fprintf(sh.out, "%s (%s) — %d rows\n",
				name, strings.Join(t.ColumnNames(), ", "), st.Len())
		}
	case "\\baseline":
		sh.baseline = !sh.baseline
		fmt.Fprintf(sh.out, "baseline execution: %v\n", sh.baseline)
	case "\\stats":
		sh.stats = !sh.stats
		fmt.Fprintf(sh.out, "statistics output: %v\n", sh.stats)
	case "\\load":
		if len(fields) < 2 || fields[1] != "demo" {
			fmt.Fprintln(sh.out, "usage: \\load demo")
			break
		}
		sh.loadDemo()
	case "\\help", "\\h", "\\?":
		fmt.Fprint(sh.out, helpText)
	case "\\analyze":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\analyze"))
		rest = strings.TrimSuffix(rest, ";")
		a, err := sh.db.Analyze(rest)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		fmt.Fprintf(sh.out, "unique=%v distinct-redundant=%v V=%v\n",
			a.Unique, a.DistinctRedundant, a.BoundColumns)
	default:
		fmt.Fprintf(sh.out, "unknown command %s\n", fields[0])
	}
	return false
}

func (sh *shell) loadDemo() {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 25
	cfg.PartsPerSupplier = 4
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		dst := db.Store().MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := dst.Insert(src.Row(i)); err != nil {
				fmt.Fprintln(sh.out, "error:", err)
				return
			}
		}
	}
	sh.db = db
	fmt.Fprintln(sh.out, "demo supplier database loaded (25 suppliers, 100 parts, 50 agents)")
}

func (sh *shell) execute(stmt string) {
	stmt = strings.TrimSpace(stmt)
	upper := strings.ToUpper(stmt)
	if strings.HasPrefix(upper, "EXPLAIN") {
		rest := strings.TrimSpace(stmt[len("EXPLAIN"):])
		analyze := false
		if up := strings.ToUpper(rest); strings.HasPrefix(up, "ANALYZE ") || strings.HasPrefix(up, "ANALYZE\n") || strings.HasPrefix(up, "ANALYZE\t") {
			analyze = true
			rest = strings.TrimSpace(rest[len("ANALYZE"):])
		}
		e, err := sh.db.ExplainWith(context.Background(), rest, nil, !sh.baseline, analyze)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, e.String())
		if sh.stats && analyze {
			fmt.Fprintf(sh.out, "stats: %s\n", e.Stats.String())
		}
		return
	}
	if strings.HasPrefix(upper, "CREATE") {
		if err := sh.db.Exec(stmt); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprintln(sh.out, "ok")
		return
	}
	rows, err := sh.db.QueryWith(stmt, nil, !sh.baseline)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	for _, info := range rows.Rewrites {
		fmt.Fprintf(sh.out, "-- rewrite [%s]: %s\n", info.Rule, info.After)
	}
	fmt.Fprintln(sh.out, strings.Join(rows.Columns, " | "))
	for _, r := range rows.Data {
		cells := make([]string, len(r))
		for i, v := range r {
			if v == nil {
				cells[i] = "NULL"
			} else {
				cells[i] = fmt.Sprint(v)
			}
		}
		fmt.Fprintln(sh.out, strings.Join(cells, " | "))
	}
	fmt.Fprintf(sh.out, "(%d rows)\n", len(rows.Data))
	if sh.stats {
		fmt.Fprintf(sh.out, "stats: %s\n", rows.Stats.String())
	}
}
