// Command sqlsh is an interactive shell over the uniqopt engine:
// CREATE TABLE, INSERT INTO … VALUES, data loading via \load,
// queries with the uniqueness optimizer, and side-by-side baseline
// comparison.
//
// With -connect host:port the same REPL runs against a uniqoptd
// server through the wire-protocol client library instead of an
// embedded database: statements and EXPLAIN work identically, \d
// lists the server's tables, and \prepare/\exec drive server-side
// prepared statements with host-variable bindings. Transient dial
// failures are retried with capped, jittered backoff.
//
// With -data DIR the embedded database is crash-safe: writes go
// through a write-ahead log in DIR and are fsynced before the shell
// reports success, and a later sqlsh -data DIR (or uniqoptd -data
// DIR) session recovers them.
//
// Statements end with ';'. EXPLAIN and EXPLAIN ANALYZE prefixes on a
// query print the typed plan tree (with per-operator metrics for
// ANALYZE) and the uniqueness analyzer's provenance trace. Shell
// commands:
//
//	\d              list tables
//	\baseline       toggle baseline (no-rewrite) execution
//	\stats          toggle per-query statistics output
//	\load demo      load the paper's demo supplier database
//	\analyze SQL;   analyze without executing
//	\help           describe statements and commands
//	\q              quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"uniqopt"
	"uniqopt/internal/server/client"
	"uniqopt/internal/workload"
)

// helpText documents the shell's statements and commands (\help).
const helpText = `statements (end with ';'):
  CREATE TABLE ...           define a table (keys, CHECKs, FKs)
  INSERT INTO t VALUES ...   insert rows (fsynced before 'ok' with -data)
  SELECT ... / INTERSECT / EXCEPT
                             run a query through the uniqueness optimizer
  EXPLAIN <query>;           show the plan tree and the analyzer's
                             uniqueness provenance without reading data
  EXPLAIN ANALYZE <query>;   execute and show the plan tree annotated
                             with per-operator rows, wall time, and
                             parallel-path usage
commands:
  \d              list tables
  \baseline       toggle baseline (no-rewrite) execution
  \stats          toggle per-query statistics output
  \load demo      load the paper's demo supplier database
  \analyze SQL;   run Algorithm 1 on a query without executing it
  \help           this message
  \q              quit
`

func main() {
	connect := flag.String("connect", "", "connect to a uniqoptd server at host:port instead of running embedded")
	data := flag.String("data", "", "open this crash-safe data directory instead of an in-memory database (embedded mode)")
	flag.Parse()
	var err error
	switch {
	case *connect != "":
		// Transient dial failures (a daemon still binding or
		// restarting) are retried with backoff before giving up.
		var c *client.Client
		if c, err = client.DialRetry(*connect, client.Options{}); err == nil {
			defer c.Close()
			err = remoteRepl(os.Stdin, os.Stdout, c)
		}
	case *data != "":
		var db *uniqopt.DB
		if db, err = uniqopt.OpenPersistent(*data, uniqopt.Options{}); err == nil {
			err = replDB(os.Stdin, os.Stdout, db)
			if cerr := db.Close(); err == nil {
				err = cerr
			}
		}
	default:
		err = repl(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
}

type shell struct {
	db       *uniqopt.DB
	baseline bool
	stats    bool
	out      io.Writer
}

func repl(in io.Reader, out io.Writer) error {
	return replDB(in, out, uniqopt.Open())
}

func replDB(in io.Reader, out io.Writer, db *uniqopt.DB) error {
	sh := &shell{db: db, out: out}
	return replLoop(in, out,
		"uniqopt sqlsh — statements end with ';', \\q quits, \\load demo loads the paper schema",
		sh.command, sh.execute)
}

// replLoop is the statement-accumulating read loop shared by the
// embedded and remote shells: '\'-commands run immediately,
// statements run when the terminating ';' arrives.
func replLoop(in io.Reader, out io.Writer, banner string, command func(string) bool, execute func(string)) error {
	fmt.Fprintln(out, banner)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "sql> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if strings.TrimSpace(buf.String()) == "" {
			buf.Reset()
		}
		if buf.Len() == 0 && trimmed == "" {
			prompt()
			continue
		}
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := command(trimmed); quit {
				return nil
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSpace(buf.String())
			stmt = strings.TrimSuffix(stmt, ";")
			buf.Reset()
			execute(stmt)
		}
		prompt()
	}
	return sc.Err()
}

func (sh *shell) command(cmd string) (quit bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\d":
		for _, name := range sh.db.Store().Catalog().TableNames() {
			t, _ := sh.db.Store().Catalog().Table(name)
			st, _ := sh.db.Store().Table(name)
			fmt.Fprintf(sh.out, "%s (%s) — %d rows\n",
				name, strings.Join(t.ColumnNames(), ", "), st.Len())
		}
	case "\\baseline":
		sh.baseline = !sh.baseline
		fmt.Fprintf(sh.out, "baseline execution: %v\n", sh.baseline)
	case "\\stats":
		sh.stats = !sh.stats
		fmt.Fprintf(sh.out, "statistics output: %v\n", sh.stats)
	case "\\load":
		if len(fields) < 2 || fields[1] != "demo" {
			fmt.Fprintln(sh.out, "usage: \\load demo")
			break
		}
		sh.loadDemo()
	case "\\help", "\\h", "\\?":
		fmt.Fprint(sh.out, helpText)
	case "\\analyze":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\analyze"))
		rest = strings.TrimSuffix(rest, ";")
		a, err := sh.db.Analyze(rest)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		fmt.Fprintf(sh.out, "unique=%v distinct-redundant=%v V=%v\n",
			a.Unique, a.DistinctRedundant, a.BoundColumns)
	default:
		fmt.Fprintf(sh.out, "unknown command %s\n", fields[0])
	}
	return false
}

func (sh *shell) loadDemo() {
	if len(sh.db.Store().Catalog().TableNames()) > 0 {
		fmt.Fprintln(sh.out, "error: \\load demo needs an empty database (tables already defined)")
		return
	}
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 25
	cfg.PartsPerSupplier = 4
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	for _, ddl := range workload.BenchDDL {
		if err := sh.db.Exec(ddl); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := sh.db.InsertRow(name, src.Row(i)); err != nil {
				fmt.Fprintln(sh.out, "error:", err)
				return
			}
		}
	}
	if err := sh.db.Sync(); err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprintln(sh.out, "demo supplier database loaded (25 suppliers, 100 parts, 50 agents)")
}

func (sh *shell) execute(stmt string) {
	stmt = strings.TrimSpace(stmt)
	upper := strings.ToUpper(stmt)
	if strings.HasPrefix(upper, "EXPLAIN") {
		rest := strings.TrimSpace(stmt[len("EXPLAIN"):])
		analyze := false
		if up := strings.ToUpper(rest); strings.HasPrefix(up, "ANALYZE ") || strings.HasPrefix(up, "ANALYZE\n") || strings.HasPrefix(up, "ANALYZE\t") {
			analyze = true
			rest = strings.TrimSpace(rest[len("ANALYZE"):])
		}
		e, err := sh.db.ExplainWith(context.Background(), rest, nil, !sh.baseline, analyze)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, e.String())
		if sh.stats && analyze {
			fmt.Fprintf(sh.out, "stats: %s\n", e.Stats.String())
		}
		return
	}
	if strings.HasPrefix(upper, "CREATE") {
		if err := sh.db.Exec(stmt); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprintln(sh.out, "ok")
		return
	}
	if strings.HasPrefix(upper, "INSERT") {
		n, err := sh.db.ExecWith(stmt, nil)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		// Make the rows durable before claiming success.
		if err := sh.db.Sync(); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprintf(sh.out, "INSERT %d\n", n)
		return
	}
	rows, err := sh.db.QueryWith(stmt, nil, !sh.baseline)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	for _, info := range rows.Rewrites {
		fmt.Fprintf(sh.out, "-- rewrite [%s]: %s\n", info.Rule, info.After)
	}
	printRows(sh.out, rows.Columns, rows.Data)
	if sh.stats {
		fmt.Fprintf(sh.out, "stats: %s\n", rows.Stats.String())
	}
}

// printRows renders a result table: pipe-separated header, rows with
// NULL spelled out, and a row count.
func printRows(out io.Writer, cols []string, data [][]any) {
	fmt.Fprintln(out, strings.Join(cols, " | "))
	for _, r := range data {
		cells := make([]string, len(r))
		for i, v := range r {
			if v == nil {
				cells[i] = "NULL"
			} else {
				cells[i] = fmt.Sprint(v)
			}
		}
		fmt.Fprintln(out, strings.Join(cells, " | "))
	}
	fmt.Fprintf(out, "(%d rows)\n", len(data))
}

// remoteHelpText documents the remote shell's commands.
const remoteHelpText = `statements (end with ';'):
  CREATE TABLE ...           define a table on the server
  SELECT ... / INTERSECT / EXCEPT
                             run a query through the server's optimizer
  EXPLAIN [ANALYZE] <query>; show the server's plan tree and the
                             analyzer's uniqueness provenance
commands:
  \d                    list the server's tables
  \prepare NAME SQL;    prepare a statement under NAME in this session
  \exec NAME [K=V ...]  run a prepared statement; values: 123, 'text',
                        true/false, NULL
  \help                 this message
  \q                    quit
`

// remoteShell drives a uniqoptd session: same REPL, statements
// travel the wire.
type remoteShell struct {
	c   *client.Client
	out io.Writer
}

func remoteRepl(in io.Reader, out io.Writer, c *client.Client) error {
	sh := &remoteShell{c: c, out: out}
	info := c.Info()
	banner := fmt.Sprintf("uniqopt sqlsh — connected to %s (session %d, %d tables); statements end with ';', \\q quits",
		info.Server, info.Session, len(info.Tables))
	return replLoop(in, out, banner, sh.command, sh.execute)
}

func (sh *remoteShell) command(cmd string) (quit bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\d":
		info, err := sh.c.Refresh()
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		for _, name := range info.Tables {
			fmt.Fprintln(sh.out, name)
		}
	case "\\prepare":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\prepare"))
		rest = strings.TrimSuffix(rest, ";")
		name, sql, ok := strings.Cut(rest, " ")
		if !ok || strings.TrimSpace(sql) == "" {
			fmt.Fprintln(sh.out, "usage: \\prepare NAME SELECT ...;")
			break
		}
		if err := sh.c.Prepare(name, strings.TrimSpace(sql)); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		fmt.Fprintf(sh.out, "prepared %s\n", name)
	case "\\exec":
		if len(fields) < 2 {
			fmt.Fprintln(sh.out, "usage: \\exec NAME [K=V ...]")
			break
		}
		name := strings.TrimSuffix(fields[1], ";")
		args, err := parseExecArgs(fields[2:])
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		res, err := sh.c.Exec(name, args)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			break
		}
		sh.printResult(res)
	case "\\help", "\\h", "\\?":
		fmt.Fprint(sh.out, remoteHelpText)
	default:
		fmt.Fprintf(sh.out, "unknown command %s (remote mode; \\help lists commands)\n", fields[0])
	}
	return false
}

// parseExecArgs turns K=V fields into host-variable bindings: 123 is
// INTEGER, 'text' (or bare text) is VARCHAR, true/false BOOLEAN, and
// NULL the null value.
func parseExecArgs(fields []string) (map[string]any, error) {
	if len(fields) == 0 {
		return nil, nil
	}
	args := make(map[string]any, len(fields))
	for _, f := range fields {
		f = strings.TrimSuffix(f, ";")
		if f == "" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("binding %q is not K=V", f)
		}
		switch {
		case v == "NULL" || v == "null":
			args[k] = nil
		case v == "true" || v == "false":
			args[k] = v == "true"
		default:
			if n, err := strconv.ParseInt(v, 10, 64); err == nil {
				args[k] = n
			} else {
				args[k] = strings.Trim(v, "'")
			}
		}
	}
	return args, nil
}

func (sh *remoteShell) execute(stmt string) {
	stmt = strings.TrimSpace(stmt)
	upper := strings.ToUpper(stmt)
	if strings.HasPrefix(upper, "EXPLAIN") {
		rest := strings.TrimSpace(stmt[len("EXPLAIN"):])
		analyze := false
		if up := strings.ToUpper(rest); strings.HasPrefix(up, "ANALYZE ") || strings.HasPrefix(up, "ANALYZE\n") || strings.HasPrefix(up, "ANALYZE\t") {
			analyze = true
			rest = strings.TrimSpace(rest[len("ANALYZE"):])
		}
		text, _, err := sh.c.Explain(rest, analyze)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		fmt.Fprint(sh.out, text)
		return
	}
	res, err := sh.c.Query(stmt)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if strings.HasPrefix(upper, "CREATE") {
		fmt.Fprintf(sh.out, "ok (catalog version %d)\n", res.CatalogVersion)
		return
	}
	if strings.HasPrefix(upper, "INSERT") {
		fmt.Fprintf(sh.out, "INSERT %d\n", res.RowsAffected)
		return
	}
	sh.printResult(res)
}

func (sh *remoteShell) printResult(res *client.Result) {
	for _, info := range res.Rewrites {
		fmt.Fprintf(sh.out, "-- rewrite [%s]: %s\n", info.Rule, info.Description)
	}
	if res.Reprepared {
		fmt.Fprintln(sh.out, "-- statement re-validated after schema change")
	}
	printRows(sh.out, res.Columns, res.Rows)
}
