package main

import (
	"strings"
	"testing"
)

func runShell(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellCreateInsertQuery(t *testing.T) {
	out := runShell(t, `
CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
SELECT A, B FROM T;
\q
`)
	if !strings.Contains(out, "ok") {
		t.Errorf("CREATE should report ok:\n%s", out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("empty query should report 0 rows:\n%s", out)
	}
}

func TestShellDemoAndRewrites(t *testing.T) {
	out := runShell(t, `
\load demo
\d
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "demo supplier database loaded") {
		t.Errorf("demo load missing:\n%s", out)
	}
	if !strings.Contains(out, "SUPPLIER (") || !strings.Contains(out, "PARTS (") {
		t.Errorf("\\d output missing tables:\n%s", out)
	}
	if !strings.Contains(out, "-- rewrite [eliminate-distinct]") {
		t.Errorf("rewrite banner missing:\n%s", out)
	}
}

func TestShellBaselineToggle(t *testing.T) {
	out := runShell(t, `
\load demo
\baseline
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "baseline execution: true") {
		t.Errorf("toggle missing:\n%s", out)
	}
	if strings.Contains(out, "-- rewrite") {
		t.Errorf("baseline mode must not rewrite:\n%s", out)
	}
}

func TestShellStatsToggleAndAnalyze(t *testing.T) {
	out := runShell(t, `
\load demo
\stats
SELECT S.SNO FROM SUPPLIER S;
\analyze SELECT DISTINCT S.SNO FROM SUPPLIER S;
\q
`)
	if !strings.Contains(out, "stats: scanned=") {
		t.Errorf("stats line missing:\n%s", out)
	}
	if !strings.Contains(out, "unique=true distinct-redundant=true") {
		t.Errorf("analyze output missing:\n%s", out)
	}
}

func TestShellErrorsAndUnknownCommand(t *testing.T) {
	out := runShell(t, `
SELECT FROM;
\nope
\load wrong
\q
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error should be reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command should be reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: \\load demo") {
		t.Errorf("bad load usage should be reported:\n%s", out)
	}
}

func TestShellMultilineStatement(t *testing.T) {
	out := runShell(t, `
\load demo
SELECT S.SNO
FROM SUPPLIER S
WHERE S.SNO = 1;
\q
`)
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("multiline statement failed:\n%s", out)
	}
}

func TestShellNullRendering(t *testing.T) {
	out := runShell(t, `
CREATE TABLE N (A INTEGER, B INTEGER, PRIMARY KEY (A));
SELECT B FROM N WHERE B IS NULL;
\q
`)
	// No rows, but the query path must not crash on NULL columns.
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("output:\n%s", out)
	}
}
