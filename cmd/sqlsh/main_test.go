package main

import (
	"strings"
	"testing"
)

func runShell(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellCreateInsertQuery(t *testing.T) {
	out := runShell(t, `
CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
SELECT A, B FROM T;
\q
`)
	if !strings.Contains(out, "ok") {
		t.Errorf("CREATE should report ok:\n%s", out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("empty query should report 0 rows:\n%s", out)
	}
}

func TestShellDemoAndRewrites(t *testing.T) {
	out := runShell(t, `
\load demo
\d
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "demo supplier database loaded") {
		t.Errorf("demo load missing:\n%s", out)
	}
	if !strings.Contains(out, "SUPPLIER (") || !strings.Contains(out, "PARTS (") {
		t.Errorf("\\d output missing tables:\n%s", out)
	}
	if !strings.Contains(out, "-- rewrite [eliminate-distinct]") {
		t.Errorf("rewrite banner missing:\n%s", out)
	}
}

func TestShellBaselineToggle(t *testing.T) {
	out := runShell(t, `
\load demo
\baseline
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "baseline execution: true") {
		t.Errorf("toggle missing:\n%s", out)
	}
	if strings.Contains(out, "-- rewrite") {
		t.Errorf("baseline mode must not rewrite:\n%s", out)
	}
}

func TestShellStatsToggleAndAnalyze(t *testing.T) {
	out := runShell(t, `
\load demo
\stats
SELECT S.SNO FROM SUPPLIER S;
\analyze SELECT DISTINCT S.SNO FROM SUPPLIER S;
\q
`)
	if !strings.Contains(out, "stats: scanned=") {
		t.Errorf("stats line missing:\n%s", out)
	}
	if !strings.Contains(out, "unique=true distinct-redundant=true") {
		t.Errorf("analyze output missing:\n%s", out)
	}
}

func TestShellExplain(t *testing.T) {
	out := runShell(t, `
\load demo
EXPLAIN SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "HashJoin(") || !strings.Contains(out, "Scan(") {
		t.Errorf("plan tree missing:\n%s", out)
	}
	if !strings.Contains(out, "uniqueness analysis:") ||
		!strings.Contains(out, "key (S.SNO) ⊆ V") {
		t.Errorf("provenance trace missing:\n%s", out)
	}
	if strings.Contains(out, "time=") {
		t.Errorf("plain EXPLAIN must not carry timing metrics:\n%s", out)
	}
}

func TestShellExplainAnalyze(t *testing.T) {
	out := runShell(t, `
\load demo
\stats
EXPLAIN ANALYZE SELECT S.SNO FROM SUPPLIER S;
\q
`)
	if !strings.Contains(out, "time=") || !strings.Contains(out, "out=25") {
		t.Errorf("ANALYZE metrics missing:\n%s", out)
	}
	if !strings.Contains(out, "stats: scanned=") {
		t.Errorf("stats line missing for ANALYZE with \\stats on:\n%s", out)
	}
}

func TestShellHelpDocumentsExplain(t *testing.T) {
	out := runShell(t, "\\help\n\\q\n")
	if !strings.Contains(out, "EXPLAIN <query>;") ||
		!strings.Contains(out, "EXPLAIN ANALYZE <query>;") {
		t.Errorf("\\help must document EXPLAIN [ANALYZE]:\n%s", out)
	}
}

func TestShellErrorsAndUnknownCommand(t *testing.T) {
	out := runShell(t, `
SELECT FROM;
\nope
\load wrong
\q
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error should be reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command should be reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: \\load demo") {
		t.Errorf("bad load usage should be reported:\n%s", out)
	}
}

func TestShellMultilineStatement(t *testing.T) {
	out := runShell(t, `
\load demo
SELECT S.SNO
FROM SUPPLIER S
WHERE S.SNO = 1;
\q
`)
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("multiline statement failed:\n%s", out)
	}
}

func TestShellNullRendering(t *testing.T) {
	out := runShell(t, `
CREATE TABLE N (A INTEGER, B INTEGER, PRIMARY KEY (A));
SELECT B FROM N WHERE B IS NULL;
\q
`)
	// No rows, but the query path must not crash on NULL columns.
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("output:\n%s", out)
	}
}
