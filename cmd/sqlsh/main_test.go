package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"uniqopt"
	"uniqopt/internal/server"
	"uniqopt/internal/server/client"
	"uniqopt/internal/workload"
)

func runShell(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// runRemoteShell drives the -connect REPL against an in-process
// uniqoptd server preloaded with the demo workload.
func runRemoteShell(t *testing.T, script string) string {
	t.Helper()
	db := uniqopt.Open()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 25
	cfg.PartsPerSupplier = 4
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} {
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := server.New(db, server.DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out strings.Builder
	if err := remoteRepl(strings.NewReader(script), &out, c); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellCreateInsertQuery(t *testing.T) {
	out := runShell(t, `
CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A));
SELECT A, B FROM T;
\q
`)
	if !strings.Contains(out, "ok") {
		t.Errorf("CREATE should report ok:\n%s", out)
	}
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("empty query should report 0 rows:\n%s", out)
	}
}

func TestShellDemoAndRewrites(t *testing.T) {
	out := runShell(t, `
\load demo
\d
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "demo supplier database loaded") {
		t.Errorf("demo load missing:\n%s", out)
	}
	if !strings.Contains(out, "SUPPLIER (") || !strings.Contains(out, "PARTS (") {
		t.Errorf("\\d output missing tables:\n%s", out)
	}
	if !strings.Contains(out, "-- rewrite [eliminate-distinct]") {
		t.Errorf("rewrite banner missing:\n%s", out)
	}
}

func TestShellBaselineToggle(t *testing.T) {
	out := runShell(t, `
\load demo
\baseline
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "baseline execution: true") {
		t.Errorf("toggle missing:\n%s", out)
	}
	if strings.Contains(out, "-- rewrite") {
		t.Errorf("baseline mode must not rewrite:\n%s", out)
	}
}

func TestShellStatsToggleAndAnalyze(t *testing.T) {
	out := runShell(t, `
\load demo
\stats
SELECT S.SNO FROM SUPPLIER S;
\analyze SELECT DISTINCT S.SNO FROM SUPPLIER S;
\q
`)
	if !strings.Contains(out, "stats: scanned=") {
		t.Errorf("stats line missing:\n%s", out)
	}
	if !strings.Contains(out, "unique=true distinct-redundant=true") {
		t.Errorf("analyze output missing:\n%s", out)
	}
}

func TestShellExplain(t *testing.T) {
	out := runShell(t, `
\load demo
EXPLAIN SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "HashJoin(") || !strings.Contains(out, "Scan(") {
		t.Errorf("plan tree missing:\n%s", out)
	}
	if !strings.Contains(out, "uniqueness analysis:") ||
		!strings.Contains(out, "key (S.SNO) ⊆ V") {
		t.Errorf("provenance trace missing:\n%s", out)
	}
	if strings.Contains(out, "time=") {
		t.Errorf("plain EXPLAIN must not carry timing metrics:\n%s", out)
	}
}

func TestShellExplainAnalyze(t *testing.T) {
	out := runShell(t, `
\load demo
\stats
EXPLAIN ANALYZE SELECT S.SNO FROM SUPPLIER S;
\q
`)
	if !strings.Contains(out, "time=") || !strings.Contains(out, "out=25") {
		t.Errorf("ANALYZE metrics missing:\n%s", out)
	}
	if !strings.Contains(out, "stats: scanned=") {
		t.Errorf("stats line missing for ANALYZE with \\stats on:\n%s", out)
	}
}

func TestShellHelpDocumentsExplain(t *testing.T) {
	out := runShell(t, "\\help\n\\q\n")
	if !strings.Contains(out, "EXPLAIN <query>;") ||
		!strings.Contains(out, "EXPLAIN ANALYZE <query>;") {
		t.Errorf("\\help must document EXPLAIN [ANALYZE]:\n%s", out)
	}
}

func TestShellErrorsAndUnknownCommand(t *testing.T) {
	out := runShell(t, `
SELECT FROM;
\nope
\load wrong
\q
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("parse error should be reported:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command should be reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: \\load demo") {
		t.Errorf("bad load usage should be reported:\n%s", out)
	}
}

func TestShellMultilineStatement(t *testing.T) {
	out := runShell(t, `
\load demo
SELECT S.SNO
FROM SUPPLIER S
WHERE S.SNO = 1;
\q
`)
	if !strings.Contains(out, "(1 rows)") {
		t.Errorf("multiline statement failed:\n%s", out)
	}
}

func TestShellNullRendering(t *testing.T) {
	out := runShell(t, `
CREATE TABLE N (A INTEGER, B INTEGER, PRIMARY KEY (A));
SELECT B FROM N WHERE B IS NULL;
\q
`)
	// No rows, but the query path must not crash on NULL columns.
	if !strings.Contains(out, "(0 rows)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRemoteShellQueryAndRewrites(t *testing.T) {
	out := runRemoteShell(t, `
\d
SELECT DISTINCT S.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO;
\q
`)
	if !strings.Contains(out, "connected to") {
		t.Errorf("remote banner missing:\n%s", out)
	}
	if !strings.Contains(out, "SUPPLIER") || !strings.Contains(out, "PARTS") {
		t.Errorf("\\d should list server tables:\n%s", out)
	}
	if !strings.Contains(out, "-- rewrite [eliminate-distinct]") {
		t.Errorf("rewrite banner missing:\n%s", out)
	}
	if !strings.Contains(out, "(100 rows)") {
		t.Errorf("join rows missing:\n%s", out)
	}
}

func TestRemoteShellPrepareExec(t *testing.T) {
	out := runRemoteShell(t, `
\prepare bysno SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :N;
\exec bysno N=1
\exec bysno N=99999
\exec nosuch N=1
\q
`)
	if !strings.Contains(out, "prepared bysno") {
		t.Errorf("prepare ack missing:\n%s", out)
	}
	if !strings.Contains(out, "(1 rows)") || !strings.Contains(out, "(0 rows)") {
		t.Errorf("exec results missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("unknown statement should error:\n%s", out)
	}
}

func TestRemoteShellExplainAndDDL(t *testing.T) {
	out := runRemoteShell(t, `
EXPLAIN SELECT DISTINCT S.SNO FROM SUPPLIER S;
EXPLAIN ANALYZE SELECT S.SNO FROM SUPPLIER S;
CREATE TABLE T2 (A INTEGER, PRIMARY KEY (A));
\q
`)
	if !strings.Contains(out, "uniqueness analysis:") {
		t.Errorf("provenance trace missing:\n%s", out)
	}
	if !strings.Contains(out, "out=25") {
		t.Errorf("ANALYZE metrics missing:\n%s", out)
	}
	if !strings.Contains(out, "ok (catalog version") {
		t.Errorf("remote DDL ack missing:\n%s", out)
	}
}

func TestRemoteShellErrorsAndHelp(t *testing.T) {
	out := runRemoteShell(t, `
SELECT FROM;
\nope
\prepare
\exec
\help
\q
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("server parse error should surface:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("unknown command should be reported:\n%s", out)
	}
	if !strings.Contains(out, "usage: \\prepare") || !strings.Contains(out, "usage: \\exec") {
		t.Errorf("usage messages missing:\n%s", out)
	}
	if !strings.Contains(out, "\\prepare NAME SQL;") {
		t.Errorf("\\help should document remote commands:\n%s", out)
	}
}

func TestParseExecArgs(t *testing.T) {
	args, err := parseExecArgs([]string{"N=42", "S='red'", "B=true", "X=NULL;"})
	if err != nil {
		t.Fatal(err)
	}
	if args["N"] != int64(42) || args["S"] != "red" || args["B"] != true || args["X"] != nil {
		t.Fatalf("parsed args: %#v", args)
	}
	if _, err := parseExecArgs([]string{"novalue"}); err == nil {
		t.Fatal("malformed binding should error")
	}
}
