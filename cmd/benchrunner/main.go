// Command benchrunner regenerates the experiment tables of
// EXPERIMENTS.md: every performance claim in Paulley & Larson (ICDE
// 1994) reproduced on the simulators in this repository.
//
// Usage:
//
//	benchrunner [-exp e1|e2|...|e9|ep|planner|explain|server|storage|all] [-scale 1.0]
//	            [-hash] [-trials N] [-sessions 1,8,64] [-json FILE]
//
// -scale shrinks or grows the workload sizes; -hash runs E1's
// hash-DISTINCT ablation; -trials overrides E8's corpus size; -json
// additionally writes the tables as a JSON array to FILE. -exp explain
// runs the observability experiment: EXPLAIN ANALYZE over the paper's
// examples plus a metrics-registry summary. -exp server boots an
// in-process uniqoptd and drives it with concurrent wire-protocol
// clients at each -sessions level, reporting client-side p50/p99
// latency and closed-loop throughput (not part of -exp all). -exp
// storage compares the in-memory and write-ahead-log backends on the
// same bulk load (group commit and fsync-per-insert ack disciplines)
// and measures cold-start recovery (not part of -exp all).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uniqopt/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e9, ep, planner, explain, server, storage, or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	hash := flag.Bool("hash", false, "E1 ablation: hash-based DISTINCT instead of sort")
	trials := flag.Int("trials", 0, "E8 corpus size (0 = default)")
	sessionsFlag := flag.String("sessions", "1,8,64", "comma-separated session counts for -exp server")
	jsonOut := flag.String("json", "", "also write the tables as JSON to this file")
	flag.Parse()

	sessions, err := parseSessions(*sessionsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: -sessions: %v\n", err)
		os.Exit(2)
	}

	sc := bench.Scale{Factor: *scale}
	var tables []*bench.Table
	switch strings.ToLower(*exp) {
	case "e1":
		tables = []*bench.Table{bench.E1(sc, *hash)}
	case "e2":
		tables = []*bench.Table{bench.E2(sc)}
	case "e3":
		tables = []*bench.Table{bench.E3(sc)}
	case "e4":
		tables = []*bench.Table{bench.E4(sc)}
	case "e5":
		tables = []*bench.Table{bench.E5(sc)}
	case "e6":
		tables = []*bench.Table{bench.E6(sc)}
	case "e7":
		tables = []*bench.Table{bench.E7(sc)}
	case "e8":
		tables = []*bench.Table{bench.E8(sc, *trials)}
	case "e9":
		tables = []*bench.Table{bench.E9(sc)}
	case "ep":
		tables = []*bench.Table{bench.EP(sc)}
	case "planner":
		tables = []*bench.Table{bench.EPlanner(sc)}
	case "explain":
		tables = []*bench.Table{bench.EExplain(sc)}
	case "server":
		tables = []*bench.Table{bench.EServer(sc, sessions)}
	case "storage":
		tables = []*bench.Table{bench.EStorage(sc)}
	case "all":
		tables = bench.All(sc)
		if *hash {
			tables = append(tables, bench.E1(sc, true))
		}
	default:
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t.Format())
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: marshal: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseSessions turns "1,8,64" into session counts for -exp server.
func parseSessions(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad session count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no session counts in %q", s)
	}
	return out, nil
}
