package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultSchemaUnique(t *testing.T) {
	var out strings.Builder
	err := run("", `SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, false, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"verdict: UNIQUE",
		"key of S bound: (S.SNO)",
		"key of P bound: (P.SNO, P.PNO)",
		"eliminate-distinct",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunNotUnique(t *testing.T) {
	var out strings.Builder
	err := run("", `SELECT DISTINCT S.SNAME FROM SUPPLIER S`, false, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NOT PROVEN UNIQUE") {
		t.Errorf("output = %s", out.String())
	}
	if !strings.Contains(out.String(), "blocking table: S") {
		t.Errorf("output = %s", out.String())
	}
}

func TestRunCustomSchemaFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schema.sql")
	ddl := `CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A));
	        CREATE TABLE U (A INTEGER, C INTEGER, PRIMARY KEY (A));`
	if err := os.WriteFile(path, []byte(ddl), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run(path, `SELECT DISTINCT T.A, T.B FROM T T`, false, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verdict: UNIQUE") {
		t.Errorf("output = %s", out.String())
	}
}

func TestRunTrailingSemicolonAndEmpty(t *testing.T) {
	var out strings.Builder
	if err := run("", "SELECT S.SNO FROM SUPPLIER S;", false, false, &out); err != nil {
		t.Errorf("trailing semicolon should be accepted: %v", err)
	}
	if err := run("", "   ", false, false, &out); err == nil {
		t.Error("empty query should fail")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run("/nonexistent/schema.sql", "SELECT 1", false, false, &out); err == nil {
		t.Error("missing schema file should fail")
	}
	if err := run("", "NOT SQL AT ALL", false, false, &out); err == nil {
		t.Error("parse error should propagate")
	}
	// Schema file containing a query.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sql")
	if err := os.WriteFile(path, []byte("SELECT S.X FROM S"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "SELECT S.SNO FROM SUPPLIER S", false, false, &out); err == nil {
		t.Error("non-DDL schema file should fail")
	}
}

func TestRunExtensionFlags(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schema.sql")
	ddl := `CREATE TABLE R (K INTEGER, X INTEGER, PRIMARY KEY (K));
	        CREATE TABLE S (K INTEGER, Z INTEGER, PRIMARY KEY (K));`
	if err := os.WriteFile(path, []byte(ddl), 0o644); err != nil {
		t.Fatal(err)
	}
	q := "SELECT DISTINCT R.K FROM R R, S S WHERE R.X = S.K"
	var plain, ext strings.Builder
	if err := run(path, q, false, false, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(path, q, true, false, &ext); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), "NOT PROVEN UNIQUE") {
		t.Errorf("paper-literal should say NO:\n%s", plain.String())
	}
	if !strings.Contains(ext.String(), "verdict: UNIQUE") {
		t.Errorf("-keyfds should say YES:\n%s", ext.String())
	}
}
