// Command uniqopt analyzes a SQL query against a schema and reports
// the uniqueness verdict and the rewrites of Paulley & Larson (ICDE
// 1994) that apply to it.
//
// Usage:
//
//	uniqopt -schema schema.sql [-query "SELECT ..."] [-keyfds] [-isnull]
//
// The schema file is a semicolon-separated CREATE TABLE script. When
// -query is omitted the query is read from standard input. The
// default schema (when -schema is omitted) is the paper's supplier
// database (Figure 1).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"uniqopt/internal/catalog"
	"uniqopt/internal/core"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/workload"
)

func main() {
	schemaPath := flag.String("schema", "", "CREATE TABLE script (default: the paper's Figure 1 schema)")
	query := flag.String("query", "", "SQL query to analyze (default: read from stdin)")
	keyFDs := flag.Bool("keyfds", false, "enable the key-FD closure extension")
	isNull := flag.Bool("isnull", false, "enable the IS NULL binding extension")
	flag.Parse()

	if err := run(*schemaPath, *query, *keyFDs, *isNull, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "uniqopt:", err)
		os.Exit(1)
	}
}

func run(schemaPath, query string, keyFDs, isNull bool, out io.Writer) error {
	var cat *catalog.Catalog
	if schemaPath == "" {
		cat = workload.PaperCatalog()
		fmt.Fprintln(out, "-- using the paper's supplier schema (Figure 1)")
	} else {
		src, err := os.ReadFile(schemaPath)
		if err != nil {
			return err
		}
		cat = catalog.New()
		stmts, err := parser.ParseScript(string(src))
		if err != nil {
			return err
		}
		for _, st := range stmts {
			ct, ok := st.(*ast.CreateTable)
			if !ok {
				return fmt.Errorf("schema file contains a non-DDL statement: %s", st.SQL())
			}
			if _, err := cat.DefineFromAST(ct); err != nil {
				return err
			}
		}
	}
	if query == "" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		query = string(b)
	}
	query = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(query), ";"))
	if query == "" {
		return fmt.Errorf("no query given")
	}
	q, err := parser.ParseQuery(query)
	if err != nil {
		return err
	}
	an := &core.Analyzer{Cat: cat, Opts: core.Options{UseKeyFDs: keyFDs, BindIsNull: isNull}}

	v, err := an.AnalyzeQuery(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "query: %s\n\n", q.SQL())
	if v.Unique {
		fmt.Fprintln(out, "verdict: UNIQUE — the result cannot contain duplicate rows")
	} else {
		fmt.Fprintf(out, "verdict: NOT PROVEN UNIQUE (blocking table: %s)\n", v.MissingTable)
	}
	fmt.Fprintf(out, "bound columns (V): %s\n", strings.Join(v.Bound, ", "))
	corrs := make([]string, 0, len(v.KeysUsed))
	for corr := range v.KeysUsed {
		corrs = append(corrs, corr)
	}
	sort.Strings(corrs)
	for _, corr := range corrs {
		fmt.Fprintf(out, "  key of %s bound: (%s)\n", corr, strings.Join(v.KeysUsed[corr], ", "))
	}
	if len(v.DerivedKeys) > 0 {
		fmt.Fprintln(out, "derived candidate keys of the result:")
		for _, k := range v.DerivedKeys {
			fmt.Fprintf(out, "  (%s)\n", strings.Join(k, ", "))
		}
	}

	aps, err := an.Suggest(q)
	if err != nil {
		return err
	}
	if len(aps) == 0 {
		fmt.Fprintln(out, "\nno rewrites apply")
		return nil
	}
	fmt.Fprintf(out, "\n%d rewrite(s) apply:\n", len(aps))
	for _, ap := range aps {
		fmt.Fprintf(out, "\n[%s] %s\n  before: %s\n  after:  %s\n",
			ap.Rule, ap.Description, ap.Before, ap.After)
	}
	return nil
}
