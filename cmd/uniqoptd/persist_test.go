package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"uniqopt/internal/server/client"
	"uniqopt/internal/testleak"
)

// bootDaemon runs the daemon with args and waits for its listener.
func bootDaemon(t *testing.T, args []string) (h daemonHandle, out *strings.Builder, wait func() int) {
	t.Helper()
	ready := make(chan daemonHandle, 1)
	out = &strings.Builder{}
	var errOut strings.Builder
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run(args, out, &errOut, ready)
	}()
	select {
	case h = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr:\n%s", errOut.String())
	}
	return h, out, func() int {
		wg.Wait()
		if errOut.Len() > 0 {
			t.Logf("daemon stderr:\n%s", errOut.String())
		}
		return code
	}
}

// TestDaemonDataDirPersists boots the daemon on a data directory,
// writes through the wire, shuts down, boots a second daemon on the
// same directory, and finds the data recovered — the -data flag's
// end-to-end contract. It also exercises the background-recovery
// path: the second boot's HELLO may race replay, and DialRetry plus
// the recovering status make that race observable instead of flaky.
func TestDaemonDataDirPersists(t *testing.T) {
	warmSignalLoop()
	testleak.Check(t)
	dir := t.TempDir()

	h, out, wait := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-data", dir})
	c, err := client.DialRetry(h.Addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Background recovery of an empty directory is near-instant but
	// asynchronous; poll the status rather than assuming.
	status := c.Info().Status
	for deadline := time.Now().Add(10 * time.Second); status != "ready"; {
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck in status %q", status)
		}
		time.Sleep(10 * time.Millisecond)
		info, err := c.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		status = info.Status
	}
	if _, err := c.Query(`CREATE TABLE T (A INTEGER, PRIMARY KEY (A))`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`INSERT INTO T VALUES (1), (2), (3)`)
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("insert: res=%+v err=%v", res, err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code := wait(); code != 0 {
		t.Fatalf("first daemon exited %d; output:\n%s", code, out.String())
	}

	h2, out2, wait2 := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-data", dir})
	c2, err := client.DialRetry(h2.Addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rows *client.Result
	for deadline := time.Now().Add(10 * time.Second); ; {
		rows, err = c2.Query(`SELECT ALL A FROM T`)
		if err == nil {
			break
		}
		re, ok := err.(*client.RemoteError)
		if !ok || re.Code != "recovering" || time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(rows.Rows) != 3 {
		t.Fatalf("recovered %d rows, want 3", len(rows.Rows))
	}
	c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := h2.Srv.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	if code := wait2(); code != 0 {
		t.Fatalf("second daemon exited %d", code)
	}
	if !strings.Contains(out2.String(), "recovered") {
		t.Fatalf("second boot output lacks recovery line:\n%s", out2.String())
	}
}

// TestDaemonDataDirSkipsDemoWhenRecovered proves -load demo does not
// clobber or duplicate a recovered database.
func TestDaemonDataDirSkipsDemoWhenRecovered(t *testing.T) {
	warmSignalLoop()
	testleak.Check(t)
	dir := t.TempDir()

	// First boot: empty dir, demo loads.
	h, _, wait := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-data", dir, "-load", "demo"})
	c, err := client.DialRetry(h.Addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	waitRows := func(c *client.Client) int {
		t.Helper()
		for deadline := time.Now().Add(10 * time.Second); ; {
			res, err := c.Query(`SELECT DISTINCT S.SNO FROM SUPPLIER S`)
			if err == nil {
				return len(res.Rows)
			}
			re, ok := err.(*client.RemoteError)
			if !ok || (re.Code != "recovering" && re.Code != "sql") || time.Now().After(deadline) {
				t.Fatal(err)
			}
			// "sql" covers the window after replay but before the demo
			// load defines SUPPLIER.
			time.Sleep(10 * time.Millisecond)
		}
	}
	first := waitRows(c)
	if first != 25 {
		t.Fatalf("demo suppliers = %d, want 25", first)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wait()

	// Second boot with -load demo again: tables exist, load skipped.
	h2, _, wait2 := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-data", dir, "-load", "demo"})
	c2, err := client.DialRetry(h2.Addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitRows(c2); got != 25 {
		t.Fatalf("after reboot suppliers = %d, want 25 (demo reloaded?)", got)
	}
	c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := h2.Srv.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	wait2()
}
