package main

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"uniqopt"
	"uniqopt/internal/server/client"
	"uniqopt/internal/testleak"
)

// warmSignalLoop starts os/signal's process-wide watcher goroutine
// (a deliberate singleton that never exits) before a test records
// its goroutine baseline, so the leak check measures the daemon, not
// the runtime.
func warmSignalLoop() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	signal.Stop(ch)
}

// TestDaemonServesDemo boots the real daemon (flags, demo preload,
// listener) on an ephemeral port, talks to it through the client
// library, and shuts it down programmatically.
func TestDaemonServesDemo(t *testing.T) {
	warmSignalLoop()
	testleak.Check(t)
	ready := make(chan daemonHandle, 1)
	var out, errOut strings.Builder
	var wg sync.WaitGroup
	wg.Add(1)
	var code int
	go func() {
		defer wg.Done()
		code = run([]string{"-addr", "127.0.0.1:0", "-load", "demo", "-max-sessions", "4"}, &out, &errOut, ready)
	}()
	h := <-ready
	srv := h.Srv

	c, err := client.Dial(h.Addr)
	if err != nil {
		t.Fatal(err)
	}
	info := c.Info()
	if len(info.Tables) != 3 { // AGENTS, PARTS, SUPPLIER
		t.Fatalf("demo tables = %v", info.Tables)
	}
	res, err := c.Query(`SELECT DISTINCT S.SNO FROM SUPPLIER S`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("demo suppliers = %d, want 25", len(res.Rows))
	}
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if code != 0 {
		t.Fatalf("run exited %d; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "shutdown complete") {
		t.Fatalf("daemon output:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-load", "nonsense"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("unknown dataset: exit %d", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errOut, nil); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// TestDaemonBudgetFlagsReachSessions proves the flag plumbing ends
// at the governor: a daemon started with a tiny row budget refuses
// the big join with a typed budget error.
func TestDaemonBudgetFlagsReachSessions(t *testing.T) {
	warmSignalLoop()
	testleak.Check(t)
	ready := make(chan daemonHandle, 1)
	var out, errOut strings.Builder
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-load", "demo", "-session-max-rows", "10"}, &out, &errOut, ready)
	}()
	h := <-ready
	srv := h.Srv
	c, err := client.Dial(h.Addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(`SELECT S.SNO, P.PNO FROM SUPPLIER S, PARTS P`)
	if !errors.Is(err, uniqopt.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget error", err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != 0 {
		t.Fatalf("run exited %d", code)
	}
}
