// Command uniqoptd is the uniqopt network server: a TCP daemon that
// serves concurrent sessions over the length-prefixed JSON wire
// protocol (internal/server), with per-session prepared statements,
// admission control, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	uniqoptd [-addr :7483] [-data DIR] [-load demo] [-streaming]
//	         [-max-sessions N] [-max-concurrent N]
//	         [-session-max-rows N] [-session-mem BYTES] [-global-mem BYTES]
//	         [-query-timeout D] [-drain-timeout D] [-expvar ADDR]
//
// Connect with sqlsh -connect host:port, the internal/server/client
// library, or anything that frames JSON per the protocol. -load demo
// preloads the paper's supplier/parts/agents workload so a fresh
// daemon has something to query. -expvar serves the process expvar
// endpoint (including the DB metrics registry) on a second address.
//
// With -data DIR the database is crash-safe: every DDL statement and
// INSERT is written to a write-ahead log in DIR and fsynced before
// the client sees the acknowledgement. The daemon binds its listener
// immediately and replays the log in the background; until replay
// finishes, HELLO answers status "recovering" and every other
// command is refused with a typed recovering error, so clients see
// fast failures instead of connection timeouts. -load demo is
// skipped when the directory already holds recovered tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	_ "expvar" // mounts /debug/vars on the default mux for -expvar

	"uniqopt"
	"uniqopt/internal/server"
	"uniqopt/internal/storage/wal"
	"uniqopt/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// daemonHandle is what run hands to a test harness: the serving
// server and the address the listener actually bound (resolved, so
// ":0" ports are usable).
type daemonHandle struct {
	Srv  *server.Server
	Addr string
}

// run is main with its seams exposed: ready (if non-nil) receives
// the serving server and its bound address once the listener is up,
// so tests can drive a real daemon and stop it with Shutdown instead
// of signals.
func run(args []string, stdout, stderr io.Writer, ready chan<- daemonHandle) int {
	// The recovery goroutine, the expvar goroutine, and the signal loop
	// all log; os.Stdout tolerates that, but run accepts arbitrary
	// writers (tests pass strings.Builders), so serialize explicitly.
	stdout = &syncWriter{w: stdout}
	stderr = &syncWriter{w: stderr}
	fs := flag.NewFlagSet("uniqoptd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":7483", "TCP listen address")
		data         = fs.String("data", "", "data directory for crash-safe persistence (empty = in-memory)")
		load         = fs.String("load", "", "preload dataset: 'demo' for the paper workload")
		streaming    = fs.Bool("streaming", false, "execute queries as batched iterator pipelines")
		maxSessions  = fs.Int("max-sessions", 256, "max concurrent sessions (0 = unlimited)")
		maxConc      = fs.Int("max-concurrent", 64, "max concurrently executing queries (0 = unlimited)")
		maxRows      = fs.Int64("session-max-rows", 5_000_000, "per-query row budget ceiling per session (0 = unlimited)")
		sessionMem   = fs.Int64("session-mem", 256<<20, "per-query memory budget ceiling per session, bytes (0 = unlimited)")
		globalMem    = fs.Int64("global-mem", 2<<30, "global query-memory admission pool, bytes (0 = unlimited)")
		queryTimeout = fs.Duration("query-timeout", 0, "per-statement execution timeout (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline before in-flight queries are cancelled")
		expvarAddr   = fs.String("expvar", "", "serve /debug/vars (expvar, incl. DB metrics) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *load != "" && *load != "demo" {
		fmt.Fprintf(stderr, "uniqoptd: unknown dataset %q (only 'demo')\n", *load)
		return 2
	}

	dbOpts := uniqopt.Options{Streaming: *streaming}
	var db *uniqopt.DB
	if *data != "" {
		// Persistent mode: open without replaying so the listener binds
		// first; recovery runs in the background below.
		var err error
		db, err = uniqopt.OpenPersistentDeferred(*data, dbOpts)
		if err != nil {
			fmt.Fprintln(stderr, "uniqoptd: open data dir:", err)
			return 1
		}
		defer db.Close()
	} else {
		db = uniqopt.OpenWith(dbOpts)
		if *load == "demo" {
			if err := loadDemo(db); err != nil {
				fmt.Fprintln(stderr, "uniqoptd: load demo:", err)
				return 1
			}
			fmt.Fprintln(stdout, "uniqoptd: demo supplier database loaded")
		}
	}

	cfg := server.Config{
		MaxSessions:      *maxSessions,
		MaxConcurrent:    *maxConc,
		SessionMaxRows:   *maxRows,
		SessionMemBudget: *sessionMem,
		GlobalMemBudget:  *globalMem,
		QueryTimeout:     *queryTimeout,
		Name:             "uniqoptd",
	}
	srv := server.New(db, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "uniqoptd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "uniqoptd: listening on %s (sessions<=%d, concurrent<=%d)\n",
		ln.Addr(), cfg.MaxSessions, cfg.MaxConcurrent)

	if *expvarAddr != "" {
		db.PublishMetrics("uniqoptd_db")
		go func() {
			if err := http.ListenAndServe(*expvarAddr, nil); err != nil {
				fmt.Fprintln(stderr, "uniqoptd: expvar:", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// In persistent mode the listener is already accepting; replay the
	// write-ahead log in the background. Sessions arriving before it
	// finishes get the typed recovering status, not a hung connection.
	recoverErr := make(chan error, 1)
	recoverDone := make(chan struct{})
	close(recoverDone)
	if *data != "" {
		recoverDone = make(chan struct{})
		// Exiting before the recovery goroutine has finished logging
		// would close the store (and, in tests, free the output writer)
		// under it; replay is bounded by the log on disk, so waiting is
		// cheap. Registered after the db.Close defer so the wait happens
		// first.
		defer func() { <-recoverDone }()
		go func() {
			defer close(recoverDone)
			if err := db.Recover(); err != nil {
				recoverErr <- err
				return
			}
			msg := "uniqoptd: recovered " + *data
			if ws, ok := db.Backend().(*wal.Store); ok {
				msg += " (" + ws.Stats().String() + ")"
			}
			fmt.Fprintln(stdout, msg)
			if *load == "demo" && len(db.Store().Catalog().TableNames()) == 0 {
				if err := loadDemo(db); err != nil {
					recoverErr <- fmt.Errorf("load demo: %w", err)
					return
				}
				if err := db.Sync(); err != nil {
					recoverErr <- fmt.Errorf("load demo: %w", err)
					return
				}
				fmt.Fprintln(stdout, "uniqoptd: demo supplier database loaded")
			}
			fmt.Fprintln(stdout, "uniqoptd: ready")
		}()
	}

	if ready != nil {
		ready <- daemonHandle{Srv: srv, Addr: ln.Addr().String()}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "uniqoptd: %s — draining (deadline %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stdout, "uniqoptd: drain deadline hit; in-flight queries cancelled")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "uniqoptd: serve:", err)
			return 1
		}
	case err := <-serveErr:
		// Serve returned on its own: nil means someone (a test) shut
		// us down programmatically; an error means the listener died.
		if err != nil {
			fmt.Fprintln(stderr, "uniqoptd: serve:", err)
			return 1
		}
	case err := <-recoverErr:
		// The data directory is unusable (corrupt frame, replay
		// failure, unreadable files). Serving a write-refusing shell
		// forever helps nobody; report and exit nonzero so supervisors
		// notice.
		fmt.Fprintln(stderr, "uniqoptd: recovery failed:", err)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveErr
		return 1
	}
	fmt.Fprintln(stdout, "uniqoptd: shutdown complete")
	return 0
}

// syncWriter serializes Write calls from the daemon's goroutines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// loadDemo fills db with the paper's supplier workload (the same
// dataset sqlsh's \load demo uses): SUPPLIER, PARTS, AGENTS with
// keys and foreign keys intact.
func loadDemo(db *uniqopt.DB) error {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 25
	cfg.PartsPerSupplier = 4
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		return err
	}
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			return err
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				return err
			}
		}
	}
	return nil
}
