// Command uniqoptd is the uniqopt network server: a TCP daemon that
// serves concurrent sessions over the length-prefixed JSON wire
// protocol (internal/server), with per-session prepared statements,
// admission control, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	uniqoptd [-addr :7483] [-load demo] [-streaming]
//	         [-max-sessions N] [-max-concurrent N]
//	         [-session-max-rows N] [-session-mem BYTES] [-global-mem BYTES]
//	         [-query-timeout D] [-drain-timeout D] [-expvar ADDR]
//
// Connect with sqlsh -connect host:port, the internal/server/client
// library, or anything that frames JSON per the protocol. -load demo
// preloads the paper's supplier/parts/agents workload so a fresh
// daemon has something to query. -expvar serves the process expvar
// endpoint (including the DB metrics registry) on a second address.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "expvar" // mounts /debug/vars on the default mux for -expvar

	"uniqopt"
	"uniqopt/internal/server"
	"uniqopt/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// daemonHandle is what run hands to a test harness: the serving
// server and the address the listener actually bound (resolved, so
// ":0" ports are usable).
type daemonHandle struct {
	Srv  *server.Server
	Addr string
}

// run is main with its seams exposed: ready (if non-nil) receives
// the serving server and its bound address once the listener is up,
// so tests can drive a real daemon and stop it with Shutdown instead
// of signals.
func run(args []string, stdout, stderr io.Writer, ready chan<- daemonHandle) int {
	fs := flag.NewFlagSet("uniqoptd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":7483", "TCP listen address")
		load         = fs.String("load", "", "preload dataset: 'demo' for the paper workload")
		streaming    = fs.Bool("streaming", false, "execute queries as batched iterator pipelines")
		maxSessions  = fs.Int("max-sessions", 256, "max concurrent sessions (0 = unlimited)")
		maxConc      = fs.Int("max-concurrent", 64, "max concurrently executing queries (0 = unlimited)")
		maxRows      = fs.Int64("session-max-rows", 5_000_000, "per-query row budget ceiling per session (0 = unlimited)")
		sessionMem   = fs.Int64("session-mem", 256<<20, "per-query memory budget ceiling per session, bytes (0 = unlimited)")
		globalMem    = fs.Int64("global-mem", 2<<30, "global query-memory admission pool, bytes (0 = unlimited)")
		queryTimeout = fs.Duration("query-timeout", 0, "per-statement execution timeout (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline before in-flight queries are cancelled")
		expvarAddr   = fs.String("expvar", "", "serve /debug/vars (expvar, incl. DB metrics) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	db := uniqopt.OpenWith(uniqopt.Options{Streaming: *streaming})
	switch *load {
	case "":
	case "demo":
		if err := loadDemo(db); err != nil {
			fmt.Fprintln(stderr, "uniqoptd: load demo:", err)
			return 1
		}
		fmt.Fprintln(stdout, "uniqoptd: demo supplier database loaded")
	default:
		fmt.Fprintf(stderr, "uniqoptd: unknown dataset %q (only 'demo')\n", *load)
		return 2
	}

	cfg := server.Config{
		MaxSessions:      *maxSessions,
		MaxConcurrent:    *maxConc,
		SessionMaxRows:   *maxRows,
		SessionMemBudget: *sessionMem,
		GlobalMemBudget:  *globalMem,
		QueryTimeout:     *queryTimeout,
		Name:             "uniqoptd",
	}
	srv := server.New(db, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "uniqoptd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "uniqoptd: listening on %s (sessions<=%d, concurrent<=%d)\n",
		ln.Addr(), cfg.MaxSessions, cfg.MaxConcurrent)

	if *expvarAddr != "" {
		db.PublishMetrics("uniqoptd_db")
		go func() {
			if err := http.ListenAndServe(*expvarAddr, nil); err != nil {
				fmt.Fprintln(stderr, "uniqoptd: expvar:", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	if ready != nil {
		ready <- daemonHandle{Srv: srv, Addr: ln.Addr().String()}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "uniqoptd: %s — draining (deadline %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stdout, "uniqoptd: drain deadline hit; in-flight queries cancelled")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "uniqoptd: serve:", err)
			return 1
		}
	case err := <-serveErr:
		// Serve returned on its own: nil means someone (a test) shut
		// us down programmatically; an error means the listener died.
		if err != nil {
			fmt.Fprintln(stderr, "uniqoptd: serve:", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, "uniqoptd: shutdown complete")
	return 0
}

// loadDemo fills db with the paper's supplier workload (the same
// dataset sqlsh's \load demo uses): SUPPLIER, PARTS, AGENTS with
// keys and foreign keys intact.
func loadDemo(db *uniqopt.DB) error {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 25
	cfg.PartsPerSupplier = 4
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		return err
	}
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			return err
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		dst := db.Store().MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := dst.Insert(src.Row(i)); err != nil {
				return err
			}
		}
	}
	return nil
}
