package uniqopt_test

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"uniqopt"
	"uniqopt/internal/engine"
	"uniqopt/internal/workload"
)

// setStreamBatch scopes the engine batch size to one test (0 keeps
// the default).
func setStreamBatch(t *testing.T, n int) {
	t.Helper()
	if n == 0 {
		return
	}
	prev := engine.SetBatchSize(n)
	t.Cleanup(func() { engine.SetBatchSize(prev) })
}

// setStreamPool scopes the worker-pool configuration to one test.
func setStreamPool(t *testing.T, workers, threshold int) {
	t.Helper()
	prevW := engine.SetWorkers(workers)
	prevT := engine.SetParallelThreshold(threshold)
	t.Cleanup(func() {
		engine.SetWorkers(prevW)
		engine.SetParallelThreshold(prevT)
	})
}

// TestStreamingPaperExamples runs every paper example under
// materializing and streaming execution — serial and parallel, at
// batch sizes 1, 3, and the default — and requires byte-identical
// results (same columns, same rows, same order). This is the
// end-to-end equivalence guarantee: streaming is an execution
// strategy, never a semantics change.
func TestStreamingPaperExamples(t *testing.T) {
	type pool struct {
		name               string
		workers, threshold int
	}
	pools := []pool{{"serial", 1, 1 << 30}, {"parallel", 4, 1}}
	for _, pl := range pools {
		for _, bs := range []int{1, 3, 0} {
			label := fmt.Sprintf("%s/batch=%d", pl.name, bs)
			t.Run(label, func(t *testing.T) {
				setStreamPool(t, pl.workers, pl.threshold)
				setStreamBatch(t, bs)
				mat := goldenDBWith(t, uniqopt.Options{})
				str := goldenDBWith(t, uniqopt.Options{Streaming: true})
				for _, name := range paperQueryNames() {
					sql := workload.PaperQueries[name]
					want, err := mat.QueryWith(sql, goldenHosts, true)
					if err != nil {
						t.Fatalf("%s materializing: %v", name, err)
					}
					got, err := str.QueryWith(sql, goldenHosts, true)
					if err != nil {
						t.Fatalf("%s streaming: %v", name, err)
					}
					if !reflect.DeepEqual(want.Columns, got.Columns) {
						t.Errorf("%s: columns diverge: %v vs %v", name, want.Columns, got.Columns)
					}
					if !reflect.DeepEqual(want.Data, got.Data) {
						t.Errorf("%s: streaming result diverges from materializing (rows %d vs %d)",
							name, len(want.Data), len(got.Data))
					}
					if !reflect.DeepEqual(want.Plan, got.Plan) {
						t.Errorf("%s: plans diverge:\n%v\nvs\n%v", name, want.Plan, got.Plan)
					}
					if got.Stats.Batches == 0 {
						t.Errorf("%s: streaming execution recorded no batches", name)
					}
					if want.Stats.Batches != 0 {
						t.Errorf("%s: materializing execution recorded %d batches", name, want.Stats.Batches)
					}
				}
			})
		}
	}
}

// streamBudgetDB builds a DB where the outer table is far larger than
// the memory budget the tests impose but the interesting results are
// small: S carries `rows` rows, P only 50.
func streamBudgetDB(t *testing.T, rows int, opts uniqopt.Options) *uniqopt.DB {
	t.Helper()
	db := uniqopt.OpenWith(opts)
	for _, ddl := range []string{
		`CREATE TABLE S (SNO INTEGER NOT NULL, CITY VARCHAR, PRIMARY KEY (SNO))`,
		`CREATE TABLE P (PNO INTEGER NOT NULL, SNO INTEGER, PRIMARY KEY (PNO))`,
	} {
		if err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rows; i++ {
		if err := db.Insert("S", i, fmt.Sprintf("city-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := db.Insert("P", i, i); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestStreamingBudget is the satellite regression test for streaming
// memory behavior: a join whose outer scan alone exceeds MemBudget
// fails under materializing execution but streams to completion under
// streaming execution, because only the (tiny) build side and the
// in-flight batches are ever resident. A blocking operator over the
// same oversized input still fails fast either way.
func TestStreamingBudget(t *testing.T) {
	const rows = 40_000
	// Enough for a few in-flight batches (~114KB each at the default
	// batch size), far below the ~4.5MB the S scan would materialize.
	const budget = 256 * 1024
	join := `SELECT S.SNO, S.CITY FROM S, P WHERE S.SNO = P.SNO AND P.PNO = 7`

	mat := streamBudgetDB(t, rows, uniqopt.Options{MemBudget: budget})
	if _, err := mat.Query(join); !errors.Is(err, uniqopt.ErrBudgetExceeded) {
		t.Fatalf("materializing join: err = %v, want ErrBudgetExceeded", err)
	}

	str := streamBudgetDB(t, rows, uniqopt.Options{MemBudget: budget, Streaming: true})
	res, err := str.Query(join)
	if err != nil {
		t.Fatalf("streaming join under budget: %v", err)
	}
	if len(res.Data) != 1 || res.Data[0][0] != int64(7) {
		t.Fatalf("streaming join result = %v, want the single row for SNO 7", res.Data)
	}
	if res.Stats.Batches == 0 {
		t.Fatal("streaming join recorded no batches")
	}

	// Blocking state is still charged as it accrues: a hash-distinct
	// over 40k unique rows cannot fit the budget and must fail fast,
	// not stream partial results.
	strDistinct := streamBudgetDB(t, rows, uniqopt.Options{
		MemBudget: budget, Streaming: true, HashDistinct: true})
	rows2, err := strDistinct.QueryBaseline(`SELECT DISTINCT S.CITY FROM S`)
	if !errors.Is(err, uniqopt.ErrBudgetExceeded) {
		t.Fatalf("streaming blocking distinct: err = %v, want ErrBudgetExceeded", err)
	}
	if rows2 != nil {
		t.Fatal("partial Rows escaped a blown budget under streaming")
	}
	var be *uniqopt.BudgetError
	if !errors.As(err, &be) || be.Resource != "memory" {
		t.Fatalf("err = %v, want a memory *BudgetError", err)
	}
}

// TestStreamingDistinctShortCircuit checks the zero-cost DISTINCT
// path: when the uniqueness analysis proves DISTINCT redundant, the
// rewrite removes the node before planning, so the streaming pipeline
// is built without any duplicate-elimination stage at all — no hash
// table, no sort buffer, nothing to short-circuit at run time.
func TestStreamingDistinctShortCircuit(t *testing.T) {
	db := goldenDBWith(t, uniqopt.Options{Streaming: true, HashDistinct: true})
	sql := workload.PaperQueries["example1"]

	opt, err := db.QueryWith(sql, goldenHosts, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Rewrites) == 0 {
		t.Fatal("example1 applied no rewrites")
	}
	for _, line := range opt.Plan {
		if strings.Contains(line, "Distinct") {
			t.Errorf("optimized streaming plan still carries a distinct stage: %q", line)
		}
	}

	base, err := db.QueryWith(sql, goldenHosts, false)
	if err != nil {
		t.Fatal(err)
	}
	hasDistinct := false
	for _, line := range base.Plan {
		if strings.Contains(line, "DistinctHash") {
			hasDistinct = true
		}
	}
	if !hasDistinct {
		t.Fatal("baseline streaming plan lost its DistinctHash stage")
	}
	// Same rows either way (the rewrite is semantics-preserving, and
	// the paper data has no duplicates for DISTINCT to remove); order
	// may differ, so compare canonicalized renderings.
	if canonRows(base.Data) != canonRows(opt.Data) {
		t.Fatalf("baseline and optimized streaming results diverge:\nbaseline %d rows vs optimized %d rows",
			len(base.Data), len(opt.Data))
	}
}

// canonRows renders rows order-independently for multiset comparison.
func canonRows(data [][]any) string {
	lines := make([]string, len(data))
	for i, row := range data {
		lines[i] = fmt.Sprint(row)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
