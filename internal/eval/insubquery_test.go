package eval

import (
	"fmt"
	"testing"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/tvl"
	"uniqopt/internal/value"
)

// stubIn returns an InFunc serving fixed values.
func stubIn(vals ...value.Value) InFunc {
	return func(sub *ast.Select, env *Env) ([]value.Value, error) {
		return vals, nil
	}
}

func inExpr(negated bool) *ast.InSubquery {
	return &ast.InSubquery{
		X:       &ast.ColumnRef{Column: "X"},
		Query:   &ast.Select{Items: []ast.SelectItem{{Star: true}}, From: []ast.TableRef{{Table: "T"}}},
		Negated: negated,
	}
}

// The 3VL truth table for IN-subqueries, the part the optimizer's
// NOT-IN refusal depends on.
func TestInSubqueryTruthTable(t *testing.T) {
	cases := []struct {
		name string
		x    value.Value
		vals []value.Value
		neg  bool
		want tvl.Truth
	}{
		{"match", value.Int(1), []value.Value{value.Int(1), value.Int(2)}, false, tvl.True},
		{"no match", value.Int(9), []value.Value{value.Int(1), value.Int(2)}, false, tvl.False},
		{"empty set", value.Int(9), nil, false, tvl.False},
		{"null member no match", value.Int(9), []value.Value{value.Int(1), value.Null}, false, tvl.Unknown},
		{"null member with match", value.Int(1), []value.Value{value.Null, value.Int(1)}, false, tvl.True},
		{"null operand", value.Null, []value.Value{value.Int(1)}, false, tvl.Unknown},
		{"null operand empty set", value.Null, nil, false, tvl.False},
		{"not in: match", value.Int(1), []value.Value{value.Int(1)}, true, tvl.False},
		{"not in: no match", value.Int(9), []value.Value{value.Int(1)}, true, tvl.True},
		{"not in: null member", value.Int(9), []value.Value{value.Int(1), value.Null}, true, tvl.Unknown},
	}
	for _, c := range cases {
		env := &Env{
			Cols: map[string]value.Value{"X": c.x},
			In:   stubIn(c.vals...),
		}
		got, err := Truth(inExpr(c.neg), env)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInSubqueryErrors(t *testing.T) {
	// No evaluator.
	env := &Env{Cols: map[string]value.Value{"X": value.Int(1)}}
	if _, err := Truth(inExpr(false), env); err == nil {
		t.Error("IN without evaluator should fail")
	}
	// Unbound operand.
	env = &Env{Cols: map[string]value.Value{}, In: stubIn(value.Int(1))}
	if _, err := Truth(inExpr(false), env); err == nil {
		t.Error("unbound operand should fail")
	}
	// Type mismatch between operand and member.
	env = &Env{Cols: map[string]value.Value{"X": value.Int(1)},
		In: stubIn(value.String_("s"))}
	if _, err := Truth(inExpr(false), env); err == nil {
		t.Error("type mismatch should fail")
	}
	// Evaluator error propagates.
	env = &Env{Cols: map[string]value.Value{"X": value.Int(1)},
		In: func(sub *ast.Select, env *Env) ([]value.Value, error) {
			return nil, fmt.Errorf("boom")
		}}
	if _, err := Truth(inExpr(false), env); err == nil {
		t.Error("evaluator error should propagate")
	}
}

// Short-circuit: a True membership stops scanning further values.
func TestInSubqueryShortCircuit(t *testing.T) {
	served := 0
	env := &Env{
		Cols: map[string]value.Value{"X": value.Int(1)},
		In: func(sub *ast.Select, env *Env) ([]value.Value, error) {
			served++
			return []value.Value{value.Int(1), value.Null, value.Int(2)}, nil
		},
	}
	got, err := Truth(inExpr(false), env)
	if err != nil || !tvl.IsTrue(got) {
		t.Fatalf("got %v, %v", got, err)
	}
	if served != 1 {
		t.Errorf("subquery evaluated %d times, want 1", served)
	}
}
