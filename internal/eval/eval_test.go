package eval

import (
	"testing"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/tvl"
	"uniqopt/internal/value"
)

func expr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func env(cols map[string]value.Value) *Env {
	return &Env{Cols: cols, Hosts: map[string]value.Value{
		"H": value.Int(7), "NAME": value.String_("Smith"),
	}}
}

func truth(t *testing.T, src string, e *Env) tvl.Truth {
	t.Helper()
	tr, err := Truth(expr(t, src), e)
	if err != nil {
		t.Fatalf("Truth(%q): %v", src, err)
	}
	return tr
}

func TestComparisons(t *testing.T) {
	e := env(map[string]value.Value{
		"A": value.Int(5), "B": value.Int(9), "N": value.Null,
		"S": value.String_("x"),
	})
	cases := []struct {
		src  string
		want tvl.Truth
	}{
		{"A = 5", tvl.True},
		{"A = 6", tvl.False},
		{"A <> 6", tvl.True},
		{"A < B", tvl.True},
		{"A >= B", tvl.False},
		{"B <= 9", tvl.True},
		{"B > 9", tvl.False},
		{"N = 5", tvl.Unknown},
		{"5 = N", tvl.Unknown},
		{"N = N", tvl.Unknown},
		{"N <> N", tvl.Unknown},
		{"S = 'x'", tvl.True},
		{"A = NULL", tvl.Unknown},
		{"A = :H", tvl.False},
		{"7 = :H", tvl.True},
	}
	for _, c := range cases {
		if got := truth(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBetweenAndIn3VL(t *testing.T) {
	e := env(map[string]value.Value{"A": value.Int(5), "N": value.Null})
	cases := []struct {
		src  string
		want tvl.Truth
	}{
		{"A BETWEEN 1 AND 9", tvl.True},
		{"A BETWEEN 6 AND 9", tvl.False},
		{"A NOT BETWEEN 6 AND 9", tvl.True},
		{"N BETWEEN 1 AND 9", tvl.Unknown},
		{"A BETWEEN N AND 9", tvl.Unknown},
		{"A BETWEEN 6 AND N", tvl.False}, // False AND Unknown = False
		{"A IN (1, 5, 9)", tvl.True},
		{"A IN (1, 2)", tvl.False},
		{"A NOT IN (1, 2)", tvl.True},
		{"A IN (1, N)", tvl.Unknown}, // False OR Unknown
		{"A IN (5, N)", tvl.True},    // True OR Unknown = True
		{"A NOT IN (1, N)", tvl.Unknown},
		{"N IN (1, 2)", tvl.Unknown},
	}
	for _, c := range cases {
		if got := truth(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsNullIsTwoValued(t *testing.T) {
	e := env(map[string]value.Value{"A": value.Int(5), "N": value.Null})
	cases := []struct {
		src  string
		want tvl.Truth
	}{
		{"N IS NULL", tvl.True},
		{"N IS NOT NULL", tvl.False},
		{"A IS NULL", tvl.False},
		{"A IS NOT NULL", tvl.True},
		{"NULL IS NULL", tvl.True},
	}
	for _, c := range cases {
		if got := truth(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConnectives(t *testing.T) {
	e := env(map[string]value.Value{"A": value.Int(5), "N": value.Null})
	cases := []struct {
		src  string
		want tvl.Truth
	}{
		{"A = 5 AND N = 1", tvl.Unknown},
		{"A = 6 AND N = 1", tvl.False}, // short-circuit False
		{"A = 5 OR N = 1", tvl.True},   // short-circuit True
		{"A = 6 OR N = 1", tvl.Unknown},
		{"NOT (N = 1)", tvl.Unknown},
		{"NOT (A = 5)", tvl.False},
		{"TRUE", tvl.True},
		{"FALSE", tvl.False},
	}
	for _, c := range cases {
		if got := truth(t, c.src, e); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNilExprIsTrue(t *testing.T) {
	tr, err := Truth(nil, env(nil))
	if err != nil || !tvl.IsTrue(tr) {
		t.Errorf("Truth(nil) = %v, %v", tr, err)
	}
}

func TestQualifiedLookupFallback(t *testing.T) {
	e := env(map[string]value.Value{"S.SNO": value.Int(1), "SNO": value.Int(2)})
	v, err := Value(expr(t, "S.SNO = 0").(*ast.Compare).L, e)
	if err != nil || v.AsInt() != 1 {
		t.Errorf("qualified lookup = %v, %v", v, err)
	}
	// Qualifier missing from Cols: falls back to bare name.
	e2 := env(map[string]value.Value{"SNO": value.Int(2)})
	v, err = Value(expr(t, "S.SNO = 0").(*ast.Compare).L, e2)
	if err != nil || v.AsInt() != 2 {
		t.Errorf("fallback lookup = %v, %v", v, err)
	}
}

func TestErrors(t *testing.T) {
	e := env(map[string]value.Value{"A": value.Int(5), "S": value.String_("x")})
	for _, src := range []string{
		"Z = 1",        // unbound column
		"A = :MISSING", // unbound host var
		"A = 'text'",   // type mismatch
		"A BETWEEN 'x' AND 'y'",
	} {
		if _, err := Truth(expr(t, src), e); err == nil {
			t.Errorf("Truth(%q): expected error", src)
		}
	}
	// EXISTS without evaluator.
	if _, err := Truth(expr(t, "EXISTS (SELECT * FROM T WHERE T.A = 1)"), e); err == nil {
		t.Error("EXISTS without evaluator should fail")
	}
}

func TestExistsCallback(t *testing.T) {
	calls := 0
	e := &Env{
		Cols: map[string]value.Value{},
		Exists: func(sub *ast.Select, env *Env) (tvl.Truth, error) {
			calls++
			return tvl.True, nil
		},
	}
	if got := mustTruth(t, "EXISTS (SELECT * FROM T WHERE T.A = 1)", e); !tvl.IsTrue(got) {
		t.Errorf("EXISTS = %v", got)
	}
	if got := mustTruth(t, "NOT EXISTS (SELECT * FROM T WHERE T.A = 1)", e); !tvl.IsFalse(got) {
		t.Errorf("NOT EXISTS = %v", got)
	}
	if calls != 2 {
		t.Errorf("callback called %d times", calls)
	}
}

func mustTruth(t *testing.T, src string, e *Env) tvl.Truth {
	t.Helper()
	tr, err := Truth(expr(t, src), e)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestQualifiesAndSatisfied(t *testing.T) {
	e := env(map[string]value.Value{"N": value.Null})
	// N = 1 is Unknown: WHERE rejects, CHECK accepts.
	q, err := Qualifies(expr(t, "N = 1"), e)
	if err != nil || q {
		t.Errorf("Qualifies(unknown) = %v, %v; want false", q, err)
	}
	s, err := Satisfied(expr(t, "N = 1"), e)
	if err != nil || !s {
		t.Errorf("Satisfied(unknown) = %v, %v; want true", s, err)
	}
	if _, err := Qualifies(expr(t, "Z = 1"), e); err == nil {
		t.Error("Qualifies should propagate errors")
	}
	if _, err := Satisfied(expr(t, "Z = 1"), e); err == nil {
		t.Error("Satisfied should propagate errors")
	}
}

// The paper's CHECK example: every SUPPLIER row must satisfy the
// table constraints under the true interpretation.
func TestPaperCheckConstraints(t *testing.T) {
	checks := []string{
		"SNO BETWEEN 1 AND 499",
		"SCITY IN ('Chicago', 'New York', 'Toronto')",
		"BUDGET <> 0 OR STATUS = 'Inactive'",
	}
	rows := []struct {
		cols map[string]value.Value
		ok   bool
	}{
		{map[string]value.Value{"SNO": value.Int(10), "SCITY": value.String_("Toronto"),
			"BUDGET": value.Int(100), "STATUS": value.String_("Active")}, true},
		{map[string]value.Value{"SNO": value.Int(500), "SCITY": value.String_("Toronto"),
			"BUDGET": value.Int(100), "STATUS": value.String_("Active")}, false},
		{map[string]value.Value{"SNO": value.Int(10), "SCITY": value.String_("Ottawa"),
			"BUDGET": value.Int(100), "STATUS": value.String_("Active")}, false},
		{map[string]value.Value{"SNO": value.Int(10), "SCITY": value.String_("Toronto"),
			"BUDGET": value.Int(0), "STATUS": value.String_("Inactive")}, true},
		{map[string]value.Value{"SNO": value.Int(10), "SCITY": value.String_("Toronto"),
			"BUDGET": value.Int(0), "STATUS": value.String_("Active")}, false},
		// NULL SCITY: IN is Unknown, CHECK passes (true-interpreted).
		{map[string]value.Value{"SNO": value.Int(10), "SCITY": value.Null,
			"BUDGET": value.Int(1), "STATUS": value.String_("Active")}, true},
	}
	for i, r := range rows {
		e := env(r.cols)
		all := true
		for _, c := range checks {
			ok, err := Satisfied(expr(t, c), e)
			if err != nil {
				t.Fatalf("row %d check %q: %v", i, c, err)
			}
			all = all && ok
		}
		if all != r.ok {
			t.Errorf("row %d: satisfied = %v, want %v", i, all, r.ok)
		}
	}
}
