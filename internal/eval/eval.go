// Package eval evaluates SQL expressions under three-valued logic
// against a row environment. It is shared by the storage layer (CHECK
// constraint enforcement), the execution engine (WHERE clauses and
// join predicates), and the exact Theorem-1 checker in internal/core
// (bounded-instance enumeration).
package eval

import (
	"fmt"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/tvl"
	"uniqopt/internal/value"
)

// ExistsFunc evaluates an EXISTS subquery in the context of the
// current environment and returns its truth value.
type ExistsFunc func(sub *ast.Select, env *Env) (tvl.Truth, error)

// InFunc evaluates the single-column subquery of an IN predicate in
// the context of the current environment and returns its result
// values (duplicates included; they do not affect the truth value).
type InFunc func(sub *ast.Select, env *Env) ([]value.Value, error)

// Env is an evaluation environment: column bindings, host-variable
// bindings, an optional scope for canonical column resolution, and an
// optional subquery evaluator.
type Env struct {
	// Cols binds canonical column names to values. When Scope is set,
	// references are resolved through it to "CORRELATION.COLUMN" keys;
	// otherwise references are looked up literally ("QUAL.COL", then
	// bare "COL").
	Cols map[string]value.Value
	// Hosts binds host-variable names to values.
	Hosts map[string]value.Value
	// Scope, when non-nil, canonicalizes column references.
	Scope *catalog.Scope
	// Exists, when non-nil, evaluates EXISTS subqueries.
	Exists ExistsFunc
	// In, when non-nil, evaluates IN-subquery right-hand sides.
	In InFunc
}

// lookupColumn resolves a column reference to a value.
func (env *Env) lookupColumn(ref *ast.ColumnRef) (value.Value, error) {
	if env.Scope != nil {
		r, err := env.Scope.Resolve(ref)
		if err != nil {
			return value.Null, err
		}
		key := r.Qualified(env.Scope)
		v, ok := env.Cols[key]
		if !ok {
			return value.Null, fmt.Errorf("eval: column %s resolved but not bound", key)
		}
		return v, nil
	}
	if ref.Qualifier != "" {
		if v, ok := env.Cols[ref.Qualifier+"."+ref.Column]; ok {
			return v, nil
		}
	}
	if v, ok := env.Cols[ref.Column]; ok {
		return v, nil
	}
	return value.Null, fmt.Errorf("eval: unbound column %s", ref.SQL())
}

// Value evaluates an operand expression (column, literal, or host
// variable) to a SQL value.
func Value(e ast.Expr, env *Env) (value.Value, error) {
	switch x := e.(type) {
	case *ast.ColumnRef:
		return env.lookupColumn(x)
	case *ast.IntLit:
		return value.Int(x.V), nil
	case *ast.StringLit:
		return value.String_(x.V), nil
	case *ast.BoolLit:
		return value.Bool(x.V), nil
	case *ast.NullLit:
		return value.Null, nil
	case *ast.HostVar:
		v, ok := env.Hosts[x.Name]
		if !ok {
			return value.Null, fmt.Errorf("eval: unbound host variable :%s", x.Name)
		}
		return v, nil
	default:
		return value.Null, fmt.Errorf("eval: %s is not an operand", e.SQL())
	}
}

// Truth evaluates a boolean expression under 3VL. A nil expression is
// TRUE (an absent WHERE clause).
func Truth(e ast.Expr, env *Env) (tvl.Truth, error) {
	if e == nil {
		return tvl.True, nil
	}
	switch x := e.(type) {
	case *ast.BoolLit:
		return tvl.Of(x.V), nil
	case *ast.Compare:
		return compare(x, env)
	case *ast.Between:
		lo := &ast.Compare{Op: ast.GeOp, L: x.X, R: x.Lo}
		hi := &ast.Compare{Op: ast.LeOp, L: x.X, R: x.Hi}
		a, err := compare(lo, env)
		if err != nil {
			return tvl.Unknown, err
		}
		b, err := compare(hi, env)
		if err != nil {
			return tvl.Unknown, err
		}
		t := tvl.And(a, b)
		if x.Negated {
			t = tvl.Not(t)
		}
		return t, nil
	case *ast.InList:
		// X IN (a, b, ...) ≡ X=a OR X=b OR ... under 3VL.
		out := tvl.False
		for _, item := range x.List {
			t, err := compare(&ast.Compare{Op: ast.EqOp, L: x.X, R: item}, env)
			if err != nil {
				return tvl.Unknown, err
			}
			out = tvl.Or(out, t)
			if tvl.IsTrue(out) {
				break
			}
		}
		if x.Negated {
			out = tvl.Not(out)
		}
		return out, nil
	case *ast.IsNull:
		v, err := Value(x.X, env)
		if err != nil {
			return tvl.Unknown, err
		}
		// IS [NOT] NULL is two-valued.
		return tvl.Of(v.IsNull() != x.Negated), nil
	case *ast.Not:
		t, err := Truth(x.X, env)
		if err != nil {
			return tvl.Unknown, err
		}
		return tvl.Not(t), nil
	case *ast.And:
		l, err := Truth(x.L, env)
		if err != nil {
			return tvl.Unknown, err
		}
		if tvl.IsFalse(l) {
			return tvl.False, nil
		}
		r, err := Truth(x.R, env)
		if err != nil {
			return tvl.Unknown, err
		}
		return tvl.And(l, r), nil
	case *ast.Or:
		l, err := Truth(x.L, env)
		if err != nil {
			return tvl.Unknown, err
		}
		if tvl.IsTrue(l) {
			return tvl.True, nil
		}
		r, err := Truth(x.R, env)
		if err != nil {
			return tvl.Unknown, err
		}
		return tvl.Or(l, r), nil
	case *ast.InSubquery:
		// X IN (subquery) under 3VL: True if some result value equals
		// X, False if none could (all definite non-matches), Unknown
		// if no match but some comparison was Unknown (NULLs on either
		// side).
		if env.In == nil {
			return tvl.Unknown, fmt.Errorf("eval: no subquery evaluator for IN")
		}
		xv, err := Value(x.X, env)
		if err != nil {
			return tvl.Unknown, err
		}
		vals, err := env.In(x.Query, env)
		if err != nil {
			return tvl.Unknown, err
		}
		out := tvl.False
		for _, v := range vals {
			var t tvl.Truth
			if xv.IsNull() || v.IsNull() {
				t = tvl.Unknown
			} else if !value.Comparable(xv.Kind(), v.Kind()) {
				return tvl.Unknown, fmt.Errorf("eval: IN compares %s with %s", xv.Kind(), v.Kind())
			} else {
				t = value.Eq(xv, v)
			}
			out = tvl.Or(out, t)
			if tvl.IsTrue(out) {
				break
			}
		}
		if x.Negated {
			out = tvl.Not(out)
		}
		return out, nil
	case *ast.Exists:
		if env.Exists == nil {
			return tvl.Unknown, fmt.Errorf("eval: no subquery evaluator for EXISTS")
		}
		t, err := env.Exists(x.Query, env)
		if err != nil {
			return tvl.Unknown, err
		}
		if x.Negated {
			t = tvl.Not(t)
		}
		return t, nil
	default:
		return tvl.Unknown, fmt.Errorf("eval: %s is not a boolean expression", e.SQL())
	}
}

func compare(x *ast.Compare, env *Env) (tvl.Truth, error) {
	l, err := Value(x.L, env)
	if err != nil {
		return tvl.Unknown, err
	}
	r, err := Value(x.R, env)
	if err != nil {
		return tvl.Unknown, err
	}
	if l.IsNull() || r.IsNull() {
		return tvl.Unknown, nil
	}
	if !value.Comparable(l.Kind(), r.Kind()) {
		return tvl.Unknown, fmt.Errorf("eval: cannot compare %s with %s in %s",
			l.Kind(), r.Kind(), x.SQL())
	}
	switch x.Op {
	case ast.EqOp:
		return value.Eq(l, r), nil
	case ast.NeOp:
		return value.Ne(l, r), nil
	case ast.LtOp:
		return value.Lt(l, r), nil
	case ast.LeOp:
		return value.Le(l, r), nil
	case ast.GtOp:
		return value.Gt(l, r), nil
	case ast.GeOp:
		return value.Ge(l, r), nil
	default:
		return tvl.Unknown, fmt.Errorf("eval: unknown comparison operator")
	}
}

// Qualifies reports whether the WHERE-clause predicate e accepts the
// environment: the false-interpreted reading ⌊e⌋ (Unknown rejects).
func Qualifies(e ast.Expr, env *Env) (bool, error) {
	t, err := Truth(e, env)
	if err != nil {
		return false, err
	}
	return tvl.FalseInterpreted(t), nil
}

// Satisfied reports whether a CHECK constraint accepts the
// environment: the true-interpreted reading ⌈e⌉ (Unknown passes), as
// the SQL standard prescribes for constraint checking.
func Satisfied(e ast.Expr, env *Env) (bool, error) {
	t, err := Truth(e, env)
	if err != nil {
		return false, err
	}
	return tvl.TrueInterpreted(t), nil
}
