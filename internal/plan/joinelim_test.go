package plan

import (
	"strings"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
)

// Join elimination fires through the planner fixpoint and preserves
// semantics as a multiset — including row multiplicities (one output
// row per PART, even though SUPPLIER is gone).
func TestJoinEliminationEquivalence(t *testing.T) {
	db := smallDB(t)
	for _, src := range []string{
		`SELECT P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`,
		`SELECT P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`,
		`SELECT A.ANAME FROM SUPPLIER S, AGENTS A WHERE A.SNO = S.SNO`,
		`SELECT DISTINCT P.COLOR FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`,
	} {
		base, opt := runThreeWays(t, db, src, nil)
		eliminated := false
		for _, ap := range opt.Rewrites {
			if ap.Rule == core.RuleJoinElimination {
				eliminated = true
			}
		}
		if !eliminated {
			t.Errorf("%s: join elimination did not fire (%v)", src, rewriteNames(opt))
			continue
		}
		// The optimized plan must scan only one table.
		scans := 0
		for _, line := range opt.Plan {
			if strings.HasPrefix(line, "Scan(") {
				scans++
			}
		}
		if scans != 1 {
			t.Errorf("%s: optimized plan scans %d tables:\n%s", src, scans,
				strings.Join(opt.Plan, "\n"))
		}
		if opt.Stats.RowsScanned >= base.Stats.RowsScanned {
			t.Errorf("%s: elimination should reduce scanned rows (%d vs %d)",
				src, opt.Stats.RowsScanned, base.Stats.RowsScanned)
		}
	}
}

// Chaining: eliminate the join, then drop a now-provable DISTINCT.
func TestJoinEliminationChainsWithDistinct(t *testing.T) {
	db := smallDB(t)
	src := `SELECT DISTINCT P.SNO, P.PNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewPlanner(db, Options{ApplyRewrites: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := rewriteNames(opt)
	// eliminate-distinct can fire first (keys are bound even with the
	// join present) or after elimination; both must appear.
	joined := strings.Join(rules, ",")
	if !strings.Contains(joined, string(core.RuleJoinElimination)) ||
		!strings.Contains(joined, string(core.RuleEliminateDistinct)) {
		t.Errorf("rules = %v", rules)
	}
	ref, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Error("chained elimination changed semantics")
	}
	if opt.Stats.SortRuns != 0 {
		t.Error("no sort should remain after the chain")
	}
}

// A query whose SUPPLIER participation matters (filter on S) must keep
// the join.
func TestJoinEliminationKeepsNeededJoins(t *testing.T) {
	db := smallDB(t)
	src := `SELECT P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND S.SCITY = 'Toronto'`
	q, _ := parser.ParseQuery(src)
	opt, err := NewPlanner(db, Options{ApplyRewrites: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range opt.Rewrites {
		if ap.Rule == core.RuleJoinElimination {
			t.Fatalf("join with a live filter must not be eliminated: %s", ap.After)
		}
	}
	ref, _ := engine.NewExecutor(db, nil).Query(q)
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Error("semantics changed")
	}
}

// workload.RandomQuery corpus re-run focused on FK-joined shapes: the
// equivalence property must hold with join elimination in the rule set
// (it participates in TestRandomQueryEquivalenceProperty too; this is
// the targeted version).
func TestJoinEliminationRandomizedEquivalence(t *testing.T) {
	db := smallDB(t)
	projections := []string{"P.PNO", "P.PNO, P.PNAME", "P.COLOR", "P.SNO, P.PNO"}
	filters := []string{"", " AND P.COLOR = 'RED'", " AND P.PNO = 2", " AND P.PNO > 3"}
	quants := []string{"", "ALL ", "DISTINCT "}
	for _, proj := range projections {
		for _, f := range filters {
			for _, qn := range quants {
				src := "SELECT " + qn + proj +
					" FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO" + f
				runThreeWays(t, db, src, nil)
			}
		}
	}
}
