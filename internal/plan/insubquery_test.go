package plan

import (
	"strings"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// IN-subquery queries run identically through the reference executor,
// baseline planner, and rewriting planner.
func TestInSubqueryEquivalence(t *testing.T) {
	db := smallDB(t)
	srcs := []string{
		// Uncorrelated IN.
		`SELECT S.SNAME FROM SUPPLIER S
			WHERE S.SNO IN (SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')`,
		// Correlated IN (Kim's type-J shape).
		`SELECT S.SNO FROM SUPPLIER S
			WHERE S.SNO IN (SELECT P.SNO FROM PARTS P WHERE P.SNO = S.SNO AND P.PNO = 2)`,
		// IN over a constant membership.
		`SELECT P.PNO, P.PNAME FROM PARTS P
			WHERE P.SNO IN (SELECT S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto')`,
		// NOT IN stays un-rewritten but must still execute correctly.
		`SELECT S.SNO FROM SUPPLIER S
			WHERE S.SNO NOT IN (SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')`,
	}
	for _, src := range srcs {
		runThreeWays(t, db, src, nil)
	}
}

// The rewrite chain: IN → EXISTS → (DISTINCT) join, all semantics
// preserving.
func TestInToExistsChain(t *testing.T) {
	db := smallDB(t)
	src := `SELECT S.SNO, S.SNAME FROM SUPPLIER S
		WHERE S.SNO IN (SELECT P.SNO FROM PARTS P WHERE P.COLOR = 'RED')`
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewPlanner(db, Options{ApplyRewrites: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := strings.Join(rewriteNames(opt), ",")
	if !strings.Contains(rules, string(core.RuleInToExists)) {
		t.Fatalf("IN rewrite missing: %s", rules)
	}
	if !strings.Contains(rules, string(core.RuleSubqueryToDistinct)) {
		t.Errorf("EXISTS should chain into a DISTINCT join: %s", rules)
	}
	if opt.Stats.SubqueryRuns != 0 {
		t.Errorf("fully unnested plan should not probe subqueries: %s", opt.Stats.String())
	}
	ref, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Error("IN unnesting changed semantics")
	}
}

// NOT IN with a NULL-producing subquery: the 3VL trap. NOT IN must
// reject every row (membership is Unknown), while a naive NOT EXISTS
// rewrite would keep some — the reason InToExists refuses negated
// predicates.
func TestNotInNullTrap(t *testing.T) {
	cat := workload.BenchCatalog()
	db := storage.NewDB(cat)
	for _, sno := range []int64{1, 2} {
		if err := db.Insert("SUPPLIER", value.Row{value.Int(sno), value.String_("s"),
			value.String_("Toronto"), value.Int(1), value.String_("Active")}); err != nil {
			t.Fatal(err)
		}
	}
	// One part with NULL OEM-PNO, one with OEM-PNO = 1.
	if err := db.Insert("PARTS", value.Row{value.Int(1), value.Int(1),
		value.String_("a"), value.Null, value.String_("RED")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("PARTS", value.Row{value.Int(1), value.Int(2),
		value.String_("b"), value.Int(1), value.String_("RED")}); err != nil {
		t.Fatal(err)
	}

	// SNO 2 is not in {NULL, 1}: membership is Unknown (the NULL could
	// be 2), so NOT IN rejects it; SNO 1 matches, NOT IN rejects it
	// too. The correct answer is zero rows.
	src := `SELECT S.SNO FROM SUPPLIER S
		WHERE S.SNO NOT IN (SELECT P.OEM-PNO FROM PARTS P)`
	base, opt := runThreeWays(t, db, src, nil)
	if base.Rel.Len() != 0 || opt.Rel.Len() != 0 {
		t.Fatalf("NOT IN over a NULL-producing subquery must be empty: base=%d opt=%d",
			base.Rel.Len(), opt.Rel.Len())
	}
	// The contrast: NOT EXISTS keeps SNO 2 (there is no OEM-PNO row
	// equal to 2 — NULL never equals anything in WHERE).
	contrast := `SELECT S.SNO FROM SUPPLIER S
		WHERE NOT EXISTS (SELECT * FROM PARTS P WHERE P.OEM-PNO = S.SNO)`
	ref, err := engine.NewExecutor(db, nil).Query(mustParse(t, contrast))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() != 1 || ref.Rows[0][0].AsInt() != 2 {
		t.Fatalf("NOT EXISTS contrast = %v (the two forms must differ)", ref)
	}
	// And the optimizer must not have converted the NOT IN.
	for _, ap := range opt.Rewrites {
		if ap.Rule == core.RuleInToExists {
			t.Fatal("NOT IN must not be converted to NOT EXISTS")
		}
	}
}

// Positive IN whose subquery produces NULLs: conversion is still exact
// under the WHERE clause's false interpretation.
func TestPositiveInWithNullsStillExact(t *testing.T) {
	cat := workload.BenchCatalog()
	db := storage.NewDB(cat)
	for _, sno := range []int64{1, 2} {
		if err := db.Insert("SUPPLIER", value.Row{value.Int(sno), value.String_("s"),
			value.String_("Toronto"), value.Int(1), value.String_("Active")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("PARTS", value.Row{value.Int(1), value.Int(1),
		value.String_("a"), value.Null, value.String_("RED")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("PARTS", value.Row{value.Int(2), value.Int(1),
		value.String_("b"), value.Int(1), value.String_("RED")}); err != nil {
		t.Fatal(err)
	}
	src := `SELECT S.SNO FROM SUPPLIER S
		WHERE S.SNO IN (SELECT P.OEM-PNO FROM PARTS P)`
	base, opt := runThreeWays(t, db, src, nil)
	// Only SNO 1 matches (OEM values are {NULL, 1}).
	if base.Rel.Len() != 1 || opt.Rel.Len() != 1 {
		t.Fatalf("rows: base=%d opt=%d, want 1", base.Rel.Len(), opt.Rel.Len())
	}
}

func mustParse(t *testing.T, src string) ast.Query {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}
