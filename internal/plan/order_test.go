package plan

import (
	"strings"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// runOrdered executes src with the default (uniqueness-ordered)
// planner and with WrittenJoinOrder, asserts identical results, and
// returns the ordered run.
func runOrdered(t *testing.T, src string, hosts map[string]value.Value) *Result {
	t.Helper()
	db := smallDB(t)
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := NewPlanner(db, Options{}).Run(q, hosts)
	if err != nil {
		t.Fatal(err)
	}
	written, err := NewPlanner(db, Options{WrittenJoinOrder: true}).Run(q, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(ordered.Rel, written.Rel) {
		t.Fatalf("join ordering changed the result for %q:\nordered %d rows, written %d rows",
			src, ordered.Rel.Len(), written.Rel.Len())
	}
	return ordered
}

// The constant-filtered table starts the join even when written last,
// and the table probed through its bound key carries the unary-key
// cardinality bound as its justification.
func TestJoinOrderSelectiveTableFirst(t *testing.T) {
	res := runOrdered(t, `SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, nil)
	if !hasPlanLine(res, "JoinOrder(P, S)") {
		t.Errorf("filtered P should start the join:\n%s", strings.Join(res.Plan, "\n"))
	}
}

// A whole candidate key bound by constants makes that table the start
// regardless of other filters elsewhere.
func TestJoinOrderKeyBoundStartsFirst(t *testing.T) {
	res := runOrdered(t, `SELECT S.SNAME, P.PNO FROM PARTS P, SUPPLIER S
		WHERE S.SNO = P.SNO AND S.SNO = 7 AND P.COLOR = 'RED'`, nil)
	if !hasPlanLine(res, "JoinOrder(S, P)") {
		t.Errorf("key-bound S should start the join:\n%s", strings.Join(res.Plan, "\n"))
	}
}

// S.SNO = P.SNO together with S.SNO = 7 implies P.SNO = 7; the derived
// equality must sink below the join as a pushed filter on P.
func TestDerivedConstEqualityPushdown(t *testing.T) {
	res := runOrdered(t, `SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND S.SNO = 7`, nil)
	if !hasPlanLine(res, "P.SNO = 7") {
		t.Errorf("derived equality P.SNO = 7 not pushed below the join:\n%s",
			strings.Join(res.Plan, "\n"))
	}
}

// WrittenJoinOrder disables both reordering and derived pushdown — the
// pre-planner behavior the benchmarks use as their baseline.
func TestWrittenJoinOrderOption(t *testing.T) {
	db := smallDB(t)
	q, err := parser.ParseQuery(`SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPlanner(db, Options{WrittenJoinOrder: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hasPlanLine(res, "JoinOrder(") {
		t.Errorf("WrittenJoinOrder must not reorder:\n%s", strings.Join(res.Plan, "\n"))
	}
}

// A table with no predicate connecting it to the rest goes last — the
// Cartesian product runs over the smallest possible prefix.
func TestJoinOrderCartesianLast(t *testing.T) {
	res := runOrdered(t, `SELECT S.SNAME, P.PNO, A.ANO FROM AGENTS A, SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED' AND A.SNO = A.SNO`, nil)
	line := ""
	for _, l := range res.Plan {
		if strings.HasPrefix(l, "JoinOrder(") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no JoinOrder line:\n%s", strings.Join(res.Plan, "\n"))
	}
	if !strings.HasSuffix(line, "A)") {
		t.Errorf("unconnected A should be joined last, got %s", line)
	}
}

// In a three-way chain with a point-bound end, the greedy order walks
// the chain from the bound table outward so each intermediate stays
// small; the plan must spell out the per-position bounds.
func TestJoinOrderThreeWayChain(t *testing.T) {
	res := runOrdered(t, `SELECT A.ANO FROM AGENTS A, PARTS P, SUPPLIER S
		WHERE A.SNO = P.SNO AND P.SNO = S.SNO AND S.SNO = 3`, nil)
	if !hasPlanLine(res, "JoinOrder(S, P, A)") {
		t.Errorf("chain should start at key-bound S:\n%s", strings.Join(res.Plan, "\n"))
	}
}

// The ordered planner and the written-order baseline agree on every
// paper example, with and without rewrites — ordering is a pure
// execution-strategy change, never a semantic one.
func TestJoinOrderEquivalenceOnPaperExamples(t *testing.T) {
	db := smallDB(t)
	for _, name := range []string{"example1", "example2", "example3", "example4",
		"example6", "example7", "example8", "example9", "example10", "example11"} {
		src, ok := workload.PaperQueries[name]
		if !ok {
			continue
		}
		q, err := parser.ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hosts := hostsFor(name)
		for _, opts := range []Options{
			{},
			{ApplyRewrites: true, Core: core.Options{UseKeyFDs: true}},
		} {
			ordered, err := NewPlanner(db, opts).Run(q, hosts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			wopts := opts
			wopts.WrittenJoinOrder = true
			written, err := NewPlanner(db, wopts).Run(q, hosts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !engine.MultisetEqual(ordered.Rel, written.Rel) {
				t.Errorf("%s: ordering changed the result (rewrites=%v)", name, opts.ApplyRewrites)
			}
		}
	}
}

// EXPLAIN carries the justification: the chosen order, why the start
// table starts, and the uniqueness bound behind each join position.
func TestExplainNamesBounds(t *testing.T) {
	db := smallDB(t)
	q, err := parser.ParseQuery(`SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(db, Options{})
	res, err := p.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rendered := res.Root.Format(false)
	for _, want := range []string{
		"join order: P, S (written: S, P)",
		"start P: constant-bound COLOR",
		"unique probe of S: key (SNO) bound by S.SNO = P.SNO ⇒ at most 1 row per outer row",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, rendered)
		}
	}
}
