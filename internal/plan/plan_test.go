package plan

import (
	"math/rand"
	"strings"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func smallDB(t testing.TB) *storage.DB {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 40
	cfg.PartsPerSupplier = 5
	db, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func hostsFor(name string) map[string]value.Value {
	hosts := map[string]value.Value{}
	for _, hv := range workload.PaperHostVars[name] {
		switch hv {
		case "SUPPLIER-NAME":
			hosts[hv] = value.String_("Smith")
		default:
			hosts[hv] = value.Int(3)
		}
	}
	return hosts
}

// runThreeWays executes src with the reference executor, the baseline
// planner, and the rewriting planner, and checks multiset equality.
func runThreeWays(t *testing.T, db *storage.DB, src string, hosts map[string]value.Value) (*Result, *Result) {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ref, err := engine.NewExecutor(db, hosts).Query(q)
	if err != nil {
		t.Fatalf("reference %q: %v", src, err)
	}
	base, err := NewPlanner(db, Options{}).Run(q, hosts)
	if err != nil {
		t.Fatalf("baseline %q: %v", src, err)
	}
	opt, err := NewPlanner(db, Options{ApplyRewrites: true,
		Core: core.Options{UseKeyFDs: true}}).Run(q, hosts)
	if err != nil {
		t.Fatalf("optimized %q: %v", src, err)
	}
	if !engine.MultisetEqual(ref, base.Rel) {
		t.Fatalf("baseline differs from reference for %q\nref(%d rows) vs base(%d rows)",
			src, ref.Len(), base.Rel.Len())
	}
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Fatalf("optimized differs from reference for %q\nrewrites: %v\nref(%d) vs opt(%d)",
			src, rewriteNames(opt), ref.Len(), opt.Rel.Len())
	}
	return base, opt
}

func rewriteNames(r *Result) []string {
	var out []string
	for _, ap := range r.Rewrites {
		out = append(out, string(ap.Rule))
	}
	return out
}

// Every paper example must produce identical results under all three
// execution paths, and the expected rewrites must fire.
func TestPaperQueriesEquivalence(t *testing.T) {
	db := smallDB(t)
	wantRewrite := map[string]core.Rule{
		"example1": core.RuleEliminateDistinct,
		"example4": core.RuleEliminateDistinct,
		"example6": core.RuleEliminateDistinct,
		"example7": core.RuleSubqueryToJoin,
		"example8": core.RuleSubqueryToDistinct,
		"example9": core.RuleIntersectToExists,
	}
	for name, src := range workload.PaperQueries {
		base, opt := runThreeWays(t, db, src, hostsFor(name))
		_ = base
		if rule, ok := wantRewrite[name]; ok {
			found := false
			for _, ap := range opt.Rewrites {
				if ap.Rule == rule {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: expected rewrite %s, got %v", name, rule, rewriteNames(opt))
			}
		}
	}
}

// Example 1's measurable claim: dropping the redundant DISTINCT
// removes the result sort entirely.
func TestE1SortAvoidance(t *testing.T) {
	db := smallDB(t)
	src := workload.PaperQueries["example1"]
	base, opt := runThreeWays(t, db, src, nil)
	if base.Stats.SortRuns == 0 {
		t.Error("baseline must sort for DISTINCT")
	}
	if opt.Stats.SortRuns != 0 {
		t.Errorf("optimized plan should not sort; stats: %s", opt.Stats.String())
	}
	if opt.Stats.Comparisons >= base.Stats.Comparisons {
		t.Errorf("optimized comparisons (%d) should be below baseline (%d)",
			opt.Stats.Comparisons, base.Stats.Comparisons)
	}
}

// Example 7's claim: merging the subquery replaces per-row nested-loop
// probes with a single hash join.
func TestE2SubqueryProbesEliminated(t *testing.T) {
	db := smallDB(t)
	src := workload.PaperQueries["example7"]
	base, opt := runThreeWays(t, db, src, hostsFor("example7"))
	if base.Stats.SubqueryRuns == 0 {
		t.Error("baseline must run nested-loop subqueries")
	}
	if opt.Stats.SubqueryRuns != 0 {
		t.Errorf("optimized plan should not probe subqueries; stats: %s", opt.Stats.String())
	}
}

// Fixpoint chaining: Example 7 merges (Theorem 2) and then the merged
// DISTINCT-free query needs no further change; a DISTINCT query that
// merges via Corollary 1 may then drop its DISTINCT if keys are bound.
func TestRewriteChaining(t *testing.T) {
	db := smallDB(t)
	// DISTINCT outer + at-most-one subquery: merge (valid via
	// DISTINCT), then eliminate-distinct fires because both keys are
	// bound after the merge.
	src := `SELECT DISTINCT S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = 1)`
	q, _ := parser.ParseQuery(src)
	opt, err := NewPlanner(db, Options{ApplyRewrites: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	rules := rewriteNames(opt)
	if len(rules) < 2 {
		t.Fatalf("expected chained rewrites, got %v", rules)
	}
	if rules[0] != string(core.RuleSubqueryToJoin) || rules[1] != string(core.RuleEliminateDistinct) {
		t.Errorf("rules = %v", rules)
	}
	if opt.Stats.SortRuns != 0 {
		t.Error("after chaining no sort should remain")
	}
	ref, _ := engine.NewExecutor(db, nil).Query(q)
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Error("chained rewrite changed semantics")
	}
}

// The hash-distinct ablation must agree with sort-distinct.
func TestHashDistinctAblation(t *testing.T) {
	db := smallDB(t)
	src := workload.PaperQueries["example2"] // genuinely needs DISTINCT
	q, _ := parser.ParseQuery(src)
	sortRes, err := NewPlanner(db, Options{}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	hashRes, err := NewPlanner(db, Options{HashDistinct: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(sortRes.Rel, hashRes.Rel) {
		t.Error("hash distinct disagrees with sort distinct")
	}
	if hashRes.Stats.SortRuns != 0 || sortRes.Stats.SortRuns == 0 {
		t.Error("ablation did not switch the distinct method")
	}
	found := false
	for _, line := range hashRes.Plan {
		if line == "DistinctHash" {
			found = true
		}
	}
	if !found {
		t.Errorf("plan should record DistinctHash: %v", hashRes.Plan)
	}
}

// Plan text must reflect the chosen operators.
func TestPlanDescription(t *testing.T) {
	db := smallDB(t)
	q, _ := parser.ParseQuery(workload.PaperQueries["example1"])
	res, err := NewPlanner(db, Options{}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(res.Plan, "\n")
	for _, want := range []string{"Scan(SUPPLIER as S)", "Scan(PARTS as P)", "HashJoin", "DistinctSort"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
}

// Property: for a corpus of random queries, baseline and rewriting
// planners agree with the reference executor on several database
// instances. This is the end-to-end semantic-preservation suite (E8).
func TestRandomQueryEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property suite is slow")
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := workload.DefaultConfig()
		cfg.Suppliers = 30
		cfg.PartsPerSupplier = 4
		cfg.Seed = seed
		db, err := workload.NewDB(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed * 77))
		for i := 0; i < 120; i++ {
			src := workload.RandomQuery(r)
			runThreeWays(t, db, src, nil)
		}
	}
}

// NULL candidate keys flowing through set-operation rewrites: the ≐
// semantics must be preserved end to end (the §5.3 Starburst Rule 8
// correction).
func TestSetOpRewriteWithNullKeys(t *testing.T) {
	cat := workload.BenchCatalog()
	db := storage.NewDB(cat)
	// Referenced suppliers first (the schema declares the FK).
	for _, sno := range []int64{1, 2} {
		if err := db.Insert("SUPPLIER", value.Row{value.Int(sno), value.String_("s"),
			value.String_("Toronto"), value.Int(1), value.String_("Active")}); err != nil {
			t.Fatal(err)
		}
	}
	// Two parts tables' worth of rows, one with NULL OEM-PNO each.
	rows := [][]value.Value{
		{value.Int(1), value.Int(1), value.String_("a"), value.Null, value.String_("RED")},
		{value.Int(1), value.Int(2), value.String_("b"), value.Int(7), value.String_("RED")},
		{value.Int(2), value.Int(1), value.String_("c"), value.Int(9), value.String_("BLUE")},
	}
	for _, r := range rows {
		if err := db.Insert("PARTS", value.Row(r)); err != nil {
			t.Fatal(err)
		}
	}
	src := `SELECT ALL P.OEM-PNO FROM PARTS P WHERE P.COLOR = 'RED'
		INTERSECT
		SELECT ALL Q.OEM-PNO FROM PARTS Q`
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// The NULL OEM-PNO row must be in the intersection (NULL ≐ NULL).
	foundNull := false
	for _, row := range ref.Rows {
		if row[0].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatal("reference must include the NULL row")
	}
	opt, err := NewPlanner(db, Options{ApplyRewrites: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Rewrites) == 0 {
		t.Fatal("intersect rewrite should fire (OEM-PNO is a candidate key)")
	}
	if !engine.MultisetEqual(ref, opt.Rel) {
		t.Errorf("NULL-aware rewrite broke semantics:\nref %v\nopt %v", ref, opt.Rel)
	}
}

// Ablation #4: a deliberately naive correlation predicate (plain
// equality, no NULL handling) loses the NULL row — reproducing the
// Starburst Rule 8 bug the paper points out. This pins why the
// NULL-aware predicate matters.
func TestNaiveCorrelationLosesNullRow(t *testing.T) {
	cat := workload.BenchCatalog()
	db := storage.NewDB(cat)
	if err := db.Insert("SUPPLIER", value.Row{value.Int(1), value.String_("s"),
		value.String_("Toronto"), value.Int(1), value.String_("Active")}); err != nil {
		t.Fatal(err)
	}
	rows := [][]value.Value{
		{value.Int(1), value.Int(1), value.String_("a"), value.Null, value.String_("RED")},
		{value.Int(1), value.Int(2), value.String_("b"), value.Int(7), value.String_("RED")},
	}
	for _, r := range rows {
		if err := db.Insert("PARTS", value.Row(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-written naive rewrite of the INTERSECT above.
	naive := `SELECT ALL P.OEM-PNO FROM PARTS P WHERE P.COLOR = 'RED'
		AND EXISTS (SELECT * FROM PARTS Q WHERE Q.OEM-PNO = P.OEM-PNO)`
	q, _ := parser.ParseQuery(naive)
	res, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].IsNull() {
			t.Fatal("naive correlation unexpectedly kept the NULL row")
		}
	}
	if res.Len() != 1 {
		t.Errorf("naive rewrite rows = %d, want 1 (NULL row lost)", res.Len())
	}
}

func TestPlannerErrors(t *testing.T) {
	db := smallDB(t)
	for _, src := range []string{
		"SELECT X FROM NOPE",
		"SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :UNBOUND",
	} {
		q, err := parser.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewPlanner(db, Options{}).Run(q, nil); err == nil {
			t.Errorf("Run(%q): expected error", src)
		}
	}
}

// Three-table queries plan as a left-deep hash-join tree and agree
// with the reference executor.
func TestThreeWayJoinEquivalence(t *testing.T) {
	// A compact instance: the reference executor materializes the full
	// three-way product.
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 12
	cfg.PartsPerSupplier = 3
	cfg.AgentsPerSupplier = 2
	db, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		`SELECT DISTINCT S.SNO, P.PNO, A.ANO FROM SUPPLIER S, PARTS P, AGENTS A
			WHERE S.SNO = P.SNO AND S.SNO = A.SNO`,
		`SELECT S.SNAME, P.PNAME, A.ANAME FROM SUPPLIER S, PARTS P, AGENTS A
			WHERE S.SNO = P.SNO AND P.SNO = A.SNO AND P.COLOR = 'RED'`,
		// One cross pair (no join predicate between S and A directly).
		`SELECT ALL S.SNO FROM SUPPLIER S, PARTS P, AGENTS A
			WHERE S.SNO = P.SNO AND A.ANO = 1 AND A.SNO = P.SNO`,
	}
	for _, src := range srcs {
		base, opt := runThreeWays(t, db, src, nil)
		_ = base
		_ = opt
	}
}

// A genuinely predicate-free Cartesian product must still execute
// correctly (Product operator path).
func TestCartesianProductPath(t *testing.T) {
	db := smallDB(t)
	base, _ := runThreeWays(t, db,
		`SELECT S.SNO, A.ANO FROM SUPPLIER S, AGENTS A WHERE S.SNO = 1`, nil)
	found := false
	for _, line := range base.Plan {
		if line == "Product" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a Product operator:\n%v", base.Plan)
	}
}
