package plan

import (
	"context"
	"fmt"
	"strings"
	"time"

	"uniqopt/internal/engine"
	"uniqopt/internal/eval"
	"uniqopt/internal/value"
)

// Streaming execution of a selectPlan: the same physical plan the
// materializing executor runs, assembled as a pull-based iterator
// pipeline (engine/stream.go) and drained once at the root. Only
// blocking state — hash-join build tables, distinct tables, sort
// buffers, the buffered product inner — is ever resident, so a memory
// budget bounds the pipeline's live footprint instead of the sum of
// every operator's output.

// nodeIter instruments one pipeline edge: every batch pulled through
// it is attributed to its plan Node (rows out, batch count, cumulative
// wall time of the subtree rooted here). finalizeStream later converts
// cumulative times to the per-operator self times EXPLAIN ANALYZE
// reports.
type nodeIter struct {
	child engine.Iterator
	node  *Node
}

func (it *nodeIter) Cols() []string { return it.child.Cols() }

// SizeHint forwards the child's bound so downstream hash operators
// (join build tables, distinct tables) still presize when this
// instrumentation wrapper sits between them.
func (it *nodeIter) SizeHint() int {
	if h, ok := it.child.(engine.SizeHinter); ok {
		return h.SizeHint()
	}
	return 0
}

func (it *nodeIter) Next(ctx context.Context) (engine.Batch, error) {
	t0 := time.Now()
	b, err := it.child.Next(ctx)
	it.node.TimeNanos += time.Since(t0).Nanoseconds()
	if b != nil {
		it.node.RowsOut += int64(len(b))
		it.node.Batches++
	}
	return b, err
}

func (it *nodeIter) Close() error { return it.child.Close() }

// finalizeStream finishes a drained streaming plan tree's metrics:
// marks every node analyzed, derives RowsIn from the children's
// emitted rows (leaves keep the table cardinality preset at build
// time), and converts cumulative subtree times into per-operator self
// times. Returns the node's cumulative time.
func finalizeStream(n *Node) int64 {
	var childCum, childRows int64
	for _, c := range n.Children {
		childCum += finalizeStream(c)
		childRows += c.RowsOut
	}
	n.Analyzed = true
	if len(n.Children) > 0 {
		n.RowsIn = childRows
	}
	cum := n.TimeNanos
	if self := cum - childCum; self > 0 {
		n.TimeNanos = self
	} else {
		n.TimeNanos = 0
	}
	return cum
}

// execSelectStream executes a selectPlan as one streaming pipeline.
// Plan lines, tree shape, and result rows are identical to the
// materializing path; only the execution strategy differs.
func (p *Planner) execSelectStream(ctx context.Context, sp *selectPlan, hosts map[string]value.Value, res *Result) (*engine.Relation, *Node, error) {
	st := &res.Stats
	envProto := &eval.Env{
		Cols:   map[string]value.Value{},
		Hosts:  hosts,
		Exists: p.naiveExists(ctx, hosts, res),
		In:     p.naiveIn(ctx, hosts, res),
	}
	// roots tracks the pipeline fragments not yet owned by a parent
	// operator, so a mid-assembly error can release everything.
	var roots []engine.Iterator
	fail := func(err error) (*engine.Relation, *Node, error) {
		for _, it := range roots {
			if it != nil {
				it.Close()
			}
		}
		return nil, nil, err
	}
	wrap := func(it engine.Iterator, op, detail string, rowsIn int64, children []*Node) (engine.Iterator, *Node) {
		n := &Node{Op: op, Detail: detail, Children: children, RowsIn: rowsIn}
		return &nodeIter{child: it, node: n}, n
	}

	type streamTable struct {
		it   engine.Iterator
		node *Node
	}
	var tables []streamTable
	for _, t := range sp.tables {
		var it engine.Iterator
		var node *Node
		// Same binding step as the materializing path: the symbolic
		// access plan resolves host variables here, falling back to a
		// full scan plus the whole pushed filter when it cannot.
		dec := t.ap.bind(t.tbl, t.corr, hosts)
		pred := t.pushResidual
		if dec == nil {
			pred = t.push
		}
		if dec != nil {
			base, err := dec.stream(st)
			if err != nil {
				return fail(err)
			}
			it, node = wrap(base, dec.op, dec.detail, int64(t.tbl.Len()), nil)
			res.Plan = append(res.Plan, fmt.Sprintf("%s(%s)", dec.op, dec.detail))
		} else {
			it, node = wrap(engine.NewTableIter(st, t.tbl, t.corr), "Scan",
				fmt.Sprintf("%s as %s", t.tbl.Schema.Name, t.corr), int64(t.tbl.Len()), nil)
			res.Plan = append(res.Plan, fmt.Sprintf("Scan(%s as %s)", t.tbl.Schema.Name, t.corr))
		}
		roots = append(roots, it)
		if pred != nil {
			it, node = wrap(engine.NewFilterIter(st, it, pred, envProto),
				"Filter", pred.SQL(), 0, []*Node{node})
			roots[len(roots)-1] = it
			res.Plan = append(res.Plan, fmt.Sprintf("  Filter(%s)", pred.SQL()))
		}
		tables = append(tables, streamTable{it: it, node: node})
	}

	// Left-deep join tree over the same join order and keys the
	// materializing path uses; builds on the right, probes the left.
	cur, curNode := tables[0].it, tables[0].node
	for k, t := range tables[1:] {
		j := sp.joins[k]
		if len(j.lk) > 0 && j.buildLeft {
			// Same role swap as the materializing path: the bounded
			// prefix becomes the (tiny) build side, the new table
			// streams through as probe, so the blocking state stays
			// within any memory budget.
			detail := fmt.Sprintf("%s = %s", strings.Join(j.rk, ","), strings.Join(j.lk, ","))
			jit, err := engine.NewHashJoinIter(st, t.it, cur, j.rk, j.lk)
			if err != nil {
				return fail(err)
			}
			cur, curNode = wrap(jit, "HashJoin", detail, 0, []*Node{t.node, curNode})
			curNode.Notes = append(curNode.Notes, buildPrefixNote)
			res.Plan = append(res.Plan, fmt.Sprintf("HashJoin(%s)", detail))
		} else if len(j.lk) > 0 {
			detail := fmt.Sprintf("%s = %s", strings.Join(j.lk, ","), strings.Join(j.rk, ","))
			jit, err := engine.NewHashJoinIter(st, cur, t.it, j.lk, j.rk)
			if err != nil {
				return fail(err)
			}
			cur, curNode = wrap(jit, "HashJoin", detail, 0, []*Node{curNode, t.node})
			res.Plan = append(res.Plan, fmt.Sprintf("HashJoin(%s)", detail))
		} else {
			cur, curNode = wrap(engine.NewProductIter(st, cur, t.it),
				"Product", "", 0, []*Node{curNode, t.node})
			res.Plan = append(res.Plan, "Product")
		}
		if j.bound != "" {
			curNode.Notes = append(curNode.Notes, j.bound)
		}
		roots[0], roots[k+1] = cur, nil
	}

	if sp.residual != nil {
		env := &eval.Env{Cols: map[string]value.Value{}, Hosts: hosts,
			Scope: sp.scope, Exists: p.naiveExists(ctx, hosts, res),
			In: p.naiveIn(ctx, hosts, res)}
		cur, curNode = wrap(engine.NewFilterIter(st, cur, sp.residual, env),
			"Filter", sp.residual.SQL(), 0, []*Node{curNode})
		roots[0] = cur
		res.Plan = append(res.Plan, fmt.Sprintf("Filter(%s)", sp.residual.SQL()))
	}

	pit, err := engine.NewProjectIter(st, cur, sp.cols)
	if err != nil {
		return fail(err)
	}
	cur, curNode = wrap(pit, "Project", strings.Join(sp.cols, ", "), 0, []*Node{curNode})
	roots[0] = cur
	res.Plan = append(res.Plan, fmt.Sprintf("Project(%s)", strings.Join(sp.cols, ", ")))

	if sp.distinct {
		op := "DistinctSort"
		var dit engine.Iterator
		if p.Opts.HashDistinct {
			op = "DistinctHash"
			dit = engine.NewDistinctHashIter(st, cur)
		} else {
			dit = engine.NewDistinctSortIter(st, cur)
		}
		cur, curNode = wrap(dit, op, "", 0, []*Node{curNode})
		roots[0] = cur
		res.Plan = append(res.Plan, op)
	}

	// Drain closes the pipeline (success or error), so the roots
	// cleanup is no longer needed past this point.
	rel, err := engine.Drain(ctx, st, cur)
	if err != nil {
		return nil, nil, err
	}
	finalizeStream(curNode)
	attachOrderNotes(curNode, sp)
	return rel, curNode, nil
}
