package plan

import (
	"sync"
	"sync/atomic"
)

// PlanCache memoizes normalized physical plans (selectPlan) across Run
// calls and across planners sharing the cache. It lives beside the
// core.VerdictCache and shares its invalidation discipline: entries
// are keyed by a fingerprint of the query-specification rendering, the
// catalog schema version, and the planner option bits that change plan
// shape, so any DDL — CREATE TABLE, ADD KEY/CHECK/FOREIGN KEY, DROP
// KEY, CREATE INDEX — bumps the version and implicitly invalidates
// every cached plan.
//
// Cached plans are safe to share because a selectPlan is host-value-
// and data-independent: every decision in it (join order, pushdown,
// symbolic access paths, projection) depends only on the query shape
// and the schema. Host variables are bound per execution by
// accessPlan.bind, so one immutable entry serves every concurrent
// execution of the same statement shape.
type PlanCache struct {
	mu    sync.RWMutex
	plans map[planKey]planEntry
	max   int

	hits   atomic.Int64
	misses atomic.Int64
}

// planEntry carries the source rendering behind the fingerprint: a
// lookup whose fingerprint matches but whose source differs (a 64-bit
// hash collision) is treated as a miss rather than executing a plan
// built for a different query.
type planEntry struct {
	src string
	sp  *selectPlan
}

type planKey struct {
	fp     uint64 // fingerprint of the query-specification rendering
	catVer uint64 // catalog schema version
	opts   uint64 // planner option bits that affect plan shape
}

// DefaultPlanCacheEntries bounds the cache map. When it fills up it is
// cleared wholesale — simple, and correct under any access pattern.
const DefaultPlanCacheEntries = 4096

// NewPlanCache returns an empty cache holding at most maxEntries plans
// (0 = DefaultPlanCacheEntries).
func NewPlanCache(maxEntries int) *PlanCache {
	if maxEntries <= 0 {
		maxEntries = DefaultPlanCacheEntries
	}
	return &PlanCache{plans: make(map[planKey]planEntry), max: maxEntries}
}

// Counters reports cumulative hit/miss counts.
func (c *PlanCache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.plans)
}

// Reset drops every entry and zeroes the hit/miss counters, returning
// the cache to its cold state.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = make(map[planKey]planEntry)
	c.hits.Store(0)
	c.misses.Store(0)
}

func (c *PlanCache) get(k planKey, src string) (*selectPlan, bool) {
	c.mu.RLock()
	e, ok := c.plans[k]
	c.mu.RUnlock()
	if !ok || e.src != src {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.sp, true
}

func (c *PlanCache) put(k planKey, src string, sp *selectPlan) {
	c.mu.Lock()
	if len(c.plans) >= c.max {
		c.plans = make(map[planKey]planEntry)
	}
	c.plans[k] = planEntry{src: src, sp: sp}
	c.mu.Unlock()
}

// planBits folds the planner options that change the shape of a
// selectPlan into cache-key bits. Options that only affect execution
// (Streaming, HashDistinct, budgets, ExplainOnly) are deliberately
// excluded: the same plan serves them all, which is what keeps the
// serial, parallel, and streaming strategies byte-identical.
func (o Options) planBits() uint64 {
	var b uint64
	if o.WrittenJoinOrder {
		b |= 1
	}
	return b
}
