package plan

import (
	"fmt"
	"sync"
	"testing"

	"uniqopt/internal/engine"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// planRun executes src through a planner sharing pc, failing the test
// on any error.
func planRun(t *testing.T, db *storage.DB, pc *PlanCache, src string, hosts map[string]value.Value) *Result {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPlanner(db, Options{Plans: pc}).Run(q, hosts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const cacheProbeSQL = `SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
	WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`

// The first run of a shape misses and populates; the second hits. Both
// outcomes surface on the per-run Stats and the cache's cumulative
// counters, and the cached run returns the identical plan and rows.
func TestPlanCacheHitMissCounters(t *testing.T) {
	db := smallDB(t)
	pc := NewPlanCache(0)

	r1 := planRun(t, db, pc, cacheProbeSQL, nil)
	if r1.Stats.PlanMisses != 1 || r1.Stats.PlanHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/1", r1.Stats.PlanHits, r1.Stats.PlanMisses)
	}
	if pc.Len() != 1 {
		t.Fatalf("cache holds %d plans, want 1", pc.Len())
	}

	r2 := planRun(t, db, pc, cacheProbeSQL, nil)
	if r2.Stats.PlanHits != 1 || r2.Stats.PlanMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 1/0", r2.Stats.PlanHits, r2.Stats.PlanMisses)
	}
	if fmt.Sprint(r1.Plan) != fmt.Sprint(r2.Plan) {
		t.Fatalf("cached plan differs:\ncold: %v\nwarm: %v", r1.Plan, r2.Plan)
	}
	if !engine.MultisetEqual(r1.Rel, r2.Rel) {
		t.Fatal("cached plan changed the result")
	}
	if hits, misses := pc.Counters(); hits != 1 || misses != 1 {
		t.Fatalf("cumulative counters = %d/%d, want 1/1", hits, misses)
	}
}

// Every DDL kind that can change a planning decision must invalidate
// cached plans: the catalog-version key makes old entries unreachable,
// so the next run re-plans (a miss) instead of serving a plan derived
// under the old schema.
func TestPlanCacheInvalidationPerDDLKind(t *testing.T) {
	kinds := []struct {
		name  string
		setup func(t *testing.T, db *storage.DB)
		ddl   func(t *testing.T, db *storage.DB)
	}{
		{
			name: "AddKey",
			ddl: func(t *testing.T, db *storage.DB) {
				if err := db.MustTable("SUPPLIER").Schema.AddKey(false, "SNAME"); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "DropKey",
			setup: func(t *testing.T, db *storage.DB) {
				if err := db.MustTable("SUPPLIER").Schema.AddKey(false, "SNAME"); err != nil {
					t.Fatal(err)
				}
			},
			ddl: func(t *testing.T, db *storage.DB) {
				s := db.MustTable("SUPPLIER").Schema
				if err := s.DropKey(len(s.Keys) - 1); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "AddCheck",
			ddl: func(t *testing.T, db *storage.DB) {
				check := &ast.Compare{Op: ast.GeOp,
					L: &ast.ColumnRef{Column: "SNO"}, R: &ast.IntLit{V: 0}}
				if err := db.MustTable("SUPPLIER").Schema.AddCheck(check); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "AddForeignKey",
			ddl: func(t *testing.T, db *storage.DB) {
				err := db.Catalog().AddForeignKey(db.MustTable("PARTS").Schema,
					[]string{"SNO"}, "SUPPLIER", []string{"SNO"})
				if err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "CreateIndex",
			ddl: func(t *testing.T, db *storage.DB) {
				if _, err := db.MustTable("SUPPLIER").CreateOrderedIndex("PC_IX", "SCITY"); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "CreateTable",
			ddl: func(t *testing.T, db *storage.DB) {
				st, err := parser.ParseStatement(`CREATE TABLE PC_T (ID INTEGER NOT NULL, PRIMARY KEY (ID))`)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := db.ApplyDDL("", st.(*ast.CreateTable)); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			db := smallDB(t)
			if k.setup != nil {
				k.setup(t, db)
			}
			pc := NewPlanCache(0)
			planRun(t, db, pc, cacheProbeSQL, nil)
			warm := planRun(t, db, pc, cacheProbeSQL, nil)
			if warm.Stats.PlanHits != 1 {
				t.Fatalf("warm-up never hit: %s", warm.Stats.String())
			}
			v0 := db.Catalog().Version()
			k.ddl(t, db)
			if db.Catalog().Version() == v0 {
				t.Fatalf("%s did not bump the catalog version", k.name)
			}
			after := planRun(t, db, pc, cacheProbeSQL, nil)
			if after.Stats.PlanMisses != 1 || after.Stats.PlanHits != 0 {
				t.Fatalf("run after %s: hits=%d misses=%d, want a re-plan (0/1)",
					k.name, after.Stats.PlanHits, after.Stats.PlanMisses)
			}
		})
	}
}

// A fingerprint collision (same 64-bit hash, different source) must be
// treated as a miss, never execute a plan built for a different query.
func TestPlanCacheSourceCollisionIsMiss(t *testing.T) {
	pc := NewPlanCache(0)
	k := planKey{fp: 42, catVer: 1}
	pc.put(k, "SELECT A.X FROM A", &selectPlan{})
	if sp, ok := pc.get(k, "SELECT B.Y FROM B"); ok || sp != nil {
		t.Fatal("colliding fingerprint with different source must miss")
	}
	if hits, misses := pc.Counters(); hits != 0 || misses != 1 {
		t.Fatalf("counters = %d/%d, want 0/1", hits, misses)
	}
}

// When the cache fills it is cleared wholesale, so it keeps admitting
// new shapes instead of pinning the first max entries forever.
func TestPlanCacheCapacityClearsWholesale(t *testing.T) {
	pc := NewPlanCache(2)
	pc.put(planKey{fp: 1}, "q1", &selectPlan{})
	pc.put(planKey{fp: 2}, "q2", &selectPlan{})
	if pc.Len() != 2 {
		t.Fatalf("len = %d, want 2", pc.Len())
	}
	pc.put(planKey{fp: 3}, "q3", &selectPlan{})
	if pc.Len() != 1 {
		t.Fatalf("len after overflow = %d, want 1 (wholesale clear then insert)", pc.Len())
	}
	if sp, ok := pc.get(planKey{fp: 3}, "q3"); !ok || sp == nil {
		t.Fatal("newest entry must survive the clear")
	}
}

// Reset returns the cache to cold: no entries, zero counters.
func TestPlanCacheReset(t *testing.T) {
	pc := NewPlanCache(0)
	pc.put(planKey{fp: 7}, "q", &selectPlan{})
	pc.get(planKey{fp: 7}, "q")
	pc.Reset()
	if pc.Len() != 0 {
		t.Fatalf("len after reset = %d", pc.Len())
	}
	if hits, misses := pc.Counters(); hits != 0 || misses != 0 {
		t.Fatalf("counters after reset = %d/%d", hits, misses)
	}
}

// Planner-option bits that change plan shape partition the cache:
// written-order and ordered plans of the same SQL never collide.
func TestPlanCacheOptionBitsPartition(t *testing.T) {
	db := smallDB(t)
	pc := NewPlanCache(0)
	q, err := parser.ParseQuery(cacheProbeSQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanner(db, Options{Plans: pc}).Run(q, nil); err != nil {
		t.Fatal(err)
	}
	res, err := NewPlanner(db, Options{Plans: pc, WrittenJoinOrder: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanHits != 0 || res.Stats.PlanMisses != 1 {
		t.Fatalf("written-order run must not reuse the ordered plan: %s", res.Stats.String())
	}
	if pc.Len() != 2 {
		t.Fatalf("len = %d, want 2 distinct entries", pc.Len())
	}
}

// Concurrent planners sharing one cache on one database: every run
// must return the correct rows, and -race must stay silent (the CI
// planner-smoke target runs this suite with the race detector).
func TestPlanCacheConcurrentSharing(t *testing.T) {
	db := smallDB(t)
	pc := NewPlanCache(0)
	q, err := parser.ParseQuery(cacheProbeSQL)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewPlanner(db, Options{}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := NewPlanner(db, Options{Plans: pc}).Run(q, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !engine.MultisetEqual(ref.Rel, res.Rel) {
					t.Error("shared cached plan changed the result")
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := pc.Counters()
	if hits+misses != workers*20 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, workers*20)
	}
	if hits == 0 {
		t.Fatal("concurrent sharing never hit the cache")
	}
}
