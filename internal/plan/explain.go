package plan

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"time"

	"uniqopt/internal/engine"
)

// Node is one operator of a typed physical plan tree — the structured
// counterpart of the legacy Result.Plan string list. EXPLAIN renders
// the bare tree; EXPLAIN ANALYZE additionally carries per-operator
// wall time, rows in/out, and parallel-path usage recorded during a
// real execution.
type Node struct {
	// Op is the operator name (Scan, IndexScan, Filter, HashJoin,
	// Product, Project, DistinctSort, DistinctHash,
	// IntersectSortMerge, ExceptSortMerge).
	Op string `json:"op"`
	// Detail is the operator's argument rendering, e.g. the scanned
	// table or the join predicate.
	Detail string `json:"detail,omitempty"`
	// Children are the operator's inputs (left input first).
	Children []*Node `json:"children,omitempty"`
	// Notes carry plan-level annotations attached to the root (e.g.
	// the cost-based rewrite decision).
	Notes []string `json:"notes,omitempty"`

	// Analyzed reports that the metrics below were recorded from a
	// real execution (false for plan-only EXPLAIN).
	Analyzed bool `json:"analyzed"`
	// RowsIn / RowsOut are the operator's input and output
	// cardinalities.
	RowsIn  int64 `json:"rows_in"`
	RowsOut int64 `json:"rows_out"`
	// TimeNanos is the operator's wall time, including the time of any
	// subquery probes it evaluated (but not its children's time).
	TimeNanos int64 `json:"time_ns"`
	// Parallel marks an operator that took the partitioned parallel
	// path; Workers is the effective dispatch width.
	Parallel bool  `json:"parallel,omitempty"`
	Workers  int64 `json:"workers,omitempty"`
	// Batches counts the batches the operator emitted under streaming
	// execution (0 under materializing execution, where operators hand
	// over their whole output at once).
	Batches int64 `json:"batches,omitempty"`
}

// Format renders the tree as indented text, one operator per line,
// children two spaces deeper. With analyze=true the per-operator
// metrics are appended in a bracketed suffix.
func (n *Node) Format(analyze bool) string {
	var sb strings.Builder
	n.format(&sb, 0, analyze)
	return sb.String()
}

func (n *Node) format(sb *strings.Builder, depth int, analyze bool) {
	if n == nil {
		return
	}
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Op)
	if n.Detail != "" {
		fmt.Fprintf(sb, "(%s)", n.Detail)
	}
	if analyze && n.Analyzed {
		fmt.Fprintf(sb, " [in=%d out=%d time=%s", n.RowsIn, n.RowsOut, fmtDuration(n.TimeNanos))
		if n.Parallel {
			fmt.Fprintf(sb, " par=%d", n.Workers)
		}
		if n.Batches > 0 {
			fmt.Fprintf(sb, " batches=%d", n.Batches)
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('\n')
	for _, note := range n.Notes {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString("-- ")
		sb.WriteString(note)
		sb.WriteByte('\n')
	}
	for _, c := range n.Children {
		c.format(sb, depth+1, analyze)
	}
}

// MarshalJSONTree renders the tree as indented JSON.
func (n *Node) MarshalJSONTree() ([]byte, error) {
	return json.MarshalIndent(n, "", "  ")
}

// fmtDuration renders nanoseconds compactly and stably (fixed unit
// choice per magnitude, one decimal).
func fmtDuration(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

// volatileRe matches the fields of an ANALYZE rendering that vary
// between otherwise-identical executions: wall times, the parallel
// dispatch width (which depends on the machine's pool size), and batch
// counts (which depend on the configured batch size and on whether the
// run streamed at all).
var volatileRe = regexp.MustCompile(`( time=[0-9.]+(?:ns|µs|ms|s))|( par=[0-9]+)|( batches=[0-9]+)`)

// ScrubVolatile canonicalizes an ANALYZE rendering for comparison and
// golden files: wall times become time=? and parallel-width / batch
// markers are dropped. Serial, parallel, and streaming executions of
// the same query must render byte-identically after scrubbing.
func ScrubVolatile(s string) string {
	return volatileRe.ReplaceAllStringFunc(s, func(m string) string {
		if strings.Contains(m, "time=") {
			return " time=?"
		}
		return ""
	})
}

// AllNodes returns the tree's nodes in pre-order (root first).
func (n *Node) AllNodes() []*Node {
	if n == nil {
		return nil
	}
	out := []*Node{n}
	for _, c := range n.Children {
		out = append(out, c.AllNodes()...)
	}
	return out
}

// timedOp runs one operator body, recording its wall time, row counts,
// and parallel-path usage (as deltas of the result's Stats) into a new
// Node with the given children. analyzed=false (plan-only mode) skips
// the recording but still shapes the tree.
func timedOp(res *Result, analyzed bool, op, detail string, rowsIn int64, children []*Node, body func() (*engine.Relation, error)) (*engine.Relation, *Node, error) {
	n := &Node{Op: op, Detail: detail, Children: children}
	if !analyzed {
		rel, err := body()
		return rel, n, err
	}
	before := res.Stats.Snapshot()
	t0 := time.Now()
	rel, err := body()
	n.TimeNanos = time.Since(t0).Nanoseconds()
	n.Analyzed = true
	n.RowsIn = rowsIn
	if rel != nil {
		n.RowsOut = int64(rel.Len())
	}
	after := res.Stats.Snapshot()
	if after.ParallelRuns > before.ParallelRuns {
		n.Parallel = true
		n.Workers = after.WorkersUsed
	}
	return rel, n, err
}
