package plan

import (
	"strings"
	"testing"

	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func indexedDB(t testing.TB) *storage.DB {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 60
	cfg.PartsPerSupplier = 5
	db, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.CreateIndexes(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// runIndexed executes src with and without indexes and asserts
// identical results; returns the indexed run.
func runIndexed(t *testing.T, src string, hosts map[string]value.Value) *Result {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	plainDB := smallishDB(t)
	ixDB := indexedDB(t)
	plain, err := NewPlanner(plainDB, Options{}).Run(q, hosts)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewPlanner(ixDB, Options{}).Run(q, hosts)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(plain.Rel, ix.Rel) {
		t.Fatalf("index path changed the result for %q:\n%d vs %d rows",
			src, plain.Rel.Len(), ix.Rel.Len())
	}
	return ix
}

// smallishDB matches indexedDB's data, without indexes.
func smallishDB(t testing.TB) *storage.DB {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 60
	cfg.PartsPerSupplier = 5
	db, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func hasPlanLine(res *Result, substr string) bool {
	for _, line := range res.Plan {
		if strings.Contains(line, substr) {
			return true
		}
	}
	return false
}

func TestIndexPointLookup(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 7", nil)
	if !hasPlanLine(res, "IndexScan(S via SUPPLIER_SNO = 7)") {
		t.Errorf("plan missing index scan:\n%s", strings.Join(res.Plan, "\n"))
	}
	if res.Stats.IndexSeeks != 1 {
		t.Errorf("seeks = %d", res.Stats.IndexSeeks)
	}
	if res.Stats.RowsScanned != 1 {
		t.Errorf("scanned = %d, want 1 (point lookup)", res.Stats.RowsScanned)
	}
}

func TestIndexHostVarLookup(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = :N",
		map[string]value.Value{"N": value.Int(5)})
	if res.Stats.IndexSeeks != 1 {
		t.Errorf("host-var point lookup should use the index: %s", res.Stats.String())
	}
}

func TestIndexBetweenRange(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO BETWEEN 10 AND 20", nil)
	if !hasPlanLine(res, "IndexScan(S via SUPPLIER_SNO BETWEEN 10 AND 20)") {
		t.Errorf("plan:\n%s", strings.Join(res.Plan, "\n"))
	}
	if res.Stats.RowsScanned != 11 {
		t.Errorf("scanned = %d, want 11", res.Stats.RowsScanned)
	}
	if res.Rel.Len() != 11 {
		t.Errorf("rows = %d", res.Rel.Len())
	}
}

func TestIndexHalfOpenRanges(t *testing.T) {
	// >= consumes the conjunct; > keeps it as a residual filter.
	res := runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO >= 58", nil)
	if res.Rel.Len() != 3 || res.Stats.RowsScanned != 3 {
		t.Errorf(">=: rows=%d scanned=%d", res.Rel.Len(), res.Stats.RowsScanned)
	}
	res = runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO > 58", nil)
	if res.Rel.Len() != 2 {
		t.Errorf(">: rows=%d, want 2", res.Rel.Len())
	}
	if !hasPlanLine(res, "residual >") {
		t.Errorf("plan should note the residual boundary filter:\n%s",
			strings.Join(res.Plan, "\n"))
	}
	res = runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO <= 3", nil)
	if res.Rel.Len() != 3 {
		t.Errorf("<=: rows=%d", res.Rel.Len())
	}
	res = runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE 3 > S.SNO", nil)
	if res.Rel.Len() != 2 {
		t.Errorf("flipped <: rows=%d", res.Rel.Len())
	}
}

// Regression: two half-open bounds on the same leading index column
// used to become one half-open IndexScanRange plus a residual filter,
// scanning every row past the lower bound. They must combine into a
// single closed range scan that touches only the qualifying rows.
func TestIndexClosedRangeCombinesBounds(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO >= 10 AND S.SNO <= 20", nil)
	if !hasPlanLine(res, "IndexScan(S via SUPPLIER_SNO BETWEEN 10 AND 20)") {
		t.Errorf("bounds not combined into one closed scan:\n%s", strings.Join(res.Plan, "\n"))
	}
	if res.Stats.RowsScanned != 11 {
		t.Errorf("scanned = %d, want 11 (closed range must not over-scan)", res.Stats.RowsScanned)
	}
	if res.Rel.Len() != 11 {
		t.Errorf("rows = %d, want 11", res.Rel.Len())
	}

	// Strict bounds still combine into one scan; each strict side keeps
	// its boundary check as a residual filter.
	res = runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO > 10 AND S.SNO < 20", nil)
	if !hasPlanLine(res, "BETWEEN 10 AND 20") {
		t.Errorf("strict bounds not combined:\n%s", strings.Join(res.Plan, "\n"))
	}
	if !hasPlanLine(res, "residual >") || !hasPlanLine(res, "residual <") {
		t.Errorf("strict boundaries need residual filters:\n%s", strings.Join(res.Plan, "\n"))
	}
	if res.Stats.RowsScanned != 11 {
		t.Errorf("scanned = %d, want 11", res.Stats.RowsScanned)
	}
	if res.Rel.Len() != 9 {
		t.Errorf("rows = %d, want 9", res.Rel.Len())
	}

	// The streaming executor runs the identical access plan: same rows
	// scanned, batches visible in the analyzed counters.
	q, err := parser.ParseQuery("SELECT S.SNO FROM SUPPLIER S WHERE S.SNO >= 10 AND S.SNO <= 20")
	if err != nil {
		t.Fatal(err)
	}
	sres, err := NewPlanner(indexedDB(t), Options{Streaming: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Stats.RowsScanned != 11 {
		t.Errorf("streaming scanned = %d, want 11", sres.Stats.RowsScanned)
	}
	if sres.Stats.Batches == 0 {
		t.Error("streaming run should report batches")
	}
	if sres.Rel.Len() != 11 {
		t.Errorf("streaming rows = %d, want 11", sres.Rel.Len())
	}
}

func TestIndexStringEquality(t *testing.T) {
	res := runIndexed(t, "SELECT P.PNO FROM PARTS P WHERE P.COLOR = 'RED'", nil)
	if !hasPlanLine(res, "IndexScan(P via PARTS_COLOR = 'RED')") {
		t.Errorf("plan:\n%s", strings.Join(res.Plan, "\n"))
	}
	// Every scanned row is RED.
	if int64(res.Rel.Len()) != res.Stats.RowsScanned {
		t.Errorf("index scan should touch only matching rows: %d vs %d",
			res.Rel.Len(), res.Stats.RowsScanned)
	}
}

func TestIndexCombinedWithJoin(t *testing.T) {
	res := runIndexed(t, `SELECT S.SNAME, P.PNO FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED' AND S.SCITY = 'Toronto'`, nil)
	if res.Stats.IndexSeeks != 2 {
		t.Errorf("both pushdowns should use indexes: %s\nplan:\n%s",
			res.Stats.String(), strings.Join(res.Plan, "\n"))
	}
	if !hasPlanLine(res, "HashJoin") {
		t.Errorf("join should remain hash-based:\n%s", strings.Join(res.Plan, "\n"))
	}
}

func TestNoIndexFallsBackToScan(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.BUDGET = 10", nil)
	if res.Stats.IndexSeeks != 0 {
		t.Error("no index on BUDGET: must scan")
	}
	if !hasPlanLine(res, "Scan(SUPPLIER as S)") {
		t.Errorf("plan:\n%s", strings.Join(res.Plan, "\n"))
	}
}

func TestIndexNullBoundIsEmpty(t *testing.T) {
	res := runIndexed(t, "SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :N",
		map[string]value.Value{"N": value.Null})
	if res.Rel.Len() != 0 {
		t.Errorf("NULL-bound equality must be empty, got %d rows", res.Rel.Len())
	}
	if !hasPlanLine(res, "never-true NULL bound") {
		t.Errorf("plan:\n%s", strings.Join(res.Plan, "\n"))
	}
}
