// Package plan turns analyzed queries into physical execution
// strategies over the engine package, and is the harness on which the
// paper's relational experiments run.
//
// Two planner configurations matter for the experiments:
//
//   - the baseline planner executes the query as written: DISTINCT is
//     honored with a full result sort, EXISTS subqueries run as
//     nested-loop probes, and set operations materialize both operands;
//   - the uniqueness-aware planner first applies the core package's
//     rewrites (Theorem 1 DISTINCT elimination, Theorem 2 / Corollary 1
//     subquery merging, Theorem 3 / Corollary 2 set-operation
//     conversion) to fixpoint and then plans the rewritten query.
//
// Both configurations share the same physical operators (hash joins
// for equality predicates, predicate pushdown), so measured deltas are
// attributable to the semantic rewrites rather than to different
// execution machinery.
package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"uniqopt/internal/catalog"
	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/eval"
	"uniqopt/internal/norm"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// Options configure a planner.
type Options struct {
	// ApplyRewrites enables the uniqueness-aware rewrite pass.
	ApplyRewrites bool
	// CostBased, with ApplyRewrites, estimates the cost of the original
	// and the fully rewritten query and executes the cheaper one — the
	// paper's "choose the most appropriate strategy on the basis of
	// its cost model" (Section 5). Without it the rewritten form is
	// always executed.
	CostBased bool
	// HashDistinct performs duplicate elimination with a hash table
	// instead of a sort (ablation #3 in DESIGN.md).
	HashDistinct bool
	// Analyzer options forwarded to the core analyzer.
	Core core.Options
	// MaxRewritePasses bounds the rewrite fixpoint loop (0 = 8).
	MaxRewritePasses int
	// Cache, when non-nil, memoizes analyzer verdicts and predicate
	// normalizations across Run calls (and across planners sharing the
	// cache). Hit/miss deltas are reported in Result.Stats.
	Cache *core.VerdictCache
	// Plans, when non-nil, memoizes physical plans (join order,
	// pushdown, symbolic access paths) across Run calls, keyed by query
	// shape and catalog version so any DDL invalidates them. Hit/miss
	// deltas are reported in Result.Stats.
	Plans *PlanCache
	// WrittenJoinOrder disables the greedy uniqueness-bounded join
	// ordering and the derived-equality pushdown, executing joins
	// exactly in FROM-list order (the pre-planner behavior; the
	// benchmark baseline).
	WrittenJoinOrder bool
	// MaxRows bounds the rows any single query may materialize across
	// its operators (0 = unlimited); exceeding it fails the query with
	// an error matching engine.ErrBudgetExceeded.
	MaxRows int64
	// MemBudget bounds the estimated bytes a query may materialize
	// (hash tables, sort buffers, outputs; 0 = unlimited).
	MemBudget int64
	// ExplainOnly plans the query without touching base-table data:
	// every table access yields an empty relation of the right shape,
	// so the plan tree (Result.Root) has exactly the structure a real
	// execution would, at near-zero cost. Result.Rel is an empty
	// relation and per-operator metrics stay unpopulated.
	ExplainOnly bool
	// Streaming executes query specifications as pull-based batched
	// iterator pipelines instead of materializing every operator's
	// output: only blocking state (hash tables, sort buffers) is ever
	// resident, so MemBudget bounds the pipeline's live footprint
	// rather than the sum of intermediate results. Results, plan trees,
	// and row order are identical to materializing execution.
	// ExplainOnly takes precedence (nothing executes either way).
	Streaming bool
}

// Result is the outcome of planning and executing one query.
type Result struct {
	Rel      *engine.Relation
	Stats    engine.Stats
	Rewrites []core.Applied
	Plan     []string // textual plan, one operator per line (legacy rendering)
	// Root is the typed plan tree. Per-operator metrics (rows, wall
	// time, parallel-path usage) are recorded unless ExplainOnly.
	Root *Node

	// costNote carries the cost-based rewrite decision until the root
	// node exists to attach it to.
	costNote string
}

// Planner plans and executes queries against a stored database.
type Planner struct {
	DB   *storage.DB
	An   *core.Analyzer
	Opts Options
}

// NewPlanner builds a planner over db.
func NewPlanner(db *storage.DB, opts Options) *Planner {
	return &Planner{
		DB:   db,
		An:   &core.Analyzer{Cat: db.Catalog(), Opts: opts.Core, Cache: opts.Cache},
		Opts: opts,
	}
}

// Run plans and executes q with the given host-variable bindings.
func (p *Planner) Run(q ast.Query, hosts map[string]value.Value) (*Result, error) {
	return p.RunContext(context.Background(), q, hosts)
}

// RunContext plans and executes q under ctx. Cancellation and
// deadlines are honored cooperatively inside every engine operator;
// Options.MaxRows / Options.MemBudget (or a governor already attached
// to ctx) bound the query's materializations; and any panic below this
// boundary is contained into an *engine.InternalError. On error the
// result is nil — partial rows are never exposed.
func (p *Planner) RunContext(ctx context.Context, q ast.Query, hosts map[string]value.Value) (res *Result, err error) {
	defer func() {
		if err != nil {
			res = nil
		}
	}()
	defer engine.Contain("plan.Run", &err)
	if hosts == nil {
		hosts = map[string]value.Value{}
	}
	if engine.GovernorFrom(ctx) == nil {
		if g := engine.NewGovernor(p.Opts.MaxRows, p.Opts.MemBudget); g != nil {
			ctx = engine.WithGovernor(ctx, g)
		}
	}
	// result is captured by the deferred cache accounting below; the
	// named res is nil on error paths by the time defers run.
	result := &Result{}
	res = result
	if c := p.An.Cache; c != nil {
		h0, m0 := c.Counters()
		defer func() {
			h1, m1 := c.Counters()
			result.Stats.AddCache(h1-h0, m1-m0)
		}()
	}
	if c := p.Opts.Plans; c != nil {
		h0, m0 := c.Counters()
		defer func() {
			h1, m1 := c.Counters()
			result.Stats.AddPlanCache(h1-h0, m1-m0)
		}()
	}
	if p.Opts.ApplyRewrites {
		original := q
		rewritten, err := p.rewriteFixpoint(q, res)
		if err != nil {
			return nil, err
		}
		q = rewritten
		if p.Opts.CostBased && len(res.Rewrites) > 0 {
			origCost, err := EstimateCost(p.DB, original)
			if err != nil {
				return nil, err
			}
			newCost, err := EstimateCost(p.DB, rewritten)
			if err != nil {
				return nil, err
			}
			if origCost < newCost {
				// The cost model prefers the query as written: discard
				// the rewrites and execute the original.
				res.costNote = fmt.Sprintf(
					"CostChoice(original %.0f < rewritten %.0f: rewrites discarded)",
					origCost, newCost)
				res.Rewrites = nil
				q = original
			} else {
				res.costNote = fmt.Sprintf(
					"CostChoice(rewritten %.0f <= original %.0f)", newCost, origCost)
			}
			res.Plan = append(res.Plan, res.costNote)
		}
	}
	switch x := q.(type) {
	case *ast.Select:
		rel, root, err := p.execSelect(ctx, x, hosts, res)
		if err != nil {
			return nil, err
		}
		res.Rel = rel
		res.Root = root
	case *ast.SetOp:
		l, ln, err := p.execSelect(ctx, x.Left, hosts, res)
		if err != nil {
			return nil, err
		}
		r, rn, err := p.execSelect(ctx, x.Right, hosts, res)
		if err != nil {
			return nil, err
		}
		if len(l.Cols) != len(r.Cols) {
			return nil, fmt.Errorf("plan: set operands are not union-compatible")
		}
		// Set operations execute the way the paper says typical
		// optimizers do (§5.3): sort each operand and merge. The
		// Theorem 3 / Corollary 2 rewrites exist to avoid these sorts.
		op := "IntersectSortMerge"
		if x.Op != ast.Intersect {
			op = "ExceptSortMerge"
		}
		rel, node, err := timedOp(res, !p.Opts.ExplainOnly, op,
			fmt.Sprintf("all=%v", x.All), int64(l.Len()+r.Len()), []*Node{ln, rn},
			func() (*engine.Relation, error) {
				if x.Op == ast.Intersect {
					return engine.IntersectSort(ctx, &res.Stats, l, r, x.All)
				}
				return engine.ExceptSort(ctx, &res.Stats, l, r, x.All)
			})
		res.Plan = append(res.Plan, fmt.Sprintf("%s(all=%v)", op, x.All))
		if err != nil {
			return nil, err
		}
		res.Rel = rel
		res.Root = node
	default:
		return nil, fmt.Errorf("plan: unknown query node %T", q)
	}
	if res.costNote != "" && res.Root != nil {
		res.Root.Notes = append(res.Root.Notes, res.costNote)
	}
	res.Stats.RowsOutput = int64(res.Rel.Len())
	return res, nil
}

// rewriteFixpoint applies the core rewrites until none fires or the
// pass bound is reached. DISTINCT elimination is attempted after every
// structural rewrite because merges can expose new key bindings.
func (p *Planner) rewriteFixpoint(q ast.Query, res *Result) (ast.Query, error) {
	maxPasses := p.Opts.MaxRewritePasses
	if maxPasses <= 0 {
		maxPasses = 8
	}
	for pass := 0; pass < maxPasses; pass++ {
		switch x := q.(type) {
		case *ast.SetOp:
			ap, err := p.An.SetOpToExists(x)
			if err != nil {
				return nil, err
			}
			if ap == nil {
				return q, nil
			}
			res.Rewrites = append(res.Rewrites, *ap)
			q = ap.Query
		case *ast.Select:
			ap, err := p.An.InToExists(x)
			if err != nil {
				return nil, err
			}
			if ap == nil {
				ap, err = p.An.SubqueryToJoin(x)
				if err != nil {
					return nil, err
				}
			}
			if ap == nil {
				ap, err = p.An.EliminateJoin(x)
				if err != nil {
					return nil, err
				}
			}
			if ap == nil {
				ap, err = p.An.EliminateDistinct(x)
				if err != nil {
					return nil, err
				}
			}
			if ap == nil {
				return q, nil
			}
			res.Rewrites = append(res.Rewrites, *ap)
			q = ap.Query
		default:
			return q, nil
		}
	}
	return q, nil
}

// selectPlan is the pure planning outcome for one query specification:
// every decision — per-table pushdown, access paths, the left-deep
// join order with its keys, the residual predicate, projection, and
// duplicate elimination — made before any table data is touched. Both
// the materializing and the streaming executors consume the same
// selectPlan, which is what guarantees they run the same physical
// plan (and, with order-deterministic operators, produce
// byte-identical results).
type selectPlan struct {
	scope    *catalog.Scope
	tables   []accessStep
	joins    []joinStep // joins[k] combines tables[k+1] into the tree
	residual ast.Expr   // nil = none
	cols     []string
	distinct bool
	// Join-order provenance, rendered by EXPLAIN on the root node and
	// as a legacy plan line ("" when ordering did not apply).
	orderLine string // JoinOrder(...) legacy plan line
	orderNote string // chosen order vs written order
	startNote string // why the first table starts the join
}

/// accessStep is one base-table access: the symbolic access path (nil =
// full scan) plus the pushed single-table conjuncts — push carries all
// of them (the fallback filter when the path fails to bind at
// execution), pushResidual the ones the path does not subsume.
type accessStep struct {
	corr         string
	tbl          *storage.Table
	ap           *accessPlan
	push         ast.Expr
	pushResidual ast.Expr
}

// joinStep holds the equi-join keys binding the next table into the
// left-deep tree (empty = Cartesian product) and the cardinality-bound
// note that justified its position in the join order ("" = none).
/// buildLeft flips the hash join's roles: the accumulated prefix —
// known to be bounded to at most one row by a constant-bound key —
// becomes the build side, and the incoming table streams through as
// the probe, so a large unfiltered table is never materialized into a
// hash table just because it joins a tiny prefix.
type joinStep struct {
	lk, rk    []string
	bound     string
	buildLeft bool
}

// buildPrefixNote is attached to a hash-join node whose roles were
// flipped because the accumulated prefix is bounded to at most one row.
const buildPrefixNote = "builds the bounded join prefix (≤1 row) as the hash side"

// planSelect makes every planning decision for one query
// specification without executing anything and without reading any
// host-variable binding — the selectPlan depends only on the query
// shape and the schema, which is what makes it cacheable.
func (p *Planner) planSelect(s *ast.Select) (*selectPlan, error) {
	scope, err := catalog.NewScope(p.DB.Catalog(), s.From, nil)
	if err != nil {
		return nil, err
	}
	// Qualify and split the predicate.
	var conjuncts []ast.Expr
	for _, c := range ast.Conjuncts(s.Where) {
		q, err := p.An.QualifyExpr(c, scope)
		if err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, q)
	}
	sp := &selectPlan{scope: scope, distinct: s.Quant.IsDistinct()}
	terms := make([]*tableTerm, 0, len(s.From))
	for _, tr := range s.From {
		corr := strings.ToUpper(tr.Name())
		tbl, ok := p.DB.Table(tr.Table)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %s", tr.Table)
		}
		terms = append(terms, &tableTerm{corr: corr, tbl: tbl})
	}
	used := make([]bool, len(conjuncts))
	for i, c := range conjuncts {
		if ast.HasExists(c) {
			continue
		}
		qs := qualifiersOf(c)
		if len(qs) != 1 {
			continue
		}
		for _, t := range terms {
			if qs[t.corr] {
				t.push = append(t.push, c)
				used[i] = true
				break
			}
		}
	}
	// Sink key-derived constant equalities below the joins, then pick
	// the join order from the resulting per-table bounds.
	if !p.Opts.WrittenJoinOrder {
		deriveConstEqualities(conjuncts, terms)
	}
	order, startNote, startTiny := p.chooseJoinOrder(terms, conjuncts, used)
	sp.startNote = startNote
	if len(order) > 1 && !p.Opts.WrittenJoinOrder {
		chosen := make([]string, len(order))
		written := make([]string, len(terms))
		for i, st := range order {
			chosen[i] = terms[st.idx].corr
			written[i] = terms[i].corr
		}
		sp.orderLine = fmt.Sprintf("JoinOrder(%s)", strings.Join(chosen, ", "))
		if strings.Join(chosen, ",") == strings.Join(written, ",") {
			sp.orderNote = fmt.Sprintf("join order: %s (as written)", strings.Join(chosen, ", "))
		} else {
			sp.orderNote = fmt.Sprintf("join order: %s (written: %s)",
				strings.Join(chosen, ", "), strings.Join(written, ", "))
		}
	}
	for _, st := range order {
		t := terms[st.idx]
		all := append(append([]ast.Expr{}, t.push...), t.derived...)
		// Prefer an ordered-index access path for a pushed point or
		// range predicate on an indexed leading column.
		ap := p.chooseAccessPath(t.tbl, t.corr, all)
		residual := all
		if ap != nil && len(ap.consumed) > 0 {
			residual = nil
			ci := 0
			for i, c := range all {
				if ci < len(ap.consumed) && ap.consumed[ci] == i {
					ci++
					continue
				}
				residual = append(residual, c)
			}
		}
		step := accessStep{corr: t.corr, tbl: t.tbl, ap: ap}
		if len(all) > 0 {
			step.push = ast.AndAll(all...)
		}
		if len(residual) > 0 {
			step.pushResidual = ast.AndAll(residual...)
		}
		sp.tables = append(sp.tables, step)
	}

	// Left-deep join tree: bind each further table with whatever
	// equality conjuncts connect it to the tables already joined.
	// prefixTiny tracks whether the accumulated prefix is still bounded
	// to at most one row (a key-bound start followed by unique probes);
	// while it is, each hash join builds the prefix, not the new table.
	bound := map[string]bool{sp.tables[0].corr: true}
	prefixTiny := startTiny
	for k, t := range sp.tables[1:] {
		var lk, rk []string
		for i, c := range conjuncts {
			if used[i] {
				continue
			}
			cmp, ok := c.(*ast.Compare)
			if !ok || cmp.Op != ast.EqOp {
				continue
			}
			lref, lok := cmp.L.(*ast.ColumnRef)
			rref, rok := cmp.R.(*ast.ColumnRef)
			if !lok || !rok {
				continue
			}
			switch {
			case bound[lref.Qualifier] && rref.Qualifier == t.corr:
				lk = append(lk, lref.Qualifier+"."+lref.Column)
				rk = append(rk, rref.Qualifier+"."+rref.Column)
				used[i] = true
			case bound[rref.Qualifier] && lref.Qualifier == t.corr:
				lk = append(lk, rref.Qualifier+"."+rref.Column)
				rk = append(rk, lref.Qualifier+"."+lref.Column)
				used[i] = true
			}
		}
		sp.joins = append(sp.joins, joinStep{lk: lk, rk: rk, bound: order[k+1].bound,
			buildLeft: prefixTiny && len(lk) > 0})
		prefixTiny = prefixTiny && order[k+1].unique
		bound[t.corr] = true
	}

	// Residual predicates (cross-table non-equalities, EXISTS, ...).
	var residual []ast.Expr
	for i, c := range conjuncts {
		if !used[i] {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		sp.residual = ast.AndAll(residual...)
	}

	refs, err := scope.ExpandItems(s.Items)
	if err != nil {
		return nil, err
	}
	sp.cols = make([]string, len(refs))
	for i, r := range refs {
		sp.cols[i] = r.Qualifier + "." + r.Column
	}
	return sp, nil
}

// planSelectCached consults the plan cache around planSelect. The key
// is computed once, before planning: the catalog version it captures
// keys both the lookup and the store, so a DDL committing mid-planning
// can never file a plan derived under the older catalog beneath the
// newer version — the racing store lands under the old version and is
// simply never served again.
func (p *Planner) planSelectCached(s *ast.Select) (*selectPlan, error) {
	c := p.Opts.Plans
	if c == nil {
		return p.planSelect(s)
	}
	src := s.SQL()
	key := planKey{
		fp:     norm.FingerprintStrings(src),
		catVer: p.DB.Catalog().Version(),
		opts:   p.Opts.planBits(),
	}
	if sp, ok := c.get(key, src); ok {
		return sp, nil
	}
	sp, err := p.planSelect(s)
	if err != nil {
		return nil, err
	}
	c.put(key, src, sp)
	return sp, nil
}

// execSelect plans one query specification (planSelect) and executes
// it — with the materializing operators below, or as a streaming
// iterator pipeline (stream.go) when Options.Streaming is set. It
// returns the result relation together with the typed plan subtree it
// executed (the legacy Result.Plan lines are appended as before).
func (p *Planner) execSelect(ctx context.Context, s *ast.Select, hosts map[string]value.Value, res *Result) (*engine.Relation, *Node, error) {
	sp, err := p.planSelectCached(s)
	if err != nil {
		return nil, nil, err
	}
	if sp.orderLine != "" {
		res.Plan = append(res.Plan, sp.orderLine)
	}
	if p.Opts.Streaming && !p.Opts.ExplainOnly {
		return p.execSelectStream(ctx, sp, hosts, res)
	}
	analyzed := !p.Opts.ExplainOnly

	type pendingTable struct {
		rel  *engine.Relation
		node *Node
	}
	// Scan each table and apply its pushed-down filter.
	envProto := &eval.Env{
		Cols:   map[string]value.Value{},
		Hosts:  hosts,
		Exists: p.naiveExists(ctx, hosts, res),
		In:     p.naiveIn(ctx, hosts, res),
	}
	var tables []pendingTable
	for _, t := range sp.tables {
		tbl, corr := t.tbl, t.corr
		var rel *engine.Relation
		var node *Node
		// Bind the symbolic access path against this execution's host
		// variables; a nil decision falls back to scan + full filter.
		dec := t.ap.bind(tbl, corr, hosts)
		pred := t.pushResidual
		if dec == nil {
			pred = t.push
		}
		if dec != nil {
			rel, node, err = timedOp(res, analyzed, dec.op, dec.detail, int64(tbl.Len()), nil,
				func() (*engine.Relation, error) {
					if p.Opts.ExplainOnly {
						return engine.NewRelation(qualifiedCols(tbl, corr)...), nil
					}
					return dec.exec(ctx, &res.Stats)
				})
			if err != nil {
				return nil, nil, err
			}
			res.Plan = append(res.Plan, fmt.Sprintf("%s(%s)", dec.op, dec.detail))
		} else {
			rel, node, err = timedOp(res, analyzed, "Scan",
				fmt.Sprintf("%s as %s", tbl.Schema.Name, corr), int64(tbl.Len()), nil,
				func() (*engine.Relation, error) {
					if p.Opts.ExplainOnly {
						return engine.NewRelation(qualifiedCols(tbl, corr)...), nil
					}
					return engine.Scan(ctx, &res.Stats, tbl, corr)
				})
			if err != nil {
				return nil, nil, err
			}
			res.Plan = append(res.Plan, fmt.Sprintf("Scan(%s as %s)", tbl.Schema.Name, corr))
		}
		if pred != nil {
			in := rel
			rel, node, err = timedOp(res, analyzed, "Filter", pred.SQL(), int64(in.Len()), []*Node{node},
				func() (*engine.Relation, error) {
					return engine.Filter(ctx, &res.Stats, in, pred, envProto)
				})
			if err != nil {
				return nil, nil, err
			}
			res.Plan = append(res.Plan, fmt.Sprintf("  Filter(%s)", pred.SQL()))
		}
		tables = append(tables, pendingTable{rel: rel, node: node})
	}

	// Left-deep join tree.
	cur := tables[0].rel
	curNode := tables[0].node
	for k, t := range tables[1:] {
		j := sp.joins[k]
		l, lnode := cur, curNode
		if len(j.lk) > 0 && j.buildLeft {
			// The accumulated prefix is bounded (≤1 row): build it as
			// the hash side and stream the new table through as probe.
			detail := fmt.Sprintf("%s = %s", strings.Join(j.rk, ","), strings.Join(j.lk, ","))
			cur, curNode, err = timedOp(res, analyzed, "HashJoin", detail,
				int64(l.Len()+t.rel.Len()), []*Node{t.node, lnode},
				func() (*engine.Relation, error) {
					return engine.HashJoin(ctx, &res.Stats, t.rel, l, j.rk, j.lk)
				})
			if err != nil {
				return nil, nil, err
			}
			curNode.Notes = append(curNode.Notes, buildPrefixNote)
			res.Plan = append(res.Plan, fmt.Sprintf("HashJoin(%s)", detail))
		} else if len(j.lk) > 0 {
			detail := fmt.Sprintf("%s = %s", strings.Join(j.lk, ","), strings.Join(j.rk, ","))
			cur, curNode, err = timedOp(res, analyzed, "HashJoin", detail,
				int64(l.Len()+t.rel.Len()), []*Node{lnode, t.node},
				func() (*engine.Relation, error) {
					return engine.HashJoin(ctx, &res.Stats, l, t.rel, j.lk, j.rk)
				})
			if err != nil {
				return nil, nil, err
			}
			res.Plan = append(res.Plan, fmt.Sprintf("HashJoin(%s)", detail))
		} else {
			cur, curNode, err = timedOp(res, analyzed, "Product", "",
				int64(l.Len()+t.rel.Len()), []*Node{lnode, t.node},
				func() (*engine.Relation, error) {
					return engine.Product(ctx, &res.Stats, l, t.rel)
				})
			if err != nil {
				return nil, nil, err
			}
			res.Plan = append(res.Plan, "Product")
		}
		if j.bound != "" {
			curNode.Notes = append(curNode.Notes, j.bound)
		}
	}

	if sp.residual != nil {
		pred := sp.residual
		env := &eval.Env{Cols: map[string]value.Value{}, Hosts: hosts,
			Scope: sp.scope, Exists: p.naiveExists(ctx, hosts, res),
			In: p.naiveIn(ctx, hosts, res)}
		in := cur
		cur, curNode, err = timedOp(res, analyzed, "Filter", pred.SQL(), int64(in.Len()), []*Node{curNode},
			func() (*engine.Relation, error) {
				return p.filterScoped(ctx, in, pred, env, res)
			})
		if err != nil {
			return nil, nil, err
		}
		res.Plan = append(res.Plan, fmt.Sprintf("Filter(%s)", pred.SQL()))
	}

	// Projection and duplicate elimination.
	{
		in := cur
		cur, curNode, err = timedOp(res, analyzed, "Project", strings.Join(sp.cols, ", "), int64(in.Len()), []*Node{curNode},
			func() (*engine.Relation, error) {
				return engine.Project(ctx, &res.Stats, in, sp.cols)
			})
		if err != nil {
			return nil, nil, err
		}
		res.Plan = append(res.Plan, fmt.Sprintf("Project(%s)", strings.Join(sp.cols, ", ")))
	}
	if sp.distinct {
		op := "DistinctSort"
		if p.Opts.HashDistinct {
			op = "DistinctHash"
		}
		in := cur
		cur, curNode, err = timedOp(res, analyzed, op, "", int64(in.Len()), []*Node{curNode},
			func() (*engine.Relation, error) {
				if p.Opts.HashDistinct {
					return engine.DistinctHash(ctx, &res.Stats, in)
				}
				return engine.DistinctSort(ctx, &res.Stats, in)
			})
		if err != nil {
			return nil, nil, err
		}
		res.Plan = append(res.Plan, op)
	}
	attachOrderNotes(curNode, sp)
	return cur, curNode, nil
}

// attachOrderNotes records the chosen join order and the start-table
// justification on the plan root, where EXPLAIN renders them above the
// per-join bound notes.
func attachOrderNotes(root *Node, sp *selectPlan) {
	if root == nil || sp.orderNote == "" {
		return
	}
	root.Notes = append(root.Notes, sp.orderNote)
	if sp.startNote != "" {
		root.Notes = append(root.Notes, sp.startNote)
	}
}

// filterScoped filters rows with a scoped environment (for correlated
// EXISTS evaluation).
func (p *Planner) filterScoped(ctx context.Context, rel *engine.Relation, pred ast.Expr, envProto *eval.Env, res *Result) (*engine.Relation, error) {
	env := &eval.Env{
		Cols:   make(map[string]value.Value, len(rel.Cols)+len(envProto.Cols)),
		Hosts:  envProto.Hosts,
		Scope:  envProto.Scope,
		Exists: envProto.Exists,
		In:     envProto.In,
	}
	for k, v := range envProto.Cols {
		env.Cols[k] = v
	}
	out := &engine.Relation{Cols: rel.Cols}
	for n, row := range rel.Rows {
		// Correlated predicates can make each row arbitrarily
		// expensive, so poll cancellation here too, not just inside
		// engine operators.
		if n%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i, c := range rel.Cols {
			env.Cols[c] = row[i]
		}
		ok, err := eval.Qualifies(pred, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// naiveExists evaluates EXISTS subqueries with the reference executor
// (nested loops): the baseline strategy Kim and Pirahesh et al. set
// out to avoid. Subquery work is accumulated into res.Stats.
func (p *Planner) naiveExists(ctx context.Context, hosts map[string]value.Value, res *Result) eval.ExistsFunc {
	ex := engine.NewExecutor(p.DB, hosts)
	ex.Stats = &res.Stats
	return ex.ExistsProbeCtx(ctx)
}

// naiveIn evaluates IN-subqueries with the reference executor.
func (p *Planner) naiveIn(ctx context.Context, hosts map[string]value.Value, res *Result) eval.InFunc {
	ex := engine.NewExecutor(p.DB, hosts)
	ex.Stats = &res.Stats
	return ex.InProbeCtx(ctx)
}

// qualifiersOf collects the qualifier names referenced by a fully
// qualified expression, descending into EXISTS subquery predicates
// (correlation references count as uses of the outer table).
func qualifiersOf(e ast.Expr) map[string]bool {
	out := make(map[string]bool)
	for _, c := range ast.ColumnRefs(e) {
		out[c.Qualifier] = true
	}
	return out
}

// accessPlan is a symbolic index access path: the target column and,
// as unevaluated expressions, the point key or range bounds the index
// probe will use. It carries no host-variable values — those are
// resolved per execution by bind — so the plan is cacheable across
// executions of the same statement shape. consumed lists the positions
// (ascending) of the pushed conjuncts the probe fully subsumes; strict
// bounds stay residual because the index range is inclusive.
type accessPlan struct {
	column             string
	eq                 ast.Expr // point key; when set, lo/hi are unused
	lo, hi             ast.Expr // range bounds (nil = unbounded side)
	loStrict, hiStrict bool     // bound came from > / < : re-filter boundary
	consumed           []int
}

// accessDecision is a bound access path for one execution: the plan
// rendering (op + detail) and the deferred execution bodies — exec
// materializes the rows, stream performs the index probe and returns
// a batched iterator over the matched ordinals. Splitting the decision
// from the execution lets ExplainOnly render the exact access path a
// real run would take without reading any table data.
type accessDecision struct {
	op     string
	detail string
	exec   func(ctx context.Context, st *engine.Stats) (*engine.Relation, error)
	stream func(st *engine.Stats) (engine.Iterator, error)
}

// bind evaluates the access plan's bounds against one execution's host
// variables. A nil receiver or an unevaluable bound (unbound host
// variable) yields nil: fall back to scan + full filter, where the
// predicate reports the error the paper-facing way. A NULL bound makes
// the comparison never true: the decision is an empty relation.
func (ap *accessPlan) bind(tbl *storage.Table, corr string, hosts map[string]value.Value) *accessDecision {
	if ap == nil {
		return nil
	}
	ix := tbl.OrderedIndexOn(ap.column)
	if ix == nil {
		return nil
	}
	env := &eval.Env{Cols: map[string]value.Value{}, Hosts: hosts}
	nullDecision := &accessDecision{op: "IndexScan",
		detail: fmt.Sprintf("%s.%s, never-true NULL bound", corr, ix.Name),
		exec: func(context.Context, *engine.Stats) (*engine.Relation, error) {
			return engine.NewRelation(qualifiedCols(tbl, corr)...), nil
		},
		stream: func(*engine.Stats) (engine.Iterator, error) {
			return engine.NewEmptyIter(qualifiedCols(tbl, corr)), nil
		}}
	if ap.eq != nil {
		v, err := eval.Value(ap.eq, env)
		if err != nil {
			return nil
		}
		if v.IsNull() {
			return nullDecision
		}
		return &accessDecision{op: "IndexScan",
			detail: fmt.Sprintf("%s via %s = %s", corr, ix.Name, v),
			exec: func(ctx context.Context, st *engine.Stats) (*engine.Relation, error) {
				return engine.IndexScanEq(ctx, st, tbl, corr, ix, value.Row{v})
			},
			stream: func(st *engine.Stats) (engine.Iterator, error) {
				ords, err := ix.Lookup(value.Row{v})
				if err != nil {
					return nil, err
				}
				return engine.NewIndexScanIter(st, tbl, corr, ords), nil
			}}
	}
	var lo, hi *value.Value
	if ap.lo != nil {
		v, err := eval.Value(ap.lo, env)
		if err != nil {
			return nil
		}
		if v.IsNull() {
			return nullDecision
		}
		lo = &v
	}
	if ap.hi != nil {
		v, err := eval.Value(ap.hi, env)
		if err != nil {
			return nil
		}
		if v.IsNull() {
			return nullDecision
		}
		hi = &v
	}
	var detail string
	switch {
	case lo != nil && hi != nil:
		detail = fmt.Sprintf("%s via %s BETWEEN %s AND %s", corr, ix.Name, *lo, *hi)
	case lo != nil:
		detail = fmt.Sprintf("%s via %s >= %s", corr, ix.Name, *lo)
	default:
		detail = fmt.Sprintf("%s via %s <= %s", corr, ix.Name, *hi)
	}
	if ap.loStrict {
		// Half-open: re-filter the boundary rows.
		detail += ", residual >"
	}
	if ap.hiStrict {
		detail += ", residual <"
	}
	return &accessDecision{op: "IndexScan", detail: detail,
		exec: func(ctx context.Context, st *engine.Stats) (*engine.Relation, error) {
			return engine.IndexScanRange(ctx, st, tbl, corr, ix, lo, hi)
		},
		stream: func(st *engine.Stats) (engine.Iterator, error) {
			return engine.NewIndexScanIter(st, tbl, corr, ix.Range(lo, hi)), nil
		}}
}

// chooseAccessPath inspects the pushed-down conjuncts for tbl and
// returns a symbolic index access plan when one of them is a point or
// range predicate on the leading column of an ordered index (nil = no
// index path; fall back to a full scan). An equality wins outright;
// otherwise every bound on the chosen column is combined, so a
// conjunction bounding it from both sides (SNO >= 10 AND SNO <= 20)
// becomes one closed range scan instead of a half-open scan plus a
// filter. Strict bounds (>, <) widen to the inclusive index range and
// stay in the residual filter.
func (p *Planner) chooseAccessPath(tbl *storage.Table, corr string, push []ast.Expr) *accessPlan {
	// Pick the target column: the first pushed conjunct that is a point
	// or range predicate on an indexed leading column.
	col := ""
	for _, c := range push {
		var ref *ast.ColumnRef
		switch x := c.(type) {
		case *ast.Compare:
			r, k, op := normalizeComparison(x)
			if r == nil || k == nil {
				continue
			}
			switch op {
			case ast.EqOp, ast.GtOp, ast.GeOp, ast.LtOp, ast.LeOp:
				ref = r
			default:
				continue
			}
		case *ast.Between:
			r, isCol := x.X.(*ast.ColumnRef)
			if x.Negated || !isCol || !isConstExpr(x.Lo) || !isConstExpr(x.Hi) {
				continue
			}
			ref = r
		default:
			continue
		}
		if ref.Qualifier != corr {
			continue
		}
		if tbl.OrderedIndexOn(ref.Column) != nil {
			col = ref.Column
			break
		}
	}
	if col == "" {
		return nil
	}
	ap := &accessPlan{column: col}
	for i, c := range push {
		cmp, ok := c.(*ast.Compare)
		if !ok {
			continue
		}
		ref, k, op := normalizeComparison(cmp)
		if ref == nil || op != ast.EqOp || ref.Qualifier != corr || ref.Column != col {
			continue
		}
		ap.eq = k
		ap.consumed = []int{i}
		return ap
	}
	for i, c := range push {
		switch x := c.(type) {
		case *ast.Compare:
			ref, k, op := normalizeComparison(x)
			if ref == nil || ref.Qualifier != corr || ref.Column != col {
				continue
			}
			switch op {
			case ast.GeOp:
				if ap.lo == nil {
					ap.lo = k
					ap.consumed = append(ap.consumed, i)
				}
			case ast.GtOp:
				if ap.lo == nil {
					ap.lo, ap.loStrict = k, true
				}
			case ast.LeOp:
				if ap.hi == nil {
					ap.hi = k
					ap.consumed = append(ap.consumed, i)
				}
			case ast.LtOp:
				if ap.hi == nil {
					ap.hi, ap.hiStrict = k, true
				}
			}
		case *ast.Between:
			ref, isCol := x.X.(*ast.ColumnRef)
			if x.Negated || !isCol || ref.Qualifier != corr || ref.Column != col {
				continue
			}
			if !isConstExpr(x.Lo) || !isConstExpr(x.Hi) {
				continue
			}
			if ap.lo == nil && ap.hi == nil {
				ap.lo, ap.hi = x.Lo, x.Hi
				ap.consumed = append(ap.consumed, i)
			}
		}
	}
	if ap.lo == nil && ap.hi == nil {
		return nil
	}
	sort.Ints(ap.consumed)
	return ap
}

// normalizeComparison orients a comparison as (column op constant),
// flipping the operator when the column is on the right. Returns a nil
// column when the shape does not match.
func normalizeComparison(cmp *ast.Compare) (*ast.ColumnRef, ast.Expr, ast.CompareOp) {
	l, lok := cmp.L.(*ast.ColumnRef)
	r, rok := cmp.R.(*ast.ColumnRef)
	switch {
	case lok && !rok && isConstExpr(cmp.R):
		return l, cmp.R, cmp.Op
	case rok && !lok && isConstExpr(cmp.L):
		return r, cmp.L, cmp.Op.Flip()
	default:
		return nil, nil, cmp.Op
	}
}

func isConstExpr(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IntLit, *ast.StringLit, *ast.BoolLit, *ast.HostVar:
		return true
	default:
		return false
	}
}

func qualifiedCols(tbl *storage.Table, corr string) []string {
	out := make([]string, len(tbl.Schema.Columns))
	for i, c := range tbl.Schema.Columns {
		out[i] = corr + "." + c.Name
	}
	return out
}
