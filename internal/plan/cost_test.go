package plan

import (
	"strings"
	"testing"

	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/workload"
)

func estimate(t *testing.T, db *storage.DB, src string) float64 {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EstimateCost(db, q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The estimator must rank the obviously expensive strategies above the
// obviously cheap ones: nested-loop subquery probing above a single
// join, Cartesian products above equi-joins, and it must grow with the
// data.
func TestCostEstimateOrdering(t *testing.T) {
	db := smallDB(t)
	nested := estimate(t, db, `SELECT S.SNO FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')`)
	joined := estimate(t, db, `SELECT DISTINCT S.SNO FROM SUPPLIER S, PARTS P
		WHERE P.SNO = S.SNO AND P.COLOR = 'RED'`)
	if nested <= joined {
		t.Errorf("nested-loop estimate (%.0f) should exceed join estimate (%.0f)", nested, joined)
	}
	product := estimate(t, db, `SELECT S.SNO FROM SUPPLIER S, PARTS P`)
	equi := estimate(t, db, `SELECT S.SNO FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`)
	if product <= equi {
		t.Errorf("product estimate (%.0f) should exceed equi-join estimate (%.0f)", product, equi)
	}

	// Monotone in cardinality.
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 400
	big, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	smallCost := estimate(t, db, `SELECT S.SNO FROM SUPPLIER S`)
	bigCost := estimate(t, big, `SELECT S.SNO FROM SUPPLIER S`)
	if bigCost <= smallCost {
		t.Errorf("cost must grow with table size: %.0f vs %.0f", bigCost, smallCost)
	}
}

// A bound host variable is a single value at execution time, so a
// parameterized point lookup on an indexed column must cost the same
// as its literal twin and far less than a full scan — the physical
// planner turns both into the same index probe. Without an index the
// assist must not apply.
func TestCostHostVarPointLookup(t *testing.T) {
	db := indexedDB(t)
	scan := estimate(t, db, `SELECT S.SNAME FROM SUPPLIER S`)
	hostPt := estimate(t, db, `SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = :N`)
	litPt := estimate(t, db, `SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = 3`)
	if hostPt != litPt {
		t.Errorf("host-var point lookup (%.2f) must cost like the literal one (%.2f)", hostPt, litPt)
	}
	if hostPt >= scan {
		t.Errorf("indexed point lookup (%.2f) must undercut a full scan (%.2f)", hostPt, scan)
	}
	rng := estimate(t, db, `SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO >= :N`)
	if rng >= scan {
		t.Errorf("indexed range scan (%.2f) must undercut a full scan (%.2f)", rng, scan)
	}
	if rng <= hostPt {
		t.Errorf("range scan (%.2f) must cost more than a point lookup (%.2f)", rng, hostPt)
	}

	// No index: host-var equality still narrows the estimated output,
	// but the scan itself must be charged in full.
	plain := smallDB(t)
	noIx := estimate(t, plain, `SELECT S.SNAME FROM SUPPLIER S WHERE S.SNO = :N`)
	full := estimate(t, plain, `SELECT S.SNAME FROM SUPPLIER S`)
	if noIx != full {
		t.Errorf("without an index the scan cost must stay %.2f, got %.2f", full, noIx)
	}
}

func TestCostEstimateSetOp(t *testing.T) {
	db := smallDB(t)
	c := estimate(t, db, `SELECT S.SNO FROM SUPPLIER S
		INTERSECT SELECT A.SNO FROM AGENTS A`)
	if c <= 0 {
		t.Errorf("set-op estimate = %.0f", c)
	}
}

// Cost-based mode keeps the rewrite when the model agrees it is
// cheaper, records the decision, and never changes the answer.
func TestCostBasedKeepsCheaperRewrite(t *testing.T) {
	db := smallDB(t)
	src := `SELECT S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')`
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPlanner(db, Options{ApplyRewrites: true, CostBased: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Fatal("the model must prefer the join over nested-loop probing")
	}
	found := false
	for _, line := range res.Plan {
		if strings.HasPrefix(line, "CostChoice(rewritten") {
			found = true
		}
	}
	if !found {
		t.Errorf("decision not recorded:\n%s", strings.Join(res.Plan, "\n"))
	}
	ref, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(ref, res.Rel) {
		t.Error("cost-based run changed semantics")
	}
}

// When the model prefers the original, the rewrites are discarded and
// the original executes — still correct.
func TestCostBasedCanDiscardRewrites(t *testing.T) {
	db := smallDB(t)
	// Hand the planner a query whose only rewrite is join elimination
	// but where the model cannot see the benefit clearly either way;
	// whatever it decides, the answer must match the reference and the
	// decision must be recorded.
	src := `SELECT P.PNO, P.PNAME FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO`
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPlanner(db, Options{ApplyRewrites: true, CostBased: true}).Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	decided := false
	for _, line := range res.Plan {
		if strings.HasPrefix(line, "CostChoice(") {
			decided = true
		}
	}
	if !decided {
		t.Errorf("cost decision missing from plan:\n%s", strings.Join(res.Plan, "\n"))
	}
	ref, err := engine.NewExecutor(db, nil).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(ref, res.Rel) {
		t.Error("cost-based run changed semantics")
	}
}

// Property: cost-based planning preserves semantics across the random
// corpus (whatever the model chooses).
func TestCostBasedEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property suite is slow")
	}
	db := smallDB(t)
	for _, name := range []string{"example1", "example7", "example8", "example9"} {
		src := workload.PaperQueries[name]
		q, err := parser.ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		hosts := hostsFor(name)
		res, err := NewPlanner(db, Options{ApplyRewrites: true, CostBased: true}).Run(q, hosts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := engine.NewExecutor(db, hosts).Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !engine.MultisetEqual(ref, res.Rel) {
			t.Errorf("%s: cost-based run changed semantics", name)
		}
	}
}
