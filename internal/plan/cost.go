package plan

import (
	"math"
	"strings"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/storage"
)

// The paper positions its rewrites as strategy-space expansion: "once
// the optimizer identifies possible transformations, it can then
// choose the most appropriate strategy on the basis of its cost model"
// (Section 5). This file provides that cost model — a deliberately
// simple analytic estimate in units of row touches — and the planner's
// CostBased mode uses it to pick between the original and rewritten
// query forms (see experiment E4's crossover for why this matters).

// Selectivity guesses, in the System-R tradition.
const (
	selEquality = 0.1
	selRange    = 0.3
	selOther    = 0.5
)

// EstimateCost returns an analytic execution-cost estimate for q over
// the database's current cardinalities. It mirrors the physical
// planner's strategy choices: pushdown with index assists, left-deep
// hash joins for equi-predicates, Cartesian products otherwise,
// nested-loop subquery probes for residual EXISTS/IN, sort-based
// DISTINCT, and sort-merge set operations.
func EstimateCost(db *storage.DB, q ast.Query) (float64, error) {
	switch x := q.(type) {
	case *ast.Select:
		cost, _, err := estimateSelect(db, x, nil)
		return cost, err
	case *ast.SetOp:
		lc, lRows, err := estimateSelect(db, x.Left, nil)
		if err != nil {
			return 0, err
		}
		rc, rRows, err := estimateSelect(db, x.Right, nil)
		if err != nil {
			return 0, err
		}
		return lc + rc + sortCost(lRows) + sortCost(rRows), nil
	default:
		return 0, nil
	}
}

// estimateSelect returns (cost, output cardinality estimate).
func estimateSelect(db *storage.DB, s *ast.Select, outer *catalog.Scope) (float64, float64, error) {
	scope, err := catalog.NewScope(db.Catalog(), s.From, outer)
	if err != nil {
		return 0, 0, err
	}
	type tableEst struct {
		corr string
		tbl  *storage.Table
		rows float64
	}
	var tables []tableEst
	for _, tr := range s.From {
		tbl, ok := db.Table(tr.Table)
		if !ok {
			return 0, 0, nil
		}
		tables = append(tables, tableEst{
			corr: strings.ToUpper(tr.Name()),
			tbl:  tbl,
			rows: float64(tbl.Len()),
		})
	}

	cost := 0.0
	// Classify conjuncts. normalizeComparison treats host variables as
	// constants (a bound :NAME is one value at execution time), so a
	// parameterized point predicate costs like a literal one instead of
	// like an opaque filter over a full scan. The first point- or
	// range-bound column per table is remembered so the scan cost below
	// can mirror the physical planner's index access paths.
	var joinEq int
	var subqueries []*ast.Select
	perTableSel := map[string]float64{}
	pointCol := map[string]string{}
	rangeCol := map[string]string{}
	for _, c := range ast.Conjuncts(s.Where) {
		switch x := c.(type) {
		case *ast.Exists:
			subqueries = append(subqueries, x.Query)
		case *ast.InSubquery:
			subqueries = append(subqueries, x.Query)
		default:
			qs := conjQualifiers(x, scope)
			switch len(qs) {
			case 1:
				sel := selOther
				var boundCol string
				isPoint := false
				switch y := x.(type) {
				case *ast.Compare:
					if ref, _, op := normalizeComparison(y); ref != nil {
						switch op {
						case ast.EqOp:
							sel, boundCol, isPoint = selEquality, ref.Column, true
						case ast.LtOp, ast.LeOp, ast.GtOp, ast.GeOp:
							sel, boundCol = selRange, ref.Column
						}
					} else if y.Op == ast.EqOp {
						sel = selEquality
					}
				case *ast.Between:
					sel = selRange
					if ref, ok := y.X.(*ast.ColumnRef); ok && !y.Negated &&
						isConstExpr(y.Lo) && isConstExpr(y.Hi) {
						boundCol = ref.Column
					}
				}
				for corr := range qs {
					if perTableSel[corr] == 0 {
						perTableSel[corr] = 1
					}
					perTableSel[corr] *= sel
					if boundCol == "" {
						continue
					}
					if isPoint {
						if _, seen := pointCol[corr]; !seen {
							pointCol[corr] = boundCol
						}
					} else if _, seen := rangeCol[corr]; !seen {
						rangeCol[corr] = boundCol
					}
				}
			default:
				if cmp, ok := x.(*ast.Compare); ok && cmp.Op == ast.EqOp {
					joinEq++
				}
			}
		}
	}

	// Scan (with pushdown) per table. When a bound column has an
	// ordered index on its leading position, the scan touches only the
	// estimated qualifying fraction — the same access paths
	// chooseAccessPath picks — instead of every row.
	out := 1.0
	for i := range tables {
		eff := tables[i].rows
		if f, ok := perTableSel[tables[i].corr]; ok {
			eff *= f
		}
		scan := tables[i].rows
		if col, ok := pointCol[tables[i].corr]; ok && tables[i].tbl.OrderedIndexOn(col) != nil {
			scan = math.Max(1, scan*selEquality)
		} else if col, ok := rangeCol[tables[i].corr]; ok && tables[i].tbl.OrderedIndexOn(col) != nil {
			scan = math.Max(1, scan*selRange)
		}
		cost += scan
		tables[i].rows = eff
	}
	// Left-deep joins.
	cur := tables[0].rows
	for _, t := range tables[1:] {
		if joinEq > 0 {
			// Hash join: build + probe, equi-output estimate.
			cost += cur + t.rows
			cur = math.Max(cur, t.rows) * selEquality * 10 // ≈ FK fan-out
			joinEq--
		} else {
			cost += cur * t.rows
			cur = cur * t.rows
		}
	}
	out = cur

	// Residual subqueries: nested-loop probes, one inner evaluation
	// per surviving outer row.
	for _, sub := range subqueries {
		subCost, _, err := estimateSelect(db, sub, scope)
		if err != nil {
			return 0, 0, err
		}
		cost += out * subCost
		out *= selOther
	}
	if s.Quant.IsDistinct() {
		cost += sortCost(out)
		out *= 0.5
	}
	return cost, out, nil
}

// conjQualifiers collects correlation names a conjunct references,
// restricted to the local scope.
func conjQualifiers(e ast.Expr, scope *catalog.Scope) map[string]bool {
	out := map[string]bool{}
	for _, ref := range ast.ColumnRefs(e) {
		r, err := scope.Resolve(ref)
		if err != nil || r.Depth != 0 {
			continue
		}
		q := r.Qualified(scope)
		out[q[:strings.IndexByte(q, '.')]] = true
	}
	return out
}

func sortCost(n float64) float64 {
	if n < 2 {
		return n
	}
	return n * math.Log2(n)
}
