package plan

import (
	"fmt"
	"strings"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/storage"
)

// Greedy, statistics-free join ordering driven by the same uniqueness
// reasoning the rest of the repo is built on. A join that probes a
// fully bound candidate key yields at most one row per outer row —
// the unary-key cardinality bound — so such probes are scheduled
// first; after them, tables made selective by visible predicates
// (constant- or host-variable-bound columns, then ranges) come before
// bare scans, and Cartesian products go last. Every decision depends
// only on the query shape and the schema, never on row counts, which
// is what lets a cached plan stay valid as the data changes.

// tableTerm is one FROM-list entry during planning: its pushed
// single-table conjuncts plus the constant equalities derived for it
// by deriveConstEqualities.
type tableTerm struct {
	corr    string
	tbl     *storage.Table
	push    []ast.Expr
	derived []ast.Expr
}

// orderedStep is one position in the chosen join order: the index into
// the written FROM list, for every table after the first the
// cardinality-bound note that justified the position (rendered by
// EXPLAIN on the join node that binds the table), and whether the
// position is a unique probe — a fully bound candidate key, so the
// join yields at most one row per outer row.
type orderedStep struct {
	idx    int
	bound  string
	unique bool
}

// deriveConstEqualities propagates constant and host-variable bindings
// across join equalities: S.SNO = P.SNO together with S.SNO = 7
// implies P.SNO = 7 on every qualifying row, because a row qualifies
// only when the whole conjunction evaluates TRUE — never UNKNOWN —
// which under three-valued logic forces both conjuncts TRUE. The
// synthesized equalities are appended to the target table's derived
// list so they sink below the join where access-path choice and pushed
// filters can use them; the original conjuncts stay in place.
func deriveConstEqualities(conjuncts []ast.Expr, terms []*tableTerm) {
	byCorr := make(map[string]*tableTerm, len(terms))
	for _, t := range terms {
		byCorr[t.corr] = t
	}
	// Union-find over the qualified columns joined by equality;
	// registration order makes the output deterministic.
	parent := map[string]string{}
	var order []string
	reg := func(k string) {
		if _, ok := parent[k]; !ok {
			parent[k] = k
			order = append(order, k)
		}
	}
	var find func(string) string
	find = func(k string) string {
		if parent[k] != k {
			parent[k] = find(parent[k])
		}
		return parent[k]
	}
	for _, c := range conjuncts {
		cmp, ok := c.(*ast.Compare)
		if !ok || cmp.Op != ast.EqOp {
			continue
		}
		l, lok := cmp.L.(*ast.ColumnRef)
		r, rok := cmp.R.(*ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		lk := l.Qualifier + "." + l.Column
		rk := r.Qualifier + "." + r.Column
		reg(lk)
		reg(rk)
		parent[find(lk)] = find(rk)
	}
	if len(order) == 0 {
		return
	}
	// First constant binding per equivalence class wins; columns that
	// already carry a direct constant equality need no derived copy.
	bindings := map[string]ast.Expr{}
	direct := map[string]bool{}
	for _, c := range conjuncts {
		cmp, ok := c.(*ast.Compare)
		if !ok || cmp.Op != ast.EqOp {
			continue
		}
		ref, k, _ := normalizeComparison(cmp)
		if ref == nil {
			continue
		}
		key := ref.Qualifier + "." + ref.Column
		direct[key] = true
		if _, in := parent[key]; !in {
			continue
		}
		if r := find(key); bindings[r] == nil {
			bindings[r] = k
		}
	}
	for _, key := range order {
		b := bindings[find(key)]
		if b == nil || direct[key] {
			continue
		}
		dot := strings.IndexByte(key, '.')
		t := byCorr[key[:dot]]
		if t == nil {
			continue
		}
		t.derived = append(t.derived, &ast.Compare{Op: ast.EqOp,
			L: &ast.ColumnRef{Qualifier: key[:dot], Column: key[dot+1:]}, R: b})
	}
}

// constBindings returns the columns of t bound to a constant or host
// variable by an equality among its pushed or derived conjuncts, in
// conjunct order, with the binding conjunct's rendering per column.
func constBindings(t *tableTerm) (cols []string, srcByCol map[string]string) {
	srcByCol = map[string]string{}
	for _, c := range append(append([]ast.Expr{}, t.push...), t.derived...) {
		cmp, ok := c.(*ast.Compare)
		if !ok || cmp.Op != ast.EqOp {
			continue
		}
		ref, _, op := normalizeComparison(cmp)
		if ref == nil || op != ast.EqOp || ref.Qualifier != t.corr {
			continue
		}
		if _, seen := srcByCol[ref.Column]; seen {
			continue
		}
		srcByCol[ref.Column] = c.SQL()
		cols = append(cols, ref.Column)
	}
	return cols, srcByCol
}

// hasRangeBound reports whether t has a pushed range predicate
// (comparison or BETWEEN against a constant) on one of its columns.
func hasRangeBound(t *tableTerm) bool {
	for _, c := range t.push {
		switch x := c.(type) {
		case *ast.Compare:
			ref, _, op := normalizeComparison(x)
			if ref == nil {
				continue
			}
			switch op {
			case ast.LtOp, ast.LeOp, ast.GtOp, ast.GeOp:
				return true
			}
		case *ast.Between:
			if !x.Negated && isConstExpr(x.Lo) && isConstExpr(x.Hi) {
				return true
			}
		}
	}
	return false
}

// coveringKey reports whether the bound columns cover a candidate key
// of t's schema (the verdict-style "all key columns bound" test). On
// success it returns the key's column names and, per key column, the
// rendering of the conjunct that bound it.
func coveringKey(t *tableTerm, boundSrc map[string]string) (keyCols, srcs []string, ok bool) {
	for _, k := range t.tbl.Schema.Keys {
		names := t.tbl.Schema.KeyColumnNames(k)
		srcs = srcs[:0]
		covered := true
		for _, cn := range names {
			s, bound := boundSrc[cn]
			if !bound {
				covered = false
				break
			}
			srcs = append(srcs, s)
		}
		if covered {
			return names, srcs, true
		}
	}
	return nil, nil, false
}

// startClass ranks a table as the start of the join order by its
// visible selectivity: 0 = a whole candidate key is constant-bound
// (at most one row survives the pushed filter), 1 = some column is
// constant-bound, 2 = range-bound, 3 = filtered at all, 4 = bare.
func startClass(t *tableTerm) (int, string) {
	cols, src := constBindings(t)
	if kc, srcs, ok := coveringKey(t, src); ok {
		return 0, fmt.Sprintf("key (%s) bound by %s — at most one row",
			strings.Join(kc, ", "), strings.Join(srcs, ", "))
	}
	if len(cols) > 0 {
		return 1, "constant-bound " + strings.Join(cols, ", ")
	}
	if hasRangeBound(t) {
		return 2, "range-bound"
	}
	if len(t.push) > 0 {
		return 3, "filtered"
	}
	return 4, "first in FROM"
}

// chooseJoinOrder picks the left-deep join order greedily. The start
// table is the one with the most selective pushed predicate
// (startClass); each subsequent position prefers, in order, a table
// whose candidate key is fully bound by join equalities and constants
// (a unique probe: at most 1 row per outer row), then any
// equi-connected table (constant-filtered ones first), and only then a
// Cartesian product. Ties keep written order, so the ordering is
// deterministic and degrades to the written plan when nothing is
// known. The returned steps carry the per-position justification
// EXPLAIN renders; startTiny reports that the start table is bounded
// to at most one row by a constant-bound key, which lets the join
// construction build the (tiny) accumulated prefix as the hash side.
func (p *Planner) chooseJoinOrder(terms []*tableTerm, conjuncts []ast.Expr, used []bool) (steps []orderedStep, startNote string, startTiny bool) {
	n := len(terms)
	steps = make([]orderedStep, 0, n)
	if n < 2 || p.Opts.WrittenJoinOrder {
		for i := 0; i < n; i++ {
			steps = append(steps, orderedStep{idx: i})
		}
		return steps, "", false
	}
	pos := make(map[string]int, n)
	for i, t := range terms {
		pos[t.corr] = i
	}
	// Join graph: the unconsumed cross-table equality conjuncts.
	type edge struct {
		a, b             int
		aCol, bCol, sqlS string
	}
	var edges []edge
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		cmp, ok := c.(*ast.Compare)
		if !ok || cmp.Op != ast.EqOp {
			continue
		}
		l, lok := cmp.L.(*ast.ColumnRef)
		r, rok := cmp.R.(*ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		ai, aok := pos[l.Qualifier]
		bi, bok := pos[r.Qualifier]
		if !aok || !bok || ai == bi {
			continue
		}
		edges = append(edges, edge{a: ai, b: bi, aCol: l.Column, bCol: r.Column, sqlS: c.SQL()})
	}

	placed := make([]bool, n)
	best, bestClass, bestWhy := 0, int(^uint(0)>>1), ""
	for i, t := range terms {
		if cl, why := startClass(t); cl < bestClass {
			best, bestClass, bestWhy = i, cl, why
		}
	}
	placed[best] = true
	steps = append(steps, orderedStep{idx: best})
	startNote = fmt.Sprintf("start %s: %s", terms[best].corr, bestWhy)
	startTiny = bestClass == 0

	for len(steps) < n {
		nextIdx, nextClass, nextWhy := -1, int(^uint(0)>>1), ""
		for i, t := range terms {
			if placed[i] {
				continue
			}
			// Columns of t bound by join equalities into the placed
			// prefix, plus its own constant bindings.
			var joinCols []string
			seen := map[string]bool{}
			boundSrc := map[string]string{}
			for _, e := range edges {
				var col, src string
				switch {
				case placed[e.a] && e.b == i:
					col, src = e.bCol, e.sqlS
				case placed[e.b] && e.a == i:
					col, src = e.aCol, e.sqlS
				default:
					continue
				}
				if seen[col] {
					continue
				}
				seen[col] = true
				joinCols = append(joinCols, col)
				boundSrc[col] = src
			}
			ccols, csrc := constBindings(t)
			for _, col := range ccols {
				if _, ok := boundSrc[col]; !ok {
					boundSrc[col] = csrc[col]
				}
			}
			var cl int
			var why string
			switch kc, srcs, keyBound := coveringKey(t, boundSrc); {
			case keyBound:
				cl = 0
				why = fmt.Sprintf("unique probe of %s: key (%s) bound by %s ⇒ at most 1 row per outer row",
					t.corr, strings.Join(kc, ", "), strings.Join(srcs, ", "))
			case len(joinCols) > 0 && len(ccols) > 0:
				cl = 1
				why = fmt.Sprintf("equi-join on %s, constant-bound %s; no key of %s fully bound",
					strings.Join(joinCols, ", "), strings.Join(ccols, ", "), t.corr)
			case len(joinCols) > 0:
				cl = 2
				why = fmt.Sprintf("equi-join on %s; no key of %s fully bound",
					strings.Join(joinCols, ", "), t.corr)
			default:
				scl, _ := startClass(t)
				cl = 10 + scl
				why = fmt.Sprintf("Cartesian: no predicate connects %s to the joined tables", t.corr)
			}
			if cl < nextClass {
				nextIdx, nextClass, nextWhy = i, cl, why
			}
		}
		placed[nextIdx] = true
		steps = append(steps, orderedStep{idx: nextIdx, bound: nextWhy, unique: nextClass == 0})
	}
	return steps, startNote, startTiny
}
