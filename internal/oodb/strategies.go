package oodb

import (
	"uniqopt/internal/value"
)

// QueryResult is the outcome of one Example 11 strategy: the SUPPLIER
// objects output and the access counts the strategy incurred.
type QueryResult struct {
	Output []*Object
	Stats  AccessStats
}

// ChildDrivenJoin is Example 11's straightforward strategy (lines
// 36–42): retrieve every PARTS object with the given PNO via the PNO
// index, chase its child→parent pointer to the SUPPLIER, and test the
// range predicate afterwards. Many SUPPLIER objects may be fetched
// only to be discarded — the inefficiency §6.2 highlights.
func (s *Store) ChildDrivenJoin(partNo value.Value, snoLo, snoHi value.Value) (*QueryResult, error) {
	before := s.Stats
	res := &QueryResult{}
	entries, err := s.IndexLookup("PARTS", "PNO", partNo)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		// retrieve PARTS — the object itself is materialized...
		if _, err := s.Fetch(e.oid); err != nil {
			return nil, err
		}
		// ...then retrieve PARTS.SUPPLIER through the pointer.
		sup, err := s.Fetch(e.parent)
		if err != nil {
			return nil, err
		}
		sno := sup.Get("SNO")
		if !sno.IsNull() &&
			value.Compare(sno, snoLo) >= 0 && value.Compare(sno, snoHi) <= 0 {
			res.Output = append(res.Output, sup)
		}
	}
	res.Stats = diff(before, s.Stats)
	return res, nil
}

// ParentDrivenExists is the strategy the Theorem 2 rewrite enables
// (lines 43–48): drive from the SUPPLIER index over the selective
// range predicate, and for each supplier perform an index-only
// existence probe into PARTS by (PNO, parent OID) — no PARTS objects
// and no out-of-range SUPPLIER objects are ever fetched.
func (s *Store) ParentDrivenExists(partNo value.Value, snoLo, snoHi value.Value) (*QueryResult, error) {
	before := s.Stats
	res := &QueryResult{}
	sups, err := s.IndexRange("SUPPLIER", "SNO", snoLo, snoHi)
	if err != nil {
		return nil, err
	}
	for _, se := range sups {
		found, err := s.IndexExists("PARTS", "PNO", partNo, se.oid)
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		sup, err := s.Fetch(se.oid)
		if err != nil {
			return nil, err
		}
		res.Output = append(res.Output, sup)
	}
	res.Stats = diff(before, s.Stats)
	return res, nil
}

func diff(before, after AccessStats) AccessStats {
	return AccessStats{
		Fetches:      after.Fetches - before.Fetches,
		IndexProbes:  after.IndexProbes - before.IndexProbes,
		IndexEntries: after.IndexEntries - before.IndexEntries,
	}
}
