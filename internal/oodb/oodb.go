// Package oodb simulates an object-oriented database in the style the
// paper's Section 6.2 describes (EXODUS / O2): objects carry physical
// object identifiers (OIDs), relationships are child→parent pointers
// (Figure 3 — each PARTS and AGENT object points to its SUPPLIER),
// and classes have extents plus optional value indexes.
//
// The §6.2 argument is about which objects must be *fetched* under a
// given strategy when pointers run opposite to the join direction; the
// store therefore counts object fetches (faults) and index activity,
// and the two strategies of Example 11 are implemented against it.
package oodb

import (
	"fmt"
	"sort"

	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// OID is a physical object identifier. The zero OID is nil.
type OID int64

// Class describes one object class.
type Class struct {
	Name     string
	KeyField string
	Fields   []string
	Parent   *Class // the class this one's objects point to, if any
}

// Object is one stored object.
type Object struct {
	OID    OID
	Class  *Class
	Fields map[string]value.Value
	Parent OID // child→parent pointer; 0 for roots
}

// Get returns a field value.
func (o *Object) Get(field string) value.Value { return o.Fields[field] }

// AccessStats counts store activity. Fetches is the number of object
// faults — the §6.2 cost measure; index probes are counted separately
// (entries are OID+key pairs, much cheaper than object faults).
type AccessStats struct {
	Fetches      int64
	IndexProbes  int64
	IndexEntries int64
}

// String renders the counters.
func (s *AccessStats) String() string {
	return fmt.Sprintf("fetches=%d probes=%d entries=%d", s.Fetches, s.IndexProbes, s.IndexEntries)
}

// indexEntry pairs a key value with the object's OID and parent OID —
// parent OIDs are stored in the index so existence probes by (key,
// parent) are index-only.
type indexEntry struct {
	key    value.Value
	oid    OID
	parent OID
}

type index struct {
	entries []indexEntry // sorted by key, then parent OID
}

func (ix *index) insert(e indexEntry) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		c := value.OrderCompare(ix.entries[i].key, e.key)
		if c != 0 {
			return c >= 0
		}
		return ix.entries[i].parent >= e.parent
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = e
}

// lookup returns the span of entries with the given key.
func (ix *index) lookup(key value.Value) []indexEntry {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return value.OrderCompare(ix.entries[i].key, key) >= 0
	})
	hi := lo
	for hi < len(ix.entries) && value.NullEq(ix.entries[hi].key, key) {
		hi++
	}
	return ix.entries[lo:hi]
}

// lookupRange returns entries with lo <= key <= hi.
func (ix *index) lookupRange(lo, hi value.Value) []indexEntry {
	a := sort.Search(len(ix.entries), func(i int) bool {
		return value.OrderCompare(ix.entries[i].key, lo) >= 0
	})
	b := sort.Search(len(ix.entries), func(i int) bool {
		return value.OrderCompare(ix.entries[i].key, hi) > 0
	})
	if a > b {
		return nil
	}
	return ix.entries[a:b]
}

// Store is the object store: the "disk" of objects plus extents and
// indexes.
type Store struct {
	classes map[string]*Class
	objects map[OID]*Object
	extents map[string][]OID
	indexes map[string]*index // "CLASS.FIELD"
	nextOID OID
	Stats   AccessStats
}

// NewStore creates an empty store over the given classes.
func NewStore(classes ...*Class) *Store {
	s := &Store{
		classes: map[string]*Class{},
		objects: map[OID]*Object{},
		extents: map[string][]OID{},
		indexes: map[string]*index{},
		nextOID: 1,
	}
	for _, c := range classes {
		s.classes[c.Name] = c
	}
	return s
}

// SupplierSchema returns Figure 3's classes: SUPPLIER with PARTS and
// AGENT pointing at it.
func SupplierSchema() (supplier, parts, agent *Class) {
	supplier = &Class{Name: "SUPPLIER", KeyField: "SNO",
		Fields: []string{"SNO", "SNAME", "SCITY", "BUDGET", "STATUS"}}
	parts = &Class{Name: "PARTS", KeyField: "PNO",
		Fields: []string{"PNO", "PNAME", "OEM-PNO", "COLOR"}, Parent: supplier}
	agent = &Class{Name: "AGENT", KeyField: "ANO",
		Fields: []string{"ANO", "ANAME", "ACITY"}, Parent: supplier}
	return
}

// CreateIndex builds a value index on class.field, with parent OIDs
// stored in the entries.
func (s *Store) CreateIndex(class, field string) error {
	c, ok := s.classes[class]
	if !ok {
		return fmt.Errorf("oodb: unknown class %s", class)
	}
	found := false
	for _, f := range c.Fields {
		if f == field {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("oodb: class %s has no field %s", class, field)
	}
	ix := &index{}
	for _, oid := range s.extents[class] {
		o := s.objects[oid]
		ix.insert(indexEntry{key: o.Get(field), oid: oid, parent: o.Parent})
	}
	s.indexes[class+"."+field] = ix
	return nil
}

// Insert stores a new object and returns its OID.
func (s *Store) Insert(class string, fields map[string]value.Value, parent OID) (OID, error) {
	c, ok := s.classes[class]
	if !ok {
		return 0, fmt.Errorf("oodb: unknown class %s", class)
	}
	if c.Parent != nil && parent == 0 {
		return 0, fmt.Errorf("oodb: class %s requires a parent pointer", class)
	}
	if parent != 0 {
		po, ok := s.objects[parent]
		if !ok {
			return 0, fmt.Errorf("oodb: parent OID %d does not exist", parent)
		}
		if c.Parent == nil || po.Class.Name != c.Parent.Name {
			return 0, fmt.Errorf("oodb: parent of %s must be %v", class, c.Parent)
		}
	}
	oid := s.nextOID
	s.nextOID++
	o := &Object{OID: oid, Class: c, Fields: fields, Parent: parent}
	s.objects[oid] = o
	s.extents[class] = append(s.extents[class], oid)
	for name, ix := range s.indexes {
		if fieldOf(name, class) != "" {
			ix.insert(indexEntry{key: o.Get(fieldOf(name, class)), oid: oid, parent: parent})
		}
	}
	return oid, nil
}

func fieldOf(indexName, class string) string {
	prefix := class + "."
	if len(indexName) > len(prefix) && indexName[:len(prefix)] == prefix {
		return indexName[len(prefix):]
	}
	return ""
}

// Fetch faults an object in from the store (counted).
func (s *Store) Fetch(oid OID) (*Object, error) {
	o, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("oodb: dangling OID %d", oid)
	}
	s.Stats.Fetches++
	return o, nil
}

// Extent returns the OIDs of a class, in insertion order. Iterating an
// extent costs one fetch per object when the objects are materialized.
func (s *Store) Extent(class string) []OID { return s.extents[class] }

// IndexLookup probes the index for entries with the given key.
func (s *Store) IndexLookup(class, field string, key value.Value) ([]indexEntry, error) {
	ix, ok := s.indexes[class+"."+field]
	if !ok {
		return nil, fmt.Errorf("oodb: no index on %s.%s", class, field)
	}
	s.Stats.IndexProbes++
	out := ix.lookup(key)
	s.Stats.IndexEntries += int64(len(out))
	return out, nil
}

// IndexExists reports whether an entry with (key, parent) exists, by
// binary search over the (key, parent)-sorted entries — an index-only
// existence probe. The entries inspected during the search are counted.
func (s *Store) IndexExists(class, field string, key value.Value, parent OID) (bool, error) {
	ix, ok := s.indexes[class+"."+field]
	if !ok {
		return false, fmt.Errorf("oodb: no index on %s.%s", class, field)
	}
	s.Stats.IndexProbes++
	lo, hi := 0, len(ix.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		s.Stats.IndexEntries++
		e := ix.entries[mid]
		c := value.OrderCompare(e.key, key)
		if c == 0 {
			switch {
			case e.parent == parent:
				return true, nil
			case e.parent < parent:
				c = -1
			default:
				c = 1
			}
		}
		if c < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return false, nil
}

// IndexRange probes the index for lo <= key <= hi.
func (s *Store) IndexRange(class, field string, lo, hi value.Value) ([]indexEntry, error) {
	ix, ok := s.indexes[class+"."+field]
	if !ok {
		return nil, fmt.Errorf("oodb: no index on %s.%s", class, field)
	}
	s.Stats.IndexProbes++
	out := ix.lookupRange(lo, hi)
	s.Stats.IndexEntries += int64(len(out))
	return out, nil
}

// ResetStats zeroes the access counters.
func (s *Store) ResetStats() { s.Stats = AccessStats{} }

// FromRelational loads Figure 3's object base from the relational
// supplier database, creating indexes on SUPPLIER.SNO and PARTS.PNO
// (the indexes Example 11 assumes).
func FromRelational(db *storage.DB) (*Store, error) {
	supplier, parts, agent := SupplierSchema()
	s := NewStore(supplier, parts, agent)
	sup, ok := db.Table("SUPPLIER")
	if !ok {
		return nil, fmt.Errorf("oodb: relational source lacks SUPPLIER")
	}
	bySNO := map[int64]OID{}
	for i := 0; i < sup.Len(); i++ {
		r := sup.Row(i)
		oid, err := s.Insert("SUPPLIER", map[string]value.Value{
			"SNO": r[0], "SNAME": r[1], "SCITY": r[2], "BUDGET": r[3], "STATUS": r[4],
		}, 0)
		if err != nil {
			return nil, err
		}
		bySNO[r[0].AsInt()] = oid
	}
	if pt, ok := db.Table("PARTS"); ok {
		for i := 0; i < pt.Len(); i++ {
			r := pt.Row(i)
			parent, ok := bySNO[r[0].AsInt()]
			if !ok {
				return nil, fmt.Errorf("oodb: PARTS row %v references missing supplier", r)
			}
			if _, err := s.Insert("PARTS", map[string]value.Value{
				"PNO": r[1], "PNAME": r[2], "OEM-PNO": r[3], "COLOR": r[4],
			}, parent); err != nil {
				return nil, err
			}
		}
	}
	if at, ok := db.Table("AGENTS"); ok {
		for i := 0; i < at.Len(); i++ {
			r := at.Row(i)
			parent, ok := bySNO[r[0].AsInt()]
			if !ok {
				return nil, fmt.Errorf("oodb: AGENTS row %v references missing supplier", r)
			}
			if _, err := s.Insert("AGENT", map[string]value.Value{
				"ANO": r[1], "ANAME": r[2], "ACITY": r[3],
			}, parent); err != nil {
				return nil, err
			}
		}
	}
	if err := s.CreateIndex("SUPPLIER", "SNO"); err != nil {
		return nil, err
	}
	if err := s.CreateIndex("PARTS", "PNO"); err != nil {
		return nil, err
	}
	return s, nil
}
