package oodb

import (
	"sort"
	"testing"

	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

func testStore(t testing.TB, suppliers, fanout int) *Store {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Suppliers = suppliers
	cfg.PartsPerSupplier = fanout
	rel, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromRelational(rel)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	return s
}

func TestInsertAndFetch(t *testing.T) {
	sup, parts, agent := SupplierSchema()
	s := NewStore(sup, parts, agent)
	po, err := s.Insert("SUPPLIER", map[string]value.Value{"SNO": value.Int(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	co, err := s.Insert("PARTS", map[string]value.Value{"PNO": value.Int(1)}, po)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Fetch(co)
	if err != nil {
		t.Fatal(err)
	}
	if o.Parent != po {
		t.Error("child→parent pointer wrong")
	}
	if s.Stats.Fetches != 1 {
		t.Errorf("fetches = %d", s.Stats.Fetches)
	}
	if _, err := s.Fetch(999); err == nil {
		t.Error("dangling OID should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	sup, parts, agent := SupplierSchema()
	s := NewStore(sup, parts, agent)
	if _, err := s.Insert("NOPE", nil, 0); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := s.Insert("PARTS", map[string]value.Value{"PNO": value.Int(1)}, 0); err == nil {
		t.Error("child without parent pointer should fail")
	}
	if _, err := s.Insert("PARTS", map[string]value.Value{"PNO": value.Int(1)}, 42); err == nil {
		t.Error("dangling parent should fail")
	}
	po, _ := s.Insert("SUPPLIER", map[string]value.Value{"SNO": value.Int(1)}, 0)
	ao, err := s.Insert("AGENT", map[string]value.Value{"ANO": value.Int(1)}, po)
	if err != nil {
		t.Fatal(err)
	}
	// Parent of PARTS must be SUPPLIER, not AGENT.
	if _, err := s.Insert("PARTS", map[string]value.Value{"PNO": value.Int(1)}, ao); err == nil {
		t.Error("wrong parent class should fail")
	}
}

func TestIndexLookup(t *testing.T) {
	s := testStore(t, 20, 5)
	entries, err := s.IndexLookup("PARTS", "PNO", value.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 { // one part PNO=3 per supplier
		t.Errorf("entries = %d, want 20", len(entries))
	}
	if s.Stats.IndexProbes != 1 || s.Stats.IndexEntries != 20 {
		t.Errorf("stats = %s", s.Stats.String())
	}
	if _, err := s.IndexLookup("PARTS", "COLOR", value.String_("RED")); err == nil {
		t.Error("missing index should fail")
	}
}

func TestIndexRange(t *testing.T) {
	s := testStore(t, 30, 1)
	entries, err := s.IndexRange("SUPPLIER", "SNO", value.Int(10), value.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 {
		t.Errorf("entries = %d, want 11", len(entries))
	}
	var keys []int64
	for _, e := range entries {
		keys = append(keys, e.key.AsInt())
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("range scan must be key-ordered")
	}
	// Empty range.
	entries, _ = s.IndexRange("SUPPLIER", "SNO", value.Int(50), value.Int(40))
	if len(entries) != 0 {
		t.Error("inverted range should be empty")
	}
}

func TestCreateIndexValidation(t *testing.T) {
	sup, parts, agent := SupplierSchema()
	s := NewStore(sup, parts, agent)
	if err := s.CreateIndex("NOPE", "X"); err == nil {
		t.Error("unknown class should fail")
	}
	if err := s.CreateIndex("PARTS", "NOPE"); err == nil {
		t.Error("unknown field should fail")
	}
	// Index built after inserts still sees existing objects.
	po, _ := s.Insert("SUPPLIER", map[string]value.Value{"SNO": value.Int(7)}, 0)
	if err := s.CreateIndex("SUPPLIER", "SNO"); err != nil {
		t.Fatal(err)
	}
	entries, err := s.IndexLookup("SUPPLIER", "SNO", value.Int(7))
	if err != nil || len(entries) != 1 || entries[0].oid != po {
		t.Errorf("late index build missed object: %v, %v", entries, err)
	}
}

// Example 11: both strategies compute the same answer.
func TestStrategiesAgree(t *testing.T) {
	s := testStore(t, 50, 5)
	for _, rng := range [][2]int64{{10, 20}, {1, 50}, {45, 60}, {90, 99}} {
		cd, err := s.ChildDrivenJoin(value.Int(2), value.Int(rng[0]), value.Int(rng[1]))
		if err != nil {
			t.Fatal(err)
		}
		pd, err := s.ParentDrivenExists(value.Int(2), value.Int(rng[0]), value.Int(rng[1]))
		if err != nil {
			t.Fatal(err)
		}
		if len(cd.Output) != len(pd.Output) {
			t.Fatalf("range %v: child-driven %d rows vs parent-driven %d",
				rng, len(cd.Output), len(pd.Output))
		}
		// Same suppliers (compare SNO sets).
		a := snoSet(cd.Output)
		b := snoSet(pd.Output)
		for k := range a {
			if !b[k] {
				t.Fatalf("range %v: SNO %d missing from parent-driven", rng, k)
			}
		}
	}
}

func snoSet(objs []*Object) map[int64]bool {
	out := map[int64]bool{}
	for _, o := range objs {
		out[o.Get("SNO").AsInt()] = true
	}
	return out
}

// Example 11's cost claim: with a selective parent range, the
// parent-driven strategy fetches far fewer objects.
func TestParentDrivenFetchesFewerWhenSelective(t *testing.T) {
	s := testStore(t, 100, 5)
	// Range 10..20 (11 suppliers of 100); every supplier has PNO 2.
	cd, err := s.ChildDrivenJoin(value.Int(2), value.Int(10), value.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := s.ParentDrivenExists(value.Int(2), value.Int(10), value.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	// Child-driven: 100 part fetches + 100 supplier fetches.
	if cd.Stats.Fetches != 200 {
		t.Errorf("child-driven fetches = %d, want 200", cd.Stats.Fetches)
	}
	// Parent-driven: 11 supplier fetches only.
	if pd.Stats.Fetches != 11 {
		t.Errorf("parent-driven fetches = %d, want 11", pd.Stats.Fetches)
	}
}

// With an unselective range the child-driven strategy is no longer
// dominated in index work — the "depending on the objects' selectivity"
// caveat of §6.2.
func TestSelectivityCrossover(t *testing.T) {
	s := testStore(t, 100, 5)
	cd, err := s.ChildDrivenJoin(value.Int(2), value.Int(1), value.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := s.ParentDrivenExists(value.Int(2), value.Int(1), value.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	// Fetch counts still favor parent-driven (100 vs 200)...
	if pd.Stats.Fetches >= cd.Stats.Fetches {
		t.Errorf("fetches: pd=%d cd=%d", pd.Stats.Fetches, cd.Stats.Fetches)
	}
	// ...but its index-entry traffic is quadratic in the range size
	// (one full PNO probe per supplier), far above child-driven's.
	if pd.Stats.IndexEntries <= cd.Stats.IndexEntries {
		t.Errorf("index entries: pd=%d cd=%d — expected the caveat to show",
			pd.Stats.IndexEntries, cd.Stats.IndexEntries)
	}
}

func TestExtent(t *testing.T) {
	s := testStore(t, 10, 3)
	if len(s.Extent("SUPPLIER")) != 10 || len(s.Extent("PARTS")) != 30 {
		t.Errorf("extents = %d, %d", len(s.Extent("SUPPLIER")), len(s.Extent("PARTS")))
	}
	if len(s.Extent("NOPE")) != 0 {
		t.Error("unknown extent should be empty")
	}
}
