package norm

import (
	"strings"
	"testing"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
)

func expr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestNNFComparisons(t *testing.T) {
	cases := []struct{ in, want string }{
		{"NOT (A = 1)", "A <> 1"},
		{"NOT (A <> 1)", "A = 1"},
		{"NOT (A < 1)", "A >= 1"},
		{"NOT (A <= 1)", "A > 1"},
		{"NOT (A > 1)", "A <= 1"},
		{"NOT (A >= 1)", "A < 1"},
		{"NOT (NOT (A = 1))", "A = 1"},
	}
	for _, c := range cases {
		if got := NNF(expr(t, c.in)).SQL(); got != c.want {
			t.Errorf("NNF(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNNFDeMorgan(t *testing.T) {
	got := NNF(expr(t, "NOT (A = 1 AND B = 2)")).SQL()
	if got != "A <> 1 OR B <> 2" {
		t.Errorf("NNF = %q", got)
	}
	got = NNF(expr(t, "NOT (A = 1 OR B = 2)")).SQL()
	if got != "A <> 1 AND B <> 2" {
		t.Errorf("NNF = %q", got)
	}
}

func TestNNFBetweenAndIn(t *testing.T) {
	got := NNF(expr(t, "A BETWEEN 1 AND 9")).SQL()
	if got != "A >= 1 AND A <= 9" {
		t.Errorf("BETWEEN expansion = %q", got)
	}
	got = NNF(expr(t, "A NOT BETWEEN 1 AND 9")).SQL()
	if got != "A < 1 OR A > 9" {
		t.Errorf("NOT BETWEEN expansion = %q", got)
	}
	got = NNF(expr(t, "NOT (A BETWEEN 1 AND 9)")).SQL()
	if got != "A < 1 OR A > 9" {
		t.Errorf("NOT(BETWEEN) expansion = %q", got)
	}
	got = NNF(expr(t, "SCITY IN ('A', 'B')")).SQL()
	if got != "SCITY = 'A' OR SCITY = 'B'" {
		t.Errorf("IN expansion = %q", got)
	}
	got = NNF(expr(t, "SCITY NOT IN ('A', 'B')")).SQL()
	if got != "SCITY <> 'A' AND SCITY <> 'B'" {
		t.Errorf("NOT IN expansion = %q", got)
	}
}

func TestNNFIsNullAndExists(t *testing.T) {
	if got := NNF(expr(t, "NOT (A IS NULL)")).SQL(); got != "A IS NOT NULL" {
		t.Errorf("NNF = %q", got)
	}
	if got := NNF(expr(t, "NOT (A IS NOT NULL)")).SQL(); got != "A IS NULL" {
		t.Errorf("NNF = %q", got)
	}
	e := NNF(expr(t, "NOT EXISTS (SELECT * FROM T WHERE T.A = 1)"))
	if ex, ok := e.(*ast.Exists); !ok || !ex.Negated {
		t.Errorf("NNF of NOT EXISTS = %T", e)
	}
	e = NNF(expr(t, "NOT (NOT EXISTS (SELECT * FROM T WHERE T.A = 1))"))
	if ex, ok := e.(*ast.Exists); !ok || ex.Negated {
		t.Errorf("double-negated EXISTS = %T", e)
	}
}

func TestNNFBoolLit(t *testing.T) {
	if got := NNF(expr(t, "NOT (TRUE)")).SQL(); got != "FALSE" {
		t.Errorf("NNF = %q", got)
	}
}

func TestNNFDoesNotMutateInput(t *testing.T) {
	in := expr(t, "NOT (A = 1 AND B BETWEEN 2 AND 3)")
	before := in.SQL()
	_ = NNF(in)
	if in.SQL() != before {
		t.Error("NNF mutated its input")
	}
}

func TestCNFSimple(t *testing.T) {
	// (A=1 OR B=2) AND C=3 is already CNF.
	cs, err := CNF(expr(t, "(A = 1 OR B = 2) AND C = 3"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(cs[0]) != 2 || len(cs[1]) != 1 {
		t.Fatalf("clauses = %s", SQLClauses(cs))
	}
}

func TestCNFDistribution(t *testing.T) {
	// A=1 OR (B=2 AND C=3) → (A=1 OR B=2) AND (A=1 OR C=3).
	cs, err := CNF(expr(t, "A = 1 OR (B = 2 AND C = 3)"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(cs[0]) != 2 || len(cs[1]) != 2 {
		t.Fatalf("clauses = %s", SQLClauses(cs))
	}
	s := SQLClauses(cs)
	if !strings.Contains(s, "A = 1 OR B = 2") || !strings.Contains(s, "A = 1 OR C = 3") {
		t.Errorf("distribution wrong: %s", s)
	}
}

func TestCNFNil(t *testing.T) {
	cs, err := CNF(nil, 10)
	if err != nil || cs != nil {
		t.Errorf("CNF(nil) = %v, %v", cs, err)
	}
	if SQLClauses(nil) != "TRUE" {
		t.Error("empty conjunction should print TRUE")
	}
}

func TestCNFSizeCap(t *testing.T) {
	// (a1 AND b1) OR (a2 AND b2) OR ... blows up multiplicatively.
	src := "(A1 = 1 AND B1 = 1)"
	for i := 2; i <= 8; i++ {
		src += " OR (A" + string(rune('0'+i)) + " = 1 AND B" + string(rune('0'+i)) + " = 1)"
	}
	if _, err := CNF(expr(t, src), 16); err != ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
	if _, err := CNF(expr(t, src), 100000); err != nil {
		t.Errorf("large cap should succeed, got %v", err)
	}
}

func TestDNF(t *testing.T) {
	ts, err := DNF(expr(t, "(A = 1 OR B = 2) AND C = 3"), 100)
	if err != nil {
		t.Fatal(err)
	}
	// (A=1 AND C=3) OR (B=2 AND C=3).
	if len(ts) != 2 || len(ts[0]) != 2 || len(ts[1]) != 2 {
		t.Fatalf("terms = %v", ts)
	}
	ts, err = DNF(nil, 10)
	if err != nil || len(ts) != 1 || len(ts[0]) != 0 {
		t.Errorf("DNF(nil) = %v, %v", ts, err)
	}
	// Cap.
	src := "(A = 1 OR B = 1) AND (C = 1 OR D = 1) AND (E = 1 OR F = 1)"
	if _, err := DNF(expr(t, src), 4); err != ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}

// CNF/DNF must preserve 3VL semantics; cross-validated exhaustively in
// the engine package where an evaluator exists. Here we pin structure
// only.

func TestSQLClauses(t *testing.T) {
	cs, _ := CNF(expr(t, "A = 1 AND (B = 2 OR C = 3)"), 10)
	got := SQLClauses(cs)
	if got != "A = 1 AND (B = 2 OR C = 3)" {
		t.Errorf("SQLClauses = %q", got)
	}
}
