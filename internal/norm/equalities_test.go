package norm

import (
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// testCatalog builds the paper's SUPPLIER/PARTS schema.
func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	sup, err := catalog.NewTable("SUPPLIER", []catalog.Column{
		{Name: "SNO", Type: value.KindInt},
		{Name: "SNAME", Type: value.KindString},
		{Name: "SCITY", Type: value.KindString},
		{Name: "BUDGET", Type: value.KindInt},
		{Name: "STATUS", Type: value.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sup.AddKey(true, "SNO"); err != nil {
		t.Fatal(err)
	}
	parts, err := catalog.NewTable("PARTS", []catalog.Column{
		{Name: "SNO", Type: value.KindInt},
		{Name: "PNO", Type: value.KindInt},
		{Name: "PNAME", Type: value.KindString},
		{Name: "OEM-PNO", Type: value.KindInt},
		{Name: "COLOR", Type: value.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := parts.AddKey(true, "SNO", "PNO"); err != nil {
		t.Fatal(err)
	}
	if err := parts.AddKey(false, "OEM-PNO"); err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*catalog.Table{sup, parts} {
		if err := c.Define(tb); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func twoTableScope(t *testing.T) *catalog.Scope {
	t.Helper()
	c := testCatalog(t)
	s, err := catalog.NewScope(c, []ast.TableRef{
		{Table: "SUPPLIER", Alias: "S"},
		{Table: "PARTS", Alias: "P"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestClassifyType1(t *testing.T) {
	s := twoTableScope(t)
	cases := []struct {
		src string
		col string
	}{
		{"P.SNO = 7", "P.SNO"},
		{"7 = P.SNO", "P.SNO"},
		{"P.SNO = :SUPPLIER-NO", "P.SNO"},
		{"COLOR = 'RED'", "P.COLOR"}, // unqualified, unambiguous
	}
	for _, c := range cases {
		a := Classify(expr(t, c.src), s)
		if a.Kind != EqConst || a.Col != c.col {
			t.Errorf("Classify(%q) = %+v, want EqConst %s", c.src, a, c.col)
		}
	}
}

func TestClassifyType2(t *testing.T) {
	s := twoTableScope(t)
	a := Classify(expr(t, "S.SNO = P.SNO"), s)
	if a.Kind != EqCol || a.Col != "S.SNO" || a.Col2 != "P.SNO" {
		t.Errorf("Classify = %+v", a)
	}
}

func TestClassifyOther(t *testing.T) {
	s := twoTableScope(t)
	others := []string{
		"S.SNO < 10",          // non-equality
		"S.SNO <> 3",          // non-equality
		"S.SNO = NULL",        // NULL never binds
		"S.SNAME IS NOT NULL", // negated IS NULL binds nothing
		"5 = 5",               // no columns
		":A = :B",             // no columns
		"EXISTS (SELECT * FROM PARTS P2 WHERE P2.SNO = 1)",
	}
	for _, src := range others {
		if a := Classify(expr(t, src), s); a.Kind != Other {
			t.Errorf("Classify(%q) = %v, want Other", src, a.Kind)
		}
	}
}

func TestClassifyIsNull(t *testing.T) {
	s := twoTableScope(t)
	a := Classify(expr(t, "P.OEM-PNO IS NULL"), s)
	if a.Kind != IsNullAtom || a.Col != "P.OEM-PNO" {
		t.Errorf("Classify = %+v", a)
	}
}

func TestClassifyCorrelatedEquality(t *testing.T) {
	// Inside a subquery over PARTS with SUPPLIER in the outer scope,
	// S.SNO = P.SNO is Type 1 for the inner block: S.SNO is constant.
	c := testCatalog(t)
	outer, err := catalog.NewScope(c, []ast.TableRef{{Table: "SUPPLIER", Alias: "S"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := catalog.NewScope(c, []ast.TableRef{{Table: "PARTS", Alias: "P"}}, outer)
	if err != nil {
		t.Fatal(err)
	}
	a := Classify(expr(t, "S.SNO = P.SNO"), inner)
	if a.Kind != EqConst || a.Col != "P.SNO" {
		t.Errorf("correlated Classify = %+v, want EqConst P.SNO", a)
	}
	a = Classify(expr(t, "P.PNO = S.SNO"), inner)
	if a.Kind != EqConst || a.Col != "P.PNO" {
		t.Errorf("correlated Classify (flipped) = %+v", a)
	}
}

func TestExtractPaperExample5(t *testing.T) {
	// WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO (Example 4/5).
	s := twoTableScope(t)
	e := expr(t, "P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO")
	eq := Extract(e, s, ExtractOptions{})
	if _, ok := eq.ConstCols["P.SNO"]; !ok {
		t.Error("P.SNO should be bound to a constant")
	}
	if len(eq.Pairs) != 1 || eq.Pairs[0] != [2]string{"S.SNO", "P.SNO"} {
		t.Errorf("pairs = %v", eq.Pairs)
	}
	if eq.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", eq.Dropped)
	}

	// Line 13-16 trace: V = {S.SNO, S.SNAME, P.PNO, P.PNAME} ∪ {P.SNO},
	// closure adds nothing new beyond S.SNO (already in).
	v := eq.BoundColumns([]string{"S.SNO", "S.SNAME", "P.PNO", "P.PNAME"})
	for _, want := range []string{"S.SNO", "S.SNAME", "P.PNO", "P.PNAME", "P.SNO"} {
		if !v[want] {
			t.Errorf("V missing %s; V = %v", want, SortedColumns(v))
		}
	}
	if len(v) != 5 {
		t.Errorf("V = %v, want exactly 5 members", SortedColumns(v))
	}
}

func TestExtractTransitiveClosure(t *testing.T) {
	// S.SNO = P.SNO and P.SNO = P.PNO: from A = {S.SNO} the closure
	// must reach P.SNO then P.PNO.
	s := twoTableScope(t)
	e := expr(t, "S.SNO = P.SNO AND P.SNO = P.PNO")
	eq := Extract(e, s, ExtractOptions{})
	v := eq.BoundColumns([]string{"S.SNO"})
	if !v["P.SNO"] || !v["P.PNO"] {
		t.Errorf("closure incomplete: %v", SortedColumns(v))
	}
}

func TestExtractDropsDisjunctions(t *testing.T) {
	// X = 5 OR X = 10 must be dropped (Algorithm 1 line 8).
	s := twoTableScope(t)
	e := expr(t, "(S.SNO = 5 OR S.SNO = 10) AND S.SNAME = 'W'")
	eq := Extract(e, s, ExtractOptions{})
	if _, bound := eq.ConstCols["S.SNO"]; bound {
		t.Error("disjunctively constrained column must not be bound")
	}
	if _, bound := eq.ConstCols["S.SNAME"]; !bound {
		t.Error("the conjunct S.SNAME='W' must still bind")
	}
	if eq.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", eq.Dropped)
	}
}

func TestExtractDropsNonEqualities(t *testing.T) {
	s := twoTableScope(t)
	e := expr(t, "S.SNO >= 1 AND S.SNO <= 499 AND S.SNAME = 'W'")
	eq := Extract(e, s, ExtractOptions{})
	if len(eq.ConstCols) != 1 {
		t.Errorf("ConstCols = %v", eq.ConstCols)
	}
	if eq.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", eq.Dropped)
	}
}

func TestExtractBetweenDegenerate(t *testing.T) {
	// BETWEEN expands to >= and <=; no equality information results,
	// even for the degenerate X BETWEEN 5 AND 5 (kept conservative).
	s := twoTableScope(t)
	eq := Extract(expr(t, "S.SNO BETWEEN 5 AND 5"), s, ExtractOptions{})
	if len(eq.ConstCols) != 0 {
		t.Errorf("ConstCols = %v", eq.ConstCols)
	}
}

func TestExtractIsNullExtension(t *testing.T) {
	s := twoTableScope(t)
	e := expr(t, "P.OEM-PNO IS NULL AND S.SNO = P.SNO")
	off := Extract(e, s, ExtractOptions{})
	if len(off.NullCols) != 0 || off.Dropped != 1 {
		t.Errorf("without extension: NullCols=%v dropped=%d", off.NullCols, off.Dropped)
	}
	on := Extract(e, s, ExtractOptions{BindIsNull: true})
	if !on.NullCols["P.OEM-PNO"] || on.Dropped != 0 {
		t.Errorf("with extension: NullCols=%v dropped=%d", on.NullCols, on.Dropped)
	}
	v := on.BoundColumns(nil)
	if !v["P.OEM-PNO"] {
		t.Error("IS NULL column should be bound")
	}
}

func TestExtractSelfEqualityIgnored(t *testing.T) {
	s := twoTableScope(t)
	eq := Extract(expr(t, "S.SNO = S.SNO"), s, ExtractOptions{})
	if len(eq.Pairs) != 0 {
		t.Errorf("self equality should produce no pair: %v", eq.Pairs)
	}
}

func TestExtractNilAndTooLarge(t *testing.T) {
	s := twoTableScope(t)
	eq := Extract(nil, s, ExtractOptions{})
	if len(eq.ConstCols) != 0 || len(eq.Pairs) != 0 {
		t.Error("nil predicate should extract nothing")
	}
	// Build a predicate whose CNF exceeds a tiny cap.
	src := "(S.SNO = 1 AND S.SNAME = 'a') OR (S.SNO = 2 AND S.SNAME = 'b')"
	eq = Extract(expr(t, src), s, ExtractOptions{MaxClauses: 2})
	if len(eq.ConstCols) != 0 || eq.Dropped != -1 {
		t.Errorf("over-cap extraction should contribute nothing: %+v", eq)
	}
}

func TestAtomKindString(t *testing.T) {
	if EqConst.String() == "" || EqCol.String() == "" ||
		IsNullAtom.String() == "" || Other.String() == "" {
		t.Error("AtomKind strings must be non-empty")
	}
}
