package norm

import (
	"hash/fnv"

	"uniqopt/internal/sql/ast"
)

// Fingerprinting of normalized forms. The analysis cache keys verdicts
// and extracted equalities on a 64-bit hash of the *negation normal
// form* rendering of an expression, so predicates that differ only in
// the placement of NOT (e.g. NOT (A <> 1) vs A = 1) share a cache
// slot. AST SQL renderings are deterministic and round-trip through
// the parser (a pinned property), which makes them a sound hash basis.

// Fingerprint hashes the NNF rendering of e. A nil expression (absent
// WHERE clause) has the fixed fingerprint of the empty string.
func Fingerprint(e ast.Expr) uint64 {
	h := fnv.New64a()
	if e != nil {
		h.Write([]byte(NNF(e).SQL()))
	}
	return h.Sum64()
}

// FingerprintQuery hashes the rendering of a whole query (SELECT or
// set operation). Queries are not NNF-rewritten — their predicate
// normalization happens per block during analysis — but the rendering
// is canonical for a given AST.
func FingerprintQuery(q ast.Query) uint64 {
	h := fnv.New64a()
	h.Write([]byte(q.SQL()))
	return h.Sum64()
}

// FingerprintStrings hashes a sequence of strings with separators, for
// composing cache keys from context (scope signatures, option sets).
func FingerprintStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Clone returns a deep-enough copy of eq for a cache to hand out:
// mutating the copy's maps or Pairs slice leaves the original intact.
// The ast.Expr values are shared — extraction never mutates them.
func (eq Equalities) Clone() Equalities {
	out := Equalities{
		ConstCols: make(map[string]ast.Expr, len(eq.ConstCols)),
		NullCols:  make(map[string]bool, len(eq.NullCols)),
		Pairs:     append([][2]string(nil), eq.Pairs...),
		Dropped:   eq.Dropped,
	}
	for k, v := range eq.ConstCols {
		out.ConstCols[k] = v
	}
	for k := range eq.NullCols {
		out.NullCols[k] = true
	}
	return out
}
