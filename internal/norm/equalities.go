package norm

import (
	"sort"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
)

// AtomKind classifies an atomic condition for Algorithm 1.
type AtomKind uint8

// Atom kinds. EqConst and EqCol are the paper's Type 1 and Type 2
// conditions; IsNullAtom supports the true-interpreted-predicate
// extension (a column forced to NULL agrees across all qualifying rows
// under ≐); Other covers everything Algorithm 1 discards.
const (
	Other AtomKind = iota
	EqConst
	EqCol
	IsNullAtom
)

// String names the atom kind.
func (k AtomKind) String() string {
	switch k {
	case EqConst:
		return "Type1(col=const)"
	case EqCol:
		return "Type2(col=col)"
	case IsNullAtom:
		return "IsNull"
	default:
		return "Other"
	}
}

// Atom is a classified atomic condition. Columns are canonical
// "CORRELATION.COLUMN" strings resolved at depth 0 of the given scope;
// a reference that resolves to an enclosing block is reported in
// OuterCols instead (it acts as a constant within the local block).
type Atom struct {
	Kind  AtomKind
	Col   string   // EqConst, IsNullAtom, EqCol (first column)
	Col2  string   // EqCol only (second column)
	Const ast.Expr // EqConst only: the literal or host variable
}

// Classify determines the Algorithm-1 type of a single leaf predicate
// with respect to scope. Equality between a local column and an outer
// block's column is Type 1 (the outer value is fixed for the duration
// of the local block — exactly how Theorem 2 treats correlation
// predicates). Equality with NULL is classified Other (it can never be
// satisfied and carries no binding).
func Classify(e ast.Expr, scope *catalog.Scope) Atom {
	switch x := e.(type) {
	case *ast.Compare:
		if x.Op != ast.EqOp {
			return Atom{Kind: Other}
		}
		lc, lIsLocal, lOK := resolveSide(x.L, scope)
		rc, rIsLocal, rOK := resolveSide(x.R, scope)
		lConst := isConstant(x.L)
		rConst := isConstant(x.R)
		switch {
		case lOK && lIsLocal && rConst:
			return Atom{Kind: EqConst, Col: lc, Const: x.R}
		case rOK && rIsLocal && lConst:
			return Atom{Kind: EqConst, Col: rc, Const: x.L}
		case lOK && lIsLocal && rOK && rIsLocal:
			return Atom{Kind: EqCol, Col: lc, Col2: rc}
		case lOK && lIsLocal && rOK && !rIsLocal:
			// local = outer-block column: the outer column is constant
			// within the local block.
			return Atom{Kind: EqConst, Col: lc, Const: x.R}
		case rOK && rIsLocal && lOK && !lIsLocal:
			return Atom{Kind: EqConst, Col: rc, Const: x.L}
		}
		return Atom{Kind: Other}
	case *ast.IsNull:
		if x.Negated {
			return Atom{Kind: Other}
		}
		if c, local, ok := resolveSide(x.X, scope); ok && local {
			return Atom{Kind: IsNullAtom, Col: c}
		}
		return Atom{Kind: Other}
	default:
		return Atom{Kind: Other}
	}
}

// resolveSide resolves an operand to a canonical column name. local
// reports whether it resolved at depth 0.
func resolveSide(e ast.Expr, scope *catalog.Scope) (col string, local, ok bool) {
	ref, isRef := e.(*ast.ColumnRef)
	if !isRef {
		return "", false, false
	}
	r, err := scope.Resolve(ref)
	if err != nil {
		return "", false, false
	}
	return r.Qualified(scope), r.Depth == 0, true
}

// isConstant reports whether e is a literal or host variable — a value
// fixed for the whole execution of the query block. NULL literals are
// excluded: v = NULL is never True and binds nothing.
func isConstant(e ast.Expr) bool {
	switch e.(type) {
	case *ast.IntLit, *ast.StringLit, *ast.BoolLit, *ast.HostVar:
		return true
	default:
		return false
	}
}

// Equalities is the binding information Algorithm 1 extracts from the
// conjunctive normal form of a predicate (lines 5–9): only unit
// clauses (non-disjunctive conjuncts) contribute.
type Equalities struct {
	// ConstCols are columns equated to a constant or host variable
	// (Type 1). Values are one witnessing constant expression.
	ConstCols map[string]ast.Expr
	// Pairs are Type 2 column-column equalities.
	Pairs [][2]string
	// NullCols are columns forced NULL by an IS NULL conjunct
	// (extension; only populated when opts.BindIsNull).
	NullCols map[string]bool
	// Dropped counts conjuncts Algorithm 1 discarded (non-equality
	// atoms and disjunctive clauses) — the measure of how much of the
	// predicate the sufficient condition ignores.
	Dropped int
}

// ExtractOptions tune the extraction.
type ExtractOptions struct {
	// BindIsNull enables the sound extension where an IS NULL conjunct
	// marks its column as agreeing across qualifying rows under ≐.
	// (Listed as future work — "transformations based on
	// true-interpreted predicates" — in the paper's Section 8.)
	BindIsNull bool
	// MaxClauses caps the CNF conversion; beyond it the predicate is
	// treated as contributing no equalities at all.
	MaxClauses int
}

// DefaultMaxClauses is the CNF size cap used when MaxClauses is zero.
const DefaultMaxClauses = 256

// Extract computes the Type 1 / Type 2 equality information of
// predicate e. Disjunctive clauses and non-equality atoms are dropped,
// exactly as Algorithm 1 lines 6–9 prescribe. (Retaining per-disjunct
// information and testing each DNF term separately — as the paper's
// correctness argument sketches — is unsound in general; see the
// DISJUNCTION UNSOUNDNESS note in internal/core.)
func Extract(e ast.Expr, scope *catalog.Scope, opts ExtractOptions) Equalities {
	eq := Equalities{
		ConstCols: make(map[string]ast.Expr),
		NullCols:  make(map[string]bool),
	}
	if e == nil {
		return eq
	}
	max := opts.MaxClauses
	if max <= 0 {
		max = DefaultMaxClauses
	}
	clauses, err := CNF(e, max)
	if err != nil {
		// Predicate too complex: contribute nothing (conservative).
		eq.Dropped = -1
		return eq
	}
	for _, cl := range clauses {
		if len(cl) != 1 {
			eq.Dropped++ // disjunctive clause, Algorithm 1 line 8
			continue
		}
		a := Classify(cl[0], scope)
		switch a.Kind {
		case EqConst:
			if _, dup := eq.ConstCols[a.Col]; !dup {
				eq.ConstCols[a.Col] = a.Const
			}
		case EqCol:
			if a.Col != a.Col2 {
				eq.Pairs = append(eq.Pairs, [2]string{a.Col, a.Col2})
			}
		case IsNullAtom:
			if opts.BindIsNull {
				eq.NullCols[a.Col] = true
			} else {
				eq.Dropped++
			}
		default:
			eq.Dropped++ // Algorithm 1 line 7
		}
	}
	return eq
}

// BoundColumns computes Algorithm 1's set V (lines 13–16): the
// projection columns, plus columns equated to constants, plus the
// transitive closure over column-column equalities, plus (with the
// extension) columns forced NULL.
func (eq Equalities) BoundColumns(projection []string) map[string]bool {
	v := make(map[string]bool, len(projection)+len(eq.ConstCols))
	for _, c := range projection {
		v[c] = true
	}
	for c := range eq.ConstCols {
		v[c] = true
	}
	for c := range eq.NullCols {
		v[c] = true
	}
	// Transitive closure over Type 2 equalities: iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, p := range eq.Pairs {
			switch {
			case v[p[0]] && !v[p[1]]:
				v[p[1]] = true
				changed = true
			case v[p[1]] && !v[p[0]]:
				v[p[0]] = true
				changed = true
			}
		}
	}
	return v
}

// SortedColumns returns the members of a column set in sorted order,
// for deterministic diagnostics.
func SortedColumns(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
