// Package norm normalizes WHERE-clause predicates for the uniqueness
// analysis of Paulley & Larson (ICDE 1994).
//
// Algorithm 1 of the paper operates on a conjunctive normal form of
// the query predicate and classifies atomic conditions into:
//
//	Type 1:  v = c      (column = constant or host variable)
//	Type 2:  v1 = v2    (column = column)
//
// This package provides negation normal form (NNF) with BETWEEN/IN
// expansion, CNF and DNF conversion with an explicit size cap (the
// conversions are exponential in the worst case; the cap makes the
// analyzer fail conservatively instead of blowing up), atomic-condition
// classification, and the transitive-closure computation over Type 2
// equalities (Algorithm 1, lines 13–16).
package norm

import (
	"fmt"

	"uniqopt/internal/sql/ast"
)

// NNF rewrites e into negation normal form: NOT is pushed onto atoms
// (flipping comparison operators and IS NULL / BETWEEN / IN / EXISTS
// negation flags), double negation is removed, and BETWEEN and IN are
// expanded into comparisons. The input is not modified.
//
// All rewrites are exact under SQL's three-valued logic:
// NOT (a = b) ≡ a <> b (both Unknown on NULL), De Morgan's laws hold
// in Kleene logic, and X BETWEEN L AND H ≡ X >= L AND X <= H.
func NNF(e ast.Expr) ast.Expr {
	return nnf(e, false)
}

func nnf(e ast.Expr, negate bool) ast.Expr {
	switch x := e.(type) {
	case *ast.Not:
		return nnf(x.X, !negate)
	case *ast.And:
		l, r := nnf(x.L, negate), nnf(x.R, negate)
		if negate {
			return &ast.Or{L: l, R: r}
		}
		return &ast.And{L: l, R: r}
	case *ast.Or:
		l, r := nnf(x.L, negate), nnf(x.R, negate)
		if negate {
			return &ast.And{L: l, R: r}
		}
		return &ast.Or{L: l, R: r}
	case *ast.Compare:
		op := x.Op
		if negate {
			op = negateOp(op)
		}
		return &ast.Compare{Op: op, L: ast.CloneExpr(x.L), R: ast.CloneExpr(x.R)}
	case *ast.Between:
		// X BETWEEN lo AND hi ≡ X >= lo AND X <= hi; negation flips it
		// into X < lo OR X > hi. The Negated field composes with the
		// incoming negation.
		neg := x.Negated != negate
		xx1, xx2 := ast.CloneExpr(x.X), ast.CloneExpr(x.X)
		lo, hi := ast.CloneExpr(x.Lo), ast.CloneExpr(x.Hi)
		if neg {
			return &ast.Or{
				L: &ast.Compare{Op: ast.LtOp, L: xx1, R: lo},
				R: &ast.Compare{Op: ast.GtOp, L: xx2, R: hi},
			}
		}
		return &ast.And{
			L: &ast.Compare{Op: ast.GeOp, L: xx1, R: lo},
			R: &ast.Compare{Op: ast.LeOp, L: xx2, R: hi},
		}
	case *ast.InList:
		// X IN (a, b, ...) ≡ X = a OR X = b OR ...; negation gives the
		// conjunction of <>.
		neg := x.Negated != negate
		var parts []ast.Expr
		for _, item := range x.List {
			op := ast.EqOp
			if neg {
				op = ast.NeOp
			}
			parts = append(parts, &ast.Compare{
				Op: op, L: ast.CloneExpr(x.X), R: ast.CloneExpr(item)})
		}
		if neg {
			return ast.AndAll(parts...)
		}
		return ast.OrAll(parts...)
	case *ast.IsNull:
		// IS [NOT] NULL is two-valued; NOT flips the flag exactly.
		return &ast.IsNull{X: ast.CloneExpr(x.X), Negated: x.Negated != negate}
	case *ast.Exists:
		return &ast.Exists{Query: ast.CloneSelect(x.Query), Negated: x.Negated != negate}
	case *ast.InSubquery:
		return &ast.InSubquery{X: ast.CloneExpr(x.X),
			Query: ast.CloneSelect(x.Query), Negated: x.Negated != negate}
	case *ast.BoolLit:
		return &ast.BoolLit{V: x.V != negate}
	default:
		// Literals, column refs, host vars: negation of a non-boolean
		// leaf cannot occur in well-formed input; clone defensively.
		c := ast.CloneExpr(e)
		if negate {
			return &ast.Not{X: c}
		}
		return c
	}
}

func negateOp(op ast.CompareOp) ast.CompareOp {
	switch op {
	case ast.EqOp:
		return ast.NeOp
	case ast.NeOp:
		return ast.EqOp
	case ast.LtOp:
		return ast.GeOp
	case ast.LeOp:
		return ast.GtOp
	case ast.GtOp:
		return ast.LeOp
	case ast.GeOp:
		return ast.LtOp
	default:
		return op
	}
}

// Clause is a disjunction of leaf expressions. A clause of length one
// is an atomic condition.
type Clause []ast.Expr

// ErrTooLarge is returned when a normal-form conversion exceeds its
// size cap. Callers treat it as "don't know" and proceed without the
// normalized form.
var ErrTooLarge = fmt.Errorf("norm: normal form exceeds size cap")

// CNF converts e (after NNF) into a conjunction of clauses. maxClauses
// bounds the result; conversion beyond the bound returns ErrTooLarge.
// A nil input yields an empty conjunction (TRUE).
func CNF(e ast.Expr, maxClauses int) ([]Clause, error) {
	if e == nil {
		return nil, nil
	}
	return cnf(NNF(e), maxClauses)
}

func cnf(e ast.Expr, maxClauses int) ([]Clause, error) {
	switch x := e.(type) {
	case *ast.And:
		l, err := cnf(x.L, maxClauses)
		if err != nil {
			return nil, err
		}
		r, err := cnf(x.R, maxClauses)
		if err != nil {
			return nil, err
		}
		if len(l)+len(r) > maxClauses {
			return nil, ErrTooLarge
		}
		return append(l, r...), nil
	case *ast.Or:
		// CNF(A ∨ B) = { la ∪ lb : la ∈ CNF(A), lb ∈ CNF(B) }.
		l, err := cnf(x.L, maxClauses)
		if err != nil {
			return nil, err
		}
		r, err := cnf(x.R, maxClauses)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > maxClauses {
			return nil, ErrTooLarge
		}
		out := make([]Clause, 0, len(l)*len(r))
		for _, la := range l {
			for _, lb := range r {
				cl := make(Clause, 0, len(la)+len(lb))
				cl = append(cl, la...)
				cl = append(cl, lb...)
				out = append(out, cl)
			}
		}
		return out, nil
	default:
		return []Clause{{e}}, nil
	}
}

// DNF converts e (after NNF) into a disjunction of conjunctions, with
// the same size cap convention as CNF. A nil input yields a single
// empty conjunct (TRUE).
func DNF(e ast.Expr, maxTerms int) ([][]ast.Expr, error) {
	if e == nil {
		return [][]ast.Expr{{}}, nil
	}
	return dnf(NNF(e), maxTerms)
}

func dnf(e ast.Expr, maxTerms int) ([][]ast.Expr, error) {
	switch x := e.(type) {
	case *ast.Or:
		l, err := dnf(x.L, maxTerms)
		if err != nil {
			return nil, err
		}
		r, err := dnf(x.R, maxTerms)
		if err != nil {
			return nil, err
		}
		if len(l)+len(r) > maxTerms {
			return nil, ErrTooLarge
		}
		return append(l, r...), nil
	case *ast.And:
		l, err := dnf(x.L, maxTerms)
		if err != nil {
			return nil, err
		}
		r, err := dnf(x.R, maxTerms)
		if err != nil {
			return nil, err
		}
		if len(l)*len(r) > maxTerms {
			return nil, ErrTooLarge
		}
		out := make([][]ast.Expr, 0, len(l)*len(r))
		for _, la := range l {
			for _, lb := range r {
				term := make([]ast.Expr, 0, len(la)+len(lb))
				term = append(term, la...)
				term = append(term, lb...)
				out = append(out, term)
			}
		}
		return out, nil
	default:
		return [][]ast.Expr{{e}}, nil
	}
}

// SQLClauses renders clauses for diagnostics.
func SQLClauses(cs []Clause) string {
	if len(cs) == 0 {
		return "TRUE"
	}
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += " AND "
		}
		if len(c) == 1 {
			s += c[0].SQL()
			continue
		}
		s += "(" + ast.OrAll(c...).SQL() + ")"
	}
	return s
}
