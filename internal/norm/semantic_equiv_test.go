package norm

import (
	"fmt"
	"math/rand"
	"testing"

	"uniqopt/internal/eval"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/tvl"
	"uniqopt/internal/value"
)

// randExpr builds a random boolean expression over columns A..D with
// comparisons, BETWEEN, IN, IS NULL, NOT, AND, OR.
func randExpr(r *rand.Rand, depth int) ast.Expr {
	cols := []string{"A", "B", "C", "D"}
	col := func() ast.Expr { return &ast.ColumnRef{Column: cols[r.Intn(len(cols))]} }
	lit := func() ast.Expr { return &ast.IntLit{V: int64(r.Intn(3))} }
	operand := func() ast.Expr {
		if r.Intn(3) == 0 {
			return lit()
		}
		return col()
	}
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			ops := []ast.CompareOp{ast.EqOp, ast.NeOp, ast.LtOp, ast.LeOp, ast.GtOp, ast.GeOp}
			return &ast.Compare{Op: ops[r.Intn(len(ops))], L: operand(), R: operand()}
		case 1:
			return &ast.Between{X: col(), Lo: lit(), Hi: lit(), Negated: r.Intn(2) == 0}
		case 2:
			n := 1 + r.Intn(3)
			list := make([]ast.Expr, n)
			for i := range list {
				list[i] = lit()
			}
			return &ast.InList{X: col(), List: list, Negated: r.Intn(2) == 0}
		default:
			return &ast.IsNull{X: col(), Negated: r.Intn(2) == 0}
		}
	}
	switch r.Intn(3) {
	case 0:
		return &ast.Not{X: randExpr(r, depth-1)}
	case 1:
		return &ast.And{L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	default:
		return &ast.Or{L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	}
}

// envs enumerates all assignments of {NULL, 0, 1, 2} to A..D — 256
// environments, exhaustive for the generator's value space.
func allEnvs() []*eval.Env {
	domain := []value.Value{value.Null, value.Int(0), value.Int(1), value.Int(2)}
	cols := []string{"A", "B", "C", "D"}
	var out []*eval.Env
	var rec func(i int, m map[string]value.Value)
	rec = func(i int, m map[string]value.Value) {
		if i == len(cols) {
			cp := make(map[string]value.Value, len(m))
			for k, v := range m {
				cp[k] = v
			}
			out = append(out, &eval.Env{Cols: cp})
			return
		}
		for _, v := range domain {
			m[cols[i]] = v
			rec(i+1, m)
		}
	}
	rec(0, map[string]value.Value{})
	return out
}

func evalClauses(t *testing.T, cs []Clause, env *eval.Env) tvl.Truth {
	t.Helper()
	out := tvl.True
	for _, cl := range cs {
		c := tvl.False
		for _, atom := range cl {
			tr, err := eval.Truth(atom, env)
			if err != nil {
				t.Fatal(err)
			}
			c = tvl.Or(c, tr)
		}
		out = tvl.And(out, c)
	}
	return out
}

func evalTerms(t *testing.T, ts [][]ast.Expr, env *eval.Env) tvl.Truth {
	t.Helper()
	out := tvl.False
	for _, term := range ts {
		c := tvl.True
		for _, atom := range term {
			tr, err := eval.Truth(atom, env)
			if err != nil {
				t.Fatal(err)
			}
			c = tvl.And(c, tr)
		}
		out = tvl.Or(out, c)
	}
	return out
}

// Property: NNF, CNF, and DNF all preserve three-valued semantics —
// verified exhaustively over every NULL-inclusive environment for each
// random expression.
func TestNormalFormsPreserve3VLSemantics(t *testing.T) {
	envs := allEnvs()
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		e := randExpr(r, 3)
		nnf := NNF(e)
		cs, errC := CNF(e, 1<<20)
		ts, errD := DNF(e, 1<<20)
		if errC != nil || errD != nil {
			t.Fatalf("conversion failed: %v %v (expr %s)", errC, errD, e.SQL())
		}
		for _, env := range envs {
			want, err := eval.Truth(e, env)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := eval.Truth(nnf, env); err != nil || got != want {
				t.Fatalf("NNF changed semantics:\n expr: %s\n nnf:  %s\n env A=%v B=%v C=%v D=%v: %v vs %v (err %v)",
					e.SQL(), nnf.SQL(), env.Cols["A"], env.Cols["B"], env.Cols["C"], env.Cols["D"], got, want, err)
			}
			if got := evalClauses(t, cs, env); got != want {
				t.Fatalf("CNF changed semantics:\n expr: %s\n cnf:  %s\n env: %v\n got %v want %v",
					e.SQL(), SQLClauses(cs), fmtEnv(env), got, want)
			}
			if got := evalTerms(t, ts, env); got != want {
				t.Fatalf("DNF changed semantics:\n expr: %s\n env: %v\n got %v want %v",
					e.SQL(), fmtEnv(env), got, want)
			}
		}
	}
}

func fmtEnv(env *eval.Env) string {
	return fmt.Sprintf("A=%v B=%v C=%v D=%v",
		env.Cols["A"], env.Cols["B"], env.Cols["C"], env.Cols["D"])
}
