package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{5_000, 10_000, 50_000, 2_000_000, 20_000_000_000} {
		h.Observe(ns)
	}
	if h.count != 5 {
		t.Fatalf("count = %d", h.count)
	}
	if h.max != 20_000_000_000 {
		t.Fatalf("max = %d", h.max)
	}
	// 5µs and 10µs share the first bucket (inclusive upper bound).
	if h.counts[0] != 2 {
		t.Errorf("le=10µs bucket = %d, want 2", h.counts[0])
	}
	if h.counts[NumBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.counts[NumBuckets-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 observations spread 1ms..100ms: p50 near 50ms, p99 near
	// 99ms, both within one 1-2-5 bucket of the true value.
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1_000_000)
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 20_000_000 || p50 > 50_000_000 {
		t.Errorf("p50 = %d, want ~50ms within bucket resolution", p50)
	}
	if p99 < 50_000_000 || p99 > 100_000_000 {
		t.Errorf("p99 = %d, want ~99ms within bucket resolution", p99)
	}
	if got := h.Quantile(1); got != h.max {
		t.Errorf("q=1 should be max, got %d", got)
	}
	// A single observation pins every quantile to itself (clamped max).
	var one Histogram
	one.Observe(3_000_000)
	if one.Quantile(0.5) != 3_000_000 || one.Quantile(0.99) != 3_000_000 {
		t.Errorf("single-sample quantiles = %d / %d", one.Quantile(0.5), one.Quantile(0.99))
	}
	// Overflow-bucket quantiles report the recorded max.
	var of Histogram
	of.Observe(30_000_000_000)
	if of.Quantile(0.5) != 30_000_000_000 {
		t.Errorf("overflow quantile = %d", of.Quantile(0.5))
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	r := New()
	r.ObserveQuery("zeta", 100)
	r.ObserveQuery("alpha", 200)
	r.ObserveQuery("alpha", 300)
	r.ObserveCacheDelta(3, 1)
	r.ObserveRejection()
	r.ObservePool(4, 8)
	r.ObservePool(0, 8)

	a, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON is nondeterministic:\n%s\n---\n%s", a, b)
	}

	s := r.Snapshot()
	if len(s.Shapes) != 2 || s.Shapes[0].Shape != "alpha" || s.Shapes[1].Shape != "zeta" {
		t.Fatalf("shapes not sorted: %+v", s.Shapes)
	}
	if s.Shapes[0].Count != 2 || s.Shapes[0].SumNanos != 500 {
		t.Errorf("alpha histogram wrong: %+v", s.Shapes[0])
	}
	if s.Cache.Hits != 3 || s.Cache.Misses != 1 || s.Cache.HitRate != 0.75 {
		t.Errorf("cache snapshot wrong: %+v", s.Cache)
	}
	if s.Governor.Rejections != 1 {
		t.Errorf("governor snapshot wrong: %+v", s.Governor)
	}
	if s.Pool.Size != 8 || s.Pool.ParallelQueries != 1 ||
		s.Pool.WorkersUsedMax != 4 || s.Pool.Utilization != 0.5 {
		t.Errorf("pool snapshot wrong: %+v", s.Pool)
	}

	var decoded Snapshot
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			shape := []string{"a", "b"}[g%2]
			for i := 0; i < 1000; i++ {
				r.ObserveQuery(shape, int64(i))
				r.ObserveCacheDelta(1, 0)
				r.ObservePool(int64(g), 8)
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, ss := range s.Shapes {
		total += ss.Count
	}
	if total != 8000 {
		t.Errorf("lost observations: %d", total)
	}
	if s.Cache.Hits != 8000 {
		t.Errorf("lost cache deltas: %d", s.Cache.Hits)
	}
	if s.Pool.WorkersUsedMax != 7 {
		t.Errorf("workers max = %d", s.Pool.WorkersUsedMax)
	}
}
