// Package metrics is a dependency-free observability registry for the
// optimizer and engine: per-query-shape latency histograms, analyzer
// cache hit rates, resource-governor rejections, and worker-pool
// utilization. Snapshots are deterministic (shapes sorted, fixed
// bucket layout) and render as JSON; Publish exposes a registry
// through the standard library's expvar endpoint.
//
// The registry is safe for concurrent use: histogram observation is a
// short critical section per shape, the scalar counters are atomics.
package metrics

import (
	"encoding/json"
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// bucketBounds are the histogram's inclusive nanosecond upper bounds:
// a 1-2-5 log series from 10µs to 10s, plus an implicit overflow
// bucket. The series covers everything from a cached analyzer verdict
// to a pathological product join, and is fine enough that
// interpolated quantiles (p50/p99) are meaningful.
var bucketBounds = [...]int64{
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
	10_000_000_000,
}

// NumBuckets is the bucket count including the overflow bucket.
const NumBuckets = len(bucketBounds) + 1

// Histogram is a fixed-layout latency histogram with count/sum/max.
type Histogram struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64
	max    int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	i := sort.Search(len(bucketBounds), func(i int) bool { return ns <= bucketBounds[i] })
	h.counts[i]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Quantile estimates the q-th quantile (0 < q < 1) of the recorded
// durations in nanoseconds by linear interpolation within the bucket
// holding the target rank. The overflow bucket reports the recorded
// max, and every estimate is clamped to it.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(bucketBounds) {
			return h.max
		}
		var lo int64
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := bucketBounds[i]
		frac := float64(rank-(cum-c)) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at most UpperNanos (0 = the overflow bucket).
type BucketCount struct {
	UpperNanos int64 `json:"le_ns"`
	Count      int64 `json:"count"`
}

// ShapeSnapshot is one query shape's latency distribution. P50Nanos
// and P99Nanos are interpolated from the bucket layout (see
// Histogram.Quantile).
type ShapeSnapshot struct {
	Shape    string        `json:"shape"`
	Count    int64         `json:"count"`
	SumNanos int64         `json:"sum_ns"`
	MaxNanos int64         `json:"max_ns"`
	P50Nanos int64         `json:"p50_ns"`
	P99Nanos int64         `json:"p99_ns"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
}

// CacheSnapshot reports analyzer-cache effectiveness.
type CacheSnapshot struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// HitRate is hits/(hits+misses) in [0,1]; 0 when no lookups ran.
	HitRate float64 `json:"hit_rate"`
}

// GovernorSnapshot reports resource-governor activity.
type GovernorSnapshot struct {
	// Rejections counts queries aborted for exceeding MaxRows/MemBudget.
	Rejections int64 `json:"rejections"`
}

// PoolSnapshot reports parallel worker-pool utilization.
type PoolSnapshot struct {
	// Size is the configured pool width at the last observation.
	Size int64 `json:"size"`
	// ParallelQueries counts executions that took a parallel path.
	ParallelQueries int64 `json:"parallel_queries"`
	// WorkersUsedMax is the widest fan-out any execution achieved.
	WorkersUsedMax int64 `json:"workers_used_max"`
	// Utilization is WorkersUsedMax/Size in [0,1]; 0 when serial.
	Utilization float64 `json:"utilization"`
}

// Snapshot is a consistent point-in-time rendering of a Registry,
// deterministically ordered (shapes sorted lexicographically).
type Snapshot struct {
	Shapes   []ShapeSnapshot  `json:"shapes,omitempty"`
	Cache    CacheSnapshot    `json:"cache"`
	Governor GovernorSnapshot `json:"governor"`
	Pool     PoolSnapshot     `json:"pool"`
}

// Registry accumulates observations. The zero value is not usable;
// call New.
type Registry struct {
	mu     sync.Mutex
	shapes map[string]*Histogram

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	rejections  atomic.Int64

	poolSize        atomic.Int64
	parallelQueries atomic.Int64
	workersUsedMax  atomic.Int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{shapes: make(map[string]*Histogram)}
}

// ObserveQuery records one execution of the given query shape (for
// parameterized workloads the SQL text is the shape — host values
// change, shapes do not).
func (r *Registry) ObserveQuery(shape string, nanos int64) {
	r.mu.Lock()
	h := r.shapes[shape]
	if h == nil {
		h = &Histogram{}
		r.shapes[shape] = h
	}
	h.Observe(nanos)
	r.mu.Unlock()
}

// ObserveCacheDelta accumulates analyzer-cache hit/miss deltas.
func (r *Registry) ObserveCacheDelta(hits, misses int64) {
	r.cacheHits.Add(hits)
	r.cacheMisses.Add(misses)
}

// ObserveRejection counts one governor budget rejection.
func (r *Registry) ObserveRejection() { r.rejections.Add(1) }

// ObservePool records one execution's parallel fan-out (workersUsed=0
// for a fully serial run) against the configured pool size.
func (r *Registry) ObservePool(workersUsed, poolSize int64) {
	r.poolSize.Store(poolSize)
	if workersUsed <= 0 {
		return
	}
	r.parallelQueries.Add(1)
	for {
		cur := r.workersUsedMax.Load()
		if workersUsed <= cur || r.workersUsedMax.CompareAndSwap(cur, workersUsed) {
			return
		}
	}
}

// Snapshot renders the registry's current state deterministically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.mu.Lock()
	names := make([]string, 0, len(r.shapes))
	for name := range r.shapes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.shapes[name]
		ss := ShapeSnapshot{
			Shape: name, Count: h.count, SumNanos: h.sum, MaxNanos: h.max,
			P50Nanos: h.Quantile(0.50), P99Nanos: h.Quantile(0.99),
		}
		for i, c := range h.counts {
			if c == 0 {
				continue
			}
			var le int64 // 0 = overflow
			if i < len(bucketBounds) {
				le = bucketBounds[i]
			}
			ss.Buckets = append(ss.Buckets, BucketCount{UpperNanos: le, Count: c})
		}
		s.Shapes = append(s.Shapes, ss)
	}
	r.mu.Unlock()

	s.Cache.Hits = r.cacheHits.Load()
	s.Cache.Misses = r.cacheMisses.Load()
	if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(total)
	}
	s.Governor.Rejections = r.rejections.Load()
	s.Pool.Size = r.poolSize.Load()
	s.Pool.ParallelQueries = r.parallelQueries.Load()
	s.Pool.WorkersUsedMax = r.workersUsedMax.Load()
	if s.Pool.Size > 0 && s.Pool.WorkersUsedMax > 0 {
		s.Pool.Utilization = float64(s.Pool.WorkersUsedMax) / float64(s.Pool.Size)
	}
	return s
}

// JSON renders a snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Publish registers the registry under name on the process-wide expvar
// endpoint (/debug/vars when expvar's handler is mounted). Like
// expvar.Publish it panics if the name is already taken, so publish
// each registry once under a unique name.
func (r *Registry) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
