package storage

import (
	"errors"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// ErrRecovering is returned by a Store that is still replaying its
// log: reads may proceed against the partially restored heap, but
// writes are refused until recovery finishes so the log never
// interleaves replayed history with new records. Servers surface it
// as a typed wire error instead of blocking the accept loop.
var ErrRecovering = errors.New("storage: recovering; writes refused until replay completes")

// ErrClosed is returned by operations on a Store after Close.
var ErrClosed = errors.New("storage: store is closed")

// Store is the write and durability surface of a database. Two
// implementations exist: the in-memory *DB (Heap returns the
// receiver; durability calls are no-ops) and the WAL-backed
// wal.Store, which logs every mutation before acknowledging it and
// replays the log through the same constraint-enforcing insert path
// on restart.
//
// Reads deliberately stay off the interface: the planner and executor
// keep scanning the concrete heap via Heap(), so a disk-backed store
// pays its durability cost only on the write path.
type Store interface {
	// Heap returns the in-memory table heap queries execute against.
	Heap() *DB

	// Catalog returns the schema catalog backing the heap.
	Catalog() *catalog.Catalog

	// ApplyDDL defines a table from its parsed CREATE TABLE statement
	// and attaches an empty stored table. sql is the statement's
	// canonical text, which durable stores append to their log.
	ApplyDDL(sql string, ct *ast.CreateTable) (*catalog.Table, error)

	// Insert validates a row against the table's constraints and
	// stores it. Durable stores log the row after the heap accepts it;
	// the row is committed once a later Sync (or Close) returns.
	Insert(table string, row value.Row) error

	// Sync makes every acknowledged mutation durable (flush + fsync).
	Sync() error

	// Checkpoint compacts the log into a snapshot so recovery replays
	// only mutations since the checkpoint.
	Checkpoint() error

	// Recover replays any persisted state. It must be called once
	// after opening a store that reports Recovering; on the in-memory
	// store it is a no-op.
	Recover() error

	// Recovering reports whether the store is still replaying its log.
	// While true, Insert and ApplyDDL fail with ErrRecovering.
	Recovering() bool

	// Close flushes, fsyncs, and releases the store's files. The heap
	// remains readable; further writes fail with ErrClosed.
	Close() error
}

// compile-time check: the in-memory DB is a Store.
var _ Store = (*DB)(nil)

// Heap returns db itself: the in-memory store is its own heap.
func (db *DB) Heap() *DB { return db }

// ApplyDDL defines ct in the catalog and attaches the stored table.
// The sql text is unused in memory; durable stores log it.
func (db *DB) ApplyDDL(sql string, ct *ast.CreateTable) (*catalog.Table, error) {
	schema, err := db.cat.DefineFromAST(ct)
	if err != nil {
		return nil, err
	}
	if err := db.AttachTable(schema); err != nil {
		return nil, err
	}
	return schema, nil
}

// Sync is a no-op: the in-memory store has no durability.
func (db *DB) Sync() error { return nil }

// Checkpoint is a no-op: there is no log to compact.
func (db *DB) Checkpoint() error { return nil }

// Recover is a no-op: there is nothing to replay.
func (db *DB) Recover() error { return nil }

// Recovering is always false for the in-memory store.
func (db *DB) Recovering() bool { return false }

// Close is a no-op: the heap stays usable for tests that keep
// reading after closing a DB handle.
func (db *DB) Close() error { return nil }
