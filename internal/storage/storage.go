// Package storage provides in-memory multiset heap tables with SQL2
// constraint enforcement on insert:
//
//   - column types and NOT NULL,
//   - CHECK table constraints under the true interpretation ⌈P⌉
//     (a row violates a CHECK only when it is definitely False),
//   - key constraints under the ≐ (null-equivalent) comparison: at
//     most one row may carry any particular combination of key values,
//     where NULL is treated as a single special value — the paper's
//     reading of SQL2 candidate keys ("only one tuple in R may have
//     K equal to Null").
//
// Because every insert is validated, any populated database is a valid
// instance in the sense of Theorem 1, which is what makes the
// equivalence tests in internal/core and internal/plan meaningful.
package storage

import (
	"fmt"

	"uniqopt/internal/catalog"
	"uniqopt/internal/eval"
	"uniqopt/internal/value"
)

// Table is one stored base table: a multiset of rows plus hash indexes
// on each candidate key used for uniqueness enforcement and key
// lookups.
type Table struct {
	Schema *catalog.Table
	rows   []value.Row
	keyIdx []map[uint64][]int // parallel to Schema.Keys
	// ordered holds the secondary ordered indexes.
	ordered []*OrderedIndex
	// db, when non-nil, is the owning database; it enables FOREIGN KEY
	// enforcement against sibling tables. Standalone tables created
	// with NewTable do not enforce foreign keys.
	db *DB
}

// NewTable creates an empty table for the given schema.
func NewTable(schema *catalog.Table) *Table {
	t := &Table{Schema: schema}
	t.keyIdx = make([]map[uint64][]int, len(schema.Keys))
	for i := range t.keyIdx {
		t.keyIdx[i] = make(map[uint64][]int)
	}
	return t
}

// Len reports the number of stored rows.
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the stored rows. The slice and rows are owned by the
// table; callers must not modify them.
func (t *Table) Rows() []value.Row { return t.rows }

// Row returns the i-th row.
func (t *Table) Row(i int) value.Row { return t.rows[i] }

// keyProjection extracts the key columns of row for key k.
func keyProjection(row value.Row, k catalog.Key) value.Row {
	out := make(value.Row, len(k.Columns))
	for i, c := range k.Columns {
		out[i] = row[c]
	}
	return out
}

// checkEnv builds the evaluation environment for CHECK constraints:
// bare column names plus table-qualified names.
func (t *Table) checkEnv(row value.Row) *eval.Env {
	cols := make(map[string]value.Value, 2*len(row))
	for i, c := range t.Schema.Columns {
		cols[c.Name] = row[i]
		cols[t.Schema.Name+"."+c.Name] = row[i]
	}
	return &eval.Env{Cols: cols}
}

// Validate checks a row against all constraints without inserting it.
func (t *Table) Validate(row value.Row) error {
	s := t.Schema
	if len(row) != len(s.Columns) {
		return fmt.Errorf("storage: %s: row has %d values, want %d", s.Name, len(row), len(s.Columns))
	}
	for i, col := range s.Columns {
		v := row[i]
		if v.IsNull() {
			if col.NotNull {
				return fmt.Errorf("storage: %s.%s: NULL violates NOT NULL", s.Name, col.Name)
			}
			continue
		}
		if v.Kind() != col.Type {
			return fmt.Errorf("storage: %s.%s: value %s has type %s, want %s",
				s.Name, col.Name, v, v.Kind(), col.Type)
		}
	}
	env := t.checkEnv(row)
	for _, chk := range s.Checks {
		ok, err := eval.Satisfied(chk, env)
		if err != nil {
			return fmt.Errorf("storage: %s: CHECK %s: %w", s.Name, chk.SQL(), err)
		}
		if !ok {
			return fmt.Errorf("storage: %s: row %s violates CHECK (%s)", s.Name, row, chk.SQL())
		}
	}
	for ki, k := range s.Keys {
		kv := keyProjection(row, k)
		for _, ri := range t.keyIdx[ki][value.HashRow(kv)] {
			if value.NullEqRows(kv, keyProjection(t.rows[ri], k)) {
				kind := "UNIQUE"
				if k.Primary {
					kind = "PRIMARY KEY"
				}
				return fmt.Errorf("storage: %s: row %s violates %s (%v)",
					s.Name, row, kind, s.KeyColumnNames(k))
			}
		}
	}
	if t.db != nil {
		for _, fk := range s.ForeignKeys {
			if err := t.db.checkForeignKey(s, fk, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkForeignKey enforces one inclusion dependency for a candidate
// row: if every FK column is non-NULL, the referenced key value must
// exist. Any NULL component makes the dependency vacuous (SQL's MATCH
// SIMPLE rule).
func (db *DB) checkForeignKey(owner *catalog.Table, fk catalog.ForeignKey, row value.Row) error {
	kv := make(value.Row, len(fk.Columns))
	for i, ci := range fk.Columns {
		if row[ci].IsNull() {
			return nil
		}
		kv[i] = row[ci]
	}
	ref, ok := db.Table(fk.RefTable)
	if !ok {
		return fmt.Errorf("storage: %s: FOREIGN KEY references unattached table %s",
			owner.Name, fk.RefTable)
	}
	if ref.LookupKey(fk.RefKey, kv) < 0 {
		return fmt.Errorf("storage: %s: row %s violates FOREIGN KEY into %s (no row with key %s)",
			owner.Name, row, fk.RefTable, kv)
	}
	return nil
}

// Insert validates and stores a row. The row is cloned; the caller
// keeps ownership of its argument.
func (t *Table) Insert(row value.Row) error {
	if err := t.Validate(row); err != nil {
		return err
	}
	r := row.Clone()
	idx := len(t.rows)
	t.rows = append(t.rows, r)
	for ki, k := range t.Schema.Keys {
		h := value.HashRow(keyProjection(r, k))
		t.keyIdx[ki][h] = append(t.keyIdx[ki][h], idx)
	}
	for _, ix := range t.ordered {
		ix.insert(indexKey(r, ix.Columns), idx)
	}
	return nil
}

// LookupKey returns the ordinal of the row whose key ki equals keyVals
// under ≐, or -1. Key uniqueness guarantees at most one match.
func (t *Table) LookupKey(ki int, keyVals value.Row) int {
	k := t.Schema.Keys[ki]
	for _, ri := range t.keyIdx[ki][value.HashRow(keyVals)] {
		if value.NullEqRows(keyVals, keyProjection(t.rows[ri], k)) {
			return ri
		}
	}
	return -1
}

// Truncate removes all rows. Ordered indexes are emptied but kept.
func (t *Table) Truncate() {
	t.rows = nil
	for i := range t.keyIdx {
		t.keyIdx[i] = make(map[uint64][]int)
	}
	for _, ix := range t.ordered {
		ix.keys = nil
		ix.rows = nil
	}
}

// DB is a collection of stored tables over a catalog. It is the
// in-memory Store: writes apply directly to the heap and durability
// calls are no-ops.
type DB struct {
	cat    *catalog.Catalog
	tables map[string]*Table
}

// Catalog returns the schema catalog the database stores rows for.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// NewDB creates an empty database over cat. A stored table is created
// for every table currently in the catalog.
func NewDB(cat *catalog.Catalog) *DB {
	db := &DB{cat: cat, tables: make(map[string]*Table)}
	for _, name := range cat.TableNames() {
		schema, _ := cat.Table(name)
		t := NewTable(schema)
		t.db = db
		db.tables[name] = t
	}
	return db
}

// AttachTable creates an empty stored table for a schema defined in
// the catalog after the DB was opened. It is a no-op if the table is
// already attached.
func (db *DB) AttachTable(schema *catalog.Table) error {
	if _, ok := db.cat.Table(schema.Name); !ok {
		return fmt.Errorf("storage: schema %s is not in the catalog", schema.Name)
	}
	if _, exists := db.tables[schema.Name]; exists {
		return nil
	}
	t := NewTable(schema)
	t.db = db
	db.tables[schema.Name] = t
	return nil
}

// Table returns the stored table with the given name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[normalize(name)]
	return t, ok
}

// MustTable returns the stored table or panics; for tests and
// generators over known schemas.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("storage: unknown table %s", name))
	}
	return t
}

// Insert inserts a row into the named table.
func (db *DB) Insert(table string, row value.Row) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("storage: unknown table %s", table)
	}
	return t.Insert(row)
}

func normalize(name string) string {
	b := []byte(name)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
