//go:build fault

package wal

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"uniqopt/internal/fault"
	"uniqopt/internal/storage"
	"uniqopt/internal/testleak"
	"uniqopt/internal/value"
)

// countFDs reports the process's open file descriptors (Linux); -1
// where /proc is unavailable.
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// crashWorkload drives a scripted write sequence against a store in
// dir with a fault armed, recording which row ids were acknowledged
// (covered by a successful Sync). It stops at the first wedging
// failure, exactly like a server would.
func crashWorkload(t *testing.T, dir string) (acked []int64, inserted []int64) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if err := s.Recover(); err != nil {
		// The armed fault hit the initial-open path (log creation or
		// the empty first snapshot); nothing was promised.
		return nil, nil
	}
	ct, err := parseCreate(testDDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDDL(testDDL, ct); err != nil {
		// DDL is fsync-acked; a fault here means nothing is promised.
		return nil, nil
	}
	var pending []int64
	for i := int64(0); i < 30; i++ {
		if err := s.Insert("SUPPLIER", value.Row{value.Int(i), value.String_("S"), value.Int(0)}); err != nil {
			break
		}
		inserted = append(inserted, i)
		pending = append(pending, i)
		if len(pending) == 5 {
			if err := s.Sync(); err != nil {
				pending = nil
				break
			}
			acked = append(acked, pending...)
			pending = nil
		}
		if i == 14 {
			// Mid-workload compaction; failures here must leave the
			// current generation intact and writable (unless wedged).
			_ = s.Checkpoint()
		}
	}
	return acked, inserted
}

// TestCrashRecoveryMatrix arms every wal.* fault point at several
// deterministic firing sites, runs the scripted workload, then
// reopens the directory and asserts the recovery contract: either
// recovery succeeds and the heap holds a prefix of the inserted
// sequence covering every acknowledged row, or it refuses with a
// typed corruption error (bit-rot of once-durable interior frames —
// the one fate truncation must NOT paper over).
func TestCrashRecoveryMatrix(t *testing.T) {
	testleak.Check(t)
	var walPoints []string
	for _, name := range fault.Registered() {
		if strings.HasPrefix(name, "wal.") {
			walPoints = append(walPoints, name)
		}
	}
	if len(walPoints) < 7 {
		t.Fatalf("expected the 7 wal fault points registered, got %v", walPoints)
	}
	baseFDs := countFDs()

	for _, point := range walPoints {
		for _, skip := range []int{0, 1, 2, 5} {
			t.Run(fmt.Sprintf("%s/skip%d", point, skip), func(t *testing.T) {
				fault.Reset()
				defer fault.Reset()
				if err := fault.Arm(point, fault.Spec{Mode: fault.ModeError, Skip: skip, Limit: 1}); err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				acked, inserted := crashWorkload(t, dir)
				fault.Reset() // recovery itself runs fault-free

				re, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer re.Close()
				switch err := re.Recover(); {
				case err == nil:
					rows := supplierRows(re)
					// Prefix property: the recovered rows are exactly
					// the first len(rows) inserted ids, in order.
					if len(rows) > len(inserted) {
						t.Fatalf("recovered %d rows, only %d were ever inserted", len(rows), len(inserted))
					}
					for i, row := range rows {
						if row[0].AsInt() != inserted[i] {
							t.Fatalf("row %d: got id %d, want %d (not a prefix)", i, row[0].AsInt(), inserted[i])
						}
					}
					// No acknowledged row may be missing.
					if len(rows) < len(acked) {
						t.Fatalf("recovered %d rows, %d were acknowledged", len(rows), len(acked))
					}
					// Writes must work again after recovery. If the
					// fault fired before the DDL was acked, the table
					// legitimately does not exist yet — recreate it.
					if _, ok := re.Heap().Table("SUPPLIER"); !ok {
						ct, err := parseCreate(testDDL)
						if err != nil {
							t.Fatal(err)
						}
						if _, err := re.ApplyDDL(testDDL, ct); err != nil {
							t.Fatalf("ddl after recovery: %v", err)
						}
					}
					if err := re.Insert("SUPPLIER", value.Row{value.Int(1000), value.String_("S"), value.Int(0)}); err != nil {
						t.Fatalf("insert after recovery: %v", err)
					}
					if err := re.Sync(); err != nil {
						t.Fatalf("sync after recovery: %v", err)
					}
				case errors.Is(err, ErrCorrupt) || errors.Is(err, ErrSnapshotCorrupt):
					// Typed refusal: only acceptable for the silent
					// bit-flip fault, whose corruption may land in the
					// durable interior.
					if point != FaultAppendCorrupt {
						t.Fatalf("recover: unexpected corruption verdict %v for %s", err, point)
					}
					if re.Recovering() != true {
						t.Error("store should stay recovering after typed refusal")
					}
					if werr := re.Insert("SUPPLIER", value.Row{value.Int(0)}); !errors.Is(werr, storage.ErrRecovering) {
						t.Errorf("insert after refusal: got %v, want ErrRecovering", werr)
					}
				default:
					t.Fatalf("recover: %v (neither success nor typed corruption)", err)
				}
			})
		}
	}

	if baseFDs >= 0 {
		if got := countFDs(); got > baseFDs {
			t.Errorf("file descriptors leaked across the matrix: %d before, %d after", baseFDs, got)
		}
	}
}

// TestFaultPointsRegistered pins the registry names the Makefile's
// crash-matrix target greps for.
func TestFaultPointsRegistered(t *testing.T) {
	want := []string{FaultAppend, FaultAppendShort, FaultAppendCorrupt, FaultSync,
		FaultCheckpointNewLog, FaultCheckpointSnapshot, FaultCheckpointRename}
	reg := fault.Registered()
	have := make(map[string]bool, len(reg))
	for _, n := range reg {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("fault point %s not registered", n)
		}
	}
}
