// Package wal implements the disk-backed storage.Store: an
// append-only write-ahead log of typed records (DDL, insert,
// checkpoint) in length-prefixed CRC32-checksummed frames, compacted
// periodically into a snapshot, and replayed on restart through the
// same constraint-enforcing insert path the live system uses — so a
// recovered database is provably a valid instance in the sense of
// the paper's Theorem 1, and every uniqueness rewrite that was sound
// before the crash is sound after it.
//
// On-disk layout of a data directory:
//
//	snapshot.dat   materialized state as of generation G
//	wal-G.log      every mutation since that snapshot
//
// The checkpoint protocol keeps exactly one (snapshot, log)
// generation pair live and never overwrites in place: a new log
// wal-(G+1).log is created and fsynced first, then the new snapshot
// is written to a temp file, fsynced, and atomically renamed over
// snapshot.dat (directory fsynced), and only then is wal-G.log
// deleted. A crash at any point leaves either the old pair or the
// new pair complete; recovery replays only the log whose generation
// matches the snapshot and deletes the rest.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"uniqopt/internal/value"
)

// Typed failures recovery and the write path distinguish. Callers
// match with errors.Is; every wrapped error keeps the context of
// which file and offset misbehaved.
var (
	// ErrCorrupt marks a frame whose checksum or structure is wrong
	// in the *middle* of a log — data that was once durable and has
	// since rotted. Recovery refuses to guess past it.
	ErrCorrupt = errors.New("wal: corrupt frame")
	// ErrSnapshotCorrupt marks a snapshot whose checksum or structure
	// is wrong.
	ErrSnapshotCorrupt = errors.New("wal: corrupt snapshot")
	// ErrReplay marks a log record the constraint-enforcing insert
	// path rejected during recovery — the log disagrees with the
	// schema it was written under.
	ErrReplay = errors.New("wal: replay rejected record")
	// ErrMissingSnapshot marks a data directory whose log generation
	// implies a snapshot that is not there.
	ErrMissingSnapshot = errors.New("wal: snapshot missing for log generation")
	// ErrWedged is returned by writes after an earlier I/O failure:
	// the in-memory heap and the log may disagree by the failed
	// operation, so the store refuses further writes until it is
	// closed and reopened (recovery restores the durable prefix).
	ErrWedged = errors.New("wal: store wedged by earlier write failure; reopen to recover")
)

// Record kinds, the first byte of every frame payload.
const (
	recDDL        = 'D' // catalog version (8B BE) + CREATE TABLE text
	recInsert     = 'I' // table name + row values
	recCheckpoint = 'C' // generation (8B BE) + catalog version (8B BE)
)

// MaxRecord bounds a single frame payload. Anything larger in a
// length prefix is structural corruption, not a real record.
const MaxRecord = 64 << 20

const (
	logMagic  = "UQWALOG1" // 8 bytes, followed by 8B BE generation
	snapMagic = "UQSNAP01"
	headerLen = 16
	// frameHdrLen is the per-frame prefix: 4B BE payload length +
	// 4B BE CRC32 (IEEE) of the payload.
	frameHdrLen = 8
)

// record is one decoded log entry.
type record struct {
	kind    byte
	version uint64 // recDDL: catalog version after; recCheckpoint: version at checkpoint
	gen     uint64 // recCheckpoint only
	sql     string // recDDL only
	table   string // recInsert only
	row     value.Row
}

// appendFrame wraps payload in a frame: length, checksum, payload.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeDDL builds a recDDL payload.
func encodeDDL(version uint64, sql string) []byte {
	out := make([]byte, 0, 1+8+len(sql))
	out = append(out, recDDL)
	out = binary.BigEndian.AppendUint64(out, version)
	return append(out, sql...)
}

// encodeInsert builds a recInsert payload.
func encodeInsert(table string, row value.Row) []byte {
	out := make([]byte, 0, 1+len(table)+16*len(row))
	out = append(out, recInsert)
	out = binary.AppendUvarint(out, uint64(len(table)))
	out = append(out, table...)
	out = appendRow(out, row)
	return out
}

// encodeCheckpoint builds a recCheckpoint payload.
func encodeCheckpoint(gen, version uint64) []byte {
	out := make([]byte, 0, 1+16)
	out = append(out, recCheckpoint)
	out = binary.BigEndian.AppendUint64(out, gen)
	return binary.BigEndian.AppendUint64(out, version)
}

// decodeRecord parses one frame payload.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) == 0 {
		return record{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	rec := record{kind: payload[0]}
	body := payload[1:]
	switch rec.kind {
	case recDDL:
		if len(body) < 8 {
			return record{}, fmt.Errorf("%w: DDL record truncated", ErrCorrupt)
		}
		rec.version = binary.BigEndian.Uint64(body[:8])
		rec.sql = string(body[8:])
	case recInsert:
		n, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body)-sz) < n {
			return record{}, fmt.Errorf("%w: insert record truncated", ErrCorrupt)
		}
		rec.table = string(body[sz : sz+int(n)])
		row, rest, err := decodeRow(body[sz+int(n):])
		if err != nil {
			return record{}, err
		}
		if len(rest) != 0 {
			return record{}, fmt.Errorf("%w: %d trailing bytes after insert row", ErrCorrupt, len(rest))
		}
		rec.row = row
	case recCheckpoint:
		if len(body) != 16 {
			return record{}, fmt.Errorf("%w: checkpoint record has %d body bytes, want 16", ErrCorrupt, len(body))
		}
		rec.gen = binary.BigEndian.Uint64(body[:8])
		rec.version = binary.BigEndian.Uint64(body[8:])
	default:
		return record{}, fmt.Errorf("%w: unknown record kind %q", ErrCorrupt, rec.kind)
	}
	return rec, nil
}

// Value wire kinds for the row codec.
const (
	vNull = 0
	vInt  = 1
	vStr  = 2
	vBool = 3
)

// appendRow encodes a row: a count followed by self-describing cells.
func appendRow(dst []byte, row value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		switch {
		case v.IsNull():
			dst = append(dst, vNull)
		case v.Kind() == value.KindInt:
			dst = append(dst, vInt)
			dst = binary.BigEndian.AppendUint64(dst, uint64(v.AsInt()))
		case v.Kind() == value.KindString:
			s := v.AsString()
			dst = append(dst, vStr)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		default: // KindBool
			b := byte(0)
			if v.AsBool() {
				b = 1
			}
			dst = append(dst, vBool, b)
		}
	}
	return dst
}

// decodeRow decodes a row and returns the remaining bytes.
func decodeRow(b []byte) (value.Row, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > MaxRecord {
		return nil, nil, fmt.Errorf("%w: bad row arity", ErrCorrupt)
	}
	b = b[sz:]
	row := make(value.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, nil, fmt.Errorf("%w: row truncated at cell %d", ErrCorrupt, i)
		}
		kind := b[0]
		b = b[1:]
		switch kind {
		case vNull:
			row = append(row, value.Value{})
		case vInt:
			if len(b) < 8 {
				return nil, nil, fmt.Errorf("%w: int cell truncated", ErrCorrupt)
			}
			row = append(row, value.Int(int64(binary.BigEndian.Uint64(b[:8]))))
			b = b[8:]
		case vStr:
			l, lsz := binary.Uvarint(b)
			if lsz <= 0 || uint64(len(b)-lsz) < l {
				return nil, nil, fmt.Errorf("%w: string cell truncated", ErrCorrupt)
			}
			row = append(row, value.String_(string(b[lsz:lsz+int(l)])))
			b = b[lsz+int(l):]
		case vBool:
			if len(b) < 1 {
				return nil, nil, fmt.Errorf("%w: bool cell truncated", ErrCorrupt)
			}
			row = append(row, value.Bool(b[0] != 0))
			b = b[1:]
		default:
			return nil, nil, fmt.Errorf("%w: unknown cell kind %d", ErrCorrupt, kind)
		}
	}
	return row, b, nil
}
