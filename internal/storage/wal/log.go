package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"uniqopt/internal/fault"
)

// Fault points the WAL write and checkpoint paths honor. The matrix
// test arms each of them and asserts recovery restores exactly the
// acknowledged prefix.
const (
	// FaultAppend fails an append cleanly, before any bytes move.
	FaultAppend = "wal.append"
	// FaultAppendShort tears a frame: half its bytes reach the file,
	// then the write "fails" — the torn-tail shape a crash leaves.
	FaultAppendShort = "wal.append.short"
	// FaultAppendCorrupt flips one bit in a frame payload after the
	// checksum is computed, then lets the write "succeed" — silent
	// media corruption that only the CRC can catch later.
	FaultAppendCorrupt = "wal.append.corrupt"
	// FaultSync fails the flush+fsync making appends durable.
	FaultSync = "wal.sync"
	// FaultCheckpointNewLog / FaultCheckpointSnapshot /
	// FaultCheckpointRename fail the three stages of the checkpoint
	// protocol; all leave the previous generation intact.
	FaultCheckpointNewLog   = "wal.checkpoint.newlog"
	FaultCheckpointSnapshot = "wal.checkpoint.snapshot"
	FaultCheckpointRename   = "wal.checkpoint.rename"
)

func init() {
	fault.Register(FaultAppend, FaultAppendShort, FaultAppendCorrupt,
		FaultSync, FaultCheckpointNewLog, FaultCheckpointSnapshot,
		FaultCheckpointRename)
}

// logFile is one open generation of the append-only log. Appends are
// buffered; sync flushes the buffer and fsyncs, which is the
// durability point acknowledgements wait for.
type logFile struct {
	f     *os.File
	bw    *bufio.Writer
	path  string
	gen   uint64
	dirty bool // bytes appended since the last sync
}

// newLogWriter sizes the append buffer: large enough to group-commit
// bulk loads, small enough that a crash loses little unacked work.
func newLogWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, 1<<16) }

func walName(gen uint64) string { return fmt.Sprintf("wal-%d.log", gen) }

func walPath(dir string, gen uint64) string { return filepath.Join(dir, walName(gen)) }

// parseWalName extracts the generation from a wal-<gen>.log name.
func parseWalName(name string) (uint64, bool) {
	var gen uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &gen); err != nil {
		return 0, false
	}
	if name != walName(gen) {
		return 0, false
	}
	return gen, true
}

// createLog creates a fresh generation file with its header and
// fsyncs it (file and directory) before returning.
func createLog(dir string, gen uint64) (*logFile, error) {
	path := walPath(dir, gen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	l := &logFile{f: f, bw: newLogWriter(f), path: path, gen: gen}
	var hdr [headerLen]byte
	copy(hdr[:8], logMagic)
	binary.BigEndian.PutUint64(hdr[8:], gen)
	if _, err := l.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := l.sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// append frames payload into the buffer. The record is durable only
// after a later sync. Fault points model the three ways a disk lies:
// clean failure, torn write, silent corruption.
func (l *logFile) append(payload []byte) error {
	if err := fault.Point(FaultAppend); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	frame := appendFrame(nil, payload)
	if len(payload) > 0 && fault.Fires(FaultAppendCorrupt) {
		frame[frameHdrLen+len(payload)/2] ^= 0x40
	}
	if fault.Fires(FaultAppendShort) {
		// Tear the frame: bypass the buffer so exactly half the bytes
		// land in the file, then report failure — the on-disk shape a
		// power cut leaves behind.
		if err := l.bw.Flush(); err != nil {
			return err
		}
		if _, err := l.f.Write(frame[:len(frame)/2]); err != nil {
			return err
		}
		return fmt.Errorf("wal: append %s: short write: %w", l.path, fault.ErrInjected)
	}
	if _, err := l.bw.Write(frame); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	l.dirty = true
	return nil
}

// sync flushes buffered frames and fsyncs the file: the durability
// barrier acknowledgements wait behind.
func (l *logFile) sync() error {
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush %s: %w", l.path, err)
	}
	if err := fault.Point(FaultSync); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	l.dirty = false
	return nil
}

// close flushes, fsyncs, and closes the file.
func (l *logFile) close() error {
	err := l.sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// scanOutcome reports what replaying a log found.
type scanOutcome struct {
	records   int   // valid records delivered
	goodSize  int64 // offset just past the last valid frame
	torn      bool  // a torn tail was detected after goodSize
	tornBytes int64 // bytes past goodSize (truncated by recovery)
}

// scanLog reads every frame of the log at path, delivering decoded
// records to fn in order. It distinguishes the two ways a log ends
// badly: a torn tail (an incomplete final frame — the normal residue
// of a crash between write and fsync) is reported in the outcome so
// the caller can truncate it, while a corrupt frame in the interior
// (or a checksum mismatch not at EOF) aborts with ErrCorrupt, since
// everything after it was once durable and cannot be trusted.
func scanLog(path string, wantGen uint64, fn func(record) error) (scanOutcome, error) {
	var out scanOutcome
	f, err := os.Open(path)
	if err != nil {
		return out, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return out, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return out, err
	}

	if size < headerLen {
		// The file creation itself was torn; everything goes.
		out.torn = true
		out.tornBytes = size
		return out, nil
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return out, err
	}
	if string(hdr[:8]) != logMagic {
		return out, fmt.Errorf("%w: %s: bad log magic", ErrCorrupt, path)
	}
	if gen := binary.BigEndian.Uint64(hdr[8:]); gen != wantGen {
		return out, fmt.Errorf("%w: %s: header generation %d, want %d", ErrCorrupt, path, gen, wantGen)
	}
	out.goodSize = headerLen

	var fhdr [frameHdrLen]byte
	payload := make([]byte, 0, 4096)
	for {
		n, err := io.ReadFull(br, fhdr[:])
		if err == io.EOF {
			return out, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			out.torn = true
			out.tornBytes = size - out.goodSize
			return out, nil
		}
		if err != nil {
			return out, err
		}
		length := binary.BigEndian.Uint32(fhdr[0:4])
		wantCRC := binary.BigEndian.Uint32(fhdr[4:8])
		frameEnd := out.goodSize + frameHdrLen + int64(length)
		if length == 0 || length > MaxRecord {
			// A length no writer produces. If everything from here to
			// EOF is zero, the filesystem zero-filled a torn tail;
			// otherwise the header bytes themselves rotted.
			rest := make([]byte, size-out.goodSize-int64(n))
			if _, err := io.ReadFull(br, rest); err != nil {
				return out, err
			}
			if bytes.IndexFunc(bytes.Join([][]byte{fhdr[:], rest}, nil), func(r rune) bool { return r != 0 }) < 0 {
				out.torn = true
				out.tornBytes = size - out.goodSize
				return out, nil
			}
			return out, fmt.Errorf("%w: %s: frame at offset %d declares %d bytes", ErrCorrupt, path, out.goodSize, length)
		}
		if frameEnd > size {
			// Declared payload overruns the file: torn tail.
			out.torn = true
			out.tornBytes = size - out.goodSize
			return out, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if frameEnd == size {
				// The final frame's bytes are all present but the
				// checksum fails: indistinguishable from a tear that
				// stopped mid-frame after the length prefix landed.
				// Crash residue is by far the likelier cause, and the
				// frame was never ack-synced as a complete suffix, so
				// recovery truncates rather than refuses.
				out.torn = true
				out.tornBytes = size - out.goodSize
				return out, nil
			}
			return out, fmt.Errorf("%w: %s: checksum mismatch at offset %d", ErrCorrupt, path, out.goodSize)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return out, fmt.Errorf("%s: offset %d: %w", path, out.goodSize, err)
		}
		if err := fn(rec); err != nil {
			if errors.Is(err, ErrReplay) || errors.Is(err, ErrCorrupt) {
				return out, err
			}
			return out, fmt.Errorf("%w: %s: offset %d: %v", ErrReplay, path, out.goodSize, err)
		}
		out.records++
		out.goodSize = frameEnd
	}
}
