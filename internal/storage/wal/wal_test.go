package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

const testDDL = `CREATE TABLE SUPPLIER (SNO INTEGER NOT NULL, NAME VARCHAR, STATUS INTEGER, PRIMARY KEY (SNO), CHECK (STATUS >= 0))`

// openReady opens and recovers a store over dir.
func openReady(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if !s.Recovering() {
		t.Fatal("store should report recovering before Recover")
	}
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if s.Recovering() {
		t.Fatal("store still recovering after Recover")
	}
	return s
}

// seedSuppliers defines the table and inserts n synced rows.
func seedSuppliers(t *testing.T, s *Store, n int) {
	t.Helper()
	ct, err := parseCreate(testDDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDDL(testDDL, ct); err != nil {
		t.Fatalf("ddl: %v", err)
	}
	for i := 0; i < n; i++ {
		row := value.Row{value.Int(int64(i)), value.String_("S"), value.Int(int64(i % 7))}
		if err := s.Insert("SUPPLIER", row); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func supplierRows(s *Store) []value.Row {
	t, ok := s.Heap().Table("SUPPLIER")
	if !ok {
		return nil
	}
	return t.Rows()
}

func TestFreshRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 10)
	verBefore := s.Catalog().Version()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 10 {
		t.Fatalf("recovered %d rows, want 10", got)
	}
	if got := re.Catalog().Version(); got < verBefore {
		t.Errorf("catalog version went backwards: %d < %d", got, verBefore)
	}
	st := re.Stats()
	if st.ReplayedDDL != 1 || st.ReplayedRows != 10 || st.TornTail {
		t.Errorf("stats: %+v", st)
	}
	// Constraints survived the trip: a duplicate key must be refused.
	dup := value.Row{value.Int(3), value.String_("S"), value.Int(0)}
	if err := re.Insert("SUPPLIER", dup); err == nil {
		t.Error("duplicate key accepted after recovery")
	}
	// And so did the CHECK.
	bad := value.Row{value.Int(99), value.String_("S"), value.Int(-1)}
	if err := re.Insert("SUPPLIER", bad); err == nil {
		t.Error("CHECK violation accepted after recovery")
	}
}

func TestUnsyncedRowsAreNotPromised(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 5)
	// Appended but never synced: allowed to vanish on crash.
	if err := s.Insert("SUPPLIER", value.Row{value.Int(100), value.String_("S"), value.Int(0)}); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: drop the buffered append on the floor.
	s.mu.Lock()
	s.log.f.Close()
	s.state = stateClosed
	s.mu.Unlock()

	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 5 {
		t.Fatalf("recovered %d rows, want the 5 synced ones", got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash residue: a frame whose payload never finished landing.
	path := walPath(dir, 1)
	full := appendFrame(nil, encodeInsert("SUPPLIER", value.Row{value.Int(50), value.String_("S"), value.Int(0)}))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, path)

	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 5 {
		t.Fatalf("recovered %d rows, want 5", got)
	}
	st := re.Stats()
	if !st.TornTail || st.TornBytes != int64(len(full)-3) {
		t.Errorf("stats: %+v (torn bytes want %d)", st, len(full)-3)
	}
	if got := fileSize(t, path); got != sizeBefore-int64(len(full)-3) {
		t.Errorf("log not truncated: %d bytes, want %d", got, sizeBefore-int64(len(full)-3))
	}
	// The truncated log must keep accepting writes.
	if err := re.Insert("SUPPLIER", value.Row{value.Int(50), value.String_("S"), value.Int(0)}); err != nil {
		t.Fatalf("insert after truncation: %v", err)
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the middle of the log (not the final frame).
	path := walPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = re.Recover()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recover: got %v, want ErrCorrupt", err)
	}
	// The store stays recovering: readable, write-refusing.
	if !re.Recovering() {
		t.Error("store should stay recovering after failed recovery")
	}
	if err := re.Insert("SUPPLIER", value.Row{value.Int(1)}); !errors.Is(err, storage.ErrRecovering) {
		t.Errorf("insert: got %v, want ErrRecovering", err)
	}
	re.Close()
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 3)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Recover(); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("recover: got %v, want ErrSnapshotCorrupt", err)
	}
}

func TestCheckpointRotatesGeneration(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 8)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := s.Generation(); got != 2 {
		t.Fatalf("generation: got %d want 2", got)
	}
	if _, err := os.Stat(walPath(dir, 1)); !os.IsNotExist(err) {
		t.Error("wal-1.log should be deleted after checkpoint")
	}
	// Writes continue into the new generation.
	if err := s.Insert("SUPPLIER", value.Row{value.Int(100), value.String_("S"), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 9 {
		t.Fatalf("recovered %d rows, want 9", got)
	}
	st := re.Stats()
	if st.SnapshotRows != 8 || st.ReplayedRows != 1 || st.SnapshotTables != 1 {
		t.Errorf("stats: %+v (want 8 snapshot rows, 1 replayed)", st)
	}
	if st.Generation != 2 {
		t.Errorf("generation: got %d want 2", st.Generation)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	seedSuppliers(t, s, 25)
	if got := s.Generation(); got < 3 {
		t.Errorf("generation after 25 inserts at CheckpointEvery=10: got %d, want >= 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 25 {
		t.Fatalf("recovered %d rows, want 25", got)
	}
}

func TestReplayRejectsConstraintViolations(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge a duplicate-key insert as a perfectly well-formed frame:
	// only the constraint replay can catch it.
	dup := appendFrame(nil, encodeInsert("SUPPLIER", value.Row{value.Int(1), value.String_("S"), value.Int(1)}))
	// Follow it with another valid frame so it is not mistaken for a
	// torn tail.
	more := appendFrame(nil, encodeInsert("SUPPLIER", value.Row{value.Int(9), value.String_("S"), value.Int(1)}))
	f, err := os.OpenFile(walPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(dup, more...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Recover(); !errors.Is(err, ErrReplay) {
		t.Fatalf("recover: got %v, want ErrReplay", err)
	}
}

func TestStaleGenerationsDeleted(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash residue of a checkpoint that never committed: a stray
	// next-generation log and a snapshot temp file.
	if _, err := createLog(dir, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 2 {
		t.Fatalf("recovered %d rows, want 2", got)
	}
	if _, err := os.Stat(walPath(dir, 2)); !os.IsNotExist(err) {
		t.Error("stale wal-2.log survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot-123.tmp")); !os.IsNotExist(err) {
		t.Error("snapshot temp file survived recovery")
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	rows := []value.Row{
		{value.Int(0), value.Int(-1), value.Int(1<<62 + 7)},
		{value.String_(""), value.String_("héllo, wörld"), value.String_("with\x00nul")},
		{value.Bool(true), value.Bool(false), value.Value{}},
		{},
	}
	for i, row := range rows {
		enc := appendRow(nil, row)
		dec, rest, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if len(rest) != 0 {
			t.Errorf("row %d: %d trailing bytes", i, len(rest))
		}
		if len(dec) == 0 && len(row) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec, row) {
			t.Errorf("row %d: got %v want %v", i, dec, row)
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []record{
		{kind: recDDL, version: 17, sql: testDDL},
		{kind: recInsert, table: "SUPPLIER", row: value.Row{value.Int(1), value.Value{}, value.Bool(true)}},
		{kind: recCheckpoint, gen: 4, version: 99},
	}
	encode := func(r record) []byte {
		switch r.kind {
		case recDDL:
			return encodeDDL(r.version, r.sql)
		case recInsert:
			return encodeInsert(r.table, r.row)
		default:
			return encodeCheckpoint(r.gen, r.version)
		}
	}
	for i, want := range recs {
		got, err := decodeRecord(encode(want))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d: got %+v want %+v", i, got, want)
		}
	}
	// Truncations and garbage must come back as ErrCorrupt, never panic.
	for i, rec := range recs {
		enc := encode(rec)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := decodeRecord(enc[:cut]); err == nil && cut < len(enc) {
				// Some prefixes of a DDL record are themselves valid
				// (shorter SQL text); structural kinds must error.
				if rec.kind != recDDL {
					t.Errorf("record %d cut %d: truncated decode succeeded", i, cut)
				}
			}
		}
	}
	if _, err := decodeRecord([]byte{'Z', 1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown kind: got %v, want ErrCorrupt", err)
	}
	if _, err := decodeRecord(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty payload: got %v, want ErrCorrupt", err)
	}
}

func TestWedgedStoreRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	s := openReady(t, dir)
	seedSuppliers(t, s, 2)
	s.mu.Lock()
	s.wedge(errors.New("synthetic I/O failure"))
	s.mu.Unlock()
	if err := s.Insert("SUPPLIER", value.Row{value.Int(7), value.String_("S"), value.Int(0)}); !errors.Is(err, ErrWedged) {
		t.Errorf("insert on wedged store: got %v, want ErrWedged", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrWedged) {
		t.Errorf("sync on wedged store: got %v, want ErrWedged", err)
	}
	// Reads stay alive.
	if got := len(supplierRows(s)); got != 2 {
		t.Errorf("heap reads broken on wedged store: %d rows", got)
	}
	s.Close()
	// Reopen recovers the durable prefix.
	re := openReady(t, dir)
	defer re.Close()
	if got := len(supplierRows(re)); got != 2 {
		t.Errorf("recovered %d rows, want 2", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
