package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"uniqopt/internal/fault"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"

	"uniqopt/internal/catalog"
)

// Options tune a WAL store.
type Options struct {
	// CheckpointEvery compacts the log into a snapshot after this
	// many appended records (0 = only on explicit Checkpoint calls).
	CheckpointEvery int
}

// DefaultOptions is what uniqopt.OpenPersistent uses.
var DefaultOptions = Options{CheckpointEvery: 1 << 16}

// RecoveryStats reports what Recover did, for operators and tests.
type RecoveryStats struct {
	Generation     uint64
	SnapshotTables int
	SnapshotRows   int
	ReplayedDDL    int
	ReplayedRows   int
	TornTail       bool
	TornBytes      int64
	Duration       time.Duration
}

// String renders the stats the way uniqoptd logs them.
func (st RecoveryStats) String() string {
	return fmt.Sprintf("gen %d: snapshot %d tables/%d rows, replayed %d DDL/%d rows, torn tail %v (%d bytes), %s",
		st.Generation, st.SnapshotTables, st.SnapshotRows, st.ReplayedDDL, st.ReplayedRows,
		st.TornTail, st.TornBytes, st.Duration.Round(time.Microsecond))
}

// Store state machine. A store opens recovering, becomes ready after
// Recover, and ends closed. A write-path I/O failure wedges it:
// reads stay up, writes are refused, and a close/reopen cycle
// recovers the durable prefix.
const (
	stateRecovering = iota
	stateReady
	stateClosed
)

// Store is the disk-backed storage.Store: an in-memory heap for
// reads, fronted by the write-ahead log for durability. All methods
// are safe for concurrent use; writes serialize on one mutex, which
// matches the server's DDL-lock discipline.
type Store struct {
	dir  string
	opts Options
	heap *storage.DB

	mu      sync.Mutex
	state   int
	wedged  error
	log     *logFile
	gen     uint64
	appends int // records since the last checkpoint
	stats   RecoveryStats
}

var _ storage.Store = (*Store)(nil)

// Open prepares a store over the data directory without replaying
// it: the heap is empty and the store reports Recovering until
// Recover is called. Servers use this split to bind their listener
// first and replay in the background, refusing writes with
// storage.ErrRecovering instead of refusing connections.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{
		dir:   dir,
		opts:  opts,
		heap:  storage.NewDB(catalog.New()),
		state: stateRecovering,
	}, nil
}

// Heap returns the in-memory tables queries execute against. During
// recovery it is visibly partial; the server gates reads behind its
// readiness status instead of blocking here.
func (s *Store) Heap() *storage.DB { return s.heap }

// Catalog returns the schema catalog backing the heap.
func (s *Store) Catalog() *catalog.Catalog { return s.heap.Catalog() }

// Recovering reports whether Recover has yet to complete.
func (s *Store) Recovering() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateRecovering
}

// Stats reports what the last Recover did.
func (s *Store) Stats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Generation reports the live (snapshot, log) generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Recover replays persisted state into the heap: snapshot first,
// then the matching log, every row through the same
// constraint-enforcing insert path live writes use — so recovery
// re-proves the valid-instance invariant instead of assuming it. A
// torn tail (crash residue past the last complete frame) is
// truncated; interior corruption aborts with a typed error and the
// store stays in the recovering state, readable but write-refusing.
func (s *Store) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateReady:
		return fmt.Errorf("wal: store already recovered")
	case stateClosed:
		return storage.ErrClosed
	}
	start := time.Now()

	snap, err := loadSnapshot(s.dir)
	if err != nil {
		return err
	}
	gens, tmps, err := scanDir(s.dir)
	if err != nil {
		return err
	}
	// Leftover snapshot temp files are failed checkpoint attempts;
	// the live snapshot is authoritative.
	for _, tmp := range tmps {
		os.Remove(filepath.Join(s.dir, tmp))
	}

	var stats RecoveryStats
	switch {
	case snap == nil && len(gens) == 0:
		// Fresh directory: establish generation 1 (empty snapshot
		// first, then its log — the order every crash window of the
		// checkpoint protocol assumes).
		s.gen = 1
		if err := writeSnapshot(s.dir, 1, s.heap); err != nil {
			return err
		}
	case snap == nil:
		// A log without its snapshot: only tolerable at generation 1,
		// where the base state is empty by construction.
		if len(gens) != 1 || gens[0] != 1 {
			return fmt.Errorf("%w: have logs %v", ErrMissingSnapshot, gens)
		}
		s.gen = 1
	default:
		if err := s.applySnapshot(snap, &stats); err != nil {
			return err
		}
		s.gen = snap.gen
	}

	// Stale generations are crash residue of the checkpoint
	// protocol: a new log whose snapshot never landed, or an old log
	// whose deletion never happened.
	for _, g := range gens {
		if g != s.gen {
			if err := os.Remove(walPath(s.dir, g)); err != nil {
				return err
			}
		}
	}

	path := walPath(s.dir, s.gen)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		// Crash between snapshot creation and log creation; nothing
		// was appendable yet, so an empty log completes the pair.
		l, err := createLog(s.dir, s.gen)
		if err != nil {
			return err
		}
		s.log = l
	} else {
		outcome, err := scanLog(path, s.gen, func(rec record) error {
			return s.replayRecord(rec, &stats)
		})
		if err != nil {
			return err
		}
		if outcome.torn {
			// Crash residue past the last complete frame: records
			// there were never sync-acknowledged, so truncation loses
			// nothing that was promised. (If the creation itself was
			// torn, rewrite the header too.)
			if err := truncateLog(path, max64(outcome.goodSize, 0)); err != nil {
				return err
			}
			if outcome.goodSize < headerLen {
				os.Remove(path)
				l, err := createLog(s.dir, s.gen)
				if err != nil {
					return err
				}
				s.log = l
			}
			stats.TornTail = true
			stats.TornBytes = outcome.tornBytes
		}
		if s.log == nil {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			s.log = &logFile{f: f, bw: newLogWriter(f), path: path, gen: s.gen}
		}
	}

	stats.Generation = s.gen
	stats.Duration = time.Since(start)
	s.stats = stats
	s.state = stateReady
	return nil
}

// applySnapshot replays a snapshot's DDL and rows into the heap and
// restores the catalog version it recorded, so verdict-cache keys
// minted before the crash stay distinct from post-restart schemas.
func (s *Store) applySnapshot(snap *snapshot, stats *RecoveryStats) error {
	for i, ddl := range snap.ddl {
		ct, err := parseCreate(ddl)
		if err != nil {
			return fmt.Errorf("%w: snapshot DDL %d: %v", ErrSnapshotCorrupt, i, err)
		}
		if _, err := s.heap.ApplyDDL(ddl, ct); err != nil {
			return fmt.Errorf("%w: snapshot DDL %d: %v", ErrSnapshotCorrupt, i, err)
		}
		stats.SnapshotTables++
	}
	for i, rows := range snap.rows {
		table := ""
		if i < len(snap.ddl) {
			ct, _ := parseCreate(snap.ddl[i])
			table = ct.Name
		}
		for _, row := range rows {
			if err := s.heap.Insert(table, row); err != nil {
				return fmt.Errorf("%w: snapshot table %s: %v", ErrReplay, table, err)
			}
			stats.SnapshotRows++
		}
	}
	s.heap.Catalog().RestoreVersion(snap.version)
	return nil
}

// replayRecord applies one log record through the live write paths.
func (s *Store) replayRecord(rec record, stats *RecoveryStats) error {
	switch rec.kind {
	case recDDL:
		ct, err := parseCreate(rec.sql)
		if err != nil {
			return fmt.Errorf("%w: DDL %q: %v", ErrReplay, rec.sql, err)
		}
		if _, err := s.heap.ApplyDDL(rec.sql, ct); err != nil {
			return fmt.Errorf("%w: DDL %q: %v", ErrReplay, rec.sql, err)
		}
		s.heap.Catalog().RestoreVersion(rec.version)
		stats.ReplayedDDL++
	case recInsert:
		if err := s.heap.Insert(rec.table, rec.row); err != nil {
			return fmt.Errorf("%w: %v", ErrReplay, err)
		}
		stats.ReplayedRows++
	case recCheckpoint:
		if rec.gen != s.gen {
			return fmt.Errorf("%w: checkpoint record names generation %d in log %d", ErrCorrupt, rec.gen, s.gen)
		}
	}
	return nil
}

// writable returns the typed refusal for the store's current state,
// or nil when writes may proceed.
func (s *Store) writable() error {
	switch s.state {
	case stateRecovering:
		return storage.ErrRecovering
	case stateClosed:
		return storage.ErrClosed
	}
	if s.wedged != nil {
		return fmt.Errorf("%w (cause: %v)", ErrWedged, s.wedged)
	}
	return nil
}

// wedge records the first write-path failure; later writes are
// refused until the store is reopened.
func (s *Store) wedge(err error) {
	if s.wedged == nil {
		s.wedged = err
	}
}

// ApplyDDL defines a table, logs the statement, and fsyncs: schema
// changes are rare and immediately durable.
func (s *Store) ApplyDDL(sql string, ct *ast.CreateTable) (*catalog.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return nil, err
	}
	schema, err := s.heap.ApplyDDL(sql, ct)
	if err != nil {
		return nil, err
	}
	if err := s.log.append(encodeDDL(s.heap.Catalog().Version(), sql)); err != nil {
		s.wedge(err)
		return nil, err
	}
	if err := s.log.sync(); err != nil {
		s.wedge(err)
		return nil, err
	}
	s.appends++
	return schema, nil
}

// Insert validates the row against every constraint (the heap path),
// then logs it. The row is durable — and may be acknowledged —
// after the next Sync; batching appends between syncs is the group
// commit that keeps bulk loads off the fsync floor.
func (s *Store) Insert(table string, row value.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	// Heap first: it enforces the constraints, and a row the heap
	// refuses must never reach the log (replay would refuse it too).
	// The crash window between heap and log loses only rows that
	// were never acknowledged.
	if err := s.heap.Insert(table, row); err != nil {
		return err
	}
	if err := s.log.append(encodeInsert(s.heap.MustTable(table).Schema.Name, row)); err != nil {
		s.wedge(err)
		return err
	}
	s.appends++
	if s.opts.CheckpointEvery > 0 && s.appends >= s.opts.CheckpointEvery {
		// Opportunistic compaction; a failed attempt leaves the
		// current generation intact and is retried on a later write.
		if err := s.checkpointLocked(); err != nil && s.wedged != nil {
			return err
		}
	}
	return nil
}

// Sync flushes buffered appends and fsyncs the log — the durability
// barrier every acknowledgement waits behind.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	if !s.log.dirty {
		return nil
	}
	if err := s.log.sync(); err != nil {
		s.wedge(err)
		return err
	}
	return nil
}

// Checkpoint compacts the log into a fresh snapshot generation.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writable(); err != nil {
		return err
	}
	return s.checkpointLocked()
}

// checkpointLocked runs the generation handoff under s.mu:
//
//  1. fsync the current log (the snapshot must cover everything the
//     log does, and more);
//  2. create and fsync wal-(G+1).log with its checkpoint marker;
//  3. write snapshot generation G+1 (temp + fsync + atomic rename +
//     dir fsync) — the commit point of the checkpoint;
//  4. retire wal-G.log.
//
// A crash or failure before step 3's rename leaves generation G
// authoritative (the stray new log is deleted at recovery); after
// it, generation G+1. No window loses acknowledged records.
func (s *Store) checkpointLocked() error {
	if s.log.dirty {
		if err := s.log.sync(); err != nil {
			s.wedge(err)
			return err
		}
	}
	if err := fault.Point(FaultCheckpointNewLog); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	newLog, err := createLog(s.dir, s.gen+1)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	abort := func(err error) error {
		newLog.f.Close()
		os.Remove(newLog.path)
		return err
	}
	if err := newLog.append(encodeCheckpoint(s.gen+1, s.heap.Catalog().Version())); err != nil {
		return abort(err)
	}
	if err := newLog.sync(); err != nil {
		return abort(err)
	}
	if err := writeSnapshot(s.dir, s.gen+1, s.heap); err != nil {
		return abort(err)
	}
	// Commit point passed: snapshot.dat names generation G+1.
	old := s.log
	s.log = newLog
	s.gen++
	s.appends = 0
	old.f.Close()       // already synced in step 1; nothing buffered
	os.Remove(old.path) // best-effort; recovery deletes stale logs too
	return nil
}

// Close makes everything acknowledged durable and releases the log
// file. The heap stays readable. Close after Close is a no-op.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateClosed {
		return nil
	}
	state := s.state
	s.state = stateClosed
	if s.log == nil {
		return nil
	}
	if s.wedged != nil || state == stateRecovering {
		// The buffer's relationship to the file is unknown (or there
		// is nothing promised); don't risk appending frames after a
		// torn tail — recovery owns this file now.
		return s.log.f.Close()
	}
	return s.log.close()
}

// scanDir lists the wal generations and leftover snapshot temp files
// in dir.
func scanDir(dir string) (gens []uint64, tmps []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if g, ok := parseWalName(e.Name()); ok {
			gens = append(gens, g)
		}
		if strings.HasPrefix(e.Name(), "snapshot-") && strings.HasSuffix(e.Name(), ".tmp") {
			tmps = append(tmps, e.Name())
		}
	}
	return gens, tmps, nil
}

// truncateLog cuts the file to size and fsyncs, removing crash
// residue past the last complete frame.
func truncateLog(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseCreate parses one CREATE TABLE statement.
func parseCreate(sql string) (*ast.CreateTable, error) {
	st, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	ct, ok := st.(*ast.CreateTable)
	if !ok {
		return nil, fmt.Errorf("statement is %T, not CREATE TABLE", st)
	}
	return ct, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
