package wal

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"uniqopt/internal/value"
)

// TestKill9Child is the subprocess body: it opens a WAL store in the
// directory named by WAL_CRASH_DIR and inserts rows forever, syncing
// after every insert and printing "ACK <id>" only once the sync — the
// durability barrier — has returned. The parent kills it with
// SIGKILL at an arbitrary moment, so the process dies mid-append,
// mid-sync, or mid-checkpoint with no cleanup whatsoever.
func TestKill9Child(t *testing.T) {
	dir := os.Getenv("WAL_CRASH_DIR")
	if os.Getenv("WAL_CRASH_CHILD") != "1" || dir == "" {
		t.Skip("subprocess body; driven by TestKill9Recovery")
	}
	s, err := Open(dir, Options{CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	ct, err := parseCreate(testDDL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyDDL(testDDL, ct); err != nil {
		t.Fatal(err)
	}
	fmt.Println("READY")
	for i := int64(0); ; i++ {
		if err := s.Insert("SUPPLIER", value.Row{value.Int(i), value.String_("S"), value.Int(int64(i % 5))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := s.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

// TestKill9Recovery proves the headline crash-safety claim with a
// real unclean death: a child process writes and fsync-acks rows
// until it is SIGKILLed at an arbitrary WAL offset; recovery must
// then restore a prefix of the insert sequence that contains every
// acknowledged row (no lost acks, no phantom rows, torn tail
// truncated) and leave the store writable.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skip("cannot find test binary:", err)
	}
	// Kill after different ack counts so the death lands in different
	// phases: early log, around the CheckpointEvery=64 compaction,
	// and deep into a later generation.
	for _, killAfter := range []int{3, 60, 150} {
		t.Run(fmt.Sprintf("killAfter%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run", "TestKill9Child", "-test.v")
			cmd.Env = append(os.Environ(), "WAL_CRASH_CHILD=1", "WAL_CRASH_DIR="+dir)
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				cmd.Process.Kill()
				cmd.Wait()
			}()

			lastAck := int64(-1)
			sc := bufio.NewScanner(stdout)
			deadline := time.After(30 * time.Second)
			acks := 0
		scan:
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if !strings.HasPrefix(line, "ACK ") {
					continue
				}
				id, err := strconv.ParseInt(strings.TrimPrefix(line, "ACK "), 10, 64)
				if err != nil {
					t.Fatalf("bad ack line %q", line)
				}
				lastAck = id
				acks++
				if acks >= killAfter {
					break scan
				}
				select {
				case <-deadline:
					t.Fatal("child too slow")
				default:
				}
			}
			if acks < killAfter {
				t.Fatalf("child died early: %d acks", acks)
			}
			// The kill races the child's next append/sync/checkpoint:
			// the WAL offset at death is arbitrary by construction.
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()

			re, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if err := re.Recover(); err != nil {
				t.Fatalf("recovery after kill -9: %v", err)
			}
			rows := supplierRows(re)
			// Every acknowledged row must be present...
			if int64(len(rows)) <= lastAck {
				t.Fatalf("lost acknowledged rows: recovered %d, acked through id %d", len(rows), lastAck)
			}
			// ...and the recovered set must be a prefix of the
			// deterministic insert sequence: no phantoms, no gaps.
			for i, row := range rows {
				if row[0].AsInt() != int64(i) {
					t.Fatalf("row %d holds id %d: phantom or reordered row", i, row[0].AsInt())
				}
				if row[2].AsInt() != int64(i%5) {
					t.Fatalf("row %d payload corrupted: %v", i, row)
				}
			}
			// The store must be writable and durable again.
			next := int64(len(rows))
			if err := re.Insert("SUPPLIER", value.Row{value.Int(next), value.String_("S"), value.Int(next % 5)}); err != nil {
				t.Fatalf("insert after recovery: %v", err)
			}
			if err := re.Sync(); err != nil {
				t.Fatalf("sync after recovery: %v", err)
			}
			t.Logf("killed after %d acks; recovered %d rows (stats: %s)", acks, len(rows), re.Stats())
		})
	}
}
