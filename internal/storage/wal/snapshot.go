package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"uniqopt/internal/fault"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

const snapName = "snapshot.dat"

// snapshot is the decoded content of snapshot.dat: the schema as
// replayable canonical DDL (definition order, so foreign keys never
// reference forward) and every table's rows.
type snapshot struct {
	gen     uint64
	version uint64
	ddl     []string
	rows    [][]value.Row // parallel to ddl
}

// writeSnapshot materializes the heap into dir/snapshot.dat with the
// atomic temp-write/fsync/rename/dir-fsync dance: either the old
// snapshot or the complete new one exists, never a partial file
// under the live name.
func writeSnapshot(dir string, gen uint64, heap *storage.DB) error {
	if err := fault.Point(FaultCheckpointSnapshot); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	cat := heap.Catalog()
	body := make([]byte, 0, 4096)
	body = binary.BigEndian.AppendUint64(body, gen)
	body = binary.BigEndian.AppendUint64(body, cat.Version())
	tables := cat.DefinedTables()
	body = binary.AppendUvarint(body, uint64(len(tables)))
	for _, schema := range tables {
		ddl, err := schema.DDL()
		if err != nil {
			return fmt.Errorf("wal: snapshot: encode %s: %w", schema.Name, err)
		}
		body = binary.AppendUvarint(body, uint64(len(ddl)))
		body = append(body, ddl...)
	}
	for _, schema := range tables {
		t, ok := heap.Table(schema.Name)
		if !ok {
			return fmt.Errorf("wal: snapshot: table %s defined but not attached", schema.Name)
		}
		body = binary.AppendUvarint(body, uint64(t.Len()))
		for i := 0; i < t.Len(); i++ {
			body = appendRow(body, t.Row(i))
		}
	}

	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	// Clean the temp file up on every failure path below.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return fail(err)
	}
	if _, err := bw.Write(body); err != nil {
		return fail(err)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	if _, err := bw.Write(crc[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := fault.Point(FaultCheckpointRename); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, snapName)); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return syncDir(dir)
}

// loadSnapshot reads and verifies dir/snapshot.dat. A missing file
// returns (nil, nil); any structural or checksum failure returns
// ErrSnapshotCorrupt.
func loadSnapshot(dir string) (*snapshot, error) {
	path := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	if len(raw) < len(snapMagic)+16+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrSnapshotCorrupt, path)
	}
	body := raw[len(snapMagic) : len(raw)-4]
	wantCRC := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrSnapshotCorrupt, path)
	}
	snap := &snapshot{
		gen:     binary.BigEndian.Uint64(body[0:8]),
		version: binary.BigEndian.Uint64(body[8:16]),
	}
	b := body[16:]
	nTables, sz := binary.Uvarint(b)
	if sz <= 0 || nTables > MaxRecord {
		return nil, fmt.Errorf("%w: %s: bad table count", ErrSnapshotCorrupt, path)
	}
	b = b[sz:]
	for i := uint64(0); i < nTables; i++ {
		l, lsz := binary.Uvarint(b)
		if lsz <= 0 || uint64(len(b)-lsz) < l {
			return nil, fmt.Errorf("%w: %s: DDL %d truncated", ErrSnapshotCorrupt, path, i)
		}
		snap.ddl = append(snap.ddl, string(b[lsz:lsz+int(l)]))
		b = b[lsz+int(l):]
	}
	for i := uint64(0); i < nTables; i++ {
		nRows, rsz := binary.Uvarint(b)
		if rsz <= 0 {
			return nil, fmt.Errorf("%w: %s: row count %d truncated", ErrSnapshotCorrupt, path, i)
		}
		b = b[rsz:]
		rows := make([]value.Row, 0, nRows)
		for r := uint64(0); r < nRows; r++ {
			row, rest, err := decodeRow(b)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: table %d row %d: %v", ErrSnapshotCorrupt, path, i, r, err)
			}
			rows = append(rows, row)
			b = rest
		}
		snap.rows = append(snap.rows, rows)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %s: %d trailing bytes", ErrSnapshotCorrupt, path, len(b))
	}
	return snap, nil
}
