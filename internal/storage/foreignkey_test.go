package storage

import (
	"strings"
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
)

func fkDB(t *testing.T) *DB {
	t.Helper()
	c := catalog.New()
	for _, ddl := range []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, COLOR VARCHAR,
			PRIMARY KEY (SNO, PNO),
			FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
		`CREATE TABLE NOTE (ID INTEGER, SNO INTEGER, PRIMARY KEY (ID),
			FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
	} {
		st, err := parser.ParseStatement(ddl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	return NewDB(c)
}

func TestFKInsertEnforced(t *testing.T) {
	db := fkDB(t)
	if err := db.Insert("PARTS", value.Row{value.Int(1), value.Int(1), value.String_("RED")}); err == nil {
		t.Fatal("orphan child must be rejected")
	}
	if err := db.Insert("SUPPLIER", value.Row{value.Int(1), value.String_("Smith")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("PARTS", value.Row{value.Int(1), value.Int(1), value.String_("RED")}); err != nil {
		t.Errorf("valid child rejected: %v", err)
	}
	err := db.Insert("PARTS", value.Row{value.Int(2), value.Int(1), value.String_("RED")})
	if err == nil || !strings.Contains(err.Error(), "FOREIGN KEY") {
		t.Errorf("orphan error = %v", err)
	}
}

func TestFKNullMatchSimple(t *testing.T) {
	// A NULL FK component makes the dependency vacuous (MATCH SIMPLE).
	db := fkDB(t)
	if err := db.Insert("NOTE", value.Row{value.Int(1), value.Null}); err != nil {
		t.Errorf("NULL FK should be accepted: %v", err)
	}
	if err := db.Insert("NOTE", value.Row{value.Int(2), value.Int(9)}); err == nil {
		t.Error("non-NULL dangling FK must be rejected")
	}
}

func TestFKStandaloneTableUnenforced(t *testing.T) {
	// Tables created outside a DB have no sibling access and skip FK
	// checks — documented behavior for loaders and unit fixtures.
	db := fkDB(t)
	schema, _ := db.Catalog().Table("PARTS")
	solo := NewTable(schema)
	if err := solo.Insert(value.Row{value.Int(77), value.Int(1), value.String_("RED")}); err != nil {
		t.Errorf("standalone table should not enforce FKs: %v", err)
	}
}

// mustCatalog builds a catalog from DDL for fixtures.
func mustCatalog(t *testing.T, ddl []string) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	for _, src := range ddl {
		st, err := parser.ParseStatement(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}
