package storage

import (
	"testing"

	"uniqopt/internal/value"
)

func indexedTable(t *testing.T) *Table {
	t.Helper()
	db := paperDBForIndex(t)
	tbl := db.MustTable("PARTS")
	for sno := int64(1); sno <= 5; sno++ {
		for pno := int64(1); pno <= 4; pno++ {
			row := value.Row{value.Int(sno), value.Int(pno),
				value.String_("p"), value.Int(sno*100 + pno), value.String_(color(pno))}
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func color(pno int64) string {
	if pno%2 == 0 {
		return "RED"
	}
	return "BLUE"
}

// paperDBForIndex builds a FK-free schema so fixture rows stand alone.
func paperDBForIndex(t *testing.T) *DB {
	t.Helper()
	c := mustCatalog(t, []string{
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR,
			OEM-PNO INTEGER, COLOR VARCHAR, PRIMARY KEY (SNO, PNO))`,
	})
	return NewDB(c)
}

func TestCreateOrderedIndexValidation(t *testing.T) {
	tbl := indexedTable(t)
	if _, err := tbl.CreateOrderedIndex("", "SNO"); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := tbl.CreateOrderedIndex("IX"); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := tbl.CreateOrderedIndex("IX", "NOPE"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := tbl.CreateOrderedIndex("IX", "SNO"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateOrderedIndex("ix", "PNO"); err == nil {
		t.Error("duplicate (case-insensitive) name should fail")
	}
}

func TestIndexBuildsOverExistingRows(t *testing.T) {
	tbl := indexedTable(t)
	ix, err := tbl.CreateOrderedIndex("COLOR_IX", "COLOR")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != tbl.Len() {
		t.Errorf("index entries = %d, want %d", ix.Len(), tbl.Len())
	}
	rows, err := ix.Lookup(value.Row{value.String_("RED")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // pno 2 and 4 of 5 suppliers
		t.Errorf("RED rows = %d, want 10", len(rows))
	}
	for _, ri := range rows {
		if tbl.Row(ri)[4].AsString() != "RED" {
			t.Fatalf("row %d is not RED", ri)
		}
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	tbl := indexedTable(t)
	ix, err := tbl.CreateOrderedIndex("SNO_IX", "SNO", "PNO")
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Len()
	if err := tbl.Insert(value.Row{value.Int(9), value.Int(1),
		value.String_("p"), value.Int(901), value.String_("RED")}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != before+1 {
		t.Error("insert did not maintain the index")
	}
	rows, err := ix.Lookup(value.Row{value.Int(9), value.Int(1)})
	if err != nil || len(rows) != 1 {
		t.Errorf("composite lookup = %v, %v", rows, err)
	}
	// Prefix lookup.
	rows, err = ix.Lookup(value.Row{value.Int(2)})
	if err != nil || len(rows) != 4 {
		t.Errorf("prefix lookup = %d rows, %v", len(rows), err)
	}
	// Over-long prefix is an error.
	if _, err := ix.Lookup(value.Row{value.Int(1), value.Int(1), value.Int(1)}); err == nil {
		t.Error("over-long prefix should fail")
	}
	if _, err := ix.Lookup(value.Row{}); err == nil {
		t.Error("empty prefix should fail")
	}
}

func TestIndexRangeScan(t *testing.T) {
	tbl := indexedTable(t)
	ix, err := tbl.CreateOrderedIndex("SNO_IX", "SNO")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := value.Int(2), value.Int(4)
	rows := ix.Range(&lo, &hi)
	if len(rows) != 12 { // suppliers 2,3,4 × 4 parts
		t.Errorf("range rows = %d, want 12", len(rows))
	}
	// Open-ended ranges.
	if got := len(ix.Range(nil, &lo)); got != 8 { // suppliers 1,2
		t.Errorf("open-low range = %d, want 8", got)
	}
	if got := len(ix.Range(&hi, nil)); got != 8 { // suppliers 4,5
		t.Errorf("open-high range = %d, want 8", got)
	}
	if got := len(ix.Range(nil, nil)); got != 20 {
		t.Errorf("full range = %d, want 20", got)
	}
	// Inverted range is empty.
	if got := len(ix.Range(&hi, &lo)); got != 0 {
		t.Errorf("inverted range = %d, want 0", got)
	}
}

func TestIndexRangeExcludesNulls(t *testing.T) {
	c := mustCatalog(t, []string{
		`CREATE TABLE T (A INTEGER, B INTEGER, PRIMARY KEY (A))`,
	})
	db := NewDB(c)
	tbl := db.MustTable("T")
	ix, err := tbl.CreateOrderedIndex("B_IX", "B")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		b := value.Value(value.Int(i))
		if i == 2 {
			b = value.Null
		}
		if err := tbl.Insert(value.Row{value.Int(i), b}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ix.Range(nil, nil)); got != 3 {
		t.Errorf("NULLs must be excluded from ranges: %d, want 3", got)
	}
	lo := value.Int(1)
	if got := len(ix.Range(&lo, nil)); got != 3 {
		t.Errorf("range = %d, want 3", got)
	}
}

func TestIndexTruncate(t *testing.T) {
	tbl := indexedTable(t)
	ix, _ := tbl.CreateOrderedIndex("SNO_IX", "SNO")
	tbl.Truncate()
	if ix.Len() != 0 {
		t.Error("truncate must empty indexes")
	}
	if err := tbl.Insert(value.Row{value.Int(1), value.Int(1),
		value.String_("p"), value.Int(1), value.String_("RED")}); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Error("index not maintained after truncate")
	}
}

func TestOrderedIndexOn(t *testing.T) {
	tbl := indexedTable(t)
	if tbl.OrderedIndexOn("SNO") != nil {
		t.Error("no index yet")
	}
	ix, _ := tbl.CreateOrderedIndex("CIX", "COLOR", "PNO")
	if tbl.OrderedIndexOn("COLOR") != ix {
		t.Error("leading-column lookup failed")
	}
	if tbl.OrderedIndexOn("PNO") != nil {
		t.Error("non-leading column must not match")
	}
	if tbl.OrderedIndexOn("NOPE") != nil {
		t.Error("unknown column must not match")
	}
	if got := len(tbl.OrderedIndexes()); got != 1 {
		t.Errorf("indexes = %d", got)
	}
}
