package storage

import (
	"fmt"
	"sort"
	"strings"

	"uniqopt/internal/value"
)

// OrderedIndex is a sorted secondary index over one or more columns:
// entries are (key projection, row ordinal) pairs ordered by
// value.OrderCompareRows then ordinal. It supports equality lookups on
// a leading prefix and range scans on the first column — the access
// paths the paper's Section 6 examples assume ("an index on PARTS by
// PNO and an index on SUPPLIER by SNO").
type OrderedIndex struct {
	Name    string
	Columns []int // ordinals in the owning table
	keys    []value.Row
	rows    []int
}

// Len reports the number of index entries.
func (ix *OrderedIndex) Len() int { return len(ix.rows) }

func (ix *OrderedIndex) insert(key value.Row, row int) {
	i := sort.Search(len(ix.keys), func(i int) bool {
		c := value.OrderCompareRows(ix.keys[i], key)
		if c != 0 {
			return c >= 0
		}
		return ix.rows[i] >= row
	})
	ix.keys = append(ix.keys, nil)
	ix.rows = append(ix.rows, 0)
	copy(ix.keys[i+1:], ix.keys[i:])
	copy(ix.rows[i+1:], ix.rows[i:])
	ix.keys[i] = key
	ix.rows[i] = row
}

// prefixBounds returns the half-open entry span whose keys start with
// prefix (compared with OrderCompareRows on the prefix length).
func (ix *OrderedIndex) prefixBounds(prefix value.Row) (int, int) {
	n := len(prefix)
	lo := sort.Search(len(ix.keys), func(i int) bool {
		return value.OrderCompareRows(ix.keys[i][:n], prefix) >= 0
	})
	hi := sort.Search(len(ix.keys), func(i int) bool {
		return value.OrderCompareRows(ix.keys[i][:n], prefix) > 0
	})
	return lo, hi
}

// Lookup returns the row ordinals whose leading index columns equal
// prefix under ≐ ordering. An over-long prefix is an error.
func (ix *OrderedIndex) Lookup(prefix value.Row) ([]int, error) {
	if len(prefix) == 0 || len(prefix) > len(ix.Columns) {
		return nil, fmt.Errorf("storage: index %s: prefix length %d out of range", ix.Name, len(prefix))
	}
	lo, hi := ix.prefixBounds(prefix)
	return append([]int(nil), ix.rows[lo:hi]...), nil
}

// Range returns the row ordinals whose first index column lies in
// [lo, hi] (NULLs excluded; a nil bound is open).
func (ix *OrderedIndex) Range(lo, hi *value.Value) []int {
	a := 0
	if lo != nil {
		a = sort.Search(len(ix.keys), func(i int) bool {
			if ix.keys[i][0].IsNull() {
				return false // NULL sorts first, excluded
			}
			return value.OrderCompare(ix.keys[i][0], *lo) >= 0
		})
	} else {
		// Skip NULL entries.
		a = sort.Search(len(ix.keys), func(i int) bool {
			return !ix.keys[i][0].IsNull()
		})
	}
	b := len(ix.keys)
	if hi != nil {
		b = sort.Search(len(ix.keys), func(i int) bool {
			if ix.keys[i][0].IsNull() {
				return false
			}
			return value.OrderCompare(ix.keys[i][0], *hi) > 0
		})
	}
	if a > b {
		return nil
	}
	return append([]int(nil), ix.rows[a:b]...)
}

// CreateOrderedIndex builds a sorted index over the named columns and
// registers it on the table; existing rows are indexed immediately and
// future inserts maintain it.
func (t *Table) CreateOrderedIndex(name string, cols ...string) (*OrderedIndex, error) {
	if name == "" || len(cols) == 0 {
		return nil, fmt.Errorf("storage: index needs a name and columns")
	}
	name = strings.ToUpper(name)
	for _, ix := range t.ordered {
		if ix.Name == name {
			return nil, fmt.Errorf("storage: %s: duplicate index %s", t.Schema.Name, name)
		}
	}
	ix := &OrderedIndex{Name: name}
	for _, cn := range cols {
		ci := t.Schema.ColumnIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("storage: %s: index column %s does not exist", t.Schema.Name, cn)
		}
		ix.Columns = append(ix.Columns, ci)
	}
	for ri, row := range t.rows {
		ix.insert(indexKey(row, ix.Columns), ri)
	}
	t.ordered = append(t.ordered, ix)
	if t.db != nil {
		// A new access path changes which plan the planner would pick:
		// bump the schema version so version-keyed caches (verdicts,
		// physical plans) re-derive rather than serve pre-index results.
		t.db.cat.Bump()
	}
	return ix, nil
}

// OrderedIndexes returns the table's ordered indexes.
func (t *Table) OrderedIndexes() []*OrderedIndex { return t.ordered }

// OrderedIndexOn returns an index whose leading column is the named
// column, if one exists.
func (t *Table) OrderedIndexOn(col string) *OrderedIndex {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return nil
	}
	for _, ix := range t.ordered {
		if ix.Columns[0] == ci {
			return ix
		}
	}
	return nil
}

func indexKey(row value.Row, cols []int) value.Row {
	out := make(value.Row, len(cols))
	for i, c := range cols {
		out[i] = row[c]
	}
	return out
}
