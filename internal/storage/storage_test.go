package storage

import (
	"strings"
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
)

func paperDB(t *testing.T) *DB {
	t.Helper()
	c := catalog.New()
	for _, ddl := range []string{
		`CREATE TABLE SUPPLIER (
			SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR, BUDGET INTEGER, STATUS VARCHAR,
			PRIMARY KEY (SNO),
			CHECK (SNO BETWEEN 1 AND 499),
			CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
			CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))`,
		`CREATE TABLE PARTS (
			SNO INTEGER, PNO INTEGER, PNAME VARCHAR, OEM-PNO INTEGER, COLOR VARCHAR,
			PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO),
			CHECK (SNO BETWEEN 1 AND 499))`,
	} {
		st, err := parser.ParseStatement(ddl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	return NewDB(c)
}

func supplierRow(sno int64, name, city string, budget int64, status string) value.Row {
	return value.Row{value.Int(sno), value.String_(name), value.String_(city),
		value.Int(budget), value.String_(status)}
}

func partsRow(sno, pno int64, name string, oem value.Value, color string) value.Row {
	return value.Row{value.Int(sno), value.Int(pno), value.String_(name), oem, value.String_(color)}
}

func TestInsertAndRead(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("supplier")
	if err := s.Insert(supplierRow(1, "Acme", "Toronto", 100, "Active")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("row not stored")
	}
	if s.Row(0)[1].AsString() != "Acme" {
		t.Error("row content wrong")
	}
}

func TestInsertClonesRow(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	row := supplierRow(1, "Acme", "Toronto", 100, "Active")
	if err := s.Insert(row); err != nil {
		t.Fatal(err)
	}
	row[1] = value.String_("Mutated")
	if s.Row(0)[1].AsString() != "Acme" {
		t.Error("Insert did not clone the row")
	}
}

func TestArityAndTypeChecks(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	if err := s.Insert(value.Row{value.Int(1)}); err == nil {
		t.Error("short row should fail")
	}
	bad := supplierRow(1, "A", "Toronto", 1, "Active")
	bad[3] = value.String_("not-an-int")
	if err := s.Insert(bad); err == nil || !strings.Contains(err.Error(), "BUDGET") {
		t.Errorf("type mismatch should fail naming the column, got %v", err)
	}
}

func TestNotNullEnforcement(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	row := supplierRow(1, "A", "Toronto", 1, "Active")
	row[0] = value.Null // primary key column
	if err := s.Insert(row); err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Errorf("NULL primary key should fail, got %v", err)
	}
	// Non-key nullable column accepts NULL.
	ok := supplierRow(1, "A", "Toronto", 1, "Active")
	ok[1] = value.Null
	if err := s.Insert(ok); err != nil {
		t.Errorf("nullable column rejected NULL: %v", err)
	}
}

func TestCheckEnforcement(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	if err := s.Insert(supplierRow(500, "A", "Toronto", 1, "Active")); err == nil {
		t.Error("SNO out of range should fail")
	}
	if err := s.Insert(supplierRow(1, "A", "Ottawa", 1, "Active")); err == nil {
		t.Error("SCITY not in list should fail")
	}
	if err := s.Insert(supplierRow(1, "A", "Toronto", 0, "Active")); err == nil {
		t.Error("BUDGET=0 with Active should fail the implication constraint")
	}
	if err := s.Insert(supplierRow(1, "A", "Toronto", 0, "Inactive")); err != nil {
		t.Errorf("BUDGET=0 with Inactive should pass: %v", err)
	}
}

func TestCheckTrueInterpretation(t *testing.T) {
	// NULL SCITY makes the IN-check Unknown: the row must be accepted.
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	row := supplierRow(1, "A", "Toronto", 1, "Active")
	row[2] = value.Null
	if err := s.Insert(row); err != nil {
		t.Errorf("Unknown CHECK must pass (true-interpreted): %v", err)
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := paperDB(t)
	p := db.MustTable("PARTS")
	if err := p.Insert(partsRow(1, 1, "bolt", value.Int(100), "RED")); err != nil {
		t.Fatal(err)
	}
	// Same (SNO, PNO): reject.
	if err := p.Insert(partsRow(1, 1, "nut", value.Int(101), "BLUE")); err == nil {
		t.Error("duplicate primary key should fail")
	}
	// Different PNO: fine.
	if err := p.Insert(partsRow(1, 2, "nut", value.Int(102), "BLUE")); err != nil {
		t.Errorf("distinct key rejected: %v", err)
	}
}

func TestUniqueKeyNullSemantics(t *testing.T) {
	// The paper: "any instance of PARTS may have only one tuple with
	// OEM-PNO = NULL" — NULL is a single special value for keys.
	db := paperDB(t)
	p := db.MustTable("PARTS")
	if err := p.Insert(partsRow(1, 1, "bolt", value.Null, "RED")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(partsRow(1, 2, "nut", value.Null, "BLUE")); err == nil {
		t.Error("second NULL OEM-PNO should fail under ≐ key semantics")
	}
	if err := p.Insert(partsRow(1, 2, "nut", value.Int(5), "BLUE")); err != nil {
		t.Errorf("non-NULL OEM-PNO rejected: %v", err)
	}
	if err := p.Insert(partsRow(1, 3, "cog", value.Int(5), "RED")); err == nil {
		t.Error("duplicate OEM-PNO should fail")
	}
}

func TestLookupKey(t *testing.T) {
	db := paperDB(t)
	p := db.MustTable("PARTS")
	for pno := int64(1); pno <= 5; pno++ {
		if err := p.Insert(partsRow(1, pno, "p", value.Int(100+pno), "RED")); err != nil {
			t.Fatal(err)
		}
	}
	ri := p.LookupKey(0, value.Row{value.Int(1), value.Int(3)})
	if ri < 0 || p.Row(ri)[1].AsInt() != 3 {
		t.Errorf("primary key lookup = %d", ri)
	}
	ri = p.LookupKey(1, value.Row{value.Int(104)})
	if ri < 0 || p.Row(ri)[1].AsInt() != 4 {
		t.Errorf("candidate key lookup = %d", ri)
	}
	if p.LookupKey(0, value.Row{value.Int(9), value.Int(9)}) != -1 {
		t.Error("missing key should return -1")
	}
}

func TestTruncate(t *testing.T) {
	db := paperDB(t)
	p := db.MustTable("PARTS")
	if err := p.Insert(partsRow(1, 1, "bolt", value.Int(1), "RED")); err != nil {
		t.Fatal(err)
	}
	p.Truncate()
	if p.Len() != 0 {
		t.Error("Truncate left rows behind")
	}
	// Key index must be reset too: the same key may be inserted again.
	if err := p.Insert(partsRow(1, 1, "bolt", value.Int(1), "RED")); err != nil {
		t.Errorf("insert after truncate failed: %v", err)
	}
}

func TestDBLookup(t *testing.T) {
	db := paperDB(t)
	if _, ok := db.Table("NOPE"); ok {
		t.Error("unknown table lookup should fail")
	}
	if err := db.Insert("NOPE", value.Row{}); err == nil {
		t.Error("insert into unknown table should fail")
	}
	if err := db.Insert("supplier", supplierRow(1, "A", "Toronto", 1, "Active")); err != nil {
		t.Errorf("DB.Insert failed: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on unknown table should panic")
		}
	}()
	db.MustTable("NOPE")
}

func TestValidateDoesNotStore(t *testing.T) {
	db := paperDB(t)
	s := db.MustTable("SUPPLIER")
	if err := s.Validate(supplierRow(1, "A", "Toronto", 1, "Active")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Error("Validate must not store the row")
	}
}
