// Package fd implements functional dependencies over derived tables.
//
// A key declaration on a base table implies that all attributes of the
// table are functionally dependent on the key (a key dependency, KD).
// The paper's analysis tracks which functional dependencies (FDs)
// survive into a derived table — derived FDs — under selection,
// projection and extended Cartesian product, and under the ≐
// (null-equivalent) comparison of Definition 1: corresponding
// attributes must either agree in value or both be NULL.
//
// Attributes are identified by canonical "CORRELATION.COLUMN" strings,
// matching the norm package. Three constructors mirror the three
// sources of dependencies in Theorem 1's antecedent:
//
//   - AddKey:      U_i(R) → α(R), one per candidate key (key dependency)
//   - AddConstant: ∅ → v, from a Type 1 predicate v = c
//   - AddEquiv:    v1 ↔ v2, from a Type 2 predicate v1 = v2
//
// Algorithm 1's bound-column set V is exactly the attribute closure of
// the projection list under these dependencies; the fd package is the
// engine beneath internal/core.
package fd

import (
	"sort"
	"strings"
)

// FD is a functional dependency From → To. An empty From means the
// right-hand side is constant across all qualifying rows.
type FD struct {
	From []string
	To   []string
}

// String renders the dependency as "A,B -> C,D".
func (f FD) String() string {
	lhs := strings.Join(f.From, ",")
	if lhs == "" {
		lhs = "∅"
	}
	return lhs + " -> " + strings.Join(f.To, ",")
}

// Set is a mutable collection of functional dependencies.
type Set struct {
	fds []FD
}

// NewSet returns an empty dependency set.
func NewSet() *Set { return &Set{} }

// Add inserts the dependency from → to.
func (s *Set) Add(from, to []string) {
	if len(to) == 0 {
		return
	}
	s.fds = append(s.fds, FD{From: append([]string(nil), from...), To: append([]string(nil), to...)})
}

// AddKey records a key dependency: key determines every attribute in
// all (which should include the key itself).
func (s *Set) AddKey(key, all []string) { s.Add(key, all) }

// AddConstant records that col is constant across qualifying rows
// (Type 1 equality v = c).
func (s *Set) AddConstant(col string) { s.Add(nil, []string{col}) }

// AddEquiv records mutual determination between a and b (Type 2
// equality v1 = v2).
func (s *Set) AddEquiv(a, b string) {
	if a == b {
		return
	}
	s.Add([]string{a}, []string{b})
	s.Add([]string{b}, []string{a})
}

// Union merges another set into s.
func (s *Set) Union(o *Set) {
	s.fds = append(s.fds, o.fds...)
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{fds: make([]FD, len(s.fds))}
	for i, f := range s.fds {
		out.fds[i] = FD{
			From: append([]string(nil), f.From...),
			To:   append([]string(nil), f.To...),
		}
	}
	return out
}

// Len reports the number of stored dependencies.
func (s *Set) Len() int { return len(s.fds) }

// FDs returns a copy of the stored dependencies.
func (s *Set) FDs() []FD {
	return append([]FD(nil), s.fds...)
}

// Closure computes the attribute closure of attrs under s: the set of
// attributes functionally determined by attrs. Standard fixpoint
// iteration; O(|fds| · |attrs|) per pass.
func (s *Set) Closure(attrs []string) map[string]bool {
	out := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		out[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if !allIn(f.From, out) {
				continue
			}
			for _, t := range f.To {
				if !out[t] {
					out[t] = true
					changed = true
				}
			}
		}
	}
	return out
}

// Implies reports whether from → to is derivable from s (Armstrong
// closure membership).
func (s *Set) Implies(from, to []string) bool {
	cl := s.Closure(from)
	return allIn(to, cl)
}

// IsSuperkey reports whether attrs functionally determine every
// attribute in all.
func (s *Set) IsSuperkey(attrs, all []string) bool {
	return s.Implies(attrs, all)
}

// MinimizeKey shrinks a superkey to a minimal key by greedy removal.
// The result depends on attribute order; callers wanting determinism
// should sort attrs first. Returns nil if attrs is not a superkey.
func (s *Set) MinimizeKey(attrs, all []string) []string {
	if !s.IsSuperkey(attrs, all) {
		return nil
	}
	key := append([]string(nil), attrs...)
	for i := 0; i < len(key); {
		trial := make([]string, 0, len(key)-1)
		trial = append(trial, key[:i]...)
		trial = append(trial, key[i+1:]...)
		if s.IsSuperkey(trial, all) {
			key = trial
		} else {
			i++
		}
	}
	return key
}

// CandidateKeys enumerates candidate keys of the attribute set all
// under s, using the Lucchesi–Osborn saturation: for every known key K
// and every FD X → Y, (K \ Y) ∪ X is a superkey whose minimization may
// be a new candidate key. The search is capped at max keys (the
// problem is exponential in general; Darwen's algorithm has the same
// character). Results are sorted for determinism.
func (s *Set) CandidateKeys(all []string, max int) [][]string {
	if max <= 0 {
		max = 16
	}
	first := s.MinimizeKey(all, all)
	if first == nil {
		return nil
	}
	sort.Strings(first)
	keys := [][]string{first}
	seen := map[string]bool{strings.Join(first, "\x00"): true}
	for i := 0; i < len(keys) && len(keys) < max; i++ {
		for _, f := range s.fds {
			if len(f.From) == 0 {
				continue
			}
			trial := subtract(keys[i], f.To)
			trial = union(trial, f.From)
			k := s.MinimizeKey(trial, all)
			if k == nil {
				continue
			}
			sort.Strings(k)
			id := strings.Join(k, "\x00")
			if !seen[id] {
				seen[id] = true
				keys = append(keys, k)
				if len(keys) >= max {
					break
				}
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return strings.Join(keys[i], ",") < strings.Join(keys[j], ",")
	})
	return keys
}

// Project restricts the dependency set to attributes in keep: the
// derived table after projection retains an FD X → y when X ⊆ keep,
// y ∈ keep, and X → y is derivable. Full projection of an FD set is
// exponential (Klug 1980); this implementation rewrites each stored
// FD's left-hand side into keep where possible — dropping attributes
// that are constants (∅-closure members) and substituting equivalent
// kept attributes for projected-away ones — and then closes. This
// preserves the derived key dependencies the paper's analysis needs
// (key dependencies whose LHS columns are bound by Type 1/Type 2
// predicates or survive projection), at the cost of missing FDs whose
// minimal determinants arise only from subset enumeration.
func (s *Set) Project(keep []string) *Set {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	out := NewSet()
	// Constants survive projection directly.
	empty := s.Closure(nil)
	for a := range empty {
		if keepSet[a] {
			out.AddConstant(a)
		}
	}
	for _, f := range s.fds {
		if len(f.From) == 0 {
			continue
		}
		from, ok := s.rewriteLHS(f.From, keepSet, empty)
		if !ok {
			continue
		}
		cl := s.Closure(f.From)
		var to []string
		for a := range cl {
			if keepSet[a] {
				to = append(to, a)
			}
		}
		sort.Strings(to)
		if len(to) > 0 {
			out.Add(from, to)
		}
	}
	return out
}

// rewriteLHS maps an FD left-hand side into keep: attributes already
// in keep pass through; attributes that are constants are dropped;
// other attributes are substituted by a kept attribute that determines
// them, if one exists. Returns ok=false when no rewriting exists.
func (s *Set) rewriteLHS(from []string, keep, constants map[string]bool) ([]string, bool) {
	var out []string
	seen := make(map[string]bool)
	add := func(a string) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, a := range from {
		switch {
		case keep[a]:
			add(a)
		case constants[a]:
			// Bound to a constant: contributes nothing to the LHS.
		default:
			sub := ""
			for b := range keep {
				if s.Implies([]string{b}, []string{a}) {
					if sub == "" || b < sub {
						sub = b // deterministic choice
					}
				}
			}
			if sub == "" {
				return nil, false
			}
			add(sub)
		}
	}
	sort.Strings(out)
	return out, true
}

func allIn(attrs []string, set map[string]bool) bool {
	for _, a := range attrs {
		if !set[a] {
			return false
		}
	}
	return true
}

func subtract(a, b []string) []string {
	drop := make(map[string]bool, len(b))
	for _, x := range b {
		drop[x] = true
	}
	var out []string
	for _, x := range a {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

func union(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
