package fd

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func sorted(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestClosureBasics(t *testing.T) {
	s := NewSet()
	s.Add([]string{"A"}, []string{"B"})
	s.Add([]string{"B"}, []string{"C"})
	cl := s.Closure([]string{"A"})
	if !cl["A"] || !cl["B"] || !cl["C"] {
		t.Errorf("closure = %v", sorted(cl))
	}
	cl = s.Closure([]string{"B"})
	if cl["A"] {
		t.Error("closure should not flow backwards")
	}
}

func TestConstantsHaveEmptyLHS(t *testing.T) {
	s := NewSet()
	s.AddConstant("X")
	cl := s.Closure(nil)
	if !cl["X"] {
		t.Error("constant must appear in the closure of the empty set")
	}
}

func TestAddEquiv(t *testing.T) {
	s := NewSet()
	s.AddEquiv("A", "B")
	if !s.Implies([]string{"A"}, []string{"B"}) || !s.Implies([]string{"B"}, []string{"A"}) {
		t.Error("equivalence must imply both directions")
	}
	s.AddEquiv("C", "C")
	if s.Len() != 2 {
		t.Error("self-equivalence must be ignored")
	}
}

func TestAddEmptyToIgnored(t *testing.T) {
	s := NewSet()
	s.Add([]string{"A"}, nil)
	if s.Len() != 0 {
		t.Error("FD with empty RHS should be ignored")
	}
}

func TestKeyDependencyExample3(t *testing.T) {
	// Paper Example 3: SELECT ALL S.SNO, SNAME, P.PNO, PNAME
	// FROM SUPPLIER S, PARTS P
	// WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO.
	// Claim: P.PNO is a key of the derived table, and
	// S.SNO → S.SNAME survives as a non-key dependency.
	s := NewSet()
	supplierAll := []string{"S.SNO", "S.SNAME", "S.SCITY", "S.BUDGET", "S.STATUS"}
	partsAll := []string{"P.SNO", "P.PNO", "P.PNAME", "P.OEM-PNO", "P.COLOR"}
	s.AddKey([]string{"S.SNO"}, supplierAll)
	s.AddKey([]string{"P.SNO", "P.PNO"}, partsAll)
	s.AddKey([]string{"P.OEM-PNO"}, partsAll)
	s.AddConstant("P.SNO")       // P.SNO = :SUPPLIER-NO
	s.AddEquiv("S.SNO", "P.SNO") // S.SNO = P.SNO

	all := append(append([]string{}, supplierAll...), partsAll...)
	if !s.IsSuperkey([]string{"P.PNO"}, all) {
		t.Fatal("P.PNO must be a superkey of the derived product")
	}
	// The derived key dependency in the projected table.
	proj := []string{"S.SNO", "S.SNAME", "P.PNO", "P.PNAME"}
	p := s.Project(proj)
	if !p.IsSuperkey([]string{"P.PNO"}, proj) {
		t.Error("P.PNO must remain a key after projection")
	}
	// S.SNO → S.SNAME survives as a non-key FD.
	if !p.Implies([]string{"S.SNO"}, []string{"S.SNAME"}) {
		t.Error("S.SNO → S.SNAME must survive projection")
	}
	if p.IsSuperkey([]string{"S.SNAME"}, proj) {
		t.Error("S.SNAME must not be a key")
	}
}

func TestMinimizeKey(t *testing.T) {
	s := NewSet()
	all := []string{"A", "B", "C"}
	s.AddKey([]string{"A"}, all)
	k := s.MinimizeKey([]string{"A", "B", "C"}, all)
	if !reflect.DeepEqual(k, []string{"A"}) {
		t.Errorf("minimized key = %v", k)
	}
	if s.MinimizeKey([]string{"B"}, all) != nil {
		t.Error("non-superkey must minimize to nil")
	}
}

func TestCandidateKeysEnumeration(t *testing.T) {
	// PARTS: primary key (SNO, PNO) and candidate key OEM-PNO.
	s := NewSet()
	all := []string{"SNO", "PNO", "PNAME", "OEM-PNO", "COLOR"}
	s.AddKey([]string{"SNO", "PNO"}, all)
	s.AddKey([]string{"OEM-PNO"}, all)
	keys := s.CandidateKeys(all, 16)
	want := [][]string{{"OEM-PNO"}, {"PNO", "SNO"}}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("candidate keys = %v, want %v", keys, want)
	}
}

func TestCandidateKeysWithEquivalence(t *testing.T) {
	// A is key; A ↔ B makes B a key too.
	s := NewSet()
	all := []string{"A", "B", "C"}
	s.AddKey([]string{"A"}, all)
	s.AddEquiv("A", "B")
	keys := s.CandidateKeys(all, 16)
	want := [][]string{{"A"}, {"B"}}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("candidate keys = %v, want %v", keys, want)
	}
}

func TestCandidateKeysNoKey(t *testing.T) {
	s := NewSet()
	// No FDs: the only key of {A,B} is {A,B} itself.
	keys := s.CandidateKeys([]string{"A", "B"}, 4)
	want := [][]string{{"A", "B"}}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("keys = %v", keys)
	}
}

func TestCandidateKeysCap(t *testing.T) {
	// n mutually equivalent attributes yield n singleton keys; the cap
	// truncates enumeration.
	s := NewSet()
	var all []string
	for i := 0; i < 8; i++ {
		all = append(all, string(rune('A'+i)))
	}
	s.AddKey([]string{"A"}, all)
	for i := 1; i < 8; i++ {
		s.AddEquiv("A", all[i])
	}
	keys := s.CandidateKeys(all, 3)
	if len(keys) != 3 {
		t.Errorf("cap not honored: %d keys", len(keys))
	}
	keys = s.CandidateKeys(all, 100)
	if len(keys) != 8 {
		t.Errorf("expected 8 singleton keys, got %v", keys)
	}
}

func TestProjectDropsUnprojectableFDs(t *testing.T) {
	s := NewSet()
	s.Add([]string{"A"}, []string{"B"})
	s.Add([]string{"B"}, []string{"C"})
	p := s.Project([]string{"A", "C"})
	// A → C holds via transitivity even though B is projected away.
	if !p.Implies([]string{"A"}, []string{"C"}) {
		t.Error("transitive FD must survive projection")
	}
	// B is gone; nothing about it remains.
	for _, f := range p.FDs() {
		if strings.Contains(f.String(), "B") {
			t.Errorf("projected set mentions B: %v", f)
		}
	}
}

func TestProjectKeepsConstants(t *testing.T) {
	s := NewSet()
	s.AddConstant("A")
	s.Add([]string{"A"}, []string{"B"})
	p := s.Project([]string{"B"})
	// A is constant and A → B, so B is constant in the projection.
	// Note: our conservative projection keeps B constant because the
	// empty-set closure includes it.
	if !p.Closure(nil)["B"] {
		t.Error("constant propagation through projection failed")
	}
}

func TestUnionAndClone(t *testing.T) {
	a := NewSet()
	a.Add([]string{"A"}, []string{"B"})
	b := NewSet()
	b.Add([]string{"B"}, []string{"C"})
	a.Union(b)
	if !a.Implies([]string{"A"}, []string{"C"}) {
		t.Error("union failed")
	}
	c := a.Clone()
	c.Add([]string{"C"}, []string{"D"})
	if a.Implies([]string{"A"}, []string{"D"}) {
		t.Error("clone shares state")
	}
}

func TestFDString(t *testing.T) {
	f := FD{From: []string{"A", "B"}, To: []string{"C"}}
	if f.String() != "A,B -> C" {
		t.Errorf("String = %q", f.String())
	}
	f = FD{To: []string{"X"}}
	if f.String() != "∅ -> X" {
		t.Errorf("String = %q", f.String())
	}
}

// Armstrong's axioms as properties over random FD sets: reflexivity,
// augmentation, transitivity, all realized through Closure.
func TestArmstrongProperties(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E"}
	r := rand.New(rand.NewSource(42))
	randSubset := func() []string {
		var out []string
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				out = append(out, a)
			}
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		s := NewSet()
		for i := 0; i < r.Intn(6); i++ {
			from, to := randSubset(), randSubset()
			if len(to) > 0 {
				s.Add(from, to)
			}
		}
		x, y := randSubset(), randSubset()
		// Reflexivity: X ⊇ Y ⇒ X → Y.
		inX := make(map[string]bool)
		for _, a := range x {
			inX[a] = true
		}
		sub := true
		for _, a := range y {
			if !inX[a] {
				sub = false
			}
		}
		if sub && !s.Implies(x, y) {
			t.Fatalf("reflexivity violated: %v → %v", x, y)
		}
		// Transitivity through closure: if X → Y and Y → Z then X → Z.
		z := randSubset()
		if s.Implies(x, y) && s.Implies(y, z) && !s.Implies(x, z) {
			t.Fatalf("transitivity violated: %v → %v → %v", x, y, z)
		}
		// Monotonicity: closure(X) ⊆ closure(X ∪ W).
		w := randSubset()
		xw := append(append([]string{}, x...), w...)
		clX, clXW := s.Closure(x), s.Closure(xw)
		for a := range clX {
			if !clXW[a] {
				t.Fatalf("monotonicity violated at %s", a)
			}
		}
	}
}

// Property: every enumerated candidate key is minimal and a superkey.
func TestCandidateKeysMinimalityProperty(t *testing.T) {
	attrs := []string{"A", "B", "C", "D"}
	r := rand.New(rand.NewSource(7))
	randSubset := func() []string {
		var out []string
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				out = append(out, a)
			}
		}
		return out
	}
	for trial := 0; trial < 100; trial++ {
		s := NewSet()
		for i := 0; i < 1+r.Intn(4); i++ {
			from, to := randSubset(), randSubset()
			if len(to) > 0 {
				s.Add(from, to)
			}
		}
		for _, k := range s.CandidateKeys(attrs, 32) {
			if !s.IsSuperkey(k, attrs) {
				t.Fatalf("non-superkey enumerated: %v", k)
			}
			for i := range k {
				trial := append(append([]string{}, k[:i]...), k[i+1:]...)
				if s.IsSuperkey(trial, attrs) {
					t.Fatalf("non-minimal key enumerated: %v (drop %s)", k, k[i])
				}
			}
		}
	}
}
