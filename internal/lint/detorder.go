package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder protects the engine's byte-identical-to-serial guarantee
// and the stability of plans and EXPLAIN output: Go map iteration
// order is deliberately randomized, so a `for … range m` over a map
// that appends to a result slice, or writes output directly, produces
// a different ordering on every run unless the result is sorted
// afterwards. The analyzer flags:
//
//   - appends (inside a map-range body) into a slice declared outside
//     the loop, when no later call in the same function passes that
//     slice to something that sorts it (a callee whose name contains
//     "sort", e.g. sort.Strings, sort.Slice, SortRows);
//   - direct output from a map-range body (fmt printing, Write*
//     methods on a destination declared outside the loop).
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "flag map iteration that builds ordered output (slices, printed text) without a subsequent sort",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runDetOrderFunc(pass, fd)
		}
	}
}

// calleeName extracts the called function/method name from a call.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// qualifiedCalleeName includes the package/receiver qualifier when it
// is a plain identifier, so "sort.Strings" is recognizably sorty.
func qualifiedCalleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return calleeName(call)
}

// isFmtOutput reports whether call is a fmt printing call
// (Print/Printf/Println/Fprint*) — direct output.
func isFmtOutput(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
}

func runDetOrderFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xt := info.Types[rng.X].Type
		if xt == nil {
			return true
		}
		if _, isMap := xt.Underlying().(*types.Map); !isMap {
			return true
		}

		// Accumulators appended to inside the body, declared outside
		// the range statement.
		type acc struct {
			obj *types.Var
			id  *ast.Ident
		}
		var accs []acc
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || i >= len(as.Lhs) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, id)
				if obj == nil || obj.Pos() > rng.Pos() {
					continue // declared inside the loop: per-iteration, no cross-key order
				}
				accs = append(accs, acc{obj: obj, id: id})
			}
			return true
		})

		// Direct output from the body is unfixable after the fact.
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			writer := strings.HasPrefix(name, "Write") || name == "Fprintf" || name == "Fprintln"
			if isFmtOutput(info, call) || writer {
				if writer {
					// Write* on a receiver declared inside the loop
					// (a per-key buffer) is fine.
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if root := rootIdent(sel.X); root != nil {
							if obj := objOf(info, root); obj != nil && obj.Pos() > rng.Pos() {
								return true
							}
						}
					}
				}
				pass.Report(call.Pos(),
					"output written while ranging over a map: iteration order is nondeterministic; collect into a slice, sort, then emit")
				return true
			}
			return true
		})

		// An accumulator is fine if something after the loop sorts it.
		for _, a := range accs {
			if sortedAfter(info, fd, rng, a.obj) {
				continue
			}
			pass.Report(a.id.Pos(),
				"slice %s is appended to while ranging over a map and never sorted afterwards; plan/EXPLAIN output must be deterministic — sort it (e.g. sort.Strings/sort.Slice) or collect sorted keys first",
				a.obj.Name())
		}
		return true
	})
}

// sortedAfter reports whether, after the range statement, the function
// passes obj to a callee whose name mentions sorting.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !strings.Contains(strings.ToLower(qualifiedCalleeName(call)), "sort") {
			return true
		}
		refs := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && objOf(info, id) == obj {
					refs = true
				}
				return true
			})
		}
		// Method form: v.Sort(), v.SortRows().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !refs {
			if root := rootIdent(sel.X); root != nil && objOf(info, root) == obj {
				refs = true
			}
		}
		if refs {
			found = true
		}
		return !found
	})
	return found
}
