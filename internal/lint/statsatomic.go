package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// StatsAtomic polices access to the engine.Stats work counters. The
// documented concurrency contract (engine/stats.go) is: inside the
// engine's operator implementation each worker increments a private
// Stats directly and merges it through the atomic Add after the
// barrier; everyone else must use Add/AddCache to accumulate and
// Snapshot to read. The analyzer enforces the statically checkable
// faces of that contract:
//
//  1. Outside the engine implementation (any other package, and
//     engine's own test files), reading or writing a counter field
//     through a *Stats pointer is flagged — a pointer may be the live
//     shared accumulator, and non-atomic access races with concurrent
//     Add. Field access on a Stats *value* (a Snapshot() copy or a
//     local) is allowed everywhere: copies cannot race.
//
//  2. Inside the engine implementation, ad-hoc sync/atomic calls on
//     counter fields are allowed only in stats.go, which owns the
//     atomic API — keeping it centralized is what lets Stats.fields()
//     guarantee no counter is missed during merges.
var StatsAtomic = &Analyzer{
	Name: "statsatomic",
	Doc:  "flag direct engine.Stats counter access that bypasses the atomic Add/AddCache/Snapshot API",
	Run:  runStatsAtomic,
}

// statsCounter resolves sel to an int64 counter field of engine.Stats,
// returning the field name.
func statsCounter(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	if !namedFrom(s.Recv(), "internal/engine", "Stats") {
		return "", false
	}
	if basic, ok := s.Obj().Type().(*types.Basic); !ok || basic.Kind() != types.Int64 {
		return "", false
	}
	return s.Obj().Name(), true
}

// writeTargets collects every expression position that is assigned,
// incremented/decremented, or address-taken in the file.
func writeTargets(file *ast.File) map[ast.Expr]bool {
	w := make(map[ast.Expr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				w[lhs] = true
			}
		case *ast.IncDecStmt:
			w[x.X] = true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				w[x.X] = true
			}
		}
		return true
	})
	return w
}

// atomicPkgCall reports whether call invokes a function from
// sync/atomic.
func atomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

func runStatsAtomic(pass *Pass) {
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Package).Filename
		base := filepath.Base(fname)
		inEngineImpl := pkgIs(pass.Pkg, "internal/engine") && !strings.HasSuffix(base, "_test.go")
		writes := writeTargets(file)

		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && inEngineImpl && base != "stats.go" && atomicPkgCall(pass.Info, call) {
				for _, arg := range call.Args {
					e := arg
					if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
						e = u.X
					}
					if sel, ok := e.(*ast.SelectorExpr); ok {
						if name, ok := statsCounter(pass.Info, sel); ok {
							pass.Report(call.Pos(),
								"ad-hoc atomic access to Stats.%s outside stats.go; the atomic counter API (Add/AddCache/Snapshot) is centralized there so fields() cannot miss a counter", name)
							break
						}
					}
				}
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := statsCounter(pass.Info, sel)
			if !ok {
				return true
			}
			if inEngineImpl {
				return true // per-worker direct increments are the documented design
			}
			baseType := pass.Info.Types[sel.X].Type
			if baseType == nil {
				return true
			}
			if _, isPtr := baseType.Underlying().(*types.Pointer); !isPtr {
				return true // field of a Stats value: a copy, cannot race
			}
			if writes[sel] {
				pass.Report(sel.Sel.Pos(),
					"direct write to engine.Stats counter %s through a *Stats; accumulate via Stats.Add/AddCache (atomic on the destination)", name)
			} else {
				pass.Report(sel.Sel.Pos(),
					"direct read of engine.Stats counter %s through a *Stats may race with concurrent Add; read a Snapshot() copy", name)
			}
			return true
		})
	}
}
