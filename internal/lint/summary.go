package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural half of the dataflow framework:
// per-function effect summaries, propagated across in-package call
// sites to a fixed point. A summary answers the questions the
// semantic analyzers ask about a callee without re-walking its body at
// every call site: does it use / close / mutate / retain this
// parameter, does it close its receiver, does it (transitively) charge
// or release the engine's resource Governor.
//
// Summaries exist only for functions whose bodies are in the analyzed
// unit: imported packages are typechecked API-only (loader.go), so a
// cross-package or interface call resolves to an unknown summary and
// analyzers must treat it conservatively. The conservative direction
// is per-bit: an unknown callee MAY retain its arguments (so passing a
// value to it discharges ownership obligations) and MAY use them, but
// is never assumed to close, mutate, charge, or release — absence of
// a summary never manufactures an effect.

// FuncSummary is the computed effect summary of one function.
type FuncSummary struct {
	// Params are the declared parameter objects, in order. Per-param
	// slices below are indexed in parallel.
	Params []*types.Var
	// UsesParam: the parameter's value is read somewhere other than as
	// a plain argument to an in-package callee that itself never uses
	// it (that case propagates instead, so a context threaded through
	// a chain of ignoring helpers still counts as unused).
	UsesParam []bool
	// ClosesParam: .Close() is (or may be) called on the parameter,
	// directly or via a callee that closes it.
	ClosesParam []bool
	// MutatesParam: an element or field of the parameter is written
	// (param[i] = v, param.f = v, copy(param, …)), directly or via a
	// callee.
	MutatesParam []bool
	// RetainsParam: the parameter may outlive the call — returned,
	// stored, sent, captured, address-taken, appended elsewhere, or
	// passed to an unknown callee.
	RetainsParam []bool
	// ClosesRecv: the method (or a callee bound to its receiver) may
	// call Close on its receiver.
	ClosesRecv bool
	// ChargesGov / ReleasesGov: the function transitively reaches a
	// Governor.Charge / Governor.Release call.
	ChargesGov bool
	// ReleasesGov is true when the function transitively reaches
	// Governor.Release.
	ReleasesGov bool
	// WritesFile / SyncsFile: the function transitively performs a raw
	// (*os.File).Write*/ReadFrom, or reaches (*os.File).Sync. The
	// filelife analyzer uses these to prove write-then-fsync pairing
	// through in-package helpers.
	WritesFile bool
	SyncsFile  bool
}

// paramIndex returns the index of obj among the summary's parameters,
// or -1.
func (s *FuncSummary) paramIndex(obj *types.Var) int {
	for i, p := range s.Params {
		if p == obj {
			return i
		}
	}
	return -1
}

// Analysis is the shared per-unit dataflow state: function summaries
// at fixed point, plus cached CFGs. One Analysis is built lazily per
// typechecked unit and shared by every analyzer in the run (see
// Pass.Dataflow).
type Analysis struct {
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]*FuncSummary
	cfgs      map[*ast.BlockStmt]*CFG
}

// NewAnalysis computes summaries for every function declared in files
// and returns the shared holder. CFGs are built on demand.
func NewAnalysis(fset *token.FileSet, pkg *types.Package, info *types.Info, files []*ast.File) *Analysis {
	a := &Analysis{
		Fset: fset, Pkg: pkg, Info: info, Files: files,
		decls:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[*types.Func]*FuncSummary),
		cfgs:      make(map[*ast.BlockStmt]*CFG),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
	}
	a.computeSummaries()
	return a
}

// CFGFor returns the (cached) CFG of body.
func (a *Analysis) CFGFor(body *ast.BlockStmt) *CFG {
	if c, ok := a.cfgs[body]; ok {
		return c
	}
	c := BuildCFG(body)
	a.cfgs[body] = c
	return c
}

// DeclOf returns fn's declaration in this unit, or nil.
func (a *Analysis) DeclOf(fn *types.Func) *ast.FuncDecl { return a.decls[fn] }

// SummaryOf returns fn's summary, or nil when fn's body is not part of
// this unit (cross-package call, interface method, nil fn).
func (a *Analysis) SummaryOf(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return a.summaries[fn]
}

// CalleeOf resolves the statically known callee of a call, or nil for
// dynamic calls (function values, interface methods resolve to the
// interface's Func object, which has no body here and therefore no
// summary).
func (a *Analysis) CalleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CallSummary is SummaryOf(CalleeOf(call)).
func (a *Analysis) CallSummary(call *ast.CallExpr) *FuncSummary {
	return a.SummaryOf(a.CalleeOf(call))
}

// isGovernorMethod reports whether call invokes the named method on
// the engine's *Governor type.
func (a *Analysis) isGovernorMethod(call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := a.Info.Selections[sel]
	if !ok {
		return false
	}
	return namedFrom(s.Recv(), "internal/engine", "Governor")
}

// ChargesGovernor / ReleasesGovernor report whether a call site
// (transitively) charges or releases the governor: a direct
// Governor.Charge/Release, or a call to an in-package function whose
// summary has the effect.
func (a *Analysis) ChargesGovernor(call *ast.CallExpr) bool {
	if a.isGovernorMethod(call, "Charge") {
		return true
	}
	sum := a.CallSummary(call)
	return sum != nil && sum.ChargesGov
}

func (a *Analysis) ReleasesGovernor(call *ast.CallExpr) bool {
	if a.isGovernorMethod(call, "Release") {
		return true
	}
	sum := a.CallSummary(call)
	return sum != nil && sum.ReleasesGov
}

// SyncsFile reports whether a call site (transitively) reaches an
// (*os.File).Sync: a direct f.Sync(), or a call to an in-package
// function whose summary syncs.
func (a *Analysis) SyncsFile(call *ast.CallExpr) bool {
	if isOSFileMethod(a.Info, call, "Sync") {
		return true
	}
	sum := a.CallSummary(call)
	return sum != nil && sum.SyncsFile
}

// paramEdge records that caller's parameter i flows into callee's
// parameter j (plain-identifier argument binding), so callee effects
// on j propagate to i.
type paramEdge struct {
	caller, callee *types.Func
	i, j           int
}

// recvEdge records that caller's parameter i is the receiver of a
// call to callee, so ClosesRecv on callee becomes ClosesParam[i].
type recvEdge struct {
	caller, callee *types.Func
	i              int
}

// callEdge records any static in-package call, for receiver-free
// effect bits (governor charge/release).
type callEdge struct {
	caller, callee *types.Func
}

func (a *Analysis) computeSummaries() {
	var paramEdges []paramEdge
	var recvEdges []recvEdge
	var callEdges []callEdge
	for fn, fd := range a.decls {
		paramEdges, recvEdges, callEdges = a.directFacts(fn, fd, paramEdges, recvEdges, callEdges)
	}
	// Propagate to fixed point. The bit lattice only ever flips false →
	// true, so iteration terminates.
	for changed := true; changed; {
		changed = false
		or := func(dst *bool, src bool) {
			if src && !*dst {
				*dst = true
				changed = true
			}
		}
		for _, e := range callEdges {
			cs, ce := a.summaries[e.caller], a.summaries[e.callee]
			if cs == nil || ce == nil {
				continue
			}
			or(&cs.ChargesGov, ce.ChargesGov)
			or(&cs.ReleasesGov, ce.ReleasesGov)
			or(&cs.WritesFile, ce.WritesFile)
			or(&cs.SyncsFile, ce.SyncsFile)
		}
		for _, e := range paramEdges {
			cs, ce := a.summaries[e.caller], a.summaries[e.callee]
			if cs == nil || ce == nil || e.i >= len(cs.Params) || e.j >= len(ce.Params) {
				continue
			}
			or(&cs.UsesParam[e.i], ce.UsesParam[e.j])
			or(&cs.ClosesParam[e.i], ce.ClosesParam[e.j])
			or(&cs.MutatesParam[e.i], ce.MutatesParam[e.j])
			or(&cs.RetainsParam[e.i], ce.RetainsParam[e.j])
		}
		for _, e := range recvEdges {
			cs, ce := a.summaries[e.caller], a.summaries[e.callee]
			if cs == nil || ce == nil || e.i >= len(cs.Params) {
				continue
			}
			or(&cs.ClosesParam[e.i], ce.ClosesRecv)
		}
	}
}

// directFacts seeds fn's summary from its own body (function literals
// included: a closure's effects are attributed to the enclosing
// function, a sound may-approximation) and records the call edges for
// propagation.
func (a *Analysis) directFacts(fn *types.Func, fd *ast.FuncDecl,
	paramEdges []paramEdge, recvEdges []recvEdge, callEdges []callEdge,
) ([]paramEdge, []recvEdge, []callEdge) {
	sum := &FuncSummary{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj, _ := a.Info.Defs[name].(*types.Var)
				sum.Params = append(sum.Params, obj)
			}
		}
	}
	n := len(sum.Params)
	sum.UsesParam = make([]bool, n)
	sum.ClosesParam = make([]bool, n)
	sum.MutatesParam = make([]bool, n)
	sum.RetainsParam = make([]bool, n)
	a.summaries[fn] = sum

	recv := receiverObj(a.Info, fd)
	paramOf := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := objOf(a.Info, id)
		if obj == nil {
			return -1
		}
		return sum.paramIndex(obj)
	}

	// propagatedUse marks parameter-identifier argument positions whose
	// "use" is deferred to the callee's summary rather than counted
	// directly.
	propagatedUse := make(map[*ast.Ident]bool)

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if a.isGovernorMethod(x, "Charge") {
				sum.ChargesGov = true
			}
			if a.isGovernorMethod(x, "Release") {
				sum.ReleasesGov = true
			}
			if isOSFileMethod(a.Info, x, rawWriteMethods...) {
				sum.WritesFile = true
			}
			if isOSFileMethod(a.Info, x, "Sync") {
				sum.SyncsFile = true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if i := paramOf(sel.X); i >= 0 {
					sum.ClosesParam[i] = true
				}
				if recv != nil {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && objOf(a.Info, id) == recv {
						sum.ClosesRecv = true
					}
				}
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "append":
					// append(container, param): the container may retain.
					for _, arg := range x.Args[1:] {
						if i := paramOf(arg); i >= 0 {
							sum.RetainsParam[i] = true
						}
					}
					return true
				case "copy":
					if len(x.Args) == 2 {
						if root := rootIdent(x.Args[0]); root != nil {
							if obj := objOf(a.Info, root); obj != nil {
								if i := sum.paramIndex(obj); i >= 0 {
									sum.MutatesParam[i] = true
								}
							}
						}
					}
					return true
				case "len", "cap":
					return true
				}
			}
			callee := a.CalleeOf(x)
			known := callee != nil && a.decls[callee] != nil
			if known {
				callEdges = append(callEdges, callEdge{caller: fn, callee: callee})
				for argIdx, arg := range x.Args {
					if i := paramOf(arg); i >= 0 {
						paramEdges = append(paramEdges, paramEdge{caller: fn, callee: callee, i: i, j: argIdx})
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							propagatedUse[id] = true
						}
					}
				}
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if i := paramOf(sel.X); i >= 0 {
						recvEdges = append(recvEdges, recvEdge{caller: fn, callee: callee, i: i})
						if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							propagatedUse[id] = true
						}
					}
				}
			} else {
				// Unknown callee: arguments may be retained and used.
				for _, arg := range x.Args {
					if i := paramOf(arg); i >= 0 {
						sum.RetainsParam[i] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				switch l := lhs.(type) {
				case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
					if root := rootIdent(l); root != nil {
						if obj := objOf(a.Info, root); obj != nil {
							if i := sum.paramIndex(obj); i >= 0 {
								sum.MutatesParam[i] = true
							}
						}
					}
				}
			}
			// Assigning a parameter anywhere creates an alias (or a
			// store); treat as retained.
			for _, rhs := range x.Rhs {
				if i := paramOf(rhs); i >= 0 {
					sum.RetainsParam[i] = true
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(x.X); root != nil {
				if _, isIdx := x.X.(*ast.IndexExpr); isIdx {
					if obj := objOf(a.Info, root); obj != nil {
						if i := sum.paramIndex(obj); i >= 0 {
							sum.MutatesParam[i] = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if i := paramOf(r); i >= 0 {
					sum.RetainsParam[i] = true
				}
			}
		case *ast.SendStmt:
			if i := paramOf(x.Value); i >= 0 {
				sum.RetainsParam[i] = true
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if i := paramOf(v); i >= 0 {
					sum.RetainsParam[i] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if i := paramOf(x.X); i >= 0 {
					sum.RetainsParam[i] = true
				}
			}
		}
		return true
	})

	// Direct uses: every reference not accounted for by a propagation
	// edge counts.
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || propagatedUse[id] {
			return true
		}
		if obj, ok := a.Info.Uses[id].(*types.Var); ok {
			if i := sum.paramIndex(obj); i >= 0 {
				sum.UsesParam[i] = true
			}
		}
		return true
	})
	return paramEdges, recvEdges, callEdges
}
