package lint

import (
	"go/ast"
	"go/types"
)

// CatVer guards the version-keyed caches' invalidation contract. Every
// entry in core.VerdictCache and plan.PlanCache is keyed by the catalog
// schema version, so a schema mutation that does not bump the version
// leaves stale entries live — and a stale entry does not just waste
// time: a stale verdict licenses semantic rewrites (DISTINCT
// elimination, subquery flattening) that are only valid under the old
// dependency set, and a stale plan joins in an order whose cardinality
// bounds no longer hold. The analyzer requires every exported method in
// internal/catalog that mutates its receiver to bump the version in its
// body: a call to Bump/bump/bumped, or a direct version.Add.
var CatVer = &Analyzer{
	Name: "catver",
	Doc:  "flag exported mutating catalog methods that never bump the schema version keying the verdict and plan caches",
	Run:  runCatVer,
}

// VersionKeyedCaches registers every cache whose entries embed the
// catalog schema version in their key — the consumers the catver
// contract protects. The lint meta-test asserts each registered file
// exists and actually keys on the version, so a new version-keyed
// cache must be added here (and one that drops the version from its
// key fails the build until the registry is updated).
var VersionKeyedCaches = map[string]string{
	"core.VerdictCache": "internal/core/cache.go",
	"plan.PlanCache":    "internal/plan/plancache.go",
}

func runCatVer(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/catalog") {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObj(pass.Info, fd)
			if recv == nil {
				continue
			}
			mutPos := mutatesReceiver(pass.Info, fd, recv)
			if mutPos == nil {
				continue
			}
			if bumpsVersion(fd) {
				continue
			}
			pass.Report(fd.Name.Pos(),
				"exported method %s mutates the catalog schema (e.g. line %d) without bumping the schema version; stale core.VerdictCache entries would keep licensing rewrites for the old constraint set — call Bump (or the table's bump helper)",
				fd.Name.Name, pass.Fset.Position(mutPos.Pos()).Line)
		}
	}
}

// mutatesReceiver returns the position of the first write whose target
// is rooted at the receiver (field assignment, indexed/map assignment
// through a receiver field, or ++/--), or nil.
func mutatesReceiver(info *types.Info, fd *ast.FuncDecl, recv *types.Var) *ast.Ident {
	var hit *ast.Ident
	check := func(target ast.Expr) {
		if hit != nil {
			return
		}
		// A write to the receiver must go through at least one
		// selector (t.Field = ..., t.m[k] = ...); a bare `t = ...`
		// rebinds the local variable and mutates nothing.
		if _, plain := target.(*ast.Ident); plain {
			return
		}
		root := rootIdent(target)
		if root != nil && objOf(info, root) == recv {
			hit = root
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(x.X)
		}
		return true
	})
	return hit
}

// bumpsVersion reports whether the body contains a version bump: a
// call to a method named Bump/bump/bumped, or version.Add(...).
func bumpsVersion(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Bump", "bump", "bumped":
			found = true
		case "Add", "Store":
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "version" {
				found = true
			}
		}
		return !found
	})
	return found
}
