package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Pos:      token.Position{Filename: "internal/engine/stream.go", Line: 42, Column: 7},
			Analyzer: "partroute",
			Message:  "uint64 modulo outside partitionOf; 50% of routes disagree",
		},
		{
			Pos:        token.Position{Filename: "internal/engine/ops.go", Line: 7},
			Analyzer:   "rowalias",
			Message:    "suppressed one",
			Suppressed: true,
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	sum := Summary{Packages: 3, Findings: 1, Suppressed: 1}
	if err := WriteJSON(&sb, sampleFindings(), sum); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []struct {
			File       string `json:"file"`
			Line       int    `json:"line"`
			Column     int    `json:"column"`
			Analyzer   string `json:"analyzer"`
			Message    string `json:"message"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
		Summary Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2 (suppressed included)", len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.File != "internal/engine/stream.go" || f.Line != 42 || f.Column != 7 || f.Analyzer != "partroute" {
		t.Errorf("first finding mismatched: %+v", f)
	}
	if !rep.Findings[1].Suppressed {
		t.Error("suppressed flag lost in JSON")
	}
	if rep.Summary != sum {
		t.Errorf("summary = %+v, want %+v", rep.Summary, sum)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil, Summary{Packages: 5}); err != nil {
		t.Fatal(err)
	}
	// The findings key must be an empty array, not null, for easy
	// consumption with jq and the like.
	if !strings.Contains(sb.String(), `"findings": []`) {
		t.Errorf("empty run must render findings as []:\n%s", sb.String())
	}
}

func TestWriteGHA(t *testing.T) {
	var sb strings.Builder
	if err := WriteGHA(&sb, sampleFindings()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("GHA output = %d lines, want 1 (suppressed omitted):\n%s", len(lines), out)
	}
	line := lines[0]
	if !strings.HasPrefix(line, "::error file=internal/engine/stream.go,line=42,title=uniqlint/partroute::") {
		t.Errorf("workflow command prefix wrong: %s", line)
	}
	// The % in the message must be escaped per runner rules.
	if !strings.Contains(line, "50%25 of routes") {
		t.Errorf("%% not escaped in message: %s", line)
	}
}

func TestGHAEscaping(t *testing.T) {
	var sb strings.Builder
	err := WriteGHA(&sb, []Finding{{
		Pos:      token.Position{Filename: "a,b:c.go", Line: 1},
		Analyzer: "x",
		Message:  "multi\nline %",
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 1 {
		t.Errorf("newline in message must be escaped, got:\n%q", out)
	}
	if !strings.Contains(out, "file=a%2Cb%3Ac.go") {
		t.Errorf("property delimiters not escaped: %q", out)
	}
	if !strings.Contains(out, "multi%0Aline %25") {
		t.Errorf("message escaping wrong: %q", out)
	}
}
