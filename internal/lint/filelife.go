package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FileLife polices the storage layer's file-descriptor and durability
// hygiene. The write-ahead log's crash-safety argument rests on two
// disciplines the compiler cannot check:
//
//  1. Every *os.File opened in internal/storage/... must be closed on
//     every path — explicitly, via defer, or by handing ownership off
//     (storing it in a struct, returning it, passing it to a callee
//     whose summary retains or closes it). A descriptor that leaks on
//     an error path exhausts the process under fault injection, and
//     the crash-matrix tests assert zero FD leaks.
//
//  2. In internal/storage/wal, a raw (*os.File) write — one that
//     bypasses the buffered writer — must reach an fsync before the
//     function returns success. Buffered appends defer durability to
//     the group-commit Sync barrier, but anything written straight to
//     the descriptor (headers, snapshots, truncations) is promised
//     durable the moment its function returns nil; skipping the fsync
//     silently converts a durability guarantee into a hope.
//
// The analyzer is CFG-based and interprocedural through the unit's
// function summaries: a helper that (transitively) reaches
// (*os.File).Sync discharges the fsync obligation at its call site,
// and a callee that closes or retains its parameter discharges the
// close obligation. Error returns — a return whose final result is a
// non-nil error expression — are exempt paths for both rules: rule 1
// because the open's own guard returns before the descriptor is live,
// rule 2 because a failed write must not be acknowledged at all.
var FileLife = &Analyzer{
	Name: "filelife",
	Doc:  "flag storage files not closed on all paths and raw WAL file writes that can reach a success return without an fsync",
	Run:  runFileLife,
}

// rawWriteMethods are the (*os.File) methods that move caller bytes
// to the descriptor directly, bypassing any buffered writer.
var rawWriteMethods = []string{"Write", "WriteString", "WriteAt", "ReadFrom"}

// fileOpenFuncs are the package-os constructors whose *os.File result
// the caller owns.
var fileOpenFuncs = map[string]bool{"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true}

func runFileLife(pass *Pass) {
	if !pkgUnder(pass.Pkg, "internal/storage") {
		return
	}
	df := pass.Dataflow()
	inWal := pkgIs(pass.Pkg, "internal/storage/wal")
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFileClosed(pass, df, fd)
			if inWal {
				checkRawWriteSynced(pass, df, fd)
			}
		}
	}
}

// pkgUnder reports whether pkg is the repository package with the
// given import-path suffix or any package below it. Fixture packages
// under testdata mirror the real import paths, so containment
// matching works for both.
func pkgUnder(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix) ||
		strings.Contains(p, "/"+suffix+"/") || strings.HasPrefix(p, suffix+"/")
}

// isOSFileType reports whether t (after pointer indirection) is the
// standard library's os.File.
func isOSFileType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// isOSFileMethod reports whether call invokes one of the named
// methods on an *os.File receiver.
func isOSFileMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return isOSFileType(s.Recv())
}

// isFileOpenCall reports whether call is os.Open / os.OpenFile /
// os.Create / os.CreateTemp.
func isFileOpenCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !fileOpenFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "os"
}

// isFailureReturn classifies a return statement: a final result that
// is an error-typed expression other than the nil literal is a
// failure return, exempt from both obligations on its path. Naked
// returns, returns without an error slot, and `return ..., nil` are
// success returns.
func isFailureReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := info.TypeOf(last)
	return t != nil && isErrorType(t)
}

// fileAcq is one tracked acquisition: the variable bound to the
// opened file and the CFG block the open executes in.
type fileAcq struct {
	id    *ast.Ident
	obj   *types.Var
	block *Block
}

// checkFileClosed flags rule 1: an opened *os.File whose function
// exit is reachable without the descriptor being closed or handed
// off.
func checkFileClosed(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	info := pass.Info
	cfg := df.CFGFor(fd.Body)

	// Collect acquisitions: `f, err := os.Open(...)` in any
	// assignment form whose call is a file constructor. Blocks are
	// walked in index order so findings are deterministic.
	var acqs []fileAcq
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isFileOpenCall(info, call) {
				continue
			}
			acq := fileAcq{block: b}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := objOf(info, id); obj != nil && isOSFileType(obj.Type()) {
					acq.id, acq.obj = id, obj
				}
			}
			if acq.obj != nil {
				acqs = append(acqs, acq)
			}
		}
	}
	if len(acqs) == 0 {
		return
	}

	// Global discharges: a deferred close (the defer runs on every
	// exit) or a close inside a function literal (the closure is the
	// function's own cleanup helper; its call sites are its business).
	globallyDone := make(map[*types.Var]bool)
	closeTarget := func(call *ast.CallExpr) *types.Var {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				return objOf(info, id)
			}
		}
		return nil
	}
	for _, d := range cfg.Defers {
		if obj := closeTarget(d.Call); obj != nil {
			globallyDone[obj] = true
		}
		// defer of an in-package helper that closes its argument.
		if sum := df.CallSummary(d.Call); sum != nil {
			for j, arg := range d.Call.Args {
				if j >= len(sum.ClosesParam) || !sum.ClosesParam[j] {
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						globallyDone[obj] = true
					}
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if obj := closeTarget(call); obj != nil {
					globallyDone[obj] = true
				}
			}
			return true
		})
		return false
	})

	for _, acq := range acqs {
		if globallyDone[acq.obj] {
			continue
		}
		// discharged reports whether block b closes the file or hands
		// its ownership off; failure returns guard the not-yet-open
		// error path and excuse it.
		discharged := func(b *Block) bool {
			found := false
			for _, n := range b.Nodes {
				InspectNode(n, func(x ast.Node) bool {
					switch y := x.(type) {
					case *ast.CallExpr:
						if closeTarget(y) == acq.obj {
							found = true
						}
						sum := df.CallSummary(y)
						for j, arg := range y.Args {
							id, ok := ast.Unparen(arg).(*ast.Ident)
							if !ok || objOf(info, id) != acq.obj {
								continue
							}
							// Unknown callee: may retain — conservative
							// handoff. Known callee: a borrow (neither
							// closes nor retains) keeps the obligation
							// here.
							if sum == nil || j >= len(sum.ClosesParam) ||
								sum.ClosesParam[j] || sum.RetainsParam[j] {
								found = true
							}
						}
					case *ast.ReturnStmt:
						if isFailureReturn(info, y) {
							found = true
						}
						for _, r := range y.Results {
							if id, ok := ast.Unparen(r).(*ast.Ident); ok && objOf(info, id) == acq.obj {
								found = true
							}
						}
					case *ast.AssignStmt:
						if y.Tok.String() == ":=" {
							break
						}
						for _, rhs := range y.Rhs {
							if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && objOf(info, id) == acq.obj {
								found = true
							}
						}
					case *ast.CompositeLit:
						for _, el := range y.Elts {
							v := el
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								v = kv.Value
							}
							if id, ok := ast.Unparen(v).(*ast.Ident); ok && objOf(info, id) == acq.obj {
								found = true
							}
						}
					case *ast.SendStmt:
						if id, ok := ast.Unparen(y.Value).(*ast.Ident); ok && objOf(info, id) == acq.obj {
							found = true
						}
					}
					return !found
				})
				if found {
					return true
				}
			}
			return false
		}
		// The acquisition block itself counts: a discharge in the same
		// straight-line run (close, return f, store) covers it.
		if !cfg.ReachesWithout(acq.block, cfg.Exit, discharged) {
			continue
		}
		pass.Report(acq.id.Pos(),
			"file %s opened here can reach function exit without being closed; close it on every path (or defer %s.Close(), or hand ownership off) — leaked descriptors fail the crash matrix",
			acq.id.Name, acq.id.Name)
	}
}

// checkRawWriteSynced flags rule 2: a direct (*os.File) write that
// can reach a success return without an intervening fsync.
func checkRawWriteSynced(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	info := pass.Info
	cfg := df.CFGFor(fd.Body)

	// A deferred (transitive) sync runs between every return and the
	// actual exit, covering all paths.
	for _, d := range cfg.Defers {
		if df.SyncsFile(d.Call) {
			return
		}
	}

	// Locate raw writes block-by-block (InspectNode keeps closures
	// out: a literal's body is its own function).
	type rawWrite struct {
		call  *ast.CallExpr
		block *Block
	}
	var writes []rawWrite
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && isOSFileMethod(info, call, rawWriteMethods...) {
					writes = append(writes, rawWrite{call: call, block: b})
				}
				return true
			})
		}
	}
	if len(writes) == 0 {
		return
	}

	// synced reports whether block b fsyncs (directly or through an
	// in-package helper) or is a failure return — a path that refuses
	// the write cannot be acknowledging it.
	synced := func(b *Block) bool {
		found := false
		for _, n := range b.Nodes {
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && df.SyncsFile(call) {
					found = true
				}
				if ret, ok := x.(*ast.ReturnStmt); ok && isFailureReturn(info, ret) {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	for _, w := range writes {
		if !cfg.ReachesWithout(w.block, cfg.Exit, synced) {
			continue
		}
		pass.Report(w.call.Pos(),
			"raw *os.File write can reach a success return without an fsync; bytes written past the buffer are promised durable when this function returns nil — Sync before returning success")
	}
}
