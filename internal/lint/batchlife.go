package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BatchLife enforces the consumer half of the streaming batch
// contract. An emitted batch and its rows are immutable after handoff
// (iterator.go): the producer promises never to reuse the storage, so
// consumers may retain rows without copying — but only if no consumer
// ever writes into them. A consumer that mutates a row (or a batch
// slot) it pulled from a child's Next corrupts data that other
// consumers — hash tables, output relations, sibling partitions — may
// already be aliasing. The syntactic rowalias analyzer catches the
// producer half (buffer reuse); this analyzer taints every value that
// flows out of a Next call and flags writes through the taint:
//
//   - element writes:  row[i] = v  /  b[j] = r   on a tainted value
//   - copy(row, …) with a tainted destination
//   - passing a tainted value to an in-package function whose summary
//     mutates that parameter (interprocedural via unit summaries)
//
// Taint propagates through range statements, indexing, and plain
// aliasing, but deliberately not through append into a fresh slice:
// the new backing array is consumer-owned. The analyzer inspects
// non-test files of internal/engine and internal/plan.
var BatchLife = &Analyzer{
	Name: "batchlife",
	Doc:  "flag writes to rows or batches obtained from an iterator's Next; emitted batches are immutable after handoff — copy before mutating",
	Run:  runBatchLife,
}

func runBatchLife(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") && !pkgIs(pass.Pkg, "internal/plan") {
		return
	}
	df := pass.Dataflow()
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				runBatchLifeFunc(pass, df, fd)
			}
		}
	}
}

// isNextCall reports whether call is x.Next(ctx)-shaped with a
// row-typed first result — the batch handoff point.
func isNextCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" {
		return false
	}
	t := info.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		t = tup.At(0).Type()
	}
	return isRowType(t)
}

func runBatchLifeFunc(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	info := pass.Info
	tainted := make(map[*types.Var]bool)

	// taintFrom reports whether e evaluates to a tainted value: a Next
	// call, a tainted variable, or an index/slice of one.
	var taintFrom func(e ast.Expr) bool
	taintFrom = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isNextCall(info, x)
		case *ast.Ident:
			obj := objOf(info, x)
			return obj != nil && tainted[obj]
		case *ast.IndexExpr:
			return taintFrom(x.X)
		case *ast.SliceExpr:
			return taintFrom(x.X)
		}
		return false
	}

	// Seed and propagate taint to a fixed point (assignments and range
	// bindings can chain in either source order).
	for changed := true; changed; {
		changed = false
		mark := func(e ast.Expr) {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := objOf(info, id)
			if obj != nil && isRowType(obj.Type()) && !tainted[obj] {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range x.Rhs {
					if i >= len(x.Lhs) {
						break
					}
					if taintFrom(rhs) {
						mark(x.Lhs[i])
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil && taintFrom(x.X) {
					mark(x.Value)
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	report := func(pos ast.Node, what string) {
		pass.Report(pos.Pos(),
			"%s of a row/batch obtained from Next; emitted batches are immutable after handoff — copy the row before mutating", what)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && taintFrom(idx.X) {
					report(lhs, "element write")
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := x.X.(*ast.IndexExpr); ok && taintFrom(idx.X) {
				report(x, "element write")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "copy" && len(x.Args) == 2 {
				if taintFrom(x.Args[0]) {
					report(x, "copy into")
				}
				return true
			}
			if sum := df.CallSummary(x); sum != nil {
				for j, arg := range x.Args {
					if j >= len(sum.MutatesParam) || !sum.MutatesParam[j] {
						continue
					}
					if taintFrom(arg) {
						report(arg, "mutation (via callee)")
					}
				}
			}
		}
		return true
	})
}
