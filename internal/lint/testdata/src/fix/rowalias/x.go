// Package rowalias is the golden fixture for the rowalias analyzer.
package rowalias

import "uniqopt/internal/value"

// Partition mimics a partitioned operator output.
type Partition struct {
	Rows []value.Row
}

// BadAppend mutates a row after appending it to an output slice — the
// output now aliases the mutated backing array.
func BadAppend(rows []value.Row, r value.Row) []value.Row {
	rows = append(rows, r)
	r[0] = value.Value{I: 9} // want "after it was appended to another slice at line 14"
	return rows
}

// BadSend mutates a row after sending it across a channel boundary —
// the receiving partition races with the write.
func BadSend(ch chan value.Row, r value.Row) {
	ch <- r
	r[0] = value.Value{I: 9} // want "after it was sent on a channel at line 22"
}

// BadStore mutates a row after parking it in a struct field.
func BadStore(p *Partition, rs []value.Row, r value.Row) {
	p.Rows = rs
	rs[0] = r // want "after it was stored into a struct field at line 28"
}

// BadComposite mutates a row captured by a composite literal.
func BadComposite(r value.Row) *Partition {
	p := &Partition{Rows: []value.Row{r}}
	r[0] = value.Value{I: 1} // want "after it was captured by a composite literal at line 34"
	return p
}

// GoodCopy writes before sharing, or shares a fresh clone.
func GoodCopy(ch chan value.Row, r value.Row) []value.Row {
	r[0] = value.Value{I: 1} // write precedes every escape: fine
	ch <- r.Clone()
	var out []value.Row
	out = append(out, r.Clone())
	return out
}

// GoodEarlyReturn writes after a conditional return: the write only
// runs when the row was not returned.
func GoodEarlyReturn(r value.Row) value.Row {
	if len(r) == 0 {
		return r
	}
	r[0] = value.Value{I: 2}
	return r
}
