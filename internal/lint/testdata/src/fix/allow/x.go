// Package allow exercises //lint:allow suppression parsing: one
// finding is suppressed on its own line, one by a preceding comment,
// and one is left standing.
package allow

import "uniqopt/internal/tvl"

// Mixed has two reviewed exceptions and one real violation.
func Mixed(t tvl.Truth) int {
	n := 0
	if t == tvl.True { //lint:allow tvlbool -- reviewed: table-driven test needs raw equality
		n++
	}
	//lint:allow tvlbool -- reviewed: exhaustiveness check, Unknown handled by default case
	if t != tvl.False {
		n++
	}
	if tvl.Unknown == t { // the unsuppressed violation
		n += 2
	}
	return n
}
