// Package statsatomic is the golden fixture for the statsatomic
// analyzer, exercising the rules that apply OUTSIDE the engine
// implementation (this package is a consumer of engine.Stats).
package statsatomic

import "uniqopt/internal/engine"

// Bad accesses live counters through a *Stats pointer.
func Bad(st *engine.Stats) int64 {
	st.RowsScanned++          // want "direct write to engine.Stats counter RowsScanned"
	st.RowsOutput = 7         // want "direct write to engine.Stats counter RowsOutput"
	return st.HashProbes + // want "direct read of engine.Stats counter HashProbes"
		st.CacheHits // want "direct read of engine.Stats counter CacheHits"
}

// Good reads a Snapshot copy and accumulates through Add.
func Good(st *engine.Stats) int64 {
	st.Add(engine.Stats{RowsScanned: 1})
	snap := st.Snapshot()
	snap.RowsOutput++ // a value copy cannot race
	var local engine.Stats
	local.HashProbes++ // a local value cannot race either
	return snap.RowsScanned + local.HashProbes + snap.RowsOutput
}
