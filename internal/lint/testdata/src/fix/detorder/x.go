// Package detorder is the golden fixture for the detorder analyzer.
package detorder

import (
	"fmt"
	"sort"
	"strings"
)

// BadCollect builds a result slice in map order and returns it unsorted.
func BadCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "slice out is appended to while ranging over a map and never sorted"
	}
	return out
}

// GoodCollect sorts after collecting: deterministic.
func GoodCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadPrint emits output in map order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output written while ranging over a map"
	}
}

// BadWrite streams into a builder that outlives the loop.
func BadWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "output written while ranging over a map"
	}
}

// GoodPerKey uses a per-iteration accumulator and a per-key buffer:
// no cross-key ordering leaks out.
func GoodPerKey(m map[string][]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, vs := range m {
		var parts []string
		parts = append(parts, vs...)
		sort.Strings(parts)
		var sb strings.Builder
		sb.WriteString(strings.Join(parts, ","))
		out[k] = sb.String()
	}
	return out
}

// GoodSliceRange ranges over a slice: order is the slice's own.
func GoodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
