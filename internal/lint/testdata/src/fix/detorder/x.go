// Package detorder is the golden fixture for the detorder analyzer.
package detorder

import (
	"fmt"
	"sort"
	"strings"
)

// BadCollect builds a result slice in map order and returns it unsorted.
func BadCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "slice out is appended to while ranging over a map and never sorted"
	}
	return out
}

// GoodCollect sorts after collecting: deterministic.
func GoodCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadPrint emits output in map order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output written while ranging over a map"
	}
}

// BadWrite streams into a builder that outlives the loop.
func BadWrite(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "output written while ranging over a map"
	}
}

// GoodPerKey uses a per-iteration accumulator and a per-key buffer:
// no cross-key ordering leaks out.
func GoodPerKey(m map[string][]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, vs := range m {
		var parts []string
		parts = append(parts, vs...)
		sort.Strings(parts)
		var sb strings.Builder
		sb.WriteString(strings.Join(parts, ","))
		out[k] = sb.String()
	}
	return out
}

// GoodSliceRange ranges over a slice: order is the slice's own.
func GoodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// BadKeysRender models a verdict KeysUsed rendering gone wrong: lines
// built directly in map order feed EXPLAIN output.
func BadKeysRender(keysUsed map[string][]string) []string {
	var lines []string
	for corr, cols := range keysUsed {
		lines = append(lines, corr+": ("+strings.Join(cols, ", ")+")") // want "slice lines is appended to while ranging over a map and never sorted"
	}
	return lines
}

// GoodKeysRender is the sanctioned pattern behind KeysUsedLines:
// collect the keys, sort them, then range the sorted slice.
func GoodKeysRender(keysUsed map[string][]string) []string {
	corrs := make([]string, 0, len(keysUsed))
	for corr := range keysUsed {
		corrs = append(corrs, corr)
	}
	sort.Strings(corrs)
	var lines []string
	for _, corr := range corrs {
		lines = append(lines, corr+": ("+strings.Join(keysUsed[corr], ", ")+")")
	}
	return lines
}

// GoodSnapshotSorted models a metrics-registry snapshot: structs
// collected in map order are sorted before rendering.
func GoodSnapshotSorted(shapes map[string]int) []string {
	type shape struct {
		name  string
		count int
	}
	var out []shape
	for name, count := range shapes {
		out = append(out, shape{name, count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	lines := make([]string, len(out))
	for i, s := range out {
		lines[i] = fmt.Sprintf("%s=%d", s.name, s.count)
	}
	return lines
}

// BadSnapshotStream streams a snapshot straight from the map into a
// shared builder — nondeterministic EXPLAIN/metrics output.
func BadSnapshotStream(shapes map[string]int, sb *strings.Builder) {
	for name, count := range shapes {
		fmt.Fprintf(sb, "%s=%d\n", name, count) // want "output written while ranging over a map"
	}
}
