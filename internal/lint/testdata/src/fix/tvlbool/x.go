// Package tvlbool is the golden fixture for the tvlbool analyzer.
package tvlbool

import "uniqopt/internal/tvl"

// Bad collapses 3VL to 2VL in every way the analyzer must catch.
func Bad(t tvl.Truth) int {
	n := 0
	if t == tvl.True { // want "collapses 3VL to 2VL; use tvl.IsTrue"
		n++
	}
	if t != tvl.False { // want "collapses 3VL to 2VL; use !tvl.IsFalse"
		n++
	}
	if tvl.Unknown == t { // want "collapses 3VL to 2VL; use tvl.IsUnknown"
		n++
	}
	for t != tvl.True { // want "use !tvl.IsTrue"
		t = tvl.True
	}
	n += int(uint8(t)) // want "converting tvl.Truth to uint8 discards three-valued semantics"
	return n
}

// Good uses the interpretation helpers; nothing here is flagged.
func Good(t, u tvl.Truth) int {
	n := 0
	if tvl.IsTrue(t) {
		n++
	}
	if tvl.FalseInterpreted(t) {
		n++
	}
	if tvl.IsUnknown(u) {
		n++
	}
	if t == u { // comparing two computed truth values is value equality, not a collapse
		n++
	}
	switch t {
	case tvl.True:
		n++
	case tvl.False, tvl.Unknown:
		n--
	}
	return n
}
