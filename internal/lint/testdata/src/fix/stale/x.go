// Package stale exercises the allowstale check: one directive
// suppresses a live finding, one suppresses nothing, and one names an
// analyzer that does not exist.
package stale

import "uniqopt/internal/tvl"

// Mixed carries one reviewed exception, one stale directive, and one
// typo'd directive.
func Mixed(t tvl.Truth) int {
	n := 0
	if t == tvl.True { //lint:allow tvlbool -- reviewed: raw equality needed here
		n++
	}
	//lint:allow tvlbool -- stale: the comparison below was rewritten long ago
	if n > 0 {
		n--
	}
	//lint:allow nosuchcheck -- the analyzer name is a typo
	return n
}
