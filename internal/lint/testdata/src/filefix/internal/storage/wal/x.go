// Package wal is the golden fixture for the filelife analyzer: it
// mirrors the write-ahead log's file handling so both rules — every
// opened *os.File closed on all paths, every raw file write fsynced
// before a success return — have positive and negative cases,
// including the interprocedural shapes (helpers that close, sync, or
// merely borrow).
package wal

import (
	"fmt"
	"os"
)

// --- rule 1: close on all paths -------------------------------------

// leakNoClose opens a file and returns success without ever closing
// it: the canonical descriptor leak.
func leakNoClose(path string) error {
	f, err := os.Open(path) // want "opened here can reach function exit without being closed"
	if err != nil {
		return err
	}
	_ = f.Name()
	return nil
}

// leakOnEarlyReturn closes on the long path but not on the shortcut:
// exactly one path leaks, which is all the CFG needs.
func leakOnEarlyReturn(path string, fast bool) error {
	f, err := os.Open(path) // want "opened here can reach function exit without being closed"
	if err != nil {
		return err
	}
	if fast {
		return nil
	}
	return f.Close()
}

// leakPastBorrow hands the file to a helper the summaries prove only
// borrows it — the close obligation stays here, undischarged.
func leakPastBorrow(path string) error {
	f, err := os.Open(path) // want "opened here can reach function exit without being closed"
	if err != nil {
		return err
	}
	borrow(f)
	return nil
}

// borrow reads the file's name and hands nothing back: it neither
// closes nor retains its parameter.
func borrow(f *os.File) {
	_ = f.Name()
}

// goodDefer is the canonical clean shape.
func goodDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_ = f.Name()
	return nil
}

// goodAllPaths closes explicitly on the error path and the success
// path.
func goodAllPaths(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// goodReturned transfers ownership to the caller.
func goodReturned(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// holder stands in for logFile: a struct that owns the descriptor.
type holder struct{ f *os.File }

// goodStored hands the file off into a struct; the holder owns it
// now.
func goodStored(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// goodClosureCleanup mirrors writeSnapshot's fail-closure pattern:
// every error path funnels through a literal that closes the temp
// file.
func goodClosureCleanup(dir string) error {
	tmp, err := os.CreateTemp(dir, "x-*.tmp")
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.WriteString("hdr"); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	return tmp.Close()
}

// closeQuietly closes its argument; callers passing a file here have
// discharged the obligation interprocedurally.
func closeQuietly(f *os.File) {
	f.Close()
}

// goodViaHelper discharges through closeQuietly's summary.
func goodViaHelper(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	_ = f.Name()
	closeQuietly(f)
	return nil
}

// --- rule 2: raw writes reach an fsync before success ---------------

// badRawWrite acknowledges bytes that only ever reached the page
// cache.
func badRawWrite(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil { // want "raw .os.File write can reach a success return without an fsync"
		return err
	}
	return nil
}

// goodSyncAfter fsyncs before the success return.
func goodSyncAfter(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// flushSync is the in-package durability helper.
func flushSync(f *os.File) error {
	return f.Sync()
}

// goodViaSyncHelper discharges the fsync through flushSync's summary.
func goodViaSyncHelper(f *os.File, b []byte) error {
	if _, err := f.WriteString(string(b)); err != nil {
		return err
	}
	return flushSync(f)
}

// goodDeferredSync covers every exit with a deferred transitive sync.
func goodDeferredSync(f *os.File, b []byte) error {
	defer flushSync(f)
	if _, err := f.Write(b); err != nil {
		return err
	}
	return nil
}

// goodFailureOnly mirrors the torn-write fault path: the raw write is
// always followed by a failure return, so nothing is promised.
func goodFailureOnly(f *os.File, b []byte) error {
	if injected() {
		if _, err := f.Write(b[:len(b)/2]); err != nil {
			return err
		}
		return fmt.Errorf("short write injected")
	}
	return nil
}

func injected() bool { return true }
