// Package engine reproduces the partition-routing bug class fixed in
// commit 3784fba: streaming distinct's serial path probed partition 0
// while the parallel workers inserted at h % w, so rows deduplicated
// serially reappeared from the workers' partitions. The partroute
// analyzer pins all hash→partition mapping to partitionOf; this
// fixture preserves the pre-fix shapes as regression cases.
package engine

// rowTable mirrors the engine's hash-bucketed partition state.
type rowTable map[uint64][]int

// partitionOf is the blessed mapping — the one place partition
// arithmetic may live.
func partitionOf(h uint64, parts int) int { return int(h % uint64(parts)) }

type dedup struct {
	tables []rowTable
	w      int
}

// BadSerialProbe is the pre-fix dedupSerial shape: the serial path
// hard-codes partition 0 while workers spread inserts by hash.
func (d *dedup) BadSerialProbe(h uint64) bool {
	t := d.tables[0] // want "constant index into a partition-table slice"
	_, ok := t[h]
	return ok
}

// BadModRoute is the pre-fix worker shape: ad-hoc hash modulo instead
// of the shared mapping.
func (d *dedup) BadModRoute(h uint64) rowTable {
	return d.tables[h%uint64(d.w)] // want "uint64 modulo outside partitionOf"
}

// BadBucketSlice hard-codes a partition into a slice of hash-keyed
// maps.
func BadBucketSlice(parts []map[uint64]bool, h uint64) bool {
	return parts[1][h] // want "constant index into a partition-table slice"
}

// GoodRoute routes every access through partitionOf.
func (d *dedup) GoodRoute(h uint64) rowTable {
	return d.tables[partitionOf(h, d.w)]
}

// GoodRoundRobin uses int modulo for worker selection — scheduling,
// not hash routing, and exempt.
func GoodRoundRobin(i, workers int) int { return i % workers }

// GoodLoopIndex walks every partition with a variable index.
func (d *dedup) GoodLoopIndex() int {
	total := 0
	for i := range d.tables {
		total += len(d.tables[i])
	}
	return total
}
