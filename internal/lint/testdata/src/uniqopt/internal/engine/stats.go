// Package engine is a golden-fixture stand-in for the real
// uniqopt/internal/engine: the Stats counter struct and Relation, with
// the same shapes the statsatomic and rowalias analyzers key on. This
// file plays the role of the real stats.go — it is the one file where
// ad-hoc sync/atomic access to the counters is permitted.
package engine

import (
	"sync/atomic"

	"uniqopt/internal/value"
)

// Stats accumulates operator work counters.
type Stats struct {
	RowsScanned int64
	RowsOutput  int64
	HashProbes  int64
	CacheHits   int64
}

// Add accumulates o into s atomically.
func (s *Stats) Add(o Stats) {
	atomic.AddInt64(&s.RowsScanned, o.RowsScanned)
	atomic.AddInt64(&s.RowsOutput, o.RowsOutput)
	atomic.AddInt64(&s.HashProbes, o.HashProbes)
	atomic.AddInt64(&s.CacheHits, o.CacheHits)
}

// Snapshot returns an atomically loaded copy of s.
func (s *Stats) Snapshot() Stats {
	return Stats{
		RowsScanned: atomic.LoadInt64(&s.RowsScanned),
		RowsOutput:  atomic.LoadInt64(&s.RowsOutput),
		HashProbes:  atomic.LoadInt64(&s.HashProbes),
		CacheHits:   atomic.LoadInt64(&s.CacheHits),
	}
}

// Relation is a materialized multiset of rows.
type Relation struct {
	Cols []string
	Rows []value.Row
}
