// Package tvl is a golden-fixture stand-in for the real
// uniqopt/internal/tvl: same import path (the fixture source root
// shadows the repository), same exported surface the analyzers care
// about, none of the implementation.
package tvl

// Truth is a three-valued logic truth value.
type Truth uint8

// The three truth values.
const (
	Unknown Truth = iota
	False
	True
)

// IsTrue reports whether t is definitely True.
func IsTrue(t Truth) bool { return t == True }

// IsFalse reports whether t is definitely False.
func IsFalse(t Truth) bool { return t == False }

// IsUnknown reports whether t is Unknown.
func IsUnknown(t Truth) bool { return t == Unknown }

// TrueInterpreted promotes Unknown to true.
func TrueInterpreted(t Truth) bool { return t != False }

// FalseInterpreted demotes Unknown to false.
func FalseInterpreted(t Truth) bool { return t == True }

// Of converts a Go bool to a Truth.
func Of(b bool) Truth {
	if b {
		return True
	}
	return False
}
