// Package value is a golden-fixture stand-in for the real
// uniqopt/internal/value, providing just the Row type the rowalias
// analyzer keys on.
package value

// Value is one SQL value.
type Value struct {
	I int64
}

// Row is an ordered tuple of values. Rows are shared by reference
// across operators and partitions.
type Row []Value

// Clone deep-copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
