package engine

import (
	"sync/atomic"

	"uniqopt/internal/value"
)

// BadAtomic does ad-hoc atomics on counters outside stats.go: the
// atomic API must stay centralized so merges cannot miss a counter.
func BadAtomic(st *Stats) {
	atomic.AddInt64(&st.RowsScanned, 1) // want "ad-hoc atomic access to Stats.RowsScanned outside stats.go"
	_ = atomic.LoadInt64(&st.HashProbes) // want "ad-hoc atomic access to Stats.HashProbes outside stats.go"
}

// GoodDirect shows the documented engine-internal pattern: direct
// single-goroutine increments on a worker-private Stats, merged via
// Add.
func GoodDirect(st *Stats, rel *Relation) {
	var local Stats
	local.RowsScanned += int64(len(rel.Rows))
	st.HashProbes++ // engine implementation files may increment directly
	st.Add(local)
}

// BadSharedWrite mutates a row reached through the relation's shared
// row storage: operators must copy-on-write.
func BadSharedWrite(rel *Relation) {
	if len(rel.Rows) > 0 && len(rel.Rows[0]) > 0 {
		rel.Rows[0][0] = value.Value{I: 1} // want "in-place write to a row reached through shared storage"
	}
}

// BadParamWrite mutates through a doubly-indexed parameter slice —
// the rows belong to whoever passed them in.
func BadParamWrite(rows []value.Row) {
	rows[0][0] = value.Value{I: 2} // want "in-place write to a row reached through shared storage"
}

// GoodFreshWrite builds fresh rows and fills them before sharing.
func GoodFreshWrite(rel *Relation) *Relation {
	out := &Relation{Cols: rel.Cols}
	for _, row := range rel.Rows {
		nr := make(value.Row, len(row))
		copy(nr, row)
		nr[0] = value.Value{I: 3}
		out.Rows = append(out.Rows, nr)
	}
	return out
}
