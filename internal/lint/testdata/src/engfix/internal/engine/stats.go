// Package engine is the golden fixture standing in the engine
// implementation's shoes: its import path ends internal/engine, so the
// statsatomic and rowalias analyzers apply their engine-side rules.
// This file is named stats.go and therefore owns the atomic API.
package engine

import (
	"sync/atomic"

	"uniqopt/internal/value"
)

// Stats mirrors the real counter struct.
type Stats struct {
	RowsScanned int64
	HashProbes  int64
}

// Add accumulates o into s; ad-hoc atomics are fine here, in stats.go.
func (s *Stats) Add(o Stats) {
	atomic.AddInt64(&s.RowsScanned, o.RowsScanned)
	atomic.AddInt64(&s.HashProbes, o.HashProbes)
}

// Relation mirrors the real materialized-result type.
type Relation struct {
	Cols []string
	Rows []value.Row
}
