// Package engine is a stand-in fixture for the iterator-lifecycle
// rules: iterlife (Next without Close, constructed-but-never-closed
// locals), the ctxflow extension to Next methods (dropped or unused
// contexts detach a pipeline stage from cancellation), and the
// rowalias batch-buffer-reuse rule (a Next that mutates the batch it
// already handed to its consumer).
package engine

import (
	"context"

	"uniqopt/internal/value"
)

// Batch mirrors the engine's batch representation.
type Batch []value.Row

// goodIter honors the full contract: Next threads its context and
// Close releases resources.
type goodIter struct{ rows []value.Row }

func newIter() *goodIter { return &goodIter{} }

func (it *goodIter) Cols() []string { return nil }

func (it *goodIter) Next(ctx context.Context) (Batch, error) {
	return nil, ctx.Err()
}

func (it *goodIter) Close() error { return nil }

// leakyIter declares Next but no Close: nothing can tear it down.
type leakyIter struct{ rows []value.Row } // want "no Close"

func (it *leakyIter) Next(ctx context.Context) (Batch, error) {
	return nil, ctx.Err()
}

// pullOnly is the same hole at the interface level: a pipeline built
// against it has no way to release a stage.
type pullOnly interface { // want "no Close"
	Next(ctx context.Context) (Batch, error)
}

// dropIter discards the context Next receives, so cancellation and
// budget checks can never reach this stage.
type dropIter struct{}

func (it *dropIter) Next(_ context.Context) (Batch, error) { // want "discards its context.Context parameter"
	return nil, nil
}

func (it *dropIter) Close() error { return nil }

// idleIter names its context but never polls or forwards it — the
// stage runs detached just the same.
type idleIter struct{}

func (it *idleIter) Next(ctx context.Context) (Batch, error) { // want "never uses its context parameter"
	return nil, nil
}

func (it *idleIter) Close() error { return nil }

// reuseIter recycles its receiver-field batch across calls: the
// previous batch is already owned by the consumer, so the write
// corrupts rows after handoff.
type reuseIter struct{ buf Batch }

func (it *reuseIter) Next(ctx context.Context) (Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	it.buf[0] = value.Row{value.Value{I: 1}} // want "reuses the receiver batch buffer"
	return it.buf, nil
}

func (it *reuseIter) Close() error { return nil }

// freshIter is the documented pattern: a fresh batch per call.
type freshIter struct{}

func (it *freshIter) Next(ctx context.Context) (Batch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make(Batch, 0, 1)
	out = append(out, value.Row{value.Value{I: 2}})
	return out, nil
}

func (it *freshIter) Close() error { return nil }

// BadLeak constructs an iterator and exits without closing it or
// giving it to anyone — its resources stay charged forever.
func BadLeak(ctx context.Context) error {
	it := newIter() // want "never closed, returned, or handed off"
	b, err := it.Next(ctx)
	_ = b
	return err
}

// GoodClose owns the iterator for its whole lifetime and closes it.
func GoodClose(ctx context.Context) error {
	it := newIter()
	defer it.Close()
	_, err := it.Next(ctx)
	return err
}

// GoodHandoff transfers ownership to the caller.
func GoodHandoff() *goodIter {
	it := newIter()
	return it
}

// GoodPass transfers ownership to a callee that closes it.
func GoodPass(ctx context.Context) error {
	it := newIter()
	return drainIter(ctx, it)
}

func drainIter(ctx context.Context, it *goodIter) error {
	defer it.Close()
	_, err := it.Next(ctx)
	return err
}
