// Package engine is the golden fixture for the iterstate analyzer:
// flow-sensitive use-after-Close and duplicate-Close detection over
// branches, loops, field chains, and summary-closing callees.
package engine

import "context"

// Batch stands in for an emitted row batch.
type Batch []int

type src struct{ n int }

func newSrc() *src { return &src{} }

func (s *src) Next(ctx context.Context) (Batch, error) { return nil, ctx.Err() }
func (s *src) Rewind()                                 { s.n = 0 }
func (s *src) Close() error                            { return nil }

// drain closes its argument before returning; its summary carries the
// close to every caller.
func drain(ctx context.Context, it *src) error {
	defer it.Close()
	for {
		b, err := it.Next(ctx)
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// BadUseAfterClose pulls from an iterator it already closed.
func BadUseAfterClose(ctx context.Context) error {
	it := newSrc()
	it.Close()
	_, err := it.Next(ctx) // want "Next called on it after it was closed"
	return err
}

// BadRewindAfterClose rewinds a closed iterator; the buffers Rewind
// would replay were released by Close.
func BadRewindAfterClose(ctx context.Context) error {
	it := newSrc()
	if _, err := it.Next(ctx); err != nil {
		return err
	}
	if err := it.Close(); err != nil {
		return err
	}
	it.Rewind() // want "Rewind called on it after it was closed"
	return nil
}

// BadDoubleClose closes the same binding twice; the second call is
// dead code hiding an ownership confusion.
func BadDoubleClose() error {
	it := newSrc()
	if err := it.Close(); err != nil {
		return err
	}
	return it.Close() // want "duplicate Close"
}

// BadSummaryClose hands the iterator to drain — whose summary closes
// its parameter — and then pulls from it anyway.
func BadSummaryClose(ctx context.Context) error {
	it := newSrc()
	if err := drain(ctx, it); err != nil {
		return err
	}
	_, err := it.Next(ctx) // want "Next called on it after it was closed"
	return err
}

type pair struct{ left, right *src }

// BadFieldClose tracks field chains: p.left is closed, then pulled.
func BadFieldClose(ctx context.Context, p *pair) error {
	if err := p.left.Close(); err != nil {
		return err
	}
	_, err := p.left.Next(ctx) // want "Next called on p.left after it was closed"
	return err
}

// GoodBranchClose closes on one branch and pulls on the other; the
// facts never meet.
func GoodBranchClose(ctx context.Context, done bool) error {
	it := newSrc()
	if done {
		return it.Close()
	}
	if _, err := it.Next(ctx); err != nil {
		it.Close()
		return err
	}
	return it.Close()
}

// GoodLoopRebind constructs a fresh iterator each iteration; the
// Close at the bottom of the loop does not leak into the next
// iteration's new binding.
func GoodLoopRebind(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		it := newSrc()
		if _, err := it.Next(ctx); err != nil {
			it.Close()
			return err
		}
		it.Close()
	}
	return nil
}

// GoodDeferClose registers teardown without killing the binding.
func GoodDeferClose(ctx context.Context) error {
	it := newSrc()
	defer it.Close()
	_, err := it.Next(ctx)
	return err
}

// GoodSiblingField closes one field and pulls from the other.
func GoodSiblingField(ctx context.Context, p *pair) error {
	if err := p.left.Close(); err != nil {
		return err
	}
	_, err := p.right.Next(ctx)
	return err
}
