// Package engine is the golden fixture for the batchlife analyzer:
// rows and batches obtained from an iterator's Next are immutable
// after handoff, so element writes, copy-into, and mutation through a
// summary-mutating callee are all flagged; consumer-owned copies are
// free to change.
package engine

import (
	"context"

	"uniqopt/internal/value"
)

// Batch mirrors the engine's batch representation.
type Batch []value.Row

type src struct{}

func (s *src) Next(ctx context.Context) (Batch, error) { return nil, ctx.Err() }
func (s *src) Close() error                            { return nil }

// scale writes its row parameter in place; its summary marks the
// parameter mutated, which makes passing a pulled row to it a finding
// at the call site.
func scale(r value.Row, f int64) {
	for i := range r {
		r[i] = value.Value{I: f}
	}
}

// BadElementWrite writes into rows of a batch pulled from Next.
func BadElementWrite(ctx context.Context, s *src) error {
	b, err := s.Next(ctx)
	if err != nil {
		return err
	}
	for _, r := range b {
		r[0] = value.Value{} // want "element write of a row/batch obtained from Next"
	}
	return nil
}

// BadCopyInto reuses a pulled row as a copy destination.
func BadCopyInto(ctx context.Context, s *src) error {
	b, err := s.Next(ctx)
	if err != nil || len(b) == 0 {
		return err
	}
	fresh := make(value.Row, len(b[0]))
	copy(b[0], fresh) // want "copy into of a row/batch obtained from Next"
	return nil
}

// BadCalleeMutation hands a pulled row to a callee whose summary
// mutates it.
func BadCalleeMutation(ctx context.Context, s *src) error {
	b, err := s.Next(ctx)
	if err != nil || len(b) == 0 {
		return err
	}
	scale(b[0], 2) // want "mutation .via callee. of a row/batch obtained from Next"
	return nil
}

// GoodCopyThenWrite copies the pulled row before mutating; the copy is
// consumer-owned.
func GoodCopyThenWrite(ctx context.Context, s *src) error {
	b, err := s.Next(ctx)
	if err != nil || len(b) == 0 {
		return err
	}
	own := make(value.Row, len(b[0]))
	copy(own, b[0])
	own[0] = value.Value{I: 1}
	scale(own, 2)
	return nil
}

// GoodOwnBatch mutates a batch it allocated itself; no taint, no
// finding.
func GoodOwnBatch(n int) Batch {
	b := make(Batch, n)
	for i := range b {
		b[i] = value.Row{{I: int64(i)}}
	}
	return b
}
