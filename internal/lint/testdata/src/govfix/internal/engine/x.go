// Package engine is the golden fixture for the govpair analyzer: it
// mirrors the engine's Governor/guard accounting so the four pairing
// rules — charging Next with an inert Close, non-releasing paths
// through Close, discarded Charge errors, and ad-hoc governor calls —
// each have a positive and a negative case.
package engine

import (
	"context"
	"errors"
)

// Batch stands in for an emitted row batch.
type Batch []int

// Governor mirrors the engine's budget keeper.
type Governor struct{ used int64 }

// Charge reserves n bytes against the budget.
func (g *Governor) Charge(n int64) error {
	if g.used+n > 1<<20 {
		return errors.New("over budget")
	}
	g.used += n
	return nil
}

// Release returns n bytes to the budget.
func (g *Governor) Release(n int64) { g.used -= n }

// guard owns a *Governor field: the blessed home of accounting.
type guard struct {
	gov     *Governor
	charged int64
}

func (s *guard) charge(n int64) error {
	if err := s.gov.Charge(n); err != nil {
		return err
	}
	s.charged += n
	return nil
}

func (s *guard) release() {
	s.gov.Release(s.charged)
	s.charged = 0
}

// chargeAnyway discards the budget verdict (rule 3); being a guard
// method does not excuse ignoring the error.
func (s *guard) chargeAnyway(n int64) {
	s.gov.Charge(n) // want "Governor.Charge error discarded"
}

// chargeBlank discards the verdict through the blank identifier.
func (s *guard) chargeBlank(n int64) {
	_ = s.gov.Charge(n) // want "Governor.Charge error discarded"
}

// leakCharges charges per batch in Next (transitively, through its
// guard) but its Close never releases: rule 1.
type leakCharges struct { // want "charges the governor in Next but its Close never releases"
	g    guard
	rows Batch
}

func (it *leakCharges) Next(ctx context.Context) (Batch, error) {
	if err := it.g.charge(1); err != nil {
		return nil, err
	}
	return it.rows, ctx.Err()
}

func (it *leakCharges) Close() error { return nil }

// pairedIter releases in Close what Next charged: no finding.
type pairedIter struct {
	g    guard
	rows Batch
}

func (it *pairedIter) Next(ctx context.Context) (Batch, error) {
	if err := it.g.charge(1); err != nil {
		return nil, err
	}
	return it.rows, ctx.Err()
}

func (it *pairedIter) Close() error {
	it.g.release()
	return nil
}

// earlyOut's Close can return before releasing when the early branch
// is taken (rule 2): the condition does not consult the receiver, so
// it is not the idempotence guard.
type earlyOut struct {
	g guard
}

func (it *earlyOut) Next(ctx context.Context) (Batch, error) {
	if err := it.g.charge(1); err != nil {
		return nil, err
	}
	return nil, ctx.Err()
}

func (it *earlyOut) Close() error { // want "can return without releasing"
	if tracing() {
		return nil
	}
	it.g.release()
	return nil
}

// guardedClose re-closes through the accepted idempotence guard: the
// early return is conditioned on receiver state, so the path that
// skips the release is the path with nothing left to release.
type guardedClose struct {
	g      guard
	closed bool
}

func (it *guardedClose) Next(ctx context.Context) (Batch, error) {
	if err := it.g.charge(1); err != nil {
		return nil, err
	}
	return nil, ctx.Err()
}

func (it *guardedClose) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.g.release()
	return nil
}

// deferredClose covers every exit with a deferred release: no finding
// even though the body branches.
type deferredClose struct {
	g    guard
	open bool
}

func (it *deferredClose) Next(ctx context.Context) (Batch, error) {
	if err := it.g.charge(1); err != nil {
		return nil, err
	}
	return nil, ctx.Err()
}

func (it *deferredClose) Close() error {
	defer it.g.release()
	if it.open {
		it.open = false
		return nil
	}
	return nil
}

// adHocCharge bypasses the guard bookkeeping entirely (rule 4).
func adHocCharge(g *Governor, n int64) error {
	if err := g.Charge(n); err != nil { // want "direct Governor.Charge outside a guard type"
		return err
	}
	g.Release(n) // want "direct Governor.Release outside a guard type"
	return nil
}

func tracing() bool { return false }
