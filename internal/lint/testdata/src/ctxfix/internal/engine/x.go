// Package engine is the golden fixture for the ctxflow analyzer: it
// mirrors the real engine's import path so the analyzer treats it as
// an operator package.
package engine

import "context"

type Relation struct{ Rows []int }

// GoodThreaded forwards its context: no finding.
func GoodThreaded(ctx context.Context, rel *Relation) error {
	return helper(ctx, rel)
}

// GoodPolled polls its context directly: no finding.
func GoodPolled(ctx context.Context, rel *Relation) error {
	for range rel.Rows {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// GoodDerived shadows ctx in a nested scope but derives the new one
// from the parameter: deadline and cancellation still flow.
func GoodDerived(ctx context.Context, rel *Relation) error {
	if len(rel.Rows) > 0 {
		ctx := context.WithValue(ctx, ctxKey{}, 1)
		return helper(ctx, rel)
	}
	return helper(ctx, rel)
}

// GoodNilGuard re-binds a nil parameter to Background, the accepted
// defensive idiom.
func GoodNilGuard(ctx context.Context, rel *Relation) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return helper(ctx, rel)
}

// GoodNoParam has no context parameter, so manufacturing a root
// context is its only option.
func GoodNoParam(rel *Relation) error {
	return helper(context.Background(), rel)
}

// BadDropped throws its context away at the signature.
func BadDropped(_ context.Context, rel *Relation) error { // want "discards its context.Context parameter"
	return helper(context.Background(), rel)
}

// BadUnused accepts a context and then ignores it entirely.
func BadUnused(ctx context.Context, rel *Relation) error { // want "never uses its context parameter"
	for range rel.Rows {
	}
	return nil
}

// BadShadowed replaces the caller's context with a detached root; the
// analyzer reports both the shadow and the Background call.
func BadShadowed(ctx context.Context, rel *Relation) error {
	_ = ctx.Err()
	if len(rel.Rows) > 0 {
		ctx := context.Background() // want "shadows its context parameter" "calls context.Background"
		return helper(ctx, rel)
	}
	return helper(ctx, rel)
}

// BadDetachedCall passes a fresh TODO downward instead of ctx.
func BadDetachedCall(ctx context.Context, rel *Relation) error {
	_ = ctx.Err()
	return helper(context.TODO(), rel) // want "calls context.TODO"
}

type ctxKey struct{}

func helper(ctx context.Context, rel *Relation) error {
	_ = ctx
	_ = rel
	return nil
}
