// Package catalog is the golden fixture for the catver analyzer: its
// import path ends internal/catalog, so every exported mutating method
// here must bump the schema version that keys the verdict cache.
package catalog

import "sync/atomic"

// Catalog is a mini schema registry with a version counter.
type Catalog struct {
	version atomic.Uint64
	tables  map[string]int
}

// Version reports the schema version.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// Bump invalidates version-keyed caches.
func (c *Catalog) Bump() { c.version.Add(1) }

// DefineGood mutates the schema and bumps the version.
func (c *Catalog) DefineGood(name string) {
	c.tables[name] = 1
	c.Bump()
}

// DefineInline mutates the schema and bumps the counter directly.
func (c *Catalog) DefineInline(name string) {
	c.tables[name] = 1
	c.version.Add(1)
}

// DefineBad mutates the schema without invalidating cached verdicts.
func (c *Catalog) DefineBad(name string) { // want "exported method DefineBad mutates the catalog schema"
	c.tables[name] = 1
}

// Lookup only reads; no bump required.
func (c *Catalog) Lookup(name string) int { return c.tables[name] }

// Table is a mini table schema. It carries no back-pointer, so its
// mutators must bump through a helper.
type Table struct {
	keys []int
	cat  *Catalog
}

// bump forwards to the owning catalog when attached.
func (t *Table) bump() {
	if t.cat != nil {
		t.cat.Bump()
	}
}

// AddKeyGood mutates and bumps via the helper.
func (t *Table) AddKeyGood(k int) {
	t.keys = append(t.keys, k)
	t.bump()
}

// AddKeyBad mutates the table's keys — which feed uniqueness verdicts
// — without any bump.
func (t *Table) AddKeyBad(k int) { // want "exported method AddKeyBad mutates the catalog schema"
	t.keys = append(t.keys, k)
}

// reindex is unexported: internal helpers are the caller's problem.
func (t *Table) reindex() {
	t.keys = t.keys[:0]
}
