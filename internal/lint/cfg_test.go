package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps body in a function and returns its parsed block.
// CFG construction is purely syntactic, so unresolved identifiers are
// fine.
func parseBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

func reaches(c *CFG, from, to *Block) bool {
	return c.ReachesWithout(from, to, func(*Block) bool { return false })
}

// blockCalling finds the block whose nodes contain a call to the named
// function.
func blockCalling(t *testing.T, c *CFG, name string) *Block {
	t.Helper()
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			found := false
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	_, body := parseBody(t, "x := 1\n_ = x")
	c := BuildCFG(body)
	if !reaches(c, c.Entry, c.Exit) {
		t.Error("straight-line body: entry does not reach exit")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	_, body := parseBody(t, "if c {\na()\n} else {\nb()\n}\nafter()")
	c := BuildCFG(body)
	after := blockCalling(t, c, "after")
	for _, name := range []string{"a", "b"} {
		if !reaches(c, blockCalling(t, c, name), after) {
			t.Errorf("branch %s does not reach the join block", name)
		}
	}
}

func TestCFGInfiniteForHasNoFallthrough(t *testing.T) {
	_, body := parseBody(t, "for {\nspin()\n}")
	c := BuildCFG(body)
	if reaches(c, c.Entry, c.Exit) {
		t.Error("`for {}` without break must not reach exit")
	}
	_, body = parseBody(t, "for {\nbreak\n}")
	c = BuildCFG(body)
	if !reaches(c, c.Entry, c.Exit) {
		t.Error("`for { break }` must reach exit")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	_, body := parseBody(t, "for i := 0; i < n; i++ {\nwork()\n}\nafter()")
	c := BuildCFG(body)
	work := blockCalling(t, c, "work")
	if !reaches(c, work, work) {
		t.Error("loop body does not reach itself via the back edge")
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Error("conditional loop must fall through to exit")
	}
}

func TestCFGTerminalCallKillsPath(t *testing.T) {
	_, body := parseBody(t, `panic("boom")`)
	c := BuildCFG(body)
	if reaches(c, c.Entry, c.Exit) {
		t.Error("unconditional panic must not reach exit")
	}
	_, body = parseBody(t, "if c {\npanic(\"boom\")\n}\nafter()")
	c = BuildCFG(body)
	if !reaches(c, c.Entry, c.Exit) {
		t.Error("the non-panicking branch must still reach exit")
	}
	_, body = parseBody(t, "os.Exit(1)")
	c = BuildCFG(body)
	if reaches(c, c.Entry, c.Exit) {
		t.Error("os.Exit must not reach exit")
	}
}

func TestCFGGotoSkipsStatements(t *testing.T) {
	_, body := parseBody(t, "goto L\nskipped()\nL:\nafter()")
	c := BuildCFG(body)
	if !reaches(c, c.Entry, c.Exit) {
		t.Error("goto over a label must reach exit")
	}
	if reaches(c, c.Entry, blockCalling(t, c, "skipped")) {
		t.Error("statement jumped over by goto must be unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, body := parseBody(t, "L:\nfor {\nfor {\nbreak L\n}\n}\nafter()")
	c := BuildCFG(body)
	if !reaches(c, c.Entry, blockCalling(t, c, "after")) {
		t.Error("labeled break out of nested loops must reach the after block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, body := parseBody(t, "switch v {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\ndefault:\nd()\n}\nafter()")
	c := BuildCFG(body)
	if !reaches(c, blockCalling(t, c, "a"), blockCalling(t, c, "b")) {
		t.Error("fallthrough must chain case 1 into case 2")
	}
	if !reaches(c, blockCalling(t, c, "d"), blockCalling(t, c, "after")) {
		t.Error("default clause must reach the join")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	_, body := parseBody(t, "defer cleanup()\nif c {\ndefer extra()\n}\nwork()")
	c := BuildCFG(body)
	if len(c.Defers) != 2 {
		t.Errorf("Defers = %d, want 2", len(c.Defers))
	}
}

// testTransfer is a toy transfer for solver tests: gen() generates a
// fact under a fixed key, kill() deletes it.
func testTransfer(n ast.Node, st State) {
	InspectNode(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "gen":
				if _, exists := st[FactKey{Obj: "k"}]; !exists {
					st[FactKey{Obj: "k"}] = Fact{Pos: call.Pos(), Kind: "g"}
				}
			case "kill":
				delete(st, FactKey{Obj: "k"})
			}
		}
		return true
	})
}

func TestSolveBranchMayJoin(t *testing.T) {
	_, body := parseBody(t, "if c {\ngen()\n}\nprobe()")
	c := BuildCFG(body)
	in := c.Solve(testTransfer)
	probe := blockCalling(t, c, "probe")
	if _, ok := in[probe.Index][FactKey{Obj: "k"}]; !ok {
		t.Error("may-join lost the fact generated on one branch")
	}
}

func TestSolveKillStopsFact(t *testing.T) {
	_, body := parseBody(t, "gen()\nkill()\nif c {\nprobe()\n}")
	c := BuildCFG(body)
	in := c.Solve(testTransfer)
	probe := blockCalling(t, c, "probe")
	if _, ok := in[probe.Index][FactKey{Obj: "k"}]; ok {
		t.Error("killed fact leaked past the kill")
	}
}

func TestSolveLoopCarriedFact(t *testing.T) {
	// probe() runs before gen() textually, but the back edge carries
	// the previous iteration's fact into the body's in-state.
	_, body := parseBody(t, "for i := 0; i < n; i++ {\nprobe()\ngen()\n}")
	c := BuildCFG(body)
	in := c.Solve(testTransfer)
	probe := blockCalling(t, c, "probe")
	if _, ok := in[probe.Index][FactKey{Obj: "k"}]; !ok {
		t.Error("loop-carried fact did not survive the back edge")
	}
}

func TestSolveJoinKeepsEarliestPos(t *testing.T) {
	_, body := parseBody(t, "if c {\ngen()\n} else {\ngen()\n}\nprobe()")
	c := BuildCFG(body)
	in := c.Solve(testTransfer)
	probe := blockCalling(t, c, "probe")
	f, ok := in[probe.Index][FactKey{Obj: "k"}]
	if !ok {
		t.Fatal("joined fact missing")
	}
	a := blockCalling(t, c, "gen")
	// The earliest gen() in source order must win the join.
	var earliest token.Pos
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "gen" {
						if earliest == token.NoPos || call.Pos() < earliest {
							earliest = call.Pos()
						}
					}
				}
				return true
			})
		}
	}
	_ = a
	if f.Pos != earliest {
		t.Errorf("join kept pos %v, want earliest gen at %v", f.Pos, earliest)
	}
}

func TestReachesWithoutBarrier(t *testing.T) {
	_, body := parseBody(t, "if c {\nbar()\n}\nend()")
	c := BuildCFG(body)
	barBlk := blockCalling(t, c, "bar")
	barrier := func(b *Block) bool { return b == barBlk }
	if !c.ReachesWithout(c.Entry, c.Exit, barrier) {
		t.Error("else path around the barrier must still reach exit")
	}
	_, body = parseBody(t, "bar()\nend()")
	c = BuildCFG(body)
	barBlk = blockCalling(t, c, "bar")
	if c.ReachesWithout(c.Entry, c.Exit, func(b *Block) bool { return b == barBlk }) {
		t.Error("straight line through the barrier must be blocked")
	}
}

func TestInspectNodeRangeHead(t *testing.T) {
	_, body := parseBody(t, "for k, v := range xs {\nuse(k, v)\n}")
	c := BuildCFG(body)
	// The range node lives in a loop-head block; InspectNode must
	// surface the RangeStmt itself (for Key/Value kills) and X, but
	// not the body.
	var sawRange, sawBody bool
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); !ok {
				continue
			}
			InspectNode(n, func(x ast.Node) bool {
				switch y := x.(type) {
				case *ast.RangeStmt:
					sawRange = true
				case *ast.CallExpr:
					if id, ok := y.Fun.(*ast.Ident); ok && id.Name == "use" {
						sawBody = true
					}
				}
				return true
			})
		}
	}
	if !sawRange {
		t.Error("InspectNode never yielded the RangeStmt node itself")
	}
	if sawBody {
		t.Error("InspectNode descended into the range body from the head block")
	}
}

func TestInspectNodeSkipsFuncLit(t *testing.T) {
	_, body := parseBody(t, "f := func() {\ninner()\n}\n_ = f")
	c := BuildCFG(body)
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "inner" {
						t.Error("InspectNode descended into a FuncLit body")
					}
				}
				return true
			})
		}
	}
}
