package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunnerSuppressions(t *testing.T) {
	r, err := NewRunner(".", []*Analyzer{TvlBool})
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := r.Run([]string{"./internal/lint/testdata/src/fix/allow"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Findings != 1 || sum.Suppressed != 2 {
		t.Fatalf("summary = %+v, want 1 finding and 2 suppressed; findings: %v", sum, findings)
	}
	var live []Finding
	for _, f := range findings {
		if !f.Suppressed {
			live = append(live, f)
		}
	}
	if len(live) != 1 || !strings.Contains(live[0].Message, "tvl.IsUnknown") {
		t.Fatalf("live findings = %v", live)
	}
}

func TestAllowStale(t *testing.T) {
	r, err := NewRunner(".", []*Analyzer{TvlBool, AllowStale})
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := r.Run([]string{"./internal/lint/testdata/src/fix/stale"})
	if err != nil {
		t.Fatal(err)
	}
	// One live suppression, plus two allowstale findings: the stale
	// tvlbool directive and the unknown-analyzer directive.
	if sum.Findings != 2 || sum.Suppressed != 1 {
		t.Fatalf("summary = %+v, want 2 findings and 1 suppressed; findings: %v", sum, findings)
	}
	var stale, unknown int
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		if f.Analyzer != AllowStale.Name {
			t.Errorf("unexpected analyzer %s: %v", f.Analyzer, f)
		}
		switch {
		case strings.Contains(f.Message, "suppresses no findings"):
			stale++
		case strings.Contains(f.Message, "unknown analyzer"):
			unknown++
		}
	}
	if stale != 1 || unknown != 1 {
		t.Errorf("stale=%d unknown=%d, want 1 and 1; findings: %v", stale, unknown, findings)
	}
}

func TestAllowStaleUndecidableSubset(t *testing.T) {
	// With tvlbool not part of the run, the stale tvlbool directive is
	// undecidable and must not be reported; the unknown-analyzer
	// directive is always reportable.
	r, err := NewRunner(".", []*Analyzer{AllowStale})
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := r.Run([]string{"./internal/lint/testdata/src/fix/stale"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Findings != 1 || sum.Suppressed != 0 {
		t.Fatalf("summary = %+v, want exactly the unknown-analyzer finding", sum)
	}
}

func TestAllowStaleDisabled(t *testing.T) {
	// Without allowstale in the run, stale directives are not policed.
	r, err := NewRunner(".", []*Analyzer{TvlBool})
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := r.Run([]string{"./internal/lint/testdata/src/fix/stale"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Findings != 0 || sum.Suppressed != 1 {
		t.Fatalf("summary = %+v, want 0 findings and 1 suppressed", sum)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	r, err := NewRunner(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := r.ExpandPatterns([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into testdata: %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Errorf("dirs = %v, want just internal/lint", dirs)
	}
}

func TestExpandPatternsExplicitTestdata(t *testing.T) {
	r, err := NewRunner(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := r.ExpandPatterns([]string{"./internal/lint/testdata/src/fix/tvlbool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 {
		t.Fatalf("dirs = %v", dirs)
	}
}

func TestRunnerOnFixtureFindsViolations(t *testing.T) {
	r, err := NewRunner(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := r.Run([]string{"./internal/lint/testdata/src/fix/tvlbool"})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Findings == 0 {
		t.Fatal("runner found nothing in the tvlbool fixture")
	}
	for _, f := range findings {
		if filepath.Base(f.Pos.Filename) != "x.go" {
			t.Errorf("finding outside fixture file: %v", f)
		}
		if f.Analyzer != "tvlbool" {
			t.Errorf("unexpected analyzer %s on tvlbool fixture: %v", f.Analyzer, f)
		}
	}
}

func TestParseAllowsReason(t *testing.T) {
	r, err := NewRunner(".", []*Analyzer{TvlBool})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(r.Root, "internal", "lint", "testdata", "src", "fix", "allow")
	path, loader := r.importPathFor(dir)
	files, _, _, err := loader.ParseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != "fix/allow" {
		t.Errorf("fixture import path = %q, want fix/allow", path)
	}
	allows := parseAllows(loader.Fset, files)
	if len(allows) != 2 {
		t.Fatalf("allows = %+v, want 2", allows)
	}
	for _, d := range allows {
		if len(d.Analyzers) != 1 || d.Analyzers[0] != "tvlbool" {
			t.Errorf("directive analyzers = %v", d.Analyzers)
		}
		if !strings.HasPrefix(d.Reason, "reviewed:") {
			t.Errorf("directive reason = %q", d.Reason)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "uniqopt" {
		t.Errorf("module path = %q", mod)
	}
	if !strings.HasSuffix(filepath.ToSlash(root), "repo") && root == "" {
		t.Errorf("root = %q", root)
	}
}
