package lint

// AllowStale reports //lint:allow directives that suppress nothing.
// A suppression is a standing claim — "this line trips analyzer X and
// a human decided that is fine" — and the claim goes stale the moment
// the code or the analyzer changes so that nothing is suppressed
// anymore. A stale allow is worse than none: it silently pre-approves
// the next real finding on that line. The check also flags directives
// naming analyzers that do not exist (typos never suppressed anything
// to begin with).
//
// Unlike every other analyzer, this one runs in the driver rather
// than over a typed unit: staleness is only decidable after all
// analyzers have run and suppressions have been applied, and only
// when every analyzer a directive names was part of the run (a
// subset run cannot prove a directive dead). The Run function here is
// therefore a no-op; the logic lives in driver.go's checkStaleAllows.
var AllowStale = &Analyzer{
	Name: "allowstale",
	Doc:  "flag //lint:allow directives that suppress no findings, and directives naming unknown analyzers",
	Run:  func(*Pass) {},
}
