package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow guards the engine's cancellation contract. Query lifecycle
// control — deadlines, cancellation, and the resource governor riding
// in the context — only works if every operator entry point actually
// threads its incoming context.Context downward. A parameter that is
// dropped (named _), never used, shadowed by a fresh context, or
// bypassed with context.Background()/TODO() silently detaches that
// subtree from the query's lifecycle: the query "supports"
// cancellation but a branch of its execution can no longer observe it.
// The analyzer inspects non-test files of internal/engine and
// internal/plan, where every context must descend from the query
// boundary.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag engine/plan functions that drop, ignore, shadow, or bypass their incoming context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") && !pkgIs(pass.Pkg, "internal/plan") {
		return
	}
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	// Locate the function's context.Context parameter, if any.
	var ctxParam *types.Var
	var ctxIdent *ast.Ident
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			ft := pass.Info.TypeOf(field.Type)
			if ft == nil || !isCtxType(ft) {
				continue
			}
			if len(field.Names) == 0 {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					pass.Report(name.Pos(),
						"function %s discards its context.Context parameter (_); cancellation and budgets cannot flow into this subtree — name and thread it",
						fd.Name.Name)
					continue
				}
				ctxIdent = name
				ctxParam, _ = pass.Info.Defs[name].(*types.Var)
			}
			break
		}
	}
	if ctxParam == nil || ctxIdent == nil {
		return
	}

	// Count uses of the parameter and collect suspect constructs.
	uses := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if pass.Info.Uses[x] == ctxParam {
				uses++
			}
		case *ast.AssignStmt:
			// ctx := ... that shadows the parameter without deriving
			// from it detaches everything below the new binding.
			if x.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != ctxIdent.Name {
					continue
				}
				if def, ok := pass.Info.Defs[id].(*types.Var); !ok || def == ctxParam {
					continue
				}
				if i < len(x.Rhs) && usesObj(pass.Info, x.Rhs[i], ctxParam) {
					continue // ctx := context.WithValue(ctx, ...) derives properly
				}
				if len(x.Rhs) == 1 && usesObj(pass.Info, x.Rhs[0], ctxParam) {
					continue // multi-assign from one call that threads ctx
				}
				pass.Report(id.Pos(),
					"function %s shadows its context parameter with a new %s not derived from it; the incoming deadline, cancellation, and governor are lost below this line",
					fd.Name.Name, ctxIdent.Name)
			}
		case *ast.CallExpr:
			// context.Background()/TODO() under a ctx-bearing function
			// manufactures a detached context.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || pkgID.Name != "context" {
				return true
			}
			if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
				return true
			}
			if obj, ok := pass.Info.Uses[pkgID].(*types.PkgName); !ok || obj.Imported().Path() != "context" {
				return true
			}
			if rebindsParam(pass.Info, fd.Body, x, ctxParam) {
				return true // nil-guard idiom: ctx = context.Background()
			}
			pass.Report(x.Pos(),
				"function %s calls context.%s() despite receiving a context parameter; pass %s down instead of detaching this call tree from the query lifecycle",
				fd.Name.Name, sel.Sel.Name, ctxIdent.Name)
		}
		return true
	})
	if uses == 0 {
		pass.Report(ctxIdent.Pos(),
			"function %s never uses its context parameter %s; every engine/plan entry point must poll or forward it so cancellation reaches all operators",
			fd.Name.Name, ctxIdent.Name)
		return
	}
	// Interprocedural refinement: the parameter is mentioned, but if
	// every mention only forwards it to in-package callees that
	// provably ignore their own context parameter, cancellation still
	// dead-ends. The function summary's UsesParam is exactly this
	// transitive judgment (unknown callees count as using).
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
		if sum := pass.Dataflow().SummaryOf(fn); sum != nil {
			if i := sum.paramIndex(ctxParam); i >= 0 && !sum.UsesParam[i] {
				pass.Report(ctxIdent.Pos(),
					"function %s forwards its context parameter %s only to callees that ignore it; cancellation never reaches any operator below — thread it to a consumer or poll it here",
					fd.Name.Name, ctxIdent.Name)
			}
		}
	}
}

// usesObj reports whether expr references obj anywhere.
func usesObj(info *types.Info, expr ast.Expr, obj *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// rebindsParam reports whether call appears as the sole RHS of a plain
// assignment (`=`, not `:=`) whose LHS is the context parameter itself
// — the deliberate `if ctx == nil { ctx = context.Background() }`
// guard, which re-binds rather than detaches.
func rebindsParam(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr, param *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != "=" || len(as.Rhs) != 1 || as.Rhs[0] != call {
			return !found
		}
		if len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && info.Uses[id] == param {
				found = true
			}
		}
		return !found
	})
	return found
}
