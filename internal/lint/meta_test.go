package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// analyzerFixtures maps every registered analyzer to the fixture
// package (under testdata/src) that exercises it. Adding an analyzer
// to All() without a fixture fails TestEveryAnalyzerHasFixture until
// this map — and the fixture — exist.
var analyzerFixtures = map[string]string{
	"tvlbool":     "fix/tvlbool",
	"rowalias":    "fix/rowalias",
	"statsatomic": "fix/statsatomic",
	"catver":      "catfix/internal/catalog",
	"detorder":    "fix/detorder",
	"ctxflow":     "ctxfix/internal/engine",
	"iterlife":    "iterfix/internal/engine",
	"govpair":     "govfix/internal/engine",
	"iterstate":   "statefix/internal/engine",
	"batchlife":   "batchfix/internal/engine",
	"partroute":   "partfix/internal/engine",
	"filelife":    "filefix/internal/storage/wal",
	"allowstale":  "fix/stale",
}

func TestEveryAnalyzerHasFixture(t *testing.T) {
	for _, a := range All() {
		dir, ok := analyzerFixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture mapping; add one to analyzerFixtures and a package under testdata/src", a.Name)
			continue
		}
		path := filepath.Join("testdata", "src", filepath.FromSlash(dir))
		entries, err := os.ReadDir(path)
		if err != nil {
			t.Errorf("analyzer %s: fixture dir %s unreadable: %v", a.Name, path, err)
			continue
		}
		hasGo := false
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				hasGo = true
			}
		}
		if !hasGo {
			t.Errorf("analyzer %s: fixture dir %s has no Go files", a.Name, path)
		}
	}
	for name := range analyzerFixtures {
		if found, _ := ByName(name); len(found) != 1 {
			t.Errorf("analyzerFixtures maps %q, which is not a registered analyzer", name)
		}
	}
}

// repoRootFile reads a file relative to the module root.
func repoRootFile(t *testing.T, name string) string {
	t.Helper()
	root, _, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEveryAnalyzerIsDocumented(t *testing.T) {
	readme := repoRootFile(t, "README.md")
	design := repoRootFile(t, "DESIGN.md")
	for _, a := range All() {
		// README documents each analyzer as a table row | `name` | … |.
		if !strings.Contains(readme, "| `"+a.Name+"` |") {
			t.Errorf("analyzer %s has no row in README.md's analyzer table", a.Name)
		}
		// DESIGN.md mentions each analyzer by name at least once.
		if !strings.Contains(design, "`"+a.Name+"`") {
			t.Errorf("analyzer %s is not mentioned in DESIGN.md", a.Name)
		}
	}
}

// TestCatVerProtectsEveryVersionKeyedCache pins the catver contract to
// its consumers: every cache registered in VersionKeyedCaches must
// exist and key its entries on the catalog schema version (a catVer
// field in the key struct), and the two caches the repo actually has —
// the verdict cache and the normalized plan cache — must be registered.
// A new version-keyed cache that skips registration, or a registered
// cache that drops the version from its key, fails here.
func TestCatVerProtectsEveryVersionKeyedCache(t *testing.T) {
	for _, want := range []string{"core.VerdictCache", "plan.PlanCache"} {
		if _, ok := VersionKeyedCaches[want]; !ok {
			t.Errorf("VersionKeyedCaches does not register %s", want)
		}
	}
	root, _, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for name, file := range VersionKeyedCaches {
		src := repoRootFile(t, filepath.FromSlash(file))
		if !strings.Contains(src, "catVer") {
			t.Errorf("%s (%s) does not key on the catalog version (no catVer field); the catver contract no longer protects it", name, file)
		}
		// The key may be populated by a sibling file (the plan cache's
		// catVer is filled in by the planner), so the Version() read is
		// required somewhere in the cache's package, not the key file.
		dir := filepath.Join(root, filepath.FromSlash(filepath.Dir(file)))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		readsVersion := false
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), ".Version()") {
				readsVersion = true
				break
			}
		}
		if !readsVersion {
			t.Errorf("%s: no file in %s reads Catalog.Version(); its cache keys cannot track DDL", name, filepath.Dir(file))
		}
	}
}

func TestEveryAnalyzerHasDoc(t *testing.T) {
	for _, a := range All() {
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has an empty Doc string", a.Name)
		}
	}
}

// TestLintRuntimeBudget keeps the full-repo run (all analyzers, every
// package, dataflow summaries included) fast enough that `make lint`
// stays a pre-commit habit rather than a CI-only chore. The bound is
// generous — the run takes a few seconds on a cold cache — but a
// superlinear regression in the CFG solver or the summary fixpoint
// will blow straight through it.
func TestLintRuntimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime budget check skipped in -short mode")
	}
	r, err := NewRunner(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, sum, err := r.Run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if sum.Packages == 0 {
		t.Fatal("full-repo lint analyzed zero packages")
	}
	const budget = 60 * time.Second
	if elapsed > budget {
		t.Errorf("full-repo lint took %v, budget %v", elapsed, budget)
	}
	t.Logf("full-repo lint: %d units, %d findings, %d suppressed in %v",
		sum.Packages, sum.Findings, sum.Suppressed, elapsed)
}

// TestFullRepoClean is the acceptance gate: the tree itself must be
// finding-free under the complete analyzer suite (suppressions with
// reviewed reasons are the only exceptions, and allowstale polices
// those).
func TestFullRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint skipped in -short mode")
	}
	r, err := NewRunner(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, sum, err := r.Run([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Findings != 0 {
		for _, f := range findings {
			if !f.Suppressed {
				t.Errorf("unsuppressed finding: %s", f)
			}
		}
	}
}
