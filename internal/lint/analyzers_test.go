package lint

import (
	"strings"
	"testing"
)

func TestTvlBoolFixture(t *testing.T) {
	fs := checkFixture(t, "fix/tvlbool", TvlBool)
	if len(fs) != 5 {
		t.Errorf("tvlbool findings = %d, want 5", len(fs))
	}
}

func TestTvlBoolExemptInsideTvl(t *testing.T) {
	// The stand-in tvl package compares Truth values internally; the
	// analyzer must stay silent there.
	fs, _ := loadFixture(t, "uniqopt/internal/tvl", TvlBool)
	if len(fs) != 0 {
		t.Errorf("tvlbool flagged the tvl package itself: %v", fs)
	}
}

func TestRowAliasFixture(t *testing.T) {
	fs := checkFixture(t, "fix/rowalias", RowAlias)
	if len(fs) != 4 {
		t.Errorf("rowalias findings = %d, want 4", len(fs))
	}
}

func TestStatsAtomicConsumerFixture(t *testing.T) {
	fs := checkFixture(t, "fix/statsatomic", StatsAtomic)
	if len(fs) != 4 {
		t.Errorf("statsatomic findings = %d, want 4", len(fs))
	}
}

func TestEngineImplFixture(t *testing.T) {
	// The engine-side fixture carries both statsatomic centralization
	// violations and rowalias shared-storage writes.
	fs := checkFixture(t, "engfix/internal/engine", StatsAtomic, RowAlias)
	var atomics, shared int
	for _, f := range fs {
		switch f.Analyzer {
		case "statsatomic":
			atomics++
		case "rowalias":
			shared++
		}
	}
	if atomics != 2 || shared != 2 {
		t.Errorf("engine fixture findings: statsatomic=%d rowalias=%d, want 2 and 2", atomics, shared)
	}
}

func TestCatVerFixture(t *testing.T) {
	fs := checkFixture(t, "catfix/internal/catalog", CatVer)
	if len(fs) != 2 {
		t.Errorf("catver findings = %d, want 2", len(fs))
	}
}

func TestCatVerSkipsOtherPackages(t *testing.T) {
	fs, _ := loadFixture(t, "fix/tvlbool", CatVer)
	if len(fs) != 0 {
		t.Errorf("catver ran outside internal/catalog: %v", fs)
	}
}

func TestDetOrderFixture(t *testing.T) {
	fs := checkFixture(t, "fix/detorder", DetOrder)
	if len(fs) != 5 {
		t.Errorf("detorder findings = %d, want 5", len(fs))
	}
}

func TestFindingFormat(t *testing.T) {
	fs, _ := loadFixture(t, "fix/tvlbool", TvlBool)
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	s := fs[0].String()
	if !strings.Contains(s, "x.go:") || !strings.Contains(s, "[tvlbool]") {
		t.Errorf("finding format %q lacks file:line: [analyzer]", s)
	}
}

func TestByName(t *testing.T) {
	found, unknown := ByName("tvlbool,catver")
	if len(found) != 2 || len(unknown) != 0 {
		t.Fatalf("ByName: found=%v unknown=%v", found, unknown)
	}
	_, unknown = ByName("tvlbool,nosuch")
	if len(unknown) != 1 || unknown[0] != "nosuch" {
		t.Fatalf("ByName unknown = %v", unknown)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	fs := checkFixture(t, "ctxfix/internal/engine", CtxFlow)
	if len(fs) != 5 {
		t.Errorf("ctxflow findings = %d, want 5", len(fs))
	}
}

func TestIterLifeFixture(t *testing.T) {
	// The iterator fixture exercises all three lifecycle rules at
	// once: iterlife's missing-Close and leaked-local rules, ctxflow
	// on Next methods, and rowalias batch-buffer reuse.
	fs := checkFixture(t, "iterfix/internal/engine", IterLife, RowAlias, CtxFlow)
	var life, ctx, alias int
	for _, f := range fs {
		switch f.Analyzer {
		case "iterlife":
			life++
		case "ctxflow":
			ctx++
		case "rowalias":
			alias++
		}
	}
	if life != 3 || ctx != 2 || alias != 1 {
		t.Errorf("iterator fixture findings: iterlife=%d ctxflow=%d rowalias=%d, want 3, 2, 1", life, ctx, alias)
	}
}

func TestIterLifeSkipsOtherPackages(t *testing.T) {
	fs, _ := loadFixture(t, "fix/tvlbool", IterLife)
	if len(fs) != 0 {
		t.Errorf("iterlife ran outside engine/plan: %v", fs)
	}
}

func TestGovPairFixture(t *testing.T) {
	fs := checkFixture(t, "govfix/internal/engine", GovPair)
	if len(fs) != 6 {
		t.Errorf("govpair findings = %d, want 6", len(fs))
	}
}

func TestIterStateFixture(t *testing.T) {
	fs := checkFixture(t, "statefix/internal/engine", IterState)
	if len(fs) != 5 {
		t.Errorf("iterstate findings = %d, want 5", len(fs))
	}
}

func TestBatchLifeFixture(t *testing.T) {
	fs := checkFixture(t, "batchfix/internal/engine", BatchLife)
	if len(fs) != 3 {
		t.Errorf("batchlife findings = %d, want 3", len(fs))
	}
}

func TestPartRouteFixture(t *testing.T) {
	fs := checkFixture(t, "partfix/internal/engine", PartRoute)
	if len(fs) != 3 {
		t.Errorf("partroute findings = %d, want 3", len(fs))
	}
}

func TestGovPairSkipsOtherPackages(t *testing.T) {
	fs, _ := loadFixture(t, "fix/tvlbool", GovPair, IterState, BatchLife, PartRoute)
	if len(fs) != 0 {
		t.Errorf("dataflow analyzers ran outside engine/plan: %v", fs)
	}
}

func TestCtxFlowSkipsOtherPackages(t *testing.T) {
	// The analyzer is scoped to internal/engine and internal/plan;
	// other packages may hold contexts however they like.
	fs, _ := loadFixture(t, "fix/tvlbool", CtxFlow)
	if len(fs) != 0 {
		t.Errorf("ctxflow ran outside engine/plan: %v", fs)
	}
}

func TestFileLifeFixture(t *testing.T) {
	fs := checkFixture(t, "filefix/internal/storage/wal", FileLife)
	if len(fs) != 4 {
		t.Errorf("filelife findings = %d, want 4", len(fs))
	}
}

func TestFileLifeSkipsOtherPackages(t *testing.T) {
	// The analyzer is scoped to internal/storage/...; file handling
	// elsewhere (test harnesses, benchmarks) is out of its remit.
	fs, _ := loadFixture(t, "fix/tvlbool", FileLife)
	if len(fs) != 0 {
		t.Errorf("filelife ran outside internal/storage: %v", fs)
	}
}
