package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RowAlias polices the shared-slice discipline of the parallel engine:
// a value.Row (or []Row) is aliased, not copied, when it is sent on a
// channel, appended into another slice (a partition, an output chunk,
// a hash bucket), or stored into a struct or map. After any
// of those events the row may be observed concurrently by another
// partition or retained by an output relation, so writing one of its
// elements afterwards is a data race or a silent result corruption —
// the bug class `go test -race` only catches when the schedule
// cooperates. The analyzer flags, within one function, element writes
// to a row-typed variable that occur (textually) after the variable
// escaped.
//
// A second rule, scoped to the engine package, flags in-place writes
// to rows reached through shared storage (rel.Rows[i][j] = v, or a
// doubly-indexed parameter): operators receive their inputs by
// reference and must copy-on-write.
//
// A third rule polices the streaming batch contract: a Next method
// that writes elements of a receiver-field row slice it also returns
// is reusing its output buffer across calls, mutating batches the
// previous Next already handed to the consumer. Emitted batches are
// immutable after handoff — Next must allocate fresh batch storage.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "flag writes to value.Row elements after the row escaped (channel send, append, store, return)",
	Run:  runRowAlias,
}

// escapeKind labels how a row was shared, for the diagnostic.
type escapeEvent struct {
	pos  token.Pos
	kind string
}

func runRowAlias(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runRowAliasFunc(pass, fd)
		}
	}
}

// rowIdents yields every identifier of row type in e, resolved to its
// variable object.
func rowIdents(info *types.Info, e ast.Expr, fn func(*types.Var, *ast.Ident)) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objOf(info, id); obj != nil && isRowType(obj.Type()) {
			fn(obj, id)
		}
		return true
	})
}

func runRowAliasFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Rule 1 (flow-sensitive): escape facts flow along the function's
	// CFG; function literals are separate functions with their own
	// CFGs, analyzed independently.
	rowAliasEscapes(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			rowAliasEscapes(pass, fl.Body)
		}
		return true
	})

	params := make(map[*types.Var]bool)
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj, ok := info.Defs[name].(*types.Var); ok {
					params[obj] = true
				}
			}
		}
	}

	inEngine := pkgIs(pass.Pkg, "internal/engine")

	// Rule 2 (flow-insensitive): deep writes through shared storage in
	// the engine package.
	checkShared := func(target ast.Expr, pos token.Pos) {
		idx, ok := target.(*ast.IndexExpr)
		if !ok || !inEngine {
			return
		}
		if inner, ok := idx.X.(*ast.IndexExpr); ok {
			if t := info.Types[idx.X].Type; t != nil && namedFrom(t, "internal/value", "Row") {
				root := rootIdent(inner.X)
				viaSelector := false
				ast.Inspect(inner.X, func(n ast.Node) bool {
					if _, ok := n.(*ast.SelectorExpr); ok {
						viaSelector = true
					}
					return true
				})
				if root == nil || viaSelector || params[objOf(info, root)] {
					pass.Report(pos, "in-place write to a row reached through shared storage; operators must copy rows before mutating (copy-on-write)")
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkShared(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkShared(x.X, x.X.Pos())
		}
		return true
	})

	// Rule 3: Next reusing the receiver batch buffer it returns.
	if inEngine || pkgIs(pass.Pkg, "internal/plan") {
		checkNextBufferReuse(pass, fd)
	}
}

// rowAliasEscapes implements rule 1 on the CFG: a fact marks a row
// variable as escaped (sent, appended, stored, captured); assignment
// to the variable — including the per-iteration rebinding at a range
// head — kills the fact, since a fresh binding aliases nothing. An
// element write while a fact is live is flagged. Compared to the old
// textual-order rule this catches the loop-carried case (escape in
// one iteration, write in the next) and stops flagging writes on
// branches the escape cannot reach.
//
// `return r` is deliberately NOT an escape — a conditional early
// return followed by a write means the write runs only when the
// return did not. Mutation of rows handed to/from callers is rule 2's
// job.
func rowAliasEscapes(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	cfg := pass.Dataflow().CFGFor(body)

	gen := func(st State, obj *types.Var, pos token.Pos, kind string) {
		k := FactKey{Obj: obj}
		if f, ok := st[k]; !ok || pos < f.Pos {
			st[k] = Fact{Pos: pos, Kind: kind}
		}
	}
	killPlain := func(st State, e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil && isRowType(obj.Type()) {
				st.KillObj(obj)
			}
		}
	}
	transfer := func(n ast.Node, st State) {
		InspectNode(n, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.SendStmt:
				rowIdents(info, y.Value, func(obj *types.Var, id *ast.Ident) {
					gen(st, obj, id.Pos(), "sent on a channel")
				})
			case *ast.CallExpr:
				if id, ok := y.Fun.(*ast.Ident); ok && id.Name == "append" && len(y.Args) > 1 {
					for _, arg := range y.Args[1:] {
						if aid, ok := arg.(*ast.Ident); ok {
							if obj := objOf(info, aid); obj != nil && isRowType(obj.Type()) {
								gen(st, obj, aid.Pos(), "appended to another slice")
							}
						}
					}
				}
			case *ast.CompositeLit:
				rowIdents(info, y, func(obj *types.Var, id *ast.Ident) {
					gen(st, obj, id.Pos(), "captured by a composite literal")
				})
			case *ast.AssignStmt:
				// Escapes: v stored into an element/field of something
				// else (X[i] = v, s.F = v, m[k] = v).
				for i, rhs := range y.Rhs {
					if i >= len(y.Lhs) {
						break
					}
					id, ok := rhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := objOf(info, id)
					if obj == nil || !isRowType(obj.Type()) {
						continue
					}
					switch lhs := y.Lhs[i].(type) {
					case *ast.IndexExpr:
						if root := rootIdent(lhs); root == nil || objOf(info, root) != obj {
							gen(st, obj, id.Pos(), "stored into another slice or map")
						}
					case *ast.SelectorExpr:
						gen(st, obj, id.Pos(), "stored into a struct field")
					}
				}
				// Kills: a plain rebinding points the name at fresh
				// storage.
				for _, lhs := range y.Lhs {
					killPlain(st, lhs)
				}
			case *ast.RangeStmt:
				// Loop-head node: Key/Value are rebound every iteration.
				if y.Key != nil {
					killPlain(st, y.Key)
				}
				if y.Value != nil {
					killPlain(st, y.Value)
				}
			}
			return true
		})
	}

	in := cfg.Solve(transfer)
	check := func(st State, target ast.Expr, pos token.Pos) {
		idx, ok := target.(*ast.IndexExpr)
		if !ok {
			return
		}
		root := rootIdent(idx)
		if root == nil {
			return
		}
		obj := objOf(info, root)
		if obj == nil || !isRowType(obj.Type()) {
			return
		}
		if ev, ok := st[FactKey{Obj: obj}]; ok {
			pass.Report(pos, "write to element of %s after it was %s at line %d; the row is aliased by the consumer — make a fresh copy instead",
				obj.Name(), ev.Kind, pass.Fset.Position(ev.Pos).Line)
		}
	}
	for _, blk := range cfg.Blocks {
		st := in[blk.Index].Clone()
		for _, n := range blk.Nodes {
			InspectNode(n, func(x ast.Node) bool {
				switch y := x.(type) {
				case *ast.AssignStmt:
					for _, lhs := range y.Lhs {
						check(st, lhs, lhs.Pos())
					}
				case *ast.IncDecStmt:
					check(st, y.X, y.X.Pos())
				}
				return true
			})
			transfer(n, st)
		}
	}
}

// checkNextBufferReuse flags a Next method that both writes elements
// of a receiver-field row slice and returns that same field: the
// previous call's emitted batch aliases the buffer, so the write
// corrupts rows the consumer already owns.
func checkNextBufferReuse(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "Next" {
		return
	}
	recv := receiverObj(pass.Info, fd)
	if recv == nil {
		return
	}
	info := pass.Info
	// recvField resolves expr as `recv.F` with F a row-typed slice and
	// returns F's name, or "".
	recvField := func(e ast.Expr) string {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || objOf(info, id) != recv {
			return ""
		}
		if t := info.Types[e].Type; t == nil || !isRowType(t) {
			return ""
		}
		if _, isSlice := info.Types[e].Type.Underlying().(*types.Slice); !isSlice {
			return ""
		}
		return sel.Sel.Name
	}

	returned := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if f := recvField(r); f != "" {
				returned[f] = true
			}
		}
		return true
	})
	if len(returned) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if f := recvField(idx.X); f != "" && returned[f] {
				pass.Report(lhs.Pos(),
					"Next reuses the receiver batch buffer %s it also returns; the previous batch is already owned by the consumer — allocate fresh batch storage per call",
					f)
			}
		}
		return true
	})
}
