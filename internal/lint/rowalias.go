package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RowAlias polices the shared-slice discipline of the parallel engine:
// a value.Row (or []Row) is aliased, not copied, when it is sent on a
// channel, appended into another slice (a partition, an output chunk,
// a hash bucket), or stored into a struct or map. After any
// of those events the row may be observed concurrently by another
// partition or retained by an output relation, so writing one of its
// elements afterwards is a data race or a silent result corruption —
// the bug class `go test -race` only catches when the schedule
// cooperates. The analyzer flags, within one function, element writes
// to a row-typed variable that occur (textually) after the variable
// escaped.
//
// A second rule, scoped to the engine package, flags in-place writes
// to rows reached through shared storage (rel.Rows[i][j] = v, or a
// doubly-indexed parameter): operators receive their inputs by
// reference and must copy-on-write.
//
// A third rule polices the streaming batch contract: a Next method
// that writes elements of a receiver-field row slice it also returns
// is reusing its output buffer across calls, mutating batches the
// previous Next already handed to the consumer. Emitted batches are
// immutable after handoff — Next must allocate fresh batch storage.
var RowAlias = &Analyzer{
	Name: "rowalias",
	Doc:  "flag writes to value.Row elements after the row escaped (channel send, append, store, return)",
	Run:  runRowAlias,
}

// escapeKind labels how a row was shared, for the diagnostic.
type escapeEvent struct {
	pos  token.Pos
	kind string
}

func runRowAlias(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runRowAliasFunc(pass, fd)
		}
	}
}

// rowIdents yields every identifier of row type in e, resolved to its
// variable object.
func rowIdents(info *types.Info, e ast.Expr, fn func(*types.Var, *ast.Ident)) {
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objOf(info, id); obj != nil && isRowType(obj.Type()) {
			fn(obj, id)
		}
		return true
	})
}

func runRowAliasFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	escaped := make(map[*types.Var]escapeEvent)
	mark := func(obj *types.Var, pos token.Pos, kind string) {
		if prev, ok := escaped[obj]; !ok || pos < prev.pos {
			escaped[obj] = escapeEvent{pos: pos, kind: kind}
		}
	}

	params := make(map[*types.Var]bool)
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				if obj, ok := info.Defs[name].(*types.Var); ok {
					params[obj] = true
				}
			}
		}
	}

	// Pass 1: collect escape events.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			rowIdents(info, x.Value, func(obj *types.Var, id *ast.Ident) {
				mark(obj, id.Pos(), "sent on a channel")
			})
		// Note: `return r` is deliberately NOT an escape for the
		// textual-order rule — a conditional early return followed by
		// a write is the write running only when the return did not,
		// which is fine. Mutation of rows handed to/from callers is
		// caught by the shared-storage rule below instead.
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 1 {
				for _, arg := range x.Args[1:] {
					if aid, ok := arg.(*ast.Ident); ok {
						if obj := objOf(info, aid); obj != nil && isRowType(obj.Type()) {
							mark(obj, aid.Pos(), "appended to another slice")
						}
					}
				}
			}
		case *ast.AssignStmt:
			// v stored into an element/field of something else:
			// X[i] = v, s.F = v, m[k] = v.
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				id, ok := rhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, id)
				if obj == nil || !isRowType(obj.Type()) {
					continue
				}
				switch lhs := x.Lhs[i].(type) {
				case *ast.IndexExpr:
					if root := rootIdent(lhs); root == nil || objOf(info, root) != obj {
						mark(obj, id.Pos(), "stored into another slice or map")
					}
				case *ast.SelectorExpr:
					_ = lhs
					mark(obj, id.Pos(), "stored into a struct field")
				}
			}
		case *ast.CompositeLit:
			rowIdents(info, x, func(obj *types.Var, id *ast.Ident) {
				mark(obj, id.Pos(), "captured by a composite literal")
			})
		}
		return true
	})

	inEngine := pkgIs(pass.Pkg, "internal/engine")

	// Pass 2: flag element writes after an escape, plus (in the engine
	// package) deep writes through shared storage.
	checkWrite := func(target ast.Expr, pos token.Pos) {
		idx, ok := target.(*ast.IndexExpr)
		if !ok {
			return
		}
		// Rule 2: rel.Rows[i][j] = v / param[i][j] = v inside engine.
		if inner, ok := idx.X.(*ast.IndexExpr); ok && inEngine {
			if t := info.Types[idx.X].Type; t != nil && namedFrom(t, "internal/value", "Row") {
				root := rootIdent(inner.X)
				viaSelector := false
				ast.Inspect(inner.X, func(n ast.Node) bool {
					if _, ok := n.(*ast.SelectorExpr); ok {
						viaSelector = true
					}
					return true
				})
				if root == nil || viaSelector || params[objOf(info, root)] {
					pass.Report(pos, "in-place write to a row reached through shared storage; operators must copy rows before mutating (copy-on-write)")
					return
				}
			}
		}
		root := rootIdent(idx)
		if root == nil {
			return
		}
		obj := objOf(info, root)
		if obj == nil || !isRowType(obj.Type()) {
			return
		}
		if ev, ok := escaped[obj]; ok && ev.pos < pos {
			pass.Report(pos, "write to element of %s after it was %s at line %d; the row is aliased by the consumer — make a fresh copy instead",
				obj.Name(), ev.kind, pass.Fset.Position(ev.pos).Line)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWrite(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(x.X, x.X.Pos())
		}
		return true
	})

	// Rule 3: Next reusing the receiver batch buffer it returns.
	if inEngine || pkgIs(pass.Pkg, "internal/plan") {
		checkNextBufferReuse(pass, fd)
	}
}

// checkNextBufferReuse flags a Next method that both writes elements
// of a receiver-field row slice and returns that same field: the
// previous call's emitted batch aliases the buffer, so the write
// corrupts rows the consumer already owns.
func checkNextBufferReuse(pass *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "Next" {
		return
	}
	recv := receiverObj(pass.Info, fd)
	if recv == nil {
		return
	}
	info := pass.Info
	// recvField resolves expr as `recv.F` with F a row-typed slice and
	// returns F's name, or "".
	recvField := func(e ast.Expr) string {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || objOf(info, id) != recv {
			return ""
		}
		if t := info.Types[e].Type; t == nil || !isRowType(t) {
			return ""
		}
		if _, isSlice := info.Types[e].Type.Underlying().(*types.Slice); !isSlice {
			return ""
		}
		return sel.Sel.Name
	}

	returned := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if f := recvField(r); f != "" {
				returned[f] = true
			}
		}
		return true
	})
	if len(returned) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if f := recvField(idx.X); f != "" && returned[f] {
				pass.Report(lhs.Pos(),
					"Next reuses the receiver batch buffer %s it also returns; the previous batch is already owned by the consumer — allocate fresh batch storage per call",
					f)
			}
		}
		return true
	})
}
