package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and typechecks one import-free source file under
// the given package path and builds its dataflow Analysis.
func typecheckSrc(t *testing.T, path, src string) *Analysis {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return NewAnalysis(fset, pkg, info, []*ast.File{f})
}

func summaryByName(t *testing.T, a *Analysis, name string) *FuncSummary {
	t.Helper()
	for fn := range a.decls {
		if fn.Name() == name {
			return a.summaries[fn]
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

const effectsSrc = `package p

type T struct{ x int }
type C struct{ n int }

func (c *C) Close() error { return nil }
func (c *C) shutdown()    { c.Close() }

func set(t *T, v int)     { t.x = v }
func keep(xs []int) []int { return xs }
func drop(xs []int)       {}
func use(v int) int       { return v + 1 }

func chainSet(t *T, v int) { set(t, v) }
func closeArg(c *C)        { closeArg2(c) }
func closeArg2(c *C)       { c.Close() }
func viaRecv(c *C)         { c.shutdown() }

func forward(v int)    { drop2(v) }
func drop2(v int)      {}
func forwardUse(v int) { _ = use(v) }

func fill(dst []int, src []int) { copy(dst, src) }
func grow(dst *[]int, v int)    { *dst = append(*dst, v) }
func collect(sink []int, v int) []int { return append(sink, v) }
`

func TestSummaryDirectEffects(t *testing.T) {
	a := typecheckSrc(t, "p", effectsSrc)

	set := summaryByName(t, a, "set")
	if !set.MutatesParam[0] {
		t.Error("set: t.x = v must mutate param 0")
	}
	if set.MutatesParam[1] {
		t.Error("set: v is read, not mutated")
	}

	keep := summaryByName(t, a, "keep")
	if !keep.RetainsParam[0] {
		t.Error("keep: returning the parameter must retain it")
	}

	drop := summaryByName(t, a, "drop")
	if drop.UsesParam[0] || drop.RetainsParam[0] || drop.MutatesParam[0] || drop.ClosesParam[0] {
		t.Errorf("drop: empty body must have a clean summary, got %+v", drop)
	}

	fill := summaryByName(t, a, "fill")
	if !fill.MutatesParam[0] {
		t.Error("fill: copy(dst, src) must mutate the destination")
	}
	if fill.MutatesParam[1] {
		t.Error("fill: copy source is not mutated")
	}

	collect := summaryByName(t, a, "collect")
	if !collect.RetainsParam[1] {
		t.Error("collect: append(sink, v) must retain v")
	}
}

func TestSummaryClosePropagation(t *testing.T) {
	a := typecheckSrc(t, "p", effectsSrc)

	if s := summaryByName(t, a, "closeArg2"); !s.ClosesParam[0] {
		t.Error("closeArg2: direct c.Close() must close param 0")
	}
	if s := summaryByName(t, a, "closeArg"); !s.ClosesParam[0] {
		t.Error("closeArg: close must propagate through the call chain")
	}
	if s := summaryByName(t, a, "shutdown"); !s.ClosesRecv {
		t.Error("shutdown: Close on the receiver must set ClosesRecv")
	}
	if s := summaryByName(t, a, "viaRecv"); !s.ClosesParam[0] {
		t.Error("viaRecv: calling a ClosesRecv method on the param must close it")
	}
}

func TestSummaryUsePropagation(t *testing.T) {
	a := typecheckSrc(t, "p", effectsSrc)

	if s := summaryByName(t, a, "forward"); s.UsesParam[0] {
		t.Error("forward: passing v only to an ignoring callee is not a use")
	}
	if s := summaryByName(t, a, "forwardUse"); !s.UsesParam[0] {
		t.Error("forwardUse: the callee reads v, so the caller uses it")
	}
}

const govSrc = `package engine

type Governor struct{ used int64 }

func (g *Governor) Charge(n int64) error { g.used += n; return nil }
func (g *Governor) Release(n int64)      { g.used -= n }

type guard struct{ gov *Governor }

func (s *guard) charge() error { return s.gov.Charge(1) }
func (s *guard) release()      { s.gov.Release(1) }

type it struct{ g guard }

func (i *it) pull() error { return i.g.charge() }
func (i *it) stop()       { i.g.release() }
func (i *it) idle() int   { return 0 }
`

func TestSummaryGovernorBits(t *testing.T) {
	// The package path suffix makes the local Governor stand-in count
	// as the engine's.
	a := typecheckSrc(t, "govtest/internal/engine", govSrc)

	if s := summaryByName(t, a, "charge"); !s.ChargesGov || s.ReleasesGov {
		t.Errorf("charge: ChargesGov=%v ReleasesGov=%v, want true/false", s.ChargesGov, s.ReleasesGov)
	}
	if s := summaryByName(t, a, "pull"); !s.ChargesGov {
		t.Error("pull: charging must propagate through guard.charge")
	}
	if s := summaryByName(t, a, "stop"); !s.ReleasesGov {
		t.Error("stop: releasing must propagate through guard.release")
	}
	if s := summaryByName(t, a, "idle"); s.ChargesGov || s.ReleasesGov {
		t.Error("idle: no governor traffic expected")
	}
}

func TestSummaryUnknownCallee(t *testing.T) {
	// println is a builtin (no summary); an unknown callee retains its
	// arguments but never closes or mutates them.
	a := typecheckSrc(t, "p", `package p
func hand(xs []int) { sink(xs) }
func sink(xs []int) {}
var f func([]int)
func dyn(xs []int) { f(xs) }
`)
	if s := summaryByName(t, a, "dyn"); !s.RetainsParam[0] {
		t.Error("dyn: a dynamic callee may retain its argument")
	}
	if s := summaryByName(t, a, "dyn"); s.ClosesParam[0] || s.MutatesParam[0] {
		t.Error("dyn: a dynamic callee must not be assumed to close or mutate")
	}
	if s := summaryByName(t, a, "hand"); s.RetainsParam[0] {
		t.Error("hand: sink provably drops xs, so hand must not retain it")
	}
}
