package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TvlBool enforces the three-valued-logic discipline around
// internal/tvl: outside the tvl package itself, code must not compare
// a tvl.Truth against the tvl.True/False/Unknown constants with == or
// !=, nor convert a Truth to a two-valued or numeric type. Both forms
// silently collapse SQL's 3VL to 2VL — the exact bug class Paulley &
// Larson's Theorem 1 (and the WHERE-clause false-interpretation ⌊P⌋)
// exists to avoid: Unknown must be handled explicitly, via
// tvl.IsTrue, tvl.IsFalse, tvl.IsUnknown, tvl.TrueInterpreted or
// tvl.FalseInterpreted.
var TvlBool = &Analyzer{
	Name: "tvlbool",
	Doc:  "flag ==/!= of tvl.Truth against tvl constants and Truth→scalar conversions outside package tvl",
	Run:  runTvlBool,
}

func isTruth(t types.Type) bool { return namedFrom(t, "internal/tvl", "Truth") }

// truthConst reports whether e denotes one of the exported Truth
// constants (tvl.True, tvl.False, tvl.Unknown).
func truthConst(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || !isTruth(c.Type()) {
		return "", false
	}
	switch c.Name() {
	case "True", "False", "Unknown":
		return c.Name(), true
	}
	return "", false
}

// helperFor names the tvl helper that replaces a comparison against
// the given constant.
func helperFor(constName string, op token.Token) string {
	h := map[string]string{"True": "tvl.IsTrue", "False": "tvl.IsFalse", "Unknown": "tvl.IsUnknown"}[constName]
	if op == token.NEQ {
		return "!" + h
	}
	return h
}

func runTvlBool(pass *Pass) {
	if pkgIs(pass.Pkg, "internal/tvl") {
		return // the implementation package defines the helpers
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				lt := pass.Info.Types[x.X].Type
				rt := pass.Info.Types[x.Y].Type
				if !isTruth(lt) && !isTruth(rt) {
					return true
				}
				name, ok := truthConst(pass.Info, x.X)
				if !ok {
					name, ok = truthConst(pass.Info, x.Y)
				}
				if !ok {
					return true
				}
				pass.Report(x.OpPos,
					"comparing tvl.Truth against tvl.%s with %s collapses 3VL to 2VL; use %s(...) so Unknown is handled explicitly",
					name, x.Op, helperFor(name, x.Op))
			case *ast.CallExpr:
				// Type conversion T(v) where v is a Truth and T is a
				// basic (bool/numeric/string) type.
				if len(x.Args) != 1 {
					return true
				}
				tv, ok := pass.Info.Types[x.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				if !isTruth(pass.Info.Types[x.Args[0]].Type) {
					return true
				}
				if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() != types.Invalid && !isTruth(tv.Type) {
					pass.Report(x.Lparen,
						"converting tvl.Truth to %s discards three-valued semantics; use the tvl interpretation helpers instead",
						tv.Type.String())
				}
			}
			return true
		})
	}
}
