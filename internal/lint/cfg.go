package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow framework: a
// lightweight intraprocedural CFG over go/ast, and a generic forward
// may-analysis solver over it. Analyzers that need flow sensitivity
// (iterstate, govpair, the rebased rowalias escape rule) build a CFG
// per function body, run Solve with an analyzer-specific transfer
// function, and then replay each block against its fixed-point
// in-state to report findings at precise positions.
//
// The CFG is statement-granular, not SSA: each basic block holds the
// AST nodes that execute in it, in order. Composite statements are
// decomposed — an IfStmt contributes its Cond to the head block and
// its branches to successor blocks — so a node never appears in more
// than one block and transfer functions see each executed expression
// exactly once. The one deliberately composite node is *ast.RangeStmt,
// placed in the loop-head block so that its per-iteration Key/Value
// definitions kill facts on every trip around the back edge; InspectNode
// confines traversal of it to X/Key/Value so the body is not visited
// twice. Function literals are never descended into: a FuncLit body is
// a separate function with its own CFG (see Analysis.CFGFor).

// Block is one basic block: straight-line AST nodes plus successor
// edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry is the
// first block executed; Exit is the virtual block every normal return
// (and the fall-off-the-end path) feeds into. Paths that terminate in
// panic or a runtime-exiting call do not reach Exit — "on all paths"
// checks therefore mean "on all non-panicking paths". Defers lists
// every defer statement registered anywhere in the body; their calls
// conceptually run between the last real block and Exit.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of one function body. It handles if/else
// chains, all for/range forms, switch (with fallthrough), type switch,
// select, labeled break/continue, goto, and treats panic and
// runtime-exiting calls (os.Exit, t.Fatal…) as terminating the path.
func BuildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c,
		labelTgt:  make(map[string]*Block),
		labelBrk:  make(map[string]*Block),
		labelCont: make(map[string]*Block),
		pending:   make(map[string][]*Block),
	}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	if body != nil {
		b.stmt(body)
	}
	b.edge(b.cur, c.Exit)
	return c
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, panic) until the next join point.
	cur *Block
	// break/continue targets, innermost last.
	brks, conts []*Block
	// labeled break/continue targets and goto label blocks.
	labelBrk, labelCont, labelTgt map[string]*Block
	// gotos seen before their label; patched when the label appears.
	pending map[string][]*Block
	// label waiting to be claimed by the next loop/switch/select.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends an executed node to the current block, opening a fresh
// (unreachable) block when control cannot arrive here.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ensure returns the current block, materializing one for unreachable
// code so structured statements always have a head to branch from.
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.brks = append(b.brks, brk)
	b.conts = append(b.conts, cont)
	if label != "" {
		b.labelBrk[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoop() {
	b.brks = b.brks[:len(b.brks)-1]
	b.conts = b.conts[:len(b.conts)-1]
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.LabeledStmt:
		name := s.Label.Name
		tgt := b.newBlock()
		b.edge(b.cur, tgt)
		b.cur = tgt
		b.labelTgt[name] = tgt
		for _, from := range b.pending[name] {
			b.edge(from, tgt)
		}
		delete(b.pending, name)
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.ensure(), head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			// `for {}` has no normal exit; only break reaches after.
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.ensure(), head)
		b.cur = head
		// The RangeStmt itself sits in the loop head: Key/Value are
		// (re)defined there on every iteration, killing stale facts
		// carried around the back edge. See InspectNode.
		b.add(s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		head := b.ensure()
		after := b.newBlock()
		b.pushLoop(label, after, nil)
		b.caseClauses(head, after, s.Body)
		b.popLoop()
		b.cur = after

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		head := b.ensure()
		after := b.newBlock()
		b.pushLoop(label, after, nil)
		b.caseClauses(head, after, s.Body)
		b.popLoop()
		b.cur = after

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		b.pushLoop(label, after, nil)
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, after)
		}
		if len(s.Body.List) == 0 || hasDefault {
			// An empty select blocks forever; a default select may skip
			// every case. Either way treat head→after as possible only
			// with a default (or no cases at all, where it is vacuous).
			b.edge(head, after)
		}
		b.popLoop()
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			tgt := b.innermost(b.brks)
			if s.Label != nil {
				tgt = b.labelBrk[s.Label.Name]
			}
			b.edge(b.cur, tgt)
			b.cur = nil
		case token.CONTINUE:
			tgt := b.innermost(b.conts)
			if s.Label != nil {
				tgt = b.labelCont[s.Label.Name]
			}
			b.edge(b.cur, tgt)
			b.cur = nil
		case token.GOTO:
			name := s.Label.Name
			if tgt, ok := b.labelTgt[name]; ok {
				b.edge(b.cur, tgt)
			} else if b.cur != nil {
				b.pending[name] = append(b.pending[name], b.cur)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by caseClauses; reaching here means a
			// malformed tree — ignore.
		}

	case *ast.DeferStmt:
		// The call's operands are evaluated here; the call itself runs
		// at function exit. Keep the node in the block (operand facts)
		// and record it for exit-time reasoning.
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			// panic/os.Exit/t.Fatal: the path dies without reaching
			// Exit, so "on all paths" obligations are excused here.
			b.cur = nil
		}

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		if s != nil {
			b.add(s)
		}
	}
}

// caseClauses wires the shared case-dispatch shape of switch and type
// switch: head fans out to one block per clause, fallthrough chains a
// clause into the next, and a missing default adds head→after.
func (b *cfgBuilder) caseClauses(head, after *Block, body *ast.BlockStmt) {
	var blocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		blk := b.newBlock()
		b.edge(head, blk)
		blocks = append(blocks, blk)
		clauses = append(clauses, cc)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fell := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fell = true
				continue
			}
			b.stmt(st)
		}
		if fell && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
		} else {
			b.edge(b.cur, after)
		}
	}
}

func (b *cfgBuilder) innermost(stack []*Block) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return nil
}

// isTerminalCall recognizes calls that never return, syntactically:
// the panic builtin and the conventional runtime-exiting names
// (os.Exit, log.Fatal*, testing's Fatal*/Skip*/FailNow, Goexit).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "FailNow",
			"Skip", "Skipf", "SkipNow", "Goexit", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}

// InspectNode traverses one CFG block node the way the builder intends:
// a RangeStmt yields only its X/Key/Value (the body lives in successor
// blocks), and FuncLit bodies are skipped everywhere (each literal is
// its own function with its own CFG). All other nodes traverse fully.
func InspectNode(n ast.Node, f func(ast.Node) bool) {
	walk := func(m ast.Node) {
		if m == nil {
			return
		}
		ast.Inspect(m, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			return f(x)
		})
	}
	if r, ok := n.(*ast.RangeStmt); ok {
		if !f(r) {
			return
		}
		walk(r.X)
		walk(r.Key)
		walk(r.Value)
		return
	}
	walk(n)
}

// --- forward may-dataflow solver ------------------------------------

// FactKey identifies what a dataflow fact is about: a variable, plus
// an optional selector path below it (e.g. obj=it path=".sg").
type FactKey struct {
	Obj  any // *types.Var in practice; any to keep cfg.go types-free
	Path string
}

// Fact is one dataflow fact: where it was generated and an
// analyzer-defined kind ("escaped", "closed", "foreign", …).
type Fact struct {
	Pos  token.Pos
	Kind string
}

// State maps fact keys to facts at one program point.
type State map[FactKey]Fact

// Clone copies the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// KillObj removes every fact rooted at obj (any path).
func (s State) KillObj(obj any) {
	for k := range s {
		if k.Obj == obj {
			delete(s, k)
		}
	}
}

// Solve runs a forward may-analysis to fixed point and returns the
// in-state of every block, indexed by Block.Index. transfer mutates
// the state in place for one executed node; it must be monotone in the
// usual gen/kill sense (gen may depend on present facts, kill must
// not resurrect them). The join is key-union; when both predecessors
// carry a fact for the same key, the earliest-position fact wins,
// keeping results deterministic.
func (c *CFG) Solve(transfer func(ast.Node, State)) []State {
	preds := make([][]int, len(c.Blocks))
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk.Index)
		}
	}
	in := make([]State, len(c.Blocks))
	out := make([]State, len(c.Blocks))
	inWork := make([]bool, len(c.Blocks))
	var work []int
	for i := range c.Blocks {
		in[i] = State{}
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		blk := c.Blocks[i]
		newIn := State{}
		for _, p := range preds[i] {
			for k, f := range out[p] {
				if g, ok := newIn[k]; !ok || f.Pos < g.Pos {
					newIn[k] = f
				}
			}
		}
		in[i] = newIn
		newOut := newIn.Clone()
		for _, n := range blk.Nodes {
			transfer(n, newOut)
		}
		if !statesEqual(newOut, out[i]) {
			out[i] = newOut
			for _, s := range blk.Succs {
				if !inWork[s.Index] {
					work = append(work, s.Index)
					inWork[s.Index] = true
				}
			}
		}
	}
	return in
}

func statesEqual(a, b State) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// ReachesWithout reports whether to is reachable from from without
// passing through a block for which barrier returns true (neither
// endpoint is tested as a barrier start: from's own barrier status is
// checked, to's is not — reaching to at all is what matters).
func (c *CFG) ReachesWithout(from, to *Block, barrier func(*Block) bool) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{from}
	seen[from.Index] = true
	if barrier(from) {
		return false
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if s == to {
				return true
			}
			if !seen[s.Index] && !barrier(s) {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
