package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture typechecks the fixture package at importPath (relative
// to testdata/src) with the fixture root shadowing the repository, and
// runs the given analyzers over it.
func loadFixture(t *testing.T, importPath string, analyzers ...*Analyzer) ([]Finding, *token.FileSet) {
	t.Helper()
	fixRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	root, mod, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	loader := NewLoader(fset, mod, root, fixRoot)
	dir := filepath.Join(fixRoot, filepath.FromSlash(importPath))
	files, _, _, err := loader.ParseDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := loader.Check(importPath, files)
	if err != nil {
		t.Fatal(err)
	}
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(f Finding) { out = append(out, f) },
		}
		a.Run(pass)
	}
	sortFindings(out)
	return out, fset
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)

// expectation is one // want "..." comment.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
	matched  []bool
}

// parseWants scans the fixture sources for // want "re" ["re"...]
// comments. Scanning raw lines (rather than the AST comment map)
// keeps line attribution trivial.
func parseWants(t *testing.T, importPath string) []*expectation {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(importPath))
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, path := range matches {
		data, err := readFileString(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(data, "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			exp := &expectation{file: filepath.Base(path), line: i + 1}
			for _, q := range splitQuoted(m[1]) {
				re, err := regexp.Compile(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, q, err)
				}
				exp.patterns = append(exp.patterns, re)
				exp.matched = append(exp.matched, false)
			}
			out = append(out, exp)
		}
	}
	return out
}

// splitQuoted splits `"a" "b"` into its quoted segments.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+1+j])
		s = s[i+j+2:]
	}
}

// checkFixture asserts that findings and want expectations agree
// one-to-one.
func checkFixture(t *testing.T, importPath string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	findings, _ := loadFixture(t, importPath, analyzers...)
	wants := parseWants(t, importPath)
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		ok := false
		for _, w := range wants {
			if w.file != base || w.line != f.Pos.Line {
				continue
			}
			for i, re := range w.patterns {
				if !w.matched[i] && re.MatchString(f.Message) {
					w.matched[i] = true
					ok = true
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		for i, re := range w.patterns {
			if !w.matched[i] {
				t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, re)
			}
		}
	}
	return findings
}

func readFileString(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
