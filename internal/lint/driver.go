package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"strings"
)

// Summary is the outcome of one driver run.
type Summary struct {
	Packages   int `json:"packages"`   // package units typechecked and analyzed
	Findings   int `json:"findings"`   // findings that remain after suppression
	Suppressed int `json:"suppressed"` // findings covered by //lint:allow directives
}

// Runner drives the analyzers over a set of package directories.
type Runner struct {
	Analyzers []*Analyzer
	// Root is the module root directory; Module its import path.
	Root   string
	Module string
	loader *Loader
}

// NewRunner builds a runner for the module containing dir, with the
// given analyzers (nil = All()).
func NewRunner(dir string, analyzers []*Analyzer) (*Runner, error) {
	root, mod, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	if analyzers == nil {
		analyzers = All()
	}
	return &Runner{
		Analyzers: analyzers,
		Root:      root,
		Module:    mod,
		loader:    NewLoader(token.NewFileSet(), mod, root, ""),
	}, nil
}

// ExpandPatterns resolves go-tool-style package patterns ("./...",
// "./internal/engine", "./internal/...") into package directories.
// Walks skip testdata, vendor, hidden and underscore directories, like
// the go tool; explicitly named directories are always honored, so
// fixtures under testdata can be linted on purpose.
func (r *Runner) ExpandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		}
		if base == "" || base == "." {
			base = r.Root
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(r.Root, base)
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// Run lints every package named by patterns and returns the findings
// (suppressed ones included, flagged) in deterministic order.
func (r *Runner) Run(patterns []string) ([]Finding, Summary, error) {
	dirs, err := r.ExpandPatterns(patterns)
	if err != nil {
		return nil, Summary{}, err
	}
	var all []Finding
	var sum Summary
	for _, dir := range dirs {
		fs, units, err := r.lintDir(dir)
		if err != nil {
			return nil, Summary{}, err
		}
		sum.Packages += units
		all = append(all, fs...)
	}
	sortFindings(all)
	for _, f := range all {
		if f.Suppressed {
			sum.Suppressed++
		} else {
			sum.Findings++
		}
	}
	return all, sum, nil
}

// importPathFor maps a package directory to its import path. Fixture
// directories under a testdata/src tree get paths relative to that
// tree, and the loader is pointed at it, so fixture stand-ins shadow
// the real repository packages.
func (r *Runner) importPathFor(dir string) (string, *Loader) {
	rel, err := filepath.Rel(r.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir), r.loader
	}
	rel = filepath.ToSlash(rel)
	if i := strings.Index(rel+"/", "testdata/src/"); i >= 0 {
		fixRoot := filepath.Join(r.Root, filepath.FromSlash(rel[:i]+"testdata/src"))
		sub, err := filepath.Rel(fixRoot, dir)
		if err == nil {
			return filepath.ToSlash(sub), NewLoader(r.loader.Fset, r.Module, r.Root, fixRoot)
		}
	}
	if rel == "." {
		return r.Module, r.loader
	}
	return r.Module + "/" + rel, r.loader
}

// lintDir typechecks and analyzes the up-to-three compilation units of
// one package directory: the package itself, the package augmented
// with in-package test files, and the external _test package.
func (r *Runner) lintDir(dir string) ([]Finding, int, error) {
	path, loader := r.importPathFor(dir)
	files, testFiles, xtestFiles, err := loader.ParseDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var out []Finding
	units := 0
	run := func(path string, unit []*ast.File, reportable []*ast.File) error {
		if len(unit) == 0 || len(reportable) == 0 {
			return nil
		}
		pkg, info, err := loader.Check(path, unit)
		if err != nil {
			return err
		}
		units++
		want := make(map[string]bool, len(reportable))
		for _, f := range reportable {
			want[loader.Fset.Position(f.Package).Filename] = true
		}
		fs := r.analyze(loader.Fset, pkg, info, unit)
		for _, f := range fs {
			if want[f.Pos.Filename] {
				out = append(out, f)
			}
		}
		return nil
	}
	if err := run(path, files, files); err != nil {
		return nil, 0, err
	}
	if len(testFiles) > 0 {
		if err := run(path, append(append([]*ast.File{}, files...), testFiles...), testFiles); err != nil {
			return nil, 0, err
		}
	}
	if err := run(path+"_test", xtestFiles, xtestFiles); err != nil {
		return nil, 0, err
	}
	allFiles := append(append(append([]*ast.File{}, files...), testFiles...), xtestFiles...)
	allows, used := applySuppressions(loader.Fset, allFiles, out)
	out = append(out, r.checkStaleAllows(allows, used)...)
	return out, units, nil
}

// checkStaleAllows implements the allowstale analyzer (see
// allowstale.go): after suppressions have been applied, a directive
// that suppressed nothing is reported — but only when every analyzer
// it names actually ran, since a subset run cannot prove a directive
// dead. Directives naming unknown analyzers are always reported: they
// never suppressed anything.
func (r *Runner) checkStaleAllows(allows []AllowDirective, used []bool) []Finding {
	enabled := false
	selected := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		selected[a.Name] = true
		if a.Name == AllowStale.Name {
			enabled = true
		}
	}
	if !enabled {
		return nil
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Finding
	report := func(d AllowDirective, format string, args ...any) {
		out = append(out, Finding{
			Pos:      token.Position{Filename: d.File, Line: d.Line},
			Analyzer: AllowStale.Name,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for i, d := range allows {
		var unknown []string
		decidable := true
		for _, name := range d.Analyzers {
			if !known[name] {
				unknown = append(unknown, name)
			} else if !selected[name] {
				decidable = false
			}
		}
		if len(unknown) > 0 {
			report(d, "//lint:allow names unknown analyzer(s) %s; the directive cannot suppress anything — fix the name or remove it",
				strings.Join(unknown, ", "))
			continue
		}
		if used[i] || !decidable {
			continue
		}
		report(d, "//lint:allow %s suppresses no findings; a stale directive silently pre-approves the next real finding on this line — remove it",
			strings.Join(d.Analyzers, ","))
	}
	return out
}

// analyze runs every analyzer over one typed unit.
func (r *Runner) analyze(fset *token.FileSet, pkg *types.Package, info *types.Info, files []*ast.File) []Finding {
	var out []Finding
	shared := &unitState{}
	for _, a := range r.Analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(f Finding) { out = append(out, f) },
			shared:   shared,
		}
		a.Run(pass)
	}
	return out
}

// AllowDirective is one parsed //lint:allow comment.
type AllowDirective struct {
	File      string
	Line      int // the directive's own line; it also covers Line+1
	Analyzers []string
	Reason    string
}

// parseAllows extracts //lint:allow directives from the files'
// comments. Syntax:
//
//	//lint:allow analyzer[,analyzer...] [-- reason]
//
// A directive covers findings on its own line (trailing-comment style)
// and on the immediately following line (preceding-comment style).
func parseAllows(fset *token.FileSet, files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				reason := ""
				if i := strings.Index(text, "--"); i >= 0 {
					reason = strings.TrimSpace(text[i+2:])
					text = strings.TrimSpace(text[:i])
				}
				names := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' })
				pos := fset.Position(c.Pos())
				out = append(out, AllowDirective{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: names,
					Reason:    reason,
				})
			}
		}
	}
	return out
}

// applySuppressions marks findings covered by an allow directive and
// reports, per directive, whether it suppressed at least one finding
// (used is indexed in parallel with the returned directives).
func applySuppressions(fset *token.FileSet, files []*ast.File, findings []Finding) (allows []AllowDirective, used []bool) {
	allows = parseAllows(fset, files)
	used = make([]bool, len(allows))
	if len(allows) == 0 {
		return allows, used
	}
	covered := make(map[string]map[int]map[string][]int) // file → line → analyzer → directive indices
	for di, d := range allows {
		lines := covered[d.File]
		if lines == nil {
			lines = make(map[int]map[string][]int)
			covered[d.File] = lines
		}
		for _, ln := range []int{d.Line, d.Line + 1} {
			set := lines[ln]
			if set == nil {
				set = make(map[string][]int)
				lines[ln] = set
			}
			for _, a := range d.Analyzers {
				set[a] = append(set[a], di)
			}
		}
	}
	for i := range findings {
		if idxs := covered[findings[i].Pos.Filename][findings[i].Pos.Line][findings[i].Analyzer]; len(idxs) > 0 {
			findings[i].Suppressed = true
			for _, di := range idxs {
				used[di] = true
			}
		}
	}
	return allows, used
}

// RelativizeTo rewrites finding filenames relative to dir when
// possible, for stable, readable output.
func RelativizeTo(dir string, findings []Finding) {
	for i := range findings {
		if rel, err := filepath.Rel(dir, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = rel
		}
	}
}

