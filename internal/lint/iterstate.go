package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IterState checks the iterator state machine flow-sensitively: once a
// consumer has called Close on an iterator, that binding is dead —
// calling Next or Rewind on it afterwards reads an operator that has
// already released its buffers and governor charges (the contract says
// such calls must not panic, but a pipeline that *relies* on them is
// wrong), and a second explicit Close on the same binding is dead code
// that usually means the author lost track of ownership.
//
// The analysis runs on the function's CFG, so early returns, loops,
// and branch joins are handled: a Close inside `if done { … }`
// followed by Next on the other branch is fine; reassigning the
// variable (including per-iteration rebinding at a range/for head)
// kills the fact; `defer it.Close()` registers teardown for function
// exit and generates no fact. Interprocedural reach comes from the
// unit summaries: passing an iterator to an in-package function whose
// summary closes that parameter marks it closed here too.
//
// Tracked references are plain variables and field chains rooted at a
// plain variable (it, j.build, side.it). The analyzer inspects
// non-test files of internal/engine and internal/plan.
var IterState = &Analyzer{
	Name: "iterstate",
	Doc:  "flag Next/Rewind after Close and double Close on the same iterator binding, flow-sensitively across branches and loops",
	Run:  runIterState,
}

const (
	iterClosed = "closed"
)

func runIterState(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") && !pkgIs(pass.Pkg, "internal/plan") {
		return
	}
	df := pass.Dataflow()
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				runIterStateFunc(pass, df, fd)
			}
		}
		// Function literals are separate functions with their own CFGs
		// (InspectNode keeps the enclosing CFG from descending into
		// them, so nothing is analyzed twice).
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				runIterStateBody(pass, df, fl.Body)
			}
			return true
		})
	}
}

func runIterStateFunc(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	runIterStateBody(pass, df, fd.Body)
}

// iterRef resolves e to a trackable reference: a plain variable or a
// field chain over plain selectors (side.it → obj=side, path=".it").
func iterRef(info *types.Info, e ast.Expr) (obj *types.Var, path string, ok bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := objOf(info, x); v != nil {
			return v, "", true
		}
	case *ast.SelectorExpr:
		o, p, k := iterRef(info, x.X)
		if k {
			return o, p + "." + x.Sel.Name, true
		}
	}
	return nil, "", false
}

// isIterCloseTarget reports whether e's static type satisfies the
// iterator contract (has Next); Close on arbitrary closers (files,
// channels wrapped in types) is out of scope.
func isIterCloseTarget(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && hasNext(t)
}

func runIterStateBody(pass *Pass, df *Analysis, body *ast.BlockStmt) {
	info := pass.Info
	cfg := df.CFGFor(body)

	// transfer: gen "closed" facts, kill on rebinding.
	transfer := func(n ast.Node, st State) {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred closes run at exit; goroutine closes run at an
			// unknown time. Neither generates a flow fact here.
			return
		}
		InspectNode(n, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range y.Lhs {
					if obj, path, ok := iterRef(info, lhs); ok {
						if path == "" {
							st.KillObj(obj)
						} else {
							for k := range st {
								if k.Obj == obj && strings.HasPrefix(k.Path, path) {
									delete(st, k)
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				// Only reached for the loop-head node: Key/Value are
				// rebound every iteration.
				for _, e := range []ast.Expr{y.Key, y.Value} {
					if e == nil {
						continue
					}
					if obj, _, ok := iterRef(info, e); ok {
						st.KillObj(obj)
					}
				}
			case *ast.UnaryExpr:
				if y.Op == token.AND {
					if obj, _, ok := iterRef(info, y.X); ok {
						st.KillObj(obj)
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(y.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
					if obj, path, ok := iterRef(info, sel.X); ok && isIterCloseTarget(info, sel.X) {
						st[FactKey{Obj: obj, Path: path}] = Fact{Pos: y.Pos(), Kind: iterClosed}
					}
				}
				// foo(it) where foo's summary closes the parameter.
				if sum := df.CallSummary(y); sum != nil {
					for j, arg := range y.Args {
						if j >= len(sum.ClosesParam) || !sum.ClosesParam[j] {
							continue
						}
						if obj, path, ok := iterRef(info, arg); ok && isIterCloseTarget(info, arg) {
							st[FactKey{Obj: obj, Path: path}] = Fact{Pos: y.Pos(), Kind: iterClosed}
						}
					}
				}
			}
			return true
		})
	}

	in := cfg.Solve(transfer)

	// Replay each block against its fixed-point in-state, reporting
	// before applying each node's transfer.
	fsetPos := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	for _, blk := range cfg.Blocks {
		st := in[blk.Index].Clone()
		for _, n := range blk.Nodes {
			switch n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				continue
			}
			InspectNode(n, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Next", "Rewind":
					if obj, path, ok := iterRef(info, sel.X); ok {
						if f, hit := st[FactKey{Obj: obj, Path: path}]; hit && f.Kind == iterClosed {
							pass.Report(call.Pos(),
								"%s called on %s after it was closed at line %d; a closed iterator has released its buffers and charges — restructure so Close is the last operation",
								sel.Sel.Name, obj.Name()+path, fsetPos(f.Pos))
						}
					}
				case "Close":
					if obj, path, ok := iterRef(info, sel.X); ok && isIterCloseTarget(info, sel.X) {
						if f, hit := st[FactKey{Obj: obj, Path: path}]; hit && f.Kind == iterClosed {
							pass.Report(call.Pos(),
								"duplicate Close on the same iterator binding (first closed at line %d); the second call is dead — remove it or re-examine ownership",
								fsetPos(f.Pos))
						}
					}
				}
				return true
			})
			transfer(n, st)
		}
	}
}
