package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IterLife polices the streaming engine's iterator lifecycle. A
// pull-based pipeline only releases its resources — governor charges,
// build tables, buffered batches — when every operator's Close runs,
// so two shapes are bugs by construction:
//
//  1. A type that declares Next(context.Context) (batch, error) but no
//     Close() error cannot participate in pipeline teardown at all;
//     whatever it holds leaks on every early exit.
//
//  2. A locally constructed iterator that is never closed, returned,
//     stored, or handed to another call has no owner: the function
//     exits (normally or via an error) with the iterator's resources
//     still charged.
//
// The analyzer inspects non-test files of internal/engine and
// internal/plan, the only packages that define or assemble pipelines.
var IterLife = &Analyzer{
	Name: "iterlife",
	Doc:  "flag iterator types without Close and locally constructed iterators that are never closed or handed off",
	Run:  runIterLife,
}

func runIterLife(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") && !pkgIs(pass.Pkg, "internal/plan") {
		return
	}
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					checkIterType(pass, ts)
				}
			case *ast.FuncDecl:
				if d.Body != nil {
					checkIterLeaks(pass, d)
				}
			}
		}
	}
}

// hasIterMethod reports whether t (or *t, for concrete types) has a
// method named name whose signature satisfies check.
func hasIterMethod(t types.Type, name string, check func(*types.Signature) bool) bool {
	cands := []types.Type{t}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			cands = append(cands, types.NewPointer(t))
		}
	}
	for _, c := range cands {
		ms := types.NewMethodSet(c)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Name() != name {
				continue
			}
			if sig, ok := f.Type().(*types.Signature); ok && check(sig) {
				return true
			}
		}
	}
	return false
}

// isNextSig matches Next(ctx context.Context) (T, error).
func isNextSig(sig *types.Signature) bool {
	if sig.Params().Len() < 1 || !isCtxType(sig.Params().At(0).Type()) {
		return false
	}
	res := sig.Results()
	return res.Len() >= 1 && isErrorType(res.At(res.Len()-1).Type())
}

// isCloseSig matches Close() error.
func isCloseSig(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// hasNext / hasClose classify a type against the iterator contract.
func hasNext(t types.Type) bool  { return hasIterMethod(t, "Next", isNextSig) }
func hasClose(t types.Type) bool { return hasIterMethod(t, "Close", isCloseSig) }

// checkIterType flags rule 1: Next without Close.
func checkIterType(pass *Pass, ts *ast.TypeSpec) {
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	t := obj.Type()
	if hasNext(t) && !hasClose(t) {
		pass.Report(ts.Name.Pos(),
			"type %s declares Next(context.Context) but no Close() error; pipelines cannot release its resources on teardown — every iterator must be closable",
			ts.Name.Name)
	}
}

// checkIterLeaks flags rule 2: a local iterator constructed by a call
// and then never closed, returned, stored, sent, or passed onward.
func checkIterLeaks(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info

	// Collect candidates: `it := NewXxx(...)` (including multi-result
	// forms like `it, err := NewXxx(...)`) where the variable's static
	// type satisfies the full iterator contract.
	type cand struct {
		id  *ast.Ident
		obj *types.Var
	}
	var cands []cand
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != ":=" || len(as.Rhs) == 0 {
			return true
		}
		if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall || len(as.Rhs) != 1 {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			if hasNext(obj.Type()) && hasClose(obj.Type()) {
				cands = append(cands, cand{id: id, obj: obj})
			}
		}
		return true
	})
	if len(cands) == 0 {
		return
	}

	closed := make(map[*types.Var]bool)
	handed := make(map[*types.Var]bool)
	markPlain := func(e ast.Expr, m map[*types.Var]bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if obj := objOf(info, id); obj != nil {
			m[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// it.Close() discharges the obligation; passing the
			// iterator as an argument transfers ownership.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				markPlain(sel.X, closed)
			}
			sum := pass.Dataflow().CallSummary(x)
			for j, arg := range x.Args {
				// Interprocedural refinement: if the callee's summary
				// proves the argument is neither closed nor retained,
				// the call is a borrow, not a handoff — the close
				// obligation stays with this function. An unknown
				// callee (or a variadic tail) keeps the old
				// conservative "handed off" reading.
				if sum != nil && j < len(sum.ClosesParam) && !sum.ClosesParam[j] && !sum.RetainsParam[j] {
					continue
				}
				markPlain(arg, handed)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markPlain(r, handed)
			}
		case *ast.SendStmt:
			markPlain(x.Value, handed)
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markPlain(kv.Value, handed)
					continue
				}
				markPlain(el, handed)
			}
		case *ast.AssignStmt:
			// Re-assigning the iterator elsewhere (a field, a slice
			// slot, another variable) hands it off.
			if x.Tok.String() == ":=" {
				return true
			}
			for _, rhs := range x.Rhs {
				markPlain(rhs, handed)
			}
		}
		return true
	})

	for _, c := range cands {
		if closed[c.obj] || handed[c.obj] {
			continue
		}
		pass.Report(c.id.Pos(),
			"iterator %s is constructed here but never closed, returned, or handed off; an early exit leaks its governor charges and buffers — defer %s.Close() or transfer ownership",
			c.id.Name, c.id.Name)
	}
}
