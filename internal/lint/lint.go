// Package lint is a stdlib-only static-analysis framework for this
// repository. It exists because the invariants the reproduction leans
// on are invisible to the Go compiler: predicates must flow through
// internal/tvl's three-valued logic instead of collapsing to bool,
// rows must not be mutated after they are shared across a partition or
// channel boundary, engine.Stats counters must cross goroutines only
// through the atomic API in stats.go, catalog mutations must bump the
// schema version that keys core.VerdictCache, and map iteration must
// not leak nondeterministic order into plans or output.
//
// The framework deliberately mirrors a slimmed-down
// golang.org/x/tools/go/analysis: an Analyzer inspects one typed
// package (a Pass) and reports Findings. The driver in driver.go walks
// ./... , typechecks every package with the source loader in
// loader.go, and applies //lint:allow suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// suppression comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects the pass and reports findings via pass.Report.
	Run func(*Pass)
}

// Pass is one typed package presented to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// report receives findings; installed by the driver or test harness.
	report func(Finding)
	// shared holds per-unit state (the dataflow Analysis) reused by
	// every analyzer over the same typed unit; installed by the driver.
	shared *unitState
}

// unitState is the lazily built state shared by all analyzers of one
// typed unit.
type unitState struct {
	df *Analysis
}

// Dataflow returns the unit's shared dataflow analysis — function
// summaries at fixed point plus cached CFGs — building it on first
// use. Every analyzer of the same unit receives the same instance, so
// the summary fixpoint runs once per unit, not once per analyzer.
func (p *Pass) Dataflow() *Analysis {
	if p.shared == nil {
		p.shared = &unitState{}
	}
	if p.shared.df == nil {
		p.shared.df = NewAnalysis(p.Fset, p.Pkg, p.Info, p.Files)
	}
	return p.shared.df
}

// Finding is one reported diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is set by the driver when a //lint:allow directive
	// covers the finding.
	Suppressed bool
}

// String renders the finding in the canonical file:line: [analyzer]
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer the suite ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{TvlBool, RowAlias, StatsAtomic, CatVer, DetOrder, CtxFlow, IterLife,
		GovPair, IterState, BatchLife, PartRoute, FileLife, AllowStale}
}

// ByName resolves a comma/space separated analyzer list; unknown names
// are returned verbatim in the second result.
func ByName(names string) (found []*Analyzer, unknown []string) {
	all := All()
	for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' }) {
		ok := false
		for _, a := range all {
			if a.Name == n {
				found = append(found, a)
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, n)
		}
	}
	return found, unknown
}

// sortFindings orders findings by file, line, then analyzer name, so
// output is deterministic across runs.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// --- shared type-matching helpers -----------------------------------

// pkgIs reports whether pkg is the repository package with the given
// import-path suffix (e.g. "internal/tvl"). Fixture packages under
// testdata mirror the real import paths, so exact-suffix matching
// works for both.
func pkgIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// namedFrom reports whether t (after pointer indirection) is the named
// type name declared in the repository package with the import-path
// suffix pkgSuffix.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && pkgIs(obj.Pkg(), pkgSuffix)
}

// isRowType reports whether t is value.Row or a slice of it ([]Row),
// the shared row representation whose aliasing the rowalias analyzer
// polices.
func isRowType(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedFrom(t, "internal/value", "Row") {
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		return namedFrom(sl.Elem(), "internal/value", "Row")
	}
	return false
}

// receiverObj resolves the receiver variable of a method declaration,
// or nil for functions and anonymous receivers.
func receiverObj(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return obj
}

// rootIdent walks selector/index/paren/star expressions down to the
// base identifier, e.g. t.Keys[i].Columns → t. Returns nil when the
// base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its variable object, following uses
// and defs.
func objOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
