package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader typechecks packages from source using only the standard
// library. Import paths inside the module resolve to directories under
// ModuleDir; when FixtureDir is set it is consulted first, so golden
// fixture packages can shadow real repository packages with small
// stand-ins that keep the same import paths. Everything else (the
// standard library) is delegated to go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string
	FixtureDir string

	std  types.Importer
	pkgs map[string]*types.Package
	busy map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleDir.
func NewLoader(fset *token.FileSet, modulePath, moduleDir, fixtureDir string) *Loader {
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		FixtureDir: fixtureDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*types.Package),
		busy:       make(map[string]bool),
	}
}

// dirFor maps an import path to a source directory, or "" when the
// path is not provided by the fixture root or the module (i.e. it is a
// standard-library path).
func (l *Loader) dirFor(path string) string {
	if l.FixtureDir != "" {
		d := filepath.Join(l.FixtureDir, filepath.FromSlash(path))
		if hasGoFiles(d) {
			return d
		}
	}
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer. Module and fixture packages are
// typechecked from source with function bodies skipped (importers only
// need the package API); standard-library paths fall through to the
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return l.std.Import(path)
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, _, _, err := l.ParseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg, _, err := l.check(path, files, true)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// ParseDir parses the directory's buildable Go files, split like the
// go tool splits them: package files, in-package test files, and
// external (_test package) test files. Build constraints are honored
// via go/build.
func (l *Loader) ParseDir(dir string) (files, testFiles, xtestFiles []*ast.File, err error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); !noGo {
			return nil, nil, nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		// Test-only directories are still lintable.
	}
	parse := func(names []string) ([]*ast.File, error) {
		sort.Strings(names)
		var out []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	if bp == nil {
		return nil, nil, nil, nil
	}
	if files, err = parse(bp.GoFiles); err != nil {
		return nil, nil, nil, err
	}
	if testFiles, err = parse(bp.TestGoFiles); err != nil {
		return nil, nil, nil, err
	}
	if xtestFiles, err = parse(bp.XTestGoFiles); err != nil {
		return nil, nil, nil, err
	}
	return files, testFiles, xtestFiles, nil
}

// Check typechecks files as the package at importPath with full type
// information, for analysis. The result is not cached: target units
// may include test files and must not shadow the API-only package
// other imports see.
func (l *Loader) Check(importPath string, files []*ast.File) (*types.Package, *types.Info, error) {
	return l.check(importPath, files, false)
}

func (l *Loader) check(importPath string, files []*ast.File, apiOnly bool) (*types.Package, *types.Info, error) {
	var errs []error
	conf := types.Config{
		Importer:         l,
		Sizes:            types.SizesFor("gc", build.Default.GOARCH),
		IgnoreFuncBodies: apiOnly,
		Error:            func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: typecheck %s: %v", importPath, errs[0])
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	return pkg, info, nil
}

// FindModuleRoot walks upward from dir to the directory containing
// go.mod and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gm := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gm); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s has no module directive", gm)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
