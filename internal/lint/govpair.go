package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GovPair polices the engine's resource-budget accounting pairing.
// The Governor (internal/engine/lifecycle.go) bounds a query's live
// footprint only if every charge is eventually matched by a release:
// streaming operators charge emitted batches and held state through
// their guards, and release everything at Close. Four shapes break
// the pairing:
//
//  1. An iterator whose Next (transitively) charges the governor but
//     whose Close never (transitively) releases it leaks its charges
//     into every later query under the same budget.
//  2. A Close method that releases on some paths but can reach return
//     without releasing (an early return that is not the idempotence
//     guard) leaks on exactly the path that taking branch covers.
//  3. A discarded Governor.Charge error defeats the budget: the first
//     over-limit charge is the only signal the query gets.
//  4. Ad-hoc Charge/Release calls outside the guard types (types that
//     own a *Governor field) bypass the batched accounting and the
//     charge/release bookkeeping those guards centralize.
//
// The analyzer is interprocedural through the unit's function
// summaries: `it.sg.emit(b)` charges because streamGuard.emit's
// summary (transitively) charges. It inspects non-test files of
// internal/engine and internal/plan.
var GovPair = &Analyzer{
	Name: "govpair",
	Doc:  "flag governor charge/release pairing violations: charging Next without releasing Close, non-releasing paths through Close, discarded Charge errors, ad-hoc governor calls",
	Run:  runGovPair,
}

func runGovPair(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") && !pkgIs(pass.Pkg, "internal/plan") {
		return
	}
	df := pass.Dataflow()
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						checkChargingType(pass, df, ts)
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				checkChargeErrDiscard(pass, df, d)
				checkAdHocGovernor(pass, df, d)
				if d.Name.Name == "Close" && d.Recv != nil {
					checkCloseReleasesAllPaths(pass, df, d)
				}
			}
		}
	}
}

// methodSummary finds the summary of t's (or *t's) method named name.
func methodSummary(df *Analysis, t types.Type, name string) *FuncSummary {
	cands := []types.Type{t}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			cands = append(cands, types.NewPointer(t))
		}
	}
	for _, c := range cands {
		ms := types.NewMethodSet(c)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Name() != name {
				continue
			}
			if sum := df.SummaryOf(f); sum != nil {
				return sum
			}
		}
	}
	return nil
}

// checkChargingType flags rule 1: Next charges, Close does not release
// (or does not exist — that case is iterlife's, so only flag when a
// Close is present but inert).
func checkChargingType(pass *Pass, df *Analysis, ts *ast.TypeSpec) {
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	t := obj.Type()
	if !hasNext(t) || !hasClose(t) {
		return
	}
	next := methodSummary(df, t, "Next")
	if next == nil || !next.ChargesGov {
		return
	}
	cl := methodSummary(df, t, "Close")
	if cl != nil && cl.ReleasesGov {
		return
	}
	pass.Report(ts.Name.Pos(),
		"type %s charges the governor in Next but its Close never releases; the charges outlive the query — route accounting through a guard and release it in Close",
		ts.Name.Name)
}

// checkCloseReleasesAllPaths flags rule 2: a releasing Close with a
// non-releasing path to return. The idempotence guard
// (`if recv.flag { return … }` as a guard whose body is a lone return)
// is exempt: re-closing has nothing left to release by design.
func checkCloseReleasesAllPaths(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	recv := receiverObj(pass.Info, fd)
	sum := methodSummaryOfDecl(pass, df, fd)
	if sum == nil || !sum.ReleasesGov {
		return
	}
	// A deferred releasing call covers every exit.
	cfg := df.CFGFor(fd.Body)
	for _, d := range cfg.Defers {
		if df.ReleasesGovernor(d.Call) {
			return
		}
	}
	// Idempotence-guard returns: `if <recv-derived bool> { return … }`
	// with the return as the guard body's only statement.
	exempt := make(map[*ast.ReturnStmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) != 1 {
			return true
		}
		ret, ok := ifs.Body.List[0].(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if recv != nil && usesObj(pass.Info, ifs.Cond, recv) {
			exempt[ret] = true
		}
		return true
	})
	barrier := func(b *Block) bool {
		for _, n := range b.Nodes {
			found := false
			InspectNode(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && df.ReleasesGovernor(call) {
					found = true
				}
				if ret, ok := x.(*ast.ReturnStmt); ok && exempt[ret] {
					found = true
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	if cfg.ReachesWithout(cfg.Entry, cfg.Exit, barrier) {
		pass.Report(fd.Name.Pos(),
			"Close releases governor charges on some paths but can return without releasing; every non-panicking path must release (or defer the release)")
	}
}

// methodSummaryOfDecl resolves fd's own summary.
func methodSummaryOfDecl(pass *Pass, df *Analysis, fd *ast.FuncDecl) *FuncSummary {
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return df.SummaryOf(fn)
}

// checkChargeErrDiscard flags rule 3: Governor.Charge with its error
// discarded (expression statement, or assigned to blank).
func checkChargeErrDiscard(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && df.isGovernorMethod(call, "Charge") {
				pass.Report(call.Pos(),
					"Governor.Charge error discarded; the budget only works if the first over-limit charge aborts the operator — check the error")
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !df.isGovernorMethod(call, "Charge") {
					continue
				}
				if i < len(x.Lhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Report(call.Pos(),
							"Governor.Charge error discarded; the budget only works if the first over-limit charge aborts the operator — check the error")
					}
				}
			}
		}
		return true
	})
}

// checkAdHocGovernor flags rule 4: direct Charge/Release outside
// methods of a type that owns a Governor field (the guard types that
// centralize batched accounting). Methods of Governor itself are
// exempt, as is any function whose receiver type embeds a Governor
// reference at its top level.
func checkAdHocGovernor(pass *Pass, df *Analysis, fd *ast.FuncDecl) {
	if ownsGovernorField(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, m := range []string{"Charge", "Release"} {
			if df.isGovernorMethod(call, m) {
				pass.Report(call.Pos(),
					"direct Governor.%s outside a guard type; governor accounting must flow through guard/streamGuard (types owning a *Governor field) so charges and releases stay paired",
					m)
			}
		}
		return true
	})
}

// ownsGovernorField reports whether fd is a method whose receiver type
// is Governor itself or a struct with a Governor-referencing field.
func ownsGovernorField(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if namedFrom(t, "internal/engine", "Governor") {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if namedFrom(st.Field(i).Type(), "internal/engine", "Governor") {
			return true
		}
	}
	return false
}
