package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file renders findings for machine consumers: a stable JSON
// schema for tooling, and GitHub Actions workflow commands so CI
// failures annotate the offending lines in pull-request diffs.

// jsonFinding is the stable wire form of one finding. Field names are
// part of the CLI contract; add, don't rename.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column,omitempty"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Summary  Summary       `json:"summary"`
}

// WriteJSON renders all findings (suppressed ones included, marked) and
// the run summary as one indented JSON document.
func WriteJSON(w io.Writer, findings []Finding, sum Summary) error {
	rep := jsonReport{Findings: []jsonFinding{}, Summary: sum}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ghaEscape escapes a workflow-command property or message per the
// GitHub Actions runner rules: % first, then CR and LF.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghaEscapeProp additionally escapes the property delimiters.
func ghaEscapeProp(s string) string {
	s = ghaEscape(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// WriteGHA renders unsuppressed findings as GitHub Actions ::error
// workflow commands, one per line, so a CI lint step annotates the
// exact source lines in the pull-request view. Suppressed findings are
// omitted: they are accepted exceptions, not failures.
func WriteGHA(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,title=%s::%s\n",
			ghaEscapeProp(f.Pos.Filename), f.Pos.Line,
			ghaEscapeProp("uniqlint/"+f.Analyzer), ghaEscape(f.Message))
		if err != nil {
			return err
		}
	}
	return nil
}
