package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PartRoute enforces single-sourced hash-partition routing in the
// engine. Parallel operators split hash state into hash-disjoint
// partitions; serial code paths that share that state (streaming
// distinct's dedupSerial, mixed serial/parallel execution) must agree
// with the workers on exactly which partition owns a hash. The
// duplicate-row bug fixed in commit 3784fba was precisely this class:
// the serial path probed partition 0 while workers inserted into
// h % w. The fix centralizes the mapping in partitionOf
// (internal/engine/partition.go); this analyzer keeps it centralized:
//
//  1. No uint64 modulo outside partitionOf. Hashes are uint64, so a
//     uint64 % is partition arithmetic; int modulo (round-robin worker
//     selection, poll intervals) is untouched.
//  2. No constant index into a partition-table slice (a slice of
//     hash-keyed maps or of rowTables): `tables[0]` is the pre-fix
//     bug shape — the partition must be computed from the hash.
//
// The analyzer inspects non-test files of the engine package only.
var PartRoute = &Analyzer{
	Name: "partroute",
	Doc:  "flag hash-partition arithmetic outside partitionOf: uint64 modulo, or constant indexes into partition-table slices",
	Run:  runPartRoute,
}

func runPartRoute(pass *Pass) {
	if !pkgIs(pass.Pkg, "internal/engine") {
		return
	}
	for _, file := range pass.Files {
		base := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "partitionOf" && fd.Recv == nil {
				continue // the one blessed home of partition arithmetic
			}
			checkPartRoute(pass, fd)
		}
	}
}

// isUint64 reports whether t is (an alias or named form of) uint64.
func isUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// isPartitionTableSlice reports whether t is a slice whose elements
// are hash-partition state: a map keyed by uint64 (hash buckets) or a
// rowTable reference.
func isPartitionTableSlice(info *types.Info, t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem := sl.Elem()
	if namedFrom(elem, "internal/engine", "rowTable") {
		return true
	}
	if m, ok := elem.Underlying().(*types.Map); ok {
		return isUint64(m.Key())
	}
	return false
}

func checkPartRoute(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.REM {
				return true
			}
			lt := info.TypeOf(x.X)
			rt := info.TypeOf(x.Y)
			if isUint64(lt) || isUint64(rt) {
				pass.Report(x.OpPos,
					"uint64 modulo outside partitionOf; hash-partition routing must flow through partitionOf so every serial and parallel path agrees on the hash→partition mapping")
			}
		case *ast.IndexExpr:
			if !isPartitionTableSlice(info, info.TypeOf(x.X)) {
				return true
			}
			if tv, ok := info.Types[x.Index]; ok && tv.Value != nil {
				pass.Report(x.Index.Pos(),
					"constant index into a partition-table slice; the owning partition must be computed with partitionOf from the row hash, never hard-coded")
			}
		}
		return true
	})
}
