// Package catalog holds database schema metadata: tables, columns,
// primary and candidate keys, and CHECK table constraints. It is the
// source of the semantic information Paulley & Larson's analysis
// exploits — "column constraint definitions and table constraint
// definitions in the SQL2 standard" (Section 2.1).
//
// SQL2 key semantics are preserved precisely, because the paper's
// theorems depend on them:
//
//   - PRIMARY KEY columns are implicitly NOT NULL.
//   - UNIQUE candidate keys admit NULLs, but NULLs are treated as a
//     single "special" value: at most one row may carry any particular
//     combination of key values under the ≐ (null-equivalent)
//     comparison. (This is the paper's reading of the ISO draft; it is
//     stricter than modern SQL's "NULLs are all distinct" rule, and
//     Theorem 1's necessity direction relies on it.)
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    value.Kind
	NotNull bool
}

// Key is a candidate key: an ordered set of column ordinals. Primary
// marks the primary key (at most one per table).
type Key struct {
	Columns []int
	Primary bool
}

// ForeignKey is an inclusion dependency from this table's Columns into
// candidate key RefKey of table RefTable: every non-NULL combination
// of Columns values must appear as a key value of the referenced
// table. The paper's Section 8 names inclusion dependencies as the
// vehicle for King's join elimination.
type ForeignKey struct {
	Columns  []int // ordinals in the owning table
	RefTable string
	RefKey   int // index into the referenced table's Keys
}

// Table is the schema of one base table.
type Table struct {
	Name        string
	Columns     []Column
	Keys        []Key        // Keys[i] is the paper's U_i(R)
	ForeignKeys []ForeignKey // inclusion dependencies into other tables
	Checks      []ast.Expr   // T_R: CHECK constraints, columns unqualified or self-qualified
	byName      map[string]int
	// cat points back to the catalog the table was Defined in, so that
	// post-Define mutations (AddKey, AddCheck) invalidate version-keyed
	// analysis caches automatically.
	cat *Catalog
}

// NewTable builds a table schema and validates it: non-empty unique
// column names, keys over existing columns, primary-key columns forced
// NOT NULL.
func NewTable(name string, cols []Column) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: table name must not be empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s has no columns", name)
	}
	t := &Table{Name: strings.ToUpper(name), byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		cn := strings.ToUpper(c.Name)
		if cn == "" {
			return nil, fmt.Errorf("catalog: table %s: empty column name", name)
		}
		if _, dup := t.byName[cn]; dup {
			return nil, fmt.Errorf("catalog: table %s: duplicate column %s", name, cn)
		}
		t.byName[cn] = len(t.Columns)
		t.Columns = append(t.Columns, Column{Name: cn, Type: c.Type, NotNull: c.NotNull})
	}
	return t, nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// AddKey registers a candidate key by column names. Primary-key
// columns become NOT NULL, per SQL2.
func (t *Table) AddKey(primary bool, colNames ...string) error {
	if len(colNames) == 0 {
		return fmt.Errorf("catalog: table %s: key must have at least one column", t.Name)
	}
	if primary {
		for _, k := range t.Keys {
			if k.Primary {
				return fmt.Errorf("catalog: table %s: multiple primary keys", t.Name)
			}
		}
	}
	k := Key{Primary: primary}
	seen := make(map[int]bool)
	for _, cn := range colNames {
		i := t.ColumnIndex(cn)
		if i < 0 {
			return fmt.Errorf("catalog: table %s: key column %s does not exist", t.Name, cn)
		}
		if seen[i] {
			return fmt.Errorf("catalog: table %s: duplicate key column %s", t.Name, cn)
		}
		seen[i] = true
		k.Columns = append(k.Columns, i)
		if primary {
			t.Columns[i].NotNull = true
		}
	}
	t.Keys = append(t.Keys, k)
	t.bump()
	return nil
}

// AddCheck registers a CHECK constraint. Every column reference must
// resolve to a column of this table (unqualified, or qualified by the
// table's own name), and the expression must not contain host
// variables or subqueries — SQL2 CHECK constraints are closed formulas
// over one row.
func (t *Table) AddCheck(e ast.Expr) error {
	if e == nil {
		return fmt.Errorf("catalog: table %s: nil CHECK expression", t.Name)
	}
	var bad error
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch r := x.(type) {
		case *ast.ColumnRef:
			if r.Qualifier != "" && !strings.EqualFold(r.Qualifier, t.Name) {
				bad = fmt.Errorf("catalog: table %s: CHECK references foreign qualifier %s", t.Name, r.Qualifier)
				return false
			}
			if t.ColumnIndex(r.Column) < 0 {
				bad = fmt.Errorf("catalog: table %s: CHECK references unknown column %s", t.Name, r.Column)
				return false
			}
		case *ast.HostVar:
			bad = fmt.Errorf("catalog: table %s: CHECK must not contain host variable :%s", t.Name, r.Name)
			return false
		case *ast.Exists:
			bad = fmt.Errorf("catalog: table %s: CHECK must not contain a subquery", t.Name)
			return false
		}
		return true
	})
	if bad != nil {
		return bad
	}
	t.Checks = append(t.Checks, e)
	t.bump()
	return nil
}

// DropKey removes candidate key i (an index into Keys), modelling
// ALTER TABLE … DROP CONSTRAINT. A key referenced by a FOREIGN KEY of
// any table in the owning catalog cannot be dropped; RefKey indices
// pointing past the removed key shift down by one. Columns a dropped
// PRIMARY KEY forced NOT NULL stay NOT NULL, as in SQL. The schema
// version is bumped so every cached uniqueness verdict derived from
// the key is invalidated.
func (t *Table) DropKey(i int) error {
	if i < 0 || i >= len(t.Keys) {
		return fmt.Errorf("catalog: table %s: no key %d to drop", t.Name, i)
	}
	if t.cat != nil {
		for _, name := range t.cat.TableNames() {
			other, _ := t.cat.Table(name)
			for _, fk := range other.ForeignKeys {
				if fk.RefTable == t.Name && fk.RefKey == i {
					return fmt.Errorf("catalog: table %s: key %d is referenced by a FOREIGN KEY of %s",
						t.Name, i, other.Name)
				}
			}
		}
		for _, name := range t.cat.TableNames() {
			other, _ := t.cat.Table(name)
			for fi := range other.ForeignKeys {
				if other.ForeignKeys[fi].RefTable == t.Name && other.ForeignKeys[fi].RefKey > i {
					other.ForeignKeys[fi].RefKey--
				}
			}
		}
	}
	t.Keys = append(t.Keys[:i], t.Keys[i+1:]...)
	t.bump()
	return nil
}

// bump invalidates version-keyed caches of the owning catalog. Tables
// not yet Defined have no observers, so mutating them needs no bump.
func (t *Table) bump() {
	if t.cat != nil {
		t.cat.Bump()
	}
}

// PrimaryKey returns the primary key, if any.
func (t *Table) PrimaryKey() (Key, bool) {
	for _, k := range t.Keys {
		if k.Primary {
			return k, true
		}
	}
	return Key{}, false
}

// KeyColumnNames returns the column names of key k.
func (t *Table) KeyColumnNames(k Key) []string {
	out := make([]string, len(k.Columns))
	for i, c := range k.Columns {
		out[i] = t.Columns[c].Name
	}
	return out
}

// ColumnNames returns all column names in ordinal order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// Catalog is a set of table schemas plus host-variable domain
// declarations.
type Catalog struct {
	tables map[string]*Table
	// order remembers definition order. Foreign keys may only
	// reference tables that are already defined (AddForeignKey), so
	// replaying DDL in this order is always FK-safe — the property
	// snapshot encoding and WAL recovery depend on.
	order []string
	// hostDomains optionally declares the domain of a host variable as
	// "TABLE.COLUMN" — the paper defines a host variable's domain as
	// the intersection of the column domains it is compared with; an
	// explicit declaration lets applications pin it.
	hostDomains map[string]string
	// version counts schema mutations. Analysis caches key on it, so
	// any DDL change invalidates every memoized verdict.
	version atomic.Uint64
}

// Version reports the schema version: it increases on every mutation
// (table definition, foreign key, host-domain declaration). Cached
// analysis results keyed on the version are invalidated by any change.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// Bump invalidates version-keyed caches explicitly. Schema mutations
// through the catalog or through a Defined table (AddKey, AddCheck)
// bump automatically; Bump remains for callers that mutate exported
// Table fields in place.
func (c *Catalog) Bump() { c.version.Add(1) }

// RestoreVersion raises the schema version to at least v. Recovery
// uses it to restore version continuity across restarts: replaying a
// snapshot's DDL from scratch produces fewer bumps than the original
// history (dropped keys, host domains), so without restoration a
// recovered catalog could report a version an old cached verdict was
// keyed under while describing a different schema. The version only
// moves forward — a stale v is ignored, never a rollback.
func (c *Catalog) RestoreVersion(v uint64) {
	for {
		cur := c.version.Load()
		if cur >= v || c.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:      make(map[string]*Table),
		hostDomains: make(map[string]string),
	}
}

// Define adds a table to the catalog.
func (c *Catalog) Define(t *Table) error {
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("catalog: table %s already defined", t.Name)
	}
	c.tables[t.Name] = t
	c.order = append(c.order, t.Name)
	t.cat = c
	c.Bump()
	return nil
}

// AddForeignKey registers an inclusion dependency from the named
// columns of t into the referenced table, whose referenced columns
// must form one of its declared candidate keys (matching order and
// arity). The referenced table must already be defined.
func (c *Catalog) AddForeignKey(t *Table, cols []string, refTable string, refCols []string) error {
	if len(cols) == 0 || len(cols) != len(refCols) {
		return fmt.Errorf("catalog: table %s: FOREIGN KEY arity mismatch", t.Name)
	}
	ref, ok := c.Table(refTable)
	if !ok {
		return fmt.Errorf("catalog: table %s: FOREIGN KEY references unknown table %s", t.Name, refTable)
	}
	fk := ForeignKey{RefTable: ref.Name, RefKey: -1}
	for _, cn := range cols {
		i := t.ColumnIndex(cn)
		if i < 0 {
			return fmt.Errorf("catalog: table %s: FOREIGN KEY column %s does not exist", t.Name, cn)
		}
		fk.Columns = append(fk.Columns, i)
	}
	for ki, k := range ref.Keys {
		if len(k.Columns) != len(refCols) {
			continue
		}
		match := true
		for i, rc := range refCols {
			if ref.ColumnIndex(rc) != k.Columns[i] {
				match = false
				break
			}
		}
		if match {
			fk.RefKey = ki
			break
		}
	}
	if fk.RefKey < 0 {
		return fmt.Errorf("catalog: table %s: FOREIGN KEY references (%s) of %s, which is not a declared candidate key",
			t.Name, strings.Join(refCols, ", "), ref.Name)
	}
	for i, ci := range fk.Columns {
		rc := ref.Columns[ref.Keys[fk.RefKey].Columns[i]]
		if t.Columns[ci].Type != rc.Type {
			return fmt.Errorf("catalog: table %s: FOREIGN KEY column %s has type %s, referenced %s.%s has %s",
				t.Name, t.Columns[ci].Name, t.Columns[ci].Type, ref.Name, rc.Name, rc.Type)
		}
	}
	t.ForeignKeys = append(t.ForeignKeys, fk)
	c.Bump()
	return nil
}

// DefineFromAST adds a table from a parsed CREATE TABLE statement.
func (c *Catalog) DefineFromAST(ct *ast.CreateTable) (*Table, error) {
	cols := make([]Column, len(ct.Columns))
	for i, cd := range ct.Columns {
		var k value.Kind
		switch cd.Type {
		case ast.TypeInteger:
			k = value.KindInt
		case ast.TypeVarchar:
			k = value.KindString
		case ast.TypeBoolean:
			k = value.KindBool
		default:
			return nil, fmt.Errorf("catalog: table %s: unsupported type %v", ct.Name, cd.Type)
		}
		cols[i] = Column{Name: cd.Name, Type: k, NotNull: cd.NotNull}
	}
	t, err := NewTable(ct.Name, cols)
	if err != nil {
		return nil, err
	}
	for _, kd := range ct.Keys {
		if err := t.AddKey(kd.Primary, kd.Columns...); err != nil {
			return nil, err
		}
	}
	for _, chk := range ct.Checks {
		if err := t.AddCheck(chk); err != nil {
			return nil, err
		}
	}
	if err := c.Define(t); err != nil {
		return nil, err
	}
	for _, fk := range ct.ForeignKeys {
		if err := c.AddForeignKey(t, fk.Columns, fk.RefTable, fk.RefColumns); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToUpper(name)]
	return t, ok
}

// TableNames returns all defined table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefinedTables returns the tables in definition order. Because a
// FOREIGN KEY may only reference an already-defined table, replaying
// each table's DDL in this order re-creates the schema without
// forward references.
func (c *Catalog) DefinedTables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		if t, ok := c.tables[n]; ok {
			out = append(out, t)
		}
	}
	return out
}

// DeclareHostDomain pins the domain of host variable name to the
// domain of table.column.
func (c *Catalog) DeclareHostDomain(hostVar, table, column string) error {
	t, ok := c.Table(table)
	if !ok {
		return fmt.Errorf("catalog: host domain: unknown table %s", table)
	}
	if t.ColumnIndex(column) < 0 {
		return fmt.Errorf("catalog: host domain: unknown column %s.%s", table, column)
	}
	c.hostDomains[strings.ToUpper(hostVar)] = t.Name + "." + strings.ToUpper(column)
	c.Bump()
	return nil
}

// HostDomain reports the declared domain of a host variable, if any.
func (c *Catalog) HostDomain(hostVar string) (string, bool) {
	d, ok := c.hostDomains[strings.ToUpper(hostVar)]
	return d, ok
}
