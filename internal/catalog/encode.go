package catalog

import (
	"fmt"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// CreateAST reconstructs the canonical CREATE TABLE statement that
// defines this table: columns in ordinal order, then keys, foreign
// keys, and CHECK constraints in declaration order. Rendering the
// result with its SQL() method and parsing it back through
// DefineFromAST yields an equivalent schema, which is how snapshots
// and the WAL persist the catalog — as replayable DDL text rather
// than a parallel binary schema format.
//
// Foreign keys need the referenced table's key columns by name, so a
// table with foreign keys must belong to a catalog (be Defined).
func (t *Table) CreateAST() (*ast.CreateTable, error) {
	ct := &ast.CreateTable{Name: t.Name}
	for _, c := range t.Columns {
		var tn ast.TypeName
		switch c.Type {
		case value.KindInt:
			tn = ast.TypeInteger
		case value.KindString:
			tn = ast.TypeVarchar
		case value.KindBool:
			tn = ast.TypeBoolean
		default:
			return nil, fmt.Errorf("catalog: table %s: column %s has unencodable type %v", t.Name, c.Name, c.Type)
		}
		ct.Columns = append(ct.Columns, ast.ColumnDef{Name: c.Name, Type: tn, NotNull: c.NotNull})
	}
	for _, k := range t.Keys {
		ct.Keys = append(ct.Keys, ast.KeyDef{Columns: t.KeyColumnNames(k), Primary: k.Primary})
	}
	for _, fk := range t.ForeignKeys {
		if t.cat == nil {
			return nil, fmt.Errorf("catalog: table %s: cannot encode FOREIGN KEY outside a catalog", t.Name)
		}
		ref, ok := t.cat.Table(fk.RefTable)
		if !ok {
			return nil, fmt.Errorf("catalog: table %s: FOREIGN KEY references missing table %s", t.Name, fk.RefTable)
		}
		if fk.RefKey < 0 || fk.RefKey >= len(ref.Keys) {
			return nil, fmt.Errorf("catalog: table %s: FOREIGN KEY references missing key %d of %s", t.Name, fk.RefKey, fk.RefTable)
		}
		def := ast.ForeignKeyDef{RefTable: ref.Name, RefColumns: ref.KeyColumnNames(ref.Keys[fk.RefKey])}
		for _, ci := range fk.Columns {
			def.Columns = append(def.Columns, t.Columns[ci].Name)
		}
		ct.ForeignKeys = append(ct.ForeignKeys, def)
	}
	ct.Checks = append(ct.Checks, t.Checks...)
	return ct, nil
}

// DDL renders the table's canonical CREATE TABLE text (CreateAST
// printed back to SQL).
func (t *Table) DDL() (string, error) {
	ct, err := t.CreateAST()
	if err != nil {
		return "", err
	}
	return ct.SQL(), nil
}
