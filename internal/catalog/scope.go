package catalog

import (
	"fmt"
	"strings"

	"uniqopt/internal/sql/ast"
)

// ScopeTable is one FROM-clause entry bound to its schema.
type ScopeTable struct {
	Ref    ast.TableRef
	Schema *Table
}

// Scope resolves column references for a query block. A correlated
// subquery's scope links to the outer block's scope, so references
// like S.SNO inside EXISTS(... WHERE S.SNO = P.SNO ...) resolve to the
// outer SUPPLIER table.
type Scope struct {
	Tables []ScopeTable
	Outer  *Scope
}

// NewScope binds the FROM clause of a query block against the catalog.
// Correlation names must be unique within the block.
func NewScope(c *Catalog, from []ast.TableRef, outer *Scope) (*Scope, error) {
	if len(from) == 0 {
		return nil, fmt.Errorf("catalog: empty FROM clause")
	}
	s := &Scope{Outer: outer}
	seen := make(map[string]bool)
	for _, tr := range from {
		schema, ok := c.Table(tr.Table)
		if !ok {
			return nil, fmt.Errorf("catalog: unknown table %s", tr.Table)
		}
		name := strings.ToUpper(tr.Name())
		if seen[name] {
			return nil, fmt.Errorf("catalog: duplicate correlation name %s", name)
		}
		seen[name] = true
		s.Tables = append(s.Tables, ScopeTable{Ref: tr, Schema: schema})
	}
	return s, nil
}

// Resolved identifies a column: which scope depth (0 = innermost),
// which FROM entry, and which column ordinal.
type Resolved struct {
	Depth    int // 0 for the local block, 1 for the immediately enclosing block, ...
	TableIdx int // index into the owning scope's Tables
	ColIdx   int
	Table    *Table // schema of the owning table
}

// Qualified returns the canonical "NAME.COLUMN" form using the
// correlation name at the owning scope.
func (r Resolved) Qualified(s *Scope) string {
	owner := s
	for i := 0; i < r.Depth; i++ {
		owner = owner.Outer
	}
	return strings.ToUpper(owner.Tables[r.TableIdx].Ref.Name()) + "." + r.Table.Columns[r.ColIdx].Name
}

// Resolve resolves a column reference, searching the local block first
// and then enclosing blocks. Unqualified names must be unambiguous
// within the block that defines them.
func (s *Scope) Resolve(ref *ast.ColumnRef) (Resolved, error) {
	depth := 0
	for sc := s; sc != nil; sc, depth = sc.Outer, depth+1 {
		r, found, err := sc.resolveLocal(ref)
		if err != nil {
			return Resolved{}, err
		}
		if found {
			r.Depth = depth
			return r, nil
		}
	}
	if ref.Qualifier != "" {
		return Resolved{}, fmt.Errorf("catalog: unknown column %s.%s", ref.Qualifier, ref.Column)
	}
	return Resolved{}, fmt.Errorf("catalog: unknown column %s", ref.Column)
}

func (s *Scope) resolveLocal(ref *ast.ColumnRef) (Resolved, bool, error) {
	if q := strings.ToUpper(ref.Qualifier); q != "" {
		for i, st := range s.Tables {
			if strings.ToUpper(st.Ref.Name()) != q {
				continue
			}
			ci := st.Schema.ColumnIndex(ref.Column)
			if ci < 0 {
				return Resolved{}, false, fmt.Errorf("catalog: table %s has no column %s", q, ref.Column)
			}
			return Resolved{TableIdx: i, ColIdx: ci, Table: st.Schema}, true, nil
		}
		return Resolved{}, false, nil // qualifier may refer to an outer block
	}
	found := Resolved{TableIdx: -1}
	for i, st := range s.Tables {
		ci := st.Schema.ColumnIndex(ref.Column)
		if ci < 0 {
			continue
		}
		if found.TableIdx >= 0 {
			return Resolved{}, false, fmt.Errorf("catalog: ambiguous column %s (matches %s and %s)",
				ref.Column, s.Tables[found.TableIdx].Ref.Name(), st.Ref.Name())
		}
		found = Resolved{TableIdx: i, ColIdx: ci, Table: st.Schema}
	}
	if found.TableIdx < 0 {
		return Resolved{}, false, nil
	}
	return found, true, nil
}

// ExpandItems expands the projection list of a query block into
// concrete column references: * becomes every column of every FROM
// table, T.* every column of T, and explicit items are resolved. The
// returned references are fully qualified with correlation names.
func (s *Scope) ExpandItems(items []ast.SelectItem) ([]*ast.ColumnRef, error) {
	var out []*ast.ColumnRef
	for _, it := range items {
		switch {
		case it.Star && it.StarQualifier == "":
			for _, st := range s.Tables {
				for _, col := range st.Schema.Columns {
					out = append(out, &ast.ColumnRef{
						Qualifier: strings.ToUpper(st.Ref.Name()), Column: col.Name})
				}
			}
		case it.Star:
			q := strings.ToUpper(it.StarQualifier)
			var match *ScopeTable
			for i := range s.Tables {
				if strings.ToUpper(s.Tables[i].Ref.Name()) == q {
					match = &s.Tables[i]
					break
				}
			}
			if match == nil {
				return nil, fmt.Errorf("catalog: %s.* references unknown table", q)
			}
			for _, col := range match.Schema.Columns {
				out = append(out, &ast.ColumnRef{Qualifier: q, Column: col.Name})
			}
		default:
			ref, ok := it.Expr.(*ast.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("catalog: projection item %s is not a column reference", it.Expr.SQL())
			}
			r, err := s.Resolve(ref)
			if err != nil {
				return nil, err
			}
			if r.Depth != 0 {
				return nil, fmt.Errorf("catalog: projection item %s references an enclosing block", ref.SQL())
			}
			out = append(out, &ast.ColumnRef{
				Qualifier: strings.ToUpper(s.Tables[r.TableIdx].Ref.Name()),
				Column:    r.Table.Columns[r.ColIdx].Name})
		}
	}
	return out, nil
}
