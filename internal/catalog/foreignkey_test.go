package catalog

import (
	"testing"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
)

func defineFK(t *testing.T, c *Catalog, ddl string) (*Table, error) {
	t.Helper()
	st, err := parser.ParseStatement(ddl)
	if err != nil {
		t.Fatal(err)
	}
	return c.DefineFromAST(st.(*ast.CreateTable))
}

func TestForeignKeyDefinition(t *testing.T) {
	c := paperCatalog(t)
	tb, err := defineFK(t, c, `CREATE TABLE SHIPMENT (
		SID INTEGER, SNO INTEGER NOT NULL, QTY INTEGER,
		PRIMARY KEY (SID),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.ForeignKeys) != 1 {
		t.Fatalf("foreign keys = %d", len(tb.ForeignKeys))
	}
	fk := tb.ForeignKeys[0]
	if fk.RefTable != "SUPPLIER" || fk.RefKey != 0 || len(fk.Columns) != 1 {
		t.Errorf("fk = %+v", fk)
	}
	if tb.Columns[fk.Columns[0]].Name != "SNO" {
		t.Error("fk column wrong")
	}
}

func TestForeignKeyIntoCandidateKey(t *testing.T) {
	// OEM-PNO is a UNIQUE (non-primary) candidate key of PARTS.
	c := paperCatalog(t)
	tb, err := defineFK(t, c, `CREATE TABLE OEMREF (
		ID INTEGER, OEM INTEGER, PRIMARY KEY (ID),
		FOREIGN KEY (OEM) REFERENCES PARTS (OEM-PNO))`)
	if err != nil {
		t.Fatal(err)
	}
	fk := tb.ForeignKeys[0]
	parts, _ := c.Table("PARTS")
	if !samePositions(parts.Keys[fk.RefKey].Columns, []int{parts.ColumnIndex("OEM-PNO")}) {
		t.Errorf("fk should reference the OEM-PNO key, got key %d", fk.RefKey)
	}
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestForeignKeyValidation(t *testing.T) {
	cases := []struct {
		name string
		ddl  string
	}{
		{"unknown ref table", `CREATE TABLE T1 (A INTEGER, PRIMARY KEY (A),
			FOREIGN KEY (A) REFERENCES NOPE (X))`},
		{"unknown fk column", `CREATE TABLE T2 (A INTEGER, PRIMARY KEY (A),
			FOREIGN KEY (B) REFERENCES SUPPLIER (SNO))`},
		{"ref not a key", `CREATE TABLE T3 (A VARCHAR,
			FOREIGN KEY (A) REFERENCES SUPPLIER (SNAME))`},
		{"arity mismatch", `CREATE TABLE T4 (A INTEGER, PRIMARY KEY (A),
			FOREIGN KEY (A) REFERENCES PARTS (SNO, PNO))`},
		{"type mismatch", `CREATE TABLE T5 (A VARCHAR,
			FOREIGN KEY (A) REFERENCES SUPPLIER (SNO))`},
		{"partial composite key", `CREATE TABLE T6 (A INTEGER,
			FOREIGN KEY (A) REFERENCES PARTS (SNO))`},
	}
	for _, cse := range cases {
		c := paperCatalog(t)
		if _, err := defineFK(t, c, cse.ddl); err == nil {
			t.Errorf("%s: expected error", cse.name)
		}
	}
}

func TestForeignKeyCompositeOrder(t *testing.T) {
	// Referenced columns must match the key's declared order.
	c := paperCatalog(t)
	if _, err := defineFK(t, c, `CREATE TABLE GOOD (
		A INTEGER, B INTEGER,
		FOREIGN KEY (A, B) REFERENCES PARTS (SNO, PNO))`); err != nil {
		t.Errorf("ordered composite FK rejected: %v", err)
	}
	c2 := paperCatalog(t)
	if _, err := defineFK(t, c2, `CREATE TABLE BAD (
		A INTEGER, B INTEGER,
		FOREIGN KEY (A, B) REFERENCES PARTS (PNO, SNO))`); err == nil {
		t.Error("out-of-order composite FK should be rejected")
	}
}

func TestForeignKeyRoundTripSQL(t *testing.T) {
	src := `CREATE TABLE SHIPMENT (SID INTEGER NOT NULL, SNO INTEGER NOT NULL, PRIMARY KEY (SID), FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`
	st, err := parser.ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.SQL() != src {
		t.Errorf("round trip:\n in:  %s\n out: %s", src, st.SQL())
	}
}
