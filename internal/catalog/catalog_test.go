package catalog

import (
	"strings"
	"testing"

	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
)

// paperCatalog builds Figure 1's schema from DDL text.
func paperCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	ddl := []string{
		`CREATE TABLE SUPPLIER (
			SNO INTEGER, SNAME VARCHAR(30), SCITY VARCHAR(20),
			BUDGET INTEGER, STATUS VARCHAR(10),
			PRIMARY KEY (SNO),
			CHECK (SNO BETWEEN 1 AND 499),
			CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
			CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))`,
		`CREATE TABLE PARTS (
			SNO INTEGER, PNO INTEGER, PNAME VARCHAR(30),
			OEM-PNO INTEGER, COLOR VARCHAR(10),
			PRIMARY KEY (SNO, PNO),
			UNIQUE (OEM-PNO),
			CHECK (SNO BETWEEN 1 AND 499))`,
		`CREATE TABLE AGENTS (
			SNO INTEGER, ANO INTEGER, ANAME VARCHAR(30), ACITY VARCHAR(20),
			PRIMARY KEY (SNO, ANO))`,
	}
	for _, src := range ddl {
		st, err := parser.ParseStatement(src)
		if err != nil {
			t.Fatalf("parse DDL: %v", err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatalf("define: %v", err)
		}
	}
	return c
}

func TestDefineFromASTSupplier(t *testing.T) {
	c := paperCatalog(t)
	s, ok := c.Table("supplier")
	if !ok {
		t.Fatal("SUPPLIER not found (lookup should be case-insensitive)")
	}
	if len(s.Columns) != 5 {
		t.Fatalf("got %d columns", len(s.Columns))
	}
	// Primary key column becomes NOT NULL.
	col, _ := s.Column("SNO")
	if !col.NotNull {
		t.Error("primary key column SNO must be NOT NULL")
	}
	if col.Type != value.KindInt {
		t.Error("SNO should be INTEGER")
	}
	pk, ok := s.PrimaryKey()
	if !ok || len(pk.Columns) != 1 || s.Columns[pk.Columns[0]].Name != "SNO" {
		t.Error("primary key wrong")
	}
	if len(s.Checks) != 3 {
		t.Errorf("got %d checks, want 3", len(s.Checks))
	}
}

func TestPartsCandidateKeys(t *testing.T) {
	c := paperCatalog(t)
	p, _ := c.Table("PARTS")
	if len(p.Keys) != 2 {
		t.Fatalf("got %d keys", len(p.Keys))
	}
	if names := p.KeyColumnNames(p.Keys[0]); strings.Join(names, ",") != "SNO,PNO" {
		t.Errorf("primary key = %v", names)
	}
	if names := p.KeyColumnNames(p.Keys[1]); strings.Join(names, ",") != "OEM-PNO" {
		t.Errorf("candidate key = %v", names)
	}
	// UNIQUE does not force NOT NULL.
	col, _ := p.Column("OEM-PNO")
	if col.NotNull {
		t.Error("UNIQUE column must remain nullable")
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "A"}}); err == nil {
		t.Error("empty table name should fail")
	}
	if _, err := NewTable("T", nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewTable("T", []Column{{Name: "A"}, {Name: "a"}}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if _, err := NewTable("T", []Column{{Name: ""}}); err == nil {
		t.Error("empty column name should fail")
	}
}

func TestAddKeyValidation(t *testing.T) {
	tb, _ := NewTable("T", []Column{{Name: "A", Type: value.KindInt}, {Name: "B", Type: value.KindInt}})
	if err := tb.AddKey(true, "A"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddKey(true, "B"); err == nil {
		t.Error("second primary key should fail")
	}
	if err := tb.AddKey(false, "NOPE"); err == nil {
		t.Error("unknown key column should fail")
	}
	if err := tb.AddKey(false, "B", "B"); err == nil {
		t.Error("duplicate key column should fail")
	}
	if err := tb.AddKey(false); err == nil {
		t.Error("empty key should fail")
	}
}

func TestAddCheckValidation(t *testing.T) {
	tb, _ := NewTable("T", []Column{{Name: "A", Type: value.KindInt}})
	good, _ := parser.ParseExpr("A BETWEEN 1 AND 9")
	if err := tb.AddCheck(good); err != nil {
		t.Errorf("valid check rejected: %v", err)
	}
	selfQual, _ := parser.ParseExpr("T.A = 1")
	if err := tb.AddCheck(selfQual); err != nil {
		t.Errorf("self-qualified check rejected: %v", err)
	}
	cases := []string{
		"B = 1",   // unknown column
		"X.A = 1", // foreign qualifier
		"A = :H",  // host variable
	}
	for _, src := range cases {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.AddCheck(e); err == nil {
			t.Errorf("AddCheck(%q): expected error", src)
		}
	}
	sub, _ := parser.ParseExpr("EXISTS (SELECT * FROM U WHERE U.A = 1)")
	if err := tb.AddCheck(sub); err == nil {
		t.Error("subquery in CHECK should fail")
	}
	if err := tb.AddCheck(nil); err == nil {
		t.Error("nil CHECK should fail")
	}
}

func TestCatalogDuplicateAndNames(t *testing.T) {
	c := paperCatalog(t)
	tb, _ := NewTable("SUPPLIER", []Column{{Name: "X", Type: value.KindInt}})
	if err := c.Define(tb); err == nil {
		t.Error("duplicate table should fail")
	}
	names := c.TableNames()
	want := []string{"AGENTS", "PARTS", "SUPPLIER"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestHostDomains(t *testing.T) {
	c := paperCatalog(t)
	if err := c.DeclareHostDomain("SUPPLIER-NO", "PARTS", "SNO"); err != nil {
		t.Fatal(err)
	}
	d, ok := c.HostDomain("supplier-no")
	if !ok || d != "PARTS.SNO" {
		t.Errorf("host domain = %q, %v", d, ok)
	}
	if err := c.DeclareHostDomain("X", "NOPE", "A"); err == nil {
		t.Error("unknown table should fail")
	}
	if err := c.DeclareHostDomain("X", "PARTS", "NOPE"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, ok := c.HostDomain("UNDECLARED"); ok {
		t.Error("undeclared host var should not resolve")
	}
}

func mustScope(t *testing.T, c *Catalog, from ...ast.TableRef) *Scope {
	t.Helper()
	s, err := NewScope(c, from, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScopeResolveQualified(t *testing.T) {
	c := paperCatalog(t)
	s := mustScope(t, c,
		ast.TableRef{Table: "SUPPLIER", Alias: "S"},
		ast.TableRef{Table: "PARTS", Alias: "P"})
	r, err := s.Resolve(&ast.ColumnRef{Qualifier: "P", Column: "PNO"})
	if err != nil {
		t.Fatal(err)
	}
	if r.TableIdx != 1 || r.Table.Name != "PARTS" || r.Depth != 0 {
		t.Errorf("resolved = %+v", r)
	}
	if q := r.Qualified(s); q != "P.PNO" {
		t.Errorf("Qualified = %q", q)
	}
}

func TestScopeResolveUnqualifiedAmbiguity(t *testing.T) {
	c := paperCatalog(t)
	s := mustScope(t, c,
		ast.TableRef{Table: "SUPPLIER", Alias: "S"},
		ast.TableRef{Table: "PARTS", Alias: "P"})
	// SNAME exists only in SUPPLIER: fine.
	r, err := s.Resolve(&ast.ColumnRef{Column: "SNAME"})
	if err != nil || r.Table.Name != "SUPPLIER" {
		t.Errorf("SNAME: %v, %v", r, err)
	}
	// SNO exists in both: ambiguous.
	if _, err := s.Resolve(&ast.ColumnRef{Column: "SNO"}); err == nil {
		t.Error("ambiguous SNO should fail")
	}
	// Unknown column.
	if _, err := s.Resolve(&ast.ColumnRef{Column: "NOPE"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := s.Resolve(&ast.ColumnRef{Qualifier: "Z", Column: "SNO"}); err == nil {
		t.Error("unknown qualifier should fail")
	}
	if _, err := s.Resolve(&ast.ColumnRef{Qualifier: "S", Column: "PNO"}); err == nil {
		t.Error("wrong table for column should fail")
	}
}

func TestScopeCorrelation(t *testing.T) {
	c := paperCatalog(t)
	outer := mustScope(t, c, ast.TableRef{Table: "SUPPLIER", Alias: "S"})
	inner, err := NewScope(c, []ast.TableRef{{Table: "PARTS", Alias: "P"}}, outer)
	if err != nil {
		t.Fatal(err)
	}
	// S.SNO inside the subquery resolves to the outer block.
	r, err := inner.Resolve(&ast.ColumnRef{Qualifier: "S", Column: "SNO"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth != 1 || r.Table.Name != "SUPPLIER" {
		t.Errorf("correlated resolve = %+v", r)
	}
	if q := r.Qualified(inner); q != "S.SNO" {
		t.Errorf("Qualified = %q", q)
	}
	// P.PNO resolves locally.
	r, err = inner.Resolve(&ast.ColumnRef{Qualifier: "P", Column: "PNO"})
	if err != nil || r.Depth != 0 {
		t.Errorf("local resolve = %+v, %v", r, err)
	}
}

func TestScopeValidation(t *testing.T) {
	c := paperCatalog(t)
	if _, err := NewScope(c, nil, nil); err == nil {
		t.Error("empty FROM should fail")
	}
	if _, err := NewScope(c, []ast.TableRef{{Table: "NOPE"}}, nil); err == nil {
		t.Error("unknown table should fail")
	}
	dup := []ast.TableRef{{Table: "SUPPLIER", Alias: "X"}, {Table: "PARTS", Alias: "X"}}
	if _, err := NewScope(c, dup, nil); err == nil {
		t.Error("duplicate correlation names should fail")
	}
}

func TestExpandItems(t *testing.T) {
	c := paperCatalog(t)
	s := mustScope(t, c,
		ast.TableRef{Table: "SUPPLIER", Alias: "S"},
		ast.TableRef{Table: "PARTS", Alias: "P"})

	// SELECT * expands to all 10 columns, qualified.
	refs, err := s.ExpandItems([]ast.SelectItem{{Star: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 10 {
		t.Fatalf("* expanded to %d columns, want 10", len(refs))
	}
	if refs[0].SQL() != "S.SNO" || refs[5].SQL() != "P.SNO" {
		t.Errorf("expansion order wrong: %s, %s", refs[0].SQL(), refs[5].SQL())
	}

	// P.* expands to the 5 PARTS columns.
	refs, err = s.ExpandItems([]ast.SelectItem{{Star: true, StarQualifier: "P"}})
	if err != nil || len(refs) != 5 {
		t.Fatalf("P.* expanded to %d columns (%v), want 5", len(refs), err)
	}

	// Mixed list with unqualified name.
	refs, err = s.ExpandItems([]ast.SelectItem{
		{Expr: &ast.ColumnRef{Column: "SNAME"}},
		{Expr: &ast.ColumnRef{Qualifier: "P", Column: "PNO"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if refs[0].SQL() != "S.SNAME" || refs[1].SQL() != "P.PNO" {
		t.Errorf("mixed expansion = %s, %s", refs[0].SQL(), refs[1].SQL())
	}

	// Errors.
	if _, err := s.ExpandItems([]ast.SelectItem{{Star: true, StarQualifier: "Z"}}); err == nil {
		t.Error("Z.* should fail")
	}
	if _, err := s.ExpandItems([]ast.SelectItem{{Expr: &ast.ColumnRef{Column: "SNO"}}}); err == nil {
		t.Error("ambiguous item should fail")
	}
	if _, err := s.ExpandItems([]ast.SelectItem{{Expr: &ast.IntLit{V: 1}}}); err == nil {
		t.Error("non-column item should fail")
	}
}

func TestDropKey(t *testing.T) {
	c := paperCatalog(t)
	parts, _ := c.Table("PARTS")

	if err := parts.DropKey(-1); err == nil {
		t.Error("negative key index should fail")
	}
	if err := parts.DropKey(len(parts.Keys)); err == nil {
		t.Error("out-of-range key index should fail")
	}

	// Reference PARTS's UNIQUE (OEM-PNO) key (index 1) from a new table.
	ord, err := NewTable("ORD", []Column{{Name: "OPN", Type: value.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Define(ord); err != nil {
		t.Fatal(err)
	}
	if err := c.AddForeignKey(ord, []string{"OPN"}, "PARTS", []string{"OEM-PNO"}); err != nil {
		t.Fatal(err)
	}
	if err := parts.DropKey(1); err == nil || !strings.Contains(err.Error(), "FOREIGN KEY") {
		t.Errorf("dropping an FK-referenced key: err = %v, want FOREIGN KEY refusal", err)
	}

	// Dropping the primary key (index 0) shifts ORD's RefKey from 1 to
	// 0 so the inclusion dependency still names UNIQUE (OEM-PNO).
	v0 := c.Version()
	if err := parts.DropKey(0); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v0 {
		t.Error("DropKey did not bump the catalog version")
	}
	if len(parts.Keys) != 1 {
		t.Fatalf("Keys = %v, want just the unique key", parts.Keys)
	}
	if _, ok := parts.PrimaryKey(); ok {
		t.Error("primary key still reported after drop")
	}
	if got := parts.KeyColumnNames(parts.Keys[0]); len(got) != 1 || got[0] != "OEM-PNO" {
		t.Errorf("surviving key columns = %v", got)
	}
	if fk := ord.ForeignKeys[0]; fk.RefKey != 0 {
		t.Errorf("RefKey = %d after drop, want 0 (shifted down)", fk.RefKey)
	}
	// SQL keeps the NOT NULL the primary key forced.
	if col, _ := parts.Column("SNO"); !col.NotNull {
		t.Error("dropping the primary key must not clear NOT NULL")
	}
}

func TestAddKeyBumpsVersionAfterDefine(t *testing.T) {
	c := New()
	tb, err := NewTable("T", []Column{{Name: "A", Type: value.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	// Before Define there is no catalog to notify; AddKey must not panic.
	if err := tb.AddKey(false, "A"); err != nil {
		t.Fatal(err)
	}
	if err := c.Define(tb); err != nil {
		t.Fatal(err)
	}
	v0 := c.Version()
	if err := tb.AddKey(true, "A"); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v0 {
		t.Error("AddKey after Define did not bump the catalog version")
	}
	v1 := c.Version()
	if err := tb.AddCheck(&ast.Compare{Op: ast.GtOp, L: &ast.ColumnRef{Column: "A"}, R: &ast.IntLit{V: 0}}); err != nil {
		t.Fatal(err)
	}
	if c.Version() == v1 {
		t.Error("AddCheck after Define did not bump the catalog version")
	}
}
