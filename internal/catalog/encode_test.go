package catalog_test

import (
	"reflect"
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
)

// The supplier schema exercises every encodable construct: PRIMARY
// KEY, multi-column UNIQUE, NOT NULL, CHECK, and a composite FOREIGN
// KEY into a non-primary candidate key.
var encodeDDL = []string{
	`CREATE TABLE SUPPLIER (
		SNO INTEGER NOT NULL,
		NAME VARCHAR,
		CITY VARCHAR,
		STATUS INTEGER,
		PRIMARY KEY (SNO),
		UNIQUE (NAME, CITY),
		CHECK (STATUS >= 0)
	)`,
	`CREATE TABLE PARTS (
		PNO INTEGER NOT NULL,
		SNO INTEGER NOT NULL,
		DESCR VARCHAR,
		PRIMARY KEY (PNO),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO),
		CHECK (PNO > 0 AND PNO < 1000000)
	)`,
}

// mustCreate parses sql, which must be a CREATE TABLE statement.
func mustCreate(t *testing.T, sql string) *ast.CreateTable {
	t.Helper()
	st, err := parser.ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ct, ok := st.(*ast.CreateTable)
	if !ok {
		t.Fatalf("parse %q: got %T, want *ast.CreateTable", sql, st)
	}
	return ct
}

func TestDDLRoundTrip(t *testing.T) {
	cat := catalog.New()
	for _, sql := range encodeDDL {
		if _, err := cat.DefineFromAST(mustCreate(t, sql)); err != nil {
			t.Fatalf("define: %v", err)
		}
	}

	// Encode every table in definition order, replay into a fresh
	// catalog, and compare the structural schema.
	fresh := catalog.New()
	for _, tab := range cat.DefinedTables() {
		ddl, err := tab.DDL()
		if err != nil {
			t.Fatalf("encode %s: %v", tab.Name, err)
		}
		ct := mustCreate(t, ddl)
		if _, err := fresh.DefineFromAST(ct); err != nil {
			t.Fatalf("re-define %s: %v\nDDL: %s", tab.Name, err, ddl)
		}
	}

	if got, want := fresh.TableNames(), cat.TableNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("tables: got %v want %v", got, want)
	}
	for _, name := range cat.TableNames() {
		orig, _ := cat.Table(name)
		re, _ := fresh.Table(name)
		if !reflect.DeepEqual(orig.Columns, re.Columns) {
			t.Errorf("%s columns: got %+v want %+v", name, re.Columns, orig.Columns)
		}
		if !reflect.DeepEqual(orig.Keys, re.Keys) {
			t.Errorf("%s keys: got %+v want %+v", name, re.Keys, orig.Keys)
		}
		if !reflect.DeepEqual(orig.ForeignKeys, re.ForeignKeys) {
			t.Errorf("%s fks: got %+v want %+v", name, re.ForeignKeys, orig.ForeignKeys)
		}
		if len(orig.Checks) != len(re.Checks) {
			t.Errorf("%s checks: got %d want %d", name, len(re.Checks), len(orig.Checks))
		}
		for i := range orig.Checks {
			if i < len(re.Checks) && orig.Checks[i].SQL() != re.Checks[i].SQL() {
				t.Errorf("%s check %d: got %s want %s", name, i, re.Checks[i].SQL(), orig.Checks[i].SQL())
			}
		}
	}
}

func TestDefinedTablesOrder(t *testing.T) {
	cat := catalog.New()
	for _, sql := range encodeDDL {
		if _, err := cat.DefineFromAST(mustCreate(t, sql)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for _, tab := range cat.DefinedTables() {
		got = append(got, tab.Name)
	}
	// PARTS references SUPPLIER, so definition order must keep
	// SUPPLIER first even though sorted order agrees here; add a
	// table sorting before SUPPLIER to make the distinction real.
	if _, err := cat.DefineFromAST(mustCreate(t, `CREATE TABLE AGENTS (ANO INTEGER NOT NULL, PRIMARY KEY (ANO))`)); err != nil {
		t.Fatal(err)
	}
	got = nil
	for _, tab := range cat.DefinedTables() {
		got = append(got, tab.Name)
	}
	want := []string{"SUPPLIER", "PARTS", "AGENTS"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("definition order: got %v want %v", got, want)
	}
}

func TestRestoreVersion(t *testing.T) {
	cat := catalog.New()
	base := cat.Version()
	cat.RestoreVersion(base + 41)
	if got := cat.Version(); got != base+41 {
		t.Fatalf("restore forward: got %d want %d", got, base+41)
	}
	cat.RestoreVersion(base) // stale restore must not roll back
	if got := cat.Version(); got != base+41 {
		t.Fatalf("restore stale: got %d want %d", got, base+41)
	}
	cat.Bump()
	if got := cat.Version(); got != base+42 {
		t.Fatalf("bump after restore: got %d want %d", got, base+42)
	}
}
