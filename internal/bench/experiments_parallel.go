package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// synthRelation builds a deterministic relation with duplicate-heavy
// join keys — the shape where partitioned hash operators matter.
func synthRelation(seed int64, prefix string, rows int) *engine.Relation {
	r := rand.New(rand.NewSource(seed))
	rel := &engine.Relation{Cols: []string{prefix + ".K", prefix + ".A", prefix + ".B"}}
	rel.Rows = make([]value.Row, rows)
	for i := range rel.Rows {
		rel.Rows[i] = value.Row{
			value.Int(int64(r.Intn(rows/4 + 1))),
			value.Int(int64(r.Intn(100))),
			value.String_(fmt.Sprintf("v%d", r.Intn(16))),
		}
	}
	return rel
}

// minTime reports the fastest of three runs of fn.
func minTime(fn func()) time.Duration {
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// EP — parallel partitioned operators and the analyzer verdict cache.
// Part 1 compares the serial and 4-worker partitioned HashJoin and
// DistinctHash on 10k/100k/1M-row inputs (scaled), verifying the
// results stay byte-identical. Part 2 compares cold and warm analyzer
// verdicts over the paper's query set. Wall-clock parallel speedup is
// bounded by GOMAXPROCS — the table notes the value it ran under.
func EP(sc Scale) *Table {
	t := &Table{
		ID:      "EP",
		Title:   "Parallel partitioned operators (4 workers) and the analyzer verdict cache",
		Columns: []string{"operator", "rows", "serial µs", "par µs", "speedup", "identical"},
	}

	const workers = 4
	ctx := context.Background()
	prevW := engine.SetWorkers(workers)
	prevT := engine.SetParallelThreshold(1)
	defer func() {
		engine.SetWorkers(prevW)
		engine.SetParallelThreshold(prevT)
	}()

	for _, base := range []int{10_000, 100_000, 1_000_000} {
		rows := sc.size(base)
		l := synthRelation(int64(base), "L", rows)
		r := synthRelation(int64(base)+1, "R", rows/4)

		var serialJ, parJ *engine.Relation
		ds := minTime(func() {
			st := &engine.Stats{}
			serialJ = mustRel(engine.HashJoin(ctx, st, l, r, []string{"L.K"}, []string{"R.K"}))
		})
		dp := minTime(func() {
			st := &engine.Stats{}
			parJ = mustRel(engine.ParallelHashJoin(ctx, st, l, r, []string{"L.K"}, []string{"R.K"}, workers))
		})
		t.AddRow("HashJoin", n(int64(rows)), us(ds.Nanoseconds()), us(dp.Nanoseconds()),
			f(float64(ds)/float64(dp)), yes(identical(serialJ, parJ)))

		var serialD, parD *engine.Relation
		ds = minTime(func() {
			st := &engine.Stats{}
			serialD = mustRel(engine.DistinctHash(ctx, st, l))
		})
		dp = minTime(func() {
			st := &engine.Stats{}
			parD = mustRel(engine.ParallelDistinctHash(ctx, st, l, workers))
		})
		t.AddRow("DistinctHash", n(int64(rows)), us(ds.Nanoseconds()), us(dp.Nanoseconds()),
			f(float64(ds)/float64(dp)), yes(identical(serialD, parD)))
	}

	// Part 2: analyzer verdict cache, cold vs warm over the paper's
	// query set (repeated-prepare workload: same statements re-analyzed).
	cat := workload.PaperCatalog()
	cache := core.NewVerdictCache(0)
	an := core.NewCachedAnalyzer(cat, cache)
	names := make([]string, 0, len(workload.PaperQueries))
	for name := range workload.PaperQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	var sels []*ast.Select
	for _, name := range names {
		if s, err := parser.ParseSelect(workload.PaperQueries[name]); err == nil {
			sels = append(sels, s)
		}
	}
	analyzeAll := func() {
		for _, s := range sels {
			if _, err := an.AnalyzeSelect(s, nil); err != nil {
				panic(fmt.Sprintf("bench: EP analyze: %v", err))
			}
		}
	}
	const rounds = 200
	cold := minTime(func() {
		for i := 0; i < rounds; i++ {
			cache.Reset() // every round re-runs Algorithm 1 from scratch
			analyzeAll()
		}
	})
	cache.Reset()
	analyzeAll() // prime once
	warm := minTime(func() {
		for i := 0; i < rounds; i++ {
			analyzeAll()
		}
	})
	hits, misses := cache.Counters()
	t.AddRow("Analyzer cold", n(int64(len(sels)*rounds)), us(cold.Nanoseconds()), "", "", "")
	t.AddRow("Analyzer warm", n(int64(len(sels)*rounds)), "", us(warm.Nanoseconds()),
		f(float64(cold)/float64(warm)), "")

	t.Notes = append(t.Notes,
		fmt.Sprintf("4-worker partitioned operators under GOMAXPROCS=%d; wall-clock parallel speedup requires that many cores.",
			runtime.GOMAXPROCS(0)),
		fmt.Sprintf("Warm analyzer counters: %d hits / %d misses over %d statements × %d rounds.",
			hits, misses, len(sels), rounds),
		"identical = byte-identical relations (columns, rows, and row order).")
	return t
}

// mustRel unwraps an operator result inside the harness, where inputs
// are synthetic and a failure means the benchmark itself is broken.
func mustRel(rel *engine.Relation, err error) *engine.Relation {
	if err != nil {
		panic(fmt.Sprintf("bench: operator failed: %v", err))
	}
	return rel
}

func identical(a, b *engine.Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		if value.OrderCompareRows(a.Rows[i], b.Rows[i]) != 0 {
			return false
		}
	}
	return true
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
