package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// synthRelation builds a deterministic relation with duplicate-heavy
// join keys — the shape where partitioned hash operators matter.
func synthRelation(seed int64, prefix string, rows int) *engine.Relation {
	r := rand.New(rand.NewSource(seed))
	rel := &engine.Relation{Cols: []string{prefix + ".K", prefix + ".A", prefix + ".B"}}
	rel.Rows = make([]value.Row, rows)
	for i := range rel.Rows {
		rel.Rows[i] = value.Row{
			value.Int(int64(r.Intn(rows/4 + 1))),
			value.Int(int64(r.Intn(100))),
			value.String_(fmt.Sprintf("v%d", r.Intn(16))),
		}
	}
	return rel
}

// minTime reports the fastest of three runs of fn. Each run starts
// from a collected heap so one leg's garbage does not tax the next
// leg's measurement.
func minTime(fn func()) time.Duration {
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		start := time.Now()
		fn()
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// EP — execution strategies (serial, 4-worker partitioned, streaming)
// and the analyzer verdict cache. Part 1 runs HashJoin and
// DistinctHash on 10k/100k/1M-row inputs (scaled) under all three
// strategies, verifying the results stay byte-identical, and meters
// each strategy's peak governor-charged bytes: materializing charges
// its whole output (and every intermediate) at once, streaming only
// its blocking state plus one in-flight batch. Part 2 compares cold
// and warm analyzer verdicts over the paper's query set. Wall-clock
// parallel speedup is bounded by GOMAXPROCS — the table notes the
// value it ran under.
func EP(sc Scale) *Table {
	t := &Table{
		ID:    "EP",
		Title: "Execution strategies — serial vs parallel (4 workers) vs streaming — and the analyzer verdict cache",
		Columns: []string{"operator", "rows", "serial µs", "par µs", "stream µs",
			"par ×", "stream ×", "peak KB mat", "peak KB stream", "identical"},
	}

	const workers = 4
	ctx := context.Background()
	// Serial and streaming legs must not auto-redirect to the
	// partitioned operators; the parallel legs invoke them explicitly.
	prevW := engine.SetWorkers(1)
	prevT := engine.SetParallelThreshold(1 << 30)
	defer func() {
		engine.SetWorkers(prevW)
		engine.SetParallelThreshold(prevT)
	}()

	// peakKB runs fn under a fresh byte-metering governor (effectively
	// unlimited, so nothing trips) and reports the high-water charged
	// bytes in KB.
	peakKB := func(fn func(ctx context.Context)) string {
		gov := engine.NewGovernor(0, 1<<62)
		fn(engine.WithGovernor(ctx, gov))
		_, bytes := gov.Peak()
		return n(bytes / 1024)
	}

	lKey, rKey := []string{"L.K"}, []string{"R.K"}
	for _, base := range []int{10_000, 100_000, 1_000_000} {
		rows := sc.size(base)
		l := synthRelation(int64(base), "L", rows)
		r := synthRelation(int64(base)+1, "R", rows/4)

		joinIter := func(st *engine.Stats) engine.Iterator {
			it, err := engine.NewHashJoinIter(st,
				engine.NewRelationIter(st, l), engine.NewRelationIter(st, r), lKey, rKey)
			if err != nil {
				panic(fmt.Sprintf("bench: EP join iter: %v", err))
			}
			return it
		}
		var serialJ, parJ, streamJ *engine.Relation
		ds := minTime(func() {
			st := &engine.Stats{}
			serialJ = mustRel(engine.HashJoin(ctx, st, l, r, lKey, rKey))
		})
		dp := minTime(func() {
			st := &engine.Stats{}
			parJ = mustRel(engine.ParallelHashJoin(ctx, st, l, r, lKey, rKey, workers))
		})
		dstr := minTime(func() {
			st := &engine.Stats{}
			streamJ = collect(ctx, joinIter(st))
		})
		matPeak := peakKB(func(ctx context.Context) {
			st := &engine.Stats{}
			mustRel(engine.HashJoin(ctx, st, l, r, lKey, rKey))
		})
		strPeak := peakKB(func(ctx context.Context) {
			st := &engine.Stats{}
			if _, err := engine.DrainDiscard(ctx, joinIter(st)); err != nil {
				panic(fmt.Sprintf("bench: EP stream join: %v", err))
			}
		})
		t.AddRow("HashJoin", n(int64(rows)), us(ds.Nanoseconds()), us(dp.Nanoseconds()),
			us(dstr.Nanoseconds()), f(float64(ds)/float64(dp)), f(float64(ds)/float64(dstr)),
			matPeak, strPeak, yes(identical(serialJ, parJ) && identical(serialJ, streamJ)))

		var serialD, parD, streamD *engine.Relation
		ds = minTime(func() {
			st := &engine.Stats{}
			serialD = mustRel(engine.DistinctHash(ctx, st, l))
		})
		dp = minTime(func() {
			st := &engine.Stats{}
			parD = mustRel(engine.ParallelDistinctHash(ctx, st, l, workers))
		})
		dstr = minTime(func() {
			st := &engine.Stats{}
			streamD = collect(ctx, engine.NewDistinctHashIter(st, engine.NewRelationIter(st, l)))
		})
		// The distinct peak legs run DISTINCT over π(K): the
		// materializing pipeline charges the full projected intermediate
		// plus the distinct output, the streaming pipeline never
		// materializes the intermediate at all.
		matPeak = peakKB(func(ctx context.Context) {
			st := &engine.Stats{}
			p := mustRel(engine.Project(ctx, st, l, lKey))
			mustRel(engine.DistinctHash(ctx, st, p))
		})
		strPeak = peakKB(func(ctx context.Context) {
			st := &engine.Stats{}
			p, err := engine.NewProjectIter(st, engine.NewRelationIter(st, l), lKey)
			if err != nil {
				panic(fmt.Sprintf("bench: EP project iter: %v", err))
			}
			if _, err := engine.DrainDiscard(ctx, engine.NewDistinctHashIter(st, p)); err != nil {
				panic(fmt.Sprintf("bench: EP stream distinct: %v", err))
			}
		})
		t.AddRow("DistinctHash", n(int64(rows)), us(ds.Nanoseconds()), us(dp.Nanoseconds()),
			us(dstr.Nanoseconds()), f(float64(ds)/float64(dp)), f(float64(ds)/float64(dstr)),
			matPeak, strPeak, yes(identical(serialD, parD) && identical(serialD, streamD)))
	}

	// Part 2: analyzer verdict cache, cold vs warm over the paper's
	// query set (repeated-prepare workload: same statements re-analyzed).
	cat := workload.PaperCatalog()
	cache := core.NewVerdictCache(0)
	an := core.NewCachedAnalyzer(cat, cache)
	names := make([]string, 0, len(workload.PaperQueries))
	for name := range workload.PaperQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	var sels []*ast.Select
	for _, name := range names {
		if s, err := parser.ParseSelect(workload.PaperQueries[name]); err == nil {
			sels = append(sels, s)
		}
	}
	analyzeAll := func() {
		for _, s := range sels {
			if _, err := an.AnalyzeSelect(s, nil); err != nil {
				panic(fmt.Sprintf("bench: EP analyze: %v", err))
			}
		}
	}
	const rounds = 200
	cold := minTime(func() {
		for i := 0; i < rounds; i++ {
			cache.Reset() // every round re-runs Algorithm 1 from scratch
			analyzeAll()
		}
	})
	cache.Reset()
	analyzeAll() // prime once
	warm := minTime(func() {
		for i := 0; i < rounds; i++ {
			analyzeAll()
		}
	})
	hits, misses := cache.Counters()
	t.AddRow("Analyzer cold", n(int64(len(sels)*rounds)), us(cold.Nanoseconds()), "", "", "", "", "", "", "")
	t.AddRow("Analyzer warm", n(int64(len(sels)*rounds)), "", us(warm.Nanoseconds()), "",
		f(float64(cold)/float64(warm)), "", "", "", "")

	t.Notes = append(t.Notes,
		fmt.Sprintf("4-worker partitioned operators under GOMAXPROCS=%d; wall-clock parallel speedup requires that many cores.",
			runtime.GOMAXPROCS(0)),
		"peak KB = high-water governor-charged bytes. Join legs meter the operator with streamed vs materialized delivery; distinct legs meter DISTINCT over a π(K) intermediate, which materializing charges in full and streaming never materializes.",
		fmt.Sprintf("Warm analyzer counters: %d hits / %d misses over %d statements × %d rounds.",
			hits, misses, len(sels), rounds),
		"identical = byte-identical relations (columns, rows, and row order) across all three strategies.")
	return t
}

// collect drains a streaming pipeline into a relation the way a
// client consuming batches would, without re-charging rows the
// pipeline already accounted for (the collected copy only feeds the
// byte-identity check).
func collect(ctx context.Context, it engine.Iterator) *engine.Relation {
	defer it.Close()
	out := engine.NewRelation(it.Cols()...)
	for {
		b, err := it.Next(ctx)
		if err != nil {
			panic(fmt.Sprintf("bench: streaming pipeline: %v", err))
		}
		if b == nil {
			return out
		}
		out.Rows = append(out.Rows, b...)
	}
}

// mustRel unwraps an operator result inside the harness, where inputs
// are synthetic and a failure means the benchmark itself is broken.
func mustRel(rel *engine.Relation, err error) *engine.Relation {
	if err != nil {
		panic(fmt.Sprintf("bench: operator failed: %v", err))
	}
	return rel
}

func identical(a, b *engine.Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		if value.OrderCompareRows(a.Rows[i], b.Rows[i]) != 0 {
			return false
		}
	}
	return true
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
