//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this
// build; timing-ratio assertions are loosened under it.
const raceEnabled = false
