package bench

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"uniqopt"
	"uniqopt/internal/metrics"
	"uniqopt/internal/server"
	"uniqopt/internal/server/client"
	"uniqopt/internal/workload"
)

// serverWorkloadDB builds an embedded DB carrying the paper's
// supplier workload, sized by sc, for a uniqoptd instance to serve.
func serverWorkloadDB(sc Scale) (*uniqopt.DB, int) {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = sc.size(100)
	cfg.PartsPerSupplier = 4
	fresh := mustDB(cfg)
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			panic(fmt.Sprintf("bench: server DDL: %v", err))
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} { // parents before FK children
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				panic(fmt.Sprintf("bench: server load: %v", err))
			}
		}
	}
	return db, cfg.Suppliers
}

// EServer — uniqoptd under concurrent load. An in-process server gets
// the paper workload; each leg runs S closed-loop clients over real
// TCP connections, each preparing one point-lookup statement and then
// mixing prepared EXECs (3 of 4 ops, distinct host values) with a
// DISTINCT query the optimizer rewrites (1 of 4). Latency is measured
// client-side — dial to decoded response — into a metrics histogram
// per session count; the table reports interpolated p50/p99 and
// closed-loop throughput.
func EServer(sc Scale, sessions []int) *Table {
	t := &Table{
		ID:    "ES",
		Title: "uniqoptd under concurrent load — closed-loop clients over the wire protocol",
		Columns: []string{"sessions", "ops", "wall ms", "qps",
			"p50 µs", "p99 µs", "max µs", "errors"},
	}

	db, suppliers := serverWorkloadDB(sc)
	cfg := server.DefaultConfig()
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: ES listen: %v", err))
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			panic(fmt.Sprintf("bench: ES shutdown: %v", err))
		}
	}()
	addr := ln.Addr().String()

	reg := metrics.New()
	opsPerClient := sc.size(200)
	for _, s := range sessions {
		shape := fmt.Sprintf("sessions=%d", s)
		var errCount atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for cid := 0; cid < s; cid++ {
			wg.Add(1)
			go func(cid int) {
				defer wg.Done()
				cl, err := client.Dial(addr)
				if err != nil {
					panic(fmt.Sprintf("bench: ES dial: %v", err))
				}
				defer cl.Close()
				if err := cl.Prepare("bysno",
					`SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SNO = :N`); err != nil {
					panic(fmt.Sprintf("bench: ES prepare: %v", err))
				}
				for i := 0; i < opsPerClient; i++ {
					t0 := time.Now()
					var opErr error
					if i%4 == 3 {
						_, opErr = cl.Query(`SELECT DISTINCT S.SNO FROM SUPPLIER S`)
					} else {
						sno := int64(1 + (cid*opsPerClient+i)%suppliers)
						_, opErr = cl.Exec("bysno", map[string]any{"N": sno})
					}
					reg.ObserveQuery(shape, time.Since(t0).Nanoseconds())
					if opErr != nil {
						errCount.Add(1)
					}
				}
			}(cid)
		}
		wg.Wait()
		wall := time.Since(start)

		var ss metrics.ShapeSnapshot
		for _, cand := range reg.Snapshot().Shapes {
			if cand.Shape == shape {
				ss = cand
			}
		}
		qps := float64(ss.Count) / wall.Seconds()
		t.AddRow(n(int64(s)), n(ss.Count),
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/1e6), f(qps),
			us(ss.P50Nanos), us(ss.P99Nanos), us(ss.MaxNanos), n(errCount.Load()))
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("closed-loop: each client issues its next op when the previous response lands; %d ops/client over real TCP on loopback.", opsPerClient),
		fmt.Sprintf("workload: %d suppliers; op mix 3:1 prepared point lookup (host variable) to DISTINCT query (rewritten by the optimizer, verdict served from cache).", suppliers),
		fmt.Sprintf("server limits: sessions<=%d, concurrent<=%d; p50/p99 interpolated from the 1-2-5 log histogram.", cfg.MaxSessions, cfg.MaxConcurrent),
		"errors counts ops whose response carried a wire error (0 expected under default limits).")
	return t
}
