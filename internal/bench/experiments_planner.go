package bench

import (
	"fmt"

	"uniqopt/internal/plan"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// plannerWorkloads are the ≥3-way join shapes the ordering experiment
// sweeps: a chain anchored by a host-variable-bound key (the planner
// walks the chain outward from the one-row table), a star filtered by
// a visible constant, and a four-way self-extension of the chain.
var plannerWorkloads = []struct {
	name  string
	sql   string
	hosts map[string]value.Value
}{
	{
		name: "chain-3 key-bound",
		sql: `SELECT A.ANAME, P.PNAME FROM AGENTS A, PARTS P, SUPPLIER S
			WHERE A.SNO = P.SNO AND P.SNO = S.SNO AND S.SNO = :N`,
		hosts: map[string]value.Value{"N": value.Int(3)},
	},
	{
		name: "star-3 const-filtered",
		sql: `SELECT S.SNAME, P.PNAME, A.ANAME FROM AGENTS A, SUPPLIER S, PARTS P
			WHERE S.SNO = P.SNO AND S.SNO = A.SNO AND P.COLOR = 'RED' AND P.PNO = 2`,
	},
	{
		name: "chain-4 key-bound",
		sql: `SELECT A.ANAME, B.ANAME, P.PNAME FROM AGENTS A, PARTS P, AGENTS B, SUPPLIER S
			WHERE A.SNO = P.SNO AND P.SNO = B.SNO AND B.SNO = S.SNO AND S.SNO = :N`,
		hosts: map[string]value.Value{"N": value.Int(5)},
	},
}

// EPlanner — uniqueness-bounded join ordering and the normalized plan
// cache. Part 1 runs each ≥3-way workload twice on the same data:
// written FROM order (the pre-planner baseline) versus the greedy
// order driven by verdict-derived cardinality bounds plus derived-
// equality pushdown. Both legs push single-table predicates; only the
// ordering and derivation differ, so the ratio isolates the planner.
// Part 2 meters planning alone (plan-only runs, no data touched):
// cold re-plans every statement each round, warm serves the normalized
// plan cache after one priming round.
func EPlanner(sc Scale) *Table {
	t := &Table{
		ID:    "EPlanner",
		Title: "Uniqueness-bounded join ordering vs written order, and the normalized plan cache",
		Columns: []string{"workload", "|SUPPLIER|", "written µs", "ordered µs", "speedup",
			"written pairs", "ordered pairs", "identical"},
	}

	cfg := workload.DefaultConfig()
	cfg.Suppliers = sc.size(500)
	cfg.PartsPerSupplier = 10
	cfg.AgentsPerSupplier = 3
	cfg.RedFraction = 0.2
	db := mustDB(cfg)

	for _, w := range plannerWorkloads {
		written := runPlanner(db, plan.Options{WrittenJoinOrder: true}, w.sql, w.hosts)
		ordered := runPlanner(db, plan.Options{}, w.sql, w.hosts)
		verifyEqual(written.res, ordered.res, "EPlanner "+w.name)
		t.AddRow(w.name, n(int64(cfg.Suppliers)),
			us(written.elapsed.Nanoseconds()), us(ordered.elapsed.Nanoseconds()),
			f(float64(written.elapsed)/float64(ordered.elapsed)),
			n(written.res.Stats.JoinPairs), n(ordered.res.Stats.JoinPairs),
			yes(written.res.Rel.Len() == ordered.res.Rel.Len()))
	}

	// Part 2: plan-only runs through the shared cache — the repeated-
	// prepare workload where the same statement shapes are planned over
	// and over against an unchanged catalog.
	cache := plan.NewPlanCache(0)
	planAll := func(c *plan.PlanCache) {
		for _, w := range plannerWorkloads {
			q, err := parser.ParseQuery(w.sql)
			if err != nil {
				panic(fmt.Sprintf("bench: EPlanner parse: %v", err))
			}
			p := plan.NewPlanner(db, plan.Options{ExplainOnly: true, Plans: c})
			if _, err := p.Run(q, w.hosts); err != nil {
				panic(fmt.Sprintf("bench: EPlanner plan: %v", err))
			}
		}
	}
	const rounds = 200
	cold := minTime(func() {
		for i := 0; i < rounds; i++ {
			cache.Reset() // every round re-plans from scratch
			planAll(cache)
		}
	})
	cache.Reset()
	planAll(cache) // prime
	warm := minTime(func() {
		for i := 0; i < rounds; i++ {
			planAll(cache)
		}
	})
	hits, misses := cache.Counters()
	t.AddRow("plan-only cold", n(int64(len(plannerWorkloads)*rounds)),
		us(cold.Nanoseconds()), "", "", "", "", "")
	t.AddRow("plan-only warm", n(int64(len(plannerWorkloads)*rounds)),
		"", us(warm.Nanoseconds()), f(float64(cold)/float64(warm)), "", "", "")

	t.Notes = append(t.Notes,
		"written = FROM-list order (WrittenJoinOrder); ordered = greedy uniqueness-bounded order with derived-equality pushdown. Both legs push single-table predicates.",
		"pairs = row pairs examined by join operators; the ordered legs bound each intermediate by starting at the key-bound table.",
		fmt.Sprintf("Warm plan-cache counters: %d hits / %d misses over %d statements × %d rounds.",
			hits, misses, len(plannerWorkloads), rounds),
		"identical = both legs return the same multiset (verified row-by-row before timing is reported).")
	return t
}
