package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/workload"
)

// small is the scale used by unit tests (fast but non-degenerate).
var small = Scale{Factor: 0.05}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d):\n%s", tab.ID, row, col, tab.Format())
	}
	return tab.Rows[row][col]
}

func cellInt(t *testing.T, tab *Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(cell(t, tab, row, col), 10, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q is not an int", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q is not a float", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab := E1(small, false)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if got := cellInt(t, tab, i, 8); got != 0 {
			t.Errorf("row %d: optimized sorts = %d, want 0", i, got)
		}
		if cellInt(t, tab, i, 7) == 0 {
			t.Errorf("row %d: baseline should sort", i)
		}
		if cellInt(t, tab, i, 6) >= cellInt(t, tab, i, 5) {
			t.Errorf("row %d: optimized work should drop", i)
		}
	}
}

func TestE1HashAblation(t *testing.T) {
	tab := E1(small, true)
	if !strings.Contains(tab.Title, "ablation") {
		t.Error("ablation title missing")
	}
	for i := range tab.Rows {
		// Hash distinct: no sorts even in the baseline, but the
		// optimized path still does strictly less comparison work.
		if cellInt(t, tab, i, 6) >= cellInt(t, tab, i, 5) {
			t.Errorf("row %d: optimized work should still drop under hash distinct", i)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2(small)
	for i := range tab.Rows {
		if cellInt(t, tab, i, 5) != 0 {
			t.Errorf("row %d: optimized subquery probes = %d, want 0", i, cellInt(t, tab, i, 5))
		}
		if cellInt(t, tab, i, 4) == 0 {
			t.Errorf("row %d: baseline should probe subqueries", i)
		}
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3(small)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellInt(t, tab, i, 5) == 0 {
			t.Errorf("row %d: baseline should probe subqueries", i)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4(small)
	for i := range tab.Rows {
		baseSorts := cellInt(t, tab, i, 4)
		if baseSorts < 2 {
			t.Errorf("row %d: baseline should sort both operands, sorts = %d", i, baseSorts)
		}
		if cellInt(t, tab, i, 7) >= cellInt(t, tab, i, 6) {
			t.Errorf("row %d: optimized should sort fewer rows", i)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5(small)
	for i := range tab.Rows {
		field := cell(t, tab, i, 2)
		ratio := cellFloat(t, tab, i, 5)
		if field == "PNO" {
			if ratio < 1.99 || ratio > 2.01 {
				t.Errorf("row %d: PNO call ratio = %.2f, want 2.00 (the paper's halving)", i, ratio)
			}
		} else if ratio < 1.0 {
			t.Errorf("row %d: OEM ratio = %.2f, want ≥ 1", i, ratio)
		}
		if cellInt(t, tab, i, 7) > cellInt(t, tab, i, 6) {
			t.Errorf("row %d: nested visits should not exceed join visits", i)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6(small)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := 1e18
	for i := range tab.Rows {
		ratio := cellFloat(t, tab, i, 5)
		if ratio < 1.0 {
			t.Errorf("row %d: fetch ratio = %.2f, parent-driven should never fetch more", i, ratio)
		}
		if ratio > prev+1e-9 {
			t.Errorf("row %d: fetch advantage should shrink as selectivity grows (%.2f after %.2f)",
				i, ratio, prev)
		}
		prev = ratio
	}
	// At full selectivity the ratio approaches 2 (join fetches part +
	// supplier; rewrite fetches supplier only).
	last := cellFloat(t, tab, len(tab.Rows)-1, 5)
	if last < 1.5 || last > 3.0 {
		t.Errorf("full-selectivity ratio = %.2f, want ≈2", last)
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7(small)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The exact check must grow monotonically and end up orders of
	// magnitude above Algorithm 1.
	prev := 0.0
	for i := range tab.Rows {
		exact := cellFloat(t, tab, i, 2)
		if exact < prev {
			t.Logf("row %d: exact time dipped (%f after %f) — timing noise tolerated", i, exact, prev)
		}
		prev = exact
	}
	lastRatio := cellFloat(t, tab, len(tab.Rows)-1, 3)
	if lastRatio < 10 {
		t.Errorf("exact/alg1 ratio at 5 columns = %.2f, want ≫ 10", lastRatio)
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8(small, 40)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		if cellInt(t, tab, i, 4) != 0 {
			t.Fatalf("row %d: UNSOUND verdicts = %d, want 0\n%s", i, cellInt(t, tab, i, 4), tab.Format())
		}
		if cellInt(t, tab, i, 2) == 0 {
			t.Errorf("row %d: no YES verdicts; corpus is vacuous", i)
		}
	}
}

func TestAllRunsAndFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	tabs := All(Scale{Factor: 0.02})
	if len(tabs) != 10 {
		t.Fatalf("experiments = %d, want 10", len(tabs))
	}
	for _, tab := range tabs {
		out := tab.Format()
		if !strings.Contains(out, tab.ID) || len(out) < 50 {
			t.Errorf("%s: formatting looks wrong:\n%s", tab.ID, out)
		}
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{ID: "T", Title: "x", Columns: []string{"a", "bbbb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.Format()
	if !strings.Contains(out, "a  bbbb") || !strings.Contains(out, "note: hello") {
		t.Errorf("format = %q", out)
	}
}

func TestE9Shape(t *testing.T) {
	tab := E9(small)
	for i := range tab.Rows {
		if cellInt(t, tab, i, 8) != 0 {
			t.Errorf("row %d: optimized join pairs = %d, want 0", i, cellInt(t, tab, i, 8))
		}
		if cellInt(t, tab, i, 6) >= cellInt(t, tab, i, 5) {
			t.Errorf("row %d: optimized should scan fewer rows", i)
		}
	}
}

func TestE8ExtensionsReduceIncompleteness(t *testing.T) {
	tab := E8(Scale{Factor: 1}, 150)
	plain := cellInt(t, tab, 0, 5)
	ext := cellInt(t, tab, 1, 5)
	if ext > plain {
		t.Errorf("key-FD extension should not increase incompleteness: %d vs %d", ext, plain)
	}
	if cellInt(t, tab, 1, 2) < cellInt(t, tab, 0, 2) {
		t.Errorf("key-FD extension should not lose YES verdicts")
	}
}

func TestEPShape(t *testing.T) {
	tab := EP(small)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8:\n%s", len(tab.Rows), tab.Format())
	}
	// Every operator row must report byte-identical results across the
	// serial, parallel, and streaming strategies.
	for i := 0; i < 6; i++ {
		if got := cell(t, tab, i, 9); got != "yes" {
			t.Errorf("row %d (%s): strategy results not identical", i, cell(t, tab, i, 0))
		}
	}
	// On the largest inputs, streaming must show a lower peak than
	// materializing (rows 4 and 5 are the biggest join and distinct).
	for _, i := range []int{4, 5} {
		mat, stream := cellInt(t, tab, i, 7), cellInt(t, tab, i, 8)
		if stream >= mat {
			t.Errorf("row %d (%s): streaming peak %d KB >= materializing peak %d KB",
				i, cell(t, tab, i, 0), stream, mat)
		}
	}
	// Warm analyzer verdicts must be at least 10× faster than cold
	// (race instrumentation taxes the cache path disproportionately, so
	// require a looser bound there).
	min := 10.0
	if raceEnabled {
		min = 3.0
	}
	if sp := cellFloat(t, tab, 7, 5); sp < min {
		t.Errorf("warm-cache analyzer speedup = %.2f, want >= %.0f", sp, min)
	}
}

func TestEPlannerShape(t *testing.T) {
	tab := EPlanner(small)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5:\n%s", len(tab.Rows), tab.Format())
	}
	for i := 0; i < 3; i++ {
		if got := cell(t, tab, i, 7); got != "yes" {
			t.Errorf("row %d (%s): legs disagree", i, cell(t, tab, i, 0))
		}
		// Ordering must strictly cut the join work on every workload —
		// that is the whole point of bounding the intermediates.
		if cellInt(t, tab, i, 6) >= cellInt(t, tab, i, 5) {
			t.Errorf("row %d (%s): ordered pairs %d >= written pairs %d",
				i, cell(t, tab, i, 0), cellInt(t, tab, i, 6), cellInt(t, tab, i, 5))
		}
	}
	// Wall clock at test scale is noise (runs are microseconds), so the
	// acceptance margin is pinned on the deterministic metric instead:
	// the key-bound chains must cut join pairs by well over the ≥2×
	// the full-scale gate demands of wall clock.
	for _, i := range []int{0, 2} {
		written, ordered := cellInt(t, tab, i, 5), cellInt(t, tab, i, 6)
		if written < 2*ordered {
			t.Errorf("row %d (%s): written pairs %d < 2× ordered pairs %d",
				i, cell(t, tab, i, 0), written, ordered)
		}
	}
	// Warm planning through the cache must beat cold re-planning.
	if sp := cellFloat(t, tab, 4, 4); sp <= 1.0 {
		t.Errorf("warm plan-cache speedup = %.2f, want > 1", sp)
	}
}

func benchRelPair(rows int) (*engine.Relation, *engine.Relation) {
	return synthRelation(1, "L", rows), synthRelation(2, "R", rows/4)
}

func BenchmarkHashJoinSerial100k(b *testing.B) {
	l, r := benchRelPair(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &engine.Stats{}
		engine.HashJoin(context.Background(), st, l, r, []string{"L.K"}, []string{"R.K"})
	}
}

func BenchmarkHashJoinParallel100k(b *testing.B) {
	l, r := benchRelPair(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &engine.Stats{}
		engine.ParallelHashJoin(context.Background(), st, l, r, []string{"L.K"}, []string{"R.K"}, 4)
	}
}

func BenchmarkDistinctHashSerial100k(b *testing.B) {
	l, _ := benchRelPair(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &engine.Stats{}
		engine.DistinctHash(context.Background(), st, l)
	}
}

func BenchmarkDistinctHashParallel100k(b *testing.B) {
	l, _ := benchRelPair(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &engine.Stats{}
		engine.ParallelDistinctHash(context.Background(), st, l, 4)
	}
}

func BenchmarkAnalyzerCold(b *testing.B) {
	cat := workload.PaperCatalog()
	cache := core.NewVerdictCache(0)
	an := core.NewCachedAnalyzer(cat, cache)
	s, err := parser.ParseSelect(workload.PaperQueries["example1"])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Reset()
		if _, err := an.AnalyzeSelect(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzerWarm(b *testing.B) {
	cat := workload.PaperCatalog()
	cache := core.NewVerdictCache(0)
	an := core.NewCachedAnalyzer(cat, cache)
	s, err := parser.ParseSelect(workload.PaperQueries["example1"])
	if err != nil {
		b.Fatal(err)
	}
	if _, err := an.AnalyzeSelect(s, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.AnalyzeSelect(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEServerShape(t *testing.T) {
	tab := EServer(small, []int{1, 2})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.Format())
	}
	for i, want := range []int64{1, 2} {
		if got := cellInt(t, tab, i, 0); got != want {
			t.Errorf("row %d: sessions = %d, want %d", i, got, want)
		}
		ops := cellInt(t, tab, i, 1)
		if ops != want*int64(small.size(200)) {
			t.Errorf("row %d: ops = %d", i, ops)
		}
		if cellFloat(t, tab, i, 3) <= 0 {
			t.Errorf("row %d: qps should be positive", i)
		}
		p50, p99 := cellFloat(t, tab, i, 4), cellFloat(t, tab, i, 5)
		if p50 <= 0 || p99 < p50 {
			t.Errorf("row %d: p50=%v p99=%v", i, p50, p99)
		}
		if cellInt(t, tab, i, 7) != 0 {
			t.Errorf("row %d: errors = %d, want 0", i, cellInt(t, tab, i, 7))
		}
	}
}
