package bench

import (
	"fmt"
	"time"

	"uniqopt/internal/core"
	"uniqopt/internal/engine"
	"uniqopt/internal/plan"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// Scale shrinks or grows the default sweep sizes (1 = the sizes
// reported in EXPERIMENTS.md; tests use smaller scales for speed).
type Scale struct {
	Factor float64
}

func (s Scale) size(base int) int {
	f := s.Factor
	if f <= 0 {
		f = 1
	}
	out := int(float64(base) * f)
	if out < 4 {
		out = 4
	}
	return out
}

func mustDB(cfg workload.Config) *storage.DB {
	db, err := workload.NewDB(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: workload generation failed: %v", err))
	}
	return db
}

type runOutcome struct {
	res     *plan.Result
	elapsed time.Duration
}

func runPlanner(db *storage.DB, opts plan.Options, src string, hosts map[string]value.Value) runOutcome {
	q, err := parser.ParseQuery(src)
	if err != nil {
		panic(fmt.Sprintf("bench: parse %q: %v", src, err))
	}
	p := plan.NewPlanner(db, opts)
	// Min of three runs: single-shot wall times are noisy at the
	// millisecond scale, and min is the standard robust estimator.
	var best runOutcome
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		res, err := p.Run(q, hosts)
		if err != nil {
			panic(fmt.Sprintf("bench: run %q: %v", src, err))
		}
		elapsed := time.Since(start)
		if best.res == nil || elapsed < best.elapsed {
			best = runOutcome{res: res, elapsed: elapsed}
		}
	}
	return best
}

// work is a strategy-neutral operator-work metric: value comparisons
// plus hash-table activity, so sort-based and hash-based duplicate
// elimination are comparable.
func work(s engine.Stats) int64 {
	return s.Comparisons + s.HashProbes + s.HashInserts
}

func verifyEqual(a, b *plan.Result, what string) {
	if !engine.MultisetEqual(a.Rel, b.Rel) {
		panic(fmt.Sprintf("bench: %s: strategies disagree (%d vs %d rows)",
			what, a.Rel.Len(), b.Rel.Len()))
	}
}

// E1 — redundant DISTINCT elimination (Examples 1/4/6, §5.1).
// Baseline keeps the DISTINCT (sort of the full result); the rewrite
// drops it. Sweep the supplier cardinality.
func E1(sc Scale, hashDistinct bool) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Redundant DISTINCT elimination (Example 1): baseline sorts, rewrite avoids it",
		Columns: []string{"|SUPPLIER|", "|result|", "base µs", "opt µs", "speedup",
			"base work", "opt work", "base sorts", "opt sorts"},
	}
	if hashDistinct {
		t.Title += " [ablation: hash-based DISTINCT]"
	}
	src := workload.PaperQueries["example1"]
	for _, base := range []int{500, 2000, 8000} {
		size := sc.size(base)
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.PartsPerSupplier = 10
		cfg.RedFraction = 0.3
		db := mustDB(cfg)
		baseRun := runPlanner(db, plan.Options{HashDistinct: hashDistinct}, src, nil)
		optRun := runPlanner(db, plan.Options{ApplyRewrites: true, HashDistinct: hashDistinct}, src, nil)
		verifyEqual(baseRun.res, optRun.res, "E1")
		t.AddRow(n(int64(size)), n(int64(baseRun.res.Rel.Len())),
			us(baseRun.elapsed.Nanoseconds()), us(optRun.elapsed.Nanoseconds()),
			f(float64(baseRun.elapsed)/float64(optRun.elapsed)),
			n(work(baseRun.res.Stats)), n(work(optRun.res.Stats)),
			n(baseRun.res.Stats.SortRuns), n(optRun.res.Stats.SortRuns))
	}
	t.Notes = append(t.Notes,
		"work = comparisons + hash probes + hash inserts",
		"expected shape: optimized plan performs 0 result sorts; gap grows with result size")
	return t
}

// E2 — subquery → join (Example 7, Theorem 2). Baseline runs the
// correlated EXISTS as per-row nested-loop probes; the rewrite merges
// it into a hash join.
func E2(sc Scale) *Table {
	t := &Table{
		ID:    "E2",
		Title: "Correlated EXISTS → join (Example 7): nested-loop probes vs hash join",
		Columns: []string{"|SUPPLIER|", "base µs", "opt µs", "speedup",
			"base subq", "opt subq", "base pairs", "opt pairs"},
	}
	src := workload.PaperQueries["example7"]
	for _, base := range []int{200, 800, 3200} {
		size := sc.size(base)
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.PartsPerSupplier = 10
		cfg.NameDupEvery = 4
		db := mustDB(cfg)
		hosts := map[string]value.Value{
			"SUPPLIER-NAME": value.String_("Smith"),
			"PART-NO":       value.Int(3),
		}
		baseRun := runPlanner(db, plan.Options{}, src, hosts)
		optRun := runPlanner(db, plan.Options{ApplyRewrites: true}, src, hosts)
		verifyEqual(baseRun.res, optRun.res, "E2")
		t.AddRow(n(int64(size)),
			us(baseRun.elapsed.Nanoseconds()), us(optRun.elapsed.Nanoseconds()),
			f(float64(baseRun.elapsed)/float64(optRun.elapsed)),
			n(baseRun.res.Stats.SubqueryRuns), n(optRun.res.Stats.SubqueryRuns),
			n(baseRun.res.Stats.JoinPairs), n(optRun.res.Stats.JoinPairs))
	}
	t.Notes = append(t.Notes,
		"expected shape: optimized plan issues 0 subquery probes; margin grows with outer cardinality")
	return t
}

// E3 — subquery → DISTINCT join (Example 8, Corollary 1). The
// subquery matches many rows (red-part density sweep); the rewrite
// converts the per-row probes into one join plus duplicate
// elimination on a key-sized result.
func E3(sc Scale) *Table {
	t := &Table{
		ID:    "E3",
		Title: "EXISTS with many matches → DISTINCT join (Example 8), red density sweep",
		Columns: []string{"red%", "|result|", "base µs", "opt µs", "speedup",
			"base subq", "opt sorts"},
	}
	src := workload.PaperQueries["example8"]
	size := sc.size(1500)
	for _, red := range []float64{0.02, 0.10, 0.40, 0.90} {
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.PartsPerSupplier = 8
		cfg.RedFraction = red
		db := mustDB(cfg)
		baseRun := runPlanner(db, plan.Options{}, src, nil)
		optRun := runPlanner(db, plan.Options{ApplyRewrites: true}, src, nil)
		verifyEqual(baseRun.res, optRun.res, "E3")
		t.AddRow(f(red*100), n(int64(baseRun.res.Rel.Len())),
			us(baseRun.elapsed.Nanoseconds()), us(optRun.elapsed.Nanoseconds()),
			f(float64(baseRun.elapsed)/float64(optRun.elapsed)),
			n(baseRun.res.Stats.SubqueryRuns), n(optRun.res.Stats.SortRuns))
	}
	t.Notes = append(t.Notes,
		"expected shape: join+DISTINCT wins across densities; baseline probe cost is flat, join output grows with density")
	return t
}

// E4 — INTERSECT → EXISTS (Example 9, Theorem 3). Baseline sorts both
// operands and merges; the rewrite chain converts to an EXISTS, then
// to a DISTINCT join.
func E4(sc Scale) *Table {
	t := &Table{
		ID:    "E4",
		Title: "INTERSECT → EXISTS (Example 9): sort-merge both operands vs rewritten join",
		Columns: []string{"|SUPPLIER|", "base µs", "opt µs", "speedup",
			"base sorts", "opt sorts", "base sorted rows", "opt sorted rows"},
	}
	src := workload.PaperQueries["example9"]
	for _, base := range []int{500, 2000, 8000} {
		size := sc.size(base)
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.AgentsPerSupplier = 3
		db := mustDB(cfg)
		baseRun := runPlanner(db, plan.Options{}, src, nil)
		optRun := runPlanner(db, plan.Options{ApplyRewrites: true}, src, nil)
		verifyEqual(baseRun.res, optRun.res, "E4")
		t.AddRow(n(int64(size)),
			us(baseRun.elapsed.Nanoseconds()), us(optRun.elapsed.Nanoseconds()),
			f(float64(baseRun.elapsed)/float64(optRun.elapsed)),
			n(baseRun.res.Stats.SortRuns), n(optRun.res.Stats.SortRuns),
			n(baseRun.res.Stats.RowsSorted), n(optRun.res.Stats.RowsSorted))
	}
	t.Notes = append(t.Notes,
		"expected shape: baseline sorts both operands; rewritten plan sorts at most the (smaller) distinct result")
	return t
}

// E7 — analysis cost (Section 4): Algorithm 1 is polynomial; the
// exact Theorem-1 test is exponential in the number of columns.
func E7(sc Scale) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Analysis cost: Algorithm 1 (µs) vs exact bounded-domain check (µs)",
		Columns: []string{"columns", "alg1 µs", "exact µs", "ratio"},
	}
	for _, cols := range []int{2, 3, 4, 5} {
		cat, src := buildWideCatalog(cols)
		a := core.NewAnalyzer(cat)
		s, err := parser.ParseSelect(src)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		const algReps = 200
		for i := 0; i < algReps; i++ {
			if _, err := a.AnalyzeSelect(s, nil); err != nil {
				panic(err)
			}
		}
		algPer := time.Since(start).Nanoseconds() / algReps
		d, err := core.DefaultDomains(cat, s)
		if err != nil {
			panic(err)
		}
		start = time.Now()
		if _, _, err := a.ExactUniqueness(s, d, 50_000_000); err != nil {
			panic(err)
		}
		exactNs := time.Since(start).Nanoseconds()
		ratio := float64(exactNs) / float64(algPer)
		t.AddRow(n(int64(cols)), us(algPer), us(exactNs), f(ratio))
	}
	t.Notes = append(t.Notes,
		"expected shape: Algorithm 1 stays µs-flat; the exact check grows exponentially with column count (NP-complete in general)")
	return t
}

// E8 — soundness and incompleteness of Algorithm 1 on a random corpus,
// cross-validated by the exact checker (the property suite run as an
// experiment, with counts reported).
func E8(sc Scale, trials int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Algorithm 1 soundness on random queries (exact checker as ground truth)",
		Columns: []string{"options", "trials", "alg1 YES", "exact unique", "unsound", "incomplete"},
	}
	if trials <= 0 {
		trials = int(200 * sc.Factor)
		if trials < 20 {
			trials = 20
		}
	}
	for _, o := range []struct {
		name string
		opts core.Options
	}{
		{"paper-literal", core.Options{}},
		{"+key-FDs", core.Options{UseKeyFDs: true}},
		{"+key-FDs+is-null", core.Options{UseKeyFDs: true, BindIsNull: true}},
		{"+all+checks", core.Options{UseKeyFDs: true, BindIsNull: true, UseCheckConstraints: true}},
	} {
		yes, exactU, unsound, incomplete := soundnessTrials(o.opts, trials)
		t.AddRow(o.name, n(int64(trials)), n(yes), n(exactU), n(unsound), n(incomplete))
	}
	t.Notes = append(t.Notes,
		"expected shape: unsound = 0 in every configuration; extensions reduce incompleteness, never soundness")
	return t
}
