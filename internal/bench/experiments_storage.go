package bench

import (
	"fmt"
	"os"
	"time"

	"uniqopt"
	"uniqopt/internal/storage/wal"
	"uniqopt/internal/value"
)

// storageDDL is the bulk-load table: a keyed heap wide enough that
// frames carry a realistic mix of integer and string payload.
const storageDDL = `CREATE TABLE BULK (ID INTEGER, PAYLOAD VARCHAR, GRP INTEGER, PRIMARY KEY (ID))`

// bulkRow builds row i of the load.
func bulkRow(i int) value.Row {
	return value.Row{value.Int(int64(i)), value.String_(fmt.Sprintf("payload-%08d", i)), value.Int(int64(i % 97))}
}

// loadRows drives rows through db's constraint-enforcing insert path,
// syncing every groupEvery inserts (0 = never; the final sync is
// always issued). It returns the wall time and the number of syncs.
func loadRows(db *uniqopt.DB, rows, groupEvery int) (time.Duration, int64) {
	start := time.Now()
	syncs := int64(0)
	for i := 0; i < rows; i++ {
		if err := db.InsertRow("BULK", bulkRow(i)); err != nil {
			panic(fmt.Sprintf("bench: EStorage insert %d: %v", i, err))
		}
		if groupEvery > 0 && (i+1)%groupEvery == 0 {
			if err := db.Sync(); err != nil {
				panic(fmt.Sprintf("bench: EStorage sync: %v", err))
			}
			syncs++
		}
	}
	if err := db.Sync(); err != nil {
		panic(fmt.Sprintf("bench: EStorage final sync: %v", err))
	}
	return time.Since(start), syncs + 1
}

// EStorage — the cost of crash safety. The same keyed bulk load runs
// against the in-memory backend and the WAL backend in the two ack
// disciplines the server supports: group commit (sync every 1024
// rows, the bulk-load shape) and fsync-per-insert (the per-statement
// ack the wire protocol gives every INSERT). The WAL directory is
// then reopened cold and the recovery time — snapshot load plus log
// replay through the same insert path — is measured.
func EStorage(sc Scale) *Table {
	t := &Table{
		ID:      "EST",
		Title:   "storage backends — insert throughput and cold-start recovery, memory vs write-ahead log",
		Columns: []string{"leg", "rows", "wall ms", "krows/s", "fsyncs", "detail"},
	}
	rows := sc.size(1_000_000)
	ackRows := rows / 50
	if ackRows < 4 {
		ackRows = 4
	}
	msCell := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e6) }
	rate := func(rows int, d time.Duration) string {
		return fmt.Sprintf("%.1f", float64(rows)/1e3/d.Seconds())
	}

	// Leg 1: in-memory backend (Sync is a no-op).
	mem := uniqopt.Open()
	if err := mem.Exec(storageDDL); err != nil {
		panic(fmt.Sprintf("bench: EStorage DDL: %v", err))
	}
	memWall, _ := loadRows(mem, rows, 0)
	t.AddRow("memory", n(int64(rows)), msCell(memWall), rate(rows, memWall), "0", "volatile baseline")

	// Leg 2: WAL backend, group commit every 1024 rows.
	dir, err := os.MkdirTemp("", "uniqopt-bench-wal-*")
	if err != nil {
		panic(fmt.Sprintf("bench: EStorage tempdir: %v", err))
	}
	defer os.RemoveAll(dir)
	walDB, err := uniqopt.OpenPersistent(dir, uniqopt.Options{})
	if err != nil {
		panic(fmt.Sprintf("bench: EStorage open wal: %v", err))
	}
	if err := walDB.Exec(storageDDL); err != nil {
		panic(fmt.Sprintf("bench: EStorage wal DDL: %v", err))
	}
	walWall, walSyncs := loadRows(walDB, rows, 1024)
	if err := walDB.Close(); err != nil {
		panic(fmt.Sprintf("bench: EStorage close wal: %v", err))
	}
	t.AddRow("wal group-commit", n(int64(rows)), msCell(walWall), rate(rows, walWall),
		n(walSyncs), "sync every 1024 rows")

	// Leg 3: WAL backend, fsync-per-insert (the wire protocol's
	// per-INSERT ack), on a reduced row count — each row pays a flush
	// and an fsync.
	ackDir, err := os.MkdirTemp("", "uniqopt-bench-ack-*")
	if err != nil {
		panic(fmt.Sprintf("bench: EStorage tempdir: %v", err))
	}
	defer os.RemoveAll(ackDir)
	ackDB, err := uniqopt.OpenPersistent(ackDir, uniqopt.Options{})
	if err != nil {
		panic(fmt.Sprintf("bench: EStorage open ack: %v", err))
	}
	if err := ackDB.Exec(storageDDL); err != nil {
		panic(fmt.Sprintf("bench: EStorage ack DDL: %v", err))
	}
	ackWall, ackSyncs := loadRows(ackDB, ackRows, 1)
	if err := ackDB.Close(); err != nil {
		panic(fmt.Sprintf("bench: EStorage close ack: %v", err))
	}
	t.AddRow("wal fsync/insert", n(int64(ackRows)), msCell(ackWall), rate(ackRows, ackWall),
		n(ackSyncs), "per-statement ack")

	// Leg 4: cold start on the group-commit directory — snapshot load
	// plus log replay through the constraint-enforcing insert path.
	start := time.Now()
	reDB, err := uniqopt.OpenPersistent(dir, uniqopt.Options{})
	if err != nil {
		panic(fmt.Sprintf("bench: EStorage reopen: %v", err))
	}
	coldWall := time.Since(start)
	detail := "recovery stats unavailable"
	recovered := rows
	if ws, ok := reDB.Backend().(*wal.Store); ok {
		st := ws.Stats()
		recovered = st.SnapshotRows + st.ReplayedRows
		detail = fmt.Sprintf("gen %d: snapshot %d rows + replayed %d", st.Generation, st.SnapshotRows, st.ReplayedRows)
	}
	if err := reDB.Close(); err != nil {
		panic(fmt.Sprintf("bench: EStorage close reopen: %v", err))
	}
	t.AddRow("cold-start recovery", n(int64(recovered)), msCell(coldWall), rate(recovered, coldWall),
		"1", detail)

	t.Notes = append(t.Notes,
		"all legs run the same constraint-enforcing insert path (primary-key hash index maintained row by row); the WAL legs additionally frame, checksum, and buffer every record.",
		fmt.Sprintf("group commit syncs every 1024 rows — the bulk-load discipline; fsync/insert is the wire protocol's per-INSERT ack, shown at %d rows because each row pays a flush+fsync.", ackRows),
		fmt.Sprintf("cold start reopens the group-commit directory: checkpoints every %d appends mean most rows return via the snapshot, the tail via log replay.", wal.DefaultOptions.CheckpointEvery),
		"fsyncs counts Sync barriers issued (the final close-time sync included).")
	return t
}
