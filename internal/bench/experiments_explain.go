package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"uniqopt"
	"uniqopt/internal/workload"
)

// paperDB builds a uniqopt DB populated with the scaled supplier
// workload (parents before FK children).
func paperDB(sc Scale) *uniqopt.DB {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = sc.size(cfg.Suppliers)
	fresh, err := workload.NewDB(cfg)
	if err != nil {
		panic("bench: explain workload: " + err.Error())
	}
	db := uniqopt.Open()
	for _, ddl := range workload.BenchDDL {
		if err := db.Exec(ddl); err != nil {
			panic("bench: explain ddl: " + err.Error())
		}
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} {
		src := fresh.MustTable(name)
		for i := 0; i < src.Len(); i++ {
			if err := db.InsertRow(name, src.Row(i)); err != nil {
				panic("bench: explain load: " + err.Error())
			}
		}
	}
	return db
}

// explainHosts binds every host variable any paper query mentions;
// unused bindings are ignored.
var explainHosts = map[string]any{
	"SUPPLIER-NO":   1,
	"SUPPLIER-NAME": "Smith",
	"PART-NO":       1,
	"PARTNO":        1,
}

// EExplain — the observability layer over the paper's worked examples.
// Each query is executed twice to warm the verdict cache and the
// metrics registry, then run under EXPLAIN ANALYZE; the table reports
// the plan size, the root cardinality, the analyzer's verdict, and
// whether the explain-time verdict was served from the cache. The
// notes summarize the DB's metrics registry — the same data
// benchrunner's -json flag exports for the CI artifact.
func EExplain(sc Scale) *Table {
	t := &Table{
		ID:    "EX",
		Title: "EXPLAIN ANALYZE plans and verdict provenance over the paper's examples",
		Columns: []string{
			"query", "operators", "rows", "unique", "verdict cache", "explain µs"},
	}
	db := paperDB(sc)
	ctx := context.Background()

	names := make([]string, 0, len(workload.PaperQueries))
	for name := range workload.PaperQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sql := workload.PaperQueries[name]
		for i := 0; i < 2; i++ {
			if _, err := db.QueryWith(sql, explainHosts, true); err != nil {
				panic("bench: explain warmup " + name + ": " + err.Error())
			}
		}
		start := time.Now()
		e, err := db.ExplainWith(ctx, sql, explainHosts, true, true)
		elapsed := time.Since(start)
		if err != nil {
			panic("bench: explain " + name + ": " + err.Error())
		}
		a, err := db.Analyze(sql)
		if err != nil {
			panic("bench: explain analyze " + name + ": " + err.Error())
		}
		cached := "miss"
		for _, line := range e.Trace {
			if strings.Contains(line, "cache hit") {
				cached = "hit"
			}
		}
		t.AddRow(name, n(int64(len(e.Root.AllNodes()))), n(e.Root.RowsOut),
			yes(a.Unique), cached, us(elapsed.Nanoseconds()))
	}

	m := db.Metrics()
	t.Notes = append(t.Notes,
		fmt.Sprintf("metrics registry: %d query shapes, analyzer cache hit rate %.0f%%, governor rejections %d, pool size %d (widest fan-out %d)",
			len(m.Shapes), 100*m.Cache.HitRate, m.Governor.Rejections,
			m.Pool.Size, m.Pool.WorkersUsedMax))
	return t
}
