package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"uniqopt/internal/catalog"
	"uniqopt/internal/core"
	"uniqopt/internal/ims"
	"uniqopt/internal/oodb"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// E5 — IMS join → subquery (Example 10, §6.1): DL/I call counts for
// the join program vs the rewritten nested program, key-qualified
// (PNO) and non-key-qualified (OEM-PNO) variants.
func E5(sc Scale) *Table {
	t := &Table{
		ID:    "E5",
		Title: "IMS gateway (Example 10): DL/I calls, join program vs rewritten nested program",
		Columns: []string{"|SUPPLIER|", "fanout", "qual field", "join PARTS calls",
			"nested PARTS calls", "ratio", "join visits", "nested visits"},
	}
	// Part 1 — the headline halving: every supplier has the target
	// PNO, so the join program's second GNP per supplier always
	// returns GE.
	for _, p := range []struct {
		suppliers, fanout int
	}{
		{500, 5},
		{2000, 5},
		{2000, 20},
	} {
		size := sc.size(p.suppliers)
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.PartsPerSupplier = p.fanout
		rel := mustDB(cfg)
		hdb, err := ims.FromRelational(rel)
		if err != nil {
			panic(err)
		}
		target := value.Int(3) // every supplier has PNO 3
		join := hdb.JoinStrategy("PNO", target)
		nested := hdb.NestedStrategy("PNO", target)
		if len(join.Output) != len(nested.Output) {
			panic("E5: strategies disagree")
		}
		jp := join.Stats.CallsBySegment["PARTS"]
		np := nested.Stats.CallsBySegment["PARTS"]
		t.AddRow(n(int64(size)), n(int64(p.fanout)), "PNO",
			n(jp), n(np), f(float64(jp)/float64(np)),
			n(join.Stats.SegmentsVisited), n(nested.Stats.SegmentsVisited))
	}
	// Part 2 — the non-key contrast of §6.1's closing paragraph: a
	// single deep twin chain probed mid-way. With a key-sequenced
	// qualification the join program's extra GNP stops after one twin;
	// with a non-key qualification (OEM-PNO) it must rescan the whole
	// remaining chain, so the rewrite saves nearly 2x the visits.
	for _, fanout := range []int{sc.size(200), sc.size(1000)} {
		hdb := skewedHierarchy(fanout)
		mid := int64(fanout / 2)
		for _, field := range []string{"PNO", "OEM-PNO"} {
			target := value.Int(mid)
			if field == "OEM-PNO" {
				target = value.Int(1000 + mid)
			}
			join := hdb.JoinStrategy(field, target)
			nested := hdb.NestedStrategy(field, target)
			if len(join.Output) != 1 || len(nested.Output) != 1 {
				panic("E5: skewed probe should match exactly one supplier")
			}
			jp := join.Stats.CallsBySegment["PARTS"]
			np := nested.Stats.CallsBySegment["PARTS"]
			t.AddRow("1", n(int64(fanout)), field,
				n(jp), n(np), f(float64(jp)/float64(np)),
				n(join.Stats.SegmentsVisited), n(nested.Stats.SegmentsVisited))
		}
	}
	t.Notes = append(t.Notes,
		"rows 1-3: PNO call ratio is exactly 2.00 — the paper's halving",
		"rows 4-7: one supplier, deep twin chain, probed mid-chain; the key-qualified join stops early (visits ≈ nested+1) while the OEM-qualified join rescans the chain (visits ≈ 2x) — §6.1's 'greater cost reduction'")
	return t
}

// skewedHierarchy builds a hierarchy with a single supplier carrying a
// deep twin chain: PNO 1..fanout, OEM-PNO 1000+PNO.
func skewedHierarchy(fanout int) *ims.Database {
	hdb := ims.NewDatabase(ims.Schema())
	root, err := hdb.InsertRoot(map[string]value.Value{
		"SNO": value.Int(1), "SNAME": value.String_("solo"),
		"SCITY": value.String_("Toronto"), "BUDGET": value.Int(1),
		"STATUS": value.String_("Active"),
	})
	if err != nil {
		panic(err)
	}
	for p := 1; p <= fanout; p++ {
		if _, err := hdb.InsertChild(root, "PARTS", map[string]value.Value{
			"PNO": value.Int(int64(p)), "PNAME": value.String_("p"),
			"OEM-PNO": value.Int(int64(1000 + p)), "COLOR": value.String_("RED"),
		}); err != nil {
			panic(err)
		}
	}
	return hdb
}

// E6 — OODB join → subquery (Example 11, §6.2): object fetches for
// the child-driven pointer-chasing strategy vs the rewritten
// parent-driven existence probing, across range selectivities.
func E6(sc Scale) *Table {
	t := &Table{
		ID:    "E6",
		Title: "OODB navigator (Example 11): object fetches, child-driven vs parent-driven",
		Columns: []string{"|SUPPLIER|", "range", "sel%", "child fetches",
			"parent fetches", "fetch ratio", "child ixent", "parent ixent"},
	}
	size := sc.size(2000)
	cfg := workload.DefaultConfig()
	cfg.Suppliers = size
	cfg.PartsPerSupplier = 5
	rel := mustDB(cfg)
	store, err := oodb.FromRelational(rel)
	if err != nil {
		panic(err)
	}
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		width := int64(float64(size) * sel)
		if width < 1 {
			width = 1
		}
		lo, hi := value.Int(1), value.Int(width)
		store.ResetStats()
		cd, err := store.ChildDrivenJoin(value.Int(2), lo, hi)
		if err != nil {
			panic(err)
		}
		pd, err := store.ParentDrivenExists(value.Int(2), lo, hi)
		if err != nil {
			panic(err)
		}
		if len(cd.Output) != len(pd.Output) {
			panic("E6: strategies disagree")
		}
		ratio := float64(cd.Stats.Fetches) / float64(pd.Stats.Fetches)
		t.AddRow(n(int64(size)), fmt.Sprintf("1..%d", width), f(sel*100),
			n(cd.Stats.Fetches), n(pd.Stats.Fetches), f(ratio),
			n(cd.Stats.IndexEntries), n(pd.Stats.IndexEntries))
	}
	t.Notes = append(t.Notes,
		"expected shape: parent-driven fetch advantage is huge at low selectivity and shrinks toward 2x at 100%;",
		"its index-entry traffic grows with the range — the 'depending on the objects' selectivity' caveat of §6.2")
	return t
}

// buildWideCatalog constructs CREATE TABLE W (K INTEGER, C1..Cn
// INTEGER, PRIMARY KEY (K)) and the query SELECT W.C1 FROM W W —
// projecting a non-key so the exact checker has to enumerate the full
// domain space to find its witness.
func buildWideCatalog(cols int) (*catalog.Catalog, string) {
	var defs []string
	defs = append(defs, "K INTEGER")
	for i := 1; i <= cols; i++ {
		defs = append(defs, fmt.Sprintf("C%d INTEGER", i))
	}
	ddl := fmt.Sprintf("CREATE TABLE W (%s, PRIMARY KEY (K))", strings.Join(defs, ", "))
	st, err := parser.ParseStatement(ddl)
	if err != nil {
		panic(err)
	}
	c := catalog.New()
	if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
		panic(err)
	}
	return c, "SELECT W.C1 FROM W W"
}

// soundnessTrials runs the E8 corpus under the given analyzer options.
func soundnessTrials(opts core.Options, trials int) (yes, exactUnique, unsound, incomplete int64) {
	cat := e8Catalog()
	a := &core.Analyzer{Cat: cat, Opts: opts}
	r := rand.New(rand.NewSource(20240704))
	for i := 0; i < trials; i++ {
		src := e8RandomQuery(r)
		s, err := parser.ParseSelect(src)
		if err != nil {
			panic(fmt.Sprintf("bench: e8 parse %q: %v", src, err))
		}
		v, err := a.AnalyzeSelect(s, nil)
		if err != nil {
			panic(err)
		}
		d, err := core.DefaultDomains(cat, s)
		if err != nil {
			panic(err)
		}
		exact, _, err := a.ExactUniqueness(s, d, 5_000_000)
		if err != nil {
			panic(err)
		}
		if exact {
			exactUnique++
		}
		if v.Unique {
			yes++
			if !exact {
				unsound++
			}
		} else if exact {
			incomplete++
		}
	}
	return
}

// e8Catalog is the small R/S schema used by the soundness corpus.
func e8Catalog() *catalog.Catalog {
	c := catalog.New()
	for _, ddl := range []string{
		`CREATE TABLE R (K INTEGER, X INTEGER, Y INTEGER, PRIMARY KEY (K))`,
		`CREATE TABLE S (K INTEGER, Z INTEGER, PRIMARY KEY (K))`,
	} {
		st, err := parser.ParseStatement(ddl)
		if err != nil {
			panic(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			panic(err)
		}
	}
	return c
}

// e8RandomQuery mirrors the generator in core's property test.
func e8RandomQuery(r *rand.Rand) string {
	cols := []string{"R.K", "R.X", "R.Y"}
	two := r.Intn(2) == 0
	if two {
		cols = append(cols, "S.K", "S.Z")
	}
	nProj := 1 + r.Intn(3)
	var proj []string
	seen := map[string]bool{}
	for len(proj) < nProj {
		c := cols[r.Intn(len(cols))]
		if !seen[c] {
			seen[c] = true
			proj = append(proj, c)
		}
	}
	from := "R R"
	if two {
		from = "R R, S S"
	}
	var conj []string
	for i := 0; i < r.Intn(4); i++ {
		a := cols[r.Intn(len(cols))]
		switch r.Intn(5) {
		case 0:
			conj = append(conj, a+" = 1")
		case 1:
			conj = append(conj, a+" = "+cols[r.Intn(len(cols))])
		case 2:
			conj = append(conj, a+" < 2")
		case 3:
			conj = append(conj, a+" = :H")
		default:
			// The shape where the key-FD extension outperforms the
			// paper-literal algorithm: a non-key column of one table
			// equated to the other's key.
			if two {
				conj = append(conj, "R.X = S.K")
			} else {
				conj = append(conj, "R.K = 1")
			}
		}
	}
	q := "SELECT " + strings.Join(proj, ", ") + " FROM " + from
	if len(conj) > 0 {
		q += " WHERE " + strings.Join(conj, " AND ")
	}
	return q
}

// All runs every experiment at the given scale and returns the tables
// in order.
func All(sc Scale) []*Table {
	return []*Table{
		E1(sc, false),
		E2(sc),
		E3(sc),
		E4(sc),
		E5(sc),
		E6(sc),
		E7(sc),
		E8(sc, 0),
		E9(sc),
		EP(sc),
	}
}
