package bench

import (
	"uniqopt/internal/plan"
	"uniqopt/internal/workload"
)

// E9 — join elimination via inclusion dependencies (the paper's §8
// future-work item, King's join elimination): a foreign-key join whose
// parent contributes no columns is removed outright. Not an experiment
// from the paper's body; included as the implemented extension's
// measurement.
func E9(sc Scale) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Join elimination (§8 future work): FK join with unreferenced parent removed",
		Columns: []string{"|SUPPLIER|", "fanout", "base µs", "opt µs", "speedup",
			"base scanned", "opt scanned", "base pairs", "opt pairs"},
	}
	src := `SELECT P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`
	for _, p := range []struct{ suppliers, fanout int }{
		{500, 10},
		{2000, 10},
		{8000, 10},
	} {
		size := sc.size(p.suppliers)
		cfg := workload.DefaultConfig()
		cfg.Suppliers = size
		cfg.PartsPerSupplier = p.fanout
		db := mustDB(cfg)
		baseRun := runPlanner(db, plan.Options{}, src, nil)
		optRun := runPlanner(db, plan.Options{ApplyRewrites: true}, src, nil)
		verifyEqual(baseRun.res, optRun.res, "E9")
		t.AddRow(n(int64(size)), n(int64(p.fanout)),
			us(baseRun.elapsed.Nanoseconds()), us(optRun.elapsed.Nanoseconds()),
			f(float64(baseRun.elapsed)/float64(optRun.elapsed)),
			n(baseRun.res.Stats.RowsScanned), n(optRun.res.Stats.RowsScanned),
			n(baseRun.res.Stats.JoinPairs), n(optRun.res.Stats.JoinPairs))
	}
	t.Notes = append(t.Notes,
		"expected shape: optimized plan scans only PARTS (no SUPPLIER rows, 0 join pairs); the join cost vanishes")
	return t
}
