// Package bench implements the experiment drivers E1–E9 of
// EXPERIMENTS.md: each driver generates its workload, runs the
// baseline and the uniqueness-aware strategies, and reports a table
// whose shape reproduces the corresponding claim in Paulley & Larson
// (ICDE 1994). cmd/benchrunner prints the tables; bench_test.go wraps
// the same drivers in testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string // e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.2f", v) }

// n formats an integer.
func n(v int64) string { return fmt.Sprintf("%d", v) }

// us formats a duration in microseconds.
func us(nanos int64) string { return fmt.Sprintf("%.1f", float64(nanos)/1e3) }
