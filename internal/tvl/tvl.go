// Package tvl implements SQL's three-valued logic (3VL) together with
// the interpretation operators used throughout Paulley & Larson,
// "Exploiting Uniqueness in Query Optimization" (ICDE 1994).
//
// SQL predicates evaluate to one of three truth values: True, False, or
// Unknown. Unknown arises whenever a comparison involves NULL. The
// paper's Table 2 defines two interpretation operators that collapse a
// three-valued predicate P(x) to two values:
//
//	⌈P(x)⌉  true-interpreted:  x IS NULL OR P(x)
//	⌊P(x)⌋  false-interpreted: x IS NOT NULL AND P(x)
//
// WHERE and HAVING clauses are false-interpreted (rows for which the
// predicate is Unknown are rejected), while duplicate elimination,
// GROUP BY and ORDER BY treat NULL values as equal to each other —
// the null-equivalence operator ≐ of Table 2, implemented by the value
// package.
package tvl

import "fmt"

// Truth is a three-valued logic truth value.
type Truth uint8

// The three truth values of SQL's 3VL. The zero value is Unknown so
// that an uninitialized Truth is conservative in both interpretations'
// senses of "don't know".
const (
	Unknown Truth = iota
	False
	True
)

// Of converts a Go bool to a Truth.
func Of(b bool) Truth {
	if b {
		return True
	}
	return False
}

// String returns the conventional SQL spelling of t.
func (t Truth) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	case Unknown:
		return "UNKNOWN"
	default:
		return fmt.Sprintf("Truth(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the three defined truth values.
func Valid(t Truth) bool { return t <= True }

// Not implements 3VL negation: ¬Unknown = Unknown.
func Not(t Truth) Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And implements Kleene conjunction: False dominates, then Unknown.
func And(a, b Truth) Truth {
	if a == False || b == False {
		return False
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return True
}

// Or implements Kleene disjunction: True dominates, then Unknown.
func Or(a, b Truth) Truth {
	if a == True || b == True {
		return True
	}
	if a == Unknown || b == Unknown {
		return Unknown
	}
	return False
}

// AndAll folds And over ts; the conjunction of no operands is True.
func AndAll(ts ...Truth) Truth {
	out := True
	for _, t := range ts {
		out = And(out, t)
		if out == False {
			return False
		}
	}
	return out
}

// OrAll folds Or over ts; the disjunction of no operands is False.
func OrAll(ts ...Truth) Truth {
	out := False
	for _, t := range ts {
		out = Or(out, t)
		if out == True {
			return True
		}
	}
	return out
}

// Implies implements 3VL material implication a ⇒ b ≡ ¬a ∨ b.
func Implies(a, b Truth) Truth { return Or(Not(a), b) }

// Equiv implements 3VL logical equivalence (a ⇒ b) ∧ (b ⇒ a).
func Equiv(a, b Truth) Truth { return And(Implies(a, b), Implies(b, a)) }

// TrueInterpreted is the paper's ⌈P⌉ operator: Unknown is promoted to
// True. Used when a constraint must be given the benefit of the doubt.
func TrueInterpreted(t Truth) bool { return t != False }

// FalseInterpreted is the paper's ⌊P⌋ operator: Unknown is demoted to
// False. This is the WHERE-clause interpretation: a row qualifies only
// if the predicate is definitely True.
func FalseInterpreted(t Truth) bool { return t == True }

// IsUnknown reports whether t is Unknown.
func IsUnknown(t Truth) bool { return t == Unknown }

// IsTrue reports whether t is definitely True. It is the explicit
// 3VL-aware spelling of the WHERE-clause test (identical to
// FalseInterpreted); callers outside this package must use it instead
// of comparing t against the True constant, so that the Unknown case
// is a conscious decision rather than an accident of 2VL habits.
func IsTrue(t Truth) bool { return t == True }

// IsFalse reports whether t is definitely False — note ¬IsTrue(t) and
// IsFalse(t) differ exactly on Unknown, which is the whole point of
// 3VL. Use it instead of comparing t against the False constant.
func IsFalse(t Truth) bool { return t == False }
