package tvl

import (
	"testing"
	"testing/quick"
)

func TestString(t *testing.T) {
	cases := []struct {
		in   Truth
		want string
	}{
		{True, "TRUE"},
		{False, "FALSE"},
		{Unknown, "UNKNOWN"},
		{Truth(7), "Truth(7)"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", uint8(c.in), got, c.want)
		}
	}
}

func TestOf(t *testing.T) {
	if Of(true) != True || Of(false) != False {
		t.Fatalf("Of mapped bools incorrectly: Of(true)=%v Of(false)=%v", Of(true), Of(false))
	}
}

func TestValid(t *testing.T) {
	for _, v := range []Truth{Unknown, False, True} {
		if !Valid(v) {
			t.Errorf("Valid(%v) = false, want true", v)
		}
	}
	if Valid(Truth(3)) {
		t.Error("Valid(3) = true, want false")
	}
}

// Truth tables straight from the SQL standard.
func TestNotTable(t *testing.T) {
	cases := []struct{ in, want Truth }{
		{True, False},
		{False, True},
		{Unknown, Unknown},
	}
	for _, c := range cases {
		if got := Not(c.in); got != c.want {
			t.Errorf("Not(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAndTable(t *testing.T) {
	cases := []struct{ a, b, want Truth }{
		{True, True, True},
		{True, False, False},
		{True, Unknown, Unknown},
		{False, True, False},
		{False, False, False},
		{False, Unknown, False},
		{Unknown, True, Unknown},
		{Unknown, False, False},
		{Unknown, Unknown, Unknown},
	}
	for _, c := range cases {
		if got := And(c.a, c.b); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrTable(t *testing.T) {
	cases := []struct{ a, b, want Truth }{
		{True, True, True},
		{True, False, True},
		{True, Unknown, True},
		{False, True, True},
		{False, False, False},
		{False, Unknown, Unknown},
		{Unknown, True, True},
		{Unknown, False, Unknown},
		{Unknown, Unknown, Unknown},
	}
	for _, c := range cases {
		if got := Or(c.a, c.b); got != c.want {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestImpliesTable(t *testing.T) {
	cases := []struct{ a, b, want Truth }{
		{True, True, True},
		{True, False, False},
		{True, Unknown, Unknown},
		{False, True, True},
		{False, False, True},
		{False, Unknown, True},
		{Unknown, True, True},
		{Unknown, False, Unknown},
		{Unknown, Unknown, Unknown},
	}
	for _, c := range cases {
		if got := Implies(c.a, c.b); got != c.want {
			t.Errorf("Implies(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEquiv(t *testing.T) {
	if Equiv(True, True) != True || Equiv(False, False) != True {
		t.Error("Equiv of identical definite values should be True")
	}
	if Equiv(True, False) != False {
		t.Error("Equiv(True,False) should be False")
	}
	if Equiv(Unknown, True) != Unknown || Equiv(Unknown, Unknown) != Unknown {
		t.Error("Equiv involving Unknown should be Unknown")
	}
}

func TestFolds(t *testing.T) {
	if AndAll() != True {
		t.Error("empty conjunction must be True")
	}
	if OrAll() != False {
		t.Error("empty disjunction must be False")
	}
	if AndAll(True, Unknown, True) != Unknown {
		t.Error("AndAll with Unknown should be Unknown")
	}
	if AndAll(True, Unknown, False) != False {
		t.Error("AndAll with False should be False")
	}
	if OrAll(False, Unknown, False) != Unknown {
		t.Error("OrAll with Unknown should be Unknown")
	}
	if OrAll(False, True, Unknown) != True {
		t.Error("OrAll with True should be True")
	}
}

func TestInterpretations(t *testing.T) {
	// ⌈P⌉: Unknown counts as satisfied; ⌊P⌋: Unknown counts as failed.
	if !TrueInterpreted(Unknown) || !TrueInterpreted(True) || TrueInterpreted(False) {
		t.Error("TrueInterpreted truth table wrong")
	}
	if FalseInterpreted(Unknown) || !FalseInterpreted(True) || FalseInterpreted(False) {
		t.Error("FalseInterpreted truth table wrong")
	}
	if !IsUnknown(Unknown) || IsUnknown(True) || IsUnknown(False) {
		t.Error("IsUnknown wrong")
	}
}

func clamp(t Truth) Truth { return Truth(uint8(t) % 3) }

// Property: De Morgan's laws hold in Kleene 3VL.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := clamp(Truth(a)), clamp(Truth(b))
		return Not(And(x, y)) == Or(Not(x), Not(y)) &&
			Not(Or(x, y)) == And(Not(x), Not(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: And/Or are commutative, associative and idempotent.
func TestLatticeProperties(t *testing.T) {
	f := func(a, b, c uint8) bool {
		x, y, z := clamp(Truth(a)), clamp(Truth(b)), clamp(Truth(c))
		return And(x, y) == And(y, x) &&
			Or(x, y) == Or(y, x) &&
			And(And(x, y), z) == And(x, And(y, z)) &&
			Or(Or(x, y), z) == Or(x, Or(y, z)) &&
			And(x, x) == x && Or(x, x) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: double negation and absorption.
func TestNegationProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := clamp(Truth(a)), clamp(Truth(b))
		return Not(Not(x)) == x &&
			And(x, Or(x, y)) == x &&
			Or(x, And(x, y)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the two interpretations bracket the truth value.
// ⌊P⌋ ⇒ P is not False, and P True ⇒ ⌈P⌉.
func TestInterpretationBracketProperty(t *testing.T) {
	f := func(a uint8) bool {
		x := clamp(Truth(a))
		if FalseInterpreted(x) && x == False {
			return false
		}
		if x == True && !TrueInterpreted(x) {
			return false
		}
		// ⌊P⌋ ⇒ ⌈P⌉ always.
		return !FalseInterpreted(x) || TrueInterpreted(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
