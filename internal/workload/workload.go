// Package workload generates deterministic synthetic databases over
// the paper's supplier schema (Figure 1) and the parameterized query
// workloads used by the experiments in EXPERIMENTS.md.
//
// Two schema variants are provided: PaperCatalog is Figure 1 verbatim
// , including the CHECK constraints that cap SNO at 499; BenchCatalog
// removes the range caps so cardinality sweeps can exceed them while
// keeping the same keys.
package workload

import (
	"fmt"
	"math/rand"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// PaperDDL is Figure 1's schema with the CHECK constraints from
// Section 2.1 and the referential relationships the figure's caption
// states ("Tuples in PARTS reference the SUPPLIER who supply them;
// tuples in AGENTS reference the SUPPLIER they represent") as
// FOREIGN KEY inclusion dependencies.
var PaperDDL = []string{
	`CREATE TABLE SUPPLIER (
		SNO INTEGER, SNAME VARCHAR(30), SCITY VARCHAR(20),
		BUDGET INTEGER, STATUS VARCHAR(10),
		PRIMARY KEY (SNO),
		CHECK (SNO BETWEEN 1 AND 499),
		CHECK (SCITY IN ('Chicago', 'New York', 'Toronto')),
		CHECK (BUDGET <> 0 OR STATUS = 'Inactive'))`,
	`CREATE TABLE PARTS (
		SNO INTEGER, PNO INTEGER, PNAME VARCHAR(30),
		OEM-PNO INTEGER, COLOR VARCHAR(10),
		PRIMARY KEY (SNO, PNO),
		UNIQUE (OEM-PNO),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO),
		CHECK (SNO BETWEEN 1 AND 499))`,
	`CREATE TABLE AGENTS (
		SNO INTEGER, ANO INTEGER, ANAME VARCHAR(30), ACITY VARCHAR(20),
		PRIMARY KEY (SNO, ANO),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
}

// BenchDDL is the same schema without the SNO range caps and city
// whitelist, so benchmarks can scale beyond 499 suppliers.
var BenchDDL = []string{
	`CREATE TABLE SUPPLIER (
		SNO INTEGER, SNAME VARCHAR(30), SCITY VARCHAR(20),
		BUDGET INTEGER, STATUS VARCHAR(10),
		PRIMARY KEY (SNO))`,
	`CREATE TABLE PARTS (
		SNO INTEGER, PNO INTEGER, PNAME VARCHAR(30),
		OEM-PNO INTEGER, COLOR VARCHAR(10),
		PRIMARY KEY (SNO, PNO),
		UNIQUE (OEM-PNO),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
	`CREATE TABLE AGENTS (
		SNO INTEGER, ANO INTEGER, ANAME VARCHAR(30), ACITY VARCHAR(20),
		PRIMARY KEY (SNO, ANO),
		FOREIGN KEY (SNO) REFERENCES SUPPLIER (SNO))`,
}

// buildCatalog parses DDL into a catalog.
func buildCatalog(ddl []string) (*catalog.Catalog, error) {
	c := catalog.New()
	for _, src := range ddl {
		st, err := parser.ParseStatement(src)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		ct, ok := st.(*ast.CreateTable)
		if !ok {
			return nil, fmt.Errorf("workload: DDL statement is %T", st)
		}
		if _, err := c.DefineFromAST(ct); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// PaperCatalog returns Figure 1's schema with all CHECK constraints.
func PaperCatalog() *catalog.Catalog {
	c, err := buildCatalog(PaperDDL)
	if err != nil {
		panic(err) // static DDL; cannot fail
	}
	return c
}

// BenchCatalog returns the scalable variant of the schema.
func BenchCatalog() *catalog.Catalog {
	c, err := buildCatalog(BenchDDL)
	if err != nil {
		panic(err)
	}
	return c
}

// Config parameterizes data generation.
type Config struct {
	Suppliers         int     // number of SUPPLIER rows (SNO 1..N)
	PartsPerSupplier  int     // fan-out of PARTS per supplier
	AgentsPerSupplier int     // fan-out of AGENTS per supplier
	RedFraction       float64 // fraction of parts colored RED
	NameDupEvery      int     // every k-th supplier reuses a name (0 = all unique)
	NullOEM           bool    // give one part a NULL OEM-PNO (at most one: OEM-PNO is a ≐ key)
	Seed              int64
	PaperLimits       bool // honor Figure 1's CHECK ranges (caps Suppliers at 499)
}

// DefaultConfig is a small, fast instance.
func DefaultConfig() Config {
	return Config{
		Suppliers:         100,
		PartsPerSupplier:  10,
		AgentsPerSupplier: 2,
		RedFraction:       0.3,
		NameDupEvery:      3,
		Seed:              1,
		PaperLimits:       false,
	}
}

var cities = []string{"Chicago", "New York", "Toronto"}
var extraCities = []string{"Ottawa", "Hull", "Paris", "Waterloo"}
var colors = []string{"RED", "BLUE", "GREEN", "YELLOW"}
var namePool = []string{"Smith", "Jones", "Blake", "Clark", "Adams", "Kim", "Larson", "Paulley"}

// NewDB builds and populates a database per cfg. With PaperLimits the
// Figure 1 catalog (and its CHECKs) is used and Suppliers is capped at
// 499; otherwise the scalable catalog is used.
func NewDB(cfg Config) (*storage.DB, error) {
	var cat *catalog.Catalog
	if cfg.PaperLimits {
		cat = PaperCatalog()
		if cfg.Suppliers > 499 {
			cfg.Suppliers = 499
		}
	} else {
		cat = BenchCatalog()
	}
	db := storage.NewDB(cat)
	if err := Populate(db, cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// Populate fills db with deterministic data per cfg.
func Populate(db *storage.DB, cfg Config) error {
	r := rand.New(rand.NewSource(cfg.Seed))
	cityPool := cities
	if !cfg.PaperLimits {
		cityPool = append(append([]string{}, cities...), extraCities...)
	}
	oem := int64(1000)
	for i := 1; i <= cfg.Suppliers; i++ {
		name := namePool[r.Intn(len(namePool))] + fmt.Sprint(i)
		if cfg.NameDupEvery > 0 && i%cfg.NameDupEvery == 0 {
			name = namePool[r.Intn(len(namePool))] // deliberately collides
		}
		budget := int64(1 + r.Intn(1000))
		status := "Active"
		if r.Intn(10) == 0 {
			budget = 0
			status = "Inactive"
		}
		row := value.Row{
			value.Int(int64(i)),
			value.String_(name),
			value.String_(cityPool[r.Intn(len(cityPool))]),
			value.Int(budget),
			value.String_(status),
		}
		if err := db.Insert("SUPPLIER", row); err != nil {
			return fmt.Errorf("workload: supplier %d: %w", i, err)
		}
		for p := 1; p <= cfg.PartsPerSupplier; p++ {
			color := colors[1+r.Intn(len(colors)-1)]
			if r.Float64() < cfg.RedFraction {
				color = "RED"
			}
			oem++
			oemVal := value.Value(value.Int(oem))
			if cfg.NullOEM && i == 1 && p == 1 {
				// SQL2's ≐ key semantics allow exactly one NULL key
				// value per table ("only one tuple in PARTS may have
				// OEM-PNO = NULL").
				oemVal = value.Null
			}
			row := value.Row{
				value.Int(int64(i)),
				value.Int(int64(p)),
				value.String_(fmt.Sprintf("part-%d-%d", i, p)),
				oemVal,
				value.String_(color),
			}
			if err := db.Insert("PARTS", row); err != nil {
				return fmt.Errorf("workload: part %d/%d: %w", i, p, err)
			}
		}
		for a := 1; a <= cfg.AgentsPerSupplier; a++ {
			row := value.Row{
				value.Int(int64(i)),
				value.Int(int64(a)),
				value.String_(fmt.Sprintf("agent-%d-%d", i, a)),
				value.String_(append(append([]string{}, cities...), extraCities...)[r.Intn(7)]),
			}
			if err := db.Insert("AGENTS", row); err != nil {
				return fmt.Errorf("workload: agent %d/%d: %w", i, a, err)
			}
		}
	}
	return nil
}

// CreateIndexes builds the ordered secondary indexes the paper's
// Section 6 examples assume — "an index on PARTS by PNO and an index
// on SUPPLIER by SNO" — plus selection-friendly indexes used by the
// planner's access-path tests.
func CreateIndexes(db *storage.DB) error {
	specs := []struct {
		table, name string
		cols        []string
	}{
		{"SUPPLIER", "SUPPLIER_SNO", []string{"SNO"}},
		{"SUPPLIER", "SUPPLIER_SCITY", []string{"SCITY"}},
		{"PARTS", "PARTS_SNO", []string{"SNO", "PNO"}},
		{"PARTS", "PARTS_COLOR", []string{"COLOR"}},
		{"AGENTS", "AGENTS_ACITY", []string{"ACITY"}},
	}
	for _, sp := range specs {
		t, ok := db.Table(sp.table)
		if !ok {
			return fmt.Errorf("workload: no table %s", sp.table)
		}
		if _, err := t.CreateOrderedIndex(sp.name, sp.cols...); err != nil {
			return err
		}
	}
	return nil
}
