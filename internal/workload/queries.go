package workload

import (
	"math/rand"
	"strings"
)

// PaperQueries are the SQL texts of the paper's worked examples
// (Examples 1–9 plus the SQL shapes of Examples 10–11), keyed by
// example number for the integration suites.
var PaperQueries = map[string]string{
	"example1": `SELECT DISTINCT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`,
	"example2": `SELECT DISTINCT S.SNAME, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`,
	"example3": `SELECT ALL S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P
		WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO`,
	"example4": `SELECT DISTINCT S.SNO, SNAME, P.PNO, PNAME FROM SUPPLIER S, PARTS P
		WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO`,
	"example6": `SELECT DISTINCT S.SNO, PNO, PNAME, P.COLOR FROM SUPPLIER S, PARTS P
		WHERE S.SNAME = :SUPPLIER-NAME AND S.SNO = P.SNO`,
	"example7": `SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S
		WHERE S.SNAME = :SUPPLIER-NAME AND
		EXISTS (SELECT * FROM PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PART-NO)`,
	"example8": `SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P WHERE P.SNO = S.SNO AND P.COLOR = 'RED')`,
	"example9": `SELECT ALL S.SNO FROM SUPPLIER S WHERE S.SCITY = 'Toronto'
		INTERSECT
		SELECT ALL A.SNO FROM AGENTS A WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'`,
	"example10": `SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS
		FROM SUPPLIER S, PARTS P WHERE S.SNO = P.SNO AND P.PNO = :PARTNO`,
	"example11": `SELECT ALL S.SNO, S.SNAME, S.SCITY, S.BUDGET, S.STATUS
		FROM SUPPLIER S, PARTS P
		WHERE S.SNO BETWEEN 10 AND 20 AND S.SNO = P.SNO AND P.PNO = :PARTNO`,
}

// PaperHostVars lists the host variables each paper query needs, so
// harnesses can bind them.
var PaperHostVars = map[string][]string{
	"example3":  {"SUPPLIER-NO"},
	"example4":  {"SUPPLIER-NO"},
	"example6":  {"SUPPLIER-NAME"},
	"example7":  {"SUPPLIER-NAME", "PART-NO"},
	"example10": {"PARTNO"},
	"example11": {"PARTNO"},
}

var supplierCols = []string{"S.SNO", "S.SNAME", "S.SCITY", "S.BUDGET", "S.STATUS"}
var partsCols = []string{"P.SNO", "P.PNO", "P.PNAME", "P.COLOR"}

// RandomQuery generates a random, always-resolvable query over the
// supplier schema: a query specification (possibly with DISTINCT, a
// join, and/or a correlated EXISTS) or an INTERSECT/EXCEPT [ALL]
// expression. Used by the plan-equivalence property suite.
func RandomQuery(r *rand.Rand) string {
	if r.Intn(5) == 0 {
		return randomSetOp(r)
	}
	return randomSelect(r)
}

func pick(r *rand.Rand, xs []string) string { return xs[r.Intn(len(xs))] }

func subset(r *rand.Rand, xs []string, min int) []string {
	n := min + r.Intn(len(xs)-min+1)
	idx := r.Perm(len(xs))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

func randomSelect(r *rand.Rand) string {
	quant := pick(r, []string{"", "ALL ", "DISTINCT "})
	join := r.Intn(2) == 0

	var cols []string
	var from string
	var preds []string

	if join {
		from = "SUPPLIER S, PARTS P"
		cols = subset(r, append(append([]string{}, supplierCols...), partsCols...), 1)
		preds = append(preds, "S.SNO = P.SNO")
		if r.Intn(2) == 0 {
			preds = append(preds, "P.COLOR = 'RED'")
		}
		if r.Intn(3) == 0 {
			preds = append(preds, "P.PNO = 1")
		}
		if r.Intn(4) == 0 {
			preds = append(preds, "S.BUDGET > 500")
		}
	} else {
		from = "SUPPLIER S"
		cols = subset(r, supplierCols, 1)
		switch r.Intn(4) {
		case 0:
			preds = append(preds, "S.SCITY = 'Toronto'")
		case 1:
			preds = append(preds, "S.SNO BETWEEN 10 AND 40")
		case 2:
			preds = append(preds, "S.SNO = 7")
		}
		switch r.Intn(5) {
		case 0, 1:
			sub := "SELECT * FROM PARTS P WHERE P.SNO = S.SNO"
			switch r.Intn(3) {
			case 0:
				sub += " AND P.COLOR = 'RED'"
			case 1:
				sub += " AND P.PNO = 2"
			}
			not := ""
			if r.Intn(4) == 0 {
				not = "NOT "
			}
			preds = append(preds, not+"EXISTS ("+sub+")")
		case 2:
			sub := "SELECT P.SNO FROM PARTS P"
			if r.Intn(2) == 0 {
				sub += " WHERE P.COLOR = 'RED'"
			}
			not := ""
			if r.Intn(4) == 0 {
				not = "NOT "
			}
			preds = append(preds, "S.SNO "+not+"IN ("+sub+")")
		}
	}
	q := "SELECT " + quant + strings.Join(cols, ", ") + " FROM " + from
	if len(preds) > 0 {
		q += " WHERE " + strings.Join(preds, " AND ")
	}
	return q
}

func randomSetOp(r *rand.Rand) string {
	op := pick(r, []string{"INTERSECT", "INTERSECT ALL", "EXCEPT", "EXCEPT ALL"})
	// Union-compatible single-column operands over SNO.
	lsel := "SELECT ALL S.SNO FROM SUPPLIER S"
	if r.Intn(2) == 0 {
		lsel += " WHERE S.SCITY = 'Toronto'"
	}
	var rsel string
	if r.Intn(2) == 0 {
		rsel = "SELECT ALL A.SNO FROM AGENTS A"
		if r.Intn(2) == 0 {
			rsel += " WHERE A.ACITY = 'Ottawa' OR A.ACITY = 'Hull'"
		}
	} else {
		rsel = "SELECT ALL P.SNO FROM PARTS P"
		if r.Intn(2) == 0 {
			rsel += " WHERE P.COLOR = 'RED'"
		}
	}
	if r.Intn(2) == 0 {
		return rsel + " " + op + " " + lsel
	}
	return lsel + " " + op + " " + rsel
}
