package workload

import (
	"math/rand"
	"testing"

	"uniqopt/internal/sql/parser"
)

func TestPaperCatalogShape(t *testing.T) {
	c := PaperCatalog()
	names := c.TableNames()
	if len(names) != 3 {
		t.Fatalf("tables = %v", names)
	}
	sup, _ := c.Table("SUPPLIER")
	if len(sup.Checks) != 3 {
		t.Errorf("SUPPLIER checks = %d", len(sup.Checks))
	}
	parts, _ := c.Table("PARTS")
	if len(parts.Keys) != 2 {
		t.Errorf("PARTS keys = %d", len(parts.Keys))
	}
}

func TestPopulateRespectsConstraints(t *testing.T) {
	// Inserting through storage validates everything, so a successful
	// Populate proves the generator emits only valid rows.
	cfg := DefaultConfig()
	cfg.Suppliers = 50
	cfg.PaperLimits = true
	db, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.MustTable("SUPPLIER").Len() != 50 {
		t.Errorf("suppliers = %d", db.MustTable("SUPPLIER").Len())
	}
	if db.MustTable("PARTS").Len() != 50*cfg.PartsPerSupplier {
		t.Errorf("parts = %d", db.MustTable("PARTS").Len())
	}
	if db.MustTable("AGENTS").Len() != 50*cfg.AgentsPerSupplier {
		t.Errorf("agents = %d", db.MustTable("AGENTS").Len())
	}
}

func TestPaperLimitsCapSuppliers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Suppliers = 600
	cfg.PaperLimits = true
	db, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.MustTable("SUPPLIER").Len() != 499 {
		t.Errorf("suppliers = %d, want capped at 499", db.MustTable("SUPPLIER").Len())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Suppliers = 20
	a, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at, bt := a.MustTable("PARTS"), b.MustTable("PARTS")
	if at.Len() != bt.Len() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < at.Len(); i++ {
		if at.Row(i).String() != bt.Row(i).String() {
			t.Fatalf("row %d differs: %v vs %v", i, at.Row(i), bt.Row(i))
		}
	}
}

func TestNameDuplicatesOccur(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Suppliers = 200
	cfg.NameDupEvery = 2
	db, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sup := db.MustTable("SUPPLIER")
	seen := map[string]int{}
	for i := 0; i < sup.Len(); i++ {
		seen[sup.Row(i)[1].AsString()]++
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("generator should produce duplicate supplier names (Example 2's premise)")
	}
}

func TestRedFraction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Suppliers = 200
	cfg.RedFraction = 0.5
	db, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := db.MustTable("PARTS")
	red := 0
	for i := 0; i < parts.Len(); i++ {
		if parts.Row(i)[4].AsString() == "RED" {
			red++
		}
	}
	frac := float64(red) / float64(parts.Len())
	if frac < 0.4 || frac > 0.75 {
		t.Errorf("red fraction = %.2f, want ≈0.5 (plus random color hits)", frac)
	}
}

func TestPaperQueriesParse(t *testing.T) {
	for name, src := range PaperQueries {
		if _, err := parser.ParseQuery(src); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
	if len(PaperHostVars["example7"]) != 2 {
		t.Error("example7 host vars wrong")
	}
}

func TestRandomQueriesParse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		src := RandomQuery(r)
		if _, err := parser.ParseQuery(src); err != nil {
			t.Fatalf("random query %q does not parse: %v", src, err)
		}
	}
}

func TestNullOEMOption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Suppliers = 10
	cfg.NullOEM = true
	db, err := NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parts := db.MustTable("PARTS")
	nulls := 0
	for i := 0; i < parts.Len(); i++ {
		if parts.Row(i)[3].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Errorf("NULL OEM rows = %d, want exactly 1", nulls)
	}
}
