// Package testleak is the repo's shared goroutine-leak assertion: a
// test records the goroutine count up front and asserts the process
// settles back to it before the test ends. The engine lifecycle
// suite, the fault matrix, and the server disconnect/shutdown tests
// all use the same discipline, so it lives in one place.
//
// The check is a polling settle, not an instantaneous compare: the
// runtime is allowed a grace period to retire goroutines that are
// already past their last observable effect (worker pools draining,
// net connections closing) before the count is judged.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// settleGrace is how long Settle waits for stray goroutines to
// retire before giving up and reporting the still-elevated count.
const settleGrace = 2 * time.Second

// Settle polls until the process goroutine count drops to at most
// base, or the grace period expires; it returns the final count.
// Callers that want a plain assertion should use Check instead.
func Settle(base int) int {
	deadline := time.Now().Add(settleGrace)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// Check records the current goroutine count and registers a cleanup
// that fails the test if the count has not settled back down by the
// time the test (and every cleanup registered after this call) has
// finished. Call it first thing in the test, before starting
// servers, clients, or pools:
//
//	func TestServerShutdown(t *testing.T) {
//		testleak.Check(t)
//		srv := startServer(t) // cleanup-stopped after the check runs
//		...
//	}
//
// Cleanups run last-registered-first, so resources acquired after
// Check are torn down before the leak assertion fires. Not suitable
// for tests running under t.Parallel, where unrelated tests shift
// the process-wide count.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if n := Settle(base); n > base {
			t.Errorf("goroutines leaked: %d before, %d after (grace %v)", base, n, settleGrace)
		}
	})
}
