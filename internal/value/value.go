// Package value implements the typed SQL value system used by the
// catalog, the execution engine, and the uniqueness analyzer.
//
// Two distinct notions of equality coexist in SQL2, and the distinction
// is the technical heart of Paulley & Larson's paper:
//
//   - WHERE-clause comparison ("=", "<", ...) follows three-valued
//     logic: any comparison involving NULL yields Unknown (tvl.Unknown).
//     Implemented by Compare and the Eq/Lt/... helpers.
//   - Duplicate elimination, GROUP BY, ORDER BY and key enforcement use
//     the null-equivalence operator ≐ of the paper's Table 2:
//     (X IS NULL AND Y IS NULL) OR X = Y. Implemented by NullEq and
//     OrderCompare (which sorts NULL first).
package value

import (
	"fmt"
	"strconv"
	"strings"

	"uniqopt/internal/tvl"
)

// Kind enumerates the SQL types the engine supports.
type Kind uint8

// Supported value kinds. KindNull is the type of the NULL literal
// before any column context assigns it a type.
const (
	KindNull Kind = iota
	KindInt
	KindString
	KindBool
)

// String returns the SQL-ish name of k.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value: an int64, a string, a bool, or NULL.
// The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the fmt.Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it panics if v is not an integer.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsString returns the string payload; it panics if v is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics if v is not a boolean.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.b
}

// String renders v as a SQL literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// Comparable reports whether two kinds may be compared in a WHERE
// clause. NULL is comparable with everything (the result is Unknown).
func Comparable(a, b Kind) bool {
	return a == KindNull || b == KindNull || a == b
}

// Compare compares two non-NULL values of the same kind and returns
// -1, 0, or +1. It panics on NULL or mismatched kinds; callers must
// route NULLs through the 3VL helpers or NullEq/OrderCompare.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		panic("value: Compare on NULL; use Eq/OrderCompare")
	}
	if a.kind != b.kind {
		panic(fmt.Sprintf("value: Compare kind mismatch %s vs %s", a.kind, b.kind))
	}
	switch a.kind {
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	default:
		panic(fmt.Sprintf("value: Compare on %s", a.kind))
	}
}

// cmp3 runs a comparison under 3VL: NULL operands yield Unknown.
func cmp3(a, b Value, ok func(int) bool) tvl.Truth {
	if a.IsNull() || b.IsNull() {
		return tvl.Unknown
	}
	return tvl.Of(ok(Compare(a, b)))
}

// Eq is WHERE-clause equality under 3VL.
func Eq(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c == 0 }) }

// Ne is WHERE-clause inequality under 3VL.
func Ne(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c != 0 }) }

// Lt is WHERE-clause less-than under 3VL.
func Lt(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c < 0 }) }

// Le is WHERE-clause less-or-equal under 3VL.
func Le(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c <= 0 }) }

// Gt is WHERE-clause greater-than under 3VL.
func Gt(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c > 0 }) }

// Ge is WHERE-clause greater-or-equal under 3VL.
func Ge(a, b Value) tvl.Truth { return cmp3(a, b, func(c int) bool { return c >= 0 }) }

// NullEq is the paper's ≐ operator (Table 2):
//
//	(X IS NULL AND Y IS NULL) OR X = Y
//
// It is total (never Unknown) and is the equality used by DISTINCT,
// INTERSECT/EXCEPT, GROUP BY and candidate-key enforcement.
func NullEq(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	if a.kind != b.kind {
		return false
	}
	return Compare(a, b) == 0
}

// OrderCompare is a total order used by sorting operators: NULL sorts
// before every non-NULL value, and values of different kinds order by
// kind (which only matters for heterogeneous test data).
func OrderCompare(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	return Compare(a, b)
}

// Hash returns a 64-bit hash of v such that NullEq(a,b) implies
// Hash(a)==Hash(b). Used by hash-based duplicate elimination and joins.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix(byte(v.kind))
	switch v.kind {
	case KindInt:
		u := uint64(v.i)
		for s := 0; s < 64; s += 8 {
			mix(byte(u >> s))
		}
	case KindString:
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		if v.b {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of r that shares no backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// NullEqRows reports whether two rows are equivalent under ≐ applied
// column-wise — the paper's tuple-equivalence condition (Equation 1).
func NullEqRows(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !NullEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// OrderCompareRows compares rows lexicographically with OrderCompare.
func OrderCompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := OrderCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// HashRow hashes a row consistently with NullEqRows.
func HashRow(r Row) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range r {
		h = (h ^ v.Hash()) * prime64
	}
	return h
}

// String renders the row as a parenthesized tuple of SQL literals.
func (r Row) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
