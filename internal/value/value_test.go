package value

import (
	"math/rand"
	"testing"
	"testing/quick"

	"uniqopt/internal/tvl"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindString: "VARCHAR",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be NULL")
	}
	if Int(42).AsInt() != 42 || Int(42).Kind() != KindInt {
		t.Error("Int round-trip failed")
	}
	if String_("abc").AsString() != "abc" {
		t.Error("String_ round-trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round-trip failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { String_("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on null", func() { Null.AsBool() })
	mustPanic("Compare on NULL", func() { Compare(Null, Int(1)) })
	mustPanic("Compare kind mismatch", func() { Compare(Int(1), String_("x")) })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-7), "-7"},
		{String_("it's"), "'it''s'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(KindInt, KindInt) || !Comparable(KindNull, KindString) ||
		!Comparable(KindBool, KindNull) {
		t.Error("Comparable false negatives")
	}
	if Comparable(KindInt, KindString) {
		t.Error("int/string should not be comparable")
	}
}

func TestCompare(t *testing.T) {
	if Compare(Int(1), Int(2)) != -1 || Compare(Int(2), Int(1)) != 1 || Compare(Int(5), Int(5)) != 0 {
		t.Error("int Compare wrong")
	}
	if Compare(String_("a"), String_("b")) != -1 || Compare(String_("b"), String_("b")) != 0 {
		t.Error("string Compare wrong")
	}
	if Compare(Bool(false), Bool(true)) != -1 || Compare(Bool(true), Bool(false)) != 1 ||
		Compare(Bool(true), Bool(true)) != 0 {
		t.Error("bool Compare wrong")
	}
}

func TestThreeValuedComparisons(t *testing.T) {
	// Any NULL operand ⇒ Unknown, the core SQL rule.
	for _, f := range []func(a, b Value) tvl.Truth{Eq, Ne, Lt, Le, Gt, Ge} {
		if !tvl.IsUnknown(f(Null, Int(1))) || !tvl.IsUnknown(f(Int(1), Null)) ||
			!tvl.IsUnknown(f(Null, Null)) {
			t.Fatal("comparison with NULL must be Unknown")
		}
	}
	if !tvl.IsTrue(Eq(Int(3), Int(3))) || !tvl.IsFalse(Eq(Int(3), Int(4))) {
		t.Error("Eq wrong")
	}
	if !tvl.IsTrue(Ne(Int(3), Int(4))) || !tvl.IsFalse(Ne(Int(3), Int(3))) {
		t.Error("Ne wrong")
	}
	if !tvl.IsTrue(Lt(Int(3), Int(4))) || !tvl.IsTrue(Le(Int(4), Int(4))) ||
		!tvl.IsTrue(Gt(Int(5), Int(4))) || !tvl.IsTrue(Ge(Int(4), Int(4))) {
		t.Error("ordered comparison wrong")
	}
	if !tvl.IsFalse(Lt(Int(4), Int(3))) || !tvl.IsFalse(Gt(Int(3), Int(4))) {
		t.Error("ordered comparison wrong (false cases)")
	}
}

func TestNullEq(t *testing.T) {
	// The ≐ operator: NULL ≐ NULL is true; NULL ≐ x is false.
	if !NullEq(Null, Null) {
		t.Error("NULL ≐ NULL must hold")
	}
	if NullEq(Null, Int(0)) || NullEq(String_(""), Null) {
		t.Error("NULL ≐ non-NULL must not hold")
	}
	if !NullEq(Int(9), Int(9)) || NullEq(Int(9), Int(10)) {
		t.Error("≐ on ints wrong")
	}
	if NullEq(Int(1), String_("1")) {
		t.Error("≐ across kinds must be false")
	}
}

func TestOrderCompareTotalOrder(t *testing.T) {
	// NULL sorts first.
	if OrderCompare(Null, Int(-1<<62)) != -1 || OrderCompare(Int(0), Null) != 1 ||
		OrderCompare(Null, Null) != 0 {
		t.Error("NULL ordering wrong")
	}
	// Cross-kind ordering is by kind.
	if OrderCompare(Int(5), String_("a")) != -1 {
		t.Error("kind ordering wrong")
	}
}

func TestHashConsistentWithNullEq(t *testing.T) {
	vals := []Value{Null, Int(0), Int(1), Int(-1), String_(""), String_("a"),
		String_("ab"), Bool(true), Bool(false)}
	for _, a := range vals {
		for _, b := range vals {
			if NullEq(a, b) && a.Hash() != b.Hash() {
				t.Errorf("NullEq(%v,%v) but hashes differ", a, b)
			}
		}
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{Int(1), Null, String_("x")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].AsInt() != 1 {
		t.Error("Clone shares storage")
	}
	if !NullEqRows(r, Row{Int(1), Null, String_("x")}) {
		t.Error("NullEqRows false negative")
	}
	if NullEqRows(r, Row{Int(1), Int(0), String_("x")}) {
		t.Error("NULL column must not match non-NULL")
	}
	if NullEqRows(r, r[:2]) {
		t.Error("rows of different arity must differ")
	}
	if r.String() != "(1, NULL, 'x')" {
		t.Errorf("Row.String() = %q", r.String())
	}
}

func TestOrderCompareRows(t *testing.T) {
	a := Row{Int(1), Int(2)}
	b := Row{Int(1), Int(3)}
	if OrderCompareRows(a, b) != -1 || OrderCompareRows(b, a) != 1 || OrderCompareRows(a, a) != 0 {
		t.Error("lexicographic row compare wrong")
	}
	// Prefix rows order before longer rows.
	if OrderCompareRows(a[:1], a) != -1 || OrderCompareRows(a, a[:1]) != 1 {
		t.Error("prefix ordering wrong")
	}
	// NULL-first within rows.
	if OrderCompareRows(Row{Null}, Row{Int(-100)}) != -1 {
		t.Error("NULL-first within rows wrong")
	}
}

// randValue produces a small-domain random value, NULL-inclusive.
func randValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null
	case 1:
		return Int(int64(r.Intn(5)))
	case 2:
		return String_(string(rune('a' + r.Intn(3))))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// Property: NullEq is an equivalence relation.
func TestNullEqEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := randValue(r), randValue(r), randValue(r)
		if !NullEq(a, a) {
			t.Fatalf("reflexivity failed for %v", a)
		}
		if NullEq(a, b) != NullEq(b, a) {
			t.Fatalf("symmetry failed for %v,%v", a, b)
		}
		if NullEq(a, b) && NullEq(b, c) && !NullEq(a, c) {
			t.Fatalf("transitivity failed for %v,%v,%v", a, b, c)
		}
	}
}

// Property: OrderCompare is antisymmetric and agrees with NullEq on zero.
func TestOrderCompareProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := randValue(r), randValue(r)
		if OrderCompare(a, b) != -OrderCompare(b, a) {
			t.Fatalf("antisymmetry failed for %v,%v", a, b)
		}
		if (OrderCompare(a, b) == 0) != NullEq(a, b) {
			t.Fatalf("OrderCompare==0 must coincide with ≐ for %v,%v", a, b)
		}
	}
}

// Property: Eq is True exactly when both non-NULL and NullEq holds.
func TestEqVsNullEqProperty(t *testing.T) {
	f := func(x, y int8) bool {
		a, b := Int(int64(x%3)), Int(int64(y%3))
		return tvl.IsTrue(Eq(a, b)) == NullEq(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: row hash consistent with row equivalence.
func TestHashRowProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		n := r.Intn(4)
		a, b := make(Row, n), make(Row, n)
		for j := 0; j < n; j++ {
			a[j] = randValue(r)
			if r.Intn(2) == 0 {
				b[j] = a[j]
			} else {
				b[j] = randValue(r)
			}
		}
		if NullEqRows(a, b) && HashRow(a) != HashRow(b) {
			t.Fatalf("equivalent rows %v and %v hash differently", a, b)
		}
	}
}
