package ims

import (
	"fmt"

	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// FromRelational builds the Figure 2 hierarchy from the relational
// supplier database: each SUPPLIER row becomes a root, each PARTS and
// AGENTS row a child of its supplier. Orphan children (no matching
// supplier) are rejected — IMS hierarchies cannot represent them.
func FromRelational(db *storage.DB) (*Database, error) {
	out := NewDatabase(Schema())
	sup, ok := db.Table("SUPPLIER")
	if !ok {
		return nil, fmt.Errorf("ims: relational source lacks SUPPLIER")
	}
	bySNO := map[int64]*Segment{}
	for i := 0; i < sup.Len(); i++ {
		r := sup.Row(i)
		seg, err := out.InsertRoot(map[string]value.Value{
			"SNO": r[0], "SNAME": r[1], "SCITY": r[2], "BUDGET": r[3], "STATUS": r[4],
		})
		if err != nil {
			return nil, err
		}
		bySNO[r[0].AsInt()] = seg
	}
	if parts, ok := db.Table("PARTS"); ok {
		for i := 0; i < parts.Len(); i++ {
			r := parts.Row(i)
			parent := bySNO[r[0].AsInt()]
			if parent == nil {
				return nil, fmt.Errorf("ims: PARTS row %v references missing supplier", r)
			}
			if _, err := out.InsertChild(parent, "PARTS", map[string]value.Value{
				"PNO": r[1], "PNAME": r[2], "OEM-PNO": r[3], "COLOR": r[4],
			}); err != nil {
				return nil, err
			}
		}
	}
	if agents, ok := db.Table("AGENTS"); ok {
		for i := 0; i < agents.Len(); i++ {
			r := agents.Row(i)
			parent := bySNO[r[0].AsInt()]
			if parent == nil {
				return nil, fmt.Errorf("ims: AGENTS row %v references missing supplier", r)
			}
			if _, err := out.InsertChild(parent, "AGENT", map[string]value.Value{
				"ANO": r[1], "ANAME": r[2], "ACITY": r[3],
			}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// GatewayResult is the outcome of one translated program: the SUPPLIER
// segments output and the DL/I activity it took.
type GatewayResult struct {
	Output []*Segment
	Stats  CallStats
}

// JoinStrategy is the paper's straightforward nested-loop join program
// (Example 10, lines 21–29): for every supplier, iterate GNP over
// qualifying PARTS children, emitting the supplier once per match —
// note the second GNP after each match, which is the call the
// rewritten program saves.
//
//	GU SUPPLIER;
//	while status = '  ' do
//	    GNP PARTS (field = v);
//	    while status = '  ' do
//	        output SUPPLIER tuple;
//	        GNP PARTS (field = v)
//	    od;
//	    GN SUPPLIER
//	od
func (db *Database) JoinStrategy(field string, v value.Value) *GatewayResult {
	pcb := db.NewPCB()
	res := &GatewayResult{}
	sup, status := pcb.GU("SUPPLIER")
	for status == StatusOK {
		_, st := pcb.GNP("PARTS", Qual{Field: field, Op: EQ, Value: v})
		for st == StatusOK {
			res.Output = append(res.Output, sup)
			_, st = pcb.GNP("PARTS", Qual{Field: field, Op: EQ, Value: v})
		}
		sup, status = pcb.GN("SUPPLIER")
	}
	res.Stats = pcb.Stats
	return res
}

// NestedStrategy is the rewritten program (Example 10, lines 30–35)
// enabled by the join → subquery transformation: the inner loop stops
// after the first qualifying PARTS segment, halving the DL/I calls
// against PARTS when the qualification is on the child key.
//
//	GU SUPPLIER;
//	while status = '  ' do
//	    GNP PARTS (field = v);
//	    if status = '  ' then output SUPPLIER tuple;
//	    GN SUPPLIER
//	od
func (db *Database) NestedStrategy(field string, v value.Value) *GatewayResult {
	pcb := db.NewPCB()
	res := &GatewayResult{}
	sup, status := pcb.GU("SUPPLIER")
	for status == StatusOK {
		_, st := pcb.GNP("PARTS", Qual{Field: field, Op: EQ, Value: v})
		if st == StatusOK {
			res.Output = append(res.Output, sup)
		}
		sup, status = pcb.GN("SUPPLIER")
	}
	res.Stats = pcb.Stats
	return res
}

// JoinStrategyRange is the Example 11 shape on IMS: a range predicate
// on the supplier plus a key-qualified part probe, still driven from
// the root sequence.
func (db *Database) JoinStrategyRange(lo, hi value.Value, field string, v value.Value, nested bool) *GatewayResult {
	pcb := db.NewPCB()
	res := &GatewayResult{}
	quals := []Qual{
		{Field: db.Root.KeyField, Op: GE, Value: lo},
		{Field: db.Root.KeyField, Op: LE, Value: hi},
	}
	sup, status := pcb.GU("SUPPLIER", quals...)
	for status == StatusOK {
		_, st := pcb.GNP("PARTS", Qual{Field: field, Op: EQ, Value: v})
		if nested {
			if st == StatusOK {
				res.Output = append(res.Output, sup)
			}
		} else {
			for st == StatusOK {
				res.Output = append(res.Output, sup)
				_, st = pcb.GNP("PARTS", Qual{Field: field, Op: EQ, Value: v})
			}
		}
		sup, status = pcb.GN("SUPPLIER", quals...)
	}
	res.Stats = pcb.Stats
	return res
}

// ToRelational extracts the hierarchy back into relational tables —
// the gateway's "post-processing layer" path (§6.1): queries the data
// access layer cannot translate into an iterative DL/I program are
// answered by materializing relational views of the segments and
// running the relational engine, at increased cost. The extraction
// issues one GU plus a GN per root and a GNP per child, all counted on
// the returned PCB stats.
func (db *Database) ToRelational(rel *storage.DB) (*CallStats, error) {
	pcb := db.NewPCB()
	sup, status := pcb.GU("SUPPLIER")
	for status == StatusOK {
		row := value.Row{
			sup.Get("SNO"), sup.Get("SNAME"), sup.Get("SCITY"),
			sup.Get("BUDGET"), sup.Get("STATUS"),
		}
		if err := rel.Insert("SUPPLIER", row); err != nil {
			return nil, err
		}
		for {
			p, st := pcb.GNP("PARTS")
			if st != StatusOK {
				break
			}
			row := value.Row{
				sup.Get("SNO"), p.Get("PNO"), p.Get("PNAME"),
				p.Get("OEM-PNO"), p.Get("COLOR"),
			}
			if err := rel.Insert("PARTS", row); err != nil {
				return nil, err
			}
		}
		for {
			a, st := pcb.GNP("AGENT")
			if st != StatusOK {
				break
			}
			row := value.Row{
				sup.Get("SNO"), a.Get("ANO"), a.Get("ANAME"), a.Get("ACITY"),
			}
			if err := rel.Insert("AGENTS", row); err != nil {
				return nil, err
			}
		}
		sup, status = pcb.GN("SUPPLIER")
	}
	stats := pcb.Stats
	return &stats, nil
}
