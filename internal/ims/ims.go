// Package ims simulates a HIDAM-style IMS hierarchical database with a
// DL/I call interface, reproducing the substrate of the paper's
// Section 6.1 (Figure 2): key-sequenced root segments, parent-child
// and twin pointers, and the GU / GN / GNP calls with status codes.
//
// The paper's argument in §6.1 is entirely about the number and kind
// of DL/I calls a translated SQL strategy issues — the simulator
// therefore counts calls per segment type and the segments visited
// while scanning twin chains (the I/O proxy), which is exactly the
// quantity Example 10 reasons about.
package ims

import (
	"fmt"
	"sort"

	"uniqopt/internal/value"
)

// SegmentType describes one segment type in the hierarchy.
type SegmentType struct {
	Name     string
	KeyField string   // sequence field: twins are stored in this order
	Fields   []string // includes KeyField
	Parent   *SegmentType
	Children []*SegmentType
}

// child returns the child type with the given name.
func (t *SegmentType) child(name string) *SegmentType {
	for _, c := range t.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Segment is one stored segment occurrence.
type Segment struct {
	Type   *SegmentType
	Fields map[string]value.Value
	// children holds the twin chains per child type, key-sequenced.
	children map[string][]*Segment
}

// Get returns a field value.
func (s *Segment) Get(field string) value.Value { return s.Fields[field] }

// Key returns the sequence-field value.
func (s *Segment) Key() value.Value { return s.Fields[s.Type.KeyField] }

// Database is a hierarchical database: one root segment type with
// key-sequenced root occurrences (the HIDAM index).
type Database struct {
	Root  *SegmentType
	roots []*Segment // sorted by root key
}

// Schema constructs the supplier hierarchy of Figure 2:
//
//	SUPPLIER (key SNO)
//	├── PARTS (key PNO; fields PNAME, OEM-PNO, COLOR)
//	└── AGENT (key ANO; fields ANAME, ACITY)
func Schema() *SegmentType {
	root := &SegmentType{
		Name:     "SUPPLIER",
		KeyField: "SNO",
		Fields:   []string{"SNO", "SNAME", "SCITY", "BUDGET", "STATUS"},
	}
	parts := &SegmentType{
		Name:     "PARTS",
		KeyField: "PNO",
		Fields:   []string{"PNO", "PNAME", "OEM-PNO", "COLOR"},
		Parent:   root,
	}
	agent := &SegmentType{
		Name:     "AGENT",
		KeyField: "ANO",
		Fields:   []string{"ANO", "ANAME", "ACITY"},
		Parent:   root,
	}
	root.Children = []*SegmentType{parts, agent}
	return root
}

// NewDatabase creates an empty database with the given root type.
func NewDatabase(root *SegmentType) *Database {
	return &Database{Root: root}
}

// InsertRoot adds a root segment occurrence. Roots are kept
// key-sequenced; duplicate root keys are rejected (SNO is the key).
func (db *Database) InsertRoot(fields map[string]value.Value) (*Segment, error) {
	seg := &Segment{Type: db.Root, Fields: fields, children: map[string][]*Segment{}}
	key := seg.Key()
	if key.IsNull() {
		return nil, fmt.Errorf("ims: root key %s must not be NULL", db.Root.KeyField)
	}
	i := sort.Search(len(db.roots), func(i int) bool {
		return value.OrderCompare(db.roots[i].Key(), key) >= 0
	})
	if i < len(db.roots) && value.NullEq(db.roots[i].Key(), key) {
		return nil, fmt.Errorf("ims: duplicate root key %s", key)
	}
	db.roots = append(db.roots, nil)
	copy(db.roots[i+1:], db.roots[i:])
	db.roots[i] = seg
	return seg, nil
}

// InsertChild adds a child occurrence under parent, key-sequenced in
// its twin chain. Duplicate child keys under one parent are rejected.
func (db *Database) InsertChild(parent *Segment, typeName string, fields map[string]value.Value) (*Segment, error) {
	ct := parent.Type.child(typeName)
	if ct == nil {
		return nil, fmt.Errorf("ims: %s has no child type %s", parent.Type.Name, typeName)
	}
	seg := &Segment{Type: ct, Fields: fields, children: map[string][]*Segment{}}
	key := seg.Key()
	if key.IsNull() {
		return nil, fmt.Errorf("ims: child key %s must not be NULL", ct.KeyField)
	}
	twins := parent.children[typeName]
	i := sort.Search(len(twins), func(i int) bool {
		return value.OrderCompare(twins[i].Key(), key) >= 0
	})
	if i < len(twins) && value.NullEq(twins[i].Key(), key) {
		return nil, fmt.Errorf("ims: duplicate %s key %s under parent", typeName, key)
	}
	twins = append(twins, nil)
	copy(twins[i+1:], twins[i:])
	twins[i] = seg
	parent.children[typeName] = twins
	return seg, nil
}

// Roots returns the key-sequenced root occurrences.
func (db *Database) Roots() []*Segment { return db.roots }

// FindRoot locates a root by key via the HIDAM index (binary search).
func (db *Database) FindRoot(key value.Value) *Segment {
	i := sort.Search(len(db.roots), func(i int) bool {
		return value.OrderCompare(db.roots[i].Key(), key) >= 0
	})
	if i < len(db.roots) && value.NullEq(db.roots[i].Key(), key) {
		return db.roots[i]
	}
	return nil
}
