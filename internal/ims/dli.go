package ims

import (
	"fmt"

	"uniqopt/internal/value"
)

// Status is a DL/I status code.
type Status string

// DL/I status codes used by the simulator: blank = success, GE = not
// found (segment search failed), GB = end of database.
const (
	StatusOK Status = "  "
	StatusGE Status = "GE"
	StatusGB Status = "GB"
)

// CompareOp is a segment-search-argument comparison operator.
type CompareOp uint8

// SSA comparison operators.
const (
	EQ CompareOp = iota
	GT
	GE
	LT
	LE
)

// Qual is a segment search argument qualification: FIELD op VALUE.
type Qual struct {
	Field string
	Op    CompareOp
	Value value.Value
}

// matches tests the qualification against a segment. Comparisons with
// NULL never match (DL/I fields are non-null in this model, but the
// guard keeps behavior total).
func (q Qual) matches(s *Segment) bool {
	v := s.Get(q.Field)
	if v.IsNull() || q.Value.IsNull() {
		return false
	}
	if !value.Comparable(v.Kind(), q.Value.Kind()) {
		return false
	}
	c := value.Compare(v, q.Value)
	switch q.Op {
	case EQ:
		return c == 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	default:
		return false
	}
}

// CallStats counts DL/I activity. Calls are broken down per call type
// and per segment type; SegmentsVisited counts twin-chain occurrences
// inspected (the I/O proxy the OEM-PNO discussion in §6.1 relies on).
type CallStats struct {
	GU, GN, GNP     int64
	CallsBySegment  map[string]int64
	SegmentsVisited int64
	IndexLookups    int64
}

// Total returns the total number of DL/I calls.
func (c *CallStats) Total() int64 { return c.GU + c.GN + c.GNP }

// String renders the counters.
func (c *CallStats) String() string {
	return fmt.Sprintf("GU=%d GN=%d GNP=%d visited=%d index=%d by-segment=%v",
		c.GU, c.GN, c.GNP, c.SegmentsVisited, c.IndexLookups, c.CallsBySegment)
}

// PCB is a program communication block: the application's cursor into
// the hierarchy. It tracks the current root position and, per child
// type, the twin-chain position for GNP continuation.
type PCB struct {
	db       *Database
	rootIdx  int // index of the current root; -1 before first GU/GN
	childPos map[string]int
	Stats    CallStats
}

// NewPCB opens a PCB over the database.
func (db *Database) NewPCB() *PCB {
	return &PCB{
		db:       db,
		rootIdx:  -1,
		childPos: map[string]int{},
		Stats:    CallStats{CallsBySegment: map[string]int64{}},
	}
}

func (p *PCB) count(call string, segType string) {
	switch call {
	case "GU":
		p.Stats.GU++
	case "GN":
		p.Stats.GN++
	case "GNP":
		p.Stats.GNP++
	}
	p.Stats.CallsBySegment[segType]++
}

// resetChildren clears GNP positions (parentage changed).
func (p *PCB) resetChildren() {
	for k := range p.childPos {
		delete(p.childPos, k)
	}
}

// GU (Get Unique) positions at the first root segment satisfying the
// qualifications and establishes parentage. An EQ qualification on the
// root key uses the HIDAM index; otherwise roots are scanned in key
// sequence.
func (p *PCB) GU(segType string, quals ...Qual) (*Segment, Status) {
	p.count("GU", segType)
	if segType != p.db.Root.Name {
		return nil, StatusGE
	}
	// Key-equality fast path through the index.
	if len(quals) == 1 && quals[0].Field == p.db.Root.KeyField && quals[0].Op == EQ {
		p.Stats.IndexLookups++
		if seg := p.db.FindRoot(quals[0].Value); seg != nil {
			p.rootIdx = rootIndexOf(p.db, seg)
			p.resetChildren()
			return seg, StatusOK
		}
		return nil, StatusGE
	}
	for i, seg := range p.db.roots {
		p.Stats.SegmentsVisited++
		if matchesAll(seg, quals) {
			p.rootIdx = i
			p.resetChildren()
			return seg, StatusOK
		}
	}
	return nil, StatusGE
}

// GN (Get Next) advances to the next root segment satisfying the
// qualifications, in hierarchic (key) sequence.
func (p *PCB) GN(segType string, quals ...Qual) (*Segment, Status) {
	p.count("GN", segType)
	if segType != p.db.Root.Name {
		return nil, StatusGE
	}
	for i := p.rootIdx + 1; i < len(p.db.roots); i++ {
		p.Stats.SegmentsVisited++
		seg := p.db.roots[i]
		if matchesAll(seg, quals) {
			p.rootIdx = i
			p.resetChildren()
			return seg, StatusOK
		}
		// Early termination on a key-qualified scan: roots are
		// key-sequenced, so once past an upper bound nothing matches.
		if keyUpperBoundExceeded(seg, p.db.Root.KeyField, quals) {
			break
		}
	}
	p.rootIdx = len(p.db.roots)
	return nil, StatusGB
}

// GNP (Get Next within Parent) advances to the next child of the
// current root matching the qualifications. Successive GNP calls with
// the same segment type continue along the twin chain. When the twin
// chain is key-sequenced and the qualification is an equality or upper
// bound on the key field, the scan stops as soon as the next twin's
// key passes the bound — the behavior Example 10's cost argument uses.
func (p *PCB) GNP(segType string, quals ...Qual) (*Segment, Status) {
	p.count("GNP", segType)
	if p.rootIdx < 0 || p.rootIdx >= len(p.db.roots) {
		return nil, StatusGE
	}
	parent := p.db.roots[p.rootIdx]
	ct := parent.Type.child(segType)
	if ct == nil {
		return nil, StatusGE
	}
	twins := parent.children[segType]
	for i := p.childPos[segType]; i < len(twins); i++ {
		p.Stats.SegmentsVisited++
		seg := twins[i]
		if matchesAll(seg, quals) {
			p.childPos[segType] = i + 1
			return seg, StatusOK
		}
		if keyUpperBoundExceeded(seg, ct.KeyField, quals) {
			p.childPos[segType] = len(twins)
			return nil, StatusGE
		}
	}
	p.childPos[segType] = len(twins)
	return nil, StatusGE
}

func rootIndexOf(db *Database, seg *Segment) int {
	for i, s := range db.roots {
		if s == seg {
			return i
		}
	}
	return -1
}

func matchesAll(seg *Segment, quals []Qual) bool {
	for _, q := range quals {
		if !q.matches(seg) {
			return false
		}
	}
	return true
}

// keyUpperBoundExceeded reports whether a key-sequenced scan can stop:
// some qualification bounds the key field from above (EQ, LT, LE) and
// the current segment's key already exceeds the bound.
func keyUpperBoundExceeded(seg *Segment, keyField string, quals []Qual) bool {
	for _, q := range quals {
		if q.Field != keyField {
			continue
		}
		v := seg.Get(keyField)
		if v.IsNull() || q.Value.IsNull() || !value.Comparable(v.Kind(), q.Value.Kind()) {
			continue
		}
		c := value.Compare(v, q.Value)
		switch q.Op {
		case EQ, LE:
			if c > 0 {
				return true
			}
		case LT:
			if c >= 0 {
				return true
			}
		}
	}
	return false
}
