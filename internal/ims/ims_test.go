package ims

import (
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
	"uniqopt/internal/workload"
)

// buildDB creates a hierarchy with n suppliers, each with parts
// PNO 1..fanout. Part PNO=target exists for every supplier iff
// withTarget; OEM-PNO is 1000*SNO+PNO.
func buildDB(t testing.TB, n, fanout int) *Database {
	t.Helper()
	db := NewDatabase(Schema())
	for s := 1; s <= n; s++ {
		root, err := db.InsertRoot(map[string]value.Value{
			"SNO": value.Int(int64(s)), "SNAME": value.String_("n"),
			"SCITY": value.String_("Toronto"), "BUDGET": value.Int(1),
			"STATUS": value.String_("Active"),
		})
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= fanout; p++ {
			if _, err := db.InsertChild(root, "PARTS", map[string]value.Value{
				"PNO": value.Int(int64(p)), "PNAME": value.String_("p"),
				"OEM-PNO": value.Int(int64(1000*s + p)), "COLOR": value.String_("RED"),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestInsertValidation(t *testing.T) {
	db := NewDatabase(Schema())
	root, err := db.InsertRoot(map[string]value.Value{"SNO": value.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertRoot(map[string]value.Value{"SNO": value.Int(1)}); err == nil {
		t.Error("duplicate root key should fail")
	}
	if _, err := db.InsertRoot(map[string]value.Value{"SNO": value.Null}); err == nil {
		t.Error("NULL root key should fail")
	}
	if _, err := db.InsertChild(root, "NOPE", nil); err == nil {
		t.Error("unknown child type should fail")
	}
	if _, err := db.InsertChild(root, "PARTS", map[string]value.Value{"PNO": value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertChild(root, "PARTS", map[string]value.Value{"PNO": value.Int(1)}); err == nil {
		t.Error("duplicate child key under one parent should fail")
	}
}

func TestRootsKeySequenced(t *testing.T) {
	db := NewDatabase(Schema())
	for _, k := range []int64{5, 1, 3, 2, 4} {
		if _, err := db.InsertRoot(map[string]value.Value{"SNO": value.Int(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, seg := range db.Roots() {
		if seg.Key().AsInt() != int64(i+1) {
			t.Fatalf("roots not key-sequenced: %v at %d", seg.Key(), i)
		}
	}
	if db.FindRoot(value.Int(3)) == nil || db.FindRoot(value.Int(9)) != nil {
		t.Error("FindRoot wrong")
	}
}

func TestGUGNTraversal(t *testing.T) {
	db := buildDB(t, 3, 2)
	pcb := db.NewPCB()
	seg, st := pcb.GU("SUPPLIER")
	if st != StatusOK || seg.Key().AsInt() != 1 {
		t.Fatalf("GU = %v, %q", seg, st)
	}
	seg, st = pcb.GN("SUPPLIER")
	if st != StatusOK || seg.Key().AsInt() != 2 {
		t.Fatalf("GN = %v, %q", seg, st)
	}
	_, _ = pcb.GN("SUPPLIER")
	_, st = pcb.GN("SUPPLIER")
	if st != StatusGB {
		t.Errorf("end of database should be GB, got %q", st)
	}
	if pcb.Stats.GU != 1 || pcb.Stats.GN != 3 {
		t.Errorf("stats = %s", pcb.Stats.String())
	}
}

func TestGUKeyUsesIndex(t *testing.T) {
	db := buildDB(t, 100, 1)
	pcb := db.NewPCB()
	seg, st := pcb.GU("SUPPLIER", Qual{Field: "SNO", Op: EQ, Value: value.Int(42)})
	if st != StatusOK || seg.Key().AsInt() != 42 {
		t.Fatalf("GU by key = %v, %q", seg, st)
	}
	if pcb.Stats.IndexLookups != 1 || pcb.Stats.SegmentsVisited != 0 {
		t.Errorf("index path not taken: %s", pcb.Stats.String())
	}
}

func TestGNPTwinChain(t *testing.T) {
	db := buildDB(t, 1, 4)
	pcb := db.NewPCB()
	if _, st := pcb.GU("SUPPLIER"); st != StatusOK {
		t.Fatal("GU failed")
	}
	var keys []int64
	for {
		seg, st := pcb.GNP("PARTS")
		if st != StatusOK {
			break
		}
		keys = append(keys, seg.Key().AsInt())
	}
	if len(keys) != 4 || keys[0] != 1 || keys[3] != 4 {
		t.Errorf("twin chain = %v", keys)
	}
	// GNP before any GU fails.
	pcb2 := db.NewPCB()
	if _, st := pcb2.GNP("PARTS"); st != StatusGE {
		t.Error("GNP without parentage should be GE")
	}
}

func TestGNPKeyQualifiedEarlyStop(t *testing.T) {
	db := buildDB(t, 1, 10)
	pcb := db.NewPCB()
	pcb.GU("SUPPLIER")
	seg, st := pcb.GNP("PARTS", Qual{Field: "PNO", Op: EQ, Value: value.Int(3)})
	if st != StatusOK || seg.Key().AsInt() != 3 {
		t.Fatalf("GNP = %v, %q", seg, st)
	}
	// Visited the root (unqualified GU) plus exactly 3 twins (keys
	// 1, 2, 3).
	if pcb.Stats.SegmentsVisited != 4 {
		t.Errorf("visited = %d, want 4", pcb.Stats.SegmentsVisited)
	}
	// Second qualified GNP: key-sequenced chain, next twin has key 4 >
	// 3 → GE after visiting exactly one more segment.
	_, st = pcb.GNP("PARTS", Qual{Field: "PNO", Op: EQ, Value: value.Int(3)})
	if st != StatusGE {
		t.Errorf("second GNP = %q, want GE", st)
	}
	if pcb.Stats.SegmentsVisited != 5 {
		t.Errorf("visited = %d, want 5 (early stop)", pcb.Stats.SegmentsVisited)
	}
}

func TestGNPNonKeyScansAll(t *testing.T) {
	db := buildDB(t, 1, 10)
	pcb := db.NewPCB()
	pcb.GU("SUPPLIER")
	// OEM-PNO = 1003 is the third twin, but OEM-PNO is not the
	// sequence field: after the match, the follow-up scan must visit
	// all remaining twins.
	seg, st := pcb.GNP("PARTS", Qual{Field: "OEM-PNO", Op: EQ, Value: value.Int(1003)})
	if st != StatusOK || seg.Get("OEM-PNO").AsInt() != 1003 {
		t.Fatalf("GNP = %v, %q", seg, st)
	}
	if pcb.Stats.SegmentsVisited != 4 { // root + 3 twins
		t.Errorf("visited = %d, want 4", pcb.Stats.SegmentsVisited)
	}
	_, st = pcb.GNP("PARTS", Qual{Field: "OEM-PNO", Op: EQ, Value: value.Int(1003)})
	if st != StatusGE {
		t.Errorf("follow-up = %q", st)
	}
	if pcb.Stats.SegmentsVisited != 11 { // root + all 10 twins
		t.Errorf("visited = %d, want 11 (no early stop on non-key field)", pcb.Stats.SegmentsVisited)
	}
}

// Example 10's headline claim: when every supplier has the target
// part, the nested strategy issues exactly half the GNP calls against
// PARTS that the join strategy does.
func TestExample10HalvesPartsCalls(t *testing.T) {
	db := buildDB(t, 50, 5)
	target := value.Int(3) // every supplier has PNO 3
	join := db.JoinStrategy("PNO", target)
	nested := db.NestedStrategy("PNO", target)
	if len(join.Output) != 50 || len(nested.Output) != 50 {
		t.Fatalf("outputs: join=%d nested=%d, want 50", len(join.Output), len(nested.Output))
	}
	jp := join.Stats.CallsBySegment["PARTS"]
	np := nested.Stats.CallsBySegment["PARTS"]
	if jp != 100 || np != 50 {
		t.Errorf("PARTS calls: join=%d nested=%d, want 100 and 50 (the paper's halving)", jp, np)
	}
	// Same SUPPLIER call counts in both strategies.
	if join.Stats.GU != nested.Stats.GU || join.Stats.GN != nested.Stats.GN {
		t.Error("supplier traversal should be identical")
	}
}

// The OEM-PNO variant: non-key qualification makes the join strategy
// scan every twin chain to the end, so the rewrite saves more than
// half the segment visits.
func TestExample10NonKeySavesMore(t *testing.T) {
	db := buildDB(t, 50, 8)
	// Supplier s has OEM 1000*s+4 on its 4th twin.
	join := db.JoinStrategy("OEM-PNO", value.Int(1004))
	nested := db.NestedStrategy("OEM-PNO", value.Int(1004))
	if len(join.Output) != 1 || len(nested.Output) != 1 {
		t.Fatalf("outputs: join=%d nested=%d, want 1", len(join.Output), len(nested.Output))
	}
	if nested.Stats.SegmentsVisited >= join.Stats.SegmentsVisited {
		t.Errorf("nested (%d visits) should beat join (%d visits)",
			nested.Stats.SegmentsVisited, join.Stats.SegmentsVisited)
	}
}

// Both strategies must agree with each other on arbitrary data (they
// compute the same query).
func TestStrategiesEquivalentOnWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 60
	cfg.PartsPerSupplier = 7
	rel, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := FromRelational(rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, pno := range []int64{1, 4, 7, 99} {
		join := db.JoinStrategy("PNO", value.Int(pno))
		nested := db.NestedStrategy("PNO", value.Int(pno))
		if len(join.Output) != len(nested.Output) {
			t.Fatalf("PNO=%d: join=%d nested=%d rows", pno, len(join.Output), len(nested.Output))
		}
		for i := range join.Output {
			if join.Output[i] != nested.Output[i] {
				t.Fatalf("PNO=%d: row %d differs", pno, i)
			}
		}
		if nested.Stats.CallsBySegment["PARTS"] > join.Stats.CallsBySegment["PARTS"] {
			t.Errorf("PNO=%d: nested issued more PARTS calls", pno)
		}
	}
}

func TestRangeStrategy(t *testing.T) {
	db := buildDB(t, 30, 3)
	lo, hi := value.Int(10), value.Int(20)
	join := db.JoinStrategyRange(lo, hi, "PNO", value.Int(2), false)
	nested := db.JoinStrategyRange(lo, hi, "PNO", value.Int(2), true)
	if len(join.Output) != 11 || len(nested.Output) != 11 {
		t.Fatalf("outputs: join=%d nested=%d, want 11 (SNO 10..20)", len(join.Output), len(nested.Output))
	}
	if nested.Stats.Total() >= join.Stats.Total() {
		t.Errorf("nested total calls (%d) should beat join (%d)",
			nested.Stats.Total(), join.Stats.Total())
	}
}

func TestFromRelationalRejectsOrphans(t *testing.T) {
	// The workload schema declares PARTS.SNO → SUPPLIER(SNO), so the
	// storage layer already rejects the orphan insert...
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 3
	rel, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert("PARTS", []value.Value{
		value.Int(99), value.Int(1), value.String_("x"), value.Int(1), value.String_("RED"),
	}); err == nil {
		t.Fatal("storage should reject the orphan via the FOREIGN KEY")
	}
	// ...but FromRelational must also defend itself when the source
	// schema declares no inclusion dependency.
	c := catalog.New()
	for _, ddl := range []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR,
			BUDGET INTEGER, STATUS VARCHAR, PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR,
			OEM-PNO INTEGER, COLOR VARCHAR, PRIMARY KEY (SNO, PNO))`,
	} {
		st, err := parser.ParseStatement(ddl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	bare := storage.NewDB(c)
	if err := bare.Insert("PARTS", []value.Value{
		value.Int(99), value.Int(1), value.String_("x"), value.Int(1), value.String_("RED"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromRelational(bare); err == nil {
		t.Error("orphan PARTS row should be rejected by the loader")
	}
}

// Round trip: relational → HIDAM → relational preserves every row, and
// the extraction's DL/I cost is visible (the post-processing layer's
// "increased cost" of §6.1).
func TestRelationalRoundTrip(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Suppliers = 40
	cfg.PartsPerSupplier = 3
	src, err := workload.NewDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdb, err := FromRelational(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := storage.NewDB(workload.BenchCatalog())
	stats, err := hdb.ToRelational(dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SUPPLIER", "PARTS", "AGENTS"} {
		a, b := src.MustTable(name), dst.MustTable(name)
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d vs %d rows", name, a.Len(), b.Len())
		}
		// Every source row exists in the destination (by primary key).
		for i := 0; i < a.Len(); i++ {
			row := a.Row(i)
			key := make(value.Row, len(a.Schema.Keys[0].Columns))
			for k, ci := range a.Schema.Keys[0].Columns {
				key[k] = row[ci]
			}
			if b.LookupKey(0, key) < 0 {
				t.Fatalf("%s: row %v lost in round trip", name, row)
			}
		}
	}
	// Extraction walks every segment: GU+GN per root (+ final GB) and
	// a GNP per child plus one GE per chain per type.
	wantGN := int64(40) // 39 successes + final GB
	if stats.GU != 1 || stats.GN != wantGN {
		t.Errorf("root traversal stats = %s", stats.String())
	}
	if stats.GNP != int64(40*3+40 /*parts+GE*/ +40*2+40 /*agents+GE*/) {
		t.Errorf("child traversal GNP = %d", stats.GNP)
	}
}
