package engine

import (
	"context"

	"uniqopt/internal/fault"
	"uniqopt/internal/value"
)

// IntersectSort implements INTERSECT [ALL] the way the paper says
// typical optimizers do (§5.3): evaluate each operand, sort each
// result, and merge. Tuple equivalence is ≐ (NULL ≐ NULL). This is
// the baseline strategy whose two sorts the Theorem 3 rewrite avoids.
func IntersectSort(ctx context.Context, st *Stats, l, r *Relation, all bool) (*Relation, error) {
	if err := fault.Point(FaultSort); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	ls, err := sortedCopy(&g, st, l)
	if err != nil {
		return nil, err
	}
	rs, err := sortedCopy(&g, st, r)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: l.Cols}
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		if err := g.step(); err != nil {
			return nil, err
		}
		st.Comparisons++
		c := value.OrderCompareRows(ls[i], rs[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Runs of equal rows on both sides.
			i2 := runEnd(st, ls, i)
			j2 := runEnd(st, rs, j)
			n := i2 - i
			if m := j2 - j; m < n {
				n = m
			}
			if !all {
				n = 1
			}
			for k := 0; k < n; k++ {
				out.Rows = append(out.Rows, ls[i])
				if err := g.keep(ls[i]); err != nil {
					return nil, err
				}
			}
			i, j = i2, j2
		}
	}
	return out, g.finish()
}

// ExceptSort implements EXCEPT [ALL] by sorting and merging, with the
// same ≐ semantics: EXCEPT emits each left-distinct row absent from
// the right once; EXCEPT ALL emits max(j−k, 0) occurrences.
func ExceptSort(ctx context.Context, st *Stats, l, r *Relation, all bool) (*Relation, error) {
	if err := fault.Point(FaultSort); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	ls, err := sortedCopy(&g, st, l)
	if err != nil {
		return nil, err
	}
	rs, err := sortedCopy(&g, st, r)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: l.Cols}
	i, j := 0, 0
	for i < len(ls) {
		if err := g.step(); err != nil {
			return nil, err
		}
		i2 := runEnd(st, ls, i)
		// Advance the right side to the first run not below ls[i].
		for j < len(rs) {
			st.Comparisons++
			if value.OrderCompareRows(rs[j], ls[i]) >= 0 {
				break
			}
			j++
		}
		matched := 0
		if j < len(rs) {
			st.Comparisons++
			if value.OrderCompareRows(rs[j], ls[i]) == 0 {
				j2 := runEnd(st, rs, j)
				matched = j2 - j
				j = j2
			}
		}
		if all {
			for k := 0; k < (i2-i)-matched; k++ {
				out.Rows = append(out.Rows, ls[i])
				if err := g.keep(ls[i]); err != nil {
					return nil, err
				}
			}
		} else if matched == 0 {
			out.Rows = append(out.Rows, ls[i])
			if err := g.keep(ls[i]); err != nil {
				return nil, err
			}
		}
		i = i2
	}
	return out, g.finish()
}

// sortedCopy sorts a copy of the relation's rows, fully instrumented,
// charging the sort buffer to the lifecycle guard.
func sortedCopy(g *guard, st *Stats, rel *Relation) ([]value.Row, error) {
	rows := append([]value.Row(nil), rel.Rows...)
	if err := g.keepN(rows); err != nil {
		return nil, err
	}
	st.SortRuns++
	st.RowsSorted += int64(len(rows))
	sortRowsBy(rows, func(a, b value.Row) int {
		st.Comparisons++
		return value.OrderCompareRows(a, b)
	})
	return rows, nil
}

// runEnd returns the end index of the run of ≐-equal rows starting at i.
func runEnd(st *Stats, rows []value.Row, i int) int {
	j := i + 1
	for j < len(rows) {
		st.Comparisons++
		if !value.NullEqRows(rows[j], rows[i]) {
			break
		}
		j++
	}
	return j
}
