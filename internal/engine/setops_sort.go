package engine

import "uniqopt/internal/value"

// IntersectSort implements INTERSECT [ALL] the way the paper says
// typical optimizers do (§5.3): evaluate each operand, sort each
// result, and merge. Tuple equivalence is ≐ (NULL ≐ NULL). This is
// the baseline strategy whose two sorts the Theorem 3 rewrite avoids.
func IntersectSort(st *Stats, l, r *Relation, all bool) *Relation {
	ls := sortedCopy(st, l)
	rs := sortedCopy(st, r)
	out := &Relation{Cols: l.Cols}
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		st.Comparisons++
		c := value.OrderCompareRows(ls[i], rs[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Runs of equal rows on both sides.
			i2 := runEnd(st, ls, i)
			j2 := runEnd(st, rs, j)
			n := i2 - i
			if m := j2 - j; m < n {
				n = m
			}
			if !all {
				n = 1
			}
			for k := 0; k < n; k++ {
				out.Rows = append(out.Rows, ls[i])
			}
			i, j = i2, j2
		}
	}
	return out
}

// ExceptSort implements EXCEPT [ALL] by sorting and merging, with the
// same ≐ semantics: EXCEPT emits each left-distinct row absent from
// the right once; EXCEPT ALL emits max(j−k, 0) occurrences.
func ExceptSort(st *Stats, l, r *Relation, all bool) *Relation {
	ls := sortedCopy(st, l)
	rs := sortedCopy(st, r)
	out := &Relation{Cols: l.Cols}
	i, j := 0, 0
	for i < len(ls) {
		i2 := runEnd(st, ls, i)
		// Advance the right side to the first run not below ls[i].
		for j < len(rs) {
			st.Comparisons++
			if value.OrderCompareRows(rs[j], ls[i]) >= 0 {
				break
			}
			j++
		}
		matched := 0
		if j < len(rs) {
			st.Comparisons++
			if value.OrderCompareRows(rs[j], ls[i]) == 0 {
				j2 := runEnd(st, rs, j)
				matched = j2 - j
				j = j2
			}
		}
		if all {
			for k := 0; k < (i2-i)-matched; k++ {
				out.Rows = append(out.Rows, ls[i])
			}
		} else if matched == 0 {
			out.Rows = append(out.Rows, ls[i])
		}
		i = i2
	}
	return out
}

// sortedCopy sorts a copy of the relation's rows, fully instrumented.
func sortedCopy(st *Stats, rel *Relation) []value.Row {
	rows := append([]value.Row(nil), rel.Rows...)
	st.SortRuns++
	st.RowsSorted += int64(len(rows))
	sortRowsBy(rows, func(a, b value.Row) int {
		st.Comparisons++
		return value.OrderCompareRows(a, b)
	})
	return rows
}

// runEnd returns the end index of the run of ≐-equal rows starting at i.
func runEnd(st *Stats, rows []value.Row, i int) int {
	j := i + 1
	for j < len(rows) {
		st.Comparisons++
		if !value.NullEqRows(rows[j], rows[i]) {
			break
		}
		j++
	}
	return j
}
