package engine

import (
	"context"

	"uniqopt/internal/eval"
	"uniqopt/internal/fault"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// Every operator takes the query's context and threads it into a
// lifecycle guard (lifecycle.go): cooperative cancellation polls per
// row, batched budget charges at materialization points, and a typed
// error return instead of an internal panic. Serial and parallel paths
// enforce the same lifecycle.

// Scan materializes a base table as a relation whose columns are
// qualified with the correlation name corr.
func Scan(ctx context.Context, st *Stats, tbl *storage.Table, corr string) (*Relation, error) {
	if err := fault.Point(FaultScan); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	cols := make([]string, len(tbl.Schema.Columns))
	for i, c := range tbl.Schema.Columns {
		cols[i] = corr + "." + c.Name
	}
	out := &Relation{Cols: cols, Rows: make([]value.Row, tbl.Len())}
	for i := 0; i < tbl.Len(); i++ {
		if err := g.step(); err != nil {
			return nil, err
		}
		out.Rows[i] = tbl.Row(i)
		if err := g.keep(out.Rows[i]); err != nil {
			return nil, err
		}
	}
	st.RowsScanned += int64(tbl.Len())
	return out, g.finish()
}

// bindRow loads a relation row into an environment's column map.
func bindRow(env *eval.Env, cols []string, row value.Row) {
	for i, c := range cols {
		env.Cols[c] = row[i]
	}
}

// Filter returns the rows of rel that satisfy pred under the
// false-interpreted WHERE semantics. envProto supplies host variables,
// outer-block column bindings, and the EXISTS evaluator; its Cols map
// is extended with rel's columns per row.
func Filter(ctx context.Context, st *Stats, rel *Relation, pred ast.Expr, envProto *eval.Env) (*Relation, error) {
	if pred == nil {
		return rel, nil
	}
	if err := fault.Point(FaultFilter); err != nil {
		return nil, err
	}
	if w, ok := shouldParallel(len(rel.Rows)); ok && !ast.HasExists(pred) {
		// Subquery-bearing predicates stay serial: their evaluation
		// callbacks recurse into shared executor state.
		return ParallelFilter(ctx, st, rel, pred, envProto, w)
	}
	g := newGuard(ctx, st)
	env := &eval.Env{
		Cols:   make(map[string]value.Value, len(rel.Cols)+len(envProto.Cols)),
		Hosts:  envProto.Hosts,
		Exists: envProto.Exists,
	}
	for k, v := range envProto.Cols {
		env.Cols[k] = v
	}
	out := &Relation{Cols: rel.Cols}
	for _, row := range rel.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		bindRow(env, rel.Cols, row)
		ok, err := eval.Qualifies(pred, env)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

// Product computes the extended Cartesian product l × r.
func Product(ctx context.Context, st *Stats, l, r *Relation) (*Relation, error) {
	g := newGuard(ctx, st)
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}
	// Cap the pre-allocation: sizing for the full cross product would
	// commit its entire footprint before cancellation or the budget
	// gets a chance to stop the query.
	if n := len(l.Rows) * len(r.Rows); n > 0 && n <= 1<<16 {
		out.Rows = make([]value.Row, 0, n)
	}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			if err := g.step(); err != nil {
				return nil, err
			}
			st.JoinPairs++
			row := make(value.Row, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

// NestedLoopJoin joins l and r with an arbitrary predicate, examining
// every pair.
func NestedLoopJoin(ctx context.Context, st *Stats, l, r *Relation, pred ast.Expr, envProto *eval.Env) (*Relation, error) {
	g := newGuard(ctx, st)
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}
	env := &eval.Env{
		Cols:   make(map[string]value.Value, len(out.Cols)+len(envProto.Cols)),
		Hosts:  envProto.Hosts,
		Exists: envProto.Exists,
	}
	for k, v := range envProto.Cols {
		env.Cols[k] = v
	}
	for _, lr := range l.Rows {
		bindRow(env, l.Cols, lr)
		for _, rr := range r.Rows {
			if err := g.step(); err != nil {
				return nil, err
			}
			st.JoinPairs++
			bindRow(env, r.Cols, rr)
			ok, err := eval.Qualifies(pred, env)
			if err != nil {
				return nil, err
			}
			if ok {
				row := make(value.Row, 0, len(lr)+len(rr))
				row = append(row, lr...)
				row = append(row, rr...)
				out.Rows = append(out.Rows, row)
				if err := g.keep(row); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, g.finish()
}

// HashJoin equi-joins l and r on lKeys = rKeys (by column name).
// WHERE-clause equality semantics apply: rows with NULL join keys
// never match.
func HashJoin(ctx context.Context, st *Stats, l, r *Relation, lKeys, rKeys []string) (*Relation, error) {
	if err := fault.Point(FaultHashBuild); err != nil {
		return nil, err
	}
	if w, ok := shouldParallel(len(l.Rows) + len(r.Rows)); ok {
		return ParallelHashJoin(ctx, st, l, r, lKeys, rKeys, w)
	}
	li, err := l.colIndexes(lKeys)
	if err != nil {
		return nil, err
	}
	ri, err := r.colIndexes(rKeys)
	if err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}

	// Build on the right input, probe the left. The build side is fixed
	// (not chosen by size) so that serial, parallel, and streaming
	// execution emit identical row orders: a streaming join cannot know
	// its inputs' sizes up front, so every path builds right.
	ht := newRowTable(len(r.Rows))
	key := make(value.Row, len(ri))
	for _, row := range r.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		if hasNullAt(row, ri) {
			continue
		}
		for i, c := range ri {
			key[i] = row[c]
		}
		ht.insert(hashRow(key), row)
		st.HashInserts++
		if err := g.keep(row); err != nil {
			return nil, err
		}
	}
	if err := fault.Point(FaultHashProbe); err != nil {
		return nil, err
	}
	pkey := make(value.Row, len(li))
	arena := rowArena{width: len(l.Cols) + len(r.Cols)}
	for _, prow := range l.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		if hasNullAt(prow, li) {
			continue
		}
		for i, c := range li {
			pkey[i] = prow[c]
		}
		st.HashProbes++
		for e := ht.find(hashRow(pkey)); e != rtNone; e = ht.entries[e].next {
			brow := ht.entries[e].row
			st.JoinPairs++
			if !equalAt(prow, li, brow, ri, st) {
				continue
			}
			row := arena.next()
			n := copy(row, prow)
			copy(row[n:], brow)
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

func hasNullAt(row value.Row, idx []int) bool {
	for _, i := range idx {
		if row[i].IsNull() {
			return true
		}
	}
	return false
}

func equalAt(a value.Row, ai []int, b value.Row, bi []int, st *Stats) bool {
	for k := range ai {
		st.Comparisons++
		if value.Compare(a[ai[k]], b[bi[k]]) != 0 {
			return false
		}
	}
	return true
}

// MergeJoin equi-joins two relations by sorting both on their join
// keys and merging. NULL keys never match (WHERE semantics).
func MergeJoin(ctx context.Context, st *Stats, l, r *Relation, lKeys, rKeys []string) (*Relation, error) {
	if err := fault.Point(FaultSort); err != nil {
		return nil, err
	}
	li, err := l.colIndexes(lKeys)
	if err != nil {
		return nil, err
	}
	ri, err := r.colIndexes(rKeys)
	if err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	ls := append([]value.Row(nil), l.Rows...)
	rs := append([]value.Row(nil), r.Rows...)
	// The sort buffers are materializations: charge them up front.
	if err := g.keepN(ls); err != nil {
		return nil, err
	}
	if err := g.keepN(rs); err != nil {
		return nil, err
	}
	SortRowsOn(st, ls, li)
	SortRowsOn(st, rs, ri)
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}
	i, j := 0, 0
	for i < len(ls) && j < len(rs) {
		if err := g.step(); err != nil {
			return nil, err
		}
		c := compareAt(ls[i], li, rs[j], ri, st)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			if hasNullAt(ls[i], li) {
				// NULL keys sort together but never join.
				i++
				continue
			}
			// Find the run of equal keys on each side.
			i2 := i + 1
			for i2 < len(ls) && compareAt(ls[i2], li, ls[i], li, st) == 0 {
				i2++
			}
			j2 := j + 1
			for j2 < len(rs) && compareAt(rs[j2], ri, rs[j], ri, st) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					st.JoinPairs++
					row := make(value.Row, 0, len(ls[x])+len(rs[y]))
					row = append(row, ls[x]...)
					row = append(row, rs[y]...)
					out.Rows = append(out.Rows, row)
					if err := g.keep(row); err != nil {
						return nil, err
					}
				}
			}
			i, j = i2, j2
		}
	}
	return out, g.finish()
}

func compareAt(a value.Row, ai []int, b value.Row, bi []int, st *Stats) int {
	for k := range ai {
		st.Comparisons++
		if c := value.OrderCompare(a[ai[k]], b[bi[k]]); c != 0 {
			return c
		}
	}
	return 0
}

// SortRowsOn sorts rows by the given key columns (then by all columns
// as a tiebreak for determinism), counting comparisons and the sort.
func SortRowsOn(st *Stats, rows []value.Row, keyIdx []int) {
	st.SortRuns++
	st.RowsSorted += int64(len(rows))
	sortRowsBy(rows, func(a, b value.Row) int {
		for _, i := range keyIdx {
			st.Comparisons++
			if c := value.OrderCompare(a[i], b[i]); c != 0 {
				return c
			}
		}
		return 0
	})
}

// Project projects rel onto the named columns, retaining duplicates.
func Project(ctx context.Context, st *Stats, rel *Relation, cols []string) (*Relation, error) {
	if w, ok := shouldParallel(len(rel.Rows)); ok {
		return ParallelProject(ctx, st, rel, cols, w)
	}
	idx, err := rel.colIndexes(cols)
	if err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	out := &Relation{Cols: append([]string(nil), cols...)}
	out.Rows = make([]value.Row, len(rel.Rows))
	for ri, row := range rel.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		nr := make(value.Row, len(idx))
		for i, c := range idx {
			nr[i] = row[c]
		}
		out.Rows[ri] = nr
		if err := g.keep(nr); err != nil {
			return nil, err
		}
	}
	return out, g.finish()
}

// DistinctSort removes duplicate rows (≐ semantics: NULL ≐ NULL) by
// sorting the whole relation and collapsing runs — the expensive
// operation the paper's optimization avoids.
func DistinctSort(ctx context.Context, st *Stats, rel *Relation) (*Relation, error) {
	if err := fault.Point(FaultDistinct); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	rows := append([]value.Row(nil), rel.Rows...)
	if err := g.keepN(rows); err != nil {
		return nil, err
	}
	st.SortRuns++
	st.RowsSorted += int64(len(rows))
	sortRowsBy(rows, func(a, b value.Row) int {
		st.Comparisons++
		return value.OrderCompareRows(a, b)
	})
	out := &Relation{Cols: rel.Cols}
	for i, row := range rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		if i > 0 {
			st.Comparisons++
			if value.NullEqRows(rows[i-1], row) {
				continue
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, g.finish()
}

// DistinctHash removes duplicate rows (≐ semantics) with a hash table.
func DistinctHash(ctx context.Context, st *Stats, rel *Relation) (*Relation, error) {
	if err := fault.Point(FaultDistinct); err != nil {
		return nil, err
	}
	if w, ok := shouldParallel(len(rel.Rows)); ok {
		return ParallelDistinctHash(ctx, st, rel, w)
	}
	g := newGuard(ctx, st)
	seen := newRowTable(len(rel.Rows))
	out := &Relation{Cols: rel.Cols}
	for _, row := range rel.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		h := hashRow(row)
		st.HashProbes++
		dup := false
		for e := seen.find(h); e != rtNone; e = seen.entries[e].next {
			st.Comparisons++
			if value.NullEqRows(seen.entries[e].row, row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen.insert(h, row)
		st.HashInserts++
		out.Rows = append(out.Rows, row)
		if err := g.keep(row); err != nil {
			return nil, err
		}
	}
	return out, g.finish()
}

// SemiJoinExists filters l to rows for which the EXISTS-style probe
// into r succeeds: some row of r satisfies pred in the combined
// environment. This is the naive nested-loops subquery strategy.
func SemiJoinExists(ctx context.Context, st *Stats, l, r *Relation, pred ast.Expr, envProto *eval.Env) (*Relation, error) {
	g := newGuard(ctx, st)
	out := &Relation{Cols: l.Cols}
	env := &eval.Env{
		Cols:   make(map[string]value.Value, len(l.Cols)+len(r.Cols)+len(envProto.Cols)),
		Hosts:  envProto.Hosts,
		Exists: envProto.Exists,
	}
	for k, v := range envProto.Cols {
		env.Cols[k] = v
	}
	for _, lr := range l.Rows {
		bindRow(env, l.Cols, lr)
		st.SubqueryRuns++
		matched := false
		for _, rr := range r.Rows {
			if err := g.step(); err != nil {
				return nil, err
			}
			st.JoinPairs++
			bindRow(env, r.Cols, rr)
			ok, err := eval.Qualifies(pred, env)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				break
			}
		}
		if matched {
			out.Rows = append(out.Rows, lr)
			if err := g.keep(lr); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

// SemiJoinHash filters l to rows whose key appears in r (equi-probe
// semantics; NULL keys never match). The hash table on r is built
// once — the rewritten strategy Theorem 2 enables.
func SemiJoinHash(ctx context.Context, st *Stats, l, r *Relation, lKeys, rKeys []string) (*Relation, error) {
	if err := fault.Point(FaultSemiBuild); err != nil {
		return nil, err
	}
	if w, ok := shouldParallel(len(l.Rows) + len(r.Rows)); ok {
		return ParallelSemiJoinHash(ctx, st, l, r, lKeys, rKeys, w)
	}
	li, err := l.colIndexes(lKeys)
	if err != nil {
		return nil, err
	}
	ri, err := r.colIndexes(rKeys)
	if err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	ht := make(map[uint64][]value.Row, len(r.Rows))
	key := make(value.Row, len(ri))
	for _, row := range r.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		if hasNullAt(row, ri) {
			continue
		}
		for i, c := range ri {
			key[i] = row[c]
		}
		h := hashRow(key)
		ht[h] = append(ht[h], row)
		st.HashInserts++
		if err := g.keep(row); err != nil {
			return nil, err
		}
	}
	out := &Relation{Cols: l.Cols}
	pkey := make(value.Row, len(li))
	for _, lr := range l.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		if hasNullAt(lr, li) {
			continue
		}
		for i, c := range li {
			pkey[i] = lr[c]
		}
		st.HashProbes++
		for _, rr := range ht[hashRow(pkey)] {
			if equalAt(lr, li, rr, ri, st) {
				out.Rows = append(out.Rows, lr)
				if err := g.keep(lr); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	return out, g.finish()
}

// setOpCounts builds a ≐-keyed multiset counter for a relation,
// charging the hash-table materialization to g.
func setOpCounts(g *guard, st *Stats, rel *Relation) (map[uint64][]countedRow, error) {
	counts := make(map[uint64][]countedRow, len(rel.Rows))
	for _, row := range rel.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		h := hashRow(row)
		st.HashInserts++
		bucket := counts[h]
		found := false
		for i := range bucket {
			st.Comparisons++
			if value.NullEqRows(bucket[i].row, row) {
				bucket[i].n++
				found = true
				break
			}
		}
		if !found {
			bucket = append(bucket, countedRow{row: row, n: 1})
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
		counts[h] = bucket
	}
	return counts, nil
}

// Intersect computes l ∩ r. With all=false duplicates are eliminated
// (INTERSECT); with all=true each row appears min(j,k) times
// (INTERSECT ALL). Tuple equivalence is ≐: NULL columns match NULL.
func Intersect(ctx context.Context, st *Stats, l, r *Relation, all bool) (*Relation, error) {
	if err := fault.Point(FaultSetOp); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	rc, err := setOpCounts(&g, st, r)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: l.Cols}
	emitted := make(map[uint64][]countedRow)
	for _, row := range l.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		h := hashRow(row)
		st.HashProbes++
		bucket := rc[h]
		avail := 0
		bi := -1
		for i := range bucket {
			st.Comparisons++
			if value.NullEqRows(bucket[i].row, row) {
				avail = bucket[i].n
				bi = i
				break
			}
		}
		if avail <= 0 {
			continue
		}
		if all {
			// Emit up to min(j, k): consume one match per emission.
			bucket[bi].n--
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
			continue
		}
		// DISTINCT: emit once per distinct row.
		eb := emitted[h]
		dup := false
		for i := range eb {
			st.Comparisons++
			if value.NullEqRows(eb[i].row, row) {
				dup = true
				break
			}
		}
		if !dup {
			emitted[h] = append(eb, countedRow{row: row, n: 1})
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

// Except computes l − r. With all=false the result is the distinct
// rows of l not occurring in r (EXCEPT); with all=true each row
// appears max(j−k, 0) times (EXCEPT ALL).
func Except(ctx context.Context, st *Stats, l, r *Relation, all bool) (*Relation, error) {
	if err := fault.Point(FaultSetOp); err != nil {
		return nil, err
	}
	g := newGuard(ctx, st)
	rc, err := setOpCounts(&g, st, r)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: l.Cols}
	emitted := make(map[uint64][]countedRow)
	for _, row := range l.Rows {
		if err := g.step(); err != nil {
			return nil, err
		}
		h := hashRow(row)
		st.HashProbes++
		bucket := rc[h]
		bi := -1
		for i := range bucket {
			st.Comparisons++
			if value.NullEqRows(bucket[i].row, row) {
				bi = i
				break
			}
		}
		if all {
			if bi >= 0 && bucket[bi].n > 0 {
				bucket[bi].n-- // cancelled by one occurrence in r
				continue
			}
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
			continue
		}
		// DISTINCT: emit rows of l absent from r, once each.
		if bi >= 0 {
			continue
		}
		eb := emitted[h]
		dup := false
		for i := range eb {
			st.Comparisons++
			if value.NullEqRows(eb[i].row, row) {
				dup = true
				break
			}
		}
		if !dup {
			emitted[h] = append(eb, countedRow{row: row, n: 1})
			out.Rows = append(out.Rows, row)
			if err := g.keep(row); err != nil {
				return nil, err
			}
		}
	}
	return out, g.finish()
}

// IndexScanEq materializes the rows of tbl whose index prefix equals
// key, qualified by corr. The lookup replaces a full scan: only the
// matching rows are counted as scanned.
func IndexScanEq(ctx context.Context, st *Stats, tbl *storage.Table, corr string, ix *storage.OrderedIndex, key value.Row) (*Relation, error) {
	ords, err := ix.Lookup(key)
	if err != nil {
		return nil, err
	}
	st.IndexSeeks++
	return materialize(ctx, st, tbl, corr, ords)
}

// IndexScanRange materializes the rows of tbl whose first index
// column lies in [lo, hi] (nil bound = open end).
func IndexScanRange(ctx context.Context, st *Stats, tbl *storage.Table, corr string, ix *storage.OrderedIndex, lo, hi *value.Value) (*Relation, error) {
	ords := ix.Range(lo, hi)
	st.IndexSeeks++
	return materialize(ctx, st, tbl, corr, ords)
}

func materialize(ctx context.Context, st *Stats, tbl *storage.Table, corr string, ords []int) (*Relation, error) {
	g := newGuard(ctx, st)
	cols := make([]string, len(tbl.Schema.Columns))
	for i, c := range tbl.Schema.Columns {
		cols[i] = corr + "." + c.Name
	}
	out := &Relation{Cols: cols, Rows: make([]value.Row, len(ords))}
	for i, ri := range ords {
		if err := g.step(); err != nil {
			return nil, err
		}
		out.Rows[i] = tbl.Row(ri)
		if err := g.keep(out.Rows[i]); err != nil {
			return nil, err
		}
	}
	st.RowsScanned += int64(len(ords))
	return out, g.finish()
}
