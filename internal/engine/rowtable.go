package engine

import "uniqopt/internal/value"

// rowTable is an insertion-ordered hash multimap from row hashes to
// rows, used by the hash operators in place of
// map[uint64][]value.Row. It is open-addressed on the hash (one probe
// sequence per distinct hash value) and chains same-hash rows through
// an intrusive linked list in insertion order, so iteration over a
// hash's chain visits rows exactly as append would have — a property
// the byte-identical serial/parallel/streaming guarantee relies on
// when hashes collide.
//
// rowTable never shrinks and has no delete; it is built once per
// operator invocation and discarded. Callers own all Stats counting
// (HashProbes, HashInserts, Comparisons) and all equality checking:
// the table only partitions rows by hash.
type rowTable struct {
	// slots[s] holds the first and last entry of the chain whose hash
	// landed in slot s, each offset by +1 so the zero value means
	// "empty" and fresh slot arrays need no sentinel fill pass. tail
	// makes chain append O(1) without walking.
	slots   []rtSlot
	entries []rtEntry
	mask    uint64
}

type rtSlot struct {
	head, tail int32 // entry index + 1; 0 = empty
}

type rtEntry struct {
	hash uint64
	next int32 // next entry with the same hash, -1 at chain end
	row  value.Row
}

const rtNone = int32(-1)

// newRowTable sizes the slot array for hint distinct hashes (growing
// later if the hint was low). The floor is generous (a few KB) so
// streaming operators that cannot know their input size up front do
// not rehash through a dozen doublings on large streams.
func newRowTable(hint int) *rowTable {
	n := 1024
	for n < hint*4/3 && n < 1<<30 {
		n <<= 1
	}
	t := &rowTable{mask: uint64(n - 1), slots: make([]rtSlot, n)}
	if hint > 0 {
		t.entries = make([]rtEntry, 0, hint)
	}
	return t
}

// find returns the index of the first entry whose hash is h, or rtNone.
// Walk the chain via entries[i].next for the remaining same-hash rows.
func (t *rowTable) find(h uint64) int32 {
	i := h & t.mask
	for {
		s := t.slots[i]
		if s.head == 0 {
			return rtNone
		}
		if e := s.head - 1; t.entries[e].hash == h {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// insert appends row to hash h's chain (creating the chain if h is
// new) and returns the new entry's index.
func (t *rowTable) insert(h uint64, row value.Row) int32 {
	if len(t.entries)*4 > len(t.slots)*3 {
		t.grow()
	}
	idx := int32(len(t.entries))
	if len(t.entries) == cap(t.entries) {
		// Grow the entry log 4x by hand: entries carry row pointers,
		// so each relocation pays GC write barriers — fewer, larger
		// moves beat append's default doubling on unsized tables.
		nc := cap(t.entries) * 4
		if nc < 1024 {
			nc = 1024
		}
		ne := make([]rtEntry, len(t.entries), nc)
		copy(ne, t.entries)
		t.entries = ne
	}
	t.entries = append(t.entries, rtEntry{hash: h, next: rtNone, row: row})
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.head == 0 {
			s.head, s.tail = idx+1, idx+1
			return idx
		}
		if t.entries[s.head-1].hash == h {
			t.entries[s.tail-1].next = idx
			s.tail = idx + 1
			return idx
		}
		i = (i + 1) & t.mask
	}
}

// grow quadruples the slot array and relinks every entry. Entries are
// relinked in index order, which preserves each chain's insertion
// order; the 4x factor keeps total rehash work near one pass over the
// final table even when the initial size guess was far too low.
func (t *rowTable) grow() {
	n := len(t.slots) * 4
	t.mask = uint64(n - 1)
	t.slots = make([]rtSlot, n)
	for idx := range t.entries {
		e := &t.entries[idx]
		e.next = rtNone
		i := e.hash & t.mask
		for {
			s := &t.slots[i]
			if s.head == 0 {
				s.head, s.tail = int32(idx)+1, int32(idx)+1
				break
			}
			if t.entries[s.head-1].hash == e.hash {
				t.entries[s.tail-1].next = int32(idx)
				s.tail = int32(idx) + 1
				break
			}
			i = (i + 1) & t.mask
		}
	}
}

// len reports the number of inserted rows.
func (t *rowTable) len() int { return len(t.entries) }
