// Package engine implements a multiset execution engine for the SQL
// subset of the paper: scan, selection, projection with ALL/DISTINCT,
// extended Cartesian product, nested-loop/hash/merge joins, sort- and
// hash-based duplicate elimination, INTERSECT/EXCEPT [ALL], and
// existential semi-joins. Every operator is instrumented with
// counters, because the experiments compare strategies by the work
// they perform (comparisons, sort runs, probes) as well as wall time.
//
// Operators over large inputs automatically run on the partitioned
// parallel path (see parallel.go); serial and parallel execution
// produce byte-identical relations.
package engine

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates operator work counters across an execution.
//
// Within one operator invocation the fields are incremented directly
// by a single goroutine (parallel operators give each worker its own
// Stats instance and merge them). Cross-goroutine accumulation must go
// through Add, which is atomic on the destination: concurrent Add
// calls into a shared Stats are race-free.
type Stats struct {
	RowsScanned  int64 // rows read from base tables
	RowsOutput   int64 // rows produced by the root operator
	Comparisons  int64 // value comparisons in sorts, merges and dedup
	SortRuns     int64 // number of sort operations performed
	RowsSorted   int64 // total rows passed through sorts
	HashProbes   int64 // hash table probes (joins, dedup, set ops)
	HashInserts  int64 // hash table inserts
	JoinPairs    int64 // row pairs examined by join/product operators
	SubqueryRuns int64 // EXISTS subquery evaluations
	IndexSeeks   int64 // ordered-index lookups/range scans
	ParallelRuns int64 // operator invocations that took the parallel path
	ParallelRows int64 // rows processed by parallel operator invocations
	CacheHits    int64 // analyzer verdict/normalization cache hits
	CacheMisses  int64 // analyzer verdict/normalization cache misses

	// Lifecycle-governor accounting (see lifecycle.go). These are
	// charged at every materialization point whether or not a budget
	// is set, so they double as memory-pressure observability.
	RowsMaterialized int64 // rows charged at materialization points
	BytesReserved    int64 // estimated bytes charged at materialization points
}

// fields returns pointers to every counter, pairing s with o, so
// accumulation code cannot silently miss a newly added field.
func (s *Stats) fields(o *Stats) [][2]*int64 {
	return [][2]*int64{
		{&s.RowsScanned, &o.RowsScanned},
		{&s.RowsOutput, &o.RowsOutput},
		{&s.Comparisons, &o.Comparisons},
		{&s.SortRuns, &o.SortRuns},
		{&s.RowsSorted, &o.RowsSorted},
		{&s.HashProbes, &o.HashProbes},
		{&s.HashInserts, &o.HashInserts},
		{&s.JoinPairs, &o.JoinPairs},
		{&s.SubqueryRuns, &o.SubqueryRuns},
		{&s.IndexSeeks, &o.IndexSeeks},
		{&s.ParallelRuns, &o.ParallelRuns},
		{&s.ParallelRows, &o.ParallelRows},
		{&s.CacheHits, &o.CacheHits},
		{&s.CacheMisses, &o.CacheMisses},
		{&s.RowsMaterialized, &o.RowsMaterialized},
		{&s.BytesReserved, &o.BytesReserved},
	}
}

// Add accumulates o into s. The addition is atomic per counter on s,
// so workers may merge into a shared Stats concurrently; o must not be
// mutated concurrently with the call.
func (s *Stats) Add(o Stats) {
	for _, f := range s.fields(&o) {
		if v := *f[1]; v != 0 {
			atomic.AddInt64(f[0], v)
		}
	}
}

// AddCache atomically bumps the analyzer-cache counters.
func (s *Stats) AddCache(hits, misses int64) {
	if hits != 0 {
		atomic.AddInt64(&s.CacheHits, hits)
	}
	if misses != 0 {
		atomic.AddInt64(&s.CacheMisses, misses)
	}
}

// Snapshot returns an atomically loaded copy of s, safe to read while
// other goroutines Add into it.
func (s *Stats) Snapshot() Stats {
	var out Stats
	for _, f := range out.fields(s) {
		*f[0] = atomic.LoadInt64(f[1])
	}
	return out
}

// String renders the counters compactly. Parallel-path and
// analyzer-cache counters are appended only when non-zero, keeping the
// serial rendering stable.
func (s *Stats) String() string {
	c := s.Snapshot()
	out := fmt.Sprintf(
		"scanned=%d output=%d cmp=%d sorts=%d sorted=%d probes=%d inserts=%d pairs=%d subq=%d seeks=%d",
		c.RowsScanned, c.RowsOutput, c.Comparisons, c.SortRuns, c.RowsSorted,
		c.HashProbes, c.HashInserts, c.JoinPairs, c.SubqueryRuns, c.IndexSeeks)
	if c.ParallelRuns > 0 {
		out += fmt.Sprintf(" parruns=%d parrows=%d workers=%d", c.ParallelRuns, c.ParallelRows, Workers())
	}
	if c.RowsMaterialized > 0 {
		out += fmt.Sprintf(" matrows=%d matbytes=%d", c.RowsMaterialized, c.BytesReserved)
	}
	if c.CacheHits+c.CacheMisses > 0 {
		out += fmt.Sprintf(" cachehits=%d cachemisses=%d hitrate=%.0f%%",
			c.CacheHits, c.CacheMisses,
			100*float64(c.CacheHits)/float64(c.CacheHits+c.CacheMisses))
	}
	return out
}
