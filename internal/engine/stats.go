// Package engine implements a multiset execution engine for the SQL
// subset of the paper: scan, selection, projection with ALL/DISTINCT,
// extended Cartesian product, nested-loop/hash/merge joins, sort- and
// hash-based duplicate elimination, INTERSECT/EXCEPT [ALL], and
// existential semi-joins. Every operator is instrumented with
// counters, because the experiments compare strategies by the work
// they perform (comparisons, sort runs, probes) as well as wall time.
//
// Operators over large inputs automatically run on the partitioned
// parallel path (see parallel.go); serial and parallel execution
// produce byte-identical relations.
package engine

import (
	"fmt"
	"sync/atomic"
)

// Stats accumulates operator work counters across an execution.
//
// Within one operator invocation the fields are incremented directly
// by a single goroutine (parallel operators give each worker its own
// Stats instance and merge them). Cross-goroutine accumulation must go
// through Add, which is atomic on the destination: concurrent Add
// calls into a shared Stats are race-free.
type Stats struct {
	RowsScanned  int64 // rows read from base tables
	RowsOutput   int64 // rows produced by the root operator
	Comparisons  int64 // value comparisons in sorts, merges and dedup
	SortRuns     int64 // number of sort operations performed
	RowsSorted   int64 // total rows passed through sorts
	HashProbes   int64 // hash table probes (joins, dedup, set ops)
	HashInserts  int64 // hash table inserts
	JoinPairs    int64 // row pairs examined by join/product operators
	SubqueryRuns int64 // EXISTS subquery evaluations
	IndexSeeks   int64 // ordered-index lookups/range scans
	ParallelRuns int64 // operator invocations that took the parallel path
	ParallelRows int64 // rows processed by parallel operator invocations
	CacheHits    int64 // analyzer verdict/normalization cache hits
	CacheMisses  int64 // analyzer verdict/normalization cache misses
	PlanHits     int64 // physical plan cache hits
	PlanMisses   int64 // physical plan cache misses

	// Lifecycle-governor accounting (see lifecycle.go). These are
	// charged at every materialization point whether or not a budget
	// is set, so they double as memory-pressure observability.
	RowsMaterialized int64 // rows charged at materialization points
	BytesReserved    int64 // estimated bytes charged at materialization points

	// Batches counts the batches emitted by streaming operators
	// (iterator.go); 0 for a fully materializing execution.
	Batches int64

	// WorkersUsed is the effective worker count of the widest parallel
	// dispatch in this execution (0 = fully serial). It is a gauge, not
	// a counter: merging takes the maximum, so a DB-wide accumulation
	// reports the widest fan-out any query achieved. Rendering reads
	// this instead of the current global Workers(), which may have been
	// reconfigured between the run and the render.
	WorkersUsed int64
}

// statField pairs one counter of two Stats values with its merge mode.
type statField struct {
	dst, src *int64
	max      bool // gauge merged by maximum (e.g. WorkersUsed), not sum
}

// fields returns an entry for every struct field, pairing s with o, so
// accumulation code cannot silently miss a newly added field (a
// reflect-based test asserts the enumeration is complete).
func (s *Stats) fields(o *Stats) []statField {
	return []statField{
		{dst: &s.RowsScanned, src: &o.RowsScanned},
		{dst: &s.RowsOutput, src: &o.RowsOutput},
		{dst: &s.Comparisons, src: &o.Comparisons},
		{dst: &s.SortRuns, src: &o.SortRuns},
		{dst: &s.RowsSorted, src: &o.RowsSorted},
		{dst: &s.HashProbes, src: &o.HashProbes},
		{dst: &s.HashInserts, src: &o.HashInserts},
		{dst: &s.JoinPairs, src: &o.JoinPairs},
		{dst: &s.SubqueryRuns, src: &o.SubqueryRuns},
		{dst: &s.IndexSeeks, src: &o.IndexSeeks},
		{dst: &s.ParallelRuns, src: &o.ParallelRuns},
		{dst: &s.ParallelRows, src: &o.ParallelRows},
		{dst: &s.CacheHits, src: &o.CacheHits},
		{dst: &s.CacheMisses, src: &o.CacheMisses},
		{dst: &s.PlanHits, src: &o.PlanHits},
		{dst: &s.PlanMisses, src: &o.PlanMisses},
		{dst: &s.RowsMaterialized, src: &o.RowsMaterialized},
		{dst: &s.BytesReserved, src: &o.BytesReserved},
		{dst: &s.Batches, src: &o.Batches},
		{dst: &s.WorkersUsed, src: &o.WorkersUsed, max: true},
	}
}

// atomicMax raises *p to v unless it is already at least v.
func atomicMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// Add accumulates o into s. The merge is atomic per counter on s, so
// workers may merge into a shared Stats concurrently; o must not be
// mutated concurrently with the call. Counters are summed; gauges
// (WorkersUsed) take the maximum.
func (s *Stats) Add(o Stats) {
	for _, f := range s.fields(&o) {
		v := *f.src
		if v == 0 {
			continue
		}
		if f.max {
			atomicMax(f.dst, v)
		} else {
			atomic.AddInt64(f.dst, v)
		}
	}
}

// NoteWorkers records that a parallel operator dispatched onto n
// workers, keeping the execution's widest fan-out.
func (s *Stats) NoteWorkers(n int) {
	atomicMax(&s.WorkersUsed, int64(n))
}

// AddCache atomically bumps the analyzer-cache counters.
func (s *Stats) AddCache(hits, misses int64) {
	if hits != 0 {
		atomic.AddInt64(&s.CacheHits, hits)
	}
	if misses != 0 {
		atomic.AddInt64(&s.CacheMisses, misses)
	}
}

// AddPlanCache atomically bumps the plan-cache counters.
func (s *Stats) AddPlanCache(hits, misses int64) {
	if hits != 0 {
		atomic.AddInt64(&s.PlanHits, hits)
	}
	if misses != 0 {
		atomic.AddInt64(&s.PlanMisses, misses)
	}
}

// Snapshot returns an atomically loaded copy of s, safe to read while
// other goroutines Add into it.
func (s *Stats) Snapshot() Stats {
	var out Stats
	for _, f := range out.fields(s) {
		*f.dst = atomic.LoadInt64(f.src)
	}
	return out
}

// String renders the counters compactly. Parallel-path and
// analyzer-cache counters are appended only when non-zero, keeping the
// serial rendering stable.
func (s *Stats) String() string {
	c := s.Snapshot()
	out := fmt.Sprintf(
		"scanned=%d output=%d cmp=%d sorts=%d sorted=%d probes=%d inserts=%d pairs=%d subq=%d seeks=%d",
		c.RowsScanned, c.RowsOutput, c.Comparisons, c.SortRuns, c.RowsSorted,
		c.HashProbes, c.HashInserts, c.JoinPairs, c.SubqueryRuns, c.IndexSeeks)
	if c.ParallelRuns > 0 {
		// WorkersUsed, not Workers(): the pool may have been resized
		// between the execution and this render.
		out += fmt.Sprintf(" parruns=%d parrows=%d workers=%d", c.ParallelRuns, c.ParallelRows, c.WorkersUsed)
	}
	if c.RowsMaterialized > 0 {
		out += fmt.Sprintf(" matrows=%d matbytes=%d", c.RowsMaterialized, c.BytesReserved)
	}
	if c.Batches > 0 {
		out += fmt.Sprintf(" batches=%d", c.Batches)
	}
	if c.CacheHits+c.CacheMisses > 0 {
		out += fmt.Sprintf(" cachehits=%d cachemisses=%d hitrate=%.0f%%",
			c.CacheHits, c.CacheMisses,
			100*float64(c.CacheHits)/float64(c.CacheHits+c.CacheMisses))
	}
	if c.PlanHits+c.PlanMisses > 0 {
		out += fmt.Sprintf(" planhits=%d planmisses=%d", c.PlanHits, c.PlanMisses)
	}
	return out
}
