// Package engine implements a multiset execution engine for the SQL
// subset of the paper: scan, selection, projection with ALL/DISTINCT,
// extended Cartesian product, nested-loop/hash/merge joins, sort- and
// hash-based duplicate elimination, INTERSECT/EXCEPT [ALL], and
// existential semi-joins. Every operator is instrumented with
// counters, because the experiments compare strategies by the work
// they perform (comparisons, sort runs, probes) as well as wall time.
package engine

import "fmt"

// Stats accumulates operator work counters across an execution.
type Stats struct {
	RowsScanned  int64 // rows read from base tables
	RowsOutput   int64 // rows produced by the root operator
	Comparisons  int64 // value comparisons in sorts, merges and dedup
	SortRuns     int64 // number of sort operations performed
	RowsSorted   int64 // total rows passed through sorts
	HashProbes   int64 // hash table probes (joins, dedup, set ops)
	HashInserts  int64 // hash table inserts
	JoinPairs    int64 // row pairs examined by join/product operators
	SubqueryRuns int64 // EXISTS subquery evaluations
	IndexSeeks   int64 // ordered-index lookups/range scans
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.RowsScanned += o.RowsScanned
	s.RowsOutput += o.RowsOutput
	s.Comparisons += o.Comparisons
	s.SortRuns += o.SortRuns
	s.RowsSorted += o.RowsSorted
	s.HashProbes += o.HashProbes
	s.HashInserts += o.HashInserts
	s.JoinPairs += o.JoinPairs
	s.SubqueryRuns += o.SubqueryRuns
	s.IndexSeeks += o.IndexSeeks
}

// String renders the counters compactly.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"scanned=%d output=%d cmp=%d sorts=%d sorted=%d probes=%d inserts=%d pairs=%d subq=%d seeks=%d",
		s.RowsScanned, s.RowsOutput, s.Comparisons, s.SortRuns, s.RowsSorted,
		s.HashProbes, s.HashInserts, s.JoinPairs, s.SubqueryRuns, s.IndexSeeks)
}
