package engine

import (
	"context"
	"fmt"
)

// ctx0 is the background context used by tests that exercise operator
// semantics rather than lifecycle behavior.
var ctx0 = context.Background()

// okRel unwraps an operator's (rel, err) pair, panicking on error
// (which the testing framework reports as a test failure with a
// stack). It takes the pair as its only arguments so call sites can
// wrap an operator call directly: okRel(HashJoin(ctx0, ...)).
// Lifecycle-focused tests that expect errors call operators directly.
func okRel(rel *Relation, err error) *Relation {
	if err != nil {
		panic(fmt.Sprintf("engine test: operator failed: %v", err))
	}
	return rel
}
