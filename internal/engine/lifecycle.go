package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"uniqopt/internal/fault"
	"uniqopt/internal/value"
)

// This file is the engine's query-lifecycle layer: cooperative
// cancellation, per-query resource budgets, and panic containment.
//
// Cancellation is cooperative. Every operator creates a guard over the
// caller's context and polls it on the first row and every cancelEvery
// rows thereafter, so a cancelled or timed-out query stops mid-loop and
// returns ctx.Err(). Parallel workers poll with per-worker guards and
// report through per-chunk error slots; parallelFor always joins its
// workers, so no goroutine outlives a failed query.
//
// Budgets are enforced by a Governor carried in the context
// (WithGovernor / GovernorFrom). Operators charge materialized rows and
// an estimate of their bytes at every materialization point — hash
// table builds, sort buffers, output appends — and receive a typed
// *BudgetError (errors.Is ErrBudgetExceeded) instead of growing
// without bound. Charges are also mirrored into Stats.RowsMaterialized
// and Stats.BytesReserved whether or not a governor is present.
//
// Panics are contained at the executor and planner boundaries with
// Contain, which converts them into *InternalError values carrying the
// operator name and stack. Worker-pool panics are recovered on the
// worker goroutine, carried across the barrier, and re-panicked on the
// caller's goroutine (see parallelFor), so they reach the same
// boundary instead of killing the process.

// cancelEvery is the cooperative-cancellation poll interval in rows:
// guards check ctx.Done() on their first step and every cancelEvery
// steps after that.
const cancelEvery = 1024

// chargeBatch bounds how many rows a guard accumulates before flushing
// a charge to the (atomic) governor, keeping hot loops off the shared
// counters.
const chargeBatch = 256

// Fault-injection point names registered by this package. Builds
// without the fault tag compile every fault.Point call to a nil-return
// no-op.
const (
	FaultScan       = "engine.scan"
	FaultFilter     = "engine.filter"
	FaultHashBuild  = "engine.hashjoin.build"
	FaultHashProbe  = "engine.hashjoin.probe"
	FaultSemiBuild  = "engine.semijoin.build"
	FaultDistinct   = "engine.distinct"
	FaultSort       = "engine.sort"
	FaultSetOp      = "engine.setop"
	FaultPoolWorker = "engine.pool.worker"
	// FaultStreamNext is the per-batch injection point: every streaming
	// operator polls it at the top of Next, so faults can strike between
	// any two batches of a pipeline, not just at operator entry.
	FaultStreamNext = "engine.stream.next"
)

func init() {
	fault.Register(FaultScan, FaultFilter, FaultHashBuild, FaultHashProbe,
		FaultSemiBuild, FaultDistinct, FaultSort, FaultSetOp, FaultPoolWorker,
		FaultStreamNext)
}

// ErrBudgetExceeded is the sentinel matched (via errors.Is) by every
// *BudgetError a resource governor returns.
var ErrBudgetExceeded = errors.New("engine: query resource budget exceeded")

// BudgetError reports which per-query budget was exhausted and by how
// much. It matches ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	Resource string // "rows" or "memory"
	Limit    int64
	Used     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("engine: query %s budget exceeded (used %d of %d)",
		e.Resource, e.Used, e.Limit)
}

// Is reports whether target is the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// InternalError is a contained panic: one bad query degrades to this
// error instead of crashing the process. Op names the boundary that
// recovered the panic and Stack is the panicking goroutine's stack.
type InternalError struct {
	Op    string
	Value any
	Stack []byte
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("engine: internal error in %s: %v", e.Op, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so callers
// can errors.Is/As through the containment boundary.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Governor enforces a per-query resource budget. A zero or negative
// limit disables that dimension. Charging is atomic: the parallel
// operators' workers share one governor.
type Governor struct {
	maxRows   int64
	maxBytes  int64
	rows      atomic.Int64
	bytes     atomic.Int64
	peakRows  atomic.Int64
	peakBytes atomic.Int64
}

// NewGovernor creates a governor for the given limits, or nil when
// both are unlimited (a nil *Governor is a valid "no budget" governor).
func NewGovernor(maxRows, maxBytes int64) *Governor {
	if maxRows <= 0 && maxBytes <= 0 {
		return nil
	}
	return &Governor{maxRows: maxRows, maxBytes: maxBytes}
}

// Charge accounts rows materialized rows and bytes estimated bytes
// against the budget, returning a *BudgetError on the first charge
// that crosses a limit.
func (g *Governor) Charge(rows, bytes int64) error {
	if g == nil {
		return nil
	}
	r := g.rows.Add(rows)
	raisePeak(&g.peakRows, r)
	if g.maxRows > 0 && r > g.maxRows {
		return &BudgetError{Resource: "rows", Limit: g.maxRows, Used: r}
	}
	b := g.bytes.Add(bytes)
	raisePeak(&g.peakBytes, b)
	if g.maxBytes > 0 && b > g.maxBytes {
		return &BudgetError{Resource: "memory", Limit: g.maxBytes, Used: b}
	}
	return nil
}

// raisePeak lifts *p to v unless it is already at least v.
func raisePeak(p *atomic.Int64, v int64) {
	for {
		cur := p.Load()
		if v <= cur || p.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Release returns rows and bytes to the budget. Streaming operators
// release a batch's in-flight charge once the batch has been consumed
// downstream, so a pipeline's live footprint — not its cumulative
// throughput — is what a budget bounds.
func (g *Governor) Release(rows, bytes int64) {
	if g == nil {
		return
	}
	g.rows.Add(-rows)
	g.bytes.Add(-bytes)
}

// Usage reports the rows and estimated bytes currently charged.
func (g *Governor) Usage() (rows, bytes int64) {
	if g == nil {
		return 0, 0
	}
	return g.rows.Load(), g.bytes.Load()
}

// Peak reports the high-water marks of the charged rows and bytes over
// the governor's lifetime. Because streaming operators release
// in-flight charges, Peak is the query's true peak live footprint,
// directly comparable between materializing and streaming execution.
func (g *Governor) Peak() (rows, bytes int64) {
	if g == nil {
		return 0, 0
	}
	return g.peakRows.Load(), g.peakBytes.Load()
}

type governorKey struct{}

// WithGovernor attaches a resource governor to ctx; every operator
// executing under the returned context charges its materializations to
// g.
func WithGovernor(ctx context.Context, g *Governor) context.Context {
	return context.WithValue(ctx, governorKey{}, g)
}

// GovernorFrom extracts the governor attached by WithGovernor, or nil.
func GovernorFrom(ctx context.Context) *Governor {
	g, _ := ctx.Value(governorKey{}).(*Governor)
	return g
}

// rowBytes estimates the in-memory footprint of a row: slice header
// plus the value structs plus string payloads.
func rowBytes(row value.Row) int64 {
	n := int64(24 + 40*len(row))
	for _, v := range row {
		if v.Kind() == value.KindString {
			n += int64(len(v.AsString()))
		}
	}
	return n
}

// guard couples cooperative cancellation polling with batched budget
// charging for one operator invocation (or one parallel worker). It is
// single-goroutine state over a shared atomic Governor.
type guard struct {
	ctx   context.Context
	gov   *Governor
	st    *Stats
	iter  int
	rows  int64
	bytes int64
}

func newGuard(ctx context.Context, st *Stats) guard {
	if ctx == nil {
		ctx = context.Background()
	}
	return guard{ctx: ctx, gov: GovernorFrom(ctx), st: st}
}

// step is called once per processed row. It polls cancellation on the
// first call and every cancelEvery calls thereafter, so even
// sub-interval relations observe an expired context at least once.
func (g *guard) step() error {
	if g.iter%cancelEvery == 0 {
		if err := g.ctx.Err(); err != nil {
			return err
		}
	}
	g.iter++
	return nil
}

// keep charges one materialized row, flushing to the governor every
// chargeBatch rows.
func (g *guard) keep(row value.Row) error {
	g.rows++
	g.bytes += rowBytes(row)
	if g.rows >= chargeBatch {
		return g.flush()
	}
	return nil
}

// keepN charges n materialized rows with an aggregate byte estimate,
// for operators that account a whole buffer at once (sorts, scans).
func (g *guard) keepN(rows []value.Row) error {
	for _, r := range rows {
		g.bytes += rowBytes(r)
	}
	g.rows += int64(len(rows))
	return g.flush()
}

// flush pushes pending charges into the Stats counters and the
// governor; the final flush doubles as the operator's last budget
// check.
func (g *guard) flush() error {
	if g.rows == 0 && g.bytes == 0 {
		return nil
	}
	g.st.RowsMaterialized += g.rows
	g.st.BytesReserved += g.bytes
	err := g.gov.Charge(g.rows, g.bytes)
	g.rows, g.bytes = 0, 0
	return err
}

// finish flushes pending charges and makes a final cancellation poll;
// operators call it right before returning their output relation.
func (g *guard) finish() error {
	if err := g.flush(); err != nil {
		return err
	}
	return g.ctx.Err()
}

// workerPanic carries a panic recovered on a pool-worker goroutine
// across the barrier so it can be re-panicked on the caller's
// goroutine with its original stack intact.
type workerPanic struct {
	val   any
	stack []byte
}

// Contain converts a panic into an *InternalError assigned through
// errp. It must be installed with `defer Contain(op, &err)` at a query
// entry boundary (executor, planner); panics repanicked by parallelFor
// arrive as *workerPanic and keep the worker's stack.
func Contain(op string, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	switch p := r.(type) {
	case *workerPanic:
		*errp = &InternalError{Op: op, Value: p.val, Stack: p.stack}
	case *InternalError:
		*errp = p // already contained at an inner boundary
	default:
		*errp = &InternalError{Op: op, Value: r, Stack: debug.Stack()}
	}
}
