package engine

import (
	"math/rand"
	"testing"

	"uniqopt/internal/value"
)

func randRelation(r *rand.Rand, n int) *Relation {
	rel := &Relation{Cols: []string{"A", "B"}}
	for i := 0; i < n; i++ {
		var a, b value.Value
		if r.Intn(5) == 0 {
			a = value.Null
		} else {
			a = value.Int(int64(r.Intn(4)))
		}
		if r.Intn(5) == 0 {
			b = value.Null
		} else {
			b = value.Int(int64(r.Intn(3)))
		}
		rel.Rows = append(rel.Rows, value.Row{a, b})
	}
	return rel
}

// Property: sort-merge set operations agree with the hash-based
// reference implementations on random NULL-rich multisets, for all
// four variants.
func TestSortSetOpsAgreeWithHash(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		l := randRelation(r, r.Intn(20))
		rr := randRelation(r, r.Intn(20))
		for _, all := range []bool{false, true} {
			var s1, s2 Stats
			hi := okRel(Intersect(ctx0, &s1, l, rr, all))
			si := okRel(IntersectSort(ctx0, &s2, l, rr, all))
			if !MultisetEqual(hi, si) {
				t.Fatalf("intersect(all=%v) mismatch:\nhash: %v\nsort: %v\nl=%v\nr=%v",
					all, hi, si, l, rr)
			}
			he := okRel(Except(ctx0, &s1, l, rr, all))
			se := okRel(ExceptSort(ctx0, &s2, l, rr, all))
			if !MultisetEqual(he, se) {
				t.Fatalf("except(all=%v) mismatch:\nhash: %v\nsort: %v\nl=%v\nr=%v",
					all, he, se, l, rr)
			}
		}
	}
}

func TestSortSetOpsSemantics(t *testing.T) {
	l := &Relation{Cols: []string{"X"}, Rows: []value.Row{
		{value.Int(1)}, {value.Int(1)}, {value.Int(1)},
		{value.Int(2)}, {value.Null}, {value.Null},
	}}
	r := &Relation{Cols: []string{"X"}, Rows: []value.Row{
		{value.Int(1)}, {value.Int(1)}, {value.Int(3)}, {value.Null},
	}}
	var st Stats
	// INTERSECT ALL: min counts — 1×2, NULL×1.
	ia := okRel(IntersectSort(ctx0, &st, l, r, true))
	if ia.Len() != 3 {
		t.Errorf("INTERSECT ALL = %d rows, want 3: %v", ia.Len(), ia)
	}
	// INTERSECT: distinct — {1, NULL}.
	id := okRel(IntersectSort(ctx0, &st, l, r, false))
	if id.Len() != 2 {
		t.Errorf("INTERSECT = %d rows, want 2: %v", id.Len(), id)
	}
	// EXCEPT ALL: max(j−k,0) — 1×1, 2×1, NULL×1.
	ea := okRel(ExceptSort(ctx0, &st, l, r, true))
	if ea.Len() != 3 {
		t.Errorf("EXCEPT ALL = %d rows, want 3: %v", ea.Len(), ea)
	}
	// EXCEPT: distinct rows of l absent from r — {2}.
	ed := okRel(ExceptSort(ctx0, &st, l, r, false))
	if ed.Len() != 1 || ed.Rows[0][0].AsInt() != 2 {
		t.Errorf("EXCEPT = %v", ed)
	}
	// The operation sorted both operands.
	if st.SortRuns < 2 {
		t.Errorf("sort runs = %d", st.SortRuns)
	}
}
