package engine

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"uniqopt/internal/value"
)

// TestStatsFieldsEnumeratesEveryField pins the invariant that makes
// Add/Snapshot merging safe to extend: every int64 field of Stats must
// appear exactly once in fields(), so a newly added counter can never
// be silently dropped from accumulation.
func TestStatsFieldsEnumeratesEveryField(t *testing.T) {
	var a, b Stats
	fs := a.fields(&b)

	typ := reflect.TypeOf(a)
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()

	dsts := make(map[unsafe.Pointer]bool, len(fs))
	srcs := make(map[unsafe.Pointer]bool, len(fs))
	for _, f := range fs {
		if dsts[unsafe.Pointer(f.dst)] {
			t.Errorf("fields() lists a destination counter twice")
		}
		dsts[unsafe.Pointer(f.dst)] = true
		srcs[unsafe.Pointer(f.src)] = true
	}

	for i := 0; i < typ.NumField(); i++ {
		sf := typ.Field(i)
		if sf.Type.Kind() != reflect.Int64 {
			t.Fatalf("Stats.%s is %s; fields() only knows how to merge int64 counters — extend the mechanism", sf.Name, sf.Type)
		}
		ap := unsafe.Pointer(av.Field(i).Addr().Pointer())
		bp := unsafe.Pointer(bv.Field(i).Addr().Pointer())
		if !dsts[ap] {
			t.Errorf("Stats.%s is missing from fields(): Add/Snapshot would silently drop it", sf.Name)
		}
		if !srcs[bp] {
			t.Errorf("Stats.%s is missing from fields() sources", sf.Name)
		}
	}
	if len(fs) != typ.NumField() {
		t.Errorf("fields() has %d entries for %d struct fields", len(fs), typ.NumField())
	}
}

// TestStatsAddMergesGaugesByMax checks that WorkersUsed merges as a
// high-water gauge while counters still sum.
func TestStatsAddMergesGaugesByMax(t *testing.T) {
	var s Stats
	s.Add(Stats{RowsScanned: 3, WorkersUsed: 4})
	s.Add(Stats{RowsScanned: 5, WorkersUsed: 2})
	if got := s.Snapshot(); got.RowsScanned != 8 || got.WorkersUsed != 4 {
		t.Errorf("got scanned=%d workers=%d, want scanned=8 workers=4", got.RowsScanned, got.WorkersUsed)
	}
}

// TestStatsStringReportsWorkersUsed is the regression test for the
// reporting bug where String() rendered the *current global* pool size
// instead of the worker count the execution actually used. Changing
// UNIQOPT_WORKERS (or SetWorkers) between the run and the render must
// not change what the render says.
func TestStatsStringReportsWorkersUsed(t *testing.T) {
	oldW := SetWorkers(3)
	oldT := SetParallelThreshold(1)
	defer func() {
		SetWorkers(oldW)
		SetParallelThreshold(oldT)
	}()

	rel := &Relation{Cols: []string{"T.A", "T.B"}}
	for i := 0; i < 64; i++ {
		rel.Rows = append(rel.Rows, value.Row{value.Int(int64(i)), value.Int(int64(i % 7))})
	}
	var st Stats
	out := okRel(Project(ctx0, &st, rel, []string{"T.A"}))
	if out.Len() != 64 {
		t.Fatalf("project returned %d rows", out.Len())
	}
	if st.ParallelRuns == 0 {
		t.Fatal("expected the parallel path with threshold 1 and 3 workers")
	}

	// Reconfigure the pool after the run: the render must keep
	// reporting the execution's own width. (UNIQOPT_WORKERS is latched
	// once per process, so setting it here doubles as a check that a
	// late env change cannot leak into an existing execution's stats.)
	os.Setenv("UNIQOPT_WORKERS", "17")
	defer os.Unsetenv("UNIQOPT_WORKERS")
	SetWorkers(9)

	s := st.String()
	if !strings.Contains(s, "workers=3") {
		t.Errorf("String() should report the workers actually used (3): %s", s)
	}
	if strings.Contains(s, "workers=9") || strings.Contains(s, "workers=17") {
		t.Errorf("String() leaked the current global pool size: %s", s)
	}
	if want := fmt.Sprintf("workers=%d", st.Snapshot().WorkersUsed); !strings.Contains(s, want) {
		t.Errorf("String() disagrees with WorkersUsed: %s", s)
	}
}
