package engine

import (
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// The engine's data-parallel operators split their input across a
// bounded set of workers. The pool size is process-wide: it defaults
// to GOMAXPROCS, can be pinned with the UNIQOPT_WORKERS environment
// variable, and is adjustable at runtime with SetWorkers. A size of 1
// disables the parallel path entirely.

// DefaultParallelThreshold is the minimum input cardinality for an
// operator to take the parallel path. Below it, goroutine fan-out
// costs more than the row work saves.
const DefaultParallelThreshold = 4096

var (
	workersOnce sync.Once
	numWorkers  atomic.Int64
	parThresh   atomic.Int64
)

func initWorkers() {
	workersOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if env := os.Getenv("UNIQOPT_WORKERS"); env != "" {
			if v, err := strconv.Atoi(env); err == nil && v > 0 {
				n = v
			}
		}
		numWorkers.Store(int64(n))
		if parThresh.Load() == 0 {
			parThresh.Store(DefaultParallelThreshold)
		}
	})
}

// Workers reports the configured worker-pool size (≥ 1).
func Workers() int {
	initWorkers()
	return int(numWorkers.Load())
}

// SetWorkers sets the worker-pool size. Values < 1 are clamped to 1.
// It returns the previous size, so callers can restore it.
func SetWorkers(n int) int {
	initWorkers()
	if n < 1 {
		n = 1
	}
	return int(numWorkers.Swap(int64(n)))
}

// ParallelThreshold reports the minimum input size for the parallel
// operator path.
func ParallelThreshold() int {
	initWorkers()
	return int(parThresh.Load())
}

// SetParallelThreshold adjusts the parallel-path cutover (tests use a
// tiny value to exercise the parallel operators on small inputs). It
// returns the previous threshold.
func SetParallelThreshold(n int) int {
	initWorkers()
	if n < 1 {
		n = 1
	}
	return int(parThresh.Swap(int64(n)))
}

// parallelFor splits [0, n) into at most workers contiguous chunks and
// runs body(chunk, lo, hi) on each from its own goroutine, blocking
// until all complete. It returns the number of chunks used. body must
// confine its writes to chunk-indexed state; merging happens after the
// barrier.
//
// Panic containment: a panic inside a worker goroutine would otherwise
// kill the whole process (no recover can cross a goroutine boundary).
// Each worker therefore recovers its own panic into a *workerPanic
// carrying the worker's stack; after the barrier — every worker has
// finished, so no goroutine leaks — the first panic (by chunk index,
// for determinism) is re-panicked on the caller's goroutine, where the
// executor/planner boundary converts it to an *InternalError.
func parallelFor(n, workers int, body func(chunk, lo, hi int)) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, 0, n)
		}
		return 1
	}
	panics := make([]*workerPanic, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for c := 0; c < workers; c++ {
		lo := c * n / workers
		hi := (c + 1) * n / workers
		go func(chunk, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[chunk] = &workerPanic{val: r, stack: debug.Stack()}
				}
			}()
			body(chunk, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return workers
}

// shouldParallel reports whether an operator over n input rows should
// take the parallel path, and with how many workers.
func shouldParallel(n int) (int, bool) {
	w := Workers()
	if w <= 1 || n < ParallelThreshold() {
		return 1, false
	}
	return w, true
}
