package engine

import (
	"testing"

	"uniqopt/internal/catalog"
	"uniqopt/internal/eval"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/sql/parser"
	"uniqopt/internal/storage"
	"uniqopt/internal/value"
)

// testDB builds the paper's schema with a small, hand-checkable
// instance.
//
// SUPPLIER: (1,Smith,Toronto) (2,Jones,Chicago) (3,Smith,New York)
// PARTS:    (1,1,bolt,RED) (1,2,nut,BLUE) (2,1,bolt,RED) (3,9,cam,RED)
// AGENTS:   (1,1,Ann,Ottawa) (2,2,Bob,Hull) (3,3,Cyd,Paris)
func testDB(t testing.TB) *storage.DB {
	t.Helper()
	c := catalog.New()
	ddl := []string{
		`CREATE TABLE SUPPLIER (SNO INTEGER, SNAME VARCHAR, SCITY VARCHAR,
			BUDGET INTEGER, STATUS VARCHAR, PRIMARY KEY (SNO))`,
		`CREATE TABLE PARTS (SNO INTEGER, PNO INTEGER, PNAME VARCHAR,
			OEM-PNO INTEGER, COLOR VARCHAR, PRIMARY KEY (SNO, PNO), UNIQUE (OEM-PNO))`,
		`CREATE TABLE AGENTS (SNO INTEGER, ANO INTEGER, ANAME VARCHAR,
			ACITY VARCHAR, PRIMARY KEY (SNO, ANO))`,
	}
	for _, src := range ddl {
		st, err := parser.ParseStatement(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	db := storage.NewDB(c)
	sup := [][]any{
		{1, "Smith", "Toronto", 100, "Active"},
		{2, "Jones", "Chicago", 200, "Active"},
		{3, "Smith", "New York", 300, "Active"},
	}
	for _, r := range sup {
		row := value.Row{value.Int(int64(r[0].(int))), value.String_(r[1].(string)),
			value.String_(r[2].(string)), value.Int(int64(r[3].(int))), value.String_(r[4].(string))}
		if err := db.Insert("SUPPLIER", row); err != nil {
			t.Fatal(err)
		}
	}
	parts := [][]any{
		{1, 1, "bolt", 101, "RED"},
		{1, 2, "nut", 102, "BLUE"},
		{2, 1, "bolt", 103, "RED"},
		{3, 9, "cam", 104, "RED"},
	}
	for _, r := range parts {
		row := value.Row{value.Int(int64(r[0].(int))), value.Int(int64(r[1].(int))),
			value.String_(r[2].(string)), value.Int(int64(r[3].(int))), value.String_(r[4].(string))}
		if err := db.Insert("PARTS", row); err != nil {
			t.Fatal(err)
		}
	}
	agents := [][]any{
		{1, 1, "Ann", "Ottawa"},
		{2, 2, "Bob", "Hull"},
		{3, 3, "Cyd", "Paris"},
	}
	for _, r := range agents {
		row := value.Row{value.Int(int64(r[0].(int))), value.Int(int64(r[1].(int))),
			value.String_(r[2].(string)), value.String_(r[3].(string))}
		if err := db.Insert("AGENTS", row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func run(t *testing.T, db *storage.DB, src string, hosts map[string]value.Value) *Relation {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(db, hosts)
	rel, err := ex.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return rel
}

func TestScanAndProduct(t *testing.T) {
	db := testDB(t)
	var st Stats
	s := okRel(Scan(ctx0, &st, db.MustTable("SUPPLIER"), "S"))
	p := okRel(Scan(ctx0, &st, db.MustTable("PARTS"), "P"))
	if s.Len() != 3 || p.Len() != 4 {
		t.Fatalf("scan sizes: %d, %d", s.Len(), p.Len())
	}
	if st.RowsScanned != 7 {
		t.Errorf("RowsScanned = %d", st.RowsScanned)
	}
	prod := okRel(Product(ctx0, &st, s, p))
	if prod.Len() != 12 || len(prod.Cols) != 10 {
		t.Errorf("product = %d rows × %d cols", prod.Len(), len(prod.Cols))
	}
	if st.JoinPairs != 12 {
		t.Errorf("JoinPairs = %d", st.JoinPairs)
	}
	if prod.Cols[0] != "S.SNO" || prod.Cols[5] != "P.SNO" {
		t.Errorf("cols = %v", prod.Cols)
	}
}

func TestSimpleSelect(t *testing.T) {
	db := testDB(t)
	rel := run(t, db, "SELECT S.SNO, S.SNAME FROM SUPPLIER S WHERE S.SCITY = 'Toronto'", nil)
	if rel.Len() != 1 || rel.Rows[0][0].AsInt() != 1 {
		t.Errorf("result = %v", rel)
	}
}

func TestJoinQuery(t *testing.T) {
	db := testDB(t)
	rel := run(t, db, `SELECT S.SNO, P.PNO, P.PNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, nil)
	// Red parts: (1,1), (2,1), (3,9) → three rows.
	if rel.Len() != 3 {
		t.Errorf("got %d rows: %v", rel.Len(), rel)
	}
}

func TestStarProjectionAndUnqualified(t *testing.T) {
	db := testDB(t)
	rel := run(t, db, "SELECT * FROM AGENTS A WHERE ACITY = 'Hull'", nil)
	if rel.Len() != 1 || len(rel.Cols) != 4 {
		t.Errorf("result = %v", rel)
	}
	if rel.Rows[0][2].AsString() != "Bob" {
		t.Errorf("row = %v", rel.Rows[0])
	}
}

func TestHostVariables(t *testing.T) {
	db := testDB(t)
	rel := run(t, db, `SELECT ALL S.SNO, SNAME, P.PNO, PNAME
		FROM SUPPLIER S, PARTS P
		WHERE P.SNO = :SUPPLIER-NO AND S.SNO = P.SNO`,
		map[string]value.Value{"SUPPLIER-NO": value.Int(1)})
	if rel.Len() != 2 {
		t.Errorf("got %d rows", rel.Len())
	}
}

func TestDistinctEliminatesDuplicates(t *testing.T) {
	db := testDB(t)
	// Example 2's shape: two suppliers named Smith both supply red
	// parts; SNAME alone duplicates.
	all := run(t, db, `SELECT ALL S.SNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, nil)
	dist := run(t, db, `SELECT DISTINCT S.SNAME FROM SUPPLIER S, PARTS P
		WHERE S.SNO = P.SNO AND P.COLOR = 'RED'`, nil)
	if all.Len() != 3 {
		t.Errorf("ALL: %d rows", all.Len())
	}
	if dist.Len() != 2 { // Smith, Jones
		t.Errorf("DISTINCT: %d rows: %v", dist.Len(), dist)
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := testDB(t)
	// Paper Example 8: suppliers supplying at least one red part.
	rel := run(t, db, `SELECT ALL S.SNO, S.SNAME FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P
		              WHERE P.SNO = S.SNO AND P.COLOR = 'RED')`, nil)
	if rel.Len() != 3 {
		t.Errorf("got %d rows: %v", rel.Len(), rel)
	}
	rel = run(t, db, `SELECT ALL S.SNO FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P
		              WHERE P.SNO = S.SNO AND P.COLOR = 'BLUE')`, nil)
	if rel.Len() != 1 || rel.Rows[0][0].AsInt() != 1 {
		t.Errorf("blue: %v", rel)
	}
}

func TestNotExists(t *testing.T) {
	db := testDB(t)
	rel := run(t, db, `SELECT S.SNO FROM SUPPLIER S
		WHERE NOT EXISTS (SELECT * FROM PARTS P
		                  WHERE P.SNO = S.SNO AND P.COLOR = 'BLUE')`, nil)
	// Suppliers 2 and 3 have no blue part.
	if rel.Len() != 2 {
		t.Errorf("got %d rows: %v", rel.Len(), rel)
	}
}

func TestIntersectDistinctAndAll(t *testing.T) {
	db := testDB(t)
	// Supplier numbers appearing in both PARTS and AGENTS.
	dist := run(t, db, `SELECT P.SNO FROM PARTS P INTERSECT SELECT A.SNO FROM AGENTS A`, nil)
	if dist.Len() != 3 { // 1, 2, 3 each
		t.Errorf("INTERSECT: %d rows: %v", dist.Len(), dist)
	}
	all := run(t, db, `SELECT P.SNO FROM PARTS P INTERSECT ALL SELECT A.SNO FROM AGENTS A`, nil)
	// PARTS SNOs: {1×2, 2, 3}; AGENTS SNOs: {1, 2, 3} → min counts 1,1,1.
	if all.Len() != 3 {
		t.Errorf("INTERSECT ALL: %d rows: %v", all.Len(), all)
	}
}

func TestExceptDistinctAndAll(t *testing.T) {
	db := testDB(t)
	allRes := run(t, db, `SELECT P.SNO FROM PARTS P EXCEPT ALL SELECT A.SNO FROM AGENTS A`, nil)
	// PARTS {1,1,2,3} − AGENTS {1,2,3} = {1}.
	if allRes.Len() != 1 || allRes.Rows[0][0].AsInt() != 1 {
		t.Errorf("EXCEPT ALL: %v", allRes)
	}
	dist := run(t, db, `SELECT P.SNO FROM PARTS P EXCEPT SELECT A.SNO FROM AGENTS A`, nil)
	if dist.Len() != 0 {
		t.Errorf("EXCEPT: %v", dist)
	}
}

func TestSetOpNullEquivalence(t *testing.T) {
	// INTERSECT must treat NULL ≐ NULL as equal — the paper's §5.3
	// point. Build tables with NULL keys via a dedicated schema.
	c := catalog.New()
	st, _ := parser.ParseStatement(`CREATE TABLE L (X INTEGER, UNIQUE (X))`)
	if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
		t.Fatal(err)
	}
	st, _ = parser.ParseStatement(`CREATE TABLE R (X INTEGER, UNIQUE (X))`)
	if _, err := c.DefineFromAST(st.(*ast.CreateTable)); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDB(c)
	if err := db.Insert("L", value.Row{value.Null}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("L", value.Row{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", value.Row{value.Null}); err != nil {
		t.Fatal(err)
	}
	rel := run(t, db, "SELECT X FROM L INTERSECT SELECT X FROM R", nil)
	if rel.Len() != 1 || !rel.Rows[0][0].IsNull() {
		t.Errorf("NULL row must intersect: %v", rel)
	}
}

func TestJoinOperatorsAgree(t *testing.T) {
	db := testDB(t)
	var st Stats
	s := okRel(Scan(ctx0, &st, db.MustTable("SUPPLIER"), "S"))
	p := okRel(Scan(ctx0, &st, db.MustTable("PARTS"), "P"))
	pred, _ := parser.ParseExpr("S.SNO = P.SNO")
	env := &eval.Env{Cols: map[string]value.Value{}, Hosts: map[string]value.Value{}}
	nl, err := NestedLoopJoin(ctx0, &st, s, p, pred, env)
	if err != nil {
		t.Fatal(err)
	}
	hj := okRel(HashJoin(ctx0, &st, s, p, []string{"S.SNO"}, []string{"P.SNO"}))
	mj := okRel(MergeJoin(ctx0, &st, s, p, []string{"S.SNO"}, []string{"P.SNO"}))
	if !MultisetEqual(nl, hj) {
		t.Errorf("hash join differs from nested loop:\n%v\nvs\n%v", nl, hj)
	}
	if !MultisetEqual(nl, mj) {
		t.Errorf("merge join differs from nested loop:\n%v\nvs\n%v", nl, mj)
	}
	if nl.Len() != 4 {
		t.Errorf("join produced %d rows, want 4", nl.Len())
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	var st Stats
	l := &Relation{Cols: []string{"L.K"}, Rows: []value.Row{{value.Null}, {value.Int(1)}}}
	r := &Relation{Cols: []string{"R.K"}, Rows: []value.Row{{value.Null}, {value.Int(1)}}}
	hj := okRel(HashJoin(ctx0, &st, l, r, []string{"L.K"}, []string{"R.K"}))
	if hj.Len() != 1 {
		t.Errorf("hash join with NULLs = %d rows, want 1", hj.Len())
	}
	mj := okRel(MergeJoin(ctx0, &st, l, r, []string{"L.K"}, []string{"R.K"}))
	if mj.Len() != 1 {
		t.Errorf("merge join with NULLs = %d rows, want 1: %v", mj.Len(), mj)
	}
}

func TestDistinctOperatorsAgree(t *testing.T) {
	var st Stats
	rel := &Relation{Cols: []string{"A", "B"}}
	rows := []value.Row{
		{value.Int(1), value.Null},
		{value.Int(1), value.Null}, // dup under ≐
		{value.Int(1), value.Int(2)},
		{value.Int(2), value.Int(2)},
		{value.Int(1), value.Int(2)}, // dup
	}
	rel.Rows = rows
	ds := okRel(DistinctSort(ctx0, &st, rel))
	dh := okRel(DistinctHash(ctx0, &st, rel))
	if ds.Len() != 3 || dh.Len() != 3 {
		t.Errorf("distinct sizes: sort=%d hash=%d, want 3", ds.Len(), dh.Len())
	}
	if !MultisetEqual(ds, dh) {
		t.Error("sort and hash distinct disagree")
	}
	if st.SortRuns != 1 {
		t.Errorf("SortRuns = %d", st.SortRuns)
	}
}

func TestSemiJoinsAgree(t *testing.T) {
	db := testDB(t)
	var st Stats
	s := okRel(Scan(ctx0, &st, db.MustTable("SUPPLIER"), "S"))
	p := okRel(Scan(ctx0, &st, db.MustTable("PARTS"), "P"))
	pred, _ := parser.ParseExpr("S.SNO = P.SNO AND P.COLOR = 'RED'")
	env := &eval.Env{Cols: map[string]value.Value{}, Hosts: map[string]value.Value{}}
	nl, err := SemiJoinExists(ctx0, &st, s, p, pred, env)
	if err != nil {
		t.Fatal(err)
	}
	// Hash semi-join needs the filter applied to the inner first.
	redPred, _ := parser.ParseExpr("P.COLOR = 'RED'")
	redParts, err := Filter(ctx0, &st, p, redPred, env)
	if err != nil {
		t.Fatal(err)
	}
	hs := okRel(SemiJoinHash(ctx0, &st, s, redParts, []string{"S.SNO"}, []string{"P.SNO"}))
	if !MultisetEqual(nl, hs) {
		t.Errorf("semi-joins disagree:\n%v\nvs\n%v", nl, hs)
	}
	if nl.Len() != 3 {
		t.Errorf("semi-join rows = %d", nl.Len())
	}
}

func TestProjectPreservesMultiplicity(t *testing.T) {
	db := testDB(t)
	var st Stats
	p := okRel(Scan(ctx0, &st, db.MustTable("PARTS"), "P"))
	proj := okRel(Project(ctx0, &st, p, []string{"P.SNO"}))
	if proj.Len() != 4 {
		t.Errorf("projection lost rows: %d", proj.Len())
	}
	if len(proj.Cols) != 1 || proj.Cols[0] != "P.SNO" {
		t.Errorf("cols = %v", proj.Cols)
	}
}

func TestColumnIndexFallback(t *testing.T) {
	rel := &Relation{Cols: []string{"S.SNO", "P.SNO", "P.PNO"}}
	if rel.ColumnIndex("P.PNO") != 2 {
		t.Error("exact lookup failed")
	}
	if rel.ColumnIndex("PNO") != 2 {
		t.Error("suffix lookup failed")
	}
	if rel.ColumnIndex("SNO") != -1 {
		t.Error("ambiguous suffix should fail")
	}
	if rel.ColumnIndex("NOPE") != -1 {
		t.Error("unknown column should fail")
	}
}

func TestMultisetEqual(t *testing.T) {
	a := &Relation{Cols: []string{"X"}, Rows: []value.Row{{value.Int(1)}, {value.Int(1)}, {value.Null}}}
	b := &Relation{Cols: []string{"X"}, Rows: []value.Row{{value.Null}, {value.Int(1)}, {value.Int(1)}}}
	if !MultisetEqual(a, b) {
		t.Error("order must not matter")
	}
	c := &Relation{Cols: []string{"X"}, Rows: []value.Row{{value.Int(1)}, {value.Null}, {value.Null}}}
	if MultisetEqual(a, c) {
		t.Error("different multiplicities must differ")
	}
	d := &Relation{Cols: []string{"X"}, Rows: []value.Row{{value.Int(1)}, {value.Int(1)}}}
	if MultisetEqual(a, d) {
		t.Error("different cardinalities must differ")
	}
}

func TestExecutorErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT X FROM NOPE",
		"SELECT NOPE FROM SUPPLIER S",
		"SELECT S.SNO FROM SUPPLIER S WHERE S.SNO = :UNBOUND",
		"SELECT S.SNO FROM SUPPLIER S INTERSECT SELECT A.SNO, A.ANO FROM AGENTS A",
	}
	for _, src := range bad {
		q, err := parser.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := NewExecutor(db, nil).Query(q); err == nil {
			t.Errorf("Query(%q): expected error", src)
		}
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{RowsScanned: 1, Comparisons: 2, SortRuns: 3}
	b := Stats{RowsScanned: 10, HashProbes: 5, SubqueryRuns: 1}
	a.Add(b)
	if a.RowsScanned != 11 || a.HashProbes != 5 || a.SortRuns != 3 {
		t.Errorf("Add result = %+v", a)
	}
	if a.String() == "" {
		t.Error("String must be non-empty")
	}
}

func TestRelationClone(t *testing.T) {
	rel := &Relation{Cols: []string{"X"}, Rows: []value.Row{{value.Int(1)}}}
	cp := rel.Clone()
	//lint:allow rowalias -- reviewed: the test mutates the clone on purpose to prove Clone copies rows deeply
	cp.Rows[0][0] = value.Int(99)
	cp.Cols[0] = "Y"
	if rel.Rows[0][0].AsInt() != 1 || rel.Cols[0] != "X" {
		t.Error("Clone shares state")
	}
}

// Doubly nested EXISTS: the inner block references columns two scopes
// up (S from the outermost block).
func TestDoublyNestedExists(t *testing.T) {
	db := testDB(t)
	// Suppliers that supply a part for which an agent of the same
	// supplier exists in Ottawa.
	rel := run(t, db, `SELECT S.SNO FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P
		              WHERE P.SNO = S.SNO AND
		              EXISTS (SELECT * FROM AGENTS A
		                      WHERE A.SNO = S.SNO AND A.ACITY = 'Ottawa'))`, nil)
	// Only supplier 1 has an Ottawa agent (and it has parts).
	if rel.Len() != 1 || rel.Rows[0][0].AsInt() != 1 {
		t.Errorf("result = %v", rel)
	}
}

// Correlated NOT EXISTS nested inside EXISTS.
func TestMixedNestedExists(t *testing.T) {
	db := testDB(t)
	// Suppliers with a part whose (SNO, PNO) has no blue sibling part.
	rel := run(t, db, `SELECT DISTINCT S.SNO FROM SUPPLIER S
		WHERE EXISTS (SELECT * FROM PARTS P
		              WHERE P.SNO = S.SNO AND
		              NOT EXISTS (SELECT * FROM PARTS Q
		                          WHERE Q.SNO = P.SNO AND Q.COLOR = 'BLUE'))`, nil)
	// Suppliers 2 and 3 have no blue parts at all; supplier 1 has a
	// blue part, so its NOT EXISTS fails for every part.
	if rel.Len() != 2 {
		t.Errorf("result = %v", rel)
	}
}
