package engine

import (
	"context"

	"uniqopt/internal/eval"
	"uniqopt/internal/fault"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// Parallel partitioned operators. Each operator splits its probe (or
// sole) input into contiguous chunks — one per worker — and its hash
// side into hash-disjoint partitions, so no lock is ever taken on row
// data. Outputs are concatenated in chunk order and hash buckets are
// filled in input order, which makes every parallel operator produce a
// relation byte-identical to its serial counterpart: same rows, same
// order. Work counters are collected in per-worker Stats instances and
// merged through Stats.Add after the barrier.
//
// Lifecycle: every worker polls the query context and charges the
// shared governor through its own guard, reporting through a per-chunk
// error slot; parallelFor always joins its workers before the first
// error is returned, so a cancelled or over-budget query leaves no
// goroutine behind.

// hashRow is the row-hash function used by every hash-based operator.
// It is a variable so tests can substitute a degenerate hash and force
// every row into one bucket/partition, proving the collision fallback
// (row-by-row ≐ comparison on hash match) in all operators.
var hashRow = value.HashRow

// firstErr returns the lowest-chunk error, keeping failure
// deterministic regardless of worker interleaving.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// rowHashes computes the hash of every row in parallel. The returned
// null slice flags rows with a NULL in any key column (idx non-nil);
// such rows never participate in hash matching under WHERE semantics.
func rowHashes(ctx context.Context, rows []value.Row, idx []int, workers int) (hashes []uint64, nulls []bool, err error) {
	hashes = make([]uint64, len(rows))
	if idx != nil {
		nulls = make([]bool, len(rows))
	}
	key := idx == nil
	errs := make([]error, workers)
	parallelFor(len(rows), workers, func(c, lo, hi int) {
		var kbuf value.Row
		if !key {
			kbuf = make(value.Row, len(idx))
		}
		var st Stats
		g := newGuard(ctx, &st)
		for i := lo; i < hi; i++ {
			if err := g.step(); err != nil {
				errs[c] = err
				return
			}
			row := rows[i]
			if key {
				hashes[i] = hashRow(row)
				continue
			}
			if hasNullAt(row, idx) {
				nulls[i] = true
				continue
			}
			for k, c := range idx {
				kbuf[k] = row[c]
			}
			hashes[i] = hashRow(kbuf)
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, nil, err
	}
	return hashes, nulls, nil
}

// buildPartitioned builds P hash-disjoint tables over rows: partition
// h%P owns every row whose key hash is h. Each partition is built by
// one worker scanning the precomputed hashes, so bucket contents stay
// in input order — exactly what a serial single-table build produces.
// Inserted rows are charged to the query governor.
func buildPartitioned(ctx context.Context, st *Stats, rows []value.Row, hashes []uint64, nulls []bool, parts int) ([]map[uint64][]value.Row, error) {
	tables := make([]map[uint64][]value.Row, parts)
	locals := make([]Stats, parts)
	errs := make([]error, parts)
	parallelFor(parts, parts, func(p, _, _ int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[p] = err
			return
		}
		g := newGuard(ctx, &locals[p])
		ht := make(map[uint64][]value.Row, len(rows)/parts+1)
		for i, row := range rows {
			if err := g.step(); err != nil {
				errs[p] = err
				return
			}
			if nulls != nil && nulls[i] {
				continue
			}
			h := hashes[i]
			if partitionOf(h, parts) != p {
				continue
			}
			ht[h] = append(ht[h], row)
			locals[p].HashInserts++
			if err := g.keep(row); err != nil {
				errs[p] = err
				return
			}
		}
		errs[p] = g.finish()
		tables[p] = ht
	})
	for i := range locals {
		st.Add(locals[i])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return tables, nil
}

// ParallelHashJoin is the partitioned-parallel form of HashJoin: the
// right input is built into hash-disjoint partition tables, the left
// is probed in contiguous chunks. The build side is fixed (build
// right, like HashJoin) so every execution path emits identical row
// orders. Identical output to HashJoin.
func ParallelHashJoin(ctx context.Context, st *Stats, l, r *Relation, lKeys, rKeys []string, workers int) (*Relation, error) {
	li, err := l.colIndexes(lKeys)
	if err != nil {
		return nil, err
	}
	ri, err := r.colIndexes(rKeys)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}

	st.ParallelRuns++
	st.NoteWorkers(workers)
	st.ParallelRows += int64(len(l.Rows) + len(r.Rows))

	bh, bn, err := rowHashes(ctx, r.Rows, ri, workers)
	if err != nil {
		return nil, err
	}
	tables, err := buildPartitioned(ctx, st, r.Rows, bh, bn, workers)
	if err != nil {
		return nil, err
	}
	if err := fault.Point(FaultHashProbe); err != nil {
		return nil, err
	}
	ph, pn, err := rowHashes(ctx, l.Rows, li, workers)
	if err != nil {
		return nil, err
	}

	chunkOut := make([][]value.Row, workers)
	locals := make([]Stats, workers)
	errs := make([]error, workers)
	chunks := parallelFor(len(l.Rows), workers, func(c, lo, hi int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[c] = err
			return
		}
		my := &locals[c]
		g := newGuard(ctx, my)
		arena := rowArena{width: len(l.Cols) + len(r.Cols)}
		var rows []value.Row
		for i := lo; i < hi; i++ {
			if err := g.step(); err != nil {
				errs[c] = err
				return
			}
			if pn[i] {
				continue
			}
			prow := l.Rows[i]
			h := ph[i]
			my.HashProbes++
			for _, brow := range tables[partitionOf(h, workers)][h] {
				my.JoinPairs++
				if !equalAt(prow, li, brow, ri, my) {
					continue
				}
				row := arena.next()
				n := copy(row, prow)
				copy(row[n:], brow)
				rows = append(rows, row)
				if err := g.keep(row); err != nil {
					errs[c] = err
					return
				}
			}
		}
		errs[c] = g.finish()
		chunkOut[c] = rows
	})
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for c := 0; c < chunks; c++ {
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out, nil
}

// ParallelDistinctHash removes duplicates (≐ semantics) with
// per-partition hash tables: rows with equal hashes land in the same
// partition, so each partition dedups independently. Survivors are
// marked in a shared keep-bit slice — partitions own hash-disjoint row
// indices, so no two workers touch the same element — and a single
// in-order sweep emits them, reproducing DistinctHash's
// first-occurrence order without the index merge-and-sort pass that
// made the previous implementation regress below serial.
func ParallelDistinctHash(ctx context.Context, st *Stats, rel *Relation, workers int) (*Relation, error) {
	st.ParallelRuns++
	st.NoteWorkers(workers)
	st.ParallelRows += int64(len(rel.Rows))
	hashes, _, err := rowHashes(ctx, rel.Rows, nil, workers)
	if err != nil {
		return nil, err
	}

	keep := make([]bool, len(rel.Rows))
	locals := make([]Stats, workers)
	errs := make([]error, workers)
	parallelFor(workers, workers, func(p, _, _ int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[p] = err
			return
		}
		my := &locals[p]
		g := newGuard(ctx, my)
		seen := newRowTable(len(rel.Rows)/workers + 1)
		for i, row := range rel.Rows {
			if err := g.step(); err != nil {
				errs[p] = err
				return
			}
			h := hashes[i]
			if partitionOf(h, workers) != p {
				continue
			}
			my.HashProbes++
			dup := false
			for e := seen.find(h); e != rtNone; e = seen.entries[e].next {
				my.Comparisons++
				if value.NullEqRows(seen.entries[e].row, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen.insert(h, row)
			my.HashInserts++
			keep[i] = true
			if err := g.keep(row); err != nil {
				errs[p] = err
				return
			}
		}
		errs[p] = g.finish()
	})
	for p := 0; p < workers; p++ {
		st.Add(locals[p])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	out := &Relation{Cols: rel.Cols, Rows: make([]value.Row, 0, n)}
	for i, k := range keep {
		if k {
			out.Rows = append(out.Rows, rel.Rows[i])
		}
	}
	return out, nil
}

// ParallelSemiJoinHash is the partitioned-parallel form of
// SemiJoinHash: partitioned build on r, chunked probe of l. Identical
// output to SemiJoinHash (l's row order is preserved).
func ParallelSemiJoinHash(ctx context.Context, st *Stats, l, r *Relation, lKeys, rKeys []string, workers int) (*Relation, error) {
	li, err := l.colIndexes(lKeys)
	if err != nil {
		return nil, err
	}
	ri, err := r.colIndexes(rKeys)
	if err != nil {
		return nil, err
	}
	st.ParallelRuns++
	st.NoteWorkers(workers)
	st.ParallelRows += int64(len(l.Rows) + len(r.Rows))

	rh, rn, err := rowHashes(ctx, r.Rows, ri, workers)
	if err != nil {
		return nil, err
	}
	tables, err := buildPartitioned(ctx, st, r.Rows, rh, rn, workers)
	if err != nil {
		return nil, err
	}
	lh, ln, err := rowHashes(ctx, l.Rows, li, workers)
	if err != nil {
		return nil, err
	}

	chunkOut := make([][]value.Row, workers)
	locals := make([]Stats, workers)
	errs := make([]error, workers)
	chunks := parallelFor(len(l.Rows), workers, func(c, lo, hi int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[c] = err
			return
		}
		my := &locals[c]
		g := newGuard(ctx, my)
		var rows []value.Row
		for i := lo; i < hi; i++ {
			if err := g.step(); err != nil {
				errs[c] = err
				return
			}
			if ln[i] {
				continue
			}
			lr := l.Rows[i]
			h := lh[i]
			my.HashProbes++
			for _, rr := range tables[partitionOf(h, workers)][h] {
				if equalAt(lr, li, rr, ri, my) {
					rows = append(rows, lr)
					if err := g.keep(lr); err != nil {
						errs[c] = err
						return
					}
					break
				}
			}
		}
		errs[c] = g.finish()
		chunkOut[c] = rows
	})
	out := &Relation{Cols: l.Cols}
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for c := 0; c < chunks; c++ {
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out, nil
}

// ParallelProject projects rel onto cols with chunked row rewriting.
// Identical output to Project.
func ParallelProject(ctx context.Context, st *Stats, rel *Relation, cols []string, workers int) (*Relation, error) {
	idx, err := rel.colIndexes(cols)
	if err != nil {
		return nil, err
	}
	st.ParallelRuns++
	st.NoteWorkers(workers)
	st.ParallelRows += int64(len(rel.Rows))
	out := &Relation{Cols: append([]string(nil), cols...)}
	out.Rows = make([]value.Row, len(rel.Rows))
	locals := make([]Stats, workers)
	errs := make([]error, workers)
	chunks := parallelFor(len(rel.Rows), workers, func(c, lo, hi int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[c] = err
			return
		}
		g := newGuard(ctx, &locals[c])
		for ri := lo; ri < hi; ri++ {
			if err := g.step(); err != nil {
				errs[c] = err
				return
			}
			row := rel.Rows[ri]
			nr := make(value.Row, len(idx))
			for i, c := range idx {
				nr[i] = row[c]
			}
			out.Rows[ri] = nr
			if err := g.keep(nr); err != nil {
				errs[c] = err
				return
			}
		}
		errs[c] = g.finish()
	})
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelFilter evaluates pred over contiguous chunks of rel, each
// worker with a private environment cloned from envProto. The caller
// must ensure pred is parallel-safe: no EXISTS / IN-subquery leaves
// (their evaluation callbacks recurse into shared executor state).
// Identical output to Filter.
func ParallelFilter(ctx context.Context, st *Stats, rel *Relation, pred ast.Expr, envProto *eval.Env, workers int) (*Relation, error) {
	if pred == nil {
		return rel, nil
	}
	st.ParallelRuns++
	st.NoteWorkers(workers)
	st.ParallelRows += int64(len(rel.Rows))
	chunkOut := make([][]value.Row, workers)
	locals := make([]Stats, workers)
	errs := make([]error, workers)
	chunks := parallelFor(len(rel.Rows), workers, func(c, lo, hi int) {
		if err := fault.Point(FaultPoolWorker); err != nil {
			errs[c] = err
			return
		}
		g := newGuard(ctx, &locals[c])
		env := &eval.Env{
			Cols:   make(map[string]value.Value, len(rel.Cols)+len(envProto.Cols)),
			Hosts:  envProto.Hosts,
			Scope:  envProto.Scope,
			Exists: envProto.Exists,
			In:     envProto.In,
		}
		for k, v := range envProto.Cols {
			env.Cols[k] = v
		}
		var rows []value.Row
		for i := lo; i < hi; i++ {
			if err := g.step(); err != nil {
				errs[c] = err
				return
			}
			row := rel.Rows[i]
			bindRow(env, rel.Cols, row)
			ok, err := eval.Qualifies(pred, env)
			if err != nil {
				errs[c] = err
				return
			}
			if ok {
				rows = append(rows, row)
				if err := g.keep(row); err != nil {
					errs[c] = err
					return
				}
			}
		}
		errs[c] = g.finish()
		chunkOut[c] = rows
	})
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := &Relation{Cols: rel.Cols}
	for c := 0; c < chunks; c++ {
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out, nil
}
