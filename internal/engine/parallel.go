package engine

import (
	"sort"

	"uniqopt/internal/eval"
	"uniqopt/internal/sql/ast"
	"uniqopt/internal/value"
)

// Parallel partitioned operators. Each operator splits its probe (or
// sole) input into contiguous chunks — one per worker — and its hash
// side into hash-disjoint partitions, so no lock is ever taken on row
// data. Outputs are concatenated in chunk order and hash buckets are
// filled in input order, which makes every parallel operator produce a
// relation byte-identical to its serial counterpart: same rows, same
// order. Work counters are collected in per-worker Stats instances and
// merged through Stats.Add after the barrier.

// hashRow is the row-hash function used by every hash-based operator.
// It is a variable so tests can substitute a degenerate hash and force
// every row into one bucket/partition, proving the collision fallback
// (row-by-row ≐ comparison on hash match) in all operators.
var hashRow = value.HashRow

// rowHashes computes the hash of every row in parallel. The returned
// null slice flags rows with a NULL in any key column (idx non-nil);
// such rows never participate in hash matching under WHERE semantics.
func rowHashes(rows []value.Row, idx []int, workers int) (hashes []uint64, nulls []bool) {
	hashes = make([]uint64, len(rows))
	if idx != nil {
		nulls = make([]bool, len(rows))
	}
	key := idx == nil
	parallelFor(len(rows), workers, func(_, lo, hi int) {
		var kbuf value.Row
		if !key {
			kbuf = make(value.Row, len(idx))
		}
		for i := lo; i < hi; i++ {
			row := rows[i]
			if key {
				hashes[i] = hashRow(row)
				continue
			}
			if hasNullAt(row, idx) {
				nulls[i] = true
				continue
			}
			for k, c := range idx {
				kbuf[k] = row[c]
			}
			hashes[i] = hashRow(kbuf)
		}
	})
	return hashes, nulls
}

// buildPartitioned builds P hash-disjoint tables over rows: partition
// h%P owns every row whose key hash is h. Each partition is built by
// one worker scanning the precomputed hashes, so bucket contents stay
// in input order — exactly what a serial single-table build produces.
func buildPartitioned(st *Stats, rows []value.Row, hashes []uint64, nulls []bool, parts int) []map[uint64][]value.Row {
	tables := make([]map[uint64][]value.Row, parts)
	locals := make([]Stats, parts)
	parallelFor(parts, parts, func(p, _, _ int) {
		ht := make(map[uint64][]value.Row, len(rows)/parts+1)
		for i, row := range rows {
			if nulls != nil && nulls[i] {
				continue
			}
			h := hashes[i]
			if h%uint64(parts) != uint64(p) {
				continue
			}
			ht[h] = append(ht[h], row)
			locals[p].HashInserts++
		}
		tables[p] = ht
	})
	for i := range locals {
		st.Add(locals[i])
	}
	return tables
}

// ParallelHashJoin is the partitioned-parallel form of HashJoin: the
// smaller input is built into hash-disjoint partition tables, the
// larger is probed in contiguous chunks. Identical output to HashJoin.
func ParallelHashJoin(st *Stats, l, r *Relation, lKeys, rKeys []string, workers int) *Relation {
	li := l.mustCols(lKeys)
	ri := r.mustCols(rKeys)
	out := &Relation{Cols: append(append([]string{}, l.Cols...), r.Cols...)}

	build, probe := r, l
	bi, pi := ri, li
	swapped := false
	if len(l.Rows) < len(r.Rows) {
		build, probe = l, r
		bi, pi = li, ri
		swapped = true
	}
	st.ParallelRuns++
	st.ParallelRows += int64(len(l.Rows) + len(r.Rows))

	bh, bn := rowHashes(build.Rows, bi, workers)
	tables := buildPartitioned(st, build.Rows, bh, bn, workers)
	ph, pn := rowHashes(probe.Rows, pi, workers)

	chunkOut := make([][]value.Row, workers)
	locals := make([]Stats, workers)
	chunks := parallelFor(len(probe.Rows), workers, func(c, lo, hi int) {
		my := &locals[c]
		var rows []value.Row
		for i := lo; i < hi; i++ {
			if pn[i] {
				continue
			}
			prow := probe.Rows[i]
			h := ph[i]
			my.HashProbes++
			for _, brow := range tables[h%uint64(workers)][h] {
				my.JoinPairs++
				if !equalAt(prow, pi, brow, bi, my) {
					continue
				}
				var lrow, rrow value.Row
				if swapped {
					lrow, rrow = brow, prow
				} else {
					lrow, rrow = prow, brow
				}
				row := make(value.Row, 0, len(lrow)+len(rrow))
				row = append(row, lrow...)
				row = append(row, rrow...)
				rows = append(rows, row)
			}
		}
		chunkOut[c] = rows
	})
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out
}

// ParallelDistinctHash removes duplicates (≐ semantics) with
// per-partition hash tables: rows with equal hashes land in the same
// partition, so each partition dedups independently; survivors are
// re-ordered by original row index, reproducing DistinctHash's
// first-occurrence order exactly.
func ParallelDistinctHash(st *Stats, rel *Relation, workers int) *Relation {
	st.ParallelRuns++
	st.ParallelRows += int64(len(rel.Rows))
	hashes, _ := rowHashes(rel.Rows, nil, workers)

	kept := make([][]int, workers)
	locals := make([]Stats, workers)
	parallelFor(workers, workers, func(p, _, _ int) {
		my := &locals[p]
		seen := make(map[uint64][]value.Row, len(rel.Rows)/workers+1)
		var keep []int
		for i, row := range rel.Rows {
			h := hashes[i]
			if h%uint64(workers) != uint64(p) {
				continue
			}
			my.HashProbes++
			dup := false
			for _, prev := range seen[h] {
				my.Comparisons++
				if value.NullEqRows(prev, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[h] = append(seen[h], row)
			my.HashInserts++
			keep = append(keep, i)
		}
		kept[p] = keep
	})
	var order []int
	for p := 0; p < workers; p++ {
		st.Add(locals[p])
		order = append(order, kept[p]...)
	}
	sort.Ints(order)
	out := &Relation{Cols: rel.Cols, Rows: make([]value.Row, len(order))}
	for i, ri := range order {
		out.Rows[i] = rel.Rows[ri]
	}
	return out
}

// ParallelSemiJoinHash is the partitioned-parallel form of
// SemiJoinHash: partitioned build on r, chunked probe of l. Identical
// output to SemiJoinHash (l's row order is preserved).
func ParallelSemiJoinHash(st *Stats, l, r *Relation, lKeys, rKeys []string, workers int) *Relation {
	li := l.mustCols(lKeys)
	ri := r.mustCols(rKeys)
	st.ParallelRuns++
	st.ParallelRows += int64(len(l.Rows) + len(r.Rows))

	rh, rn := rowHashes(r.Rows, ri, workers)
	tables := buildPartitioned(st, r.Rows, rh, rn, workers)
	lh, ln := rowHashes(l.Rows, li, workers)

	chunkOut := make([][]value.Row, workers)
	locals := make([]Stats, workers)
	chunks := parallelFor(len(l.Rows), workers, func(c, lo, hi int) {
		my := &locals[c]
		var rows []value.Row
		for i := lo; i < hi; i++ {
			if ln[i] {
				continue
			}
			lr := l.Rows[i]
			h := lh[i]
			my.HashProbes++
			for _, rr := range tables[h%uint64(workers)][h] {
				if equalAt(lr, li, rr, ri, my) {
					rows = append(rows, lr)
					break
				}
			}
		}
		chunkOut[c] = rows
	})
	out := &Relation{Cols: l.Cols}
	for c := 0; c < chunks; c++ {
		st.Add(locals[c])
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out
}

// ParallelProject projects rel onto cols with chunked row rewriting.
// Identical output to Project.
func ParallelProject(st *Stats, rel *Relation, cols []string, workers int) *Relation {
	idx := rel.mustCols(cols)
	st.ParallelRuns++
	st.ParallelRows += int64(len(rel.Rows))
	out := &Relation{Cols: append([]string(nil), cols...)}
	out.Rows = make([]value.Row, len(rel.Rows))
	parallelFor(len(rel.Rows), workers, func(_, lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			row := rel.Rows[ri]
			nr := make(value.Row, len(idx))
			for i, c := range idx {
				nr[i] = row[c]
			}
			out.Rows[ri] = nr
		}
	})
	return out
}

// ParallelFilter evaluates pred over contiguous chunks of rel, each
// worker with a private environment cloned from envProto. The caller
// must ensure pred is parallel-safe: no EXISTS / IN-subquery leaves
// (their evaluation callbacks recurse into shared executor state).
// Identical output to Filter.
func ParallelFilter(st *Stats, rel *Relation, pred ast.Expr, envProto *eval.Env, workers int) (*Relation, error) {
	if pred == nil {
		return rel, nil
	}
	st.ParallelRuns++
	st.ParallelRows += int64(len(rel.Rows))
	chunkOut := make([][]value.Row, workers)
	errs := make([]error, workers)
	chunks := parallelFor(len(rel.Rows), workers, func(c, lo, hi int) {
		env := &eval.Env{
			Cols:   make(map[string]value.Value, len(rel.Cols)+len(envProto.Cols)),
			Hosts:  envProto.Hosts,
			Scope:  envProto.Scope,
			Exists: envProto.Exists,
			In:     envProto.In,
		}
		for k, v := range envProto.Cols {
			env.Cols[k] = v
		}
		var rows []value.Row
		for i := lo; i < hi; i++ {
			row := rel.Rows[i]
			bindRow(env, rel.Cols, row)
			ok, err := eval.Qualifies(pred, env)
			if err != nil {
				errs[c] = err
				return
			}
			if ok {
				rows = append(rows, row)
			}
		}
		chunkOut[c] = rows
	})
	out := &Relation{Cols: rel.Cols}
	for c := 0; c < chunks; c++ {
		if errs[c] != nil {
			return nil, errs[c]
		}
		out.Rows = append(out.Rows, chunkOut[c]...)
	}
	return out, nil
}
