package engine

import (
	"fmt"
	"strings"

	"uniqopt/internal/value"
)

// Relation is a materialized intermediate result: an ordered multiset
// of rows with canonical column names ("CORRELATION.COLUMN").
type Relation struct {
	Cols []string
	Rows []value.Row
}

// NewRelation creates an empty relation with the given columns.
func NewRelation(cols ...string) *Relation {
	return &Relation{Cols: cols}
}

// ColumnIndex returns the position of the named column, or -1. Both
// exact canonical matches and bare-name suffix matches are accepted so
// callers can address columns the way queries do.
func (r *Relation) ColumnIndex(name string) int {
	return columnIndexIn(r.Cols, name)
}

// columnIndexIn is ColumnIndex over a bare column-name list, shared
// with the streaming iterators (which carry column names without a
// materialized Relation).
func columnIndexIn(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	// Fall back to unqualified match if unambiguous.
	found := -1
	for i, c := range cols {
		if idx := strings.IndexByte(c, '.'); idx >= 0 && c[idx+1:] == name {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// Len reports the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Cols: append([]string(nil), r.Cols...)}
	out.Rows = make([]value.Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// String renders the relation as a small table for diagnostics.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Cols, " | "))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(row.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MultisetEqual reports whether two relations contain the same rows
// with the same multiplicities under ≐ row equivalence, ignoring
// order. Column names are not compared; arity is.
func MultisetEqual(a, b *Relation) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	counts := make(map[uint64][]countedRow, len(a.Rows))
	for _, row := range a.Rows {
		h := hashRow(row)
		bucket := counts[h]
		found := false
		for i := range bucket {
			if value.NullEqRows(bucket[i].row, row) {
				bucket[i].n++
				found = true
				break
			}
		}
		if !found {
			bucket = append(bucket, countedRow{row: row, n: 1})
		}
		counts[h] = bucket
	}
	for _, row := range b.Rows {
		h := hashRow(row)
		bucket := counts[h]
		found := false
		for i := range bucket {
			if value.NullEqRows(bucket[i].row, row) {
				if bucket[i].n == 0 {
					return false
				}
				bucket[i].n--
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

type countedRow struct {
	row value.Row
	n   int
}

// SortRows sorts the relation's rows in place by the total order
// OrderCompareRows (NULL first). Used to canonicalize results for
// comparison in tests.
func (r *Relation) SortRows() {
	sortRowsBy(r.Rows, func(a, b value.Row) int { return value.OrderCompareRows(a, b) })
}

// sortRowsBy is a simple merge sort counting nothing; operator-level
// sorts use the instrumented variant in operators.go.
func sortRowsBy(rows []value.Row, cmp func(a, b value.Row) int) {
	if len(rows) < 2 {
		return
	}
	tmp := make([]value.Row, len(rows))
	var ms func(lo, hi int)
	ms = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		mid := (lo + hi) / 2
		ms(lo, mid)
		ms(mid, hi)
		i, j, k := lo, mid, lo
		for i < mid && j < hi {
			if cmp(rows[i], rows[j]) <= 0 {
				tmp[k] = rows[i]
				i++
			} else {
				tmp[k] = rows[j]
				j++
			}
			k++
		}
		for i < mid {
			tmp[k] = rows[i]
			i++
			k++
		}
		for j < hi {
			tmp[k] = rows[j]
			j++
			k++
		}
		copy(rows[lo:hi], tmp[lo:hi])
	}
	ms(0, len(rows))
}

// colIndexes resolves every name to its ordinal, or reports the first
// unresolved column as an error. Operators propagate this through the
// lifecycle containment path instead of panicking.
func (r *Relation) colIndexes(names []string) ([]int, error) {
	return colIndexesIn(r.Cols, names)
}

// colIndexesIn resolves names against a column list, for callers that
// have no Relation (streaming iterators resolve against child Cols()).
func colIndexesIn(cols []string, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		ci := columnIndexIn(cols, n)
		if ci < 0 {
			return nil, fmt.Errorf("engine: relation has no column %s (cols: %v)", n, cols)
		}
		out[i] = ci
	}
	return out, nil
}
